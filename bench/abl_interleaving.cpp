// Ablation: how much of integrated FEC 2's burst-resistance comes from
// the feedback gap T spreading parity rounds in time (the "interleaving"
// effect of Fig. 13/16).  We sweep T from 0 (back-to-back rounds, close
// to FEC 1) upward and watch E[M] under burst loss for small and large k.
#include <cstdio>

#include "bench_common.hpp"
#include "protocol/rounds.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pbl;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double p = cli.get_double("p", 0.02);
  const double burst = cli.get_double("b", 3.0);
  const std::size_t receivers =
      static_cast<std::size_t>(cli.get_int64("R", 1000));
  const std::int64_t tgs = cli.get_int64("tgs", 400);
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }

  bench::banner(
      "Ablation: feedback gap T as implicit interleaving (integrated FEC 2)",
      "p = " + std::to_string(p) + ", mean burst = " + std::to_string(burst) +
          ", R = " + std::to_string(receivers) + ", delta = 40 ms",
      "k = 7 benefits from a larger T (parity rounds bridge bursts); "
      "k = 100 needs no interleaving (the block already spans bursts)");

  Table t({"gap_ms", "fec2_k7", "fec2_k100"});
  for (const double gap_ms : {0.0, 40.0, 100.0, 300.0, 1000.0}) {
    std::vector<Table::Cell> row{gap_ms};
    for (const std::int64_t k : {7, 100}) {
      protocol::McConfig cfg;
      cfg.k = k;
      cfg.num_tgs = std::max<std::int64_t>(20, tgs * 7 / k);
      cfg.timing.delta = 0.040;
      cfg.timing.gap = gap_ms / 1000.0;
      const auto gilbert =
          loss::GilbertLossModel::from_packet_stats(p, burst, cfg.timing.delta);
      protocol::IidTransmitter tx(
          gilbert, receivers,
          Rng(9).split(static_cast<std::uint64_t>(gap_ms * 10 + k)));
      row.emplace_back(protocol::sim_integrated_naks(tx, cfg).mean_tx);
    }
    t.add_row(std::move(row));
  }
  t.set_precision(5);
  std::printf("%s", t.to_string().c_str());
  return 0;
}
