// Ablation: explicit block interleaving as the cure for layered FEC's
// burst-loss collapse (Fig. 15), and its latency price.  The paper names
// interleaving as "a well-known technique that allows FEC to deal with
// burst loss" but only evaluates the implicit interleaving of integrated
// FEC 2; this ablation runs the real thing on the layered scheme.
#include <cstdio>

#include "bench_common.hpp"
#include "protocol/rounds.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pbl;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double p = cli.get_double("p", 0.01);
  const double burst = cli.get_double("b", 2.0);
  const std::size_t receivers =
      static_cast<std::size_t>(cli.get_int64("R", 1000));
  const std::int64_t tgs = cli.get_int64("tgs", 600);
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }

  protocol::McConfig cfg;
  cfg.k = 7;
  cfg.h = 1;
  cfg.num_tgs = tgs;

  bench::banner(
      "Ablation: interleaving depth vs layered FEC under burst loss",
      "p = " + std::to_string(p) + ", mean burst = " + std::to_string(burst) +
          ", k = 7, h = 1, R = " + std::to_string(receivers),
      "E[M] falls from the Fig. 15 collapse towards the independent-loss "
      "value as depth grows; delivery latency grows with depth");

  const auto gilbert =
      loss::GilbertLossModel::from_packet_stats(p, burst, cfg.timing.delta);

  // References: no-FEC under the same bursts, layered under iid loss.
  double nofec_ref = 0.0, indep_ref = 0.0;
  {
    protocol::McConfig nc = cfg;
    nc.h = 0;
    protocol::IidTransmitter t0(gilbert, receivers, Rng(2));
    nofec_ref = protocol::sim_nofec(t0, nc).mean_tx;
    loss::BernoulliLossModel iid(p);
    protocol::IidTransmitter t1(iid, receivers, Rng(3));
    indep_ref = protocol::sim_layered(t1, cfg).mean_tx;
  }
  std::printf("references: no-FEC under bursts = %.4f, layered under "
              "independent loss = %.4f\n",
              nofec_ref, indep_ref);

  Table t({"depth", "layered_EM", "mean_latency_s"});
  for (const std::size_t depth : {1u, 2u, 3u, 4u, 6u, 8u, 12u, 16u}) {
    protocol::IidTransmitter tx(gilbert, receivers, Rng(100 + depth));
    const auto res = protocol::sim_layered_interleaved(tx, cfg, depth);
    t.add_row({static_cast<long long>(depth), res.mean_tx, res.mean_time});
  }
  t.set_precision(4);
  std::printf("%s", t.to_string().c_str());
  return 0;
}
