// Ablation: Monte-Carlo simulation versus the closed forms, side by side,
// for every scheme with an analytical model.  The columns must agree
// within the printed confidence interval — this is the library's
// end-to-end self-check (the same property the test suite asserts, here
// over a broader grid for inspection).
//
// Every (R, scheme) point runs --reps independent replications through
// sim::run_replications (parallel over --threads, bit-identical results
// for any thread count); the CI is computed across replication means.
// --json=out.json emits pbl-bench-v1.
#include <algorithm>
#include <cstdio>

#include "analysis/integrated.hpp"
#include "bench_common.hpp"
#include "core/reliable_multicast.hpp"
#include "sim/replicator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pbl;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double p = cli.get_double("p", 0.02);
  const std::int64_t k = cli.get_int64("k", 7);
  const std::int64_t tgs = cli.get_int64("tgs", 1000);
  const std::int64_t reps = cli.get_int64("reps", 8);
  const auto threads = static_cast<unsigned>(cli.get_int64("threads", 0));
  const auto seed = static_cast<std::uint64_t>(cli.get_int64("seed", 1));
  const std::string json_path = cli.get_string("json", "");
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }

  bench::banner(
      "Ablation: simulation vs closed forms",
      "p = " + std::to_string(p) + ", k = " + std::to_string(k) + ", " +
          std::to_string(tgs) + " TGs per cell over " + std::to_string(reps) +
          " replications",
      "sim and analysis agree within the 95% CI for every scheme");

  bench::BenchJson json("abl_sim_vs_analysis");
  json.setup("p", p);
  json.setup("k", k);
  json.setup("tgs", tgs);
  json.setup("reps", reps);
  json.setup("seed", static_cast<std::int64_t>(seed));

  const std::int64_t tgs_per_rep = std::max<std::int64_t>(1, tgs / reps);
  double wall = 0.0;
  std::uint64_t total_reps = 0;
  std::uint64_t point_index = 0;

  Table t({"R", "scheme", "simulated", "ci95", "analytic"});
  for (const std::int64_t r : {1, 10, 100, 1000}) {
    for (const auto mode :
         {core::RecoveryMode::kNoFec, core::RecoveryMode::kLayeredFec,
          core::RecoveryMode::kIntegratedFec1,
          core::RecoveryMode::kIntegratedFec2}) {
      core::MulticastConfig cfg;
      cfg.k = k;
      cfg.h = mode == core::RecoveryMode::kLayeredFec ? 2 : 0;
      cfg.receivers = static_cast<std::size_t>(r);
      cfg.p = p;
      cfg.mode = mode;
      cfg.num_tgs = tgs_per_rep;
      const auto rep = sim::run_replications(
          static_cast<std::uint64_t>(reps),
          sim::point_seed(seed, point_index++),
          [&](std::uint64_t, Rng& rng) {
            core::MulticastConfig c = cfg;
            c.seed = rng();  // all randomness from the replication substream
            return core::simulate(c).mean_tx;
          },
          {.threads = threads});
      wall += rep.wall_seconds;
      total_reps += rep.replications;
      const auto predicted = core::predict(cfg);
      t.add_row({static_cast<long long>(r), core::to_string(mode),
                 rep.stats.mean(), rep.stats.ci95_halfwidth(),
                 predicted.value_or(-1.0)});
      json.point({{"R", r},
                  {"scheme", core::to_string(mode)},
                  {"mean", rep.stats.mean()},
                  {"ci95", rep.stats.ci95_halfwidth()},
                  {"analytic", predicted.value_or(-1.0)}});
    }
    // Finite parity budget (the corrected Fig. 6 model) against its
    // dedicated simulator.
    for (const std::int64_t h : {1, 3}) {
      const auto rep = sim::run_replications(
          static_cast<std::uint64_t>(reps),
          sim::point_seed(seed, point_index++),
          [&](std::uint64_t, Rng& rng) {
            loss::BernoulliLossModel model(p);
            protocol::IidTransmitter tx(model, static_cast<std::size_t>(r),
                                        rng);
            protocol::McConfig mc;
            mc.k = k;
            mc.h = h;
            mc.num_tgs = tgs_per_rep;
            return protocol::sim_integrated_finite(tx, mc).mean_tx;
          },
          {.threads = threads});
      wall += rep.wall_seconds;
      total_reps += rep.replications;
      const double expect = analysis::expected_tx_integrated(
          k, h, 0, p, static_cast<double>(r));
      t.add_row({static_cast<long long>(r),
                 "integrated h=" + std::to_string(h), rep.stats.mean(),
                 rep.stats.ci95_halfwidth(), expect});
      json.point({{"R", r},
                  {"scheme", "integrated h=" + std::to_string(h)},
                  {"mean", rep.stats.mean()},
                  {"ci95", rep.stats.ci95_halfwidth()},
                  {"analytic", expect}});
    }
  }
  t.set_precision(5);
  std::printf("%s", t.to_string().c_str());
  std::printf("\n%llu replications, %u threads, %.3f s, %.1f reps/s\n",
              static_cast<unsigned long long>(total_reps),
              sim::resolve_threads(threads), wall,
              wall > 0.0 ? static_cast<double>(total_reps) / wall : 0.0);

  json.perf(sim::resolve_threads(threads), wall, total_reps);
  return json.write_file(json_path) ? 0 : 1;
}
