// Ablation: Monte-Carlo simulation versus the closed forms, side by side,
// for every scheme with an analytical model.  The columns must agree
// within the printed confidence interval — this is the library's
// end-to-end self-check (the same property the test suite asserts, here
// over a broader grid for inspection).
#include <cstdio>

#include "analysis/integrated.hpp"
#include "bench_common.hpp"
#include "core/reliable_multicast.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pbl;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double p = cli.get_double("p", 0.02);
  const std::int64_t k = cli.get_int64("k", 7);
  const std::int64_t tgs = cli.get_int64("tgs", 1000);
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }

  bench::banner(
      "Ablation: simulation vs closed forms",
      "p = " + std::to_string(p) + ", k = " + std::to_string(k) + ", " +
          std::to_string(tgs) + " TGs per cell",
      "sim and analysis agree within the 95% CI for every scheme");

  Table t({"R", "scheme", "simulated", "ci95", "analytic"});
  for (const std::int64_t r : {1, 10, 100, 1000}) {
    for (const auto mode :
         {core::RecoveryMode::kNoFec, core::RecoveryMode::kLayeredFec,
          core::RecoveryMode::kIntegratedFec1,
          core::RecoveryMode::kIntegratedFec2}) {
      core::MulticastConfig cfg;
      cfg.k = k;
      cfg.h = mode == core::RecoveryMode::kLayeredFec ? 2 : 0;
      cfg.receivers = static_cast<std::size_t>(r);
      cfg.p = p;
      cfg.mode = mode;
      cfg.num_tgs = tgs;
      cfg.seed = static_cast<std::uint64_t>(r) * 131 + 7;
      const auto report = core::simulate(cfg);
      t.add_row({static_cast<long long>(r), core::to_string(mode),
                 report.mean_tx, report.ci95,
                 report.predicted.value_or(-1.0)});
    }
    // Finite parity budget (the corrected Fig. 6 model) against its
    // dedicated simulator.
    for (const std::int64_t h : {1, 3}) {
      loss::BernoulliLossModel model(p);
      protocol::IidTransmitter tx(model, static_cast<std::size_t>(r),
                                  Rng(static_cast<std::uint64_t>(r) * 7 + h));
      protocol::McConfig mc;
      mc.k = k;
      mc.h = h;
      mc.num_tgs = tgs;
      const auto res = protocol::sim_integrated_finite(tx, mc);
      t.add_row({static_cast<long long>(r),
                 "integrated h=" + std::to_string(h), res.mean_tx, res.ci95,
                 analysis::expected_tx_integrated(k, h, 0, p,
                                                  static_cast<double>(r))});
    }
  }
  t.set_precision(5);
  std::printf("%s", t.to_string().c_str());
  return 0;
}
