// Ablation: how the NAK suppression slot size Ts shapes protocol NP's
// feedback load (Section 5.1: "the slot size Ts needs to be chosen
// appropriately").  Small slots answer faster but suppress less; slots
// comfortably above the propagation delay approach the ideal single NAK
// per feedback round.
#include <cstdio>

#include "bench_common.hpp"
#include "loss/loss_model.hpp"
#include "protocol/np_protocol.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pbl;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double p = cli.get_double("p", 0.05);
  const std::size_t receivers =
      static_cast<std::size_t>(cli.get_int64("R", 200));
  const std::size_t tgs = static_cast<std::size_t>(cli.get_int64("tgs", 20));
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }

  bench::banner(
      "Ablation: NAK suppression slot size in protocol NP",
      "R = " + std::to_string(receivers) + ", p = " + std::to_string(p) +
          ", k = 8, one-way delay 10 ms (full DES protocol)",
      "NAKs per feedback round drop towards 1 as Ts grows past the "
      "propagation delay; completion time grows in exchange");

  loss::BernoulliLossModel model(p);
  Table t({"slot_ms", "naks_sent", "naks_suppressed", "naks_per_round",
           "completion_s", "tx_per_packet"});
  for (const double slot_ms : {0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0}) {
    protocol::NpConfig cfg;
    cfg.k = 8;
    cfg.h = 80;
    cfg.packet_len = 64;
    cfg.slot = slot_ms / 1000.0;
    protocol::NpSession session(model, receivers, tgs, cfg, 42);
    const auto stats = session.run();
    const double rounds =
        static_cast<double>(stats.polls_sent);  // one poll opens each round
    t.add_row({slot_ms, static_cast<long long>(stats.naks_sent),
               static_cast<long long>(stats.naks_suppressed),
               rounds > 0 ? static_cast<double>(stats.naks_sent) / rounds : 0.0,
               stats.completion_time, stats.tx_per_packet});
  }
  t.set_precision(4);
  std::printf("%s", t.to_string().c_str());

  // Scalability: with a fixed, well-chosen Ts, how does the feedback load
  // grow with the population?  (The paper's scalability claim: per-TG
  // feedback, ideally one NAK per round, independent of R.)
  Table t2({"R", "naks_sent", "naks_suppressed", "naks_per_round"});
  for (const std::size_t r : {10u, 50u, 200u, 1000u, 5000u}) {
    protocol::NpConfig cfg;
    cfg.k = 8;
    cfg.h = 80;
    cfg.packet_len = 64;
    cfg.slot = 0.03;
    protocol::NpSession session(model, r, tgs, cfg, 42);
    const auto stats = session.run();
    const double rounds = static_cast<double>(stats.polls_sent);
    t2.add_row({static_cast<long long>(r),
                static_cast<long long>(stats.naks_sent),
                static_cast<long long>(stats.naks_suppressed),
                rounds > 0 ? static_cast<double>(stats.naks_sent) / rounds
                           : 0.0});
  }
  t2.set_precision(4);
  std::printf("\n%s", t2.to_string().c_str());
  return 0;
}
