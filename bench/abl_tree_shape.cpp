// Ablation: how multicast-tree topology shapes the shared-loss effect.
// At equal receiver count and equal per-receiver loss probability, the
// deeper and more shared the tree, the stronger the loss correlation and
// the lower E[M] — the generalisation of Fig. 11/12's FBT finding, and
// the reason the paper's R_indep mapping exists (Section 4.1).
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "core/planner.hpp"
#include "protocol/rounds.hpp"
#include "tree/multicast_tree.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pbl;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::size_t receivers =
      static_cast<std::size_t>(cli.get_int64("R", 1024));
  const double p = cli.get_double("p", 0.05);
  const std::int64_t tgs = cli.get_int64("tgs", 300);
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }

  bench::banner(
      "Ablation: tree topology vs shared-loss benefit",
      "R = " + std::to_string(receivers) + ", p = " + std::to_string(p) +
          " per receiver, k = 7, simulation",
      "deeper trees share more loss: E[M] falls and the equivalent "
      "independent population R_indep shrinks");

  struct Topology {
    std::string name;
    std::unique_ptr<tree::MulticastTree> tree;  // null = independent loss
  };
  std::vector<Topology> topologies;
  topologies.push_back({"independent", nullptr});
  {
    Rng rng(41);
    topologies.push_back(
        {"random fanout<=16",
         std::make_unique<tree::MulticastTree>(
             tree::MulticastTree::random_split(receivers, 16, rng))});
  }
  {
    Rng rng(42);
    topologies.push_back(
        {"random fanout<=4",
         std::make_unique<tree::MulticastTree>(
             tree::MulticastTree::random_split(receivers, 4, rng))});
  }
  {
    Rng rng(43);
    topologies.push_back(
        {"random binary",
         std::make_unique<tree::MulticastTree>(
             tree::MulticastTree::random_split(receivers, 2, rng))});
  }
  {
    unsigned d = 0;
    while ((std::size_t{1} << (d + 1)) <= receivers) ++d;
    topologies.push_back({"full binary d=" + std::to_string(d),
                          std::make_unique<tree::MulticastTree>(
                              tree::MulticastTree::full_binary(d))});
  }

  Table t({"topology", "height", "nodes", "nofec_EM", "integr_EM", "R_indep"});
  for (const auto& topo : topologies) {
    protocol::McConfig cfg;
    cfg.k = 7;
    cfg.num_tgs = tgs;

    std::unique_ptr<protocol::PacketTransmitter> tx1, tx2;
    loss::BernoulliLossModel iid(p);
    std::size_t height = 0, nodes = 0, leaves = receivers;
    if (topo.tree) {
      height = topo.tree->height();
      nodes = topo.tree->num_nodes();
      leaves = topo.tree->num_leaves();
      const double pn = topo.tree->node_loss_for_leaf_loss(p);
      tx1 = std::make_unique<protocol::TreeTransmitter>(*topo.tree, pn, Rng(1));
      tx2 = std::make_unique<protocol::TreeTransmitter>(*topo.tree, pn, Rng(2));
    } else {
      nodes = receivers + 1;
      height = 1;
      tx1 = std::make_unique<protocol::IidTransmitter>(iid, receivers, Rng(1));
      tx2 = std::make_unique<protocol::IidTransmitter>(iid, receivers, Rng(2));
    }
    (void)leaves;
    const auto nofec = protocol::sim_nofec(*tx1, cfg);
    const auto integ = protocol::sim_integrated_naks(*tx2, cfg);
    const double r_indep =
        core::equivalent_independent_receivers(p, nofec.mean_tx);
    t.add_row({topo.name, static_cast<long long>(height),
               static_cast<long long>(nodes), nofec.mean_tx, integ.mean_tx,
               r_indep});
  }
  t.set_precision(4);
  std::printf("%s", t.to_string().c_str());
  return 0;
}
