// Shared helpers for the figure-regeneration binaries: log-spaced grids,
// wall-clock timing, the standard banner, and a small JSON emitter so
// every bench can record machine-readable results (--json=out.json) next
// to its human-readable table.  CI diffs the JSON perf fields against
// committed baselines (bench/check_regression.py).
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace pbl::bench {

/// Log-spaced integer grid from lo to hi (inclusive), `per_decade` points
/// per decade, deduplicated after rounding.  Empty when the range is
/// empty (lo > hi) or lo < 1 (log10 undefined).
inline std::vector<std::int64_t> log_grid(std::int64_t lo, std::int64_t hi,
                                          int per_decade = 4) {
  std::vector<std::int64_t> out;
  if (lo > hi || lo < 1 || per_decade < 1) return out;
  const double step = 1.0 / per_decade;
  for (double e = std::log10(static_cast<double>(lo));
       e <= std::log10(static_cast<double>(hi)) + 1e-9; e += step) {
    const auto v = static_cast<std::int64_t>(std::llround(std::pow(10.0, e)));
    if (out.empty() || v > out.back()) out.push_back(v);
  }
  if (out.empty() || out.back() != hi) out.push_back(hi);
  return out;
}

/// Wall-clock seconds spent in fn().
template <typename Fn>
double time_seconds(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Prints the standard figure banner: what the binary regenerates and the
/// paper's qualitative expectation, so bench output is self-describing.
inline void banner(const std::string& figure, const std::string& setup,
                   const std::string& expectation) {
  std::printf("== %s ==\n", figure.c_str());
  std::printf("setup: %s\n", setup.c_str());
  std::printf("paper: %s\n", expectation.c_str());
}

/// Escapes a string for use inside a JSON string literal (RFC 8259):
/// quote, backslash and control characters; everything else (including
/// UTF-8 multibyte sequences) passes through untouched.
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// One JSON scalar: string, number or bool.  Integers keep full 64-bit
/// precision; non-finite doubles serialise as null (JSON has no NaN).
class JsonValue {
 public:
  JsonValue(const char* s) : v_(std::string(s)) {}
  JsonValue(std::string s) : v_(std::move(s)) {}
  JsonValue(double d) : v_(d) {}
  JsonValue(int i) : v_(static_cast<std::int64_t>(i)) {}
  JsonValue(unsigned i) : v_(static_cast<std::int64_t>(i)) {}
  JsonValue(long long i) : v_(static_cast<std::int64_t>(i)) {}
  JsonValue(std::int64_t i) : v_(i) {}
  JsonValue(std::uint64_t i) : v_(static_cast<std::int64_t>(i)) {}
  JsonValue(bool b) : v_(b) {}

  std::string to_string() const {
    if (const auto* s = std::get_if<std::string>(&v_))
      return "\"" + json_escape(*s) + "\"";
    if (const auto* i = std::get_if<std::int64_t>(&v_))
      return std::to_string(*i);
    if (const auto* b = std::get_if<bool>(&v_)) return *b ? "true" : "false";
    const double d = std::get<double>(v_);
    if (!std::isfinite(d)) return "null";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    return buf;
  }

 private:
  std::variant<std::string, std::int64_t, double, bool> v_;
};

using JsonFields = std::vector<std::pair<std::string, JsonValue>>;

/// Serialises one flat JSON object ({"k": v, ...}) from ordered fields.
inline std::string json_object(const JsonFields& fields) {
  std::string out = "{";
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out += ", ";
    out += "\"" + json_escape(fields[i].first) + "\": ";
    out += fields[i].second.to_string();
  }
  out += "}";
  return out;
}

/// Machine-readable bench results: one document per binary run.
///
/// Schema "pbl-bench-v1" (see docs/PARALLEL.md):
///   {
///     "schema":  "pbl-bench-v1",
///     "bench":   "<binary name>",
///     "setup":   { flag: value, ... },
///     "perf":    { "threads": T, "wall_seconds": s,
///                  "replications": N, "reps_per_sec": N/s },
///     "points":  [ { column: value, ... }, ... ]
///   }
class BenchJson {
 public:
  explicit BenchJson(std::string bench) : bench_(std::move(bench)) {}

  void setup(const std::string& key, JsonValue value) {
    setup_.emplace_back(key, std::move(value));
  }
  void point(JsonFields fields) { points_.push_back(std::move(fields)); }
  void perf(unsigned threads, double wall_seconds,
            std::uint64_t replications) {
    threads_ = threads;
    wall_seconds_ = wall_seconds;
    replications_ = replications;
  }

  std::string to_string() const {
    std::string out = "{\n";
    out += "  \"schema\": \"pbl-bench-v1\",\n";
    out += "  \"bench\": \"" + json_escape(bench_) + "\",\n";
    out += "  \"setup\": " + json_object(setup_) + ",\n";
    out += "  \"perf\": " +
           json_object(
               {{"threads", static_cast<std::int64_t>(threads_)},
                {"wall_seconds", wall_seconds_},
                {"replications", static_cast<std::int64_t>(replications_)},
                {"reps_per_sec",
                 wall_seconds_ > 0.0
                     ? static_cast<double>(replications_) / wall_seconds_
                     : 0.0}}) +
           ",\n";
    out += "  \"points\": [\n";
    for (std::size_t i = 0; i < points_.size(); ++i) {
      out += "    " + json_object(points_[i]);
      out += i + 1 < points_.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
  }

  /// Writes the document to `path`; returns false (with a perror) if the
  /// file cannot be written.  An empty path is a silent no-op success.
  bool write_file(const std::string& path) const {
    if (path.empty()) return true;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::perror(("BenchJson: cannot write " + path).c_str());
      return false;
    }
    const std::string doc = to_string();
    const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    std::fclose(f);
    return ok;
  }

 private:
  std::string bench_;
  JsonFields setup_;
  std::vector<JsonFields> points_;
  unsigned threads_ = 1;
  double wall_seconds_ = 0.0;
  std::uint64_t replications_ = 0;
};

}  // namespace pbl::bench
