// Shared helpers for the figure-regeneration binaries.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace pbl::bench {

/// Log-spaced integer grid from lo to hi (inclusive), `per_decade` points
/// per decade, deduplicated after rounding.
inline std::vector<std::int64_t> log_grid(std::int64_t lo, std::int64_t hi,
                                          int per_decade = 4) {
  std::vector<std::int64_t> out;
  const double step = 1.0 / per_decade;
  for (double e = std::log10(static_cast<double>(lo));
       e <= std::log10(static_cast<double>(hi)) + 1e-9; e += step) {
    const auto v = static_cast<std::int64_t>(std::llround(std::pow(10.0, e)));
    if (out.empty() || v > out.back()) out.push_back(v);
  }
  if (out.back() != hi) out.push_back(hi);
  return out;
}

/// Wall-clock seconds spent in fn().
template <typename Fn>
double time_seconds(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Prints the standard figure banner: what the binary regenerates and the
/// paper's qualitative expectation, so bench output is self-describing.
inline void banner(const std::string& figure, const std::string& setup,
                   const std::string& expectation) {
  std::printf("== %s ==\n", figure.c_str());
  std::printf("setup: %s\n", setup.c_str());
  std::printf("paper: %s\n", expectation.c_str());
}

}  // namespace pbl::bench
