#!/usr/bin/env python3
"""Fail CI when bench throughput regresses against a committed baseline.

Supports two JSON formats:

* pbl-bench-v1 (emitted by the repo's benches via --json=out.json):
  the compared metric is ``perf.reps_per_sec``.  When points carry a
  ``"source"`` label ("analysis" / "sim"), the per-source point counts
  are compared too, so a bench silently dropping its simulated (or
  analytic) points fails CI even if throughput looks fine.
* google-benchmark (``--benchmark_out=out.json --benchmark_out_format=json``):
  each benchmark entry is compared by name on ``bytes_per_second``
  (falling back to ``items_per_second``, then to 1/real_time).

Usage:
    check_regression.py --baseline old.json --candidate new.json \
        [--min-ratio 0.7]

Exit status 1 if any compared metric's candidate/baseline ratio falls
below --min-ratio (default 0.7, i.e. a >30% throughput drop).
Throughput metrics present on only one side are reported but never
fatal (CI runners vary); point-count metrics are deterministic, so a
baselined count missing from the candidate IS fatal.
"""

import argparse
import json
import sys


def load(path, role):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except FileNotFoundError:
        if role == "baseline":
            raise SystemExit(
                f"baseline not found: {path}\n"
                f"Every bench wired into the perf-smoke CI leg needs a "
                f"committed baseline.  Generate one with:\n"
                f"    ./build/bench/<bench> --json={path}\n"
                f"(run on a quiet machine, then commit the file; see "
                f"bench/baselines/)")
        raise SystemExit(
            f"candidate not found: {path}\n"
            f"The bench run that should have produced it failed or wrote "
            f"elsewhere — check the preceding CI step's --json= path.")
    except json.JSONDecodeError as e:
        raise SystemExit(f"{role} {path} is not valid JSON: {e}")


def metrics_of(doc):
    """Extract {metric_name: throughput} from either supported format."""
    if doc.get("schema") == "pbl-bench-v1":
        perf = doc.get("perf", {})
        rps = perf.get("reps_per_sec")
        if rps is None:
            raise SystemExit("pbl-bench-v1 document has no perf.reps_per_sec")
        bench = doc.get("bench", "bench")
        out = {f"{bench}/reps_per_sec": float(rps)}
        counts = {}
        for pt in doc.get("points", []):
            src = pt.get("source")
            if src is not None:
                counts[src] = counts.get(src, 0) + 1
        for src, n in sorted(counts.items()):
            out[f"{bench}/points[source={src}]"] = float(n)
        return out

    if "benchmarks" in doc:  # google-benchmark
        out = {}
        for entry in doc["benchmarks"]:
            if entry.get("run_type") == "aggregate":
                continue
            name = entry["name"]
            for key in ("bytes_per_second", "items_per_second"):
                if key in entry:
                    out[f"{name}/{key}"] = float(entry[key])
                    break
            else:
                real = float(entry.get("real_time", 0.0))
                if real > 0.0:
                    out[f"{name}/inv_real_time"] = 1.0 / real
        if not out:
            raise SystemExit("google-benchmark document has no usable entries")
        return out

    raise SystemExit("unrecognised bench JSON (neither pbl-bench-v1 nor "
                     "google-benchmark)")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--candidate", required=True)
    ap.add_argument("--min-ratio", type=float, default=0.7,
                    help="minimum candidate/baseline throughput ratio "
                         "(default 0.7 = fail on a >30%% drop)")
    args = ap.parse_args()

    base = metrics_of(load(args.baseline, "baseline"))
    cand = metrics_of(load(args.candidate, "candidate"))

    failures = []
    for name in sorted(base.keys() | cand.keys()):
        b, c = base.get(name), cand.get(name)
        if b is None or c is None:
            side = "baseline" if b is None else "candidate"
            # Point counts are deterministic (unlike throughput on a
            # noisy runner), so a baselined count vanishing from the
            # candidate is a real break, not runner variance.
            if c is None and "/points[" in name:
                print(f"  REGRESSION {name}: missing from candidate")
                failures.append(name)
                continue
            print(f"  SKIP {name}: missing from {side}")
            continue
        if b <= 0.0:
            print(f"  SKIP {name}: non-positive baseline {b}")
            continue
        ratio = c / b
        verdict = "ok" if ratio >= args.min_ratio else "REGRESSION"
        print(f"  {verdict:>10} {name}: baseline {b:.4g}, candidate {c:.4g}, "
              f"ratio {ratio:.3f}")
        if ratio < args.min_ratio:
            failures.append(name)

    if failures:
        print(f"\nFAIL: {len(failures)} metric(s) dropped below "
              f"{args.min_ratio:.2f}x baseline: {', '.join(failures)}")
        return 1
    print(f"\nOK: all compared metrics within {args.min_ratio:.2f}x baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
