// Google-benchmark microbenchmarks of the GF(2^8) arithmetic and the RSE
// codec hot paths (per-parity encode, worst-case decode, matrix
// inversion).  Complements fig01_codec_throughput, which reports the
// paper's packets/s metric.
//
// The per-kernel sweeps (BM_Kernel*, BM_EncodeKernelSweep) register one
// benchmark per available SIMD kernel so the scalar/ssse3/avx2/neon
// speedups land in the reported numbers; bytes_per_second in the output
// is the per-kernel throughput.  Compare e.g.
//   BM_KernelMulAdd/scalar/1024  vs  BM_KernelMulAdd/avx2/1024
// (docs/KERNELS.md records measured ratios; the acceptance floor is 4x).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "fec/rse_code.hpp"
#include "gf/gf.hpp"
#include "gf/kernels.hpp"
#include "gf/matrix.hpp"
#include "util/rng.hpp"

namespace {

using pbl::Rng;
using pbl::fec::RseCode;
using pbl::fec::Shard;
using pbl::gf::Gf256;

std::vector<std::vector<std::uint8_t>> random_packets(std::size_t count,
                                                      std::size_t len) {
  Rng rng(1);
  std::vector<std::vector<std::uint8_t>> pkts(count);
  for (auto& p : pkts) {
    p.resize(len);
    for (auto& b : p) b = static_cast<std::uint8_t>(rng());
  }
  return pkts;
}

void BM_GfMulAdd(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  const auto& gf = Gf256::instance();
  std::vector<std::uint8_t> dst(len, 0x11), src(len, 0x37);
  for (auto _ : state) {
    gf.mul_add(dst.data(), src.data(), len, 0xA7);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}
BENCHMARK(BM_GfMulAdd)->Arg(256)->Arg(1024)->Arg(8192);

void BM_EncodeParity(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const std::size_t len = 1024;
  RseCode code(k, k + 8 <= 255 ? k + 8 : 255);
  const auto data = random_packets(k, len);
  std::vector<std::span<const std::uint8_t>> views(data.begin(), data.end());
  std::vector<std::uint8_t> out(len);
  std::size_t j = 0;
  for (auto _ : state) {
    code.encode_parity(j, views, out);
    j = (j + 1) % code.h();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k * len));
}
BENCHMARK(BM_EncodeParity)->Arg(7)->Arg(20)->Arg(100);

void BM_DecodeWorstCase(benchmark::State& state) {
  // All h = k/2 losses hit data packets: maximal reconstruction work.
  const auto k = static_cast<std::size_t>(state.range(0));
  const std::size_t h = k / 2;
  const std::size_t len = 1024;
  RseCode code(k, k + h);
  const auto data = random_packets(k, len);
  std::vector<std::span<const std::uint8_t>> views(data.begin(), data.end());
  std::vector<std::vector<std::uint8_t>> parity(h,
                                                std::vector<std::uint8_t>(len));
  for (std::size_t j = 0; j < h; ++j) code.encode_parity(j, views, parity[j]);
  std::vector<Shard> shards;
  for (std::size_t i = h; i < k; ++i) shards.push_back({i, data[i]});
  for (std::size_t j = 0; j < h; ++j) shards.push_back({k + j, parity[j]});
  std::vector<std::vector<std::uint8_t>> out(k, std::vector<std::uint8_t>(len));
  for (auto _ : state) {
    std::vector<std::span<std::uint8_t>> ov(out.begin(), out.end());
    code.decode(shards, ov);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_DecodeWorstCase)->Arg(8)->Arg(20)->Arg(100);

void BM_MatrixInvert(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const pbl::gf::GaloisField field(8);
  const auto g = pbl::gf::Matrix::systematic_generator(field, 2 * n, n);
  std::vector<std::size_t> rows(n);
  for (std::size_t i = 0; i < n; ++i) rows[i] = n + i;  // parity rows
  const auto sub = g.select_rows(rows);
  for (auto _ : state) {
    auto inv = sub.inverted();
    benchmark::DoNotOptimize(inv);
  }
}
BENCHMARK(BM_MatrixInvert)->Arg(7)->Arg(20)->Arg(100);

// ---- per-kernel sweeps -------------------------------------------------

void BM_KernelMulAdd(benchmark::State& state, const pbl::gf::kern::Kernel* k,
                     std::size_t len) {
  std::vector<std::uint8_t> dst(len, 0x11), src(len, 0x37);
  for (auto _ : state) {
    k->mul_add(dst.data(), src.data(), len, 0xA7);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}

void BM_KernelMulAssign(benchmark::State& state,
                        const pbl::gf::kern::Kernel* k, std::size_t len) {
  std::vector<std::uint8_t> dst(len), src(len, 0x37);
  for (auto _ : state) {
    k->mul_assign(dst.data(), src.data(), len, 0xA7);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}

void BM_EncodeKernelSweep(benchmark::State& state,
                          const pbl::gf::kern::Kernel* kern, std::size_t k,
                          std::size_t h, std::size_t len) {
  const pbl::gf::kern::ScopedKernelOverride force(*kern);
  RseCode code(k, k + h);
  const auto data = random_packets(k, len);
  std::vector<std::span<const std::uint8_t>> views(data.begin(), data.end());
  std::vector<std::vector<std::uint8_t>> parity(h,
                                                std::vector<std::uint8_t>(len));
  std::vector<std::span<std::uint8_t>> pviews(parity.begin(), parity.end());
  for (auto _ : state) {
    code.encode(views, pviews);
    benchmark::DoNotOptimize(parity.data());
  }
  // Source bytes coded per iteration (the paper's Fig. 1 denominator).
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k * len));
}

void register_kernel_sweeps() {
  for (const pbl::gf::kern::Kernel* k : pbl::gf::kern::available_kernels()) {
    const std::string name(k->name);
    for (const std::size_t len : {64u, 256u, 1024u, 1500u, 8192u}) {
      benchmark::RegisterBenchmark(
          ("BM_KernelMulAdd/" + name + "/" + std::to_string(len)).c_str(),
          BM_KernelMulAdd, k, len);
      benchmark::RegisterBenchmark(
          ("BM_KernelMulAssign/" + name + "/" + std::to_string(len)).c_str(),
          BM_KernelMulAssign, k, len);
    }
    struct Shape {
      std::size_t k, h;
    };
    for (const Shape s : {Shape{7, 3}, Shape{20, 5}, Shape{100, 20}}) {
      for (const std::size_t len : {256u, 1024u}) {
        benchmark::RegisterBenchmark(
            ("BM_EncodeKernelSweep/" + name + "/k" + std::to_string(s.k) +
             "h" + std::to_string(s.h) + "/" + std::to_string(len))
                .c_str(),
            BM_EncodeKernelSweep, k, s.k, s.h, len);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_kernel_sweeps();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
