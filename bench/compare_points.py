#!/usr/bin/env python3
"""Assert two pbl-bench-v1 documents report identical points.

The repo's simulation engines promise thread-count invariance: for a
fixed seed (and, for the batched engine, a fixed shard count), every
statistic is bit-identical whatever --threads is — only wall-clock
changes.  CI enforces that promise by running a bench twice with
different --threads values and diffing the two JSON documents' points
arrays with this script.

Timing fields are the only legitimate difference, so they are stripped
before comparison (--ignore, default: wall_seconds reps_per_sec
speedup).  Everything else — including the exact floating-point text of
every statistic (bench_common.hpp prints %.17g, which round-trips
doubles exactly) — must match key-for-key.

Usage:
    compare_points.py a.json b.json [--ignore KEY ...]

Exit status 1 on the first structural difference, with the offending
point index and keys printed.
"""

import argparse
import json
import sys

VOLATILE = ["wall_seconds", "reps_per_sec", "speedup"]


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        raise SystemExit(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        raise SystemExit(f"{path} is not valid JSON: {e}")
    if doc.get("schema") != "pbl-bench-v1":
        raise SystemExit(f"{path}: not a pbl-bench-v1 document")
    return doc


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("a")
    ap.add_argument("b")
    ap.add_argument("--ignore", nargs="*", default=VOLATILE,
                    help="point keys allowed to differ "
                         f"(default: {' '.join(VOLATILE)})")
    args = ap.parse_args()

    da, db = load(args.a), load(args.b)
    if da.get("bench") != db.get("bench"):
        raise SystemExit(f"bench name differs: {da.get('bench')!r} vs "
                         f"{db.get('bench')!r}")

    pa, pb = da.get("points", []), db.get("points", [])
    if len(pa) != len(pb):
        raise SystemExit(f"point count differs: {len(pa)} vs {len(pb)}")

    ignore = set(args.ignore)
    bad = 0
    for i, (x, y) in enumerate(zip(pa, pb)):
        xs = {k: v for k, v in x.items() if k not in ignore}
        ys = {k: v for k, v in y.items() if k not in ignore}
        if xs != ys:
            keys = sorted(set(xs) | set(ys))
            diffs = [k for k in keys if xs.get(k) != ys.get(k)]
            print(f"point {i} differs on {diffs}:")
            for k in diffs:
                print(f"    {k}: {xs.get(k)!r} vs {ys.get(k)!r}")
            bad += 1

    if bad:
        print(f"\nFAIL: {bad} of {len(pa)} points differ between "
              f"{args.a} and {args.b}")
        return 1
    print(f"OK: {len(pa)} points identical between {args.a} and {args.b} "
          f"(ignoring {sorted(ignore)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
