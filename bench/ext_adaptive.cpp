// Extension: adaptive hybrid ARQ — protocol NP tuning its proactive
// redundancy from the losses its NAKs reveal, compared with the bare
// reactive protocol and with statically planned redundancy, across loss
// rates the sender was never told about.
#include <cstdio>
#include <optional>
#include <string>

#include "bench_common.hpp"
#include "core/planner.hpp"
#include "loss/loss_model.hpp"
#include "protocol/np_protocol.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pbl;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::size_t receivers =
      static_cast<std::size_t>(cli.get_int64("R", 50));
  const std::size_t tgs = static_cast<std::size_t>(cli.get_int64("tgs", 30));
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }

  bench::banner(
      "Extension: adaptive proactive redundancy in protocol NP",
      "R = " + std::to_string(receivers) + ", k = 10, " +
          std::to_string(tgs) + " TGs, full DES protocol",
      "the controller converges to the offline planner's `a` for the true "
      "loss rate, trading a little bandwidth for most of the feedback");

  Table t({"p", "variant", "tx_per_pkt", "naks", "rounds_polls", "final_a",
           "planned_a", "completion_s"});
  for (const double p : {0.0, 0.01, 0.05, 0.1}) {
    loss::BernoulliLossModel model(p);
    const auto planned =
        p == 0.0 ? std::optional<std::int64_t>(0)
                 : core::plan_proactive_parities(
                       10, p, static_cast<double>(receivers), 0.9, 80);

    for (const char* variant : {"reactive", "adaptive", "planned"}) {
      protocol::NpConfig cfg;
      cfg.k = 10;
      cfg.h = 80;
      cfg.packet_len = 64;
      if (std::string(variant) == "adaptive") cfg.adaptive = true;
      if (std::string(variant) == "planned" && planned)
        cfg.proactive = static_cast<std::size_t>(*planned);
      protocol::NpSession session(model, receivers, tgs, cfg, 5);
      const auto s = session.run();
      t.add_row({p, std::string(variant), s.tx_per_packet,
                 static_cast<long long>(s.naks_sent),
                 static_cast<long long>(s.polls_sent), s.final_proactive,
                 static_cast<double>(planned.value_or(-1)),
                 s.completion_time});
    }
  }
  t.set_precision(4);
  std::printf("%s", t.to_string().c_str());
  return 0;
}
