// Extension: what lossy CONTROL traffic costs — E[M] and completion time
// of the reliable-control NP and layered protocols as the feedback-loss
// rate q_f sweeps over {0, 0.01, 0.05, 0.1, 0.2}, with data loss held at
// --p (docs/ROBUSTNESS.md).
//
// The paper assumes NAKs and POLLs always arrive; this bench measures
// the price of dropping that assumption: lost POLLs widen the collect
// window under seeded backoff, lost NAKs are retransmitted, and lost
// ACKs force re-poll rounds — bandwidth barely moves (repair is still
// parity-driven) but latency grows with q_f.  Sessions are full DES
// protocol runs (real RSE codec, byte-exact verification).
//
// Each point is the mean over --reps sessions fanned out by
// sim::replicate_map (parallel over --threads, bit-identical statistics
// for every thread count).  --json=out.json emits pbl-bench-v1.
#include <cstdio>

#include "bench_common.hpp"
#include "loss/loss_model.hpp"
#include "protocol/layered_protocol.hpp"
#include "protocol/np_protocol.hpp"
#include "sim/replicator.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace pbl;

namespace {

/// Metrics of one reliable-control protocol session (one replication).
struct Sample {
  double tx_per_packet = 0.0;
  double done_s = 0.0;
  double poll_retries = 0.0;
  double nak_retries = 0.0;
  bool ok = false;
};

struct Merged {
  RunningStats tx, done_s, poll_retries, nak_retries;
  bool all_ok = true;

  static Merged of(const std::vector<Sample>& samples) {
    Merged m;
    for (const Sample& s : samples) {
      m.tx.add(s.tx_per_packet);
      m.done_s.add(s.done_s);
      m.poll_retries.add(s.poll_retries);
      m.nak_retries.add(s.nak_retries);
      m.all_ok = m.all_ok && s.ok;
    }
    return m;
  }
};

/// Liveness thresholds sized for the worst q_f in the sweep: an unheard
/// round happens with probability ~ 2 q_f, so the grace and re-POLL
/// budgets need enough headroom that no live receiver is ever evicted.
protocol::RetryConfig sweep_retry() {
  protocol::RetryConfig retry;
  retry.grace_rounds = 20;
  retry.max_retries = 16;
  return retry;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::size_t tgs = static_cast<std::size_t>(cli.get_int64("tgs", 10));
  const std::size_t k = static_cast<std::size_t>(cli.get_int64("k", 8));
  const std::size_t receivers =
      static_cast<std::size_t>(cli.get_int64("receivers", 20));
  const double p = cli.get_double("p", 0.05);
  const std::int64_t reps = cli.get_int64("reps", 4);
  const auto threads = static_cast<unsigned>(cli.get_int64("threads", 0));
  const auto seed = static_cast<std::uint64_t>(cli.get_int64("seed", 1));
  const std::string json_path = cli.get_string("json", "");
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }

  bench::banner(
      "Extension: reliable control under feedback loss q_f",
      "k = " + std::to_string(k) + ", R = " + std::to_string(receivers) +
          ", data loss p = " + std::to_string(p) + ", " +
          std::to_string(tgs) + " TGs, " + std::to_string(reps) +
          " sessions per point, exactly-once verified",
      "E[M] stays near the lossless-control value while completion time "
      "and retry counts grow with q_f — feedback loss costs latency, not "
      "bandwidth");

  bench::BenchJson json("ext_control_loss");
  json.setup("tgs", static_cast<std::int64_t>(tgs));
  json.setup("k", static_cast<std::int64_t>(k));
  json.setup("receivers", static_cast<std::int64_t>(receivers));
  json.setup("p", p);
  json.setup("reps", reps);
  json.setup("seed", static_cast<std::int64_t>(seed));

  double wall = 0.0;
  std::uint64_t total_reps = 0;
  std::uint64_t point_index = 0;

  const auto replicate = [&](auto&& run_session) {
    const auto t0_seed = sim::point_seed(seed, point_index++);
    std::vector<Sample> samples;
    wall += bench::time_seconds([&] {
      samples = sim::replicate_map<Sample>(
          static_cast<std::uint64_t>(reps), t0_seed,
          [&](std::uint64_t, Rng& rng) {
            const std::uint64_t imp_seed = rng();
            return run_session(imp_seed, rng());
          },
          {.threads = threads});
    });
    total_reps += static_cast<std::uint64_t>(reps);
    return Merged::of(samples);
  };

  Table t({"q_f", "protocol", "tx_per_pkt", "ci95", "done_s", "poll_rty",
           "nak_rty", "ok"});
  const auto report = [&](double q_f, const char* name, const Merged& m) {
    t.add_row({q_f, name, m.tx.mean(), m.tx.ci95_halfwidth(),
               m.done_s.mean(),
               static_cast<long long>(m.poll_retries.mean() + 0.5),
               static_cast<long long>(m.nak_retries.mean() + 0.5),
               m.all_ok ? "yes" : "NO"});
    json.point({{"q_f", q_f},
                {"protocol", name},
                {"tx_per_pkt", m.tx.mean()},
                {"ci95", m.tx.ci95_halfwidth()},
                {"done_s", m.done_s.mean()},
                {"poll_retries", m.poll_retries.mean()},
                {"nak_retries", m.nak_retries.mean()},
                {"ok", m.all_ok}});
  };

  loss::BernoulliLossModel model(p);
  for (const double q_f : {0.0, 0.01, 0.05, 0.1, 0.2}) {
    report(q_f, "NP reliable",
           replicate([&](std::uint64_t imp_seed, std::uint64_t s) {
             protocol::NpConfig cfg;
             cfg.k = k;
             cfg.h = 8 * k;
             cfg.packet_len = 64;
             cfg.reliable_control = true;
             cfg.retry = sweep_retry();
             cfg.impairment.control_drop = q_f;
             cfg.impairment.seed = imp_seed;
             protocol::NpSession session(model, receivers, tgs, cfg, s);
             const auto st = session.run();
             return Sample{st.tx_per_packet, st.completion_time,
                           static_cast<double>(st.poll_retries),
                           static_cast<double>(st.nak_retries),
                           st.all_delivered && st.report.complete};
           }));
    report(q_f, "layered reliable",
           replicate([&](std::uint64_t imp_seed, std::uint64_t s) {
             protocol::LayeredConfig cfg;
             cfg.k = k;
             cfg.h = 1;
             cfg.packet_len = 64;
             cfg.reliable_control = true;
             cfg.retry = sweep_retry();
             cfg.impairment.control_drop = q_f;
             cfg.impairment.seed = imp_seed;
             protocol::LayeredSession session(model, receivers, tgs * k, cfg,
                                              s);
             const auto st = session.run();
             return Sample{st.tx_per_packet, st.completion_time,
                           static_cast<double>(st.poll_retries),
                           static_cast<double>(st.nak_retries),
                           st.all_delivered && st.report.complete};
           }));
  }
  t.set_precision(4);
  std::printf("%s", t.to_string().c_str());
  std::printf("\n%llu sessions, %u threads, %.3f s, %.1f reps/s\n",
              static_cast<unsigned long long>(total_reps),
              sim::resolve_threads(threads), wall,
              wall > 0.0 ? static_cast<double>(total_reps) / wall : 0.0);

  json.perf(sim::resolve_threads(threads), wall, total_reps);
  return json.write_file(json_path) ? 0 : 1;
}
