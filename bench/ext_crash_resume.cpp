// Extension: what crash tolerance costs — redundant-packet overhead and
// recovery latency of journaled NP sessions as the checkpoint interval
// sweeps over {1, 4, 16} (docs/ROBUSTNESS.md).
//
// Two phases:
//
//  * Session phase (DES): full crash→recover→resume runs through
//    core::run_resumable_session with a fixed two-crash schedule.  The
//    redundant-data overhead (data transmissions beyond one-per-packet)
//    measures what the crashed lives re-sent; it is write-ahead-bounded —
//    every journaled completion survives, so only in-flight TGs repeat —
//    and therefore nearly interval-invariant, which this bench makes
//    visible.
//
//  * Recovery phase (wall clock): a journal carrying `deltas` delta
//    records is reopened repeatedly and the recover→fold→bump latency
//    measured.  THIS is what checkpointing buys: ANY finite interval
//    compacts the log to roughly one snapshot, so a restarted sender is
//    back on the air in microseconds regardless of session length —
//    while interval 0 (never compact) lets the log and the fold time
//    grow linearly with the number of journaled deltas.
//
// Each session point is the mean over --reps sessions fanned out by
// sim::replicate_map (parallel over --threads, bit-identical statistics
// for every thread count).  --json=out.json emits pbl-bench-v1.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/session_state.hpp"
#include "loss/loss_model.hpp"
#include "sim/replicator.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace pbl;

namespace {

struct Sample {
  double redundant_per_packet = 0.0;
  double incarnations = 0.0;
  double done_s = 0.0;
  double tx_per_packet = 0.0;
  bool ok = false;
};

struct Merged {
  RunningStats redundant, incarnations, done_s, tx;
  bool all_ok = true;

  static Merged of(const std::vector<Sample>& samples) {
    Merged m;
    for (const Sample& s : samples) {
      m.redundant.add(s.redundant_per_packet);
      m.incarnations.add(s.incarnations);
      m.done_s.add(s.done_s);
      m.tx.add(s.tx_per_packet);
      m.all_ok = m.all_ok && s.ok;
    }
    return m;
  }
};

std::vector<core::TgData> random_groups(std::size_t tgs, std::size_t k,
                                        std::size_t packet_len,
                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<core::TgData> groups(tgs);
  for (auto& tg : groups) {
    tg.resize(k);
    for (auto& pkt : tg) {
      pkt.resize(packet_len);
      for (auto& b : pkt) b = static_cast<std::uint8_t>(rng());
    }
  }
  return groups;
}

/// Wall-clock recovery latency: build a journal holding `deltas` deltas
/// under `interval`, then measure reopen (recover + fold + incarnation
/// bump) `rounds` times.  Returns {mean seconds, final journal bytes}.
std::pair<double, std::size_t> recovery_latency(const std::string& path,
                                                std::size_t interval,
                                                std::size_t deltas,
                                                std::size_t rounds) {
  std::remove(path.c_str());
  core::SenderSessionState fresh;
  fresh.session_id = 0xbe7c;
  fresh.k = 8;
  fresh.h = 64;
  fresh.packet_len = 64;
  fresh.num_tgs = static_cast<std::uint32_t>(deltas);
  core::SessionJournal::Options opts;
  opts.checkpoint_interval = interval;
  opts.sync_every = 0;  // measure parsing/folding, not fsync
  {
    core::SessionJournal sj(path, fresh, opts);
    for (std::size_t tg = 0; tg < deltas; ++tg) {
      sj.record_parities_sent(tg, 1 + tg % 7);
      sj.record_tg_completed(tg);
    }
  }
  std::size_t bytes = 0;
  const double wall = bench::time_seconds([&] {
    for (std::size_t i = 0; i < rounds; ++i) {
      core::SessionJournal sj(path, fresh, opts);
      bytes = sj.journal().size_bytes();
    }
  });
  std::remove(path.c_str());
  return {wall / static_cast<double>(rounds), bytes};
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::size_t tgs = static_cast<std::size_t>(cli.get_int64("tgs", 10));
  const std::size_t k = static_cast<std::size_t>(cli.get_int64("k", 8));
  const std::size_t receivers =
      static_cast<std::size_t>(cli.get_int64("receivers", 8));
  const double p = cli.get_double("p", 0.05);
  const std::int64_t reps = cli.get_int64("reps", 4);
  const std::size_t deltas =
      static_cast<std::size_t>(cli.get_int64("deltas", 2000));
  const auto threads = static_cast<unsigned>(cli.get_int64("threads", 0));
  const auto seed = static_cast<std::uint64_t>(cli.get_int64("seed", 1));
  const std::string json_path = cli.get_string("json", "");
  const std::string tmpdir = cli.get_string("tmpdir", "/tmp");
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }

  bench::banner(
      "Extension: crash-tolerant sessions vs checkpoint interval",
      "k = " + std::to_string(k) + ", R = " + std::to_string(receivers) +
          ", data loss p = " + std::to_string(p) + ", " +
          std::to_string(tgs) + " TGs, two scheduled sender crashes, " +
          std::to_string(reps) + " sessions per point; recovery folds " +
          std::to_string(deltas) + " journal deltas",
      "redundant data stays write-ahead-bounded at every interval; any "
      "finite checkpoint interval keeps the journal near one snapshot, "
      "while interval 0 (never compact) grows log size and recovery "
      "latency linearly with session length");

  bench::BenchJson json("ext_crash_resume");
  json.setup("tgs", static_cast<std::int64_t>(tgs));
  json.setup("k", static_cast<std::int64_t>(k));
  json.setup("receivers", static_cast<std::int64_t>(receivers));
  json.setup("p", p);
  json.setup("reps", reps);
  json.setup("deltas", static_cast<std::int64_t>(deltas));
  json.setup("seed", static_cast<std::int64_t>(seed));

  double wall = 0.0;
  std::uint64_t total_reps = 0;
  std::uint64_t point_index = 0;
  loss::BernoulliLossModel model(p);

  Table t({"ckpt", "redund_per_pkt", "ci95", "lives", "done_s",
           "recover_us", "journal_B", "ok"});
  // 0 = never compact: the control that shows what checkpointing buys.
  for (const std::size_t interval :
       {std::size_t{0}, std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
    const auto t0_seed = sim::point_seed(seed, point_index);
    std::vector<Sample> samples;
    wall += bench::time_seconds([&] {
      samples = sim::replicate_map<Sample>(
          static_cast<std::uint64_t>(reps), t0_seed,
          [&](std::uint64_t rep, Rng& rng) {
            core::ResumableConfig cfg;
            cfg.np.k = k;
            cfg.np.h = 8 * k;
            cfg.np.packet_len = 64;
            cfg.np.reliable_control = true;
            cfg.checkpoint_interval = interval;
            cfg.crash_plan = {k * tgs / 3, k * tgs / 2};
            cfg.journal_path = tmpdir + "/pbl_crash_bench_" +
                               std::to_string(seed) + "_" +
                               std::to_string(point_index) + "_" +
                               std::to_string(rep) + ".log";
            std::remove(cfg.journal_path.c_str());
            const std::uint64_t data_seed = rng();
            const auto report = core::run_resumable_session(
                model, receivers,
                random_groups(tgs, k, cfg.np.packet_len, data_seed), cfg,
                rng());
            std::remove(cfg.journal_path.c_str());
            const auto packets = static_cast<double>(k * tgs);
            return Sample{
                static_cast<double>(report.redundant_data) / packets,
                static_cast<double>(report.incarnations),
                report.total_sim_time,
                static_cast<double>(report.total_data_sent +
                                    report.total_parity_sent +
                                    report.total_proactive_sent) /
                    packets,
                report.complete};
          },
          {.threads = threads});
    });
    total_reps += static_cast<std::uint64_t>(reps);
    ++point_index;
    const Merged m = Merged::of(samples);

    const auto [recover_s, journal_bytes] = recovery_latency(
        tmpdir + "/pbl_crash_bench_recover_" + std::to_string(seed) + "_" +
            std::to_string(interval) + ".log",
        interval, deltas, 16);

    t.add_row({static_cast<long long>(interval), m.redundant.mean(),
               m.redundant.ci95_halfwidth(), m.incarnations.mean(),
               m.done_s.mean(), recover_s * 1e6,
               static_cast<long long>(journal_bytes),
               m.all_ok ? "yes" : "NO"});
    json.point({{"checkpoint_interval", static_cast<std::int64_t>(interval)},
                {"redundant_per_packet", m.redundant.mean()},
                {"ci95", m.redundant.ci95_halfwidth()},
                {"incarnations", m.incarnations.mean()},
                {"done_s", m.done_s.mean()},
                {"tx_per_packet", m.tx.mean()},
                {"recover_seconds", recover_s},
                {"journal_bytes", static_cast<std::int64_t>(journal_bytes)},
                {"ok", m.all_ok}});
  }

  t.set_precision(4);
  std::printf("%s", t.to_string().c_str());
  std::printf("\n%llu sessions, %u threads, %.3f s, %.1f reps/s\n",
              static_cast<unsigned long long>(total_reps),
              sim::resolve_threads(threads), wall,
              wall > 0.0 ? static_cast<double>(total_reps) / wall : 0.0);

  json.perf(sim::resolve_threads(threads), wall, total_reps);
  return json.write_file(json_path) ? 0 : 1;
}
