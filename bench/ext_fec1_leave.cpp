// Extension: the paper's Integrated FEC 1 proviso quantified — how group
// departure latency turns into unnecessary receptions.  "There is no
// unnecessary delivery and reception of parity packets, provided that the
// time needed to depart from the group is smaller than the packet
// inter-arrival time" (Section 4.2).
#include <cstdio>

#include "bench_common.hpp"
#include "protocol/fec1_protocol.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pbl;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::size_t receivers =
      static_cast<std::size_t>(cli.get_int64("R", 100));
  const std::size_t tgs = static_cast<std::size_t>(cli.get_int64("tgs", 30));
  const double p = cli.get_double("p", 0.05);
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }

  bench::banner(
      "Extension: FEC1 leave latency vs unnecessary receptions",
      "R = " + std::to_string(receivers) + ", k = 8, p = " +
          std::to_string(p) + ", delta = 1 ms (full DES protocol)",
      "duplicates are zero while departures complete within one packet "
      "slot and grow linearly with the leave window beyond it");

  loss::BernoulliLossModel model(p);
  Table t({"leave_over_delta", "duplicates", "dup_per_receiver_tg",
           "tx_per_packet"});
  for (const double ratio : {0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0}) {
    protocol::Fec1Config cfg;
    cfg.k = 8;
    cfg.h = 60;
    cfg.packet_len = 64;
    cfg.delay = 0.0004;
    cfg.leave_latency = ratio * cfg.delta;
    protocol::Fec1Session session(model, receivers, tgs, cfg, 3);
    const auto s = session.run();
    t.add_row({ratio, static_cast<long long>(s.duplicate_receptions),
               static_cast<double>(s.duplicate_receptions) /
                   (static_cast<double>(receivers) * static_cast<double>(tgs)),
               s.tx_per_packet});
  }
  t.set_precision(4);
  std::printf("%s", t.to_string().c_str());
  return 0;
}
