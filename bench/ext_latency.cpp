// Extension (paper future work): delivery latency of the four recovery
// schemes under the Fig. 13 timing — the quantified version of the
// paper's "we expect a reduction in the required number of transmissions
// will often lead to a reduction in latency".
//
// Columns pair the closed-form latency model (analysis/latency.hpp,
// upper-bound flavoured) with the Monte-Carlo simulators' measured mean
// TG completion times.
#include <cstdio>

#include "analysis/latency.hpp"
#include "bench_common.hpp"
#include "protocol/rounds.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pbl;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double p = cli.get_double("p", 0.01);
  const std::int64_t k = cli.get_int64("k", 7);
  const std::int64_t h = cli.get_int64("h", 2);
  const std::int64_t rmax = cli.get_int64("rmax", 10000);
  const std::int64_t tgs = cli.get_int64("tgs", 400);
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }
  const protocol::Timing timing{};  // delta = 40 ms, T = 300 ms

  bench::banner(
      "Extension: TG delivery latency [s] per scheme",
      "p = " + std::to_string(p) + ", k = " + std::to_string(k) +
          ", layered h = " + std::to_string(h) + ", delta = 40 ms, T = 300 ms",
      "integrated FEC needs fewer rounds AND fewer transmissions, so its "
      "latency advantage exceeds its bandwidth advantage; the stream "
      "scheme (FEC1) is the latency optimum");

  Table t({"R", "nofec_sim", "nofec_model", "layered_sim", "layered_model",
           "fec2_sim", "fec2_model", "fec1_sim", "fec1_model"});
  loss::BernoulliLossModel model(p);
  for (const std::int64_t r : bench::log_grid(1, rmax, 2)) {
    const auto receivers = static_cast<std::size_t>(r);
    const auto rd = static_cast<double>(r);
    protocol::McConfig cfg;
    cfg.k = k;
    cfg.num_tgs = tgs;
    cfg.timing = timing;

    protocol::IidTransmitter t0(model, receivers, Rng(1).split(4 * r));
    const auto nofec = protocol::sim_nofec(t0, cfg);
    cfg.h = h;
    protocol::IidTransmitter t1(model, receivers, Rng(1).split(4 * r + 1));
    const auto layered = protocol::sim_layered(t1, cfg);
    cfg.h = 0;
    protocol::IidTransmitter t2(model, receivers, Rng(1).split(4 * r + 2));
    const auto fec2 = protocol::sim_integrated_naks(t2, cfg);
    protocol::IidTransmitter t3(model, receivers, Rng(1).split(4 * r + 3));
    const auto fec1 = protocol::sim_integrated_stream(t3, cfg);

    t.add_row({static_cast<long long>(r),
               nofec.mean_time,
               analysis::expected_latency_nofec(k, p, rd, timing),
               layered.mean_time,
               analysis::expected_latency_layered(k, h, p, rd, timing),
               fec2.mean_time,
               analysis::expected_latency_integrated(k, p, rd, timing),
               fec1.mean_time,
               analysis::expected_latency_stream(k, p, rd, timing)});
  }
  t.set_precision(4);
  std::printf("%s", t.to_string().c_str());
  return 0;
}
