// Extension: graceful degradation under offered overload
// (docs/ROBUSTNESS.md, "Overload").  Sweeps concurrent impaired NP
// sessions at {0.5, 1, 2, 4}x a base load against the reactor server in
// two modes:
//
//   plain     — no overload controls: unbounded arena, unpaced bursts,
//               every NAK answered individually;
//   hardened  — bounded arena (one frame), token-bucket pacing, runtime
//               NAK suppression with a per-round feedback budget.
//
// Every session still completes byte-perfect in both modes (the shed
// policy stays `defer`, which is lossless); what the sweep shows is HOW
// the server degrades: goodput (delivered data packets/s) and the
// p99 session-completion bucket should fall smoothly with load rather
// than collapse, and the hardened mode's would_block/arena-deferral
// counters record the pressure it absorbed.
//
// Real sockets, real clock: each point is one full server life on
// loopback, so treat absolute numbers as machine-local.  --json=out.json
// emits pbl-bench-v1; perf.reps_per_sec is total delivered data packets
// over total server wall time, the figure the perf-smoke CI leg gates on.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "server/server.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace pbl;

namespace {

std::vector<net::TgBytes> make_payload(Rng rng, std::size_t tgs,
                                       std::size_t k, std::size_t packet_len) {
  std::vector<net::TgBytes> groups(tgs);
  for (auto& tg : groups) {
    tg.resize(k);
    for (auto& pkt : tg) {
      pkt.resize(packet_len);
      for (auto& byte : pkt) byte = static_cast<std::uint8_t>(rng());
    }
  }
  return groups;
}

/// Upper bound of the bucket holding the p-th percentile observation;
/// falls back to the largest finite bound when the mass sits in +inf.
double histogram_percentile(const obs::MetricsRegistry& m,
                            std::string_view name,
                            const std::vector<double>& bounds, double p) {
  const auto& h = m.histogram(name);
  if (h.count == 0) return 0.0;
  const auto rank =
      static_cast<std::uint64_t>(p * static_cast<double>(h.count) + 0.5);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    seen += h.counts[i];
    if (seen >= rank)
      return i < bounds.size() ? bounds[i] : bounds.back();
  }
  return bounds.back();
}

struct RunResult {
  double wall = 0.0;          ///< server-life seconds for this point
  double goodput_pps = 0.0;   ///< delivered data packets per second
  double p99_bucket_s = 0.0;  ///< p99 session-duration bucket bound
  std::uint64_t completed = 0;
  std::uint64_t would_block = 0;
  std::uint64_t deferrals = 0;
  std::uint64_t suppressed = 0;
};

RunResult run_point(const std::string& dir, bool hardened,
                    std::size_t sessions, std::size_t tgs, std::size_t k,
                    std::size_t packet_len, double loss, std::uint64_t seed) {
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  server::Reactor reactor;
  server::ServerConfig cfg;
  cfg.max_sessions = sessions;
  cfg.np.k = k;
  cfg.np.h = 8;
  cfg.np.packet_len = packet_len;
  cfg.np.poll_window = 0.02;
  cfg.np.drain_timeout = 0.3;
  cfg.np.reliable_control = true;
  cfg.receiver_idle_timeout = 10.0;
  cfg.journal_dir = dir;
  cfg.exit_when_idle = true;
  if (hardened) {
    cfg.np.arena_frames = 1;
    cfg.np.overload.pace_rate = 4000.0;
    cfg.np.overload.pace_burst = 8.0;
    cfg.np.overload.nak_suppression = true;
    cfg.np.overload.feedback_budget = 2;
  }

  server::MulticastServer server(reactor, cfg);
  Rng root(seed);
  for (std::uint64_t id = 0; id < sessions; ++id) {
    server::MulticastServer::SessionSpec spec;
    spec.id = id;
    spec.groups = make_payload(root.split(id), tgs, k, packet_len);
    spec.receivers = 2;
    spec.data_loss = loss;
    spec.seed = root.split(id ^ 0x9E3779B9u)();
    if (!server.submit(spec)) break;
  }

  // Watchdog: a wedged run ends (and shows up as incomplete) instead of
  // hanging the perf leg.
  reactor.add_timer(reactor.now() + 120.0, [&] { reactor.stop(); });

  RunResult res;
  res.wall = bench::time_seconds([&] { reactor.run(); });
  server.snapshot_json();  // folds live fault/pressure counters
  const auto& m = server.server_metrics();
  res.completed = server.completed_sessions();
  res.would_block = m.counter("would_block_total");
  res.deferrals = m.counter("total_arena_deferrals");
  res.suppressed = m.counter("total_naks_suppressed");
  res.p99_bucket_s = histogram_percentile(
      m, "session_duration_seconds",
      {0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0}, 0.99);
  const double delivered =
      static_cast<double>(res.completed * tgs * k);
  if (res.wall > 0.0) res.goodput_pps = delivered / res.wall;

  std::filesystem::remove_all(dir);
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto base = static_cast<std::size_t>(cli.get_int64("sessions", 4));
  const auto tgs = static_cast<std::size_t>(cli.get_int64("tgs", 6));
  const auto k = static_cast<std::size_t>(cli.get_int64("k", 4));
  const auto packet_len =
      static_cast<std::size_t>(cli.get_int64("packet-len", 64));
  const double loss = cli.get_double("loss", 0.15);
  const auto seed = static_cast<std::uint64_t>(cli.get_int64("seed", 1));
  const std::string json_path = cli.get_string("json", "");
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }

  bench::banner(
      "Extension: server goodput under offered-load sweep",
      std::to_string(base) + " base sessions x {0.5, 1, 2, 4}, " +
          std::to_string(tgs) + " TGs, k=" + std::to_string(k) +
          ", loss " + std::to_string(loss) +
          ", plain vs hardened (1-frame arena + pacing + NAK suppression)",
      "goodput and p99 completion degrade smoothly with load in both "
      "modes; the hardened mode completes the same bytes within bounded "
      "memory, logging the pressure as deferral/pushback counters");

  bench::BenchJson json("ext_overload");
  json.setup("base_sessions", static_cast<std::int64_t>(base));
  json.setup("tgs", static_cast<std::int64_t>(tgs));
  json.setup("k", static_cast<std::int64_t>(k));
  json.setup("packet_len", static_cast<std::int64_t>(packet_len));
  json.setup("loss", loss);
  json.setup("seed", static_cast<std::int64_t>(seed));

  const std::string dir =
      (std::filesystem::temp_directory_path() / "pbl_ext_overload").string();
  const double multipliers[] = {0.5, 1.0, 2.0, 4.0};

  double total_wall = 0.0;
  std::uint64_t total_packets = 0;
  bool all_complete = true;

  Table t({"load_x", "mode", "sessions", "completed", "wall_s",
           "goodput_pps", "p99_bucket_s", "would_block", "deferrals",
           "suppressed"});
  for (const double mult : multipliers) {
    const auto sessions = static_cast<std::size_t>(
        std::max(1.0, static_cast<double>(base) * mult));
    for (const bool hardened : {false, true}) {
      const RunResult r = run_point(dir, hardened, sessions, tgs, k,
                                    packet_len, loss, seed);
      all_complete = all_complete && r.completed == sessions;
      total_wall += r.wall;
      total_packets += r.completed * tgs * k;
      const std::string mode = hardened ? "hardened" : "plain";
      t.add_row({mult, mode, static_cast<long long>(sessions),
                 static_cast<long long>(r.completed), r.wall, r.goodput_pps,
                 r.p99_bucket_s, static_cast<long long>(r.would_block),
                 static_cast<long long>(r.deferrals),
                 static_cast<long long>(r.suppressed)});
      json.point({{"load_x", mult},
                  {"mode", mode},
                  {"sessions", static_cast<std::int64_t>(sessions)},
                  {"completed", r.completed},
                  {"wall_s", r.wall},
                  {"goodput_pps", r.goodput_pps},
                  {"p99_bucket_s", r.p99_bucket_s},
                  {"would_block", r.would_block},
                  {"deferrals", r.deferrals},
                  {"suppressed", r.suppressed}});
    }
  }

  t.set_precision(4);
  std::printf("%s", t.to_string().c_str());
  std::printf("\n%llu data packets delivered, %.3f s total server time, "
              "%.3g pkts/s%s\n",
              static_cast<unsigned long long>(total_packets), total_wall,
              total_wall > 0.0
                  ? static_cast<double>(total_packets) / total_wall
                  : 0.0,
              all_complete ? "" : "  [INCOMPLETE RUNS]");

  json.setup("all_complete", all_complete);
  json.perf(1, total_wall, total_packets);
  if (!json.write_file(json_path)) return 1;
  return all_complete ? 0 : 1;
}
