// Extension: the protocol-level analogue of Fig. 5 — all four recovery
// schemes as FULL discrete-event protocols (real RSE codec, real bytes,
// NAK suppression, byte-exact verification) on one scenario.
//
// The Monte-Carlo figures count idealised transmissions; this bench shows
// the same ordering emerging from complete protocol machinery, plus the
// costs the models abstract away (NAK counts, duplicates, wall-clock).
#include <cstdio>

#include "bench_common.hpp"
#include "loss/loss_model.hpp"
#include "protocol/arq_nofec.hpp"
#include "protocol/fec1_protocol.hpp"
#include "protocol/layered_protocol.hpp"
#include "protocol/np_protocol.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pbl;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::size_t tgs = static_cast<std::size_t>(cli.get_int64("tgs", 20));
  const std::size_t k = static_cast<std::size_t>(cli.get_int64("k", 8));
  const double p = cli.get_double("p", 0.05);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int64("seed", 1));
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }

  bench::banner(
      "Extension: all four schemes as full DES protocols",
      "k = " + std::to_string(k) + ", p = " + std::to_string(p) + ", " +
          std::to_string(tgs) + " groups of real bytes, verified end to end",
      "integrated (NP/FEC1) < layered < ARQ in transmissions; ARQ floods "
      "NAKs and duplicates; FEC1 needs no feedback at all");

  Table t({"R", "protocol", "tx_per_pkt", "naks", "dups", "done_s", "ok"});
  for (const std::size_t receivers : {10u, 100u, 1000u}) {
    loss::BernoulliLossModel model(p);

    {
      protocol::ArqConfig cfg;
      cfg.k = k;
      cfg.packet_len = 64;
      protocol::ArqSession s(model, receivers, tgs, cfg, seed);
      const auto st = s.run();
      t.add_row({static_cast<long long>(receivers), "ARQ (N2-style)",
                 st.tx_per_packet, static_cast<long long>(st.naks_sent),
                 static_cast<long long>(st.duplicate_receptions),
                 st.completion_time, st.all_delivered ? "yes" : "NO"});
    }
    {
      protocol::LayeredConfig cfg;
      cfg.k = k;
      cfg.h = 1;
      cfg.packet_len = 64;
      protocol::LayeredSession s(model, receivers, tgs * k, cfg, seed);
      const auto st = s.run();
      t.add_row({static_cast<long long>(receivers), "layered FEC (8+1)",
                 st.tx_per_packet, static_cast<long long>(st.naks_sent),
                 static_cast<long long>(st.duplicate_deliveries),
                 st.completion_time, st.all_delivered ? "yes" : "NO"});
    }
    {
      protocol::NpConfig cfg;
      cfg.k = k;
      cfg.h = 8 * k;
      cfg.packet_len = 64;
      protocol::NpSession s(model, receivers, tgs, cfg, seed);
      const auto st = s.run();
      t.add_row({static_cast<long long>(receivers), "NP (integrated FEC2)",
                 st.tx_per_packet, static_cast<long long>(st.naks_sent),
                 static_cast<long long>(st.duplicate_receptions),
                 st.completion_time, st.all_delivered ? "yes" : "NO"});
    }
    {
      protocol::Fec1Config cfg;
      cfg.k = k;
      cfg.h = 8 * k;
      cfg.packet_len = 64;
      cfg.delay = 0.0004;
      protocol::Fec1Session s(model, receivers, tgs, cfg, seed);
      const auto st = s.run();
      t.add_row({static_cast<long long>(receivers), "FEC1 (no feedback)",
                 st.tx_per_packet, 0LL,
                 static_cast<long long>(st.duplicate_receptions),
                 st.completion_time, st.all_delivered ? "yes" : "NO"});
    }
  }
  t.set_precision(4);
  std::printf("%s", t.to_string().c_str());
  return 0;
}
