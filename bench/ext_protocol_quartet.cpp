// Extension: the protocol-level analogue of Fig. 5 — all four recovery
// schemes as FULL discrete-event protocols (real RSE codec, real bytes,
// NAK suppression, byte-exact verification) on one scenario.
//
// The Monte-Carlo figures count idealised transmissions; this bench shows
// the same ordering emerging from complete protocol machinery, plus the
// costs the models abstract away (NAK counts, duplicates, wall-clock).
//
// Each protocol row is the mean over --reps independent sessions fanned
// out by sim::replicate_map (parallel over --threads, deterministic for
// any thread count).  --json=out.json emits pbl-bench-v1.
#include <cstdio>

#include "bench_common.hpp"
#include "loss/loss_model.hpp"
#include "protocol/arq_nofec.hpp"
#include "protocol/fec1_protocol.hpp"
#include "protocol/layered_protocol.hpp"
#include "protocol/np_protocol.hpp"
#include "sim/replicator.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace pbl;

namespace {

/// Metrics of one full protocol session (one replication).
struct Sample {
  double tx_per_packet = 0.0;
  double naks = 0.0;
  double dups = 0.0;
  double done_s = 0.0;
  bool ok = false;
};

/// Replication means + the all-delivered conjunction over a sample set.
struct Merged {
  RunningStats tx, naks, dups, done_s;
  bool all_ok = true;

  static Merged of(const std::vector<Sample>& samples) {
    Merged m;
    for (const Sample& s : samples) {
      m.tx.add(s.tx_per_packet);
      m.naks.add(s.naks);
      m.dups.add(s.dups);
      m.done_s.add(s.done_s);
      m.all_ok = m.all_ok && s.ok;
    }
    return m;
  }
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::size_t tgs = static_cast<std::size_t>(cli.get_int64("tgs", 20));
  const std::size_t k = static_cast<std::size_t>(cli.get_int64("k", 8));
  const double p = cli.get_double("p", 0.05);
  const std::int64_t reps = cli.get_int64("reps", 3);
  const auto threads = static_cast<unsigned>(cli.get_int64("threads", 0));
  const auto seed = static_cast<std::uint64_t>(cli.get_int64("seed", 1));
  const std::string json_path = cli.get_string("json", "");
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }

  bench::banner(
      "Extension: all four schemes as full DES protocols",
      "k = " + std::to_string(k) + ", p = " + std::to_string(p) + ", " +
          std::to_string(tgs) + " groups of real bytes, " +
          std::to_string(reps) + " sessions per row, verified end to end",
      "integrated (NP/FEC1) < layered < ARQ in transmissions; ARQ floods "
      "NAKs and duplicates; FEC1 needs no feedback at all");

  bench::BenchJson json("ext_protocol_quartet");
  json.setup("tgs", static_cast<std::int64_t>(tgs));
  json.setup("k", static_cast<std::int64_t>(k));
  json.setup("p", p);
  json.setup("reps", reps);
  json.setup("seed", static_cast<std::int64_t>(seed));

  double wall = 0.0;
  std::uint64_t total_reps = 0;
  std::uint64_t point_index = 0;

  // Runs --reps sessions of one protocol (session seeds drawn from the
  // point's replication substreams) and reports the merged metrics.
  const auto replicate = [&](auto&& run_session) {
    const auto t0_seed = sim::point_seed(seed, point_index++);
    double secs = 0.0;
    std::vector<Sample> samples;
    secs = bench::time_seconds([&] {
      samples = sim::replicate_map<Sample>(
          static_cast<std::uint64_t>(reps), t0_seed,
          [&](std::uint64_t, Rng& rng) { return run_session(rng()); },
          {.threads = threads});
    });
    wall += secs;
    total_reps += static_cast<std::uint64_t>(reps);
    return Merged::of(samples);
  };

  Table t({"R", "protocol", "tx_per_pkt", "ci95", "naks", "dups", "done_s",
           "ok"});
  const auto report = [&](std::size_t receivers, const char* name,
                          const Merged& m) {
    t.add_row({static_cast<long long>(receivers), name, m.tx.mean(),
               m.tx.ci95_halfwidth(),
               static_cast<long long>(m.naks.mean() + 0.5),
               static_cast<long long>(m.dups.mean() + 0.5), m.done_s.mean(),
               m.all_ok ? "yes" : "NO"});
    json.point({{"R", static_cast<std::int64_t>(receivers)},
                {"protocol", name},
                {"tx_per_pkt", m.tx.mean()},
                {"ci95", m.tx.ci95_halfwidth()},
                {"naks", m.naks.mean()},
                {"dups", m.dups.mean()},
                {"done_s", m.done_s.mean()},
                {"ok", m.all_ok}});
  };

  for (const std::size_t receivers : {10u, 100u, 1000u}) {
    loss::BernoulliLossModel model(p);

    report(receivers, "ARQ (N2-style)", replicate([&](std::uint64_t s) {
             protocol::ArqConfig cfg;
             cfg.k = k;
             cfg.packet_len = 64;
             protocol::ArqSession session(model, receivers, tgs, cfg, s);
             const auto st = session.run();
             return Sample{st.tx_per_packet,
                           static_cast<double>(st.naks_sent),
                           static_cast<double>(st.duplicate_receptions),
                           st.completion_time, st.all_delivered};
           }));
    report(receivers, "layered FEC (8+1)", replicate([&](std::uint64_t s) {
             protocol::LayeredConfig cfg;
             cfg.k = k;
             cfg.h = 1;
             cfg.packet_len = 64;
             protocol::LayeredSession session(model, receivers, tgs * k, cfg,
                                              s);
             const auto st = session.run();
             return Sample{st.tx_per_packet,
                           static_cast<double>(st.naks_sent),
                           static_cast<double>(st.duplicate_deliveries),
                           st.completion_time, st.all_delivered};
           }));
    report(receivers, "NP (integrated FEC2)", replicate([&](std::uint64_t s) {
             protocol::NpConfig cfg;
             cfg.k = k;
             cfg.h = 8 * k;
             cfg.packet_len = 64;
             protocol::NpSession session(model, receivers, tgs, cfg, s);
             const auto st = session.run();
             return Sample{st.tx_per_packet,
                           static_cast<double>(st.naks_sent),
                           static_cast<double>(st.duplicate_receptions),
                           st.completion_time, st.all_delivered};
           }));
    report(receivers, "FEC1 (no feedback)", replicate([&](std::uint64_t s) {
             protocol::Fec1Config cfg;
             cfg.k = k;
             cfg.h = 8 * k;
             cfg.packet_len = 64;
             cfg.delay = 0.0004;
             protocol::Fec1Session session(model, receivers, tgs, cfg, s);
             const auto st = session.run();
             return Sample{st.tx_per_packet, 0.0,
                           static_cast<double>(st.duplicate_receptions),
                           st.completion_time, st.all_delivered};
           }));
  }
  t.set_precision(4);
  std::printf("%s", t.to_string().c_str());
  std::printf("\n%llu sessions, %u threads, %.3f s\n",
              static_cast<unsigned long long>(total_reps),
              sim::resolve_threads(threads), wall);

  json.perf(sim::resolve_threads(threads), wall, total_reps);
  return json.write_file(json_path) ? 0 : 1;
}
