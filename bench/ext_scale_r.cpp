// Extension: simulation throughput versus population size — the exact
// per-receiver engine against the batched shard engine
// (core::SimEngine::kBatched, docs/SCALING.md) on protocol NP and
// layered FEC with k = 7, p = 0.01.
//
// The exact engine walks every receiver per transmission (O(R)), so its
// reps/sec collapses linearly with R and the sweep stops at
// --exact-rmax (default 10^4).  The batched engine keeps per-receiver
// state in packed bit-planes (layered) or, for NP under IID loss,
// deficit-class counts whose per-round cost is independent of R, so the
// same full-protocol replications reach R = 10^6.  The headline metric
// is the per-scheme batched/exact speedup at R = --exact-rmax (the
// largest R both engines measure); CI gates perf.reps_per_sec (batched
// totals) against bench/baselines/BENCH_ext_scale_r.json.
//
// --threads sets the batched engine's shard worker count and never
// changes any point value — CI runs --threads=1 and --threads=4 and
// asserts identical points arrays (bench/compare_points.py).  The
// timing columns (wall_seconds, reps_per_sec, speedup) are the only
// volatile fields.
#include <cstdio>

#include "bench_common.hpp"
#include "core/reliable_multicast.hpp"
#include "sim/replicator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pbl;

namespace {

struct EnginePoint {
  double mean_tx = 0.0;
  double wall = 0.0;
  double reps_per_sec = 0.0;
};

struct Scheme {
  const char* name;
  core::RecoveryMode mode;
  std::int64_t h;
};

/// The two full-protocol schemes swept over R: protocol NP (the paper's
/// integrated FEC 2, unlimited parities) and layered FEC with h = 1.
constexpr Scheme kSchemes[] = {
    {"np", core::RecoveryMode::kIntegratedFec2, 0},
    {"layered", core::RecoveryMode::kLayeredFec, 1},
};

/// --reps replications of `scheme` at population r on one engine, run
/// sequentially so the wall clock measures the engine itself.
/// Replication seeds depend only on (seed, r, scheme, rep), never on
/// the grid or the thread count.
EnginePoint measure(core::SimEngine engine, const Scheme& scheme,
                    std::int64_t r, std::size_t scheme_index, double p,
                    std::int64_t k, std::int64_t tgs, std::int64_t reps,
                    std::int64_t shards, unsigned threads,
                    std::uint64_t seed) {
  EnginePoint out;
  double sum = 0.0;
  out.wall = bench::time_seconds([&] {
    for (std::int64_t rep = 0; rep < reps; ++rep) {
      core::MulticastConfig cfg;
      cfg.k = k;
      cfg.receivers = static_cast<std::size_t>(r);
      cfg.p = p;
      cfg.num_tgs = tgs;
      cfg.mode = scheme.mode;
      cfg.h = scheme.h;
      cfg.engine = engine;
      cfg.shards = static_cast<std::size_t>(shards);
      cfg.engine_threads = threads;
      cfg.seed = sim::point_seed(
          seed, (static_cast<std::uint64_t>(r) * 2 + scheme_index) * 64 +
                    static_cast<std::uint64_t>(rep));
      sum += core::simulate(cfg).mean_tx;
    }
  });
  out.mean_tx = sum / static_cast<double>(reps);
  out.reps_per_sec =
      out.wall > 0.0 ? static_cast<double>(reps) / out.wall : 0.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double p = cli.get_double("p", 0.01);
  const std::int64_t k = cli.get_int64("k", 7);
  const std::int64_t rmax = cli.get_int64("rmax", 1000000);
  const std::int64_t exact_rmax = cli.get_int64("exact-rmax", 10000);
  const std::int64_t reps = cli.get_int64("reps", 4);
  const std::int64_t tgs = cli.get_int64("tgs", 10);
  const std::int64_t shards = cli.get_int64("shards", 0);
  const auto threads = static_cast<unsigned>(cli.get_int64("threads", 1));
  const auto seed = static_cast<std::uint64_t>(cli.get_int64("seed", 1));
  const std::string json_path = cli.get_string("json", "");
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }

  bench::banner(
      "Extension: reps/sec vs R, exact engine vs batched shard engine",
      "protocol NP + layered (h = 1), k = " + std::to_string(k) +
          ", p = " + std::to_string(p) + ", " + std::to_string(reps) + "x" +
          std::to_string(tgs) +
          " TGs per point, exact to R = " + std::to_string(exact_rmax) +
          ", batched to R = " + std::to_string(rmax),
      "batched receiver state (bit-planes; deficit-class counts for NP) "
      "keeps full-protocol simulation practical to R = 10^6");

  bench::BenchJson json("ext_scale_r");
  json.setup("p", p);
  json.setup("k", k);
  json.setup("rmax", rmax);
  json.setup("exact_rmax", exact_rmax);
  json.setup("reps", reps);
  json.setup("tgs", tgs);
  json.setup("shards", shards);
  json.setup("seed", static_cast<std::int64_t>(seed));

  Table t({"R", "scheme", "engine", "mean_tx", "wall_s", "reps_per_sec"});
  constexpr std::size_t kNumSchemes = std::size(kSchemes);
  std::int64_t speedup_r = 0;  // largest R measured by both engines
  double exact_rps[kNumSchemes] = {};
  double batched_rps[kNumSchemes] = {};
  double batch_wall = 0.0;
  std::uint64_t batch_reps_total = 0;
  for (const std::int64_t r : bench::log_grid(10, rmax, 1)) {
    for (std::size_t si = 0; si < kNumSchemes; ++si) {
      const Scheme& scheme = kSchemes[si];
      if (r <= exact_rmax) {
        const EnginePoint e = measure(core::SimEngine::kExact, scheme, r, si,
                                      p, k, tgs, reps, shards, threads, seed);
        t.add_row({static_cast<long long>(r), scheme.name, "exact", e.mean_tx,
                   e.wall, e.reps_per_sec});
        json.point({{"R", r},
                    {"scheme", scheme.name},
                    {"engine", "exact"},
                    {"mean_tx", e.mean_tx},
                    {"wall_seconds", e.wall},
                    {"reps_per_sec", e.reps_per_sec}});
        speedup_r = r;
        exact_rps[si] = e.reps_per_sec;
      }
      const EnginePoint b = measure(core::SimEngine::kBatched, scheme, r, si,
                                    p, k, tgs, reps, shards, threads, seed);
      t.add_row({static_cast<long long>(r), scheme.name, "batched", b.mean_tx,
                 b.wall, b.reps_per_sec});
      json.point({{"R", r},
                  {"scheme", scheme.name},
                  {"engine", "batched"},
                  {"mean_tx", b.mean_tx},
                  {"wall_seconds", b.wall},
                  {"reps_per_sec", b.reps_per_sec}});
      if (r <= exact_rmax) batched_rps[si] = b.reps_per_sec;
      batch_wall += b.wall;
      batch_reps_total += static_cast<std::uint64_t>(reps);
    }
  }
  t.set_precision(5);
  std::printf("%s", t.to_string().c_str());

  std::printf("\n");
  for (std::size_t si = 0; si < kNumSchemes; ++si) {
    const double speedup =
        exact_rps[si] > 0.0 ? batched_rps[si] / exact_rps[si] : 0.0;
    std::printf("batched/exact speedup at R = %lld (%s): %.1fx\n",
                static_cast<long long>(speedup_r), kSchemes[si].name, speedup);
    json.point({{"metric", "speedup_at_exact_rmax"},
                {"scheme", kSchemes[si].name},
                {"R", speedup_r},
                {"speedup", speedup}});
  }

  json.perf(sim::resolve_threads(threads), batch_wall, batch_reps_total);
  return json.write_file(json_path) ? 0 : 1;
}
