// Extension: what the batched UDP data plane buys — loopback packet rate
// (pps) and wire throughput (Gbps) of send_batch_blocking under the
// sendmmsg backend vs the portable per-sendto fallback, across payload
// sizes (docs/DATAPLANE.md).
//
// The frames are built once per point through the zero-copy tx path the
// protocol senders use: a net::PacketArena slab, sealed in place with
// fec::serialize_into — so the measured loop is exactly the production
// data plane minus the protocol logic.  The receiver socket is never
// drained; once its buffer fills the kernel drops on delivery, which is
// the standard way to measure raw tx syscall rate without a consumer
// thread.  Differences between the two backends are therefore pure
// syscall amortisation: one sendmmsg per 128 frames vs one sendto each.
//
// Each point reports the best of --reps passes (minimum wall time — the
// run least disturbed by scheduler noise).  --json=out.json emits
// pbl-bench-v1; perf.reps_per_sec is total frames over total send time,
// the figure the perf-smoke CI leg gates on.
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fec/packet.hpp"
#include "net/udp/packet_arena.hpp"
#include "net/udp/udp_transport.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pbl;

namespace {

struct Rate {
  double pps = 0.0;
  double gbps = 0.0;
  double wall = 0.0;  ///< best-pass seconds, summed into perf totals
};

Rate measure(net::UdpSocket& tx, std::span<const net::FrameRef> refs,
             std::size_t reps) {
  const double bytes_per_frame =
      static_cast<double>(refs.empty() ? 0 : refs.front().bytes.size());
  tx.send_batch_blocking(refs);  // warm-up pass (page-in, route cache)
  double best = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    const double s =
        bench::time_seconds([&] { tx.send_batch_blocking(refs); });
    if (best == 0.0 || s < best) best = s;
  }
  Rate rate;
  rate.wall = best;
  if (best > 0.0) {
    rate.pps = static_cast<double>(refs.size()) / best;
    rate.gbps = static_cast<double>(refs.size()) * bytes_per_frame * 8.0 /
                best / 1e9;
  }
  return rate;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto frames = static_cast<std::size_t>(cli.get_int64("frames", 40000));
  const auto reps = static_cast<std::size_t>(cli.get_int64("reps", 3));
  const std::string json_path = cli.get_string("json", "");
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }

  bench::banner(
      "Extension: batched UDP data-plane rate (sendmmsg vs per-sendto)",
      std::to_string(frames) + " arena-built frames per pass, best of " +
          std::to_string(reps) + " passes, payloads {64, 512, 1400} B, "
          "loopback, undrained receiver",
      "batching amortises one syscall over 128 frames, so small payloads "
      "(syscall-bound) gain the most; large payloads converge toward the "
      "kernel's per-byte copy cost");

  bench::BenchJson json("ext_udp_rate");
  json.setup("frames", static_cast<std::int64_t>(frames));
  json.setup("reps", static_cast<std::int64_t>(reps));
  json.setup("batched_available", net::udp_batched_available());

  double total_wall = 0.0;
  std::uint64_t total_frames = 0;

  Table t({"payload_B", "backend", "pps", "gbps", "speedup_vs_sendto"});
  for (const std::size_t payload :
       {std::size_t{64}, std::size_t{512}, std::size_t{1400}}) {
    net::UdpSocket rx;  // never drained: the kernel drops once rcvbuf fills
    net::UdpSocket tx;

    // Build every frame through the production zero-copy path: arena
    // slab, header + payload + CRC sealed in place.
    const std::size_t wire = fec::wire_size(payload);
    net::PacketArena arena(wire, frames);
    std::vector<net::FrameRef> refs;
    refs.reserve(frames);
    fec::Packet p;
    p.header.type = fec::PacketType::kData;
    p.header.k = 1;
    p.header.n = 1;
    p.header.index = 0;
    p.payload.assign(payload, 0x5A);
    for (std::size_t i = 0; i < frames; ++i) {
      const auto frame = arena.acquire();
      if (!frame) return 1;  // capacity == frames: cannot happen
      p.header.seq = static_cast<std::uint32_t>(i);
      fec::serialize_into(p, frame->bytes);
      refs.push_back({rx.port(), frame->bytes});
    }

    Rate fallback, batched;
    {
      net::ScopedUdpBackendOverride o(net::UdpBackend::kFallback);
      fallback = measure(tx, refs, reps);
    }
    {
      net::ScopedUdpBackendOverride o(net::UdpBackend::kBatched);
      batched = measure(tx, refs, reps);
    }
    total_wall += fallback.wall + batched.wall;
    total_frames += 2 * frames;

    const double speedup =
        fallback.pps > 0.0 ? batched.pps / fallback.pps : 0.0;
    t.add_row({static_cast<long long>(payload), std::string("fallback"),
               fallback.pps, fallback.gbps, 1.0});
    t.add_row({static_cast<long long>(payload), std::string("batched"),
               batched.pps, batched.gbps, speedup});
    json.point({{"payload", static_cast<std::int64_t>(payload)},
                {"backend", "fallback"},
                {"pps", fallback.pps},
                {"gbps", fallback.gbps}});
    json.point({{"payload", static_cast<std::int64_t>(payload)},
                {"backend", "batched"},
                {"pps", batched.pps},
                {"gbps", batched.gbps},
                {"speedup_vs_sendto", speedup}});
  }

  t.set_precision(4);
  std::printf("%s", t.to_string().c_str());
  std::printf("\n%llu frames, %.3f s send time, %.3g frames/s\n",
              static_cast<unsigned long long>(total_frames), total_wall,
              total_wall > 0.0 ? static_cast<double>(total_frames) / total_wall
                               : 0.0);

  json.perf(1, total_wall, total_frames);
  return json.write_file(json_path) ? 0 : 1;
}
