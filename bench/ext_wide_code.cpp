// Extension: the cost of larger symbols, quantified.  Section 2.2 notes
// that RSE coders over large symbols "are difficult to implement" and
// picks m = 8; GF(2^16) lifts the n <= 255 block limit at a measurable
// throughput price (log-table multiplies instead of a dense product
// table).  This bench measures both codecs on shared shapes and the wide
// codec on shapes the narrow one cannot express.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "fec/rse_code.hpp"
#include "fec/wide_code.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace pbl;

namespace {

std::vector<std::vector<std::uint8_t>> random_packets(std::size_t count,
                                                      std::size_t len) {
  Rng rng(1);
  std::vector<std::vector<std::uint8_t>> pkts(count);
  for (auto& p : pkts) {
    p.resize(len);
    for (auto& b : p) b = static_cast<std::uint8_t>(rng());
  }
  return pkts;
}

template <typename Encode>
double encode_rate(std::size_t k, Encode&& encode, double min_seconds) {
  std::uint64_t blocks = 0;
  double elapsed = 0.0;
  while (elapsed < min_seconds) {
    elapsed += bench::time_seconds([&] {
      for (int rep = 0; rep < 4; ++rep) {
        encode();
        ++blocks;
      }
    });
  }
  return static_cast<double>(blocks) * static_cast<double>(k) / elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::size_t packet_len =
      static_cast<std::size_t>(cli.get_int64("packet-bytes", 1024));
  const double min_seconds = cli.get_double("min-seconds", 0.05);
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }

  bench::banner(
      "Extension: GF(2^8) vs GF(2^16) codec throughput",
      std::to_string(packet_len) + "-byte packets, encode rate in data pkts/s",
      "the wide codec unlocks n > 255 at a constant-factor slowdown — the "
      "implementation cost Section 2.2 alludes to");

  Table t({"k", "h", "narrow_m8_pkts_per_s", "wide_m16_pkts_per_s",
           "slowdown"});
  for (const auto& [k, h] : {std::pair<std::size_t, std::size_t>{7, 3},
                            {20, 5}, {100, 20}}) {
    const auto data = random_packets(k, packet_len);
    std::vector<std::span<const std::uint8_t>> views(data.begin(), data.end());
    std::vector<std::uint8_t> out(packet_len);

    fec::RseCode narrow(k, k + h);
    const double narrow_rate = encode_rate(k, [&] {
      for (std::size_t j = 0; j < h; ++j)
        narrow.encode_parity(j, views, out);
    }, min_seconds);

    fec::RseCodeWide wide(k, k + h);
    const double wide_rate = encode_rate(k, [&] {
      for (std::size_t j = 0; j < h; ++j) wide.encode_parity(j, views, out);
    }, min_seconds);

    t.add_row({static_cast<long long>(k), static_cast<long long>(h),
               narrow_rate, wide_rate, narrow_rate / wide_rate});
  }
  t.set_precision(4);
  std::printf("%s", t.to_string().c_str());

  // Shapes only the wide codec can express.
  Table t2({"k", "h", "wide_m16_pkts_per_s"});
  for (const auto& [k, h] : {std::pair<std::size_t, std::size_t>{250, 50},
                            {500, 100}}) {
    const auto data = random_packets(k, packet_len);
    std::vector<std::span<const std::uint8_t>> views(data.begin(), data.end());
    std::vector<std::uint8_t> out(packet_len);
    fec::RseCodeWide wide(k, k + h);
    const double rate = encode_rate(k, [&] {
      for (std::size_t j = 0; j < 8; ++j)  // sample 8 of the h parities
        wide.encode_parity(j, views, out);
    }, min_seconds);
    t2.add_row({static_cast<long long>(k), static_cast<long long>(h), rate});
  }
  t2.set_precision(4);
  std::printf("\nbeyond the GF(2^8) limit (8 parities sampled per block):\n%s",
              t2.to_string().c_str());
  return 0;
}
