// Figure 1: encoding/decoding rate [packets/s] of the RSE coder versus
// redundancy h/k for transmission group sizes k = 7, 20, 100.
//
// The paper measured Rizzo's coder on a Pentium 133 (1 KByte packets,
// m = 8) and found rate inversely proportional to h*k, with k = 7, h = 1
// encoding at ~8000 packets/s.  We measure OUR codec on the current
// machine: absolute rates are orders of magnitude higher, the 1/(h*k)
// shape is what reproduces.
//
// Rates follow the paper's definitions: encoding rate = data packets
// processed per second while producing h parities per k; decoding rate =
// data packets processed per second when h of the k data packets are lost
// and must be reconstructed from parities.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "fec/rse_code.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using pbl::fec::RseCode;
using pbl::fec::Shard;

struct Rates {
  double encode_pkts_per_s;
  double decode_pkts_per_s;
};

Rates measure(std::size_t k, std::size_t h, std::size_t packet_len,
              double min_seconds) {
  RseCode code(k, k + h);
  pbl::Rng rng(1);
  std::vector<std::vector<std::uint8_t>> data(k);
  for (auto& p : data) {
    p.resize(packet_len);
    for (auto& b : p) b = static_cast<std::uint8_t>(rng());
  }
  std::vector<std::span<const std::uint8_t>> dviews(data.begin(), data.end());
  std::vector<std::vector<std::uint8_t>> parity(
      h, std::vector<std::uint8_t>(packet_len));

  // --- encode: k data packets -> h parities ---
  std::uint64_t blocks = 0;
  double elapsed = 0.0;
  while (elapsed < min_seconds) {
    elapsed += pbl::bench::time_seconds([&] {
      for (int rep = 0; rep < 8; ++rep) {
        std::vector<std::span<std::uint8_t>> pviews(parity.begin(),
                                                    parity.end());
        code.encode(dviews, pviews);
        ++blocks;
      }
    });
  }
  const double encode_rate =
      static_cast<double>(blocks) * static_cast<double>(k) / elapsed;

  // --- decode: h data packets lost, reconstructed from the h parities ---
  std::vector<Shard> shards;
  for (std::size_t i = h; i < k; ++i) shards.push_back({i, data[i]});
  for (std::size_t j = 0; j < h; ++j) shards.push_back({k + j, parity[j]});
  std::vector<std::vector<std::uint8_t>> out(
      k, std::vector<std::uint8_t>(packet_len));

  blocks = 0;
  elapsed = 0.0;
  while (elapsed < min_seconds) {
    elapsed += pbl::bench::time_seconds([&] {
      for (int rep = 0; rep < 8; ++rep) {
        std::vector<std::span<std::uint8_t>> oviews(out.begin(), out.end());
        code.decode(shards, oviews);
        ++blocks;
      }
    });
  }
  const double decode_rate =
      static_cast<double>(blocks) * static_cast<double>(k) / elapsed;
  return {encode_rate, decode_rate};
}

}  // namespace

int main(int argc, char** argv) {
  pbl::Cli cli(argc, argv);
  const std::size_t packet_len =
      static_cast<std::size_t>(cli.get_int("packet-bytes", 1024));
  const double min_seconds = cli.get_double("min-seconds", 0.05);
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }

  pbl::bench::banner(
      "Figure 1: RSE coding and decoding rates vs redundancy",
      "our codec, " + std::to_string(packet_len) + "-byte packets, m = 8",
      "rate is inversely proportional to h*k; absolute numbers are "
      "hardware-dependent (paper: Pentium 133)");

  pbl::Table table({"k", "h", "redundancy_pct", "encode_pkts_per_s",
                    "decode_pkts_per_s"});
  for (const std::size_t k : {7u, 20u, 100u}) {
    std::vector<std::size_t> hs;
    for (double rho : {0.05, 0.1, 0.2, 0.4, 0.7, 1.0}) {
      const auto h = static_cast<std::size_t>(
          std::max(1.0, std::round(rho * static_cast<double>(k))));
      if (hs.empty() || h > hs.back()) hs.push_back(h);
    }
    for (const std::size_t h : hs) {
      if (h > k || k + h > 255) continue;  // decode setup loses h of k data
      const Rates r = measure(k, h, packet_len, min_seconds);
      table.add_row({static_cast<long long>(k), static_cast<long long>(h),
                     100.0 * static_cast<double>(h) / static_cast<double>(k),
                     r.encode_pkts_per_s, r.decode_pkts_per_s});
    }
  }
  table.set_precision(4);
  std::printf("%s", table.to_string().c_str());
  return 0;
}
