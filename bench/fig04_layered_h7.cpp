// Figure 4: same sweep as Figure 3 but with h = 7 parity packets.  With
// enough parities the large TG (k = 100) becomes the most efficient for
// receiver populations up to ~200,000.
#include <cstdio>

#include "analysis/layered.hpp"
#include "bench_common.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  pbl::Cli cli(argc, argv);
  const double p = cli.get_double("p", 0.01);
  const std::int64_t h = cli.get_int64("h", 7);
  const std::int64_t rmax = cli.get_int64("rmax", 1000000);
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }

  pbl::bench::banner(
      "Figure 4: layered FEC with h = " + std::to_string(h) + " parities",
      "p = " + std::to_string(p) + ", k in {7, 20, 100}, analysis (Eq. 2-3)",
      "k = 100 with 7 parities beats k = 7 and k = 20 for R in the "
      "1..200,000 range");

  pbl::Table t({"R", "no_fec", "layered_k7", "layered_k20", "layered_k100"});
  for (const std::int64_t r : pbl::bench::log_grid(1, rmax)) {
    const auto rd = static_cast<double>(r);
    t.add_row({static_cast<long long>(r),
               pbl::analysis::expected_tx_nofec(p, rd),
               pbl::analysis::expected_tx_layered(7, 7 + h, p, rd),
               pbl::analysis::expected_tx_layered(20, 20 + h, p, rd),
               pbl::analysis::expected_tx_layered(100, 100 + h, p, rd)});
  }
  t.set_precision(5);
  std::printf("%s", t.to_string().c_str());
  return 0;
}
