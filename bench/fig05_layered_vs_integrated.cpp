// Figure 5: E[M] versus R for TG size 7 and p = 0.01 — no FEC versus
// layered FEC versus the integrated-FEC lower bound (Eqs. 4-6).
//
// The paper's layered curve does not state its h; we print h = 1 and
// h = 3 to bracket it (the qualitative gap to integrated FEC is the
// result being reproduced).
//
// Besides the closed forms, the binary cross-checks every scheme by
// Monte-Carlo simulation: the exact per-receiver engine up to
// --sim-rmax receivers (--reps independent replications per point,
// fanned out over --threads workers by sim::run_replications), and the
// batched shard engine (core::SimEngine::kBatched, docs/SCALING.md)
// from R = 10^4 up to --batch-rmax — full-protocol simulated points at
// the paper's million-receiver scale.  Statistics are bit-identical for
// every thread count (deterministic per-replication RNG substreams);
// only wall-clock changes.  --json=out.json emits the pbl-bench-v1
// document that CI tracks for perf regressions; every point carries
// "source": "analysis" | "sim" so plots can split closed forms from
// simulation.
#include <cstdio>

#include "analysis/integrated.hpp"
#include "analysis/layered.hpp"
#include "bench_common.hpp"
#include "core/reliable_multicast.hpp"
#include "loss/loss_model.hpp"
#include "protocol/rounds.hpp"
#include "sim/replicator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pbl;

namespace {

struct Scheme {
  const char* name;
  std::int64_t h;  // layered parities; unused for the other kinds
  enum Kind { kNoFec, kLayered, kIntegrated } kind;
};

double simulate_once(const Scheme& scheme, std::size_t receivers, double p,
                     std::int64_t k, std::int64_t tgs, Rng& rng) {
  loss::BernoulliLossModel model(p);
  protocol::IidTransmitter tx(model, receivers, rng);
  protocol::McConfig mc;
  mc.k = k;
  mc.num_tgs = tgs;
  switch (scheme.kind) {
    case Scheme::kNoFec:
      return protocol::sim_nofec(tx, mc).mean_tx;
    case Scheme::kLayered:
      mc.h = scheme.h;
      return protocol::sim_layered(tx, mc).mean_tx;
    case Scheme::kIntegrated:
      return protocol::sim_integrated_naks(tx, mc).mean_tx;
  }
  return 0.0;
}

/// The same scheme simulated by the batched shard engine through the
/// public facade; seed drawn from the replication substream.
double simulate_batched(const Scheme& scheme, std::size_t receivers, double p,
                        std::int64_t k, std::int64_t tgs, std::size_t shards,
                        Rng& rng) {
  core::MulticastConfig cfg;
  cfg.k = k;
  cfg.receivers = receivers;
  cfg.p = p;
  cfg.num_tgs = tgs;
  cfg.engine = core::SimEngine::kBatched;
  cfg.shards = shards;
  cfg.seed = rng();
  switch (scheme.kind) {
    case Scheme::kNoFec:
      cfg.mode = core::RecoveryMode::kNoFec;
      break;
    case Scheme::kLayered:
      cfg.mode = core::RecoveryMode::kLayeredFec;
      cfg.h = scheme.h;
      break;
    case Scheme::kIntegrated:
      cfg.mode = core::RecoveryMode::kIntegratedFec2;
      cfg.h = 0;
      break;
  }
  return core::simulate(cfg).mean_tx;
}

double analytic(const Scheme& scheme, double p, std::int64_t k, double r) {
  switch (scheme.kind) {
    case Scheme::kNoFec:
      return analysis::expected_tx_nofec(p, r);
    case Scheme::kLayered:
      return analysis::expected_tx_layered(k, k + scheme.h, p, r);
    case Scheme::kIntegrated:
      return analysis::expected_tx_integrated_ideal(k, 0, p, r);
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double p = cli.get_double("p", 0.01);
  const std::int64_t k = cli.get_int64("k", 7);
  const std::int64_t rmax = cli.get_int64("rmax", 1000000);
  const std::int64_t sim_rmax = cli.get_int64("sim-rmax", 1000);
  const std::int64_t reps = cli.get_int64("reps", 32);
  const std::int64_t tgs = cli.get_int64("tgs", 25);
  const std::int64_t batch_rmax = cli.get_int64("batch-rmax", 1000000);
  const std::int64_t batch_reps = cli.get_int64("batch-reps", 4);
  const std::int64_t batch_tgs = cli.get_int64("batch-tgs", 5);
  const std::int64_t batch_shards = cli.get_int64("batch-shards", 0);
  const auto threads = static_cast<unsigned>(cli.get_int64("threads", 0));
  const auto seed = static_cast<std::uint64_t>(cli.get_int64("seed", 1));
  const std::string json_path = cli.get_string("json", "");
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }

  bench::banner(
      "Figure 5: layered vs integrated FEC, k = " + std::to_string(k),
      "p = " + std::to_string(p) + ", analysis + " + std::to_string(reps) +
          "x" + std::to_string(tgs) + " TG exact simulation up to R = " +
          std::to_string(sim_rmax) + ", batched engine up to R = " +
          std::to_string(batch_rmax),
      "integrated FEC offers a large improvement over layered FEC, which in "
      "turn beats no-FEC for large R");

  bench::BenchJson json("fig05_layered_vs_integrated");
  json.setup("p", p);
  json.setup("k", k);
  json.setup("rmax", rmax);
  json.setup("sim_rmax", sim_rmax);
  json.setup("reps", reps);
  json.setup("tgs", tgs);
  json.setup("batch_rmax", batch_rmax);
  json.setup("batch_reps", batch_reps);
  json.setup("batch_tgs", batch_tgs);
  json.setup("batch_shards", batch_shards);
  json.setup("seed", static_cast<std::int64_t>(seed));

  Table t({"R", "no_fec", "layered_h1", "layered_h3", "integrated_lb"});
  for (const std::int64_t r : bench::log_grid(1, rmax)) {
    const auto rd = static_cast<double>(r);
    t.add_row({static_cast<long long>(r),
               analysis::expected_tx_nofec(p, rd),
               analysis::expected_tx_layered(k, k + 1, p, rd),
               analysis::expected_tx_layered(k, k + 3, p, rd),
               analysis::expected_tx_integrated_ideal(k, 0, p, rd)});
    json.point({{"source", "analysis"},
                {"R", r},
                {"no_fec", analysis::expected_tx_nofec(p, rd)},
                {"layered_h1", analysis::expected_tx_layered(k, k + 1, p, rd)},
                {"layered_h3", analysis::expected_tx_layered(k, k + 3, p, rd)},
                {"integrated_lb",
                 analysis::expected_tx_integrated_ideal(k, 0, p, rd)}});
  }
  t.set_precision(5);
  std::printf("%s", t.to_string().c_str());

  // Monte-Carlo cross-check, parallel over replications.
  static constexpr Scheme kSchemes[] = {
      {"no_fec", 0, Scheme::kNoFec},
      {"layered_h1", 1, Scheme::kLayered},
      {"layered_h3", 3, Scheme::kLayered},
      {"integrated_lb", 0, Scheme::kIntegrated},
  };

  Table st({"R", "scheme", "sim_mean", "ci95", "analytic"});
  double wall = 0.0;
  std::uint64_t total_reps = 0;
  std::uint64_t point_index = 0;
  for (const std::int64_t r : bench::log_grid(1, sim_rmax, 2)) {
    for (const Scheme& scheme : kSchemes) {
      const auto rep = sim::run_replications(
          static_cast<std::uint64_t>(reps),
          sim::point_seed(seed, point_index++),
          [&](std::uint64_t, Rng& rng) {
            return simulate_once(scheme, static_cast<std::size_t>(r), p, k,
                                 tgs, rng);
          },
          {.threads = threads});
      const double expect = analytic(scheme, p, k, static_cast<double>(r));
      st.add_row({static_cast<long long>(r), scheme.name, rep.stats.mean(),
                  rep.stats.ci95_halfwidth(), expect});
      json.point({{"source", "sim"},
                  {"engine", "exact"},
                  {"R", r},
                  {"scheme", scheme.name},
                  {"mean", rep.stats.mean()},
                  {"ci95", rep.stats.ci95_halfwidth()},
                  {"analytic", expect}});
      wall += rep.wall_seconds;
      total_reps += rep.replications;
    }
  }
  st.set_precision(5);
  std::printf("\nsimulation (%llu replications, %u threads, %.3f s, "
              "%.1f reps/s):\n%s",
              static_cast<unsigned long long>(total_reps),
              sim::resolve_threads(threads), wall,
              wall > 0.0 ? static_cast<double>(total_reps) / wall : 0.0,
              st.to_string().c_str());

  // Batched shard engine: the same protocols simulated in full at the
  // population scale the paper's figure actually plots.  The grid picks
  // up where the exact engine stops (one point per decade to
  // --batch-rmax).
  Table bt({"R", "scheme", "sim_mean", "ci95", "analytic"});
  double batch_wall = 0.0;
  std::uint64_t batch_total = 0;
  for (const std::int64_t r : bench::log_grid(10000, batch_rmax, 1)) {
    for (const Scheme& scheme : kSchemes) {
      const auto rep = sim::run_replications(
          static_cast<std::uint64_t>(batch_reps),
          sim::point_seed(seed, point_index++),
          [&](std::uint64_t, Rng& rng) {
            return simulate_batched(scheme, static_cast<std::size_t>(r), p, k,
                                    batch_tgs,
                                    static_cast<std::size_t>(batch_shards),
                                    rng);
          },
          {.threads = threads});
      const double expect = analytic(scheme, p, k, static_cast<double>(r));
      bt.add_row({static_cast<long long>(r), scheme.name, rep.stats.mean(),
                  rep.stats.ci95_halfwidth(), expect});
      json.point({{"source", "sim"},
                  {"engine", "batched"},
                  {"R", r},
                  {"scheme", scheme.name},
                  {"mean", rep.stats.mean()},
                  {"ci95", rep.stats.ci95_halfwidth()},
                  {"analytic", expect}});
      batch_wall += rep.wall_seconds;
      batch_total += rep.replications;
    }
  }
  bt.set_precision(5);
  std::printf("\nbatched engine (%llu replications x %lld TGs, %.3f s):\n%s",
              static_cast<unsigned long long>(batch_total),
              static_cast<long long>(batch_tgs), batch_wall,
              bt.to_string().c_str());

  json.perf(sim::resolve_threads(threads), wall + batch_wall,
            total_reps + batch_total);
  return json.write_file(json_path) ? 0 : 1;
}
