// Figure 5: E[M] versus R for TG size 7 and p = 0.01 — no FEC versus
// layered FEC versus the integrated-FEC lower bound (Eqs. 4-6).
//
// The paper's layered curve does not state its h; we print h = 1 and
// h = 3 to bracket it (the qualitative gap to integrated FEC is the
// result being reproduced).
#include <cstdio>

#include "analysis/integrated.hpp"
#include "analysis/layered.hpp"
#include "bench_common.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  pbl::Cli cli(argc, argv);
  const double p = cli.get_double("p", 0.01);
  const std::int64_t k = cli.get_int64("k", 7);
  const std::int64_t rmax = cli.get_int64("rmax", 1000000);
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }

  pbl::bench::banner(
      "Figure 5: layered vs integrated FEC, k = " + std::to_string(k),
      "p = " + std::to_string(p) + ", analysis",
      "integrated FEC offers a large improvement over layered FEC, which in "
      "turn beats no-FEC for large R");

  pbl::Table t({"R", "no_fec", "layered_h1", "layered_h3", "integrated_lb"});
  for (const std::int64_t r : pbl::bench::log_grid(1, rmax)) {
    const auto rd = static_cast<double>(r);
    t.add_row({static_cast<long long>(r),
               pbl::analysis::expected_tx_nofec(p, rd),
               pbl::analysis::expected_tx_layered(k, k + 1, p, rd),
               pbl::analysis::expected_tx_layered(k, k + 3, p, rd),
               pbl::analysis::expected_tx_integrated_ideal(k, 0, p, rd)});
  }
  t.set_precision(5);
  std::printf("%s", t.to_string().c_str());
  return 0;
}
