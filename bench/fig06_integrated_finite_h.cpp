// Figure 6: integrated FEC with a finite parity budget — E[M] versus R
// for (k, n) = (7,8), (7,9), (7,10) against the (7, inf) lower bound,
// p = 0.01.  Three parities suffice to attain the bound for populations
// up to 100,000-200,000.
#include <cstdio>

#include "analysis/integrated.hpp"
#include "analysis/layered.hpp"
#include "bench_common.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  pbl::Cli cli(argc, argv);
  const double p = cli.get_double("p", 0.01);
  const std::int64_t k = cli.get_int64("k", 7);
  const std::int64_t rmax = cli.get_int64("rmax", 1000000);
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }

  pbl::bench::banner(
      "Figure 6: integrated FEC with finite parities, k = " + std::to_string(k),
      "p = " + std::to_string(p) + ", h in {1, 2, 3}, analysis",
      "(7,10) is indistinguishable from (7,inf) up to R ~ 10^5; every curve "
      "starts near 1/(1-p) at R = 1");

  pbl::Table t({"R", "no_fec", "k7_n8", "k7_n9", "k7_n10", "k7_inf"});
  for (const std::int64_t r : pbl::bench::log_grid(1, rmax)) {
    const auto rd = static_cast<double>(r);
    t.add_row({static_cast<long long>(r),
               pbl::analysis::expected_tx_nofec(p, rd),
               pbl::analysis::expected_tx_integrated(k, 1, 0, p, rd),
               pbl::analysis::expected_tx_integrated(k, 2, 0, p, rd),
               pbl::analysis::expected_tx_integrated(k, 3, 0, p, rd),
               pbl::analysis::expected_tx_integrated_ideal(k, 0, p, rd)});
  }
  t.set_precision(5);
  std::printf("%s", t.to_string().c_str());
  return 0;
}
