// Figure 6: integrated FEC with a finite parity budget — E[M] versus R
// for (k, n) = (7,8), (7,9), (7,10) against the (7, inf) lower bound,
// p = 0.01.  Three parities suffice to attain the bound for populations
// up to 100,000-200,000.
//
// The finite-budget protocol simulator (sim_integrated_finite) validates
// the corrected closed form up to --sim-rmax receivers: --reps parallel
// replications per point via sim::run_replications (bit-identical for
// every --threads value).  The batched shard engine then carries the
// same protocol to --batch-rmax receivers (R = 10^4..10^6), where the
// figure's "three parities suffice" claim actually lives.  --json=out.json
// emits pbl-bench-v1; points carry "source": "analysis" | "sim".
#include <cstdio>

#include "analysis/integrated.hpp"
#include "analysis/layered.hpp"
#include "bench_common.hpp"
#include "core/reliable_multicast.hpp"
#include "loss/loss_model.hpp"
#include "protocol/rounds.hpp"
#include "sim/replicator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pbl;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double p = cli.get_double("p", 0.01);
  const std::int64_t k = cli.get_int64("k", 7);
  const std::int64_t rmax = cli.get_int64("rmax", 1000000);
  const std::int64_t sim_rmax = cli.get_int64("sim-rmax", 100);
  const std::int64_t reps = cli.get_int64("reps", 16);
  const std::int64_t tgs = cli.get_int64("tgs", 25);
  const std::int64_t batch_rmax = cli.get_int64("batch-rmax", 1000000);
  const std::int64_t batch_reps = cli.get_int64("batch-reps", 4);
  const std::int64_t batch_tgs = cli.get_int64("batch-tgs", 5);
  const std::int64_t batch_shards = cli.get_int64("batch-shards", 0);
  const auto threads = static_cast<unsigned>(cli.get_int64("threads", 0));
  const auto seed = static_cast<std::uint64_t>(cli.get_int64("seed", 1));
  const std::string json_path = cli.get_string("json", "");
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }

  bench::banner(
      "Figure 6: integrated FEC with finite parities, k = " + std::to_string(k),
      "p = " + std::to_string(p) + ", h in {1, 2, 3}, analysis + simulation "
      "up to R = " + std::to_string(sim_rmax),
      "(7,10) is indistinguishable from (7,inf) up to R ~ 10^5; every curve "
      "starts near 1/(1-p) at R = 1");

  bench::BenchJson json("fig06_integrated_finite_h");
  json.setup("p", p);
  json.setup("k", k);
  json.setup("rmax", rmax);
  json.setup("sim_rmax", sim_rmax);
  json.setup("reps", reps);
  json.setup("tgs", tgs);
  json.setup("batch_rmax", batch_rmax);
  json.setup("batch_reps", batch_reps);
  json.setup("batch_tgs", batch_tgs);
  json.setup("batch_shards", batch_shards);
  json.setup("seed", static_cast<std::int64_t>(seed));

  Table t({"R", "no_fec", "k7_n8", "k7_n9", "k7_n10", "k7_inf"});
  for (const std::int64_t r : bench::log_grid(1, rmax)) {
    const auto rd = static_cast<double>(r);
    t.add_row({static_cast<long long>(r),
               analysis::expected_tx_nofec(p, rd),
               analysis::expected_tx_integrated(k, 1, 0, p, rd),
               analysis::expected_tx_integrated(k, 2, 0, p, rd),
               analysis::expected_tx_integrated(k, 3, 0, p, rd),
               analysis::expected_tx_integrated_ideal(k, 0, p, rd)});
    json.point({{"source", "analysis"},
                {"R", r},
                {"no_fec", analysis::expected_tx_nofec(p, rd)},
                {"h1", analysis::expected_tx_integrated(k, 1, 0, p, rd)},
                {"h2", analysis::expected_tx_integrated(k, 2, 0, p, rd)},
                {"h3", analysis::expected_tx_integrated(k, 3, 0, p, rd)},
                {"ideal", analysis::expected_tx_integrated_ideal(k, 0, p, rd)}});
  }
  t.set_precision(5);
  std::printf("%s", t.to_string().c_str());

  // Monte-Carlo validation of the finite-budget closed form.
  Table st({"R", "h", "sim_mean", "ci95", "analytic"});
  double wall = 0.0;
  std::uint64_t total_reps = 0;
  std::uint64_t point_index = 0;
  for (const std::int64_t r : bench::log_grid(1, sim_rmax, 2)) {
    for (const std::int64_t h : {1, 2, 3}) {
      const auto rep = sim::run_replications(
          static_cast<std::uint64_t>(reps),
          sim::point_seed(seed, point_index++),
          [&](std::uint64_t, Rng& rng) {
            loss::BernoulliLossModel model(p);
            protocol::IidTransmitter tx(model, static_cast<std::size_t>(r),
                                        rng);
            protocol::McConfig mc;
            mc.k = k;
            mc.h = h;
            mc.num_tgs = tgs;
            return protocol::sim_integrated_finite(tx, mc).mean_tx;
          },
          {.threads = threads});
      const double expect = analysis::expected_tx_integrated(
          k, h, 0, p, static_cast<double>(r));
      st.add_row({static_cast<long long>(r), static_cast<long long>(h),
                  rep.stats.mean(), rep.stats.ci95_halfwidth(), expect});
      json.point({{"source", "sim"},
                  {"engine", "exact"},
                  {"R", r},
                  {"h", h},
                  {"mean", rep.stats.mean()},
                  {"ci95", rep.stats.ci95_halfwidth()},
                  {"analytic", expect}});
      wall += rep.wall_seconds;
      total_reps += rep.replications;
    }
  }
  st.set_precision(5);
  std::printf("\nsimulation (%llu replications, %u threads, %.3f s):\n%s",
              static_cast<unsigned long long>(total_reps),
              sim::resolve_threads(threads), wall, st.to_string().c_str());

  // Batched shard engine: the finite-budget protocol at the figure's
  // actual population scale, one point per decade from R = 10^4.
  Table bt({"R", "h", "sim_mean", "ci95", "analytic"});
  double batch_wall = 0.0;
  std::uint64_t batch_total = 0;
  for (const std::int64_t r : bench::log_grid(10000, batch_rmax, 1)) {
    for (const std::int64_t h : {1, 2, 3}) {
      const auto rep = sim::run_replications(
          static_cast<std::uint64_t>(batch_reps),
          sim::point_seed(seed, point_index++),
          [&](std::uint64_t, Rng& rng) {
            core::MulticastConfig cfg;
            cfg.k = k;
            cfg.h = h;
            cfg.receivers = static_cast<std::size_t>(r);
            cfg.p = p;
            cfg.num_tgs = batch_tgs;
            cfg.mode = core::RecoveryMode::kIntegratedFec2;
            cfg.finite_budget = true;
            cfg.engine = core::SimEngine::kBatched;
            cfg.shards = static_cast<std::size_t>(batch_shards);
            cfg.seed = rng();
            return core::simulate(cfg).mean_tx;
          },
          {.threads = threads});
      const double expect = analysis::expected_tx_integrated(
          k, h, 0, p, static_cast<double>(r));
      bt.add_row({static_cast<long long>(r), static_cast<long long>(h),
                  rep.stats.mean(), rep.stats.ci95_halfwidth(), expect});
      json.point({{"source", "sim"},
                  {"engine", "batched"},
                  {"R", r},
                  {"h", h},
                  {"mean", rep.stats.mean()},
                  {"ci95", rep.stats.ci95_halfwidth()},
                  {"analytic", expect}});
      batch_wall += rep.wall_seconds;
      batch_total += rep.replications;
    }
  }
  bt.set_precision(5);
  std::printf("\nbatched engine (%llu replications x %lld TGs, %.3f s):\n%s",
              static_cast<unsigned long long>(batch_total),
              static_cast<long long>(batch_tgs), batch_wall,
              bt.to_string().c_str());

  json.perf(sim::resolve_threads(threads), wall + batch_wall,
            total_reps + batch_total);
  return json.write_file(json_path) ? 0 : 1;
}
