// Figure 7: influence of the transmission-group size on idealised
// integrated FEC — E[M] versus R for k = 7, 20, 100 at p = 0.01.
#include <cstdio>

#include "analysis/integrated.hpp"
#include "analysis/layered.hpp"
#include "bench_common.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  pbl::Cli cli(argc, argv);
  const double p = cli.get_double("p", 0.01);
  const std::int64_t rmax = cli.get_int64("rmax", 1000000);
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }

  pbl::bench::banner(
      "Figure 7: integrated FEC vs R for k = 7, 20, 100",
      "p = " + std::to_string(p) + ", idealised integrated FEC (Eq. 6)",
      "larger TGs push E[M] towards 1 even for 10^6 receivers");

  pbl::Table t({"R", "no_fec", "integr_k7", "integr_k20", "integr_k100"});
  for (const std::int64_t r : pbl::bench::log_grid(1, rmax)) {
    const auto rd = static_cast<double>(r);
    t.add_row({static_cast<long long>(r),
               pbl::analysis::expected_tx_nofec(p, rd),
               pbl::analysis::expected_tx_integrated_ideal(7, 0, p, rd),
               pbl::analysis::expected_tx_integrated_ideal(20, 0, p, rd),
               pbl::analysis::expected_tx_integrated_ideal(100, 0, p, rd)});
  }
  t.set_precision(5);
  std::printf("%s", t.to_string().c_str());
  return 0;
}
