// Figure 8: influence of the loss probability on idealised integrated FEC
// — E[M] versus p in [10^-3, 10^-1] for k = 7, 20, 100 at R = 1000.
#include <cmath>
#include <cstdio>

#include "analysis/integrated.hpp"
#include "analysis/layered.hpp"
#include "bench_common.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  pbl::Cli cli(argc, argv);
  const double receivers = cli.get_double("R", 1000.0);
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }

  pbl::bench::banner(
      "Figure 8: integrated FEC vs p for k = 7, 20, 100",
      "R = " + std::to_string(static_cast<long long>(receivers)) +
          ", idealised integrated FEC (Eq. 6)",
      "integrated FEC is insensitive to p for large k; no-FEC degrades "
      "steeply");

  pbl::Table t({"p", "no_fec", "integr_k7", "integr_k20", "integr_k100"});
  for (double e = -3.0; e <= -1.0 + 1e-9; e += 0.125) {
    const double p = std::pow(10.0, e);
    t.add_row({p, pbl::analysis::expected_tx_nofec(p, receivers),
               pbl::analysis::expected_tx_integrated_ideal(7, 0, p, receivers),
               pbl::analysis::expected_tx_integrated_ideal(20, 0, p, receivers),
               pbl::analysis::expected_tx_integrated_ideal(100, 0, p, receivers)});
  }
  t.set_precision(5);
  std::printf("%s", t.to_string().c_str());
  return 0;
}
