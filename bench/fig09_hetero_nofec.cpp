// Figure 9: heterogeneous receivers without FEC — E[M] versus R when a
// fraction alpha of receivers loses at p_high = 0.25 and the rest at
// p_low = 0.01 (Eq. 7 with k = n = 1).
#include <cstdio>

#include "analysis/heterogeneous.hpp"
#include "bench_common.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  pbl::Cli cli(argc, argv);
  const double p_low = cli.get_double("p-low", 0.01);
  const double p_high = cli.get_double("p-high", 0.25);
  const std::int64_t rmax = cli.get_int64("rmax", 1000000);
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }

  pbl::bench::banner(
      "Figure 9: heterogeneous receivers, no FEC",
      "p_low = " + std::to_string(p_low) + ", p_high = " +
          std::to_string(p_high) + ", alpha in {0, 1, 5, 25}%",
      "1% high-loss receivers among 10^6 suffice to roughly double E[M]; "
      "one high-loss receiver in 100 has little effect");

  pbl::Table t({"R", "high0pct", "high1pct", "high5pct", "high25pct"});
  for (const std::int64_t r : pbl::bench::log_grid(1, rmax)) {
    const auto rd = static_cast<double>(r);
    std::vector<pbl::Table::Cell> row{static_cast<long long>(r)};
    for (const double alpha : {0.0, 0.01, 0.05, 0.25}) {
      const auto pop =
          pbl::analysis::two_class_population(rd, alpha, p_low, p_high);
      row.emplace_back(pbl::analysis::expected_tx_nofec_hetero(pop));
    }
    t.add_row(std::move(row));
  }
  t.set_precision(5);
  std::printf("%s", t.to_string().c_str());
  return 0;
}
