// Figure 10: heterogeneous receivers with idealised integrated FEC
// (k = 7) — E[M] versus R for high-loss shares 0, 1, 5, 25% (Eqs. 6, 8).
//
// The two-class closed form is cross-checked by simulation (two-class
// loss model + unlimited-parity integrated protocol) up to --sim-rmax
// receivers, --reps parallel replications per point via
// sim::run_replications.  --json=out.json emits pbl-bench-v1.
#include <cstdio>

#include "analysis/heterogeneous.hpp"
#include "bench_common.hpp"
#include "loss/loss_model.hpp"
#include "protocol/rounds.hpp"
#include "sim/replicator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pbl;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::int64_t k = cli.get_int64("k", 7);
  const double p_low = cli.get_double("p-low", 0.01);
  const double p_high = cli.get_double("p-high", 0.25);
  const std::int64_t rmax = cli.get_int64("rmax", 1000000);
  const std::int64_t sim_rmax = cli.get_int64("sim-rmax", 100);
  const std::int64_t reps = cli.get_int64("reps", 16);
  const std::int64_t tgs = cli.get_int64("tgs", 25);
  const auto threads = static_cast<unsigned>(cli.get_int64("threads", 0));
  const auto seed = static_cast<std::uint64_t>(cli.get_int64("seed", 1));
  const std::string json_path = cli.get_string("json", "");
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }

  bench::banner(
      "Figure 10: heterogeneous receivers, integrated FEC (k = " +
          std::to_string(k) + ")",
      "p_low = " + std::to_string(p_low) + ", p_high = " +
          std::to_string(p_high) + ", alpha in {0, 1, 5, 25}%",
      "high-loss receivers dominate at scale, and proportionally more so "
      "than without FEC");

  bench::BenchJson json("fig10_hetero_integrated");
  json.setup("k", k);
  json.setup("p_low", p_low);
  json.setup("p_high", p_high);
  json.setup("rmax", rmax);
  json.setup("sim_rmax", sim_rmax);
  json.setup("reps", reps);
  json.setup("tgs", tgs);
  json.setup("seed", static_cast<std::int64_t>(seed));

  const double alphas[] = {0.0, 0.01, 0.05, 0.25};

  Table t({"R", "high0pct", "high1pct", "high5pct", "high25pct"});
  for (const std::int64_t r : bench::log_grid(1, rmax)) {
    const auto rd = static_cast<double>(r);
    std::vector<Table::Cell> row{static_cast<long long>(r)};
    bench::JsonFields fields{{"kind", "analysis"}, {"R", r}};
    for (const double alpha : alphas) {
      const auto pop = analysis::two_class_population(rd, alpha, p_low, p_high);
      const double em = analysis::expected_tx_integrated_hetero(k, 0, pop);
      row.emplace_back(em);
      fields.emplace_back("alpha_" + std::to_string(static_cast<int>(
                              alpha * 100)),
                          em);
    }
    t.add_row(std::move(row));
    json.point(std::move(fields));
  }
  t.set_precision(5);
  std::printf("%s", t.to_string().c_str());

  // Monte-Carlo cross-check: two-class loss, unlimited-parity protocol.
  Table st({"R", "alpha", "sim_mean", "ci95", "analytic"});
  double wall = 0.0;
  std::uint64_t total_reps = 0;
  std::uint64_t point_index = 0;
  for (const std::int64_t r : bench::log_grid(1, sim_rmax, 2)) {
    for (const double alpha : alphas) {
      const auto rep = sim::run_replications(
          static_cast<std::uint64_t>(reps),
          sim::point_seed(seed, point_index++),
          [&](std::uint64_t, Rng& rng) {
            loss::HeterogeneousLossModel model(static_cast<std::size_t>(r),
                                               alpha, p_low, p_high);
            protocol::IidTransmitter tx(model, static_cast<std::size_t>(r),
                                        rng);
            protocol::McConfig mc;
            mc.k = k;
            mc.num_tgs = tgs;
            return protocol::sim_integrated_naks(tx, mc).mean_tx;
          },
          {.threads = threads});
      const auto pop = analysis::two_class_population(
          static_cast<double>(r), alpha, p_low, p_high);
      const double expect = analysis::expected_tx_integrated_hetero(k, 0, pop);
      st.add_row({static_cast<long long>(r), alpha, rep.stats.mean(),
                  rep.stats.ci95_halfwidth(), expect});
      json.point({{"kind", "simulation"},
                  {"R", r},
                  {"alpha", alpha},
                  {"mean", rep.stats.mean()},
                  {"ci95", rep.stats.ci95_halfwidth()},
                  {"analytic", expect}});
      wall += rep.wall_seconds;
      total_reps += rep.replications;
    }
  }
  st.set_precision(5);
  std::printf("\nsimulation (%llu replications, %u threads, %.3f s):\n%s",
              static_cast<unsigned long long>(total_reps),
              sim::resolve_threads(threads), wall, st.to_string().c_str());

  json.perf(sim::resolve_threads(threads), wall, total_reps);
  return json.write_file(json_path) ? 0 : 1;
}
