// Figure 10: heterogeneous receivers with idealised integrated FEC
// (k = 7) — E[M] versus R for high-loss shares 0, 1, 5, 25% (Eqs. 6, 8).
#include <cstdio>

#include "analysis/heterogeneous.hpp"
#include "bench_common.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  pbl::Cli cli(argc, argv);
  const std::int64_t k = cli.get_int64("k", 7);
  const double p_low = cli.get_double("p-low", 0.01);
  const double p_high = cli.get_double("p-high", 0.25);
  const std::int64_t rmax = cli.get_int64("rmax", 1000000);
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }

  pbl::bench::banner(
      "Figure 10: heterogeneous receivers, integrated FEC (k = " +
          std::to_string(k) + ")",
      "p_low = " + std::to_string(p_low) + ", p_high = " +
          std::to_string(p_high) + ", alpha in {0, 1, 5, 25}%",
      "high-loss receivers dominate at scale, and proportionally more so "
      "than without FEC");

  pbl::Table t({"R", "high0pct", "high1pct", "high5pct", "high25pct"});
  for (const std::int64_t r : pbl::bench::log_grid(1, rmax)) {
    const auto rd = static_cast<double>(r);
    std::vector<pbl::Table::Cell> row{static_cast<long long>(r)};
    for (const double alpha : {0.0, 0.01, 0.05, 0.25}) {
      const auto pop =
          pbl::analysis::two_class_population(rd, alpha, p_low, p_high);
      row.emplace_back(pbl::analysis::expected_tx_integrated_hetero(k, 0, pop));
    }
    t.add_row(std::move(row));
  }
  t.set_precision(5);
  std::printf("%s", t.to_string().c_str());
  return 0;
}
