// Figure 11: layered FEC (k = 7, h = 1) compared with no-FEC under
// independent loss and under FBT shared loss, p = 0.01, R = 2^d receivers
// (simulation, as in the paper).
//
// Default depth range is the paper's full 0..17 (131072 receivers);
// pass --dmax to shorten or extend the sweep.
#include <cstdio>

#include "bench_common.hpp"
#include "protocol/rounds.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pbl;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double p = cli.get_double("p", 0.01);
  const int dmax = cli.get_int("dmax", 17);
  const std::int64_t k = cli.get_int64("k", 7);
  const std::int64_t h = cli.get_int64("h", 1);
  const std::int64_t tgs = cli.get_int64("tgs", 200);
  const std::uint64_t seed = cli.get_int64("seed", 1);
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }

  bench::banner(
      "Figure 11: layered FEC under independent vs FBT shared loss",
      "p = " + std::to_string(p) + ", k = " + std::to_string(k) + ", h = " +
          std::to_string(h) + ", R = 2^d for d = 0.." + std::to_string(dmax) +
          ", " + std::to_string(tgs) + " TGs per point (simulation)",
      "shared loss lowers E[M] for every scheme; layered FEC needs R > ~60 "
      "to beat no-FEC under shared loss versus R > ~20 under independent "
      "loss");

  protocol::McConfig nofec_cfg;
  nofec_cfg.k = k;
  nofec_cfg.num_tgs = tgs;
  protocol::McConfig layered_cfg = nofec_cfg;
  layered_cfg.h = h;

  Table t({"R", "nofec_indep", "nofec_fbt", "layered_indep", "layered_fbt"});
  for (int d = 0; d <= dmax; ++d) {
    const std::size_t receivers = std::size_t{1} << d;
    // Fewer samples at the largest trees keep the runtime bounded; the
    // max over many receivers concentrates, so the CI stays small.
    protocol::McConfig nc = nofec_cfg, lc = layered_cfg;
    if (d >= 12) {
      nc.num_tgs = std::max<std::int64_t>(30, tgs / 4);
      lc.num_tgs = nc.num_tgs;
    }

    loss::BernoulliLossModel iid(p);
    const auto tree = tree::MulticastTree::full_binary(static_cast<unsigned>(d));
    const double p_node = tree.node_loss_for_leaf_loss(p);

    protocol::IidTransmitter iid_tx1(iid, receivers, Rng(seed).split(2 * d));
    protocol::IidTransmitter iid_tx2(iid, receivers, Rng(seed).split(2 * d + 1));
    protocol::TreeTransmitter fbt_tx1(tree, p_node, Rng(seed).split(100 + 2 * d));
    protocol::TreeTransmitter fbt_tx2(tree, p_node,
                                      Rng(seed).split(101 + 2 * d));

    const auto nofec_indep = protocol::sim_nofec(iid_tx1, nc);
    const auto nofec_fbt = protocol::sim_nofec(fbt_tx1, nc);
    const auto layered_indep = protocol::sim_layered(iid_tx2, lc);
    const auto layered_fbt = protocol::sim_layered(fbt_tx2, lc);

    t.add_row({static_cast<long long>(receivers), nofec_indep.mean_tx,
               nofec_fbt.mean_tx, layered_indep.mean_tx, layered_fbt.mean_tx});
  }
  t.set_precision(5);
  std::printf("%s", t.to_string().c_str());
  return 0;
}
