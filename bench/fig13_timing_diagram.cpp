// Figure 13 is the paper's timing diagram, not a measurement — this
// binary renders the same diagram from the library's Timing rules as an
// ASCII timeline, so every figure of the paper has a regenerating binary.
//
// Scenario (mirroring the figure): a transmission group of k packets in
// which packet `lost` is lost once and repaired in the following round.
#include <cstdio>
#include <string>
#include <vector>

#include "protocol/timing.hpp"
#include "util/cli.hpp"

using namespace pbl;

namespace {

struct Event {
  double time;
  char symbol;  // 'D' data, 'P' parity, 'r' retransmitted original
};

void render(const char* label, const std::vector<Event>& events,
            double horizon, double per_column) {
  std::string line(static_cast<std::size_t>(horizon / per_column) + 2, '.');
  for (const auto& e : events) {
    const auto col = static_cast<std::size_t>(e.time / per_column);
    if (col < line.size()) line[col] = e.symbol;
  }
  std::printf("%-16s |%s|\n", label, line.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::size_t k = static_cast<std::size_t>(cli.get_int64("k", 7));
  const std::size_t lost = static_cast<std::size_t>(cli.get_int64("lost", 2));
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }
  protocol::Timing timing;  // delta = 40 ms, T = 300 ms

  std::printf("== Figure 13: transmission timing of the four schemes ==\n");
  std::printf("k = %zu data packets, packet %zu lost once; delta = %.0f ms, "
              "T = %.0f ms; one column = delta\n",
              k, lost, 1e3 * timing.delta, 1e3 * timing.gap);
  std::printf("D = data, P = parity, r = retransmitted original\n\n");

  const double d = timing.delta, T = timing.gap;

  // no FEC: k data; after T, the lost original again.
  std::vector<Event> nofec;
  for (std::size_t i = 0; i < k; ++i) nofec.push_back({i * d, 'D'});
  nofec.push_back({k * d + T, 'r'});

  // layered FEC: block of k+1; after T, a fresh full block carrying the
  // lost original in its slot.
  std::vector<Event> layered;
  for (std::size_t i = 0; i < k; ++i) layered.push_back({i * d, 'D'});
  layered.push_back({k * d, 'P'});
  const double block2 = (k + 1) * d + T;
  for (std::size_t i = 0; i < k; ++i)
    layered.push_back({block2 + i * d, i == lost ? 'r' : 'D'});
  layered.push_back({block2 + k * d, 'P'});

  // integrated FEC 1: parities follow immediately at rate 1/delta.
  std::vector<Event> fec1;
  for (std::size_t i = 0; i < k; ++i) fec1.push_back({i * d, 'D'});
  fec1.push_back({k * d, 'P'});

  // integrated FEC 2: one parity after the feedback gap T.
  std::vector<Event> fec2;
  for (std::size_t i = 0; i < k; ++i) fec2.push_back({i * d, 'D'});
  fec2.push_back({k * d + T, 'P'});

  const double horizon = block2 + (k + 1) * d + 2 * d;
  render("no FEC", nofec, horizon, d);
  render("layered FEC", layered, horizon, d);
  render("integrated FEC1", fec1, horizon, d);
  render("integrated FEC2", fec2, horizon, d);

  std::printf("\nrecovery completes at: no FEC %.2f s | layered %.2f s | "
              "FEC1 %.2f s | FEC2 %.2f s\n",
              k * d + T, block2 + k * d, k * d, k * d + T);
  std::printf("FEC1 repairs without any feedback delay; FEC2 pays one T; "
              "layered pays a whole extra block; no FEC pays T per lost "
              "packet and repairs only that packet.\n");
  return 0;
}
