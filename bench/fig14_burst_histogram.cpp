// Figure 14: distribution of the number of consecutive losses at one
// receiver, for independent loss and for the two-state Markov burst model
// with mean burst length 2, at p = 0.01 and 40 ms packet spacing.  Both
// tails decay geometrically (linear on a log scale); the burst model's
// tail is much heavier.
#include <cstdio>

#include "bench_common.hpp"
#include "loss/loss_model.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace pbl;

namespace {

Histogram burst_histogram(loss::LossProcess& process, std::uint64_t packets,
                          double delta) {
  Histogram h;
  std::size_t run = 0;
  for (std::uint64_t i = 0; i < packets; ++i) {
    if (process.lost(static_cast<double>(i) * delta)) {
      ++run;
    } else if (run > 0) {
      h.add(run);
      run = 0;
    }
  }
  if (run > 0) h.add(run);
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double p = cli.get_double("p", 0.01);
  const double burst = cli.get_double("b", 2.0);
  const double delta = cli.get_double("delta", 0.040);
  const std::uint64_t packets =
      static_cast<std::uint64_t>(cli.get_int64("packets", 4000000));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int64("seed", 1));
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }

  bench::banner(
      "Figure 14: burst-length distribution at one receiver",
      "p = " + std::to_string(p) + ", mean burst = " + std::to_string(burst) +
          ", delta = 40 ms, " + std::to_string(packets) + " packets",
      "both tails fall off linearly on a log scale; the Markov model's "
      "mean run length is b = 2 versus ~1/(1-p) without bursts");

  loss::BernoulliLossModel iid(p);
  const auto gilbert = loss::GilbertLossModel::from_packet_stats(p, burst, delta);
  auto iid_proc = iid.make_process(Rng(seed), 0);
  auto gil_proc = gilbert.make_process(Rng(seed).split(1), 0);

  const Histogram h_iid = burst_histogram(*iid_proc, packets, delta);
  const Histogram h_gil = burst_histogram(*gil_proc, packets, delta);

  Table t({"burst_length", "occurrences_no_burst", "occurrences_burst_b2"});
  const std::size_t buckets =
      std::max(h_iid.num_buckets(), h_gil.num_buckets());
  for (std::size_t b = 1; b < buckets; ++b) {
    t.add_row({static_cast<long long>(b),
               static_cast<long long>(h_iid.count(b)),
               static_cast<long long>(h_gil.count(b))});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("mean burst length: no-burst = %.3f packets, markov = %.3f "
              "packets (target %.1f)\n",
              h_iid.mean(), h_gil.mean(), burst);
  return 0;
}
