// Figure 15: reliable multicast under BURST loss (two-state Markov,
// mean burst 2) — no FEC versus layered FEC with low (h = 1) and high
// (h = 3) redundancy, k = 7, p = 0.01, delta = 40 ms, T = 300 ms.
//
// The paper's headline negative result: with bursts, layered FEC (7+1)
// performs WORSE than no FEC.
#include <cstdio>

#include "analysis/burst.hpp"
#include "bench_common.hpp"
#include "protocol/rounds.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pbl;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double p = cli.get_double("p", 0.01);
  const double burst = cli.get_double("b", 2.0);
  const std::int64_t k = cli.get_int64("k", 7);
  const std::int64_t rmax = cli.get_int64("rmax", 10000);
  const std::int64_t tgs = cli.get_int64("tgs", 400);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int64("seed", 1));
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }

  protocol::Timing timing;  // delta = 40 ms, T = 300 ms (paper Section 4.2)

  bench::banner(
      "Figure 15: burst loss and layered FEC",
      "p = " + std::to_string(p) + ", mean burst = " + std::to_string(burst) +
          ", k = " + std::to_string(k) + ", delta = 40 ms, T = 300 ms, " +
          std::to_string(tgs) + " TGs per point (simulation)",
      "layered FEC (7+1) is worse than no FEC under burst loss; (7+3) "
      "recovers some ground at large R");

  const auto gilbert =
      loss::GilbertLossModel::from_packet_stats(p, burst, timing.delta);

  Table t({"R", "no_fec", "layered_7p1", "layered_7p3", "model_7p1",
           "model_7p3"});
  for (const std::int64_t r : bench::log_grid(1, rmax, 2)) {
    const auto receivers = static_cast<std::size_t>(r);
    protocol::McConfig cfg;
    cfg.k = k;
    cfg.num_tgs = r >= 1000 ? std::max<std::int64_t>(60, tgs / 4) : tgs;
    cfg.timing = timing;

    protocol::IidTransmitter tx0(gilbert, receivers, Rng(seed).split(3 * r));
    const auto nofec = protocol::sim_nofec(tx0, cfg);

    cfg.h = 1;
    protocol::IidTransmitter tx1(gilbert, receivers, Rng(seed).split(3 * r + 1));
    const auto l1 = protocol::sim_layered(tx1, cfg);

    cfg.h = 3;
    protocol::IidTransmitter tx3(gilbert, receivers, Rng(seed).split(3 * r + 2));
    const auto l3 = protocol::sim_layered(tx3, cfg);

    const auto rd = static_cast<double>(r);
    t.add_row({static_cast<long long>(r), nofec.mean_tx, l1.mean_tx,
               l3.mean_tx,
               analysis::expected_tx_layered_burst(k, 1, p, burst, rd, timing),
               analysis::expected_tx_layered_burst(k, 3, p, burst, rd,
                                                   timing)});
  }
  t.set_precision(5);
  std::printf("%s", t.to_string().c_str());
  return 0;
}
