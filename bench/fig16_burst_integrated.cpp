// Figure 16: integrated FEC 1 (continuous parity stream, no feedback
// gaps) versus integrated FEC 2 (NAK-driven parity rounds spaced
// delta + T) under burst loss, for k = 7, 20, 100; p = 0.01, mean burst 2.
//
// Two effects reproduce: (i) growing k from 7 to 100 markedly improves
// integrated FEC under bursts; (ii) FEC2's time-spread rounds (implicit
// interleaving) help k = 7 but matter little for large k.
//
// Each point's TG budget is split into --reps independent replications
// fanned out by sim::run_replications: statistics are bit-identical for
// every --threads value.  --json=out.json emits pbl-bench-v1.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "protocol/rounds.hpp"
#include "sim/replicator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pbl;

namespace {

enum class Variant { kNoFec, kFec1, kFec2 };

const char* to_cstr(Variant v) {
  switch (v) {
    case Variant::kNoFec: return "no_fec";
    case Variant::kFec1: return "fec1";
    case Variant::kFec2: return "fec2";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double p = cli.get_double("p", 0.01);
  const double burst = cli.get_double("b", 2.0);
  const std::int64_t rmax = cli.get_int64("rmax", 10000);
  const std::int64_t tgs = cli.get_int64("tgs", 300);
  const std::int64_t reps = cli.get_int64("reps", 8);
  const auto threads = static_cast<unsigned>(cli.get_int64("threads", 0));
  const auto seed = static_cast<std::uint64_t>(cli.get_int64("seed", 1));
  const std::string json_path = cli.get_string("json", "");
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }

  protocol::Timing timing;  // delta = 40 ms, T = 300 ms

  bench::banner(
      "Figure 16: burst loss and integrated FEC 1 vs 2, k = 7, 20, 100",
      "p = " + std::to_string(p) + ", mean burst = " + std::to_string(burst) +
          ", delta = 40 ms, T = 300 ms, " + std::to_string(tgs) +
          " TGs per point over " + std::to_string(reps) +
          " replications (simulation)",
      "larger k resists bursts; FEC2 beats FEC1 for k = 7, they coincide "
      "for k = 100 (no extra interleaving needed)");

  bench::BenchJson json("fig16_burst_integrated");
  json.setup("p", p);
  json.setup("b", burst);
  json.setup("rmax", rmax);
  json.setup("tgs", tgs);
  json.setup("reps", reps);
  json.setup("seed", static_cast<std::int64_t>(seed));

  const auto gilbert =
      loss::GilbertLossModel::from_packet_stats(p, burst, timing.delta);

  // One replication: tgs_per_rep TGs of the given scheme, fresh loss
  // processes from the replication's RNG substream.
  const auto simulate = [&](Variant variant, std::int64_t k,
                            std::size_t receivers, std::int64_t tgs_per_rep,
                            Rng& rng) {
    protocol::IidTransmitter tx(gilbert, receivers, rng);
    protocol::McConfig cfg;
    cfg.k = k;
    cfg.num_tgs = tgs_per_rep;
    cfg.timing = timing;
    switch (variant) {
      case Variant::kNoFec:
        return protocol::sim_nofec(tx, cfg).mean_tx;
      case Variant::kFec1:
        return protocol::sim_integrated_stream(tx, cfg).mean_tx;
      case Variant::kFec2:
        return protocol::sim_integrated_naks(tx, cfg).mean_tx;
    }
    return 0.0;
  };

  double wall = 0.0;
  std::uint64_t total_reps = 0;
  std::uint64_t point_index = 0;
  Table t({"R", "no_fec", "fec1_k7", "fec2_k7", "fec1_k20", "fec2_k20",
           "fec1_k100", "fec2_k100"});
  for (const std::int64_t r : bench::log_grid(1, rmax, 2)) {
    const auto receivers = static_cast<std::size_t>(r);
    std::vector<Table::Cell> row{static_cast<long long>(r)};

    const auto run_point = [&](Variant variant, std::int64_t k,
                               std::int64_t point_tgs) {
      const std::int64_t tgs_per_rep =
          std::max<std::int64_t>(1, point_tgs / reps);
      const auto rep = sim::run_replications(
          static_cast<std::uint64_t>(reps),
          sim::point_seed(seed, point_index++),
          [&](std::uint64_t, Rng& rng) {
            return simulate(variant, k, receivers, tgs_per_rep, rng);
          },
          {.threads = threads});
      wall += rep.wall_seconds;
      total_reps += rep.replications;
      row.emplace_back(rep.stats.mean());
      json.point({{"R", r},
                  {"scheme", to_cstr(variant)},
                  {"k", k},
                  {"mean", rep.stats.mean()},
                  {"ci95", rep.stats.ci95_halfwidth()}});
    };

    const std::int64_t base_tgs = r >= 1000 ? std::max<std::int64_t>(50, tgs / 4)
                                            : tgs;
    run_point(Variant::kNoFec, 7, base_tgs);
    for (const std::int64_t k : {7, 20, 100}) {
      // Equal packet budget per point: fewer TGs for the bigger groups.
      const std::int64_t point_tgs = std::max<std::int64_t>(20, base_tgs * 7 / k);
      run_point(Variant::kFec1, k, point_tgs);
      run_point(Variant::kFec2, k, point_tgs);
    }
    t.add_row(std::move(row));
  }
  t.set_precision(5);
  std::printf("%s", t.to_string().c_str());
  std::printf("\n%llu replications, %u threads, %.3f s, %.1f reps/s\n",
              static_cast<unsigned long long>(total_reps),
              sim::resolve_threads(threads), wall,
              wall > 0.0 ? static_cast<double>(total_reps) / wall : 0.0);

  json.perf(sim::resolve_threads(threads), wall, total_reps);
  return json.write_file(json_path) ? 0 : 1;
}
