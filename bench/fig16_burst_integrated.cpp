// Figure 16: integrated FEC 1 (continuous parity stream, no feedback
// gaps) versus integrated FEC 2 (NAK-driven parity rounds spaced
// delta + T) under burst loss, for k = 7, 20, 100; p = 0.01, mean burst 2.
//
// Two effects reproduce: (i) growing k from 7 to 100 markedly improves
// integrated FEC under bursts; (ii) FEC2's time-spread rounds (implicit
// interleaving) help k = 7 but matter little for large k.
#include <cstdio>

#include "bench_common.hpp"
#include "protocol/rounds.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pbl;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double p = cli.get_double("p", 0.01);
  const double burst = cli.get_double("b", 2.0);
  const std::int64_t rmax = cli.get_int64("rmax", 10000);
  const std::int64_t tgs = cli.get_int64("tgs", 300);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int64("seed", 1));
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }

  protocol::Timing timing;  // delta = 40 ms, T = 300 ms

  bench::banner(
      "Figure 16: burst loss and integrated FEC 1 vs 2, k = 7, 20, 100",
      "p = " + std::to_string(p) + ", mean burst = " + std::to_string(burst) +
          ", delta = 40 ms, T = 300 ms, " + std::to_string(tgs) +
          " TGs per point (simulation)",
      "larger k resists bursts; FEC2 beats FEC1 for k = 7, they coincide "
      "for k = 100 (no extra interleaving needed)");

  const auto gilbert =
      loss::GilbertLossModel::from_packet_stats(p, burst, timing.delta);

  Table t({"R", "no_fec", "fec1_k7", "fec2_k7", "fec1_k20", "fec2_k20",
           "fec1_k100", "fec2_k100"});
  for (const std::int64_t r : bench::log_grid(1, rmax, 2)) {
    const auto receivers = static_cast<std::size_t>(r);
    std::vector<Table::Cell> row{static_cast<long long>(r)};

    protocol::McConfig cfg;
    cfg.k = 7;
    cfg.num_tgs = r >= 1000 ? std::max<std::int64_t>(50, tgs / 4) : tgs;
    cfg.timing = timing;
    {
      protocol::IidTransmitter tx(gilbert, receivers, Rng(seed).split(7000 + r));
      row.emplace_back(protocol::sim_nofec(tx, cfg).mean_tx);
    }
    std::uint64_t salt = 0;
    for (const std::int64_t k : {7, 20, 100}) {
      cfg.k = k;
      // Equal packet budget per point: fewer TGs for the bigger groups.
      cfg.num_tgs = std::max<std::int64_t>(
          20, (r >= 1000 ? tgs / 4 : tgs) * 7 / k);
      protocol::IidTransmitter tx1(gilbert, receivers,
                                   Rng(seed).split(1000 + 10 * r + salt));
      row.emplace_back(protocol::sim_integrated_stream(tx1, cfg).mean_tx);
      protocol::IidTransmitter tx2(gilbert, receivers,
                                   Rng(seed).split(2000 + 10 * r + salt));
      row.emplace_back(protocol::sim_integrated_naks(tx2, cfg).mean_tx);
      ++salt;
    }
    t.add_row(std::move(row));
  }
  t.set_precision(5);
  std::printf("%s", t.to_string().c_str());
  return 0;
}
