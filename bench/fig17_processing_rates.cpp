// Figure 17: per-packet processing rates at the sender and at a receiver
// for protocols N2 (plain ARQ) and NP (hybrid ARQ), k = 20, p = 0.01,
// using the paper's measured processing constants (DECstation 5000/200).
//
// Additionally prints the same model fed with the RSE coding/decoding
// constants measured on THIS machine, so the reader can see how modern
// hardware shifts the encode bottleneck.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "analysis/processing.hpp"
#include "fec/rse_code.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace pbl;

namespace {

/// Measures the per-packet encode/decode constants ce, cd of our codec
/// (seconds per packet per group member, i.e. the c in t = k * l * c).
std::pair<double, double> measure_coding_constants(std::size_t k,
                                                   std::size_t packet_len) {
  fec::RseCode code(k, k + k / 2);
  Rng rng(1);
  std::vector<std::vector<std::uint8_t>> data(k);
  for (auto& p : data) {
    p.resize(packet_len);
    for (auto& b : p) b = static_cast<std::uint8_t>(rng());
  }
  std::vector<std::span<const std::uint8_t>> dviews(data.begin(), data.end());
  std::vector<std::uint8_t> parity(packet_len);

  // Encoding one parity touches all k data packets: t = k * ce.
  const int reps = 400;
  const double enc_t = bench::time_seconds([&] {
    for (int i = 0; i < reps; ++i)
      code.encode_parity(static_cast<std::size_t>(i) % code.h(), dviews, parity);
  });
  const double ce = enc_t / reps / static_cast<double>(k);

  // Decoding l lost packets costs ~ k * l * cd; use l = 2.
  std::vector<std::vector<std::uint8_t>> parities(
      2, std::vector<std::uint8_t>(packet_len));
  {
    std::vector<std::span<std::uint8_t>> pv(parities.begin(), parities.end());
    std::vector<std::span<const std::uint8_t>> dv(data.begin(), data.end());
    code.encode_parity(0, dv, pv[0]);
    code.encode_parity(1, dv, pv[1]);
  }
  std::vector<fec::Shard> shards;
  for (std::size_t i = 2; i < k; ++i) shards.push_back({i, data[i]});
  shards.push_back({k, parities[0]});
  shards.push_back({k + 1, parities[1]});
  std::vector<std::vector<std::uint8_t>> out(k,
                                             std::vector<std::uint8_t>(packet_len));
  const double dec_t = bench::time_seconds([&] {
    for (int i = 0; i < reps; ++i) {
      std::vector<std::span<std::uint8_t>> ov(out.begin(), out.end());
      code.decode(shards, ov);
    }
  });
  const double cd = dec_t / reps / (2.0 * static_cast<double>(k));
  return {ce, cd};
}

void print_rates(const char* label, const analysis::ProcessingCosts& costs,
                 std::int64_t k, double p) {
  Table t({"R", "n2_sender", "n2_receiver", "np_sender", "np_receiver"});
  for (const std::int64_t r : bench::log_grid(1, 1000000)) {
    const auto rd = static_cast<double>(r);
    const auto n2 = analysis::n2_rates(p, rd, costs);
    const auto np = analysis::np_rates(k, p, rd, costs);
    // Rates in packets/ms to match the paper's axis.
    t.add_row({static_cast<long long>(r), n2.sender / 1000.0,
               n2.receiver / 1000.0, np.sender / 1000.0,
               np.receiver / 1000.0});
  }
  t.set_precision(5);
  std::printf("--- %s ---\n%s", label, t.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::int64_t k = cli.get_int64("k", 20);
  const double p = cli.get_double("p", 0.01);
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }

  bench::banner(
      "Figure 17: sender/receiver processing rates, N2 vs NP",
      "k = " + std::to_string(k) + ", p = " + std::to_string(p) +
          ", Eqs. 10-16 [pkts/ms]",
      "N2 sender ~ receiver; NP receiver is fast (decodes only k*p pkts/TG) "
      "while the NP sender pays the encoding bill and becomes the "
      "bottleneck");

  print_rates("paper constants (DECstation 5000/200, 2 KB packets)", {}, k, p);

  const auto [ce, cd] =
      measure_coding_constants(static_cast<std::size_t>(k), 2048);
  analysis::ProcessingCosts measured;
  measured.ce = ce;
  measured.cd = cd;
  std::printf("measured on this machine: ce = %.3g us, cd = %.3g us "
              "(paper: 700/720 us)\n", ce * 1e6, cd * 1e6);
  print_rates("same model with ce/cd measured on this machine", measured, k, p);
  return 0;
}
