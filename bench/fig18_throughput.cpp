// Figure 18: achievable end-system throughput (min of sender and receiver
// rates, Eq. 9) for N2 and for NP with and without sender pre-encoding,
// k = 20, p = 0.01, using the paper's processing constants.
#include <cstdio>

#include "analysis/processing.hpp"
#include "bench_common.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pbl;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::int64_t k = cli.get_int64("k", 20);
  const double p = cli.get_double("p", 0.01);
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }

  bench::banner(
      "Figure 18: end-system throughput, N2 vs NP vs NP pre-encoded",
      "k = " + std::to_string(k) + ", p = " + std::to_string(p) +
          ", Eqs. 9, 12-16 [pkts/ms]",
      "NP with pre-encoding sustains up to ~3x N2's throughput at 10^6 "
      "receivers; NP without pre-encoding is encode-bound");

  Table t({"R", "n2", "np", "np_pre_encode"});
  for (const std::int64_t r : bench::log_grid(1, 1000000)) {
    const auto rd = static_cast<double>(r);
    t.add_row({static_cast<long long>(r),
               analysis::n2_rates(p, rd).throughput / 1000.0,
               analysis::np_rates(k, p, rd, {}, false).throughput / 1000.0,
               analysis::np_rates(k, p, rd, {}, true).throughput / 1000.0});
  }
  t.set_precision(5);
  std::printf("%s", t.to_string().c_str());
  return 0;
}
