// Reliable file multicast with protocol NP on the discrete-event
// simulator: one sender, R receivers, per-receiver loss, real RSE coding
// on real bytes, NAK suppression — the paper's Section 5 protocol end to
// end.  Also runs the N2-style ARQ baseline on the same scenario for
// comparison.
//
//   $ ./file_multicast_sim --receivers=200 --p=0.05 --tgs=20 --k=16
//   $ ./file_multicast_sim --burst=2.5           # bursty loss instead
#include <cstdio>

#include "analysis/integrated.hpp"
#include "analysis/layered.hpp"
#include "loss/loss_model.hpp"
#include "protocol/arq_nofec.hpp"
#include "protocol/np_protocol.hpp"
#include "util/cli.hpp"

using namespace pbl;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::size_t receivers =
      static_cast<std::size_t>(cli.get_int64("receivers", 200));
  const std::size_t tgs = static_cast<std::size_t>(cli.get_int64("tgs", 20));
  const std::size_t k = static_cast<std::size_t>(cli.get_int64("k", 16));
  const std::size_t packet_len =
      static_cast<std::size_t>(cli.get_int64("packet-bytes", 1024));
  const double p = cli.get_double("p", 0.05);
  const double burst = cli.get_double("burst", 0.0);  // 0 = independent loss
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int64("seed", 1));
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }

  protocol::NpConfig np_cfg;
  np_cfg.k = k;
  np_cfg.h = std::min<std::size_t>(255 - k, 8 * k);
  np_cfg.packet_len = packet_len;

  std::unique_ptr<loss::LossModel> model;
  if (burst > 1.0) {
    model = std::make_unique<loss::GilbertLossModel>(
        loss::GilbertLossModel::from_packet_stats(p, burst, np_cfg.delta));
  } else {
    model = std::make_unique<loss::BernoulliLossModel>(p);
  }

  const double file_kib = static_cast<double>(tgs * k * packet_len) / 1024.0;
  std::printf("transferring %.0f KiB (%zu TGs x %zu pkts x %zu B) to %zu "
              "receivers, p = %g%s\n\n",
              file_kib, tgs, k, packet_len, receivers, p,
              burst > 1.0 ? " (bursty)" : "");

  // --- protocol NP (hybrid ARQ: parity repair, per-TG feedback) ---
  protocol::NpSession np(*model, receivers, tgs, np_cfg, seed);
  const auto nps = np.run();
  std::printf("protocol NP  : %s, %.3f tx/packet (ideal bound %.3f)\n",
              nps.all_delivered ? "all receivers verified the file"
                                : "DELIVERY FAILED",
              nps.tx_per_packet,
              analysis::expected_tx_integrated_ideal(
                  static_cast<std::int64_t>(k), 0, p,
                  static_cast<double>(receivers)));
  std::printf("               data %lu, parities %lu (encoded %lu), polls %lu\n",
              static_cast<unsigned long>(nps.data_sent),
              static_cast<unsigned long>(nps.parity_sent),
              static_cast<unsigned long>(nps.parities_encoded),
              static_cast<unsigned long>(nps.polls_sent));
  std::printf("               NAKs sent %lu, suppressed %lu; duplicates %lu; "
              "decoded %lu pkts; done at t = %.2f s\n",
              static_cast<unsigned long>(nps.naks_sent),
              static_cast<unsigned long>(nps.naks_suppressed),
              static_cast<unsigned long>(nps.duplicate_receptions),
              static_cast<unsigned long>(nps.packets_decoded),
              nps.completion_time);

  // --- N2-style ARQ baseline (retransmits originals, bitmap NAKs) ---
  protocol::ArqConfig arq_cfg;
  arq_cfg.k = k;
  arq_cfg.packet_len = packet_len;
  protocol::ArqSession arq(*model, receivers, tgs, arq_cfg, seed);
  const auto as = arq.run();
  std::printf("ARQ baseline : %s, %.3f tx/packet (analysis %.3f)\n",
              as.all_delivered ? "all receivers complete" : "DELIVERY FAILED",
              as.tx_per_packet,
              analysis::expected_tx_nofec(p, static_cast<double>(receivers)));
  std::printf("               data %lu, retransmissions %lu, NAKs %lu "
              "(suppressed %lu), duplicates %lu, done at t = %.2f s\n",
              static_cast<unsigned long>(as.data_sent),
              static_cast<unsigned long>(as.retransmissions),
              static_cast<unsigned long>(as.naks_sent),
              static_cast<unsigned long>(as.naks_suppressed),
              static_cast<unsigned long>(as.duplicate_receptions),
              as.completion_time);

  if (as.tx_per_packet > 0.0) {
    std::printf("\nbandwidth saved by parity repair: %.1f%%\n",
                100.0 * (1.0 - nps.tx_per_packet / as.tx_per_packet));
  }
  return nps.all_delivered && as.all_delivered ? 0 : 1;
}
