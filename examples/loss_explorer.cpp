// Interactive front end to the paper's models: pick a recovery scheme and
// a loss environment, get the simulated E[M] next to the closed form.
//
//   $ ./loss_explorer --mode=integrated2 --loss=bernoulli --R=1000 --p=0.01
//   $ ./loss_explorer --mode=layered --h=2 --loss=burst --burst=2
//   $ ./loss_explorer --mode=nofec --loss=tree --R=4096
//   $ ./loss_explorer --mode=integrated2 --loss=twoclass --alpha=0.05
#include <cstdio>
#include <string>

#include "core/reliable_multicast.hpp"
#include "util/cli.hpp"

using namespace pbl;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  core::MulticastConfig cfg;
  const std::string mode = cli.get_string("mode", "integrated2");
  const std::string loss = cli.get_string("loss", "bernoulli");
  cfg.k = cli.get_int64("k", 7);
  cfg.h = cli.get_int64("h", 0);
  cfg.receivers = static_cast<std::size_t>(cli.get_int64("R", 1000));
  cfg.p = cli.get_double("p", 0.01);
  cfg.burst_len = cli.get_double("burst", 2.0);
  cfg.alpha = cli.get_double("alpha", 0.05);
  cfg.p_high = cli.get_double("p-high", 0.25);
  cfg.num_tgs = cli.get_int64("tgs", 500);
  cfg.seed = static_cast<std::uint64_t>(cli.get_int64("seed", 1));
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    std::puts("  --mode: nofec | layered | integrated1 | integrated2");
    std::puts("  --loss: bernoulli | burst | twoclass | tree");
    return 0;
  }

  if (mode == "nofec") cfg.mode = core::RecoveryMode::kNoFec;
  else if (mode == "layered") cfg.mode = core::RecoveryMode::kLayeredFec;
  else if (mode == "integrated1") cfg.mode = core::RecoveryMode::kIntegratedFec1;
  else if (mode == "integrated2") cfg.mode = core::RecoveryMode::kIntegratedFec2;
  else { std::fprintf(stderr, "unknown --mode=%s\n", mode.c_str()); return 2; }

  if (loss == "bernoulli") cfg.loss = core::LossKind::kBernoulli;
  else if (loss == "burst") cfg.loss = core::LossKind::kBurst;
  else if (loss == "twoclass") cfg.loss = core::LossKind::kTwoClass;
  else if (loss == "tree") cfg.loss = core::LossKind::kTree;
  else { std::fprintf(stderr, "unknown --loss=%s\n", loss.c_str()); return 2; }

  std::printf("scheme: %s | loss: %s | k=%lld h=%lld R=%zu p=%g\n",
              core::to_string(cfg.mode).c_str(),
              core::to_string(cfg.loss).c_str(),
              static_cast<long long>(cfg.k), static_cast<long long>(cfg.h),
              cfg.receivers, cfg.p);

  const auto report = core::simulate(cfg);
  std::printf("simulated E[M] = %.4f +- %.4f (95%% CI, %lld TGs), "
              "%.2f rounds/TG, %llu packets sent\n",
              report.mean_tx, report.ci95,
              static_cast<long long>(cfg.num_tgs), report.mean_rounds,
              static_cast<unsigned long long>(report.packets_sent));
  if (report.predicted) {
    std::printf("closed form    = %.4f (paper Eqs. 2-8)\n", *report.predicted);
  } else {
    std::printf("closed form    = n/a for this loss model (the paper uses "
                "simulation here too)\n");
  }
  return 0;
}
