// Long-running multicast server over loopback UDP: N concurrent NP
// sessions on one reactor thread, with write-ahead journaling, graceful
// SIGTERM drain, crash-resume, and schema'd metrics snapshots.
//
//   multicast_server --sessions=32 --receivers=3 --data-loss=0.1
//       --control-loss=0.05 --journal-dir=/tmp/j --snapshot-dir=/tmp/s
//
// Payloads are regenerated deterministically from (--payload-seed,
// session id), so a restarted process can resume journaled sessions
// without any payload having been persisted:
//
//   multicast_server --resume --journal-dir=/tmp/j ...same flags...
//
// --print-schema emits the pbl-metrics-v1 schema document these
// snapshots conform to — the committed metrics-schema.json is exactly
// this output (tools/validate_metrics.py checks snapshots against it,
// tests/test_server.cpp checks the file never drifts from the code).
#include <sys/resource.h>

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "server/server.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using pbl::server::MulticastServer;

std::vector<pbl::net::TgBytes> make_payload(std::uint64_t payload_seed,
                                            std::uint64_t id, std::size_t tgs,
                                            std::size_t k,
                                            std::size_t packet_len) {
  pbl::Rng rng = pbl::Rng(payload_seed).split(id);
  std::vector<pbl::net::TgBytes> groups(tgs);
  for (auto& tg : groups) {
    tg.resize(k);
    for (auto& pkt : tg) {
      pkt.resize(packet_len);
      for (auto& byte : pkt) byte = static_cast<std::uint8_t>(rng());
    }
  }
  return groups;
}

// 1000 sessions × (1 sender + R receivers) sockets: lift the soft
// descriptor limit to the hard one so the default 1024 does not refuse
// admissions on CI runners.
void raise_fd_limit() {
  rlimit lim{};
  if (getrlimit(RLIMIT_NOFILE, &lim) == 0 && lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = lim.rlim_max;
    setrlimit(RLIMIT_NOFILE, &lim);
  }
}

}  // namespace

int main(int argc, char** argv) {
  pbl::Cli cli(argc, argv);

  if (cli.has("print-schema")) {
    std::cout << MulticastServer::schema_document();
    return 0;
  }

  const int sessions = cli.get_int("sessions", 8);
  const int receivers = cli.get_int("receivers", 2);
  const int tgs = cli.get_int("tgs", 4);
  const int k = cli.get_int("k", 8);
  const int h = cli.get_int("h", 24);
  const int packet_len = cli.get_int("packet-len", 256);
  const double data_loss = cli.get_double("data-loss", 0.05);
  const double control_loss = cli.get_double("control-loss", 0.0);
  const double wire_drop = cli.get_double("wire-drop", 0.0);
  const double wire_reorder = cli.get_double("wire-reorder", 0.0);
  const double poll_window = cli.get_double("poll-window", 0.03);
  const double idle_timeout = cli.get_double("idle-timeout", 30.0);
  const double drain_timeout = cli.get_double("drain-timeout", 0.5);
  const double drain_grace = cli.get_double("drain-grace", 5.0);
  const double snapshot_interval = cli.get_double("snapshot-interval", 0.25);
  const double session_deadline = cli.get_double("session-deadline", 0.0);
  const int grace_rounds = cli.get_int("grace-rounds", 8);
  const int max_retries = cli.get_int("max-retries", 10);
  const bool reliable = cli.get_bool("reliable", true);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int64("seed", 1));
  const std::uint64_t payload_seed =
      static_cast<std::uint64_t>(cli.get_int64("payload-seed", 42));
  const int max_sessions = cli.get_int("max-sessions", sessions);
  const bool resume = cli.has("resume");
  const std::string journal_dir = cli.get_string("journal-dir", "");
  const std::string snapshot_dir = cli.get_string("snapshot-dir", "");
  const std::string csv_path = cli.get_string("csv", "");
  // Overload hardening (docs/ROBUSTNESS.md): all knobs default off.
  const double pace_rate = cli.get_double("pace-rate", 0.0);
  const double pace_burst = cli.get_double("pace-burst", 16.0);
  const double stall_timeout = cli.get_double("stall-timeout", 0.0);
  const std::string shed_policy = cli.get_string("shed-policy", "defer");
  const bool nak_suppression = cli.get_bool("nak-suppression", false);
  const double nak_slot = cli.get_double("nak-slot", 0.0);
  const int feedback_budget = cli.get_int("feedback-budget", 0);
  const int quarantine_deficit = cli.get_int("quarantine-deficit", 0);
  const double quarantine_quorum = cli.get_double("quarantine-quorum", 0.5);
  const int catch_up_rounds = cli.get_int("catch-up-rounds", 4);
  const int arena_frames = cli.get_int("arena-frames", 0);
  // Resource-exhaustion fault injection: all off by default.
  const int fault_send_every = cli.get_int("fault-send-every", 0);
  const int fault_send_burst = cli.get_int("fault-send-burst", 4);
  const int fault_journal_every = cli.get_int("fault-journal-every", 0);
  const int fault_socket_nth = cli.get_int("fault-socket-nth", 0);
  // Hostile-peer hardening (docs/ROBUSTNESS.md): all knobs default off.
  const bool guard = cli.get_bool("guard", false);
  const bool guard_auth = cli.get_bool("guard-auth", false);
  const double guard_rate = cli.get_double("guard-rate", 0.0);
  const double guard_burst = cli.get_double("guard-burst", 16.0);
  const int greylist_after = cli.get_int("greylist-after", 8);
  const int ban_after = cli.get_int("ban-after", 24);
  const double greylist_duration = cli.get_double("greylist-duration", 0.25);
  const double ban_duration = cli.get_double("ban-duration", 5.0);
  // Byzantine-receiver injection ("" = none; see net/adversary.hpp).
  const std::string hostile = cli.get_string("hostile", "");
  const double hostile_rate = cli.get_double("hostile-rate", 200.0);

  if (cli.has("help")) {
    std::cout << cli.usage();
    return 0;
  }

  raise_fd_limit();

  pbl::server::ServerConfig cfg;
  cfg.max_sessions = static_cast<std::size_t>(max_sessions);
  cfg.np.k = static_cast<std::size_t>(k);
  cfg.np.h = static_cast<std::size_t>(h);
  cfg.np.packet_len = static_cast<std::size_t>(packet_len);
  cfg.np.poll_window = poll_window;
  cfg.np.drain_timeout = drain_timeout;
  cfg.np.reliable_control = reliable;
  cfg.np.retry.grace_rounds = static_cast<std::size_t>(grace_rounds);
  cfg.np.retry.max_retries = static_cast<std::size_t>(max_retries);
  cfg.np.retry.session_deadline = session_deadline;
  cfg.np.overload.pace_rate = pace_rate;
  cfg.np.overload.pace_burst = pace_burst;
  cfg.np.overload.stall_timeout = stall_timeout;
  if (shed_policy == "drop") {
    cfg.np.overload.shed_policy = pbl::net::ShedPolicy::kDropNewestParity;
  } else if (shed_policy == "refuse") {
    cfg.np.overload.shed_policy = pbl::net::ShedPolicy::kRefuse;
  } else if (shed_policy != "defer") {
    std::cerr << "unknown --shed-policy (want defer|drop|refuse)\n";
    return 2;
  }
  cfg.np.overload.nak_suppression = nak_suppression;
  cfg.np.overload.nak_slot = nak_slot;
  cfg.np.overload.feedback_budget = static_cast<std::size_t>(feedback_budget);
  cfg.np.overload.quarantine_deficit =
      static_cast<std::size_t>(quarantine_deficit);
  cfg.np.overload.quarantine_quorum = quarantine_quorum;
  cfg.np.overload.catch_up_rounds = static_cast<std::size_t>(catch_up_rounds);
  cfg.np.arena_frames = static_cast<std::size_t>(arena_frames);
  cfg.np.guard.enabled = guard;
  cfg.np.guard.auth = guard_auth;
  cfg.np.guard.feedback_rate = guard_rate;
  cfg.np.guard.feedback_burst = guard_burst;
  cfg.np.guard.greylist_after = static_cast<std::size_t>(greylist_after);
  cfg.np.guard.ban_after = static_cast<std::size_t>(ban_after);
  cfg.np.guard.greylist_duration = greylist_duration;
  cfg.np.guard.ban_duration = ban_duration;
  if (!hostile.empty()) {
    pbl::net::AdversaryProfile profile;
    if (!pbl::net::parse_adversary_profile(hostile, profile)) {
      std::cerr << "unknown --hostile profile (want storm|spoof|replay|"
                   "garbage|false-completion)\n";
      return 2;
    }
    cfg.hostile.enabled = true;
    cfg.hostile.profile = hostile;
    cfg.hostile.rate = hostile_rate;
  }
  cfg.faults.send_eagain_every = static_cast<std::size_t>(fault_send_every);
  cfg.faults.send_eagain_burst = static_cast<std::size_t>(fault_send_burst);
  cfg.faults.journal_fail_every = static_cast<std::size_t>(fault_journal_every);
  cfg.faults.socket_fail_nth = static_cast<std::size_t>(fault_socket_nth);
  cfg.journal_dir = journal_dir;
  cfg.snapshot_dir = snapshot_dir;
  cfg.csv_path = csv_path;
  cfg.snapshot_interval = snapshot_interval;
  cfg.drain_grace = drain_grace;
  cfg.receiver_idle_timeout = idle_timeout;
  cfg.exit_when_idle = true;

  pbl::server::Reactor reactor;
  MulticastServer server(reactor, cfg);
  server.install_signal_handlers();

  const auto make_spec = [&](std::uint64_t id) {
    MulticastServer::SessionSpec spec;
    spec.id = id;
    spec.groups =
        make_payload(payload_seed, id, static_cast<std::size_t>(tgs),
                     static_cast<std::size_t>(k),
                     static_cast<std::size_t>(packet_len));
    spec.receivers = static_cast<std::size_t>(receivers);
    spec.data_loss = data_loss;
    spec.impairment.control_drop = control_loss;
    spec.impairment.drop_prob = wire_drop;
    spec.impairment.reorder_prob = wire_reorder;
    if (wire_reorder > 0.0) spec.impairment.reorder_window = 4;
    spec.seed = pbl::Rng(seed ^ 0x5e55u).split(id)();
    return spec;
  };

  std::size_t resumed = 0;
  std::size_t submitted = 0;
  std::size_t refused = 0;
  if (resume) {
    resumed = server.resume_journaled_sessions(
        [&](const pbl::core::SenderSessionState& state) {
          return std::optional<MulticastServer::SessionSpec>(
              make_spec(state.session_id));
        });
  } else {
    for (int id = 0; id < sessions; ++id) {
      if (server.submit(make_spec(static_cast<std::uint64_t>(id))))
        ++submitted;
      else
        ++refused;
    }
  }

  if (server.active_sessions() > 0)
    reactor.run();
  else
    server.write_snapshot();  // nothing to run: still record the outcome

  const std::uint64_t redelivered = server.redelivered_prior_total();
  const std::uint64_t mismatches = server.payload_mismatches_total();
  const auto& sm = server.server_metrics();
  std::printf(
      "multicast_server: backend=%s submitted=%zu resumed=%zu refused=%zu "
      "completed=%llu failed=%llu drained=%llu redelivered_prior=%llu "
      "payload_mismatches=%llu would_block=%llu shed=%llu suppressed=%llu "
      "quarantined=%llu faults=%llu peer_rejected=%llu peer_banned=%llu\n",
      reactor.backend() == pbl::server::Reactor::Backend::kEpoll ? "epoll"
                                                                 : "poll",
      submitted, resumed, refused,
      static_cast<unsigned long long>(server.completed_sessions()),
      static_cast<unsigned long long>(server.failed_sessions()),
      static_cast<unsigned long long>(server.drained_sessions()),
      static_cast<unsigned long long>(redelivered),
      static_cast<unsigned long long>(mismatches),
      static_cast<unsigned long long>(sm.counter("would_block_total")),
      static_cast<unsigned long long>(sm.counter("total_shed_frames")),
      static_cast<unsigned long long>(sm.counter("total_naks_suppressed")),
      static_cast<unsigned long long>(sm.counter("total_members_quarantined")),
      static_cast<unsigned long long>(sm.counter("fault_injected_send") +
                                      sm.counter("fault_injected_journal") +
                                      sm.counter("fault_injected_socket")),
      static_cast<unsigned long long>(sm.counter("total_peer_rejected")),
      static_cast<unsigned long long>(sm.counter("total_peer_banned")));

  const bool ok =
      server.failed_sessions() == 0 && redelivered == 0 && mismatches == 0;
  return ok ? 0 : 1;
}
