// Quickstart: encode a transmission group with the RSE codec, lose some
// packets, repair the loss with parities, and verify the reconstruction.
//
//   $ ./quickstart
//
// This is the 60-second tour of the library's lowest layer; see
// file_multicast_sim for the full protocol and loss_explorer for the
// paper's models.
#include <cstdio>
#include <string>
#include <vector>

#include "fec/fec_block.hpp"
#include "fec/rse_code.hpp"
#include "util/rng.hpp"

int main() {
  // A (k = 4, n = 7) code: 4 data packets protected by 3 parities.
  constexpr std::size_t k = 4, n = 7, packet_len = 32;
  const pbl::fec::RseCode code(k, n);

  // The "file": four packets of application data.
  std::vector<std::vector<std::uint8_t>> data;
  for (const char* text : {"the quick brown fox jumps over b",
                           "reliable multicast with parities",
                           "one parity repairs ANY lost pack",
                           "et -- that is the whole trick!!!"}) {
    data.emplace_back(text, text + packet_len);
  }

  // Sender side: a TgEncoder wraps the group and encodes on demand.
  pbl::fec::TgEncoder encoder(/*tg_id=*/0, code, data);
  std::printf("sender: %zu data packets + up to %zu parities (k=%zu, n=%zu)\n",
              k, n - k, k, n);

  // The network: packets 1 and 3 never arrive.
  pbl::fec::TgDecoder decoder(/*tg_id=*/0, code, packet_len);
  decoder.add(encoder.data_packet(0));
  decoder.add(encoder.data_packet(2));
  std::printf("receiver: got packets 0 and 2, still needs %zu more\n",
              decoder.needed());

  // Recovery: ANY two parities substitute for the two lost packets.
  decoder.add(encoder.parity_packet(0));
  decoder.add(encoder.parity_packet(2));
  std::printf("receiver: got parities 0 and 2, decodable = %s\n",
              decoder.decodable() ? "yes" : "no");

  const auto& rebuilt = decoder.reconstruct();
  bool ok = true;
  for (std::size_t i = 0; i < k; ++i) {
    const std::string text(rebuilt[i].begin(), rebuilt[i].end());
    const bool match = rebuilt[i] == data[i];
    ok = ok && match;
    std::printf("  packet %zu %s: \"%s\"\n", i,
                match ? "OK " : "BAD", text.c_str());
  }
  std::printf("reconstructed %zu packets by RSE decoding: %s\n",
              decoder.decoded_packets(), ok ? "SUCCESS" : "FAILURE");
  return ok ? 0 : 1;
}
