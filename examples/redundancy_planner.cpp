// Provisioning walkthrough: how much redundancy does a reliable multicast
// session need?  Uses the paper's models through core/planner.hpp, then
// validates the plan by actually running protocol NP on the planned
// configuration.
//
//   $ ./redundancy_planner --R=100000 --p=0.01 --k=20
//   $ ./redundancy_planner --measured-em=2.2   # shared-loss diagnosis
#include <cstdio>

#include "analysis/integrated.hpp"
#include "analysis/layered.hpp"
#include "core/planner.hpp"
#include "loss/loss_model.hpp"
#include "protocol/np_protocol.hpp"
#include "util/cli.hpp"

using namespace pbl;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double p = cli.get_double("p", 0.01);
  const double receivers = cli.get_double("R", 100000.0);
  const std::int64_t k = cli.get_int64("k", 20);
  const double target_em = cli.get_double("target-em", 1.5);
  const double confidence = cli.get_double("confidence", 0.9);
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }

  std::printf("provisioning a session: k = %lld, p = %g, R = %g\n\n",
              static_cast<long long>(k), p, receivers);

  // 1. Baseline costs from the paper's models.
  std::printf("plain ARQ would cost            E[M] = %.3f tx/packet\n",
              analysis::expected_tx_nofec(p, receivers));
  std::printf("idealised integrated FEC costs  E[M] = %.3f tx/packet\n\n",
              analysis::expected_tx_integrated_ideal(k, 0, p, receivers));

  // 2. Layered FEC: how many parities per block for a target E[M]?
  if (const auto h = core::plan_layered_parities(k, p, receivers, target_em)) {
    std::printf("layered FEC needs h = %lld parities per block for "
                "E[M] <= %.2f  (actual %.3f)\n",
                static_cast<long long>(*h), target_em,
                analysis::expected_tx_layered(k, k + *h, p, receivers));
  } else {
    std::printf("layered FEC cannot reach E[M] <= %.2f at these parameters\n",
                target_em);
  }

  // 3. Integrated FEC: how many proactive parities avoid feedback rounds?
  const auto a = core::plan_proactive_parities(k, p, receivers, confidence);
  if (a) {
    std::printf("sending a = %lld proactive parities makes a NAK round "
                "unlikely (P >= %.0f%%), costing %.3f tx/packet up front\n\n",
                static_cast<long long>(*a), 100.0 * confidence,
                static_cast<double>(k + *a) / static_cast<double>(k));
  }

  // 4. Shared-loss diagnosis: map a measured no-FEC E[M] back to the
  //    equivalent independent population (paper Section 4.1).
  if (cli.has("measured-em")) {
    const double em = cli.get_double("measured-em", 2.0);
    const double r_indep = core::equivalent_independent_receivers(p, em);
    std::printf("a measured no-FEC E[M] of %.3f corresponds to ~%.0f "
                "INDEPENDENT receivers;\nprovisioning for your nominal R "
                "would overestimate the redundancy needed.\n\n",
                em, r_indep);
  }

  // 5. Validate the proactive plan on the real protocol (scaled-down R to
  //    keep the demo quick; the per-receiver loss process is what matters).
  const std::size_t demo_receivers =
      static_cast<std::size_t>(std::min(receivers, 200.0));
  loss::BernoulliLossModel model(p);
  protocol::NpConfig cfg;
  cfg.k = static_cast<std::size_t>(k);
  cfg.h = std::min<std::size_t>(255 - cfg.k, 8 * cfg.k);
  cfg.packet_len = 256;
  if (a) {
    // Re-plan for the demo population size.
    const auto demo_a = core::plan_proactive_parities(
        k, p, static_cast<double>(demo_receivers), confidence);
    cfg.proactive = static_cast<std::size_t>(demo_a.value_or(0));
  }
  protocol::NpSession session(model, demo_receivers, 20, cfg, 1);
  const auto stats = session.run();
  std::printf("validation run (R = %zu, 20 TGs): %s, %.3f tx/packet, "
              "%llu NAKs, a = %zu\n",
              demo_receivers,
              stats.all_delivered ? "all delivered" : "FAILED",
              stats.tx_per_packet,
              static_cast<unsigned long long>(stats.naks_sent),
              cfg.proactive);
  return stats.all_delivered ? 0 : 1;
}
