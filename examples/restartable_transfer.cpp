// Restartable transfer: a multicast file transfer that survives sender
// crashes across PROCESS restarts, not just within one run.
//
// Each invocation is one sender life.  The sender's progress lives in a
// write-ahead journal on disk; the receivers' decoded bitmaps persist in
// a sibling journal (standing in for receivers that, in a real
// deployment, simply outlive the sender).  Run it repeatedly:
//
//   $ ./restartable_transfer        # life 1: crashes partway, journals kept
//   $ ./restartable_transfer        # life 2: resumes, crashes again
//   $ ./restartable_transfer        # life 3: finishes, verifies, cleans up
//
// The first two lives die on a scripted schedule (override with
// --crash-after=N, disable with --crash-after=0); every restart resumes
// at the first incomplete TG, serves only fresh parity indices, and
// stamps a bumped incarnation so straggler packets from the dead life
// are rejected.  --reset discards the journals and starts over.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/file_transfer.hpp"
#include "core/session_state.hpp"
#include "loss/loss_model.hpp"
#include "protocol/np_protocol.hpp"
#include "util/cli.hpp"
#include "util/journal.hpp"
#include "util/rng.hpp"

using namespace pbl;

namespace {

/// The "file": deterministic bytes, so every invocation agrees on the
/// payload without shipping state outside the journals.
std::vector<std::uint8_t> demo_blob(std::size_t bytes) {
  Rng rng(0xF17E);
  std::vector<std::uint8_t> blob(bytes);
  for (auto& b : blob) b = static_cast<std::uint8_t>(rng());
  return blob;
}

/// Latest persisted decoded-bitmap per receiver, from the receiver-side
/// journal (empty file or missing snapshots = receivers start cold).
std::vector<std::vector<bool>> load_receiver_priors(util::Journal& rx_journal,
                                                    std::size_t receivers,
                                                    std::size_t num_tgs,
                                                    std::uint64_t session_id) {
  if (rx_journal.recovered().empty()) return {};  // all receivers cold
  std::vector<std::vector<bool>> priors(receivers,
                                        std::vector<bool>(num_tgs, false));
  for (const auto& rec : rx_journal.recovered()) {
    if (rec.type !=
        static_cast<std::uint32_t>(core::SessionRecordType::kReceiverSnapshot))
      continue;
    const auto state = core::ReceiverSessionState::deserialize(rec.payload);
    if (state.session_id == session_id && state.receiver < receivers &&
        state.decoded.size() == num_tgs)
      priors[state.receiver] = state.decoded;  // later snapshot wins
  }
  return priors;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string path = cli.get_string("journal", "/tmp/pbl_restartable");
  const std::size_t receivers =
      static_cast<std::size_t>(cli.get_int64("receivers", 5));
  const double p = cli.get_double("p", 0.05);
  const std::int64_t crash_flag = cli.get_int64("crash-after", -1);
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }
  const std::string rx_path = path + ".rx";
  if (cli.has("reset")) {
    std::remove(path.c_str());
    std::remove(rx_path.c_str());
    std::puts("journals removed; next run starts a fresh session");
    return 0;
  }

  // Segment the demo file: 12 TGs of k = 4 packets, 64 bytes each.
  protocol::NpConfig cfg;
  cfg.k = 4;
  cfg.h = 8;
  cfg.packet_len = 64;
  cfg.reliable_control = true;
  const auto blob = demo_blob(3000);
  const auto groups = core::segment_blob(blob, cfg.k, cfg.packet_len);

  // Sender journal: create fresh or recover the previous life.  The
  // constructor folds the record stream, checks the shape, and journals
  // the incarnation bump before we send anything.
  constexpr std::uint64_t kSessionId = 0x5e55;
  core::SenderSessionState fresh;
  fresh.session_id = kSessionId;
  fresh.k = static_cast<std::uint32_t>(cfg.k);
  fresh.h = static_cast<std::uint32_t>(cfg.h);
  fresh.packet_len = static_cast<std::uint32_t>(cfg.packet_len);
  fresh.num_tgs = static_cast<std::uint32_t>(groups.size());
  fresh.completed.assign(groups.size(), false);
  fresh.parities_sent.assign(groups.size(), 0);
  core::SessionJournal sj(path, fresh, {.checkpoint_interval = 8});

  const auto& st = sj.state();
  std::printf("life %u (%s): %zu/%u TGs already confirmed complete\n",
              st.incarnation + 1, sj.resumed() ? "resumed" : "fresh session",
              st.first_incomplete() == st.num_tgs
                  ? static_cast<std::size_t>(st.num_tgs)
                  : static_cast<std::size_t>(
                        std::count(st.completed.begin(), st.completed.end(),
                                   true)),
              st.num_tgs);

  // Receiver journal: the surviving receivers' decoded bitmaps.
  auto rx_journal = util::Journal::open(rx_path, {.sync_every = 1});
  auto priors =
      load_receiver_priors(rx_journal, receivers, groups.size(), kSessionId);

  // Scripted demo: the first two lives die partway unless overridden.
  std::size_t crash_after = protocol::kNoSenderCrash;
  if (crash_flag > 0) crash_after = static_cast<std::size_t>(crash_flag);
  if (crash_flag < 0 && st.incarnation < 2)
    crash_after = 40;  // enough to confirm a few TGs, not the whole file

  cfg.resume.incarnation = st.incarnation;
  cfg.resume.receiver_incarnation = st.incarnation;  // heard the last life
  cfg.resume.completed = st.completed;
  cfg.resume.parities_sent = st.parities_sent;
  cfg.resume.receiver_decoded = priors;
  cfg.crash_after_tx = crash_after;
  cfg.on_tg_completed = [&sj](std::size_t tg) { sj.record_tg_completed(tg); };
  cfg.on_parities_sent = [&sj](std::size_t tg, std::size_t hw) {
    sj.record_parities_sent(tg, hw);
  };

  loss::BernoulliLossModel loss(p);
  protocol::NpSession session(loss, receivers, groups, cfg, kSessionId);
  const auto stats = session.run();

  // Persist what the receivers now hold, whatever happened to the sender.
  for (std::size_t r = 0; r < stats.report.delivered.size(); ++r) {
    core::ReceiverSessionState rx_state;
    rx_state.session_id = kSessionId;
    rx_state.receiver = static_cast<std::uint32_t>(r);
    rx_state.incarnation = sj.state().incarnation;
    rx_state.num_tgs = static_cast<std::uint32_t>(groups.size());
    rx_state.decoded = stats.report.delivered[r];
    rx_journal.append(
        static_cast<std::uint32_t>(core::SessionRecordType::kReceiverSnapshot),
        rx_state.serialize());
  }

  std::printf("  skipped %llu journaled TGs, sent %llu data + %llu parity, "
              "rejected %llu stale packets\n",
              static_cast<unsigned long long>(stats.resumed_tgs_skipped),
              static_cast<unsigned long long>(stats.data_sent),
              static_cast<unsigned long long>(stats.parity_sent +
                                              stats.proactive_sent),
              static_cast<unsigned long long>(stats.stale_rejected));

  if (stats.sender_crashed) {
    std::printf("  sender CRASHED mid-transfer; journal holds %zu/%u TGs "
                "(%zu bytes) — run me again to resume\n",
                static_cast<std::size_t>(std::count(
                    sj.state().completed.begin(), sj.state().completed.end(),
                    true)),
                sj.state().num_tgs, sj.journal().size_bytes());
    return 0;
  }

  const bool ok = stats.all_delivered && sj.state().all_complete();
  std::printf("  transfer COMPLETE in %u life/lives: %zu bytes to %zu "
              "receivers, byte-exact = %s\n",
              sj.state().incarnation + 1, blob.size(), receivers,
              ok ? "yes" : "NO");
  std::remove(path.c_str());
  std::remove(rx_path.c_str());
  std::puts("  journals removed; next run starts a fresh session");
  return ok ? 0 : 1;
}
