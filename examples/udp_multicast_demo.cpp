// Protocol NP over REAL loopback UDP sockets: one sender thread and N
// receiver threads, emulated multicast (unicast fan-out), loss injected
// at each receiver, parity repair with per-TG NAK feedback, and
// end-to-end integrity verification of every byte at every receiver.
//
//   $ ./udp_multicast_demo --receivers=8 --p=0.2 --bytes=20000 --k=8
//
// Built on the library's UdpNpSender/UdpNpReceiver (net/udp/udp_np.hpp)
// and the file framing of core/file_transfer.hpp.
#include <cstdio>
#include <thread>
#include <vector>

#include "core/file_transfer.hpp"
#include "net/udp/udp_np.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace pbl;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::size_t receivers =
      static_cast<std::size_t>(cli.get_int64("receivers", 8));
  const std::size_t bytes =
      static_cast<std::size_t>(cli.get_int64("bytes", 20000));
  const double p = cli.get_double("p", 0.2);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int64("seed", 1));
  net::UdpNpConfig cfg;
  cfg.k = static_cast<std::size_t>(cli.get_int64("k", 8));
  cfg.h = static_cast<std::size_t>(cli.get_int64("h", 64));
  cfg.packet_len = static_cast<std::size_t>(cli.get_int64("packet-bytes", 512));
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }
  if (cfg.k + cfg.h > 255) {
    std::fprintf(stderr, "k + h must be <= 255\n");
    return 2;
  }

  // The "file".
  Rng data_rng(seed);
  std::vector<std::uint8_t> blob(bytes);
  for (auto& b : blob) b = static_cast<std::uint8_t>(data_rng());
  const auto groups = core::segment_blob(blob, cfg.k, cfg.packet_len);

  std::printf("UDP demo: %zu receivers on loopback, %zu bytes in %zu TGs "
              "(k=%zu, %zu B packets), injected loss p = %g\n",
              receivers, bytes, groups.size(), cfg.k, cfg.packet_len, p);

  // Sockets and the emulated multicast group.
  net::UdpSocket sender_socket;
  const std::uint16_t sender_port = sender_socket.port();
  std::vector<net::UdpSocket> rx_sockets;
  net::UdpGroup group;
  for (std::size_t r = 0; r < receivers; ++r) {
    rx_sockets.emplace_back();
    group.add_member(rx_sockets.back().port());
  }

  std::vector<net::UdpNpReceiverResult> results(receivers);
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < receivers; ++r) {
    threads.emplace_back([&, r, sock = std::move(rx_sockets[r])]() mutable {
      net::UdpNpReceiver receiver(std::move(sock), sender_port, groups.size(),
                                  cfg, p, Rng(seed).split(100 + r));
      results[r] = receiver.run(10.0);
    });
  }

  net::UdpNpSender sender(std::move(sender_socket), group, cfg);
  const auto stats = sender.transfer(groups);
  for (auto& t : threads) t.join();

  bool all_ok = true;
  std::uint64_t dropped = 0, decoded = 0;
  for (std::size_t r = 0; r < receivers; ++r) {
    bool ok = results[r].complete;
    if (ok) {
      const auto rebuilt = core::reassemble_blob(results[r].groups);
      ok = rebuilt == blob;
    }
    all_ok = all_ok && ok;
    dropped += results[r].dropped;
    decoded += results[r].decoded;
  }

  std::printf("sender: %llu data + %llu parities (%.3f tx/packet), %llu "
              "polls, %llu NAKs received\n",
              static_cast<unsigned long long>(stats.data_sent),
              static_cast<unsigned long long>(stats.parity_sent),
              stats.tx_per_packet,
              static_cast<unsigned long long>(stats.polls_sent),
              static_cast<unsigned long long>(stats.naks_received));
  std::printf("receivers: %llu packets dropped by injected loss, %llu "
              "packets rebuilt by RSE decoding\n",
              static_cast<unsigned long long>(dropped),
              static_cast<unsigned long long>(decoded));
  std::printf("%s\n", all_ok ? "ALL RECEIVERS VERIFIED THE FILE"
                             : "SOME RECEIVER IS INCOMPLETE");
  return all_ok ? 0 : 1;
}
