// Collaborative-whiteboard workload (the paper's intro motivates reliable
// multicast with wb-style applications): a stream of SMALL updates, each
// a transmission group of its own, where what matters is not only the
// bandwidth but how quickly EVERY participant sees each update.
//
// Compares protocol NP (hybrid ARQ) with the N2-style ARQ baseline on
// per-update delivery latency and bandwidth, under bursty loss.
//
//   $ ./whiteboard_sim --receivers=40 --updates=50 --p=0.05 --burst=2
#include <cstdio>
#include <memory>

#include "loss/loss_model.hpp"
#include "protocol/arq_nofec.hpp"
#include "protocol/np_protocol.hpp"
#include "util/cli.hpp"

using namespace pbl;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::size_t receivers =
      static_cast<std::size_t>(cli.get_int64("receivers", 40));
  const std::size_t updates =
      static_cast<std::size_t>(cli.get_int64("updates", 50));
  const double p = cli.get_double("p", 0.05);
  const double burst = cli.get_double("burst", 2.0);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int64("seed", 1));
  if (cli.has("help")) {
    std::puts(cli.usage().c_str());
    return 0;
  }

  // A whiteboard update: a handful of small packets.
  protocol::NpConfig np_cfg;
  np_cfg.k = 4;
  np_cfg.h = 32;
  np_cfg.packet_len = 128;
  np_cfg.delta = 0.002;   // 500 pkts/s session
  np_cfg.slot = 0.004;
  np_cfg.adaptive = true;  // tune redundancy to whatever the network does

  std::unique_ptr<loss::LossModel> model;
  if (burst > 1.0) {
    model = std::make_unique<loss::GilbertLossModel>(
        loss::GilbertLossModel::from_packet_stats(p, burst, np_cfg.delta));
  } else {
    model = std::make_unique<loss::BernoulliLossModel>(p);
  }

  std::printf("whiteboard: %zu participants, %zu updates of %zu x %zu B, "
              "p = %g%s\n\n",
              receivers, updates, np_cfg.k, np_cfg.packet_len, p,
              burst > 1.0 ? " (bursty)" : "");

  protocol::NpSession np(*model, receivers, updates, np_cfg, seed);
  const auto nps = np.run();
  std::printf("protocol NP (adaptive): %s\n",
              nps.all_delivered ? "every participant saw every update"
                                : "DELIVERY FAILED");
  std::printf("  update latency %.1f ms mean / %.1f ms p95 | %.3f tx/packet "
              "| %llu NAKs | adapted to a = %.0f proactive parities\n",
              1e3 * nps.mean_tg_latency, 1e3 * nps.p95_tg_latency,
              nps.tx_per_packet,
              static_cast<unsigned long long>(nps.naks_sent),
              nps.final_proactive);

  protocol::ArqConfig arq_cfg;
  arq_cfg.k = np_cfg.k;
  arq_cfg.packet_len = np_cfg.packet_len;
  arq_cfg.delta = np_cfg.delta;
  arq_cfg.slot = np_cfg.slot;
  protocol::ArqSession arq(*model, receivers, updates, arq_cfg, seed);
  const auto as = arq.run();
  std::printf("ARQ baseline          : %s\n",
              as.all_delivered ? "every participant saw every update"
                               : "DELIVERY FAILED");
  std::printf("  session finished at %.2f s | %.3f tx/packet | %llu NAKs | "
              "%llu duplicate receptions\n",
              as.completion_time, as.tx_per_packet,
              static_cast<unsigned long long>(as.naks_sent),
              static_cast<unsigned long long>(as.duplicate_receptions));

  std::printf("\nNP session finished at %.2f s vs ARQ %.2f s\n",
              nps.completion_time, as.completion_time);
  return nps.all_delivered && as.all_delivered ? 0 : 1;
}
