// Fuzz target: pbl::Cli over fuzzer-chosen argument vectors.
//
// The input is split on '\n' into argv tokens; every getter is then
// exercised both on a fixed set of flag names and on names recovered from
// the tokens themselves (so "--k=12junk" stresses get_int("k")).
// Contract under test (util/cli.hpp): the numeric getters either return a
// fully-parsed value or throw std::invalid_argument — never a bare
// std::out_of_range from the std::sto* family, never UB.
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/cli.hpp"

namespace {

template <typename Fn>
void expect_value_or_invalid_argument(Fn&& fn) {
  try {
    fn();
  } catch (const std::invalid_argument&) {
    // the documented failure mode
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  constexpr std::size_t kMaxArgs = 16;
  std::vector<std::string> tokens;
  std::string current;
  for (std::size_t i = 0; i < size && tokens.size() < kMaxArgs; ++i) {
    const char c = static_cast<char>(data[i]);
    if (c == '\n') {
      tokens.push_back(current);
      current.clear();
    } else if (c != '\0') {  // argv strings are NUL-terminated
      current.push_back(c);
    }
  }
  if (!current.empty() && tokens.size() < kMaxArgs) tokens.push_back(current);

  std::vector<const char*> argv;
  argv.push_back("fuzz_cli");
  for (const auto& t : tokens) argv.push_back(t.c_str());

  pbl::Cli cli(static_cast<int>(argv.size()), argv.data());

  std::vector<std::string> names = {"k", "p", "seed", "ks", "verbose"};
  for (const auto& t : tokens) {
    std::string name = t;
    while (name.rfind("--", 0) == 0) name = name.substr(2);
    if (const auto eq = name.find('='); eq != std::string::npos)
      name = name.substr(0, eq);
    if (!name.empty()) names.push_back(name);
  }

  for (const auto& name : names) {
    (void)cli.has(name);
    expect_value_or_invalid_argument([&] { (void)cli.get_int(name, 7); });
    expect_value_or_invalid_argument([&] { (void)cli.get_int64(name, 1); });
    expect_value_or_invalid_argument([&] { (void)cli.get_double(name, 0.5); });
    expect_value_or_invalid_argument(
        [&] { (void)cli.get_doubles(name, {1.0, 2.0}); });
    (void)cli.get_bool(name, false);
    (void)cli.get_string(name, "default");
  }
  (void)cli.usage();
  return 0;
}
