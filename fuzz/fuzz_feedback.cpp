// Fuzz target: PeerGuard over arbitrary feedback streams.
//
// Contract under test (net/peer_guard.hpp): whatever arrives on the
// sender's feedback socket — genuine member NAKs, spoofed identities,
// replays, sealed-but-nonsense frames, raw noise — the guard (a) never
// crashes, (b) never admits a frame from a non-member source, and
// (c) keeps its decision counters closed-world:
//
//     accepted + rejected == checks
//     rejected == unknown_source + bad_shape + addr_mismatch
//               + auth_failed + replays + rate_limited
//               + greylist_drops + ban_drops
//
// The input is a little driver program:
//
//   byte 0      flags: bit0 auth on, bit1 rate policing on,
//               bit2 require_index_match off, bit3 reseal frames
//               under the true member key (drives the accept/replay
//               paths that random tags can never reach)
//   then records: [src selector u8][time delta u8][len u8][len bytes]
//
// Each record's bytes go through fec::deserialize (whose own contract is
// fuzz_packet's problem); parse rejects are skipped, parsed frames are
// checked against the guard at a monotonically advancing clock — so one
// input exercises strikes, greylist/ban escalation, ban expiry
// readmission and the per-peer replay window in sequence.
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "fec/packet.hpp"
#include "net/peer_guard.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 1) return 0;
  const std::uint8_t flags = data[0];

  const std::vector<std::uint16_t> members = {1000, 2000, 3000};
  pbl::net::PeerGuardConfig gc;
  gc.enabled = true;
  gc.auth = (flags & 0x01) != 0;
  gc.auth_key = 0x5EED5EED5EED5EEDull;
  gc.feedback_rate = (flags & 0x02) ? 50.0 : 0.0;
  gc.feedback_burst = 2.0;
  gc.require_index_match = (flags & 0x04) == 0;
  gc.greylist_after = 2;
  gc.ban_after = 4;
  gc.greylist_duration = 0.05;
  gc.ban_duration = 0.5;
  const bool reseal = (flags & 0x08) != 0;

  double now = 0.0;
  pbl::net::PeerGuard guard(gc, members, /*k=*/4, /*num_tgs=*/8, now);

  std::uint64_t checks = 0;
  std::size_t pos = 1;
  std::uint32_t fbseq = 0;
  while (pos + 3 <= size) {
    const std::uint8_t sel = data[pos];
    const std::uint8_t dt = data[pos + 1];
    const std::size_t len = data[pos + 2];
    pos += 3;
    const std::size_t take = std::min(len, size - pos);
    const std::span<const std::uint8_t> frame{data + pos, take};
    pos += take;

    // Selector covers every member port plus strangers on both sides.
    static constexpr std::uint16_t kSources[] = {1000, 2000, 3000,
                                                 999,  1001, 65535};
    const std::uint16_t src = kSources[sel % 6];
    now += static_cast<double>(dt) / 256.0;  // 0..~1s per record

    pbl::fec::Packet packet;
    try {
      packet = pbl::fec::deserialize(frame);
    } catch (const std::invalid_argument&) {
      continue;  // unparseable datagrams never reach the guard
    }
    if (reseal && gc.auth) {
      // Tag under the key the guard expects for this source, with a
      // fresh fbseq — the only way fuzzed inputs ever pass auth, which
      // is exactly the point: it exposes the post-auth paths (replay
      // window, rate bucket, escalation) to coverage.
      if (packet.payload.size() >= pbl::net::kAuthTrailerSize)
        packet.payload.resize(packet.payload.size() -
                              pbl::net::kAuthTrailerSize);
      pbl::net::append_auth_trailer(
          packet, pbl::net::derive_member_key(gc.auth_key, src), fbseq++);
    }

    const pbl::net::PeerVerdict verdict = guard.check(src, packet, now);
    ++checks;
    if (verdict == pbl::net::PeerVerdict::kAccept) {
      // An accepted frame must come from an admitted member...
      bool member = false;
      for (const std::uint16_t m : members) member |= (m == src);
      if (!member) __builtin_trap();
      // ...and (with the identity cross-check on) claim its own port.
      if (gc.require_index_match && packet.header.index != src)
        __builtin_trap();
    }
  }

  const pbl::net::PeerGuardStats& st = guard.stats();
  if (st.accepted + st.rejected != checks) __builtin_trap();
  const std::uint64_t causes = st.unknown_source + st.bad_shape +
                               st.addr_mismatch + st.auth_failed +
                               st.replays + st.rate_limited +
                               st.greylist_drops + st.ban_drops;
  if (st.rejected != causes) __builtin_trap();
  // Escalation bookkeeping: you cannot leave a ban you never entered.
  if (st.readmitted > st.banned) __builtin_trap();
  return 0;
}
