// Fuzz target: FrameStreamDecoder segmentation invariance.
//
// Contract under test (net/udp/frame_stream.hpp): the decoder's output is
// a pure function of the logical byte stream — cutting the same stream
// into arbitrary recvmmsg-style segments must emit the identical packet
// sequence, identical resync/skip counters, and identical unconsumed
// tail.  The input's first 8 bytes seed a deterministic segmentation
// schedule; the rest is the stream.  The oracle decodes it twice (whole
// vs segmented) and traps on any divergence.
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "net/udp/frame_stream.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::uint64_t seed = 0x9E3779B97F4A7C15ull;
  std::size_t offset = 0;
  if (size >= 8) {
    for (int i = 0; i < 8; ++i) seed = (seed << 8) | data[i];
    offset = 8;
  }
  const std::span<const std::uint8_t> stream{data + offset, size - offset};

  pbl::net::FrameStreamDecoder whole;
  whole.feed(stream);
  const auto expected = whole.take();

  pbl::net::FrameStreamDecoder segmented;
  std::size_t pos = 0;
  while (pos < stream.size()) {
    // xorshift-derived segment lengths in [1, 97]: covers cuts inside the
    // header, inside the payload, inside the CRC trailer and across
    // frame boundaries.
    seed ^= seed << 13;
    seed ^= seed >> 7;
    seed ^= seed << 17;
    const std::size_t len =
        std::min<std::size_t>(1 + seed % 97, stream.size() - pos);
    segmented.feed(stream.subspan(pos, len));
    pos += len;
  }
  const auto got = segmented.take();

  if (got.size() != expected.size()) __builtin_trap();
  for (std::size_t i = 0; i < got.size(); ++i)
    if (!(got[i] == expected[i])) __builtin_trap();
  if (segmented.resyncs() != whole.resyncs()) __builtin_trap();
  if (segmented.skipped_invalid() != whole.skipped_invalid())
    __builtin_trap();
  if (segmented.frames_emitted() != whole.frames_emitted()) __builtin_trap();
  if (segmented.buffered() != whole.buffered()) __builtin_trap();
  return 0;
}
