// Fuzz target: util::scan_journal — the single parsing routine behind
// Journal::open()'s crash recovery — over arbitrary bytes.
//
// Contract under test (util/journal.hpp): the scan is total (never
// crashes, never reads out of bounds), and obeys PREFIX-RECOVERY
// semantics.  The oracle re-frames every recovered record and checks
// that the re-encoded stream is byte-identical to the input's valid
// prefix — so the scan can neither invent, reorder, nor alter a record,
// and valid_bytes is exactly the bytes those records (plus the magic
// header) occupy.  A second pass checks idempotence: scanning the valid
// prefix alone must recover the same records with nothing truncated.
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "util/journal.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using pbl::util::encode_journal_record;
  using pbl::util::scan_journal;

  const std::span<const std::uint8_t> bytes(data, size);
  const auto scan = scan_journal(bytes);

  if (scan.valid_bytes > size) __builtin_trap();
  if (scan.truncated != (scan.valid_bytes != size)) __builtin_trap();
  if (scan.valid_bytes == 0 && !scan.records.empty()) __builtin_trap();

  // Oracle: re-encoding the recovered records must reproduce the valid
  // prefix byte for byte (after the 8-byte magic header).
  if (scan.valid_bytes > 0) {
    if (scan.valid_bytes < pbl::util::kJournalMagicSize) __builtin_trap();
    std::vector<std::uint8_t> rebuilt;
    for (const auto& rec : scan.records) {
      const auto frame = encode_journal_record(rec.type, rec.payload);
      rebuilt.insert(rebuilt.end(), frame.begin(), frame.end());
    }
    if (pbl::util::kJournalMagicSize + rebuilt.size() != scan.valid_bytes)
      __builtin_trap();
    if (!rebuilt.empty() &&
        std::memcmp(rebuilt.data(), data + pbl::util::kJournalMagicSize,
                    rebuilt.size()) != 0)
      __builtin_trap();

    // Idempotence: the valid prefix is itself a clean journal image.
    const auto again = scan_journal(bytes.first(scan.valid_bytes));
    if (again.truncated || again.valid_bytes != scan.valid_bytes ||
        again.records.size() != scan.records.size())
      __builtin_trap();
  }
  return 0;
}
