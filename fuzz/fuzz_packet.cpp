// Fuzz target: fec::deserialize over arbitrary byte strings.
//
// Contract under test (fec/packet.hpp): every input either throws
// std::invalid_argument or yields a Packet that (a) re-serialises to the
// exact input bytes and (b) satisfies the DATA/PARITY header invariants
// (0 < k <= n, index < n, DATA index < k, PARITY index >= k).  Any other
// exception escapes (crash), and oracle violations trap.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>

#include "fec/packet.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using pbl::fec::PacketType;
  try {
    const pbl::fec::Packet p = pbl::fec::deserialize({data, size});
    const auto again = pbl::fec::serialize(p);
    if (again.size() != size || !std::equal(again.begin(), again.end(), data))
      __builtin_trap();  // accepted input must round-trip byte-identically
    const auto& h = p.header;
    if (h.payload_len != p.payload.size()) __builtin_trap();
    if (h.type == PacketType::kData || h.type == PacketType::kParity) {
      if (h.k == 0 || h.k > h.n || h.index >= h.n) __builtin_trap();
      if (h.type == PacketType::kData && h.index >= h.k) __builtin_trap();
      if (h.type == PacketType::kParity && h.index < h.k) __builtin_trap();
    }
  } catch (const std::invalid_argument&) {
    // rejected input: the documented failure mode
  }
  return 0;
}
