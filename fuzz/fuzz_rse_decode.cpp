// Fuzz target: RseCode::decode over adversarial shard sets, plus an
// encode/decode round-trip oracle with a fuzzer-chosen erasure pattern.
//
// Part 1 feeds decode() shard sets with fuzzer-chosen counts, indices
// (possibly repeated or outside [0, n)) and lengths (possibly unequal):
// the contract is return-or-std::invalid_argument, never UB.  Part 2
// encodes real data, keeps a fuzzer-chosen valid subset of k shards, and
// traps unless decode reproduces every original data packet exactly.
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "fec/rse_code.hpp"

namespace {

// Deterministic byte source over the fuzzer input; yields 0 once
// exhausted so short inputs still define a full scenario.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  std::uint8_t next() { return pos_ < size_ ? data_[pos_++] : 0; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 4) return 0;
  ByteReader in(data, size);

  const std::size_t k = 1 + in.next() % 16;    // 1..16
  const std::size_t h = in.next() % 17;        // 0..16
  const std::size_t n = k + h;
  const std::size_t len = 1 + in.next() % 32;  // 1..32
  const pbl::fec::RseCode code(k, n);

  // --- Part 1: adversarial shard sets --------------------------------
  {
    const std::size_t count = in.next() % (n + 3);  // may be < k or > n
    std::vector<std::vector<std::uint8_t>> storage(count);
    std::vector<pbl::fec::Shard> shards;
    shards.reserve(count);
    for (std::size_t s = 0; s < count; ++s) {
      const std::size_t idx = in.next() % (n + 4);   // may be >= n
      const std::size_t slen = 1 + in.next() % 40;   // may differ from len
      storage[s].resize(slen);
      for (auto& b : storage[s]) b = in.next();
      shards.push_back({idx, storage[s]});
    }
    std::vector<std::vector<std::uint8_t>> out(
        k, std::vector<std::uint8_t>(len));
    std::vector<std::span<std::uint8_t>> views(out.begin(), out.end());
    try {
      code.decode(shards, views);
    } catch (const std::invalid_argument&) {
      // the documented failure mode for malformed shard sets
    }
  }

  // --- Part 2: round-trip with a fuzzer-chosen erasure pattern -------
  {
    std::vector<std::vector<std::uint8_t>> original(
        k, std::vector<std::uint8_t>(len));
    for (auto& pkt : original)
      for (auto& b : pkt) b = in.next();
    const std::vector<std::span<const std::uint8_t>> data_views(
        original.begin(), original.end());
    std::vector<std::vector<std::uint8_t>> parity(
        h, std::vector<std::uint8_t>(len));
    const std::vector<std::span<std::uint8_t>> parity_views(parity.begin(),
                                                            parity.end());
    code.encode(data_views, parity_views);

    // Survivors: keep indices by fuzzer bit, then pad with the lowest
    // unused indices until exactly k survive (always a valid pattern).
    std::vector<bool> keep(n, false);
    std::size_t kept = 0;
    for (std::size_t i = 0; i < n && kept < k; ++i)
      if (in.next() & 1) {
        keep[i] = true;
        ++kept;
      }
    for (std::size_t i = 0; i < n && kept < k; ++i)
      if (!keep[i]) {
        keep[i] = true;
        ++kept;
      }

    std::vector<pbl::fec::Shard> shards;
    shards.reserve(k);
    for (std::size_t i = 0; i < n; ++i) {
      if (!keep[i]) continue;
      shards.push_back(
          {i, i < k ? std::span<const std::uint8_t>(original[i])
                    : std::span<const std::uint8_t>(parity[i - k])});
    }
    std::vector<std::vector<std::uint8_t>> out(
        k, std::vector<std::uint8_t>(len));
    const std::vector<std::span<std::uint8_t>> out_views(out.begin(),
                                                         out.end());
    code.decode(shards, out_views);
    for (std::size_t i = 0; i < k; ++i)
      if (out[i] != original[i]) __builtin_trap();
  }
  return 0;
}
