// Fuzz target: loss::parse_trace (the pure core of load_trace) over
// arbitrary text.
//
// Contract under test (loss/trace_io.hpp): '0'/'1' map to trace slots,
// all whitespace is ignored, any other character throws
// std::runtime_error.  The oracle recounts digits independently and traps
// if the parsed trace disagrees.
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "loss/trace_io.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  try {
    const std::vector<bool> trace = pbl::loss::parse_trace(text);
    std::size_t zeros = 0;
    std::size_t ones = 0;
    for (const char c : text) {
      zeros += c == '0';
      ones += c == '1';
    }
    if (trace.size() != zeros + ones) __builtin_trap();
    std::size_t set = 0;
    for (const bool b : trace) set += b;
    if (set != ones) __builtin_trap();
  } catch (const std::runtime_error&) {
    // non-digit, non-whitespace character: the documented failure mode
  }
  return 0;
}
