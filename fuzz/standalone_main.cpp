// Standalone driver used when the toolchain has no libFuzzer (gcc):
// replays every corpus file or directory given on the command line through
// LLVMFuzzerTestOneInput.  Oracle violations inside a harness trap
// (__builtin_trap), so a clean exit means every input passed.  With no
// file arguments it exits 0, and libFuzzer-style "-flag" arguments are
// ignored, so the same ctest command line works in both modes.
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

bool run_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "standalone_main: cannot open " << path << "\n";
    return false;
  }
  const std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t ran = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!arg.empty() && arg[0] == '-') continue;  // libFuzzer flag: ignore
    const std::filesystem::path path(arg);
    if (std::filesystem::is_directory(path)) {
      for (const auto& entry : std::filesystem::directory_iterator(path)) {
        if (!entry.is_regular_file()) continue;
        if (!run_file(entry.path())) return 1;
        ++ran;
      }
    } else {
      if (!run_file(path)) return 1;
      ++ran;
    }
  }
  std::cout << "standalone_main: ran " << ran << " corpus input(s)\n";
  return 0;
}
