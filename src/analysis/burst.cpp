#include "analysis/burst.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "analysis/layered.hpp"

namespace pbl::analysis {

namespace {

/// Per-step transition matrix of the sampled two-state chain.
struct SampledChain {
  double p01, p11;  // P(loss | prev ok), P(loss | prev loss)
  double pi1;       // stationary loss probability
};

SampledChain sample_chain(double p, double mean_burst, double delta) {
  if (p <= 0.0 || p >= 1.0)
    throw std::invalid_argument("burst analysis: p in (0,1)");
  if (mean_burst <= 1.0)
    throw std::invalid_argument("burst analysis: mean_burst > 1");
  if (delta <= 0.0) throw std::invalid_argument("burst analysis: delta > 0");
  const double exit_rate = -std::log1p(-1.0 / mean_burst) / delta;
  const double enter_rate = exit_rate * p / (1.0 - p);
  const double sigma = enter_rate + exit_rate;
  const double pi1 = enter_rate / sigma;
  const double decay = std::exp(-sigma * delta);
  SampledChain c;
  c.pi1 = pi1;
  c.p01 = pi1 * (1.0 - decay);         // ok -> loss
  c.p11 = pi1 + (1.0 - pi1) * decay;   // loss -> loss
  return c;
}

}  // namespace

double q_rm_loss_burst(std::int64_t k, std::int64_t h, double p,
                       double mean_burst, double delta) {
  if (k < 1 || h < 0)
    throw std::invalid_argument("q_rm_loss_burst: k >= 1, h >= 0");
  const auto n = static_cast<std::size_t>(k + h);
  const SampledChain c = sample_chain(p, mean_burst, delta);

  // Forward DP over the n block slots: state = (losses so far, chain
  // state after the slot), with slot `target` forced to LOSS; accumulate
  // the probability that total losses exceed h.  Summed over the k data
  // positions and averaged.
  const auto nk = static_cast<std::size_t>(k);
  double q_sum = 0.0;
  std::vector<double> cur, nxt;
  for (std::size_t target = 0; target < nk; ++target) {
    // cur[j * 2 + s]: P(j losses in slots processed so far, chain in s).
    cur.assign((n + 1) * 2, 0.0);
    // The entries hold the chain state BEFORE the next slot; the chain
    // starts in stationarity, and each DP step consumes one slot.
    cur[0 * 2 + 0] = 1.0 - c.pi1;
    cur[0 * 2 + 1] = c.pi1;
    for (std::size_t slot = 0; slot < n; ++slot) {
      nxt.assign((n + 1) * 2, 0.0);
      for (std::size_t j = 0; j <= slot; ++j) {
        for (int s = 0; s < 2; ++s) {
          const double mass = cur[j * 2 + static_cast<std::size_t>(s)];
          if (mass == 0.0) continue;
          const double p_loss = s == 0 ? c.p01 : c.p11;
          if (slot == target) {
            // Forced loss at the target slot.
            nxt[(j + 1) * 2 + 1] += mass * p_loss;
          } else {
            nxt[(j + 1) * 2 + 1] += mass * p_loss;
            nxt[j * 2 + 0] += mass * (1.0 - p_loss);
          }
        }
      }
      cur.swap(nxt);
    }
    // q contribution: total losses (including the forced one) > h.
    double exceeding = 0.0;
    for (std::size_t j = static_cast<std::size_t>(h) + 1; j <= n; ++j)
      exceeding += cur[j * 2 + 0] + cur[j * 2 + 1];
    q_sum += exceeding;
  }
  return q_sum / static_cast<double>(k);
}

double expected_tx_layered_burst(std::int64_t k, std::int64_t h, double p,
                                 double mean_burst, double receivers,
                                 const protocol::Timing& timing) {
  timing.validate();
  const double q = q_rm_loss_burst(k, h, p, mean_burst, timing.delta);
  return static_cast<double>(k + h) / static_cast<double>(k) *
         expected_tx_arq(q, receivers);
}

double expected_tx_nofec_burst(double p, double receivers) {
  return expected_tx_nofec(p, receivers);
}

}  // namespace pbl::analysis
