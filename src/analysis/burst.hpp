// Semi-analytic layered-FEC performance under BURST loss — an extension
// the paper handles only by simulation (Fig. 15).
//
// Sampling the two-state Markov chain at the packet spacing delta gives a
// discrete hidden-Markov loss sequence; the number of losses inside an
// n-slot FEC block is then computable exactly by dynamic programming over
// (slot, losses-so-far, chain state).  That yields the burst-aware
// residual loss probability
//
//   q_burst = (1/k) Σ_i P(slot i lost AND > h-1 other slots lost),
//
// the drop-in replacement for Eq. (2).  Plugging it into the Eq. (3)
// machinery — valid when the inter-round gap T is long enough to
// decorrelate successive blocks, which holds for the paper's T = 300 ms
// against 2-packet bursts at 40 ms spacing — produces the Fig. 15 curves
// without Monte-Carlo noise.
#pragma once

#include <cstdint>

#include "protocol/timing.hpp"

namespace pbl::analysis {

/// P(a data slot's packet is not recoverable by the FEC layer) for a
/// (k, k+h) block transmitted at `delta` spacing over a Gilbert channel
/// with stationary loss p and mean burst length `mean_burst` (packets at
/// `delta` spacing).  Averaged over the k data-slot positions.
double q_rm_loss_burst(std::int64_t k, std::int64_t h, double p,
                       double mean_burst, double delta);

/// Layered-FEC E[M] under burst loss: Eq. (3) with q_burst, assuming
/// successive blocks are decorrelated by the feedback gap (requires
/// timing.gap >> burst duration to be accurate).
double expected_tx_layered_burst(std::int64_t k, std::int64_t h, double p,
                                 double mean_burst, double receivers,
                                 const protocol::Timing& timing);

/// No-FEC baseline under burst loss.  Retransmissions of a packet are
/// spaced >= delta + T apart, so per-trial losses are effectively
/// independent with probability p: identical to expected_tx_nofec, kept
/// as a named function for symmetry and to document the reasoning.
double expected_tx_nofec_burst(double p, double receivers);

}  // namespace pbl::analysis
