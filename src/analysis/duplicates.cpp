#include "analysis/duplicates.hpp"

#include <stdexcept>

#include "analysis/integrated.hpp"
#include "analysis/layered.hpp"

namespace pbl::analysis {

double expected_duplicates_arq(std::int64_t k, double p, double receivers) {
  if (k < 1) throw std::invalid_argument("duplicates: k >= 1");
  if (p < 0.0 || p >= 1.0) throw std::invalid_argument("duplicates: p in [0,1)");
  if (receivers < 1.0)
    throw std::invalid_argument("duplicates: receivers >= 1");
  const double em = expected_tx_nofec(p, receivers);   // group max
  const double em_r = p == 0.0 ? 1.0 : 1.0 / (1.0 - p);  // one receiver
  return (1.0 - p) * static_cast<double>(k) * (em - em_r);
}

double expected_duplicates_integrated(std::int64_t k, double p,
                                      double receivers) {
  if (k < 1) throw std::invalid_argument("duplicates: k >= 1");
  if (p < 0.0 || p >= 1.0) throw std::invalid_argument("duplicates: p in [0,1)");
  if (receivers < 1.0)
    throw std::invalid_argument("duplicates: receivers >= 1");
  if (p == 0.0) return 0.0;
  const double el = expected_max_extra(k, 0, p, receivers);      // group max
  const double el_r = static_cast<double>(k) * p / (1.0 - p);    // one receiver
  return (1.0 - p) * (el - el_r);
}

}  // namespace pbl::analysis
