// Unnecessary-reception models (paper Section 2.1, third benefit:
// "Reduction of unnecessary receptions").
//
// Every multicast repair is heard by all receivers; a reception is
// unnecessary for receiver r when r did not need that packet.  For plain
// ARQ the sender retransmits k (E[M] - 1) originals per TG while receiver
// r only needs k (E[Mr] - 1) of them; for integrated FEC the sender sends
// E[L] repair parities while r can use only Lr of them.  In both cases a
// reception happens with probability (1 - p):
//
//   ARQ:        E[dups/receiver/TG] = (1-p) * k * (E[M]  - E[Mr])
//   integrated: E[dups/receiver/TG] = (1-p) * (E[L] - E[Lr])
//
// The integrated scheme's E[L] - E[Lr] is dramatically smaller than the
// ARQ gap — that is the claim these models quantify and that the DES
// protocols (NpSession vs ArqSession) measure.
#pragma once

#include <cstdint>

namespace pbl::analysis {

/// Expected unnecessary receptions per receiver per TG for ARQ multicast
/// retransmission of originals.
double expected_duplicates_arq(std::int64_t k, double p, double receivers);

/// Expected unnecessary receptions per receiver per TG for idealised
/// integrated FEC (parity repair, n = infinity).
double expected_duplicates_integrated(std::int64_t k, double p,
                                      double receivers);

}  // namespace pbl::analysis
