#include "analysis/heterogeneous.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "analysis/integrated.hpp"
#include "analysis/qfunc.hpp"
#include "util/numerics.hpp"

namespace pbl::analysis {

Population two_class_population(double receivers, double alpha, double p_low,
                                double p_high) {
  if (alpha < 0.0 || alpha > 1.0)
    throw std::invalid_argument("two_class_population: alpha in [0,1]");
  Population pop;
  const double high = receivers * alpha;
  const double low = receivers - high;
  if (low > 0.0) pop.push_back({p_low, low});
  if (high > 0.0) pop.push_back({p_high, high});
  return pop;
}

namespace {
void check_population(const Population& pop) {
  if (pop.empty()) throw std::invalid_argument("population must be non-empty");
  for (const auto& c : pop) {
    if (c.loss_prob < 0.0 || c.loss_prob >= 1.0)
      throw std::invalid_argument("population: loss_prob in [0,1)");
    if (c.count <= 0.0)
      throw std::invalid_argument("population: class count must be > 0");
  }
}
}  // namespace

double expected_tx_layered_hetero(std::int64_t k, std::int64_t n,
                                  const Population& pop) {
  check_population(pop);
  std::vector<double> logq(pop.size());
  bool all_zero = true;
  for (std::size_t c = 0; c < pop.size(); ++c) {
    const double q = q_rm_loss(k, n, pop[c].loss_prob);
    logq[c] = q > 0.0 ? std::log(q) : -std::numeric_limits<double>::infinity();
    all_zero = all_zero && q == 0.0;
  }
  const double overhead = static_cast<double>(n) / static_cast<double>(k);
  if (all_zero) return overhead;
  // Term i: 1 - prod_c (1 - q_c^i)^{count_c}, all in log space.
  const double em = sum_until_negligible([&](std::int64_t i) {
    double log_prod = 0.0;
    for (std::size_t c = 0; c < pop.size(); ++c) {
      if (!std::isfinite(logq[c])) continue;  // q == 0: factor is 1
      const double qi = std::exp(static_cast<double>(i) * logq[c]);
      if (qi >= 1.0) return 1.0;  // i == 0
      log_prod += pop[c].count * std::log1p(-qi);
    }
    return -std::expm1(log_prod);
  });
  return overhead * em;
}

double expected_tx_nofec_hetero(const Population& pop) {
  return expected_tx_layered_hetero(1, 1, pop);
}

double expected_tx_integrated_hetero(std::int64_t k, std::int64_t a,
                                     const Population& pop) {
  check_population(pop);
  if (k < 1 || a < 0)
    throw std::invalid_argument("integrated_hetero: need k >= 1, a >= 0");
  // E[L] = sum_{m>=0} (1 - prod_c P(Lr <= m | p_c)^{count_c}).  See
  // expected_max_extra() for why the pmf-based stopping rule is needed in
  // addition to the negligible-term test.
  std::vector<double> cdf(pop.size(), 0.0);
  double el = 0.0;
  for (std::int64_t m = 0; m < 100000000; ++m) {
    double log_prod = 0.0;
    double weighted_pmf = 0.0;
    bool zero_cdf = false;
    for (std::size_t c = 0; c < pop.size(); ++c) {
      const double pmf = lr_pmf(k, a, pop[c].loss_prob, m);
      weighted_pmf += pop[c].count * pmf;
      cdf[c] += pmf;
      if (cdf[c] > 1.0) cdf[c] = 1.0;
      if (cdf[c] <= 0.0) {
        zero_cdf = true;
        continue;
      }
      log_prod += pop[c].count * std::log(cdf[c]);
    }
    const double term = zero_cdf ? 1.0 : -std::expm1(log_prod);
    el += term;
    if (m >= 2 && !zero_cdf && term < 1e-14 * (1.0 + el)) break;
    if (m >= 2 && weighted_pmf < 1e-10) break;
  }
  return (el + static_cast<double>(k + a)) / static_cast<double>(k);
}

}  // namespace pbl::analysis
