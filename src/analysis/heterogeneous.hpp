// Heterogeneous receiver populations (paper Section 3.3, Eqs. (7)-(8)).
//
// Receivers are grouped into classes with a per-class loss probability and
// population count; losses remain spatially and temporally independent.
// The paper's experiment uses two classes: a fraction alpha of "high loss"
// receivers at p = 0.25 among receivers at p = 0.01.
#pragma once

#include <cstdint>
#include <vector>

namespace pbl::analysis {

struct ReceiverClass {
  double loss_prob = 0.0;  ///< p(r) for every receiver in the class
  double count = 0.0;      ///< number of receivers (real-valued for sweeps)
};

using Population = std::vector<ReceiverClass>;

/// Convenience: the paper's two-class population with R receivers of which
/// a fraction `alpha` loses at `p_high` and the rest at `p_low`.
Population two_class_population(double receivers, double alpha, double p_low,
                                double p_high);

/// Eq. (7): layered FEC with per-receiver loss probabilities.
///   E[M] = (n/k) sum_{i>=0} (1 - prod_r (1 - q(k,n,p(r))^i))
double expected_tx_layered_hetero(std::int64_t k, std::int64_t n,
                                  const Population& pop);

/// No-FEC baseline for a heterogeneous population (k = n = 1 in Eq. (7)).
double expected_tx_nofec_hetero(const Population& pop);

/// Eq. (8) + Eq. (6): idealized integrated FEC with per-receiver loss.
///   P(L <= m) = prod_r P(Lr <= m),  E[M] = (E[L] + k + a)/k
double expected_tx_integrated_hetero(std::int64_t k, std::int64_t a,
                                     const Population& pop);

}  // namespace pbl::analysis
