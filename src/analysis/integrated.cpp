#include "analysis/integrated.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "analysis/qfunc.hpp"
#include "util/numerics.hpp"

namespace pbl::analysis {

namespace {
void check_args(std::int64_t k, std::int64_t a, double p, double receivers) {
  if (k < 1) throw std::invalid_argument("integrated: need k >= 1");
  if (a < 0) throw std::invalid_argument("integrated: need a >= 0");
  if (p < 0.0 || p >= 1.0)
    throw std::invalid_argument("integrated: need p in [0,1)");
  if (receivers < 1.0)
    throw std::invalid_argument("integrated: need receivers >= 1");
}
}  // namespace

double lr_pmf(std::int64_t k, std::int64_t a, double p, std::int64_t m) {
  return neg_binomial_extra_pmf(k, a, m, p);
}

double lr_cdf(std::int64_t k, std::int64_t a, double p, std::int64_t m) {
  if (m < 0) return 0.0;
  double sum = 0.0;
  for (std::int64_t i = 0; i <= m; ++i) sum += lr_pmf(k, a, p, i);
  return sum < 1.0 ? sum : 1.0;
}

double expected_max_extra(std::int64_t k, std::int64_t a, double p,
                          double receivers) {
  check_args(k, a, p, receivers);
  if (p == 0.0) return 0.0;
  // E[L] = sum_{m>=0} (1 - P(Lr <= m)^R), accumulating the cdf
  // incrementally.  Two stopping rules are needed: the usual
  // negligible-term test, plus a pmf-based one — once the pmf underflows
  // relative to the cdf, 1 - cdf freezes at rounding noise (~1e-16) while
  // the TRUE tail keeps decaying geometrically, so the term test alone
  // would never fire for large R.  The negative-binomial tail satisfies
  // P(Lr > m) <= pmf(m) * p/(1-p) * C, so receivers * pmf bounds the
  // remaining contribution.
  double cdf = 0.0;
  double sum = 0.0;
  for (std::int64_t m = 0; m < 100000000; ++m) {
    const double pmf = lr_pmf(k, a, p, m);
    cdf += pmf;
    if (cdf > 1.0) cdf = 1.0;
    const double term = one_minus_pow_one_minus(1.0 - cdf, receivers);
    sum += term;
    if (m >= 2 && term < 1e-14 * (1.0 + sum)) break;
    if (m >= 2 && receivers * pmf < 1e-10) break;
  }
  return sum;
}

double expected_tx_integrated_ideal(std::int64_t k, std::int64_t a, double p,
                                    double receivers) {
  check_args(k, a, p, receivers);
  const double el = expected_max_extra(k, a, p, receivers);
  return (el + static_cast<double>(k + a)) / static_cast<double>(k);
}

double expected_tx_integrated(std::int64_t k, std::int64_t h, std::int64_t a,
                              double p, double receivers) {
  check_args(k, a, p, receivers);
  if (h < a) throw std::invalid_argument("integrated: need h >= a");
  const std::int64_t n = k + h;
  if (p == 0.0) return static_cast<double>(k + a) / static_cast<double>(k);

  // Per-packet probability of needing another block, Eq. (2).
  const double q = q_rm_loss(k, n, p);
  double blocks_minus_one = 0.0;
  if (q > 0.0) {
    const double logq = std::log(q);
    blocks_minus_one = sum_until_negligible([&](std::int64_t i) {
      const double qi = std::exp(static_cast<double>(i) * logq);
      return one_minus_pow_one_minus(qi, receivers);
    }, /*i0=*/1);
  }

  // E[Lp | Lp <= h - a] for the final (successful) block.
  const std::int64_t budget = h - a;
  std::vector<double> cdf_l(static_cast<std::size_t>(budget) + 1);
  {
    double c = 0.0;
    for (std::int64_t m = 0; m <= budget; ++m) {
      c += lr_pmf(k, a, p, m);
      cdf_l[static_cast<std::size_t>(m)] = c < 1.0 ? c : 1.0;
    }
  }
  // P(Lp <= m) = cdf^R, in log space; the conditional cdf divides out the
  // common factor, so work with log P directly to survive R = 10^6.
  const double log_p_success =
      cdf_l.back() > 0.0 ? receivers * std::log(cdf_l.back())
                         : -std::numeric_limits<double>::infinity();
  double cond_extra = 0.0;
  if (std::isfinite(log_p_success)) {
    for (std::int64_t m = 0; m < budget; ++m) {
      const double c = cdf_l[static_cast<std::size_t>(m)];
      if (c <= 0.0) {
        cond_extra += 1.0;
        continue;
      }
      const double log_p_le_m = receivers * std::log(c);
      cond_extra += -std::expm1(log_p_le_m - log_p_success);
    }
  }

  const double kd = static_cast<double>(k);
  return (static_cast<double>(n) / kd) * blocks_minus_one +
         static_cast<double>(k + a) / kd + cond_extra / kd;
}

}  // namespace pbl::analysis
