// Closed-form models for integrated FEC / hybrid ARQ
// (paper Section 3.2, Eqs. (4)-(6) and the finite-parity variant).
#pragma once

#include <cstdint>

namespace pbl::analysis {

/// P(Lr = m): a single receiver needs exactly m parity packets beyond the
/// initial k + a transmissions to collect k packets of the block, with
/// per-packet loss probability p (Section 3.2).
double lr_pmf(std::int64_t k, std::int64_t a, double p, std::int64_t m);

/// P(Lr <= m).
double lr_cdf(std::int64_t k, std::int64_t a, double p, std::int64_t m);

/// E[L] where L = max over `receivers` i.i.d. copies of Lr (Eqs. (4)-(5)).
double expected_max_extra(std::int64_t k, std::int64_t a, double p,
                          double receivers);

/// Idealised integrated FEC (n = infinity), Eq. (6):
///   E[M] = (E[L] + k + a) / k
/// The unachievable lower bound the paper compares everything against.
double expected_tx_integrated_ideal(std::int64_t k, std::int64_t a, double p,
                                    double receivers);

/// Integrated FEC with a finite parity budget h = n - k (Fig. 6).
///
/// A block whose receivers need more than h - a extra parities fails and
/// its packets join a new TG, so the per-packet retry probability is
/// q(k, n, p) of Eq. (2).  We implement
///
///   E[M] = (n/k) (E[B] - 1) + (k + a)/k + E[Lp | Lp <= h - a]/k
///
/// where E[B] - 1 = sum_{i>=1} (1 - (1 - q^i)^R).  This corrects two typos
/// in the printed equation (division by n; the k data packets of the final
/// block dropped) — see DESIGN.md; the corrected form reduces to Eq. (6)
/// as h -> infinity and reproduces Fig. 6.
double expected_tx_integrated(std::int64_t k, std::int64_t h, std::int64_t a,
                              double p, double receivers);

}  // namespace pbl::analysis
