#include "analysis/latency.hpp"

#include <cmath>
#include <stdexcept>

#include "analysis/integrated.hpp"
#include "analysis/layered.hpp"
#include "analysis/processing.hpp"
#include "analysis/qfunc.hpp"
#include "util/numerics.hpp"

namespace pbl::analysis {

namespace {

/// E[rounds] until all receivers hold all k packets when each packet is
/// (re)transmitted once per round and lost with probability q:
/// P[rounds <= m] = (1 - q^m)^(kR) — Eq. (17) generalised to q.
double rounds_with_loss(std::int64_t k, double q, double receivers) {
  if (q <= 0.0) return 1.0;
  const double kr = static_cast<double>(k) * receivers;
  return sum_until_negligible([&](std::int64_t m) {
    if (m == 0) return 1.0;
    const double qm = std::pow(q, static_cast<double>(m));
    return one_minus_pow_one_minus(qm, kr);
  });
}

void check(double p, double receivers, const protocol::Timing& timing) {
  if (p < 0.0 || p >= 1.0)
    throw std::invalid_argument("latency: need p in [0,1)");
  if (receivers < 1.0)
    throw std::invalid_argument("latency: need receivers >= 1");
  timing.validate();
}

}  // namespace

double expected_latency_nofec(std::int64_t k, double p, double receivers,
                              const protocol::Timing& timing) {
  check(p, receivers, timing);
  const double slots = static_cast<double>(k) * expected_tx_nofec(p, receivers);
  const double rounds = rounds_with_loss(k, p, receivers);
  return timing.delta * slots + timing.gap * (rounds - 1.0);
}

double expected_latency_layered(std::int64_t k, std::int64_t h, double p,
                                double receivers,
                                const protocol::Timing& timing) {
  check(p, receivers, timing);
  const double q = q_rm_loss(k, k + h, p);
  const double rounds = rounds_with_loss(k, q, receivers);
  // Every round occupies a full FEC block of k + h slots.
  const double slots = static_cast<double>(k + h) * rounds;
  return timing.delta * slots + timing.gap * (rounds - 1.0);
}

double expected_latency_integrated(std::int64_t k, double p, double receivers,
                                   const protocol::Timing& timing) {
  check(p, receivers, timing);
  const double slots =
      static_cast<double>(k) * expected_tx_integrated_ideal(k, 0, p, receivers);
  const double rounds = expected_rounds(k, p, receivers);
  return timing.delta * slots + timing.gap * (rounds - 1.0);
}

double expected_latency_stream(std::int64_t k, double p, double receivers,
                               const protocol::Timing& timing) {
  check(p, receivers, timing);
  const double slots =
      static_cast<double>(k) * expected_tx_integrated_ideal(k, 0, p, receivers);
  return timing.delta * slots;
}

}  // namespace pbl::analysis
