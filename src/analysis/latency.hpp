// Delivery-latency models for the four recovery schemes under the Fig. 13
// timing (packets delta apart, rounds separated by a feedback gap T).
//
// The paper defers latency ("we expect a reduction in the required number
// of transmissions will often lead to a reduction in latency", Section 3);
// this module makes that expectation quantitative.  The models combine
// the transmission counts of Eqs. (3)-(6) with the round counts of
// Eq. (17):
//
//   E[time] ~ delta * (packet slots sent) + T * (rounds - 1)
//
// They are first-order approximations with an upper-bound character
// inherited from Eq. (17) (the paper itself notes that equation gives "an
// upper bound on the expected number of transmission rounds").  The test
// suite checks that each model covers the Monte-Carlo simulators'
// measured completion times without overshooting by more than ~45%, is
// tight for the round-free stream scheme, and is exact at p = 0.
#pragma once

#include <cstdint>

#include "protocol/timing.hpp"

namespace pbl::analysis {

/// Plain ARQ: k E[M] packet slots over E[rounds] rounds, where the round
/// count is Eq. (17)'s E[T] with per-packet loss p.
double expected_latency_nofec(std::int64_t k, double p, double receivers,
                              const protocol::Timing& timing);

/// Layered FEC: every round retransmits inside a full (k+h)-slot block.
double expected_latency_layered(std::int64_t k, std::int64_t h, double p,
                                double receivers,
                                const protocol::Timing& timing);

/// Integrated FEC 2 (NAK-driven parity rounds): k E[M] slots over E[T]
/// rounds (Eq. 17).
double expected_latency_integrated(std::int64_t k, double p, double receivers,
                                   const protocol::Timing& timing);

/// Integrated FEC 1 (continuous parity stream, no feedback): k E[M]
/// back-to-back slots — the latency-optimal scheme.
double expected_latency_stream(std::int64_t k, double p, double receivers,
                               const protocol::Timing& timing);

}  // namespace pbl::analysis
