#include "analysis/layered.hpp"

#include <cmath>
#include <stdexcept>

#include "analysis/qfunc.hpp"
#include "util/numerics.hpp"

namespace pbl::analysis {

double expected_tx_arq(double q, double receivers) {
  if (q < 0.0 || q >= 1.0)
    throw std::invalid_argument("expected_tx_arq: need q in [0,1)");
  if (receivers < 1.0)
    throw std::invalid_argument("expected_tx_arq: need receivers >= 1");
  if (q == 0.0) return 1.0;
  // Term i: 1 - (1 - q^i)^R, evaluated in log space; q^i as exp(i log q).
  const double logq = std::log(q);
  return sum_until_negligible([&](std::int64_t i) {
    const double qi = std::exp(static_cast<double>(i) * logq);
    return one_minus_pow_one_minus(qi, receivers);
  });
}

double expected_tx_nofec(double p, double receivers) {
  return expected_tx_arq(p, receivers);
}

double expected_tx_layered(std::int64_t k, std::int64_t n, double p,
                           double receivers) {
  const double q = q_rm_loss(k, n, p);
  return static_cast<double>(n) / static_cast<double>(k) *
         expected_tx_arq(q, receivers);
}

}  // namespace pbl::analysis
