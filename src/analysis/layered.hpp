// Closed-form models for ARQ without FEC and for layered FEC
// (paper Section 3.1, Eq. (3)).
#pragma once

#include <cstdint>

namespace pbl::analysis {

/// E[M'] — expected number of RM-layer transmissions of an arbitrary
/// packet until ALL R receivers hold it, when each receiver independently
/// misses a transmission with probability q:
///
///   E[M'] = sum_{i>=0} (1 - (1 - q^i)^R)
///
/// R may be any positive real (the paper sweeps R = 1..10^6).
double expected_tx_arq(double q, double receivers);

/// No-FEC baseline: E[M] with per-transmission loss probability p.
double expected_tx_nofec(double p, double receivers);

/// Layered FEC, Eq. (3): E[M] = (n/k) * E[M'] with q = q(k, n, p).
/// Every RM-layer transmission costs n/k packets because the FEC layer
/// adds h parities per k packets, for original sends and retransmissions
/// alike.
double expected_tx_layered(std::int64_t k, std::int64_t n, double p,
                           double receivers);

}  // namespace pbl::analysis
