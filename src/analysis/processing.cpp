#include "analysis/processing.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "analysis/integrated.hpp"
#include "analysis/layered.hpp"
#include "util/numerics.hpp"

namespace pbl::analysis {

namespace {
void check(double p, double receivers) {
  if (p < 0.0 || p >= 1.0) throw std::invalid_argument("rates: need p in [0,1)");
  if (receivers < 1.0) throw std::invalid_argument("rates: need receivers >= 1");
}
}  // namespace

EndHostRates n2_rates(double p, double receivers, const ProcessingCosts& c) {
  check(p, receivers);
  const double em = expected_tx_nofec(p, receivers);  // E[M^N2]

  // Eq. (10): per-packet sender time.
  const double x = em * c.xp + (em - 1.0) * c.xn;

  // Per-receiver retransmission count Mr is geometric:
  //   P(Mr = m) = p^(m-1) (1-p),  E[Mr] = 1/(1-p).
  const double e_mr = 1.0 / (1.0 - p);
  const double p_mr_gt2 = p * p;
  const double p1 = 1.0 - p;          // P(Mr = 1)
  const double p2 = p * (1.0 - p);    // P(Mr = 2)
  const double e_mr_gt2 =
      p_mr_gt2 > 0.0 ? (e_mr - p1 - 2.0 * p2) / p_mr_gt2 : 0.0;

  // Eq. (11): per-packet receiver time.
  const double y = em * (1.0 - p) * c.yp +
                   (em - 1.0) * (c.yn / receivers +
                                 (receivers - 1.0) / receivers * c.yn2) +
                   (p_mr_gt2 > 0.0
                        ? p_mr_gt2 * (e_mr_gt2 - 2.0) * c.yt
                        : 0.0);

  EndHostRates r;
  r.sender = 1.0 / x;
  r.receiver = 1.0 / y;
  r.throughput = std::min(r.sender, r.receiver);
  return r;
}

double expected_rounds_single(std::int64_t k, double p) {
  if (k < 1) throw std::invalid_argument("expected_rounds: need k >= 1");
  if (p <= 0.0) return 1.0;
  // P[Tr <= m] = (1 - p^m)^k  (from [19]).
  return sum_until_negligible([&](std::int64_t m) {
    if (m == 0) return 1.0;
    const double pm = std::pow(p, static_cast<double>(m));
    return one_minus_pow_one_minus(pm, static_cast<double>(k));
  });
}

double expected_rounds(std::int64_t k, double p, double receivers) {
  if (k < 1) throw std::invalid_argument("expected_rounds: need k >= 1");
  check(p, receivers);
  if (p == 0.0) return 1.0;
  // P[T <= m] = P[Tr <= m]^R = (1 - p^m)^(kR).
  const double kr = static_cast<double>(k) * receivers;
  return sum_until_negligible([&](std::int64_t m) {
    if (m == 0) return 1.0;
    const double pm = std::pow(p, static_cast<double>(m));
    return one_minus_pow_one_minus(pm, kr);
  });
}

EndHostRates np_rates_per_packet_nak(std::int64_t k, double p,
                                     double receivers,
                                     const ProcessingCosts& c,
                                     bool pre_encode) {
  if (k < 1) throw std::invalid_argument("np_rates: need k >= 1");
  check(p, receivers);
  const double kd = static_cast<double>(k);
  const double em = expected_tx_integrated_ideal(k, 0, p, receivers);
  const double xe = pre_encode ? 0.0 : kd * (em - 1.0) * c.ce;
  const double yd = kd * p * c.cd;
  // k (E[M]-1) NAKs per TG => (E[M]-1) per packet, replacing (E[T]-1)/k.
  const double naks_per_packet = em - 1.0;
  const double x = xe + em * c.xp + naks_per_packet * c.xn;
  const double e_tr = expected_rounds_single(k, p);
  const double p_tr1 = pow_one_minus(p, kd);
  const double p_tr_le2 = pow_one_minus(p * p, kd);
  const double p_tr2 = p_tr_le2 - p_tr1;
  const double p_tr_gt2 = 1.0 - p_tr_le2;
  const double e_tr_gt2 =
      p_tr_gt2 > 0.0 ? (e_tr - p_tr1 - 2.0 * p_tr2) / p_tr_gt2 : 0.0;
  const double y = em * (1.0 - p) * c.yp +
                   naks_per_packet * (c.yn / receivers +
                                      (receivers - 1.0) / receivers * c.yn2) +
                   (p_tr_gt2 > 0.0 ? p_tr_gt2 * (e_tr_gt2 - 2.0) * c.yt
                                   : 0.0) +
                   yd;
  EndHostRates r;
  r.sender = 1.0 / x;
  r.receiver = 1.0 / y;
  r.throughput = std::min(r.sender, r.receiver);
  return r;
}

EndHostRates np_rates(std::int64_t k, double p, double receivers,
                      const ProcessingCosts& c, bool pre_encode) {
  if (k < 1) throw std::invalid_argument("np_rates: need k >= 1");
  check(p, receivers);
  const double kd = static_cast<double>(k);

  const double em = expected_tx_integrated_ideal(k, 0, p, receivers);
  const double et = expected_rounds(k, p, receivers);

  // Eq. (15): the sender encodes k (E[M]-1) parities per TG, i.e. per
  // packet an encoding time of k (E[M]-1) ce / k ... the paper states the
  // per-packet form E[Xe] = k (E[M]-1) ce directly.
  const double xe = pre_encode ? 0.0 : kd * (em - 1.0) * c.ce;
  // Eq. (16): a receiver reconstructs k p packets per TG on average.
  const double yd = kd * p * c.cd;

  // Eq. (13).
  const double x = xe + em * c.xp + (et - 1.0) / kd * c.xn;

  // Per-receiver round count Tr: P[Tr <= m] = (1 - p^m)^k.
  const double e_tr = expected_rounds_single(k, p);
  const double p_tr1 = pow_one_minus(p, kd);                       // (1-p)^k
  const double p_tr_le2 = pow_one_minus(p * p, kd);                // (1-p^2)^k
  const double p_tr2 = p_tr_le2 - p_tr1;
  const double p_tr_gt2 = 1.0 - p_tr_le2;
  const double e_tr_gt2 =
      p_tr_gt2 > 0.0 ? (e_tr - p_tr1 - 2.0 * p_tr2) / p_tr_gt2 : 0.0;

  // Eq. (14).
  const double y = em * (1.0 - p) * c.yp +
                   ((et - 1.0) / kd) * (c.yn / receivers +
                                        (receivers - 1.0) / receivers * c.yn2) +
                   (p_tr_gt2 > 0.0
                        ? p_tr_gt2 * (e_tr_gt2 - 2.0) * c.yt
                        : 0.0) +
                   yd;

  EndHostRates r;
  r.sender = 1.0 / x;
  r.receiver = 1.0 / y;
  r.throughput = std::min(r.sender, r.receiver);
  return r;
}

}  // namespace pbl::analysis
