// End-host processing-rate and throughput models for protocols N2 and NP
// (paper Section 5 and Appendix, Eqs. (9)-(17)).
//
// N2 is the receiver-initiated, NAK-based ARQ protocol of Towsley, Kurose
// & Pingali ('97); NP is the paper's hybrid-ARQ protocol that retransmits
// parities and collects one NAK per transmission round.  The models count
// per-packet processing time at the sender and at a receiver; achievable
// end-system throughput is the minimum of the two rates (Eq. (9)).
#pragma once

#include <cstdint>

namespace pbl::analysis {

/// Per-operation processing times in seconds.  Defaults are the paper's
/// measured values (DECstation 5000/200, 2 KByte packets, symbol size 8).
struct ProcessingCosts {
  double xp = 1000e-6;  ///< E[Xp]: send one data/parity packet
  double yp = 1000e-6;  ///< E[Yp]: receive one data/parity packet
  double xn = 500e-6;   ///< E[Xn]: process a NAK at the sender
  double yn = 500e-6;   ///< E[Yn]: process and transmit a NAK (receiver)
  double yn2 = 500e-6;  ///< E[Y'n]: receive and process another's NAK
  double xt = 24e-6;    ///< E[Xt]: timer overhead at the sender
  double yt = 24e-6;    ///< E[Yt]: timer overhead at a receiver
  double ce = 700e-6;   ///< encoding constant per packet (Eq. (15))
  double cd = 720e-6;   ///< decoding constant per packet (Eq. (16))
};

struct EndHostRates {
  double sender = 0.0;      ///< packets/second the sender can sustain
  double receiver = 0.0;    ///< packets/second a receiver can sustain
  double throughput = 0.0;  ///< min of the two (Eq. (9))
};

/// Protocol N2, Eqs. (10)-(11).
EndHostRates n2_rates(double p, double receivers,
                      const ProcessingCosts& costs = {});

/// Protocol NP, Eqs. (13)-(16).  With `pre_encode` the sender's encoding
/// time E[Xe] is removed from the critical path (parities computed
/// off-line, Section 5.1 / Fig. 18).
EndHostRates np_rates(std::int64_t k, double p, double receivers,
                      const ProcessingCosts& costs = {},
                      bool pre_encode = false);

/// Appendix variant: feedback per MISSING PACKET instead of one NAK per
/// transmission round ("By slightly modifying Eq. (13) and (14) we
/// obtained the processing rates for the case one NAK is returned per
/// missing packet").  The NAK terms scale with k(E[M]-1) per TG; the
/// paper reports — and the tests verify — that the effect on the rates
/// is minor, which is why NP's per-round feedback is not what makes it
/// fast (the parity repair is).
EndHostRates np_rates_per_packet_nak(std::int64_t k, double p,
                                     double receivers,
                                     const ProcessingCosts& costs = {},
                                     bool pre_encode = false);

/// E[T]: expected number of transmission rounds until every receiver can
/// reconstruct the TG (Eq. (17), with P[Tr <= m] = (1 - p^m)^k from [19]).
double expected_rounds(std::int64_t k, double p, double receivers);

/// E[Tr]: rounds for a single receiver.
double expected_rounds_single(std::int64_t k, double p);

}  // namespace pbl::analysis
