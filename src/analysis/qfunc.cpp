#include "analysis/qfunc.hpp"

#include <stdexcept>

#include "util/numerics.hpp"

namespace pbl::analysis {

double q_rm_loss(std::int64_t k, std::int64_t n, double p) {
  if (k < 1 || n < k) throw std::invalid_argument("q_rm_loss: need 1 <= k <= n");
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("q_rm_loss: p in [0,1]");
  // P[more than h-1 of the other n-1 packets lost] = 1 - CDF(h-1).
  const double cdf = binomial_cdf(n - 1, n - k - 1, p);
  double q = p * (1.0 - cdf);
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  return q;
}

}  // namespace pbl::analysis
