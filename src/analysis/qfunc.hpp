// Eq. (2) of the paper: the residual packet-loss probability seen by the
// reliable-multicast layer when a (k, n) FEC layer sits underneath.
#pragma once

#include <cstdint>

namespace pbl::analysis {

/// q(k, n, p): probability that a random data packet of a transmission
/// group is NOT delivered to the RM receiver.  Packet i is lost at the RM
/// layer iff it is lost by the FEC layer (prob p) and more than h-1 of the
/// other n-1 packets of the FEC block are also lost:
///
///   q = p * (1 - sum_{j=0}^{n-k-1} C(n-1, j) p^j (1-p)^(n-1-j))
///
/// Special cases: n == k (no parity) gives q = p; k = n = 1 is the no-FEC
/// baseline.
double q_rm_loss(std::int64_t k, std::int64_t n, double p);

}  // namespace pbl::analysis
