#include "core/file_transfer.hpp"

#include <cstring>
#include <stdexcept>

namespace pbl::core {

namespace {
constexpr std::size_t kLengthPrefix = 8;
}

std::vector<TgData> segment_blob(std::span<const std::uint8_t> blob,
                                 std::size_t k, std::size_t packet_len) {
  if (k == 0) throw std::invalid_argument("segment_blob: k >= 1");
  if (packet_len == 0) throw std::invalid_argument("segment_blob: packet_len >= 1");

  // Length prefix + payload, zero-padded to whole groups.
  std::vector<std::uint8_t> framed;
  framed.reserve(kLengthPrefix + blob.size());
  const std::uint64_t len = blob.size();
  for (int i = 0; i < 8; ++i)
    framed.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  framed.insert(framed.end(), blob.begin(), blob.end());

  const std::size_t group_bytes = k * packet_len;
  const std::size_t groups = (framed.size() + group_bytes - 1) / group_bytes;
  framed.resize(groups * group_bytes, 0);

  std::vector<TgData> out(groups);
  std::size_t off = 0;
  for (std::size_t g = 0; g < groups; ++g) {
    out[g].resize(k);
    for (std::size_t i = 0; i < k; ++i) {
      out[g][i].assign(framed.begin() + static_cast<std::ptrdiff_t>(off),
                       framed.begin() + static_cast<std::ptrdiff_t>(off + packet_len));
      off += packet_len;
    }
  }
  return out;
}

std::vector<std::uint8_t> reassemble_blob(const std::vector<TgData>& groups) {
  if (groups.empty())
    throw std::invalid_argument("reassemble_blob: no groups");
  const std::size_t k = groups[0].size();
  if (k == 0 || groups[0][0].empty())
    throw std::invalid_argument("reassemble_blob: empty group shape");
  const std::size_t packet_len = groups[0][0].size();

  std::vector<std::uint8_t> framed;
  framed.reserve(groups.size() * k * packet_len);
  for (const auto& tg : groups) {
    if (tg.size() != k)
      throw std::invalid_argument("reassemble_blob: inconsistent group size");
    for (const auto& pkt : tg) {
      if (pkt.size() != packet_len)
        throw std::invalid_argument("reassemble_blob: inconsistent packet size");
      framed.insert(framed.end(), pkt.begin(), pkt.end());
    }
  }
  if (framed.size() < kLengthPrefix)
    throw std::invalid_argument("reassemble_blob: truncated framing");
  std::uint64_t len = 0;
  for (int i = 0; i < 8; ++i)
    len |= static_cast<std::uint64_t>(framed[static_cast<std::size_t>(i)])
           << (8 * i);
  if (len > framed.size() - kLengthPrefix)
    throw std::invalid_argument("reassemble_blob: length prefix exceeds data");
  return {framed.begin() + kLengthPrefix,
          framed.begin() + static_cast<std::ptrdiff_t>(kLengthPrefix + len)};
}

TransferReport transfer_blob(std::span<const std::uint8_t> blob,
                             const loss::LossModel& loss,
                             std::size_t receivers,
                             const protocol::NpConfig& config,
                             std::uint64_t seed) {
  auto groups = segment_blob(blob, config.k, config.packet_len);

  TransferReport report;
  report.groups = groups.size();
  report.payload_bytes = blob.size();

  protocol::NpSession session(loss, receivers, groups, config, seed);
  report.protocol = session.run();
  report.wire_bytes =
      static_cast<std::size_t>(report.protocol.data_sent +
                               report.protocol.parity_sent +
                               report.protocol.proactive_sent) *
      config.packet_len;

  // Independent round-trip check of the framing itself.
  const auto rebuilt = reassemble_blob(session.source_data());
  report.blob_verified =
      rebuilt.size() == blob.size() &&
      std::memcmp(rebuilt.data(), blob.data(), blob.size()) == 0;
  return report;
}

}  // namespace pbl::core
