// Byte-blob segmentation for reliable multicast file transfer.
//
// Protocol NP (Section 5.1) moves transmission groups of k fixed-size
// packets; a file is neither.  segment_blob() frames an arbitrary byte
// buffer into TGs — an 8-byte little-endian length prefix, then the
// payload, zero-padded up to a whole number of groups — and
// reassemble_blob() inverts it exactly.  transfer_blob() runs the real
// protocol-NP session over the segmented file and reports whether every
// receiver reconstructed every byte.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "loss/loss_model.hpp"
#include "protocol/np_protocol.hpp"

namespace pbl::core {

using TgData = std::vector<std::vector<std::uint8_t>>;  ///< k packets

/// Frames `blob` into transmission groups of k packets of `packet_len`
/// bytes each.  Always produces at least one group.
std::vector<TgData> segment_blob(std::span<const std::uint8_t> blob,
                                 std::size_t k, std::size_t packet_len);

/// Exact inverse of segment_blob(); throws std::invalid_argument on
/// malformed framing (bad length prefix, inconsistent shapes).
std::vector<std::uint8_t> reassemble_blob(const std::vector<TgData>& groups);

struct TransferReport {
  protocol::NpStats protocol;   ///< the NP session's statistics
  bool blob_verified = false;   ///< segmentation round-trip re-checked
  std::size_t groups = 0;
  std::size_t payload_bytes = 0;
  std::size_t wire_bytes = 0;   ///< payload bytes actually multicast
};

/// Segments `blob` and delivers it to `receivers` receivers with protocol
/// NP under the given loss model.
TransferReport transfer_blob(std::span<const std::uint8_t> blob,
                             const loss::LossModel& loss,
                             std::size_t receivers,
                             const protocol::NpConfig& config,
                             std::uint64_t seed = 1);

}  // namespace pbl::core
