#include "core/planner.hpp"

#include <cmath>
#include <stdexcept>

#include "analysis/integrated.hpp"
#include "analysis/layered.hpp"
#include "util/numerics.hpp"

namespace pbl::core {

std::optional<std::int64_t> plan_layered_parities(std::int64_t k, double p,
                                                  double receivers,
                                                  double target_em,
                                                  std::int64_t h_max) {
  if (target_em < 1.0)
    throw std::invalid_argument("plan_layered_parities: target_em >= 1");
  for (std::int64_t h = 0; h <= h_max; ++h) {
    // Adding parities first helps, then the n/k overhead dominates; stop
    // as soon as the overhead alone rules the target out.
    const double overhead =
        static_cast<double>(k + h) / static_cast<double>(k);
    if (overhead > target_em) return std::nullopt;
    if (analysis::expected_tx_layered(k, k + h, p, receivers) <= target_em)
      return h;
  }
  return std::nullopt;
}

std::optional<std::int64_t> plan_proactive_parities(std::int64_t k, double p,
                                                    double receivers,
                                                    double confidence,
                                                    std::int64_t a_max) {
  if (confidence <= 0.0 || confidence >= 1.0)
    throw std::invalid_argument("plan_proactive_parities: confidence in (0,1)");
  for (std::int64_t a = 0; a <= a_max; ++a) {
    const double per_receiver = analysis::lr_cdf(k, a, p, 0);
    if (per_receiver <= 0.0) continue;
    const double all = std::exp(receivers * std::log(per_receiver));
    if (all >= confidence) return a;
  }
  return std::nullopt;
}

double equivalent_independent_receivers(double p, double measured_em,
                                        double r_max) {
  if (p <= 0.0 || p >= 1.0)
    throw std::invalid_argument("equivalent_independent_receivers: p in (0,1)");
  if (measured_em <= analysis::expected_tx_nofec(p, 1.0)) return 1.0;
  if (measured_em >= analysis::expected_tx_nofec(p, r_max)) return r_max;
  // E[M] is monotone increasing in R: bisect on log10(R).
  double lo = 0.0, hi = std::log10(r_max);
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double em = analysis::expected_tx_nofec(p, std::pow(10.0, mid));
    if (em < measured_em)
      lo = mid;
    else
      hi = mid;
    if (hi - lo < 1e-12) break;
  }
  return std::pow(10.0, 0.5 * (lo + hi));
}

}  // namespace pbl::core
