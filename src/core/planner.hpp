// Redundancy planning: the operational questions a deployer of this
// library actually asks, answered with the paper's models.
//
//   * "How many parities must the FEC layer add so that reliable
//     multicast to R receivers costs at most E[M] <= target?"
//   * "How many proactive parities make a retransmission round unlikely?"
//   * "My receivers' losses are shared (one lossy router upstream) — how
//     many INDEPENDENT receivers is my population equivalent to?"
//
// The last one implements the paper's Section 4.1 observation that
// shared-loss populations behave like smaller independent ones, and its
// warning that loss-rate-based adaptation otherwise overestimates the
// redundancy needed.
#pragma once

#include <cstdint>
#include <optional>

namespace pbl::core {

/// Smallest h such that layered FEC with (k, k+h) achieves
/// E[M] <= target_em for R receivers at loss probability p; nullopt if no
/// h <= h_max does (the n/k overhead itself may already exceed the
/// target).
std::optional<std::int64_t> plan_layered_parities(std::int64_t k, double p,
                                                  double receivers,
                                                  double target_em,
                                                  std::int64_t h_max = 255);

/// Smallest number of proactive parities a such that, with probability at
/// least `confidence`, NO receiver needs a retransmission round:
/// P(Lr <= a)^R >= confidence.  nullopt if a_max is insufficient.
std::optional<std::int64_t> plan_proactive_parities(std::int64_t k, double p,
                                                    double receivers,
                                                    double confidence,
                                                    std::int64_t a_max = 255);

/// The independent-receiver population whose no-FEC E[M] equals
/// `measured_em` at per-receiver loss probability p (log-R bisection).
/// Feeding a shared-loss measurement in gives the paper's R_indep <= R.
/// Requires measured_em >= 1/(1-p) (the single-receiver value); values
/// below return 1.
double equivalent_independent_receivers(double p, double measured_em,
                                        double r_max = 1e9);

}  // namespace pbl::core
