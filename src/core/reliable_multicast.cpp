#include "core/reliable_multicast.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "analysis/heterogeneous.hpp"
#include "analysis/integrated.hpp"
#include "analysis/latency.hpp"
#include "analysis/layered.hpp"
#include "protocol/batch_rounds.hpp"

namespace pbl::core {

void MulticastConfig::validate() const {
  if (k < 1) throw std::invalid_argument("MulticastConfig: k >= 1");
  if (h < 0) throw std::invalid_argument("MulticastConfig: h >= 0");
  if (receivers == 0) throw std::invalid_argument("MulticastConfig: receivers >= 1");
  if (p < 0.0 || p >= 1.0) throw std::invalid_argument("MulticastConfig: p in [0,1)");
  if (q_f < 0.0 || q_f >= 1.0)
    throw std::invalid_argument("MulticastConfig: q_f in [0,1)");
  if (num_tgs < 1) throw std::invalid_argument("MulticastConfig: num_tgs >= 1");
  if (interleave_depth == 0)
    throw std::invalid_argument("MulticastConfig: interleave_depth >= 1");
  if (finite_budget && mode != RecoveryMode::kIntegratedFec2)
    throw std::invalid_argument(
        "MulticastConfig: finite_budget applies to kIntegratedFec2 only");
  if (interleave_depth > 1 && mode != RecoveryMode::kLayeredFec)
    throw std::invalid_argument(
        "MulticastConfig: interleave_depth applies to kLayeredFec only");
  if (engine == SimEngine::kBatched && loss == LossKind::kTree)
    throw std::invalid_argument(
        "MulticastConfig: kBatched does not support kTree loss");
  if (engine == SimEngine::kBatched && interleave_depth > 1)
    throw std::invalid_argument(
        "MulticastConfig: kBatched does not support interleaving");
  timing.validate();
}

namespace {

/// Largest height with 2^height <= receivers (>= 0).
unsigned tree_height_for(std::size_t receivers) {
  unsigned height = 0;
  while ((std::size_t{2} << height) <= receivers) ++height;
  return height;
}

struct Environment {
  std::unique_ptr<loss::LossModel> model;            // null for kTree
  std::unique_ptr<tree::MulticastTree> tree;         // null otherwise
  std::unique_ptr<protocol::PacketTransmitter> tx;
};

/// The per-receiver loss model for the non-tree loss kinds (null for
/// kTree, which models loss on the tree itself).
std::unique_ptr<loss::LossModel> make_loss_model(const MulticastConfig& cfg) {
  switch (cfg.loss) {
    case LossKind::kBernoulli:
      return std::make_unique<loss::BernoulliLossModel>(cfg.p);
    case LossKind::kBurst:
      return std::make_unique<loss::GilbertLossModel>(
          loss::GilbertLossModel::from_packet_stats(cfg.p, cfg.burst_len,
                                                    cfg.timing.delta));
    case LossKind::kTwoClass:
      return std::make_unique<loss::HeterogeneousLossModel>(
          cfg.receivers, cfg.alpha, cfg.p, cfg.p_high);
    case LossKind::kTree:
      return nullptr;
  }
  return nullptr;
}

Environment make_environment(const MulticastConfig& cfg) {
  Environment env;
  Rng rng(cfg.seed);
  env.model = make_loss_model(cfg);
  switch (cfg.loss) {
    case LossKind::kBernoulli:
    case LossKind::kBurst:
    case LossKind::kTwoClass:
      break;
    case LossKind::kTree: {
      const unsigned height = tree_height_for(cfg.receivers);
      env.tree = std::make_unique<tree::MulticastTree>(
          tree::MulticastTree::full_binary(height));
      env.tx = std::make_unique<protocol::TreeTransmitter>(
          *env.tree, env.tree->node_loss_for_leaf_loss(cfg.p), rng);
      return env;
    }
  }
  env.tx = std::make_unique<protocol::IidTransmitter>(*env.model,
                                                      cfg.receivers, rng);
  return env;
}

/// The batched engine's scheme for a recovery mode.
protocol::BatchScheme batch_scheme_for(const MulticastConfig& cfg) {
  switch (cfg.mode) {
    case RecoveryMode::kNoFec:
      return protocol::BatchScheme::kNoFec;
    case RecoveryMode::kLayeredFec:
      return protocol::BatchScheme::kLayered;
    case RecoveryMode::kIntegratedFec1:
      return protocol::BatchScheme::kIntegratedStream;
    case RecoveryMode::kIntegratedFec2:
      return cfg.finite_budget ? protocol::BatchScheme::kIntegratedFinite
                               : protocol::BatchScheme::kIntegratedNaks;
  }
  throw std::invalid_argument("batch_scheme_for: unknown mode");
}

/// shards = 0: one shard per started group of 2^16 receivers, so small
/// runs stay single-shard and R = 10^6 fans out over ~16 shards.
std::size_t default_shards(std::size_t receivers) {
  return (receivers + ((std::size_t{1} << 16) - 1)) >> 16;
}

}  // namespace

MulticastReport simulate(const MulticastConfig& cfg) {
  cfg.validate();

  protocol::McConfig mc;
  mc.k = cfg.k;
  mc.h = cfg.h;
  mc.num_tgs = cfg.num_tgs;
  mc.timing = cfg.timing;
  mc.q_f = cfg.q_f;
  mc.seed = cfg.seed;

  protocol::McResult res;
  if (cfg.engine == SimEngine::kBatched) {
    // Model only — no O(R) transmitter construction on this path.
    const std::unique_ptr<loss::LossModel> model = make_loss_model(cfg);
    protocol::BatchOptions opts;
    opts.shards = cfg.shards == 0 ? default_shards(cfg.receivers) : cfg.shards;
    opts.threads = cfg.engine_threads;
    res = protocol::sim_batched(batch_scheme_for(cfg), *model, cfg.receivers,
                                mc, Rng(cfg.seed), opts);
  } else {
    Environment env = make_environment(cfg);
    switch (cfg.mode) {
      case RecoveryMode::kNoFec:
        res = protocol::sim_nofec(*env.tx, mc);
        break;
      case RecoveryMode::kLayeredFec:
        res = cfg.interleave_depth > 1
                  ? protocol::sim_layered_interleaved(*env.tx, mc,
                                                      cfg.interleave_depth)
                  : protocol::sim_layered(*env.tx, mc);
        break;
      case RecoveryMode::kIntegratedFec1:
        res = protocol::sim_integrated_stream(*env.tx, mc);
        break;
      case RecoveryMode::kIntegratedFec2:
        res = cfg.finite_budget ? protocol::sim_integrated_finite(*env.tx, mc)
                                : protocol::sim_integrated_naks(*env.tx, mc);
        break;
    }
  }

  MulticastReport report;
  report.mean_tx = res.mean_tx;
  report.ci95 = res.ci95;
  report.mean_rounds = res.mean_rounds;
  report.mean_time = res.mean_time;
  report.packets_sent = res.packets_sent;
  report.predicted = predict(cfg);
  report.predicted_latency = predict_latency(cfg);
  return report;
}

std::optional<double> predict(const MulticastConfig& cfg) {
  cfg.validate();
  const double r = static_cast<double>(cfg.receivers);
  switch (cfg.loss) {
    case LossKind::kBernoulli:
      switch (cfg.mode) {
        case RecoveryMode::kNoFec:
          return analysis::expected_tx_nofec(cfg.p, r);
        case RecoveryMode::kLayeredFec:
          return analysis::expected_tx_layered(cfg.k, cfg.k + cfg.h, cfg.p, r);
        case RecoveryMode::kIntegratedFec1:
          return analysis::expected_tx_integrated_ideal(cfg.k, cfg.h, cfg.p, r);
        case RecoveryMode::kIntegratedFec2:
          return cfg.finite_budget
                     ? analysis::expected_tx_integrated(cfg.k, cfg.h, 0,
                                                        cfg.p, r)
                     : analysis::expected_tx_integrated_ideal(cfg.k, cfg.h,
                                                              cfg.p, r);
      }
      break;
    case LossKind::kTwoClass: {
      const auto pop = analysis::two_class_population(r, cfg.alpha, cfg.p,
                                                      cfg.p_high);
      switch (cfg.mode) {
        case RecoveryMode::kNoFec:
          return analysis::expected_tx_nofec_hetero(pop);
        case RecoveryMode::kLayeredFec:
          return analysis::expected_tx_layered_hetero(cfg.k, cfg.k + cfg.h, pop);
        case RecoveryMode::kIntegratedFec1:
        case RecoveryMode::kIntegratedFec2:
          return analysis::expected_tx_integrated_hetero(cfg.k, cfg.h, pop);
      }
      break;
    }
    case LossKind::kBurst:
    case LossKind::kTree:
      return std::nullopt;  // the paper, too, resorts to simulation here
  }
  return std::nullopt;
}

std::optional<double> predict_latency(const MulticastConfig& cfg) {
  cfg.validate();
  if (cfg.loss != LossKind::kBernoulli) return std::nullopt;
  const double r = static_cast<double>(cfg.receivers);
  switch (cfg.mode) {
    case RecoveryMode::kNoFec:
      return analysis::expected_latency_nofec(cfg.k, cfg.p, r, cfg.timing);
    case RecoveryMode::kLayeredFec:
      return analysis::expected_latency_layered(cfg.k, cfg.h, cfg.p, r,
                                                cfg.timing);
    case RecoveryMode::kIntegratedFec1:
      return analysis::expected_latency_stream(cfg.k, cfg.p, r, cfg.timing);
    case RecoveryMode::kIntegratedFec2:
      return analysis::expected_latency_integrated(cfg.k, cfg.p, r,
                                                   cfg.timing);
  }
  return std::nullopt;
}

std::string to_string(RecoveryMode mode) {
  switch (mode) {
    case RecoveryMode::kNoFec: return "no-FEC";
    case RecoveryMode::kLayeredFec: return "layered FEC";
    case RecoveryMode::kIntegratedFec1: return "integrated FEC 1";
    case RecoveryMode::kIntegratedFec2: return "integrated FEC 2";
  }
  return "unknown";
}

std::string to_string(LossKind kind) {
  switch (kind) {
    case LossKind::kBernoulli: return "independent";
    case LossKind::kBurst: return "burst";
    case LossKind::kTwoClass: return "two-class";
    case LossKind::kTree: return "shared (tree)";
  }
  return "unknown";
}

}  // namespace pbl::core
