// Public facade of the library.
//
// One configuration struct selects the recovery scheme (no FEC, layered
// FEC, integrated FEC 1/2), the loss environment (independent, bursty,
// two-class heterogeneous, or shared loss over a multicast tree) and the
// population size; simulate() runs the Monte-Carlo protocol model and
// predict() returns the paper's closed form where one exists.  For a
// packet-level, byte-accurate protocol run, use protocol::NpSession
// (protocol/np_protocol.hpp) directly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "protocol/rounds.hpp"

namespace pbl::core {

enum class RecoveryMode {
  kNoFec,          ///< plain ARQ retransmission of originals
  kLayeredFec,     ///< FEC layer below ARQ (Section 3.1)
  kIntegratedFec1, ///< parity stream, receivers leave when done (Section 4.2)
  kIntegratedFec2, ///< NAK-driven parity rounds / protocol NP (Sections 3.2, 5)
};

/// Which Monte-Carlo engine simulate() runs.
enum class SimEngine {
  /// Per-receiver objects (protocol/rounds.hpp): supports every loss
  /// kind and interleaving, but costs O(R) per transmission — practical
  /// to R ~ 10^3..10^4.
  kExact,
  /// Packed-bitmap shards with batched loss sampling
  /// (protocol/batch_rounds.hpp): O(R/64) per transmission, scales to
  /// R ~ 10^6.  Bit-identical to kExact for time-dependent models
  /// (kBurst), distribution-identical for the i.i.d. kinds; kTree and
  /// interleave_depth > 1 are not supported.  See docs/SCALING.md.
  kBatched,
};

enum class LossKind {
  kBernoulli, ///< i.i.d. loss with probability p at every receiver
  kBurst,     ///< two-state Markov (Gilbert) loss, mean burst length b
  kTwoClass,  ///< fraction alpha of receivers at p_high, rest at p
  kTree,      ///< full binary tree with per-node loss (shared loss)
};

struct MulticastConfig {
  std::int64_t k = 7;           ///< transmission-group size
  std::int64_t h = 0;           ///< parities: per block (layered) / proactive (integrated)
  std::size_t receivers = 1000; ///< R (for kTree, rounded down to 2^height)
  RecoveryMode mode = RecoveryMode::kIntegratedFec2;

  LossKind loss = LossKind::kBernoulli;
  double p = 0.01;              ///< packet loss probability per receiver
  double burst_len = 2.0;       ///< mean loss-burst length (kBurst)
  double alpha = 0.0;           ///< high-loss fraction (kTwoClass)
  double p_high = 0.25;         ///< high-loss probability (kTwoClass)

  protocol::Timing timing{};    ///< packet spacing and feedback gap
  std::int64_t num_tgs = 200;   ///< Monte-Carlo samples
  std::uint64_t seed = 1;

  /// Probability that a feedback exchange (NAK/POLL) is lost; each loss
  /// costs an extra timeout gap and round (protocol::McConfig::q_f).
  /// 0 keeps the paper's lossless-feedback assumption and its results
  /// byte-identical.  Closed forms (predict) always assume q_f = 0.
  double q_f = 0.0;

  /// kLayeredFec only: transmit this many FEC blocks interleaved
  /// (Section 4.2's burst countermeasure); 1 = no interleaving.
  std::size_t interleave_depth = 1;
  /// kIntegratedFec2 only: treat h as a hard per-block parity budget
  /// (packets overflowing it join a new TG) instead of h proactive
  /// parities with an unlimited reactive supply.
  bool finite_budget = false;

  /// Simulation engine; kBatched requires a non-tree loss kind and
  /// interleave_depth == 1 (validate() enforces both).
  SimEngine engine = SimEngine::kExact;
  /// kBatched only: receiver shards.  Results are reproducible for a
  /// fixed shard count; 0 picks one shard per started group of 2^16
  /// receivers.
  std::size_t shards = 0;
  /// kBatched only: worker threads for the shard fan-out (0 = hardware,
  /// 1 = inline).  Never affects results.
  unsigned engine_threads = 1;

  void validate() const;
};

struct MulticastReport {
  double mean_tx = 0.0;      ///< measured E[M], packet transmissions per packet
  double ci95 = 0.0;
  double mean_rounds = 0.0;
  double mean_time = 0.0;    ///< measured mean TG completion time [s]
  std::uint64_t packets_sent = 0;
  std::optional<double> predicted;          ///< closed-form E[M], when available
  std::optional<double> predicted_latency;  ///< closed-form latency, when available
};

/// Runs the Monte-Carlo simulation for the configured scheme/loss.
MulticastReport simulate(const MulticastConfig& config);

/// The paper's closed-form E[M] for this configuration, if the combination
/// has one (independent or two-class loss; burst and tree loss do not).
std::optional<double> predict(const MulticastConfig& config);

/// Expected TG delivery latency (analysis/latency.hpp) for independent
/// loss; nullopt for the other loss kinds.
std::optional<double> predict_latency(const MulticastConfig& config);

std::string to_string(RecoveryMode mode);
std::string to_string(LossKind kind);

}  // namespace pbl::core
