#include "core/session_state.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <system_error>

namespace pbl::core {

namespace {

constexpr std::uint8_t kSenderStateVersion = 1;
constexpr std::uint8_t kReceiverStateVersion = 1;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_bitmap(std::vector<std::uint8_t>& out, const std::vector<bool>& bits) {
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) acc |= static_cast<std::uint8_t>(1u << (i % 8));
    if (i % 8 == 7) {
      out.push_back(acc);
      acc = 0;
    }
  }
  if (bits.size() % 8 != 0) out.push_back(acc);
}

/// Bounds-checked little-endian reader; throws instead of reading past
/// the end, so deserialize() is total over arbitrary byte strings.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() {
    const auto b = take(2);
    return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
  }
  std::uint32_t u32() {
    const auto b = take(4);
    return static_cast<std::uint32_t>(b[0]) |
           (static_cast<std::uint32_t>(b[1]) << 8) |
           (static_cast<std::uint32_t>(b[2]) << 16) |
           (static_cast<std::uint32_t>(b[3]) << 24);
  }
  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | (hi << 32);
  }
  std::vector<bool> bitmap(std::size_t count) {
    const auto b = take((count + 7) / 8);
    std::vector<bool> bits(count);
    for (std::size_t i = 0; i < count; ++i)
      bits[i] = (b[i / 8] >> (i % 8)) & 1u;
    return bits;
  }
  bool done() const noexcept { return off_ == bytes_.size(); }

 private:
  std::span<const std::uint8_t> take(std::size_t n) {
    if (bytes_.size() - off_ < n)
      throw std::invalid_argument("session state: truncated image");
    const auto s = bytes_.subspan(off_, n);
    off_ += n;
    return s;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t off_ = 0;
};

/// A TG count bound that is generous for any real session but small
/// enough that a corrupt count cannot provoke a huge allocation.
constexpr std::uint32_t kMaxReasonableTgs = 1u << 22;

}  // namespace

bool SenderSessionState::all_complete() const noexcept {
  return first_incomplete() == num_tgs;
}

std::size_t SenderSessionState::first_incomplete() const noexcept {
  for (std::size_t i = 0; i < completed.size(); ++i)
    if (!completed[i]) return i;
  return completed.size();
}

std::vector<std::uint8_t> SenderSessionState::serialize() const {
  std::vector<std::uint8_t> out;
  out.push_back(kSenderStateVersion);
  put_u64(out, session_id);
  put_u32(out, incarnation);
  put_u32(out, k);
  put_u32(out, h);
  put_u32(out, packet_len);
  put_u32(out, num_tgs);
  put_bitmap(out, completed);
  for (const auto hw : parities_sent) put_u16(out, hw);
  return out;
}

SenderSessionState SenderSessionState::deserialize(
    std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  if (r.u8() != kSenderStateVersion)
    throw std::invalid_argument("sender state: unknown format version");
  SenderSessionState st;
  st.session_id = r.u64();
  st.incarnation = r.u32();
  st.k = r.u32();
  st.h = r.u32();
  st.packet_len = r.u32();
  st.num_tgs = r.u32();
  if (st.num_tgs > kMaxReasonableTgs)
    throw std::invalid_argument("sender state: implausible TG count");
  st.completed = r.bitmap(st.num_tgs);
  st.parities_sent.resize(st.num_tgs);
  for (auto& hw : st.parities_sent) hw = r.u16();
  if (!r.done())
    throw std::invalid_argument("sender state: trailing bytes");
  return st;
}

std::vector<std::uint8_t> ReceiverSessionState::serialize() const {
  std::vector<std::uint8_t> out;
  out.push_back(kReceiverStateVersion);
  put_u64(out, session_id);
  put_u32(out, receiver);
  put_u32(out, incarnation);
  put_u32(out, num_tgs);
  put_bitmap(out, decoded);
  return out;
}

ReceiverSessionState ReceiverSessionState::deserialize(
    std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  if (r.u8() != kReceiverStateVersion)
    throw std::invalid_argument("receiver state: unknown format version");
  ReceiverSessionState st;
  st.session_id = r.u64();
  st.receiver = r.u32();
  st.incarnation = r.u32();
  st.num_tgs = r.u32();
  if (st.num_tgs > kMaxReasonableTgs)
    throw std::invalid_argument("receiver state: implausible TG count");
  st.decoded = r.bitmap(st.num_tgs);
  if (!r.done())
    throw std::invalid_argument("receiver state: trailing bytes");
  return st;
}

SenderSessionState recover_sender_state(
    const std::vector<util::JournalRecord>& records) {
  SenderSessionState st;
  bool have_snapshot = false;
  for (const auto& rec : records) {
    switch (static_cast<SessionRecordType>(rec.type)) {
      case SessionRecordType::kSenderSnapshot:
        st = SenderSessionState::deserialize(rec.payload);
        have_snapshot = true;
        break;
      case SessionRecordType::kTgCompleted: {
        if (!have_snapshot)
          throw std::runtime_error("session journal: delta before snapshot");
        Reader r{std::span<const std::uint8_t>(rec.payload)};
        const std::uint32_t tg = r.u32();
        if (tg >= st.num_tgs)
          throw std::invalid_argument("session journal: TG out of range");
        st.completed[tg] = true;
        break;
      }
      case SessionRecordType::kParityHighWater: {
        if (!have_snapshot)
          throw std::runtime_error("session journal: delta before snapshot");
        Reader r{std::span<const std::uint8_t>(rec.payload)};
        const std::uint32_t tg = r.u32();
        const std::uint16_t hw = r.u16();
        if (tg >= st.num_tgs)
          throw std::invalid_argument("session journal: TG out of range");
        st.parities_sent[tg] = std::max(st.parities_sent[tg], hw);
        break;
      }
      case SessionRecordType::kIncarnation: {
        if (!have_snapshot)
          throw std::runtime_error("session journal: delta before snapshot");
        Reader r{std::span<const std::uint8_t>(rec.payload)};
        st.incarnation = r.u32();
        break;
      }
      case SessionRecordType::kReceiverSnapshot:
        break;  // receiver-side record: not part of the sender fold
      default:
        // Unknown types are skipped, not fatal: a newer writer may add
        // record kinds an older reader can safely ignore.
        break;
    }
  }
  if (!have_snapshot)
    throw std::runtime_error(
        "session journal: no sender snapshot — nothing to resume from");
  return st;
}

SessionJournal::SessionJournal(const std::string& path,
                               const SenderSessionState& fresh,
                               Options options)
    : journal_(util::Journal::open(
          path, util::JournalConfig{.sync_every = options.sync_every,
                                    .max_record_bytes = 1u << 24})),
      options_(options) {
  if (!journal_.recovered().empty()) {
    state_ = recover_sender_state(journal_.recovered());
    if (state_.session_id != fresh.session_id || state_.k != fresh.k ||
        state_.h != fresh.h || state_.packet_len != fresh.packet_len ||
        state_.num_tgs != fresh.num_tgs)
      throw std::runtime_error(
          "session journal: recovered state belongs to a different session "
          "(shape mismatch) — refusing to resume against the wrong data");
    resumed_ = true;
    // New life: bump the incarnation and make it durable BEFORE any
    // packet of this life is stamped with it.
    ++state_.incarnation;
    std::vector<std::uint8_t> payload;
    put_u32(payload, state_.incarnation);
    journal_.append(
        static_cast<std::uint32_t>(SessionRecordType::kIncarnation), payload);
    journal_.sync();
    return;
  }
  state_ = fresh;
  if (state_.completed.size() != state_.num_tgs)
    state_.completed.assign(state_.num_tgs, false);
  if (state_.parities_sent.size() != state_.num_tgs)
    state_.parities_sent.assign(state_.num_tgs, 0);
  journal_.append(
      static_cast<std::uint32_t>(SessionRecordType::kSenderSnapshot),
      state_.serialize());
  journal_.sync();
}

void SessionJournal::record_tg_completed(std::size_t tg) {
  if (tg >= state_.num_tgs || state_.completed[tg]) return;
  state_.completed[tg] = true;
  std::vector<std::uint8_t> payload;
  put_u32(payload, static_cast<std::uint32_t>(tg));
  journal_.append(static_cast<std::uint32_t>(SessionRecordType::kTgCompleted),
                  payload);
  after_delta();
}

void SessionJournal::record_parities_sent(std::size_t tg,
                                          std::size_t high_water) {
  if (tg >= state_.num_tgs) return;
  const auto hw =
      static_cast<std::uint16_t>(std::min<std::size_t>(high_water, 0xffff));
  if (hw <= state_.parities_sent[tg]) return;  // monotone high-water only
  state_.parities_sent[tg] = hw;
  std::vector<std::uint8_t> payload;
  put_u32(payload, static_cast<std::uint32_t>(tg));
  put_u16(payload, hw);
  journal_.append(
      static_cast<std::uint32_t>(SessionRecordType::kParityHighWater),
      payload);
  after_delta();
}

void SessionJournal::checkpoint() {
  journal_.compact({util::JournalRecord{
      static_cast<std::uint32_t>(SessionRecordType::kSenderSnapshot),
      state_.serialize()}});
  deltas_ = 0;
}

void SessionJournal::after_delta() {
  if (options_.checkpoint_interval == 0) return;
  if (++deltas_ >= options_.checkpoint_interval && !journal_.crashed())
    checkpoint();
}

ResumableReport run_resumable_session(const loss::LossModel& loss,
                                      std::size_t receivers,
                                      std::vector<TgData> data,
                                      const ResumableConfig& config,
                                      std::uint64_t seed) {
  if (config.journal_path.empty())
    throw std::invalid_argument("run_resumable_session: journal_path required");
  if (data.empty())
    throw std::invalid_argument("run_resumable_session: no data");

  SenderSessionState fresh;
  fresh.session_id = seed;
  fresh.k = static_cast<std::uint32_t>(config.np.k);
  fresh.h = static_cast<std::uint32_t>(config.np.h);
  fresh.packet_len = static_cast<std::uint32_t>(config.np.packet_len);
  fresh.num_tgs = static_cast<std::uint32_t>(data.size());
  fresh.completed.assign(data.size(), false);
  fresh.parities_sent.assign(data.size(), 0);

  ResumableReport report;
  std::vector<std::vector<bool>> priors;  // receiver decoded bitmaps
  std::uint32_t receiver_incarnation = 0;

  for (std::size_t life = 0; life < config.max_incarnations; ++life) {
    SessionJournal sj(config.journal_path, fresh,
                      {config.checkpoint_interval, config.sync_every});
    report.incarnations = life + 1;

    protocol::NpConfig np = config.np;
    np.resume.incarnation = sj.state().incarnation;
    np.resume.receiver_incarnation = receiver_incarnation;
    np.resume.completed = sj.state().completed;
    np.resume.parities_sent = sj.state().parities_sent;
    np.resume.receiver_decoded = priors;
    np.on_tg_completed = [&sj](std::size_t tg) { sj.record_tg_completed(tg); };
    np.on_parities_sent = [&sj](std::size_t tg, std::size_t hw) {
      sj.record_parities_sent(tg, hw);
    };
    np.crash_after_tx = life < config.crash_plan.size()
                            ? config.crash_plan[life]
                            : protocol::kNoSenderCrash;

    protocol::NpSession session(loss, receivers, data, np, seed);
    protocol::NpStats stats = session.run();

    report.total_data_sent += stats.data_sent;
    report.total_parity_sent += stats.parity_sent;
    report.total_proactive_sent += stats.proactive_sent;
    report.total_polls_sent += stats.polls_sent;
    report.stale_rejected += stats.stale_rejected;
    report.total_sim_time += stats.completion_time;

    // Real receivers outlive the sender; in the DES each life is a new
    // session object, so their decoded bitmaps thread through explicitly.
    priors = stats.report.delivered;
    receiver_incarnation = sj.state().incarnation;
    report.state = sj.state();

    const bool crashed = stats.sender_crashed;
    report.last = std::move(stats);
    if (!crashed) {
      report.complete = report.last.all_delivered &&
                        report.last.tgs_failed == 0 &&
                        !report.last.report.deadline_expired;
      break;
    }
  }

  const std::uint64_t baseline =
      static_cast<std::uint64_t>(config.np.k) *
      static_cast<std::uint64_t>(data.size());
  report.redundant_data =
      report.total_data_sent > baseline ? report.total_data_sent - baseline
                                        : 0;
  return report;
}

std::optional<SenderSessionState> peek_session_journal(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  const util::JournalScanResult scan = util::scan_journal(bytes);
  if (scan.records.empty()) return std::nullopt;
  try {
    return recover_sender_state(scan.records);
  } catch (const std::exception&) {
    return std::nullopt;  // no snapshot / malformed: nothing to resume
  }
}

std::vector<std::string> list_session_journals(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != ".journal") continue;
    out.push_back(entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

void save_receiver_state_file(const std::string& path,
                              const ReceiverSessionState& state) {
  const std::vector<std::uint8_t> bytes = state.serialize();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      throw std::runtime_error("save_receiver_state_file: cannot write " + tmp);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out)
      throw std::runtime_error("save_receiver_state_file: short write " + tmp);
  }
  std::filesystem::rename(tmp, path);
}

std::optional<ReceiverSessionState> load_receiver_state_file(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  try {
    return ReceiverSessionState::deserialize(bytes);
  } catch (const std::exception&) {
    return std::nullopt;  // damaged state file: fresh receiver
  }
}

ResumableTransferReport transfer_resumable(std::span<const std::uint8_t> blob,
                                           const loss::LossModel& loss,
                                           std::size_t receivers,
                                           const ResumableConfig& config,
                                           std::uint64_t seed) {
  ResumableTransferReport out;
  auto groups = segment_blob(blob, config.np.k, config.np.packet_len);
  out.groups = groups.size();
  out.payload_bytes = blob.size();
  const auto reassembled = reassemble_blob(groups);
  out.session =
      run_resumable_session(loss, receivers, std::move(groups), config, seed);
  out.blob_verified =
      out.session.complete && reassembled.size() == blob.size() &&
      std::equal(reassembled.begin(), reassembled.end(), blob.begin());
  return out;
}

}  // namespace pbl::core
