// Crash-tolerant session state: what a sender must remember to survive
// its own death (docs/ROBUSTNESS.md).
//
// The durable facts are deliberately small — which TGs are confirmed
// complete, how many parities each TG has consumed, and which
// incarnation of the sender is alive — because everything else
// (encoders, decoders, timers) is reconstructible from the source data
// and the protocol.  SenderSessionState serialises those facts with a
// version byte; SessionJournal write-ahead-logs every change through
// util::Journal and folds a recovered record stream back into state.
//
// Restart protocol: each reopen of the journal bumps the incarnation and
// journals the bump BEFORE any packet of the new life is sent, so a
// receiver that has heard incarnation i can reject any straggler stamped
// < i (fec/packet.hpp's incarnation byte).  A resumed sender starts at
// the first incomplete TG and serves fresh parity indices above the
// journaled high-water mark — completed TGs are never retransmitted, and
// repair packets receivers already hold are never re-multicast.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/file_transfer.hpp"
#include "loss/loss_model.hpp"
#include "protocol/np_protocol.hpp"
#include "util/journal.hpp"

namespace pbl::core {

/// Journal record types used by crash-tolerant sessions (the `type` tag
/// of util::JournalRecord).  Values are wire-stable: never renumber.
enum class SessionRecordType : std::uint32_t {
  kSenderSnapshot = 1,   ///< full SenderSessionState image
  kTgCompleted = 2,      ///< delta: u32 tg confirmed complete
  kParityHighWater = 3,  ///< delta: u32 tg, u16 parities-sent high-water
  kIncarnation = 4,      ///< delta: u32 new incarnation (restart marker)
  kReceiverSnapshot = 5, ///< full ReceiverSessionState image
};

/// The sender's durable progress.  Shape fields (k, h, packet_len,
/// num_tgs, session_id) identify the session a journal belongs to; a
/// recovered journal whose shape disagrees with the caller's is refused
/// rather than silently resumed against the wrong data.
struct SenderSessionState {
  std::uint64_t session_id = 0;
  std::uint32_t incarnation = 0;
  std::uint32_t k = 0;
  std::uint32_t h = 0;
  std::uint32_t packet_len = 0;
  std::uint32_t num_tgs = 0;
  std::vector<bool> completed;              ///< per-TG confirmed complete
  std::vector<std::uint16_t> parities_sent; ///< per-TG parity high-water

  bool operator==(const SenderSessionState&) const = default;

  bool all_complete() const noexcept;
  std::size_t first_incomplete() const noexcept;  ///< num_tgs when done

  /// Versioned little-endian image (format v1).
  std::vector<std::uint8_t> serialize() const;
  /// Throws std::invalid_argument on truncated/malformed/unknown-version
  /// input; never reads past `bytes`.
  static SenderSessionState deserialize(std::span<const std::uint8_t> bytes);
};

/// A receiver's durable progress: which TGs it has decoded and the
/// highest sender incarnation it has heard (for stale rejection after
/// ITS restart).
struct ReceiverSessionState {
  std::uint64_t session_id = 0;
  std::uint32_t receiver = 0;     ///< which member this bitmap belongs to
  std::uint32_t incarnation = 0;  ///< highest sender incarnation heard
  std::uint32_t num_tgs = 0;
  std::vector<bool> decoded;

  bool operator==(const ReceiverSessionState&) const = default;

  std::vector<std::uint8_t> serialize() const;
  static ReceiverSessionState deserialize(std::span<const std::uint8_t> bytes);
};

/// Folds a recovered journal record stream into sender state: the latest
/// kSenderSnapshot, with every later delta applied in order.  Throws
/// std::runtime_error if the stream holds no snapshot (nothing to resume
/// from) and std::invalid_argument on a malformed record — the records
/// passed CRC framing, so malformation means a logic error, not line
/// noise.
SenderSessionState recover_sender_state(
    const std::vector<util::JournalRecord>& records);

/// Write-ahead glue between a protocol session and util::Journal.
///
/// Construction opens (or creates) the journal: a fresh file is seeded
/// with a snapshot of `fresh` at incarnation 0; a journal with history
/// is folded via recover_sender_state(), its shape checked against
/// `fresh`, and the incarnation bumped and journaled — all before the
/// caller sends a single packet.  The record_* methods are shaped to
/// plug straight into NpConfig::on_tg_completed / on_parities_sent.
struct SessionJournalOptions {
  /// Compact the log to a single snapshot after this many delta records
  /// (0 = never compact).
  std::size_t checkpoint_interval = 16;
  /// util::JournalConfig::sync_every for the underlying log.
  std::size_t sync_every = 1;
};

class SessionJournal {
 public:
  using Options = SessionJournalOptions;

  SessionJournal(const std::string& path, const SenderSessionState& fresh,
                 Options options = {});

  const SenderSessionState& state() const noexcept { return state_; }
  /// True when construction recovered a prior life from the journal.
  bool resumed() const noexcept { return resumed_; }

  /// Journals "TG `tg` is confirmed complete" (idempotent).
  void record_tg_completed(std::size_t tg);
  /// Journals the new parity high-water for `tg` (monotone: lower or
  /// equal marks are ignored).
  void record_parities_sent(std::size_t tg, std::size_t high_water);
  /// Forces snapshot+compaction now, resetting the delta counter.
  void checkpoint();

  /// The underlying log — exposed for fault injection
  /// (util::Journal::crash_on_append) and inspection in tests.
  util::Journal& journal() noexcept { return journal_; }

 private:
  void after_delta();

  util::Journal journal_;
  SenderSessionState state_;
  Options options_;
  std::size_t deltas_ = 0;
  bool resumed_ = false;
};

/// Crash→recover→resume driver configuration.
struct ResumableConfig {
  /// Base protocol config; the resume/crash/hook fields are overwritten
  /// per incarnation by the driver.
  protocol::NpConfig np{};
  /// Where the sender's write-ahead journal lives.  Required.
  std::string journal_path;
  std::size_t checkpoint_interval = 16;
  std::size_t sync_every = 1;
  /// Deterministic crash schedule: incarnation i dies after
  /// crash_plan[i] transmissions (entries beyond the vector: no crash).
  std::vector<std::size_t> crash_plan;
  /// Hard bound on lives before the driver gives up.
  std::size_t max_incarnations = 64;
};

/// What a multi-life session cost, across every incarnation.
struct ResumableReport {
  bool complete = false;          ///< every receiver got every byte
  std::size_t incarnations = 0;   ///< lives used (1 = never crashed)
  std::uint64_t total_data_sent = 0;
  std::uint64_t total_parity_sent = 0;
  std::uint64_t total_proactive_sent = 0;
  std::uint64_t total_polls_sent = 0;
  std::uint64_t stale_rejected = 0;
  /// Data transmissions beyond the unavoidable one-per-packet: the
  /// redundancy cost of crashing (re-sent partial TGs).
  std::uint64_t redundant_data = 0;
  double total_sim_time = 0.0;    ///< summed across lives
  protocol::NpStats last{};       ///< the final life's full statistics
  SenderSessionState state{};     ///< final journaled state
};

// ---- server-side journal discovery (src/server/) -------------------------

/// Non-destructively folds the journal at `path` into sender state: no
/// open-for-append, no incarnation bump — pure inspection, so a server
/// can decide WHETHER to resume a session before committing to it.
/// Returns std::nullopt when the file is missing, not a journal, or
/// holds no snapshot.
std::optional<SenderSessionState> peek_session_journal(
    const std::string& path);

/// Every `*.journal` file directly inside `dir`, as full paths sorted by
/// name (deterministic resume order).  A missing directory is an empty
/// list, not an error.
std::vector<std::string> list_session_journals(const std::string& dir);

/// Atomically persists a receiver's durable progress to `path` (write
/// temp, rename — a crash mid-save leaves the old file or the new one,
/// never a torn hybrid).
void save_receiver_state_file(const std::string& path,
                              const ReceiverSessionState& state);

/// Reads a file written by save_receiver_state_file(); std::nullopt when
/// missing or malformed (a damaged state file means "fresh receiver",
/// never a crash).
std::optional<ReceiverSessionState> load_receiver_state_file(
    const std::string& path);

/// Runs `data` through protocol NP to completion across sender crashes:
/// each life recovers the journal at `config.journal_path`, bumps the
/// incarnation, resumes at the first incomplete TG, and dies on schedule
/// (config.crash_plan) until a life survives to the end.  Receiver
/// decoded-state is threaded between lives (in the DES each incarnation
/// is a new session object; real receivers would simply have survived).
ResumableReport run_resumable_session(const loss::LossModel& loss,
                                      std::size_t receivers,
                                      std::vector<TgData> data,
                                      const ResumableConfig& config,
                                      std::uint64_t seed = 1);

/// segment_blob + run_resumable_session: a whole file delivered across
/// sender crashes, with the framing round-trip re-verified at the end.
struct ResumableTransferReport {
  ResumableReport session;
  std::size_t groups = 0;
  std::size_t payload_bytes = 0;
  bool blob_verified = false;
};

ResumableTransferReport transfer_resumable(std::span<const std::uint8_t> blob,
                                           const loss::LossModel& loss,
                                           std::size_t receivers,
                                           const ResumableConfig& config,
                                           std::uint64_t seed = 1);

}  // namespace pbl::core
