#include "fec/fec_block.hpp"

#include <cstring>
#include <stdexcept>

namespace pbl::fec {

TgEncoder::TgEncoder(std::uint32_t tg_id, const RseCode& code,
                     std::vector<std::vector<std::uint8_t>> data)
    : tg_id_(tg_id), code_(&code), data_(std::move(data)),
      parity_(code.h()) {
  if (data_.size() != code_->k())
    throw std::invalid_argument("TgEncoder: need exactly k data packets");
  for (const auto& d : data_)
    if (d.size() != data_[0].size())
      throw std::invalid_argument("TgEncoder: packets must have equal length");
}

Packet TgEncoder::data_packet(std::size_t i) const {
  if (i >= code_->k()) throw std::out_of_range("TgEncoder: data index");
  Packet p;
  p.header.type = PacketType::kData;
  p.header.tg = tg_id_;
  p.header.index = static_cast<std::uint16_t>(i);
  p.header.k = static_cast<std::uint16_t>(code_->k());
  p.header.n = static_cast<std::uint16_t>(code_->n());
  p.payload = data_[i];
  p.header.payload_len = static_cast<std::uint32_t>(p.payload.size());
  return p;
}

Packet TgEncoder::parity_packet(std::size_t j) {
  if (j >= code_->h()) throw std::out_of_range("TgEncoder: parity index");
  if (!parity_[j]) {
    std::vector<std::span<const std::uint8_t>> views(data_.begin(), data_.end());
    std::vector<std::uint8_t> buf(data_.empty() ? 0 : data_[0].size());
    code_->encode_parity(j, views, buf);
    parity_[j] = std::move(buf);
    ++encoded_count_;
  }
  Packet p;
  p.header.type = PacketType::kParity;
  p.header.tg = tg_id_;
  p.header.index = static_cast<std::uint16_t>(code_->k() + j);
  p.header.k = static_cast<std::uint16_t>(code_->k());
  p.header.n = static_cast<std::uint16_t>(code_->n());
  p.payload = *parity_[j];
  p.header.payload_len = static_cast<std::uint32_t>(p.payload.size());
  return p;
}

std::size_t TgEncoder::write_data_frame(std::size_t i, std::uint8_t incarnation,
                                        std::span<std::uint8_t> frame) const {
  if (i >= code_->k()) throw std::out_of_range("TgEncoder: data index");
  const std::size_t len = data_[i].size();
  const std::size_t total = wire_size(len);
  if (frame.size() < total)
    throw std::invalid_argument("TgEncoder: frame buffer too small");
  PacketHeader h;
  h.type = PacketType::kData;
  h.incarnation = incarnation;
  h.tg = tg_id_;
  h.index = static_cast<std::uint16_t>(i);
  h.k = static_cast<std::uint16_t>(code_->k());
  h.n = static_cast<std::uint16_t>(code_->n());
  h.payload_len = static_cast<std::uint32_t>(len);
  write_header(h, frame);
  std::memcpy(frame.data() + kHeaderWireSize, data_[i].data(), len);
  seal_frame(frame.subspan(0, total));
  return total;
}

std::size_t TgEncoder::write_parity_frame(std::size_t j,
                                          std::uint8_t incarnation,
                                          std::span<std::uint8_t> frame) {
  if (j >= code_->h()) throw std::out_of_range("TgEncoder: parity index");
  const std::size_t len = data_.empty() ? 0 : data_[0].size();
  const std::size_t total = wire_size(len);
  if (frame.size() < total)
    throw std::invalid_argument("TgEncoder: frame buffer too small");
  PacketHeader h;
  h.type = PacketType::kParity;
  h.incarnation = incarnation;
  h.tg = tg_id_;
  h.index = static_cast<std::uint16_t>(code_->k() + j);
  h.k = static_cast<std::uint16_t>(code_->k());
  h.n = static_cast<std::uint16_t>(code_->n());
  h.payload_len = static_cast<std::uint32_t>(len);
  write_header(h, frame);
  const std::span<std::uint8_t> payload = frame.subspan(kHeaderWireSize, len);
  if (parity_[j]) {
    std::memcpy(payload.data(), parity_[j]->data(), len);
  } else {
    // Zero-copy encode: the GF kernels write the parity straight into the
    // frame's payload region.  The result is NOT cached — the arena frame
    // is the only copy, matching the "encode at send time into the wire
    // buffer" fast path (cache via pre_encode() when re-sends dominate).
    std::vector<std::span<const std::uint8_t>> views(data_.begin(),
                                                     data_.end());
    code_->encode_parity(j, views, payload);
    ++encoded_count_;
  }
  seal_frame(frame.subspan(0, total));
  return total;
}

void TgEncoder::pre_encode() {
  for (std::size_t j = 0; j < code_->h(); ++j) {
    if (!parity_[j]) {
      std::vector<std::span<const std::uint8_t>> views(data_.begin(), data_.end());
      std::vector<std::uint8_t> buf(data_.empty() ? 0 : data_[0].size());
      code_->encode_parity(j, views, buf);
      parity_[j] = std::move(buf);
      ++encoded_count_;
    }
  }
}

TgDecoder::TgDecoder(std::uint32_t tg_id, const RseCode& code,
                     std::size_t packet_len)
    : tg_id_(tg_id), code_(&code), packet_len_(packet_len),
      shards_(code.n()) {}

bool TgDecoder::add(const Packet& packet) {
  if (packet.header.tg != tg_id_) return false;
  if (packet.header.type != PacketType::kData &&
      packet.header.type != PacketType::kParity)
    return false;
  const std::size_t idx = packet.header.index;
  if (idx >= code_->n())
    throw std::invalid_argument("TgDecoder: packet index out of range");
  if (packet.payload.size() != packet_len_)
    throw std::invalid_argument("TgDecoder: payload length mismatch");
  if (shards_[idx] || result_) {
    ++duplicates_;
    return false;
  }
  shards_[idx] = packet.payload;
  ++received_count_;
  return true;
}

std::size_t TgDecoder::needed() const noexcept {
  const std::size_t k = code_->k();
  return received_count_ >= k ? 0 : k - received_count_;
}

const std::vector<std::vector<std::uint8_t>>& TgDecoder::reconstruct() {
  if (result_) return *result_;
  if (!decodable())
    throw std::logic_error("TgDecoder: not enough packets to reconstruct");

  std::vector<Shard> received;
  received.reserve(received_count_);
  for (std::size_t i = 0; i < shards_.size(); ++i)
    if (shards_[i]) received.push_back({i, *shards_[i]});

  std::vector<std::vector<std::uint8_t>> out(
      code_->k(), std::vector<std::uint8_t>(packet_len_));
  std::vector<std::span<std::uint8_t>> views(out.begin(), out.end());
  code_->decode(received, views);

  for (std::size_t i = 0; i < code_->k(); ++i)
    if (!shards_[i]) ++decoded_packets_;

  result_ = std::move(out);
  return *result_;
}

}  // namespace pbl::fec
