// Transmission-group encoder/decoder state machines.
//
// TgEncoder owns the k data packets of one transmission group and produces
// DATA/PARITY packets on demand (lazily, or eagerly via pre_encode(), the
// "pre-encoding" option evaluated in Fig 18).  TgDecoder accumulates any
// packets of the block and reconstructs the group as soon as k distinct
// packets have arrived (Section 2.1).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fec/packet.hpp"
#include "fec/rse_code.hpp"

namespace pbl::fec {

class TgEncoder {
 public:
  /// `data` must contain exactly k equal-length packets.
  TgEncoder(std::uint32_t tg_id, const RseCode& code,
            std::vector<std::vector<std::uint8_t>> data);

  std::uint32_t tg_id() const noexcept { return tg_id_; }
  std::size_t k() const noexcept { return code_->k(); }
  std::size_t n() const noexcept { return code_->n(); }

  /// DATA packet for data index i < k.
  Packet data_packet(std::size_t i) const;

  /// PARITY packet for parity index j < h (block index k + j); encodes on
  /// first use unless pre_encode() was called.
  Packet parity_packet(std::size_t j);

  /// Eagerly computes all h parities (sender-side pre-encoding).
  void pre_encode();

  /// Frames DATA packet i directly into `frame` (header + payload + CRC,
  /// byte-identical to serialize(data_packet(i)) with the incarnation
  /// stamped).  Returns the bytes written.  The zero-copy send path:
  /// arena frames are framed in place, no intermediate Packet/vector.
  std::size_t write_data_frame(std::size_t i, std::uint8_t incarnation,
                               std::span<std::uint8_t> frame) const;

  /// Frames PARITY j (block index k + j) directly into `frame`.  When the
  /// parity is not yet cached, the GF kernels encode it straight into the
  /// frame's payload region — the parity bytes are never materialised
  /// anywhere else.  Byte-identical to serialize(parity_packet(j)) with
  /// the incarnation stamped; counts toward parities_encoded() exactly
  /// like parity_packet().  Returns the bytes written.
  std::size_t write_parity_frame(std::size_t j, std::uint8_t incarnation,
                                 std::span<std::uint8_t> frame);

  /// Wire size of any frame of this group (all packets share one
  /// payload length).
  std::size_t frame_wire_size() const noexcept {
    return wire_size(data_.empty() ? 0 : data_[0].size());
  }

  /// Number of parities encoded so far (for processing-cost accounting).
  std::size_t parities_encoded() const noexcept { return encoded_count_; }

 private:
  std::uint32_t tg_id_;
  const RseCode* code_;
  std::vector<std::vector<std::uint8_t>> data_;
  std::vector<std::optional<std::vector<std::uint8_t>>> parity_;
  std::size_t encoded_count_ = 0;
};

class TgDecoder {
 public:
  TgDecoder(std::uint32_t tg_id, const RseCode& code, std::size_t packet_len);

  std::uint32_t tg_id() const noexcept { return tg_id_; }

  /// Feeds a DATA or PARITY packet of this block.  Duplicate or foreign
  /// packets are ignored (returns false); fresh packets return true.
  bool add(const Packet& packet);

  std::size_t received() const noexcept { return received_count_; }
  /// Number of additional packets needed to reconstruct: max(0, k - received).
  std::size_t needed() const noexcept;
  bool decodable() const noexcept { return received_count_ >= code_->k(); }

  /// Number of duplicate/ignored packets seen (unnecessary receptions,
  /// a metric the paper tracks in Section 2.1).
  std::size_t duplicates() const noexcept { return duplicates_; }

  /// Reconstructs and returns the k data packets; requires decodable().
  /// Idempotent; subsequent calls return the cached reconstruction.
  const std::vector<std::vector<std::uint8_t>>& reconstruct();

  /// Number of data packets that were actually rebuilt by RSE decoding
  /// (l in the paper; the per-receiver decode cost is proportional to it).
  std::size_t decoded_packets() const noexcept { return decoded_packets_; }

 private:
  std::uint32_t tg_id_;
  const RseCode* code_;
  std::size_t packet_len_;
  std::vector<std::optional<std::vector<std::uint8_t>>> shards_;  // size n
  std::size_t received_count_ = 0;
  std::size_t duplicates_ = 0;
  std::size_t decoded_packets_ = 0;
  std::optional<std::vector<std::vector<std::uint8_t>>> result_;
};

}  // namespace pbl::fec
