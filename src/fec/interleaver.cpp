#include "fec/interleaver.hpp"

#include <stdexcept>

namespace pbl::fec {

Interleaver::Interleaver(std::size_t depth, std::size_t group_len)
    : depth_(depth), group_len_(group_len) {
  if (depth == 0 || group_len == 0)
    throw std::invalid_argument("Interleaver: depth and group_len must be > 0");
}

std::pair<std::size_t, std::size_t> Interleaver::slot_to_packet(
    std::size_t slot) const {
  if (slot >= window()) throw std::out_of_range("Interleaver: slot out of window");
  return {slot % depth_, slot / depth_};
}

std::size_t Interleaver::packet_to_slot(std::size_t group,
                                        std::size_t index) const {
  if (group >= depth_ || index >= group_len_)
    throw std::out_of_range("Interleaver: packet out of range");
  return index * depth_ + group;
}

std::vector<std::pair<std::size_t, std::size_t>> Interleaver::schedule() const {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  out.reserve(window());
  for (std::size_t s = 0; s < window(); ++s) out.push_back(slot_to_packet(s));
  return out;
}

}  // namespace pbl::fec
