// Block interleaving of FEC-block transmissions (paper, Section 4.2).
//
// "Under interleaving the sender spreads the transmission of a FEC block
// over an interval that is longer than the loss burst length ... packets
// from different transmission groups can be sent simultaneously in an
// interleaved manner."
//
// The Interleaver maps a linear send slot to a (group, packet-in-group)
// pair: with depth D, packet j of group g is sent at slot j*D + g, i.e.
// consecutive slots cycle through D different groups, stretching each
// group's transmission by a factor D in time.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace pbl::fec {

class Interleaver {
 public:
  /// depth = number of groups interleaved together (D >= 1; D == 1 means
  /// no interleaving); group_len = packets per group (n of the block).
  Interleaver(std::size_t depth, std::size_t group_len);

  std::size_t depth() const noexcept { return depth_; }
  std::size_t group_len() const noexcept { return group_len_; }
  /// Slots in one full interleaving window (= depth * group_len).
  std::size_t window() const noexcept { return depth_ * group_len_; }

  /// (group, index) sent at the given slot within a window.
  std::pair<std::size_t, std::size_t> slot_to_packet(std::size_t slot) const;

  /// Inverse mapping: slot at which (group, index) is sent.
  std::size_t packet_to_slot(std::size_t group, std::size_t index) const;

  /// Full send schedule for one window, in slot order.
  std::vector<std::pair<std::size_t, std::size_t>> schedule() const;

 private:
  std::size_t depth_;
  std::size_t group_len_;
};

}  // namespace pbl::fec
