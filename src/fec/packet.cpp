#include "fec/packet.hpp"

#include <cstring>
#include <stdexcept>

#include "util/crc32.hpp"

namespace pbl::fec {

std::string to_string(PacketType t) {
  switch (t) {
    case PacketType::kData: return "DATA";
    case PacketType::kParity: return "PARITY";
    case PacketType::kPoll: return "POLL";
    case PacketType::kNak: return "NAK";
  }
  return "UNKNOWN";
}

namespace {

void put_u16_at(std::span<std::uint8_t> out, std::size_t off, std::uint16_t v) {
  out[off] = static_cast<std::uint8_t>(v);
  out[off + 1] = static_cast<std::uint8_t>(v >> 8);
}
void put_u32_at(std::span<std::uint8_t> out, std::size_t off, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out[off + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
}
std::uint16_t get_u16(std::span<const std::uint8_t> b, std::size_t off) {
  return static_cast<std::uint16_t>(b[off] | (b[off + 1] << 8));
}
std::uint32_t get_u32(std::span<const std::uint8_t> b, std::size_t off) {
  return static_cast<std::uint32_t>(b[off]) |
         (static_cast<std::uint32_t>(b[off + 1]) << 8) |
         (static_cast<std::uint32_t>(b[off + 2]) << 16) |
         (static_cast<std::uint32_t>(b[off + 3]) << 24);
}

}  // namespace

void write_header(const PacketHeader& header, std::span<std::uint8_t> out) {
  if (out.size() < kHeaderWireSize)
    throw std::invalid_argument("packet: header buffer too small");
  out[0] = static_cast<std::uint8_t>(header.type);
  out[1] = header.incarnation;
  put_u32_at(out, 2, header.tg);
  put_u16_at(out, 6, header.index);
  put_u16_at(out, 8, header.k);
  put_u16_at(out, 10, header.n);
  put_u16_at(out, 12, header.count);
  put_u32_at(out, 14, header.seq);
  put_u32_at(out, 18, header.payload_len);
}

void seal_frame(std::span<std::uint8_t> frame) {
  if (frame.size() < kHeaderWireSize + kCrcWireSize)
    throw std::invalid_argument("packet: frame too small to seal");
  const std::size_t body = frame.size() - kCrcWireSize;
  if (get_u32(frame, 18) != body - kHeaderWireSize)
    throw std::invalid_argument("packet: frame size != header payload_len");
  put_u32_at(frame, body, crc32(frame.subspan(0, body)));
}

std::size_t serialize_into(const Packet& packet, std::span<std::uint8_t> out) {
  const std::size_t total = wire_size(packet.payload.size());
  if (out.size() < total)
    throw std::invalid_argument("packet: serialize buffer too small");
  PacketHeader hdr = packet.header;
  hdr.payload_len = static_cast<std::uint32_t>(packet.payload.size());
  write_header(hdr, out);
  if (!packet.payload.empty())  // POLL/NAK/end markers carry no payload
    std::memcpy(out.data() + kHeaderWireSize, packet.payload.data(),
                packet.payload.size());
  seal_frame(out.subspan(0, total));
  return total;
}

std::vector<std::uint8_t> serialize(const Packet& packet) {
  std::vector<std::uint8_t> out(wire_size(packet.payload.size()));
  serialize_into(packet, out);
  return out;
}

PacketView deserialize_view(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderWireSize + kCrcWireSize)
    throw std::invalid_argument("packet: truncated header");
  const std::size_t body = bytes.size() - kCrcWireSize;
  const std::uint32_t stored = get_u32(bytes, body);
  if (crc32(bytes.subspan(0, body)) != stored)
    throw std::invalid_argument("packet: CRC mismatch");
  bytes = bytes.subspan(0, body);
  PacketView p;
  const std::uint8_t type = bytes[0];
  if (type > static_cast<std::uint8_t>(PacketType::kNak))
    throw std::invalid_argument("packet: unknown type");
  p.header.type = static_cast<PacketType>(type);
  p.header.incarnation = bytes[1];
  p.header.tg = get_u32(bytes, 2);
  p.header.index = get_u16(bytes, 6);
  p.header.k = get_u16(bytes, 8);
  p.header.n = get_u16(bytes, 10);
  p.header.count = get_u16(bytes, 12);
  p.header.seq = get_u32(bytes, 14);
  p.header.payload_len = get_u32(bytes, 18);
  if (bytes.size() != kHeaderWireSize + p.header.payload_len)
    throw std::invalid_argument("packet: payload length mismatch");
  // Semantic validation: a CRC-valid but inconsistent block address must
  // not reach protocol state (it would index decoder arrays out of range
  // or feed the erasure code a shard it cannot hold).  The (k, index, n)
  // invariants only bind the block-addressed types; POLL/NAK reuse these
  // fields for round bookkeeping.
  if (p.header.type == PacketType::kData ||
      p.header.type == PacketType::kParity) {
    if (p.header.k == 0 || p.header.k > p.header.n)
      throw std::invalid_argument("packet: invalid block shape (k > n)");
    if (p.header.index >= p.header.n)
      throw std::invalid_argument("packet: block index out of range");
    if (p.header.type == PacketType::kData && p.header.index >= p.header.k)
      throw std::invalid_argument("packet: DATA index in parity range");
    if (p.header.type == PacketType::kParity && p.header.index < p.header.k)
      throw std::invalid_argument("packet: PARITY index in data range");
  }
  p.payload = bytes.subspan(kHeaderWireSize);
  return p;
}

Packet deserialize(std::span<const std::uint8_t> bytes) {
  const PacketView view = deserialize_view(bytes);
  Packet p;
  p.header = view.header;
  p.payload.assign(view.payload.begin(), view.payload.end());
  return p;
}

}  // namespace pbl::fec
