#include "fec/packet.hpp"

#include <cstring>
#include <stdexcept>

#include "util/crc32.hpp"

namespace pbl::fec {

std::string to_string(PacketType t) {
  switch (t) {
    case PacketType::kData: return "DATA";
    case PacketType::kParity: return "PARITY";
    case PacketType::kPoll: return "POLL";
    case PacketType::kNak: return "NAK";
  }
  return "UNKNOWN";
}

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
std::uint16_t get_u16(std::span<const std::uint8_t> b, std::size_t off) {
  return static_cast<std::uint16_t>(b[off] | (b[off + 1] << 8));
}
std::uint32_t get_u32(std::span<const std::uint8_t> b, std::size_t off) {
  return static_cast<std::uint32_t>(b[off]) |
         (static_cast<std::uint32_t>(b[off + 1]) << 8) |
         (static_cast<std::uint32_t>(b[off + 2]) << 16) |
         (static_cast<std::uint32_t>(b[off + 3]) << 24);
}

}  // namespace

std::vector<std::uint8_t> serialize(const Packet& packet) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderWireSize + packet.payload.size());
  out.push_back(static_cast<std::uint8_t>(packet.header.type));
  out.push_back(packet.header.incarnation);
  put_u32(out, packet.header.tg);
  put_u16(out, packet.header.index);
  put_u16(out, packet.header.k);
  put_u16(out, packet.header.n);
  put_u16(out, packet.header.count);
  put_u32(out, packet.header.seq);
  put_u32(out, static_cast<std::uint32_t>(packet.payload.size()));
  out.insert(out.end(), packet.payload.begin(), packet.payload.end());
  put_u32(out, crc32(out));
  return out;
}

Packet deserialize(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderWireSize + kCrcWireSize)
    throw std::invalid_argument("packet: truncated header");
  const std::size_t body = bytes.size() - kCrcWireSize;
  const std::uint32_t stored = get_u32(bytes, body);
  if (crc32(bytes.subspan(0, body)) != stored)
    throw std::invalid_argument("packet: CRC mismatch");
  bytes = bytes.subspan(0, body);
  Packet p;
  const std::uint8_t type = bytes[0];
  if (type > static_cast<std::uint8_t>(PacketType::kNak))
    throw std::invalid_argument("packet: unknown type");
  p.header.type = static_cast<PacketType>(type);
  p.header.incarnation = bytes[1];
  p.header.tg = get_u32(bytes, 2);
  p.header.index = get_u16(bytes, 6);
  p.header.k = get_u16(bytes, 8);
  p.header.n = get_u16(bytes, 10);
  p.header.count = get_u16(bytes, 12);
  p.header.seq = get_u32(bytes, 14);
  p.header.payload_len = get_u32(bytes, 18);
  if (bytes.size() != kHeaderWireSize + p.header.payload_len)
    throw std::invalid_argument("packet: payload length mismatch");
  // Semantic validation: a CRC-valid but inconsistent block address must
  // not reach protocol state (it would index decoder arrays out of range
  // or feed the erasure code a shard it cannot hold).  The (k, index, n)
  // invariants only bind the block-addressed types; POLL/NAK reuse these
  // fields for round bookkeeping.
  if (p.header.type == PacketType::kData ||
      p.header.type == PacketType::kParity) {
    if (p.header.k == 0 || p.header.k > p.header.n)
      throw std::invalid_argument("packet: invalid block shape (k > n)");
    if (p.header.index >= p.header.n)
      throw std::invalid_argument("packet: block index out of range");
    if (p.header.type == PacketType::kData && p.header.index >= p.header.k)
      throw std::invalid_argument("packet: DATA index in parity range");
    if (p.header.type == PacketType::kParity && p.header.index < p.header.k)
      throw std::invalid_argument("packet: PARITY index in data range");
  }
  p.payload.assign(bytes.begin() + kHeaderWireSize, bytes.end());
  return p;
}

}  // namespace pbl::fec
