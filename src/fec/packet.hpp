// Wire-level packet representation shared by the simulated channel and the
// UDP transport.
//
// A transmission group (TG) of k data packets plus its h = n - k parities
// forms an FEC block (paper, Section 2.1).  DATA and PARITY packets carry
// (tg, index) addressing within the block: index < k for data, index in
// [k, n) for parity.  POLL and NAK implement protocol NP's feedback
// (Section 5.1): POLL(i, s) solicits feedback after s packets were sent
// for TG i; NAK(i, l) reports that l more packets are needed.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pbl::fec {

enum class PacketType : std::uint8_t {
  kData = 0,
  kParity = 1,
  kPoll = 2,
  kNak = 3,
};

std::string to_string(PacketType t);

struct PacketHeader {
  PacketType type = PacketType::kData;
  /// Sender incarnation: bumped each time a crashed sender restarts from
  /// its journal (core/session_state.hpp).  Receivers remember the
  /// highest incarnation they have seen and drop packets from earlier
  /// ones — a dead incarnation's in-flight traffic must not pollute
  /// rounds of its successor.  Incarnation 0 is the first life of a
  /// session, so the field is wire-compatible with the old always-zero
  /// reserved byte.
  std::uint8_t incarnation = 0;
  std::uint32_t tg = 0;      ///< transmission-group id
  std::uint16_t index = 0;   ///< position in the FEC block (data: <k, parity: [k,n))
  std::uint16_t k = 0;       ///< TG size
  std::uint16_t n = 0;       ///< FEC block size
  std::uint16_t count = 0;   ///< POLL: packets sent this round (s); NAK: packets needed (l)
  std::uint32_t seq = 0;     ///< global send sequence number
  std::uint32_t payload_len = 0;

  bool operator==(const PacketHeader&) const = default;
};

struct Packet {
  PacketHeader header;
  std::vector<std::uint8_t> payload;

  bool operator==(const Packet&) const = default;
};

inline constexpr std::size_t kHeaderWireSize = 22;
inline constexpr std::size_t kCrcWireSize = 4;

/// Wire size of a frame carrying `payload_len` payload bytes.
constexpr std::size_t wire_size(std::size_t payload_len) noexcept {
  return kHeaderWireSize + payload_len + kCrcWireSize;
}

/// Non-owning parse result: the header plus a span into the input buffer.
/// The payload view aliases the bytes handed to deserialize_view and is
/// only valid while they live — the zero-copy receive path's contract.
struct PacketView {
  PacketHeader header;
  std::span<const std::uint8_t> payload;
};

/// Writes the fixed 22-byte wire header into out[0, kHeaderWireSize).
/// The payload bytes and the CRC trailer are the caller's job (see
/// seal_frame) — this is the primitive the zero-copy encode path uses to
/// pre-frame arena buffers before the GF kernels write the payload in
/// place.  Throws std::invalid_argument if out is too small.
void write_header(const PacketHeader& header, std::span<std::uint8_t> out);

/// Computes the CRC-32 over frame[0, size-4) and writes it into the last
/// four bytes.  `frame` must be exactly wire_size(payload_len) for the
/// payload_len already written in its header.  The final step of in-place
/// framing: write_header + payload bytes + seal_frame ==
/// serialize(packet), byte for byte.
void seal_frame(std::span<std::uint8_t> frame);

/// Serialises the packet into a caller-provided buffer (no allocation);
/// returns the bytes written (wire_size(payload.size())).  Throws
/// std::invalid_argument if out is too small.
std::size_t serialize_into(const Packet& packet, std::span<std::uint8_t> out);

/// Serialises header + payload + CRC-32 trailer into a flat byte buffer
/// (fixed-layout little-endian; the UDP transport's wire format).
std::vector<std::uint8_t> serialize(const Packet& packet);

/// Non-owning variant of deserialize(): same validation, same throwing
/// contract, but the payload is returned as a view into `bytes` instead
/// of a copy.  The batched receive path parses frames in place with this
/// and copies only what protocol state actually keeps.
PacketView deserialize_view(std::span<const std::uint8_t> bytes);

/// Parses a buffer produced by serialize(); throws std::invalid_argument
/// on truncated, inconsistent or corrupted (CRC mismatch) input.  The
/// erasure code can only repair MISSING packets, so corruption must be
/// turned into loss here.  Beyond the CRC, DATA/PARITY headers are
/// validated semantically (k >= 1, k <= n, index < n, DATA index < k,
/// PARITY index >= k): a CRC-valid but inconsistent block address never
/// reaches protocol state.  Incarnation filtering is protocol policy,
/// not framing: any incarnation parses.
Packet deserialize(std::span<const std::uint8_t> bytes);

}  // namespace pbl::fec
