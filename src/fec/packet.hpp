// Wire-level packet representation shared by the simulated channel and the
// UDP transport.
//
// A transmission group (TG) of k data packets plus its h = n - k parities
// forms an FEC block (paper, Section 2.1).  DATA and PARITY packets carry
// (tg, index) addressing within the block: index < k for data, index in
// [k, n) for parity.  POLL and NAK implement protocol NP's feedback
// (Section 5.1): POLL(i, s) solicits feedback after s packets were sent
// for TG i; NAK(i, l) reports that l more packets are needed.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pbl::fec {

enum class PacketType : std::uint8_t {
  kData = 0,
  kParity = 1,
  kPoll = 2,
  kNak = 3,
};

std::string to_string(PacketType t);

struct PacketHeader {
  PacketType type = PacketType::kData;
  /// Sender incarnation: bumped each time a crashed sender restarts from
  /// its journal (core/session_state.hpp).  Receivers remember the
  /// highest incarnation they have seen and drop packets from earlier
  /// ones — a dead incarnation's in-flight traffic must not pollute
  /// rounds of its successor.  Incarnation 0 is the first life of a
  /// session, so the field is wire-compatible with the old always-zero
  /// reserved byte.
  std::uint8_t incarnation = 0;
  std::uint32_t tg = 0;      ///< transmission-group id
  std::uint16_t index = 0;   ///< position in the FEC block (data: <k, parity: [k,n))
  std::uint16_t k = 0;       ///< TG size
  std::uint16_t n = 0;       ///< FEC block size
  std::uint16_t count = 0;   ///< POLL: packets sent this round (s); NAK: packets needed (l)
  std::uint32_t seq = 0;     ///< global send sequence number
  std::uint32_t payload_len = 0;

  bool operator==(const PacketHeader&) const = default;
};

struct Packet {
  PacketHeader header;
  std::vector<std::uint8_t> payload;

  bool operator==(const Packet&) const = default;
};

inline constexpr std::size_t kHeaderWireSize = 22;
inline constexpr std::size_t kCrcWireSize = 4;

/// Serialises header + payload + CRC-32 trailer into a flat byte buffer
/// (fixed-layout little-endian; the UDP transport's wire format).
std::vector<std::uint8_t> serialize(const Packet& packet);

/// Parses a buffer produced by serialize(); throws std::invalid_argument
/// on truncated, inconsistent or corrupted (CRC mismatch) input.  The
/// erasure code can only repair MISSING packets, so corruption must be
/// turned into loss here.  Beyond the CRC, DATA/PARITY headers are
/// validated semantically (k >= 1, k <= n, index < n, DATA index < k,
/// PARITY index >= k): a CRC-valid but inconsistent block address never
/// reaches protocol state.  Incarnation filtering is protocol policy,
/// not framing: any incarnation parses.
Packet deserialize(std::span<const std::uint8_t> bytes);

}  // namespace pbl::fec
