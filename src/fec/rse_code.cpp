#include "fec/rse_code.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace pbl::fec {

RseCode::RseCode(std::size_t k, std::size_t n)
    : k_(k), n_(n), gf_(gf::Gf256::instance()),
      generator_(gf::Matrix::systematic_generator(gf_.field(), n, k)) {
  if (k == 0 || k > n) throw std::invalid_argument("RseCode: need 0 < k <= n");
  if (n > 255)
    throw std::invalid_argument("RseCode: GF(2^8) limits the block to n <= 255");
}

namespace {

void check_equal_lengths(std::span<const std::span<const std::uint8_t>> data) {
  for (std::size_t i = 1; i < data.size(); ++i)
    if (data[i].size() != data[0].size())
      throw std::invalid_argument("RseCode: packets must have equal length");
}

}  // namespace

void RseCode::encode_parity(std::size_t j,
                            std::span<const std::span<const std::uint8_t>> data,
                            std::span<std::uint8_t> out) const {
  if (j >= h()) throw std::invalid_argument("RseCode: parity index out of range");
  if (data.size() != k_) throw std::invalid_argument("RseCode: need k data packets");
  check_equal_lengths(data);
  if (!data.empty() && out.size() != data[0].size())
    throw std::invalid_argument("RseCode: output length mismatch");
  // The first contribution assigns instead of accumulating (mul_assign
  // with c == 0 zero-fills), saving a clear pass over the output.
  const auto row = generator_.row(k_ + j);
  gf_.mul_assign(out.data(), data[0].data(), out.size(),
                 static_cast<std::uint8_t>(row[0]));
  for (std::size_t i = 1; i < k_; ++i) {
    gf_.mul_add(out.data(), data[i].data(), out.size(),
                static_cast<std::uint8_t>(row[i]));
  }
}

void RseCode::encode(std::span<const std::span<const std::uint8_t>> data,
                     std::span<const std::span<std::uint8_t>> parity) const {
  if (parity.size() != h())
    throw std::invalid_argument("RseCode: need h parity buffers");
  for (std::size_t j = 0; j < h(); ++j) encode_parity(j, data, parity[j]);
}

void RseCode::decode(std::span<const Shard> received,
                     std::span<const std::span<std::uint8_t>> out) const {
  if (out.size() != k_) throw std::invalid_argument("RseCode: need k output buffers");
  if (received.size() < k_)
    throw std::invalid_argument("RseCode: need at least k shards to decode");

  // Select k shards, preferring data shards (they copy through for free).
  std::vector<const Shard*> chosen;
  chosen.reserve(k_);
  std::vector<bool> index_seen(n_, false);
  for (const auto& s : received) {
    if (s.index >= n_) throw std::invalid_argument("RseCode: shard index out of range");
    if (index_seen[s.index]) throw std::invalid_argument("RseCode: duplicate shard");
    index_seen[s.index] = true;
  }
  for (const auto& s : received)
    if (s.index < k_ && chosen.size() < k_) chosen.push_back(&s);
  for (const auto& s : received)
    if (s.index >= k_ && chosen.size() < k_) chosen.push_back(&s);

  const std::size_t len = chosen[0]->data.size();
  for (const auto* s : chosen)
    if (s->data.size() != len)
      throw std::invalid_argument("RseCode: packets must have equal length");
  for (const auto& o : out)
    if (o.size() != len)
      throw std::invalid_argument("RseCode: output length mismatch");

  // Which data packets are already present?
  std::vector<bool> have_data(k_, false);
  for (const auto* s : chosen)
    if (s->index < k_) {
      have_data[s->index] = true;
      auto& dst = out[s->index];
      if (dst.data() != s->data.data())
        std::memcpy(dst.data(), s->data.data(), len);
    }

  if (std::all_of(have_data.begin(), have_data.end(), [](bool b) { return b; }))
    return;  // nothing lost: no decoding required (paper, Section 2.1)

  // Invert the k x k decode matrix formed by the chosen generator rows.
  std::vector<std::size_t> rows(k_);
  for (std::size_t i = 0; i < k_; ++i) rows[i] = chosen[i]->index;
  const gf::Matrix dec =
      generator_.select_rows(rows).inverted();  // d = dec * y

  // Reconstruct only the missing data packets: d_i = sum_j dec[i][j] y_j.
  for (std::size_t i = 0; i < k_; ++i) {
    if (have_data[i]) continue;
    auto dst = out[i];
    gf_.mul_assign(dst.data(), chosen[0]->data.data(), len,
                   static_cast<std::uint8_t>(dec.at(i, 0)));
    for (std::size_t j = 1; j < k_; ++j) {
      gf_.mul_add(dst.data(), chosen[j]->data.data(), len,
                  static_cast<std::uint8_t>(dec.at(i, j)));
    }
  }
}

}  // namespace pbl::fec
