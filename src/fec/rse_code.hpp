// Systematic Reed-Solomon erasure (RSE) codec over GF(2^8), following
// Rizzo '97 / McAuley '90 as referenced by the paper (Section 2).
//
// Encoding: c = G * d where G is the n x k systematic generator (identity
// on top).  The first k coded packets ARE the data packets, so receivers
// that lose nothing never decode (paper, Section 2.1).  Packets of P bytes
// are coded as P parallel GF(2^8) streams (Section 2.2, "multiple parallel
// RSE encodings").
//
// Decoding: any k of the n packets suffice.  The decoder inverts the k x k
// submatrix of G given by the surviving indices and reconstructs only the
// missing data packets, so the work is proportional to the number of
// losses l (Section 2.1).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "gf/gf.hpp"
#include "gf/matrix.hpp"

namespace pbl::fec {

/// A received fragment of an FEC block: its position and its bytes.
struct Shard {
  std::size_t index = 0;                 ///< position in [0, n)
  std::span<const std::uint8_t> data{};  ///< packet contents, all equal length
};

class RseCode {
 public:
  /// Creates a (k, n) systematic code; requires 0 < k <= n <= 255.
  RseCode(std::size_t k, std::size_t n);

  std::size_t k() const noexcept { return k_; }
  std::size_t n() const noexcept { return n_; }
  std::size_t h() const noexcept { return n_ - k_; }

  /// Computes parity packet j (block index k + j) from the k data packets.
  /// All spans must have the same length; `out` is overwritten.
  void encode_parity(std::size_t j,
                     std::span<const std::span<const std::uint8_t>> data,
                     std::span<std::uint8_t> out) const;

  /// Computes all h parities.  `parity[j]` receives parity j.
  void encode(std::span<const std::span<const std::uint8_t>> data,
              std::span<const std::span<std::uint8_t>> parity) const;

  /// Reconstructs the k data packets from any >= k received shards with
  /// distinct indices.  `out[i]` receives data packet i (each of the k
  /// spans must be packet-length).  Shards present among the received
  /// data packets are copied; only missing ones are decoded.
  /// Throws std::invalid_argument on insufficient/duplicate shards.
  void decode(std::span<const Shard> received,
              std::span<const std::span<std::uint8_t>> out) const;

  /// Generator matrix row for block index i (size k); exposed for tests.
  std::span<const gf::Sym> generator_row(std::size_t i) const {
    return generator_.row(i);
  }

 private:
  std::size_t k_;
  std::size_t n_;
  const gf::Gf256& gf_;
  gf::Matrix generator_;  // n x k, top k x k identity
};

}  // namespace pbl::fec
