#include "fec/wide_code.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "gf/kernels.hpp"

namespace pbl::fec {

RseCodeWide::RseCodeWide(std::size_t k, std::size_t n)
    : k_(k), n_(n), field_(16),
      generator_(gf::Matrix::systematic_generator(field_, n, k)) {
  if (k == 0 || k > n) throw std::invalid_argument("RseCodeWide: 0 < k <= n");
  if (n > 65535)
    throw std::invalid_argument("RseCodeWide: GF(2^16) limits n <= 65535");
}

namespace {
void check_even_equal(std::span<const std::span<const std::uint8_t>> data) {
  for (const auto& d : data) {
    if (d.size() % 2 != 0)
      throw std::invalid_argument(
          "RseCodeWide: packet length must be a multiple of 2");
    if (d.size() != data[0].size())
      throw std::invalid_argument("RseCodeWide: packets must have equal length");
  }
}
}  // namespace

void RseCodeWide::encode_parity(
    std::size_t j, std::span<const std::span<const std::uint8_t>> data,
    std::span<std::uint8_t> out) const {
  if (j >= h()) throw std::invalid_argument("RseCodeWide: parity index");
  if (data.size() != k_)
    throw std::invalid_argument("RseCodeWide: need k data packets");
  check_even_equal(data);
  if (!data.empty() && out.size() != data[0].size())
    throw std::invalid_argument("RseCodeWide: output length mismatch");
  const auto row = generator_.row(k_ + j);
  gf::kern::mul_assign_u16(field_, out.data(), data[0].data(), out.size(),
                           row[0]);
  for (std::size_t i = 1; i < k_; ++i)
    gf::kern::mul_add_u16(field_, out.data(), data[i].data(), out.size(),
                          row[i]);
}

void RseCodeWide::decode(std::span<const WideShard> received,
                         std::span<const std::span<std::uint8_t>> out) const {
  if (out.size() != k_)
    throw std::invalid_argument("RseCodeWide: need k output buffers");
  if (received.size() < k_)
    throw std::invalid_argument("RseCodeWide: need at least k shards");

  std::vector<bool> index_seen(n_, false);
  for (const auto& s : received) {
    if (s.index >= n_)
      throw std::invalid_argument("RseCodeWide: shard index out of range");
    if (index_seen[s.index])
      throw std::invalid_argument("RseCodeWide: duplicate shard");
    index_seen[s.index] = true;
    if (s.data.size() % 2 != 0)
      throw std::invalid_argument(
          "RseCodeWide: packet length must be a multiple of 2");
  }

  std::vector<const WideShard*> chosen;
  chosen.reserve(k_);
  for (const auto& s : received)
    if (s.index < k_ && chosen.size() < k_) chosen.push_back(&s);
  for (const auto& s : received)
    if (s.index >= k_ && chosen.size() < k_) chosen.push_back(&s);

  const std::size_t len = chosen[0]->data.size();
  for (const auto* s : chosen)
    if (s->data.size() != len)
      throw std::invalid_argument("RseCodeWide: packets must have equal length");
  for (const auto& o : out)
    if (o.size() != len)
      throw std::invalid_argument("RseCodeWide: output length mismatch");

  std::vector<bool> have_data(k_, false);
  for (const auto* s : chosen) {
    if (s->index >= k_) continue;
    have_data[s->index] = true;
    auto dst = out[s->index];
    if (dst.data() != s->data.data())
      std::memcpy(dst.data(), s->data.data(), len);
  }
  if (std::all_of(have_data.begin(), have_data.end(), [](bool b) { return b; }))
    return;

  std::vector<std::size_t> rows(k_);
  for (std::size_t i = 0; i < k_; ++i) rows[i] = chosen[i]->index;
  const gf::Matrix dec = generator_.select_rows(rows).inverted();

  for (std::size_t i = 0; i < k_; ++i) {
    if (have_data[i]) continue;
    auto dst = out[i];
    gf::kern::mul_assign_u16(field_, dst.data(), chosen[0]->data.data(), len,
                             dec.at(i, 0));
    for (std::size_t j = 1; j < k_; ++j)
      gf::kern::mul_add_u16(field_, dst.data(), chosen[j]->data.data(), len,
                            dec.at(i, j));
  }
}

}  // namespace pbl::fec
