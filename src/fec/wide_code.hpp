// Wide-symbol RSE codec over GF(2^m) for FEC blocks larger than the
// GF(2^8) limit of n <= 255 (Section 2.2: "the symbol size m must be
// picked sufficiently large such that n < 2^m").
//
// With m = 16, blocks up to n = 65535 are possible: a k = 1000 group with
// hundreds of parities, which the narrow codec cannot express.  Region
// ops use the split-nibble kernels of gf/kernels.hpp (four 16-entry
// product tables built per coefficient) — still slower than the GF(2^8)
// SIMD path, matching the paper's observation that larger symbols are
// harder to implement efficiently.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "gf/gf.hpp"
#include "gf/matrix.hpp"

namespace pbl::fec {

/// A received fragment of a wide block (same shape as fec::Shard).
struct WideShard {
  std::size_t index = 0;
  std::span<const std::uint8_t> data{};  ///< length must be a multiple of 2
};

class RseCodeWide {
 public:
  /// (k, n) systematic code over GF(2^16); 0 < k <= n <= 65535.
  RseCodeWide(std::size_t k, std::size_t n);

  std::size_t k() const noexcept { return k_; }
  std::size_t n() const noexcept { return n_; }
  std::size_t h() const noexcept { return n_ - k_; }

  /// Parity j from the k data packets (equal even lengths; out overwritten).
  void encode_parity(std::size_t j,
                     std::span<const std::span<const std::uint8_t>> data,
                     std::span<std::uint8_t> out) const;

  /// Reconstructs the k data packets from >= k distinct shards.
  void decode(std::span<const WideShard> received,
              std::span<const std::span<std::uint8_t>> out) const;

 private:
  std::size_t k_;
  std::size_t n_;
  gf::GaloisField field_;
  gf::Matrix generator_;
};

}  // namespace pbl::fec
