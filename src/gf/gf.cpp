#include "gf/gf.hpp"

#include <stdexcept>

#include "gf/kernels.hpp"

namespace pbl::gf {

std::uint32_t primitive_polynomial(unsigned m) {
  // Standard primitive polynomials (lowest-weight convention); index = m.
  static constexpr std::uint32_t polys[] = {
      0,       0,       0x7,     0xB,     0x13,    0x25,   0x43,
      0x89,    0x11D,   0x211,   0x409,   0x805,   0x1053, 0x201B,
      0x4443,  0x8003,  0x1100B,
  };
  if (m < 2 || m > 16) throw std::invalid_argument("GF(2^m): m must be in [2,16]");
  return polys[m];
}

GaloisField::GaloisField(unsigned m)
    : m_(m), size_(Sym{1} << m), exp_(std::size_t{2} * (Sym{1} << m)),
      log_(Sym{1} << m) {
  const std::uint32_t poly = primitive_polynomial(m);
  Sym x = 1;
  for (Sym i = 0; i < order(); ++i) {
    exp_[i] = x;
    log_[x] = i;
    x <<= 1;
    if (x & size_) x ^= poly;
  }
  if (x != 1) throw std::logic_error("GF table generation: alpha is not primitive");
  // Duplicate the exp table so mul() can index log a + log b (< 2*order)
  // without a modulo.
  for (std::size_t i = order(); i < exp_.size(); ++i)
    exp_[i] = exp_[i - order()];
  log_[0] = 0;  // unused sentinel; mul() short-circuits on zero
}

Sym GaloisField::div(Sym a, Sym b) const {
  if (b == 0) throw std::domain_error("GF division by zero");
  if (a == 0) return 0;
  return exp_[log_[a] + order() - log_[b]];
}

Sym GaloisField::inv(Sym a) const {
  if (a == 0) throw std::domain_error("GF inverse of zero");
  return exp_[order() - log_[a]];
}

Sym GaloisField::poly_eval(std::span<const Sym> coeffs, Sym x) const noexcept {
  Sym acc = 0;
  for (std::size_t i = coeffs.size(); i-- > 0;) acc = add(mul(acc, x), coeffs[i]);
  return acc;
}

const Gf256& Gf256::instance() {
  static const Gf256 gf;
  return gf;
}

Gf256::Gf256() : field_(8) {
  for (unsigned a = 0; a < 256; ++a)
    for (unsigned b = 0; b < 256; ++b)
      mul_[a][b] = static_cast<std::uint8_t>(field_.mul(a, b));
}

std::uint8_t Gf256::div(std::uint8_t a, std::uint8_t b) const {
  return static_cast<std::uint8_t>(field_.div(a, b));
}

std::uint8_t Gf256::inv(std::uint8_t a) const {
  return static_cast<std::uint8_t>(field_.inv(a));
}

void Gf256::mul_add(std::uint8_t* dst, const std::uint8_t* src,
                    std::size_t len, std::uint8_t c) const noexcept {
  kern::active_kernel().mul_add(dst, src, len, c);
}

void Gf256::mul_assign(std::uint8_t* dst, const std::uint8_t* src,
                       std::size_t len, std::uint8_t c) const noexcept {
  kern::active_kernel().mul_assign(dst, src, len, c);
}

const char* Gf256::kernel_name() noexcept {
  return kern::active_kernel().name;
}

}  // namespace pbl::gf
