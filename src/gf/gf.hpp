// Galois-field arithmetic GF(2^m) for Reed-Solomon erasure coding.
//
// The paper (Section 2) codes over GF(2^m) with symbol size m = 8 following
// McAuley [12] and Rizzo [14]: packets of P bits are coded as S = P/m
// parallel streams of m-bit symbols.  This module provides:
//   * GaloisField    — generic GF(2^m), 2 <= m <= 16, log/antilog tables
//   * Gf256          — specialised GF(2^8) with a full 64 KiB product table
//                      and fused multiply-add over byte buffers (the codec
//                      hot loop)
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace pbl::gf {

using Sym = std::uint32_t;  ///< field element; valid values < 2^m

/// Returns the conventional primitive polynomial for GF(2^m) (bit i of the
/// result is the coefficient of x^i, including the leading x^m term).
std::uint32_t primitive_polynomial(unsigned m);

/// Generic GF(2^m) built from exp/log tables at construction time.
///
/// Addition is XOR.  Multiplication/division go through the discrete
/// logarithm with respect to the primitive element alpha = x.
class GaloisField {
 public:
  explicit GaloisField(unsigned m);

  unsigned m() const noexcept { return m_; }
  /// Number of field elements, 2^m.
  Sym size() const noexcept { return size_; }
  /// Size of the multiplicative group, 2^m - 1.
  Sym order() const noexcept { return size_ - 1; }

  static Sym add(Sym a, Sym b) noexcept { return a ^ b; }
  static Sym sub(Sym a, Sym b) noexcept { return a ^ b; }

  Sym mul(Sym a, Sym b) const noexcept {
    if (a == 0 || b == 0) return 0;
    return exp_[log_[a] + log_[b]];
  }

  Sym div(Sym a, Sym b) const;  ///< throws std::domain_error on b == 0
  Sym inv(Sym a) const;         ///< throws std::domain_error on a == 0

  /// alpha^i for any integer i >= 0 (reduced mod the group order).
  Sym exp(std::uint64_t i) const noexcept {
    return exp_[static_cast<std::size_t>(i % order())];
  }
  /// Discrete log; precondition a != 0.
  Sym log(Sym a) const noexcept { return log_[a]; }

  /// a^e by repeated squaring through the log table.
  Sym pow(Sym a, std::uint64_t e) const noexcept {
    if (a == 0) return e == 0 ? 1 : 0;
    return exp_[(static_cast<std::uint64_t>(log_[a]) * (e % order())) % order()];
  }

  /// Horner evaluation of F(X) = c[0] + c[1] X + ... + c[n-1] X^(n-1),
  /// the polynomial of Eq. (1) in the paper.
  Sym poly_eval(std::span<const Sym> coeffs, Sym x) const noexcept;

 private:
  unsigned m_;
  Sym size_;
  std::vector<Sym> exp_;  // size 2*(2^m), doubled to avoid a mod in mul()
  std::vector<Sym> log_;  // size 2^m
};

/// Specialised GF(2^8) arithmetic with precomputed 256x256 product table.
///
/// Thread-safe after first use (tables are built once, immutably).
class Gf256 {
 public:
  static const Gf256& instance();

  static std::uint8_t add(std::uint8_t a, std::uint8_t b) noexcept {
    return a ^ b;
  }
  std::uint8_t mul(std::uint8_t a, std::uint8_t b) const noexcept {
    return mul_[a][b];
  }
  std::uint8_t div(std::uint8_t a, std::uint8_t b) const;
  std::uint8_t inv(std::uint8_t a) const;
  std::uint8_t exp(std::uint64_t i) const noexcept {
    return static_cast<std::uint8_t>(field_.exp(i));
  }

  /// dst[i] ^= c * src[i] for i in [0, len): the encode/decode hot loop.
  /// Routed through the SIMD kernel layer (gf/kernels.hpp); the active
  /// kernel is picked at startup by CPU dispatch, overridable with the
  /// PBL_GF_KERNEL environment variable.
  void mul_add(std::uint8_t* dst, const std::uint8_t* src, std::size_t len,
               std::uint8_t c) const noexcept;

  /// dst[i] = c * src[i].
  void mul_assign(std::uint8_t* dst, const std::uint8_t* src, std::size_t len,
                  std::uint8_t c) const noexcept;

  /// Name of the kernel region ops currently dispatch to ("scalar",
  /// "ssse3", "avx2", "neon").
  static const char* kernel_name() noexcept;

  const GaloisField& field() const noexcept { return field_; }

 private:
  Gf256();
  GaloisField field_;
  std::array<std::array<std::uint8_t, 256>, 256> mul_{};
};

}  // namespace pbl::gf
