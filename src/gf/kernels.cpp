// Portable scalar kernel, the GF(2^16) region ops, and the runtime
// dispatcher.  ISA-specific kernels live in their own translation units
// (kernels_ssse3.cpp, kernels_avx2.cpp, kernels_neon.cpp) so each can be
// compiled with exactly the flags it needs; this file is built with the
// project-default flags only.
#include "gf/kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "gf/kernels_tables.hpp"

namespace pbl::gf::kern {

namespace {

// ---------------------------------------------------------------- scalar

void scalar_mul_add(std::uint8_t* dst, const std::uint8_t* src,
                    std::size_t len, std::uint8_t c) {
  if (c == 0) return;
  if (c == 1) {
    for (std::size_t i = 0; i < len; ++i) dst[i] ^= src[i];
    return;
  }
  detail::mul_add_span(dst, src, len, detail::kNibble.lo[c],
                       detail::kNibble.hi[c]);
}

void scalar_mul_assign(std::uint8_t* dst, const std::uint8_t* src,
                       std::size_t len, std::uint8_t c) {
  if (c == 0) {
    std::memset(dst, 0, len);
    return;
  }
  if (c == 1) {
    if (dst != src) std::memmove(dst, src, len);
    return;
  }
  detail::mul_assign_span(dst, src, len, detail::kNibble.lo[c],
                          detail::kNibble.hi[c]);
}

constexpr Kernel kScalarKernel{"scalar", scalar_mul_add, scalar_mul_assign};

}  // namespace

namespace {

bool cpu_supports(const Kernel& k) {
  (void)k;
#if defined(PBL_GF_HAVE_X86_KERNELS) && (defined(__GNUC__) || defined(__clang__))
  if (&k == &detail::kSsse3Kernel) return __builtin_cpu_supports("ssse3");
  if (&k == &detail::kAvx2Kernel) return __builtin_cpu_supports("avx2");
#endif
  // scalar always runs; NEON is architecturally guaranteed on aarch64.
  return true;
}

}  // namespace

std::span<const Kernel* const> available_kernels() {
  // Ascending preference; built once (thread-safe magic static).
  static const auto list = [] {
    static const Kernel* slots[4];
    std::size_t count = 0;
    slots[count++] = &kScalarKernel;
#if defined(PBL_GF_HAVE_X86_KERNELS)
    if (cpu_supports(detail::kSsse3Kernel)) slots[count++] = &detail::kSsse3Kernel;
    if (cpu_supports(detail::kAvx2Kernel)) slots[count++] = &detail::kAvx2Kernel;
#endif
#if defined(PBL_GF_HAVE_NEON_KERNEL)
    if (cpu_supports(detail::kNeonKernel)) slots[count++] = &detail::kNeonKernel;
#endif
    return std::span<const Kernel* const>(slots, count);
  }();
  return list;
}

const Kernel* kernel_by_name(std::string_view name) {
  for (const Kernel* k : available_kernels())
    if (name == k->name) return k;
  return nullptr;
}

const Kernel* resolve_kernel(const char* request) {
  const auto all = available_kernels();
  const Kernel* best = all.back();  // highest preference
  if (request == nullptr || std::string_view(request) == "auto") return best;
  if (const Kernel* k = kernel_by_name(request)) return k;
  return best;  // unknown or unavailable: fall back to auto
}

namespace {
std::atomic<const Kernel*> g_active{nullptr};
}  // namespace

const Kernel& active_kernel() {
  const Kernel* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) {
    // Benign race: concurrent first calls resolve to the same kernel.
    k = resolve_kernel(std::getenv("PBL_GF_KERNEL"));
    g_active.store(k, std::memory_order_release);
  }
  return *k;
}

ScopedKernelOverride::ScopedKernelOverride(const Kernel& k)
    : previous_(&active_kernel()) {
  g_active.store(&k, std::memory_order_release);
}

ScopedKernelOverride::ScopedKernelOverride(std::string_view name)
    : ScopedKernelOverride(*kernel_by_name(name)) {}

ScopedKernelOverride::~ScopedKernelOverride() {
  g_active.store(previous_, std::memory_order_release);
}

// ------------------------------------------------------------ GF(2^16)
//
// The coefficient is constant across a region, so the four 16-entry
// product tables (one per nibble position) are built per call: 64 table
// multiplications amortised over the whole packet, then 4 loads + 3 XORs
// per symbol with no data-dependent branches — faster and flatter than
// the per-symbol log/antilog path it replaces.

namespace {

struct WideTables {
  Sym t[4][16];
};

WideTables build_wide_tables(const GaloisField& f, Sym c) {
  WideTables w{};
  for (unsigned nib = 0; nib < 4; ++nib)
    for (Sym v = 0; v < 16; ++v)
      w.t[nib][v] = f.mul(c, v << (4 * nib));
  return w;
}

}  // namespace

void mul_add_u16(const GaloisField& f, std::uint8_t* dst,
                 const std::uint8_t* src, std::size_t bytes, Sym c) {
  if (c == 0 || bytes < 2) return;
  const WideTables w = build_wide_tables(f, c);
  for (std::size_t i = 0; i + 1 < bytes; i += 2) {
    const Sym s = static_cast<Sym>(src[i]) | (static_cast<Sym>(src[i + 1]) << 8);
    const Sym p = w.t[0][s & 0xF] ^ w.t[1][(s >> 4) & 0xF] ^
                  w.t[2][(s >> 8) & 0xF] ^ w.t[3][s >> 12];
    dst[i] ^= static_cast<std::uint8_t>(p);
    dst[i + 1] ^= static_cast<std::uint8_t>(p >> 8);
  }
}

void mul_assign_u16(const GaloisField& f, std::uint8_t* dst,
                    const std::uint8_t* src, std::size_t bytes, Sym c) {
  if (c == 0) {
    std::memset(dst, 0, bytes);
    return;
  }
  const WideTables w = build_wide_tables(f, c);
  for (std::size_t i = 0; i + 1 < bytes; i += 2) {
    const Sym s = static_cast<Sym>(src[i]) | (static_cast<Sym>(src[i + 1]) << 8);
    const Sym p = w.t[0][s & 0xF] ^ w.t[1][(s >> 4) & 0xF] ^
                  w.t[2][(s >> 8) & 0xF] ^ w.t[3][s >> 12];
    dst[i] = static_cast<std::uint8_t>(p);
    dst[i + 1] = static_cast<std::uint8_t>(p >> 8);
  }
}

}  // namespace pbl::gf::kern
