// SIMD kernels for GF(2^8) region operations — the codec hot loop.
//
// The paper's premise (Section 2, Fig. 1) is that software RSE coding runs
// near line rate; this module makes that true on modern hardware.  Each
// kernel implements the two region primitives every encode/decode reduces
// to:
//
//   mul_add:    dst[i] ^= c * src[i]     (fused multiply-accumulate)
//   mul_assign: dst[i]  = c * src[i]
//
// via the split-nibble table technique of GF-Complete / ISA-L: a byte
// b = hi·16 + lo factors the product as c*b = c*(hi·16) ^ c*lo, so two
// 16-entry tables per coefficient turn a 16-byte SIMD shuffle
// (PSHUFB / vqtbl1q) into 16 parallel GF multiplications.
//
// Available kernels:
//   scalar — portable 4-bit split-table loop, runs everywhere
//   ssse3  — 16 bytes/step via _mm_shuffle_epi8
//   avx2   — 32 bytes/step (x2 unrolled) via _mm256_shuffle_epi8
//   neon   — 16 bytes/step via vqtbl1q_u8 (aarch64)
//
// Selection happens once, at first use: the best kernel the CPU supports,
// overridable with the environment variable PBL_GF_KERNEL
// (scalar|ssse3|avx2|neon|auto).  An unknown or unavailable request falls
// back to auto selection.  Tests force specific kernels in-process with
// ScopedKernelOverride or drive the function pointers directly.
//
// All kernels accept arbitrary lengths and alignments (unaligned loads +
// scalar tails) and allow dst == src aliasing; partial overlap is
// undefined.  See docs/KERNELS.md for design notes and throughput numbers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

#include "gf/gf.hpp"

namespace pbl::gf::kern {

/// One region-operation implementation.  The function pointers are total:
/// they handle c == 0, c == 1, len == 0, any alignment, and dst == src.
struct Kernel {
  const char* name;  ///< "scalar", "ssse3", "avx2", "neon"
  void (*mul_add)(std::uint8_t* dst, const std::uint8_t* src, std::size_t len,
                  std::uint8_t c);
  void (*mul_assign)(std::uint8_t* dst, const std::uint8_t* src,
                     std::size_t len, std::uint8_t c);
};

/// Kernels compiled into this binary AND supported by the running CPU,
/// in ascending preference order (auto picks the last one).
std::span<const Kernel* const> available_kernels();

/// Looks up an available kernel by name; nullptr if absent/unsupported.
const Kernel* kernel_by_name(std::string_view name);

/// Dispatch policy: nullptr or "auto" selects the fastest available
/// kernel; a kernel name selects it if available; anything else falls
/// back to auto.  Never returns nullptr.
const Kernel* resolve_kernel(const char* request);

/// The kernel all Gf256 region ops route through.  Resolved on first call
/// from the PBL_GF_KERNEL environment variable (see resolve_kernel).
const Kernel& active_kernel();

/// Forces a specific kernel for the lifetime of the object (test/bench
/// only — not thread-safe against concurrent codec use).
class ScopedKernelOverride {
 public:
  explicit ScopedKernelOverride(const Kernel& k);
  explicit ScopedKernelOverride(std::string_view name);  // must be available
  ~ScopedKernelOverride();
  ScopedKernelOverride(const ScopedKernelOverride&) = delete;
  ScopedKernelOverride& operator=(const ScopedKernelOverride&) = delete;

 private:
  const Kernel* previous_;
};

/// GF(2^16) region ops over little-endian 16-bit symbols, used by the
/// wide-symbol codec.  Same split-nibble idea, four 16-entry product
/// tables built per call (the coefficient is fixed across the region).
/// `bytes` must be even; `f` must be a GF(2^16) field.
void mul_add_u16(const GaloisField& f, std::uint8_t* dst,
                 const std::uint8_t* src, std::size_t bytes, Sym c);
void mul_assign_u16(const GaloisField& f, std::uint8_t* dst,
                    const std::uint8_t* src, std::size_t bytes, Sym c);

}  // namespace pbl::gf::kern
