// AVX2 GF(2^8) region kernel: 64 bytes per step (2x 32-byte lanes) via
// VPSHUFB.  The 16-entry nibble tables are broadcast into both 128-bit
// lanes so each _mm256_shuffle_epi8 performs 32 table lookups.
//
// Compiled with -mavx2 (this TU only — see src/CMakeLists.txt); selected
// at runtime only when __builtin_cpu_supports("avx2") holds.
#include "gf/kernels.hpp"

#if defined(PBL_GF_HAVE_X86_KERNELS) && defined(__AVX2__)

#include <immintrin.h>

#include <cstring>

#include "gf/kernels_tables.hpp"

namespace pbl::gf::kern::detail {

namespace {

inline __m256i mul32(__m256i v, __m256i tlo, __m256i thi, __m256i mask) {
  const __m256i lo = _mm256_and_si256(v, mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi64(v, 4), mask);
  return _mm256_xor_si256(_mm256_shuffle_epi8(tlo, lo),
                          _mm256_shuffle_epi8(thi, hi));
}

inline __m256i broadcast_table(const std::uint8_t* row) {
  return _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(row)));
}

void avx2_mul_add(std::uint8_t* dst, const std::uint8_t* src, std::size_t len,
                  std::uint8_t c) {
  if (c == 0) return;
  std::size_t i = 0;
  if (c == 1) {
    for (; i + 32 <= len; i += 32) {
      const __m256i s =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
      const __m256i d =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                          _mm256_xor_si256(d, s));
    }
    for (; i < len; ++i) dst[i] ^= src[i];
    return;
  }
  const std::uint8_t* lo_row = kNibble.lo[c];
  const std::uint8_t* hi_row = kNibble.hi[c];
  const __m256i tlo = broadcast_table(lo_row);
  const __m256i thi = broadcast_table(hi_row);
  const __m256i mask = _mm256_set1_epi8(0x0F);
  // Two independent 32-byte streams per iteration hide shuffle latency.
  for (; i + 64 <= len; i += 64) {
    const __m256i s0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i s1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    const __m256i d0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i d1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d0, mul32(s0, tlo, thi, mask)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32),
                        _mm256_xor_si256(d1, mul32(s1, tlo, thi, mask)));
  }
  for (; i + 32 <= len; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, mul32(s, tlo, thi, mask)));
  }
  mul_add_span(dst + i, src + i, len - i, lo_row, hi_row);
}

void avx2_mul_assign(std::uint8_t* dst, const std::uint8_t* src,
                     std::size_t len, std::uint8_t c) {
  if (c == 0) {
    std::memset(dst, 0, len);
    return;
  }
  if (c == 1) {
    if (dst != src) std::memmove(dst, src, len);
    return;
  }
  const std::uint8_t* lo_row = kNibble.lo[c];
  const std::uint8_t* hi_row = kNibble.hi[c];
  const __m256i tlo = broadcast_table(lo_row);
  const __m256i thi = broadcast_table(hi_row);
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        mul32(s, tlo, thi, mask));
  }
  mul_assign_span(dst + i, src + i, len - i, lo_row, hi_row);
}

}  // namespace

const Kernel kAvx2Kernel{"avx2", avx2_mul_add, avx2_mul_assign};

}  // namespace pbl::gf::kern::detail

#endif  // PBL_GF_HAVE_X86_KERNELS && __AVX2__
