// NEON (aarch64) GF(2^8) region kernel: 16 bytes per step via vqtbl1q_u8,
// the ARM equivalent of PSHUFB.  NEON is architecturally mandatory on
// aarch64, so no runtime feature probe is needed; the TU is simply not
// compiled on other targets (see src/CMakeLists.txt).
#include "gf/kernels.hpp"

#if defined(PBL_GF_HAVE_NEON_KERNEL) && defined(__aarch64__)

#include <arm_neon.h>

#include <cstring>

#include "gf/kernels_tables.hpp"

namespace pbl::gf::kern::detail {

namespace {

inline uint8x16_t mul16(uint8x16_t v, uint8x16_t tlo, uint8x16_t thi) {
  const uint8x16_t lo = vandq_u8(v, vdupq_n_u8(0x0F));
  const uint8x16_t hi = vshrq_n_u8(v, 4);
  return veorq_u8(vqtbl1q_u8(tlo, lo), vqtbl1q_u8(thi, hi));
}

void neon_mul_add(std::uint8_t* dst, const std::uint8_t* src, std::size_t len,
                  std::uint8_t c) {
  if (c == 0) return;
  std::size_t i = 0;
  if (c == 1) {
    for (; i + 16 <= len; i += 16)
      vst1q_u8(dst + i, veorq_u8(vld1q_u8(dst + i), vld1q_u8(src + i)));
    for (; i < len; ++i) dst[i] ^= src[i];
    return;
  }
  const std::uint8_t* lo_row = kNibble.lo[c];
  const std::uint8_t* hi_row = kNibble.hi[c];
  const uint8x16_t tlo = vld1q_u8(lo_row);
  const uint8x16_t thi = vld1q_u8(hi_row);
  for (; i + 16 <= len; i += 16) {
    const uint8x16_t s = vld1q_u8(src + i);
    const uint8x16_t d = vld1q_u8(dst + i);
    vst1q_u8(dst + i, veorq_u8(d, mul16(s, tlo, thi)));
  }
  mul_add_span(dst + i, src + i, len - i, lo_row, hi_row);
}

void neon_mul_assign(std::uint8_t* dst, const std::uint8_t* src,
                     std::size_t len, std::uint8_t c) {
  if (c == 0) {
    std::memset(dst, 0, len);
    return;
  }
  if (c == 1) {
    if (dst != src) std::memmove(dst, src, len);
    return;
  }
  const std::uint8_t* lo_row = kNibble.lo[c];
  const std::uint8_t* hi_row = kNibble.hi[c];
  const uint8x16_t tlo = vld1q_u8(lo_row);
  const uint8x16_t thi = vld1q_u8(hi_row);
  std::size_t i = 0;
  for (; i + 16 <= len; i += 16)
    vst1q_u8(dst + i, mul16(vld1q_u8(src + i), tlo, thi));
  mul_assign_span(dst + i, src + i, len - i, lo_row, hi_row);
}

}  // namespace

const Kernel kNeonKernel{"neon", neon_mul_add, neon_mul_assign};

}  // namespace pbl::gf::kern::detail

#endif  // PBL_GF_HAVE_NEON_KERNEL && __aarch64__
