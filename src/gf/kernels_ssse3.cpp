// SSSE3 GF(2^8) region kernel: 16 bytes per step via PSHUFB.
//
// Compiled with -mssse3 (this TU only — see src/CMakeLists.txt); the
// dispatcher in kernels.cpp only selects it after __builtin_cpu_supports
// confirms the instruction set at runtime.
#include "gf/kernels.hpp"

#if defined(PBL_GF_HAVE_X86_KERNELS) && defined(__SSSE3__)

#include <tmmintrin.h>

#include <cstring>

#include "gf/kernels_tables.hpp"

namespace pbl::gf::kern::detail {

namespace {

// Multiplies 16 bytes by the fixed coefficient whose nibble tables are in
// tlo/thi: product = tlo[b & 0xF] ^ thi[b >> 4], both lookups one PSHUFB.
inline __m128i mul16(__m128i v, __m128i tlo, __m128i thi, __m128i mask) {
  const __m128i lo = _mm_and_si128(v, mask);
  const __m128i hi = _mm_and_si128(_mm_srli_epi64(v, 4), mask);
  return _mm_xor_si128(_mm_shuffle_epi8(tlo, lo), _mm_shuffle_epi8(thi, hi));
}

void ssse3_mul_add(std::uint8_t* dst, const std::uint8_t* src,
                   std::size_t len, std::uint8_t c) {
  if (c == 0) return;
  const std::uint8_t* lo_row = kNibble.lo[c];
  const std::uint8_t* hi_row = kNibble.hi[c];
  const __m128i tlo = _mm_load_si128(reinterpret_cast<const __m128i*>(lo_row));
  const __m128i thi = _mm_load_si128(reinterpret_cast<const __m128i*>(hi_row));
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  if (c == 1) {
    for (; i + 16 <= len; i += 16) {
      const __m128i s =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
      const __m128i d = _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                       _mm_xor_si128(d, s));
    }
    for (; i < len; ++i) dst[i] ^= src[i];
    return;
  }
  for (; i + 16 <= len; i += 16) {
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, mul16(s, tlo, thi, mask)));
  }
  mul_add_span(dst + i, src + i, len - i, lo_row, hi_row);
}

void ssse3_mul_assign(std::uint8_t* dst, const std::uint8_t* src,
                      std::size_t len, std::uint8_t c) {
  if (c == 0) {
    std::memset(dst, 0, len);
    return;
  }
  if (c == 1) {
    if (dst != src) std::memmove(dst, src, len);
    return;
  }
  const std::uint8_t* lo_row = kNibble.lo[c];
  const std::uint8_t* hi_row = kNibble.hi[c];
  const __m128i tlo = _mm_load_si128(reinterpret_cast<const __m128i*>(lo_row));
  const __m128i thi = _mm_load_si128(reinterpret_cast<const __m128i*>(hi_row));
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     mul16(s, tlo, thi, mask));
  }
  mul_assign_span(dst + i, src + i, len - i, lo_row, hi_row);
}

}  // namespace

const Kernel kSsse3Kernel{"ssse3", ssse3_mul_add, ssse3_mul_assign};

}  // namespace pbl::gf::kern::detail

#endif  // PBL_GF_HAVE_X86_KERNELS && __SSSE3__
