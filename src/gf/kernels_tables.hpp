// Internal: compile-time split-nibble product tables for the GF(2^8)
// kernels, shared by every ISA translation unit.  Not installed; include
// only from src/gf/kernels*.cpp.
//
// For each coefficient c, lo[c][v] = c * v and hi[c][v] = c * (v << 4)
// in GF(2^8) with the conventional primitive polynomial 0x11D (the same
// field GaloisField(8) builds at runtime — test_gf_kernels cross-checks
// them).  Each table row is 16 bytes: exactly one PSHUFB / vqtbl1q
// register.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "gf/kernels.hpp"

namespace pbl::gf::kern::detail {

// ISA kernel singletons; each defined in its translation unit when
// compiled in.  Declared here so the namespace-scope const definitions
// get external linkage for the dispatcher in kernels.cpp.
#if defined(PBL_GF_HAVE_X86_KERNELS)
extern const Kernel kSsse3Kernel;
extern const Kernel kAvx2Kernel;
#endif
#if defined(PBL_GF_HAVE_NEON_KERNEL)
extern const Kernel kNeonKernel;
#endif

/// Carry-less multiply mod x^8 + x^4 + x^3 + x^2 + 1 (0x11D), usable in
/// constant expressions so the tables land in .rodata.
constexpr std::uint8_t gf256_mul(std::uint8_t a, std::uint8_t b) {
  unsigned acc = 0;
  unsigned aa = a;
  for (unsigned bit = 0; bit < 8; ++bit) {
    if (b & (1u << bit)) acc ^= aa;
    aa <<= 1;
    if (aa & 0x100u) aa ^= 0x11Du;
  }
  return static_cast<std::uint8_t>(acc);
}

struct NibbleTables {
  // [c][v]: product of coefficient c with low nibble v / high nibble v<<4.
  alignas(64) std::uint8_t lo[256][16];
  alignas(64) std::uint8_t hi[256][16];
};

constexpr NibbleTables build_nibble_tables() {
  NibbleTables t{};
  for (unsigned c = 0; c < 256; ++c) {
    for (unsigned v = 0; v < 16; ++v) {
      t.lo[c][v] = gf256_mul(static_cast<std::uint8_t>(c),
                             static_cast<std::uint8_t>(v));
      t.hi[c][v] = gf256_mul(static_cast<std::uint8_t>(c),
                             static_cast<std::uint8_t>(v << 4));
    }
  }
  return t;
}

inline constexpr NibbleTables kNibble = build_nibble_tables();

/// Scalar split-nibble loops, also used for SIMD heads/tails.
inline void mul_add_span(std::uint8_t* dst, const std::uint8_t* src,
                         std::size_t len, const std::uint8_t* lo,
                         const std::uint8_t* hi) {
  for (std::size_t i = 0; i < len; ++i)
    dst[i] ^= static_cast<std::uint8_t>(lo[src[i] & 0x0F] ^ hi[src[i] >> 4]);
}

inline void mul_assign_span(std::uint8_t* dst, const std::uint8_t* src,
                            std::size_t len, const std::uint8_t* lo,
                            const std::uint8_t* hi) {
  for (std::size_t i = 0; i < len; ++i)
    dst[i] = static_cast<std::uint8_t>(lo[src[i] & 0x0F] ^ hi[src[i] >> 4]);
}

}  // namespace pbl::gf::kern::detail
