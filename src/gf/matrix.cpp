#include "gf/matrix.hpp"

#include <stdexcept>

namespace pbl::gf {

Matrix::Matrix(const GaloisField& field, std::size_t rows, std::size_t cols)
    : field_(&field), rows_(rows), cols_(cols), data_(rows * cols, 0) {}

Matrix Matrix::identity(const GaloisField& field, std::size_t n) {
  Matrix m(field, n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

Matrix Matrix::vandermonde(const GaloisField& field, std::size_t n,
                           std::size_t k) {
  if (n > field.order())
    throw std::invalid_argument(
        "vandermonde: need n <= 2^m - 1 for distinct evaluation points");
  Matrix m(field, n, k);
  for (std::size_t i = 0; i < n; ++i) {
    const Sym x = field.exp(i);  // alpha^i, all distinct for i < 2^m - 1
    Sym pw = 1;
    for (std::size_t j = 0; j < k; ++j) {
      m.at(i, j) = pw;
      pw = field.mul(pw, x);
    }
  }
  return m;
}

Matrix Matrix::systematic_generator(const GaloisField& field, std::size_t n,
                                    std::size_t k) {
  if (k == 0 || k > n) throw std::invalid_argument("generator: need 0 < k <= n");
  const Matrix v = vandermonde(field, n, k);
  // Top k x k block of a Vandermonde with distinct points is invertible.
  std::vector<std::size_t> top(k);
  for (std::size_t i = 0; i < k; ++i) top[i] = i;
  const Matrix vtop_inv = v.select_rows(top).inverted();
  Matrix g = v.mul(vtop_inv);
  // Snap the top block to an exact identity (it already is, numerically
  // exactly, but make the invariant explicit and cheap to verify).
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = 0; j < k; ++j)
      if (g.at(i, j) != (i == j ? 1u : 0u))
        throw std::logic_error("systematic generator: top block not identity");
  return g;
}

Matrix Matrix::mul(const Matrix& other) const {
  if (cols_ != other.rows_) throw std::invalid_argument("matrix mul: shape");
  Matrix out(*field_, rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t l = 0; l < cols_; ++l) {
      const Sym a = at(i, l);
      if (a == 0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out.at(i, j) =
            GaloisField::add(out.at(i, j), field_->mul(a, other.at(l, j)));
      }
    }
  }
  return out;
}

std::vector<Sym> Matrix::mul_vec(std::span<const Sym> x) const {
  if (x.size() != cols_) throw std::invalid_argument("matrix mul_vec: shape");
  std::vector<Sym> y(rows_, 0);
  for (std::size_t i = 0; i < rows_; ++i) {
    Sym acc = 0;
    for (std::size_t j = 0; j < cols_; ++j)
      acc = GaloisField::add(acc, field_->mul(at(i, j), x[j]));
    y[i] = acc;
  }
  return y;
}

Matrix Matrix::inverted() const {
  if (rows_ != cols_) throw std::invalid_argument("inverse: not square");
  const std::size_t n = rows_;
  Matrix a(*this);
  Matrix inv = identity(*field_, n);
  for (std::size_t col = 0; col < n; ++col) {
    // Find a nonzero pivot (any nonzero works in a field; no stability
    // concerns in exact arithmetic).
    std::size_t pivot = col;
    while (pivot < n && a.at(pivot, col) == 0) ++pivot;
    if (pivot == n) throw std::domain_error("matrix is singular");
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(a.at(pivot, j), a.at(col, j));
        std::swap(inv.at(pivot, j), inv.at(col, j));
      }
    }
    const Sym d = field_->inv(a.at(col, col));
    for (std::size_t j = 0; j < n; ++j) {
      a.at(col, j) = field_->mul(a.at(col, j), d);
      inv.at(col, j) = field_->mul(inv.at(col, j), d);
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const Sym f = a.at(r, col);
      if (f == 0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        a.at(r, j) = GaloisField::add(a.at(r, j), field_->mul(f, a.at(col, j)));
        inv.at(r, j) =
            GaloisField::add(inv.at(r, j), field_->mul(f, inv.at(col, j)));
      }
    }
  }
  return inv;
}

Matrix Matrix::select_rows(std::span<const std::size_t> row_indices) const {
  Matrix out(*field_, row_indices.size(), cols_);
  for (std::size_t i = 0; i < row_indices.size(); ++i) {
    if (row_indices[i] >= rows_)
      throw std::out_of_range("select_rows: index out of range");
    for (std::size_t j = 0; j < cols_; ++j)
      out.at(i, j) = at(row_indices[i], j);
  }
  return out;
}

}  // namespace pbl::gf
