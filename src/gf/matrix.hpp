// Dense matrix algebra over GF(2^m): construction of Vandermonde-based
// systematic generator matrices and Gauss-Jordan inversion, as used by the
// RSE encoder/decoder (Rizzo '97, McAuley '90).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "gf/gf.hpp"

namespace pbl::gf {

/// Row-major matrix of field symbols.  The field is referenced, not owned;
/// it must outlive the matrix.
class Matrix {
 public:
  Matrix(const GaloisField& field, std::size_t rows, std::size_t cols);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  Sym& at(std::size_t r, std::size_t c) noexcept { return data_[r * cols_ + c]; }
  Sym at(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }
  std::span<const Sym> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<Sym> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  const GaloisField& field() const noexcept { return *field_; }

  static Matrix identity(const GaloisField& field, std::size_t n);

  /// n x k Vandermonde matrix V[i][j] = x_i^j with x_i = alpha^i.
  /// All x_i are distinct while n <= 2^m - 1, which makes every k-row
  /// subset invertible — the property erasure decoding relies on.
  static Matrix vandermonde(const GaloisField& field, std::size_t n,
                            std::size_t k);

  /// Systematic RSE generator: G = V * V_top^{-1}, an n x k matrix whose
  /// top k x k block is the identity and any k rows of which are
  /// invertible.  Encoding c = G * d maps k data symbols to n coded
  /// symbols whose first k equal the data (Section 2.1 of the paper).
  static Matrix systematic_generator(const GaloisField& field, std::size_t n,
                                     std::size_t k);

  Matrix mul(const Matrix& other) const;

  /// Matrix-vector product y = A * x.
  std::vector<Sym> mul_vec(std::span<const Sym> x) const;

  /// Gauss-Jordan inverse; throws std::domain_error if singular.
  Matrix inverted() const;

  /// Sub-matrix made of the given rows (in order).
  Matrix select_rows(std::span<const std::size_t> row_indices) const;

  bool operator==(const Matrix& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
  }

 private:
  const GaloisField* field_;
  std::size_t rows_;
  std::size_t cols_;
  std::vector<Sym> data_;
};

}  // namespace pbl::gf
