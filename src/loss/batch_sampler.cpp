#include "loss/batch_sampler.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/numerics.hpp"

namespace pbl::loss {

namespace {

/// Inverse-CDF by pmf recurrence, exact, expected O(n*p) steps.  Requires
/// p <= 0.5 (callers reflect) and n*p small enough that q^n does not
/// underflow (n*p <= 30 guarantees q^n >= e^-30).
std::uint64_t binomial_inversion(Rng& rng, std::uint64_t n, double p) {
  const double q = 1.0 - p;
  const double s = p / q;
  const double a = static_cast<double>(n + 1) * s;
  const double f0 = std::exp(static_cast<double>(n) * std::log1p(-p));  // q^n
  for (;;) {
    double f = f0;
    double u = rng.uniform();
    for (std::uint64_t x = 0; x <= n; ++x) {
      if (u <= f) return x;
      u -= f;
      f *= a / static_cast<double>(x + 1) - s;
    }
    // Floating-point residue pushed u past the summed pmf; redraw.
  }
}

/// Stirling-series tail of ln Gamma(x): phi(x) = 1/(12x) - 1/(360x^3)
/// + 1/(1260x^5) - 1/(1680x^7) + 1/(1188x^9), evaluated Horner-style.
double stirling_tail(double x) {
  const double x2 = x * x;
  return (13860.0 - (462.0 - (132.0 - (99.0 - 140.0 / x2) / x2) / x2) / x2) /
         x / 166320.0;
}

/// BTPE (Binomial Triangle-Parallelogram-Exponential) rejection sampler.
/// Requires r = min(p, 1-p) with n*r >= 30 (so n*r*q >= 15 and the
/// majorizer constants are valid); exact per the final pmf comparison.
std::uint64_t binomial_btpe(Rng& rng, std::uint64_t n, double r) {
  const double nd = static_cast<double>(n);
  const double q = 1.0 - r;
  const double nrq = nd * r * q;
  const double fm = nd * r + r;
  const double m = std::floor(fm);
  const double p1 = std::floor(2.195 * std::sqrt(nrq) - 4.6 * q) + 0.5;
  const double xm = m + 0.5;
  const double xl = xm - p1;
  const double xr = xm + p1;
  const double c = 0.134 + 20.5 / (15.3 + m);
  double al = (fm - xl) / (fm - xl * r);
  const double laml = al * (1.0 + 0.5 * al);
  al = (xr - fm) / (xr * q);
  const double lamr = al * (1.0 + 0.5 * al);
  const double p2 = p1 * (1.0 + 2.0 * c);
  const double p3 = p2 + c / laml;
  const double p4 = p3 + c / lamr;

  for (;;) {
    const double u = rng.uniform() * p4;
    double v = rng.uniform();
    double y;
    if (u <= p1) {
      // Triangular region: accept immediately.
      y = std::floor(xm - p1 * v + u);
      return static_cast<std::uint64_t>(y);
    }
    if (u <= p2) {
      // Parallelogram.
      const double x = xl + (u - p1) / c;
      v = v * c + 1.0 - std::abs(x - xm) / p1;
      if (v > 1.0) continue;
      y = std::floor(x);
    } else if (u <= p3) {
      // Left exponential tail.
      y = std::floor(xl + std::log(v) / laml);
      if (y < 0.0) continue;
      v = v * (u - p2) * laml;
    } else {
      // Right exponential tail.
      y = std::floor(xr - std::log(v) / lamr);
      if (y > nd) continue;
      v = v * (u - p3) * lamr;
    }

    // Acceptance test: v <= f(y)/f(m).
    const double k = std::abs(y - m);
    if (k <= 20.0 || k >= nrq / 2.0 - 1.0) {
      // Evaluate the pmf ratio explicitly by recurrence.
      const double s = r / q;
      const double a = s * (nd + 1.0);
      double f = 1.0;
      if (m < y) {
        for (double i = m + 1.0; i <= y; i += 1.0) f *= a / i - s;
      } else if (m > y) {
        for (double i = y + 1.0; i <= m; i += 1.0) f /= a / i - s;
      }
      if (v <= f) return static_cast<std::uint64_t>(y);
      continue;
    }
    // Squeeze on ln(f(y)/f(m)), then the exact Stirling comparison.
    const double amaxp =
        (k / nrq) * ((k * (k / 3.0 + 0.625) + 1.0 / 6.0) / nrq + 0.5);
    const double ynorm = -k * k / (2.0 * nrq);
    const double alv = std::log(v);
    if (alv < ynorm - amaxp) return static_cast<std::uint64_t>(y);
    if (alv > ynorm + amaxp) continue;

    const double x1 = y + 1.0;
    const double f1 = m + 1.0;
    const double z = nd + 1.0 - m;
    const double w = nd - y + 1.0;
    const double bound = xm * std::log(f1 / x1) +
                         (nd - m + 0.5) * std::log(z / w) +
                         (y - m) * std::log(w * r / (x1 * q)) +
                         stirling_tail(f1) - stirling_tail(x1) +
                         stirling_tail(z) - stirling_tail(w);
    if (alv <= bound) return static_cast<std::uint64_t>(y);
  }
}

constexpr double kInversionMaxNp = 30.0;

}  // namespace

std::uint64_t sample_binomial(Rng& rng, std::uint64_t n, double p) {
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("sample_binomial: p in [0, 1]");
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  const bool flip = p > 0.5;
  const double r = flip ? 1.0 - p : p;
  const std::uint64_t x = static_cast<double>(n) * r < kInversionMaxNp
                              ? binomial_inversion(rng, n, r)
                              : binomial_btpe(rng, n, r);
  return flip ? n - x : x;
}

BinomialDist::BinomialDist(std::uint64_t n, double p) : n_(n), p_(p) {
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("BinomialDist: p in [0, 1]");
  if (n == 0 || p == 0.0 || p == 1.0 || n > kAliasMax) return;

  // Vose alias construction over the exact pmf (normalised so the table
  // probabilities sum to exactly 1).
  const std::size_t size = static_cast<std::size_t>(n) + 1;
  std::vector<double> pmf(size);
  double total = 0.0;
  for (std::size_t j = 0; j < size; ++j) {
    pmf[j] = binomial_pmf(static_cast<std::int64_t>(n),
                          static_cast<std::int64_t>(j), p);
    total += pmf[j];
  }
  std::vector<double> scaled(size);
  for (std::size_t j = 0; j < size; ++j)
    scaled[j] = pmf[j] / total * static_cast<double>(size);

  alias_ = std::make_unique<std::uint32_t[]>(size);
  accept_ = std::make_unique<double[]>(size);
  std::vector<std::uint32_t> small, large;
  for (std::size_t j = 0; j < size; ++j)
    (scaled[j] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(j));
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    accept_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (const std::uint32_t j : large) {
    accept_[j] = 1.0;
    alias_[j] = j;
  }
  for (const std::uint32_t j : small) {  // fp leftovers: probability ~1
    accept_[j] = 1.0;
    alias_[j] = j;
  }
}

std::uint64_t BinomialDist::operator()(Rng& rng) const {
  if (n_ == 0 || p_ == 0.0) return 0;
  if (p_ == 1.0) return n_;
  if (!alias_) return sample_binomial(rng, n_, p_);
  const std::uint64_t j = rng.below(n_ + 1);
  return rng.uniform() < accept_[j] ? j : alias_[j];
}

MaskSampler::MaskSampler(double p) : p_(p) {
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("MaskSampler: p in [0, 1]");
  if (p == 0.0 || p == 1.0) return;
  invert_ = p > 0.5;
  count_ = std::make_unique<BinomialDist>(64, invert_ ? 1.0 - p : p);
}

std::uint64_t MaskSampler::place_bits(Rng& rng, unsigned count) {
  std::uint64_t mask = 0;
  unsigned placed = 0;
  while (placed < count) {
    // 10 six-bit position candidates per 64-bit draw.
    std::uint64_t chunks = rng();
    for (int c = 0; c < 10 && placed < count; ++c, chunks >>= 6) {
      const std::uint64_t bit = std::uint64_t{1} << (chunks & 63);
      if (!(mask & bit)) {
        mask |= bit;
        ++placed;
      }
    }
  }
  return mask;
}

std::uint64_t MaskSampler::lost_mask(Rng& rng) const {
  if (p_ == 0.0) return 0;
  if (p_ == 1.0) return ~std::uint64_t{0};
  const auto c = static_cast<unsigned>((*count_)(rng));
  std::uint64_t mask;
  if (c == 0) {
    mask = 0;
  } else if (c == 64) {
    mask = ~std::uint64_t{0};
  } else if (c <= 32) {
    mask = place_bits(rng, c);
  } else {
    mask = ~place_bits(rng, 64 - c);  // place the rarer side
  }
  return invert_ ? ~mask : mask;
}

}  // namespace pbl::loss
