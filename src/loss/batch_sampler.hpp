// Batched loss sampling: exact binomial draws and 64-lane Bernoulli masks.
//
// The exact simulators ask every receiver "did you lose this packet?" —
// one PRNG draw per receiver-packet, O(R) per transmission.  Under
// spatially independent loss the per-transmission loss pattern of a whole
// word of 64 receivers is (count ~ Binomial(64, p), placement uniform), so
// the batched engine draws loss *counts* and places them, spending O(1 +
// 64 p) draws per 64 receivers instead of 64.
//
// Everything here is exact (no normal/Poisson approximation):
//   * sample_binomial — inverse-CDF by pmf recurrence when n*min(p,q) is
//     small, the BTPE rejection algorithm (Kachitvichyanukul & Schmeiser,
//     CACM 1988) otherwise.  BTPE's final acceptance test compares against
//     the true pmf (Stirling series through the 1/k^9 term), so it is
//     exact to double precision.
//   * BinomialDist — a fixed-(n, p) distribution; small n additionally
//     gets a Vose alias table built from the exact pmf: one uniform pair
//     per draw regardless of n*p.
//   * MaskSampler — 64 i.i.d. Bernoulli(p) bits per call: count from the
//     Binomial(64, p) alias table, placement by rejection on 6-bit chunks.
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "util/rng.hpp"

namespace pbl::loss {

/// One exact Binomial(n, p) draw.  p must be in [0, 1].
std::uint64_t sample_binomial(Rng& rng, std::uint64_t n, double p);

/// Exact Binomial(n, p) with per-instance precomputation.  For n <= 128 a
/// Vose alias table over the exact pmf makes draws O(1); larger n routes
/// to sample_binomial's inverse-CDF / BTPE paths.
class BinomialDist {
 public:
  BinomialDist(std::uint64_t n, double p);

  std::uint64_t n() const noexcept { return n_; }
  double p() const noexcept { return p_; }

  std::uint64_t operator()(Rng& rng) const;

 private:
  std::uint64_t n_;
  double p_;
  // Alias table (n <= kAliasMax only): outcome j with probability pmf(j).
  static constexpr std::uint64_t kAliasMax = 128;
  std::unique_ptr<std::uint32_t[]> alias_;
  std::unique_ptr<double[]> accept_;
};

/// 64 i.i.d. Bernoulli(p) bits per call (bit set = packet lost), for
/// word-at-a-time loss application: received = active & ~lost_mask().
/// p = 0 and p = 1 short-circuit without touching the Rng.
class MaskSampler {
 public:
  explicit MaskSampler(double p);

  double p() const noexcept { return p_; }

  std::uint64_t lost_mask(Rng& rng) const;

 private:
  /// Places `count` distinct set bits uniformly in a 64-bit word.
  static std::uint64_t place_bits(Rng& rng, unsigned count);

  double p_;
  bool invert_ = false;  // sample the rarer side, flip on the way out
  std::unique_ptr<BinomialDist> count_;  // Binomial(64, min(p, 1-p))
};

}  // namespace pbl::loss
