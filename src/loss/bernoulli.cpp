#include <stdexcept>

#include "loss/loss_model.hpp"

namespace pbl::loss {

namespace {

class BernoulliProcess final : public LossProcess {
 public:
  BernoulliProcess(Rng rng, double p) : rng_(rng), p_(p) {}
  bool lost(double /*time*/) override { return rng_.bernoulli(p_); }
  double loss_probability() const override { return p_; }

 private:
  Rng rng_;
  double p_;
};

}  // namespace

BernoulliLossModel::BernoulliLossModel(double p) : p_(p) {
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("BernoulliLossModel: p in [0,1]");
}

std::unique_ptr<LossProcess> BernoulliLossModel::make_process(
    Rng rng, std::size_t /*receiver*/) const {
  return std::make_unique<BernoulliProcess>(rng, p_);
}

}  // namespace pbl::loss
