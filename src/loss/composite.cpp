#include <stdexcept>

#include "loss/loss_model.hpp"

namespace pbl::loss {

CompositeLossModel::CompositeLossModel(std::vector<Component> components)
    : components_(std::move(components)) {
  if (components_.empty())
    throw std::invalid_argument("CompositeLossModel: need >= 1 component");
  for (const auto& c : components_) {
    if (!c.model)
      throw std::invalid_argument("CompositeLossModel: null component model");
    if (c.count == 0)
      throw std::invalid_argument("CompositeLossModel: component count >= 1");
    total_ += c.count;
  }
}

const LossModel& CompositeLossModel::component_for(std::size_t receiver) const {
  std::size_t offset = 0;
  for (const auto& c : components_) {
    if (receiver < offset + c.count) return *c.model;
    offset += c.count;
  }
  throw std::out_of_range("CompositeLossModel: receiver index");
}

std::unique_ptr<LossProcess> CompositeLossModel::make_process(
    Rng rng, std::size_t receiver) const {
  return component_for(receiver).make_process(rng, receiver);
}

double CompositeLossModel::mean_loss_probability() const {
  double sum = 0.0;
  for (const auto& c : components_)
    sum += c.model->mean_loss_probability() * static_cast<double>(c.count);
  return sum / static_cast<double>(total_);
}

}  // namespace pbl::loss
