#include "loss/estimator.hpp"

#include <stdexcept>

namespace pbl::loss {

LossEstimator::LossEstimator(double alpha) : alpha_(alpha) {
  if (alpha <= 0.0 || alpha > 1.0)
    throw std::invalid_argument("LossEstimator: alpha in (0,1]");
}

void LossEstimator::observe(bool lost) {
  ++observed_;
  ewma_ += alpha_ * ((lost ? 1.0 : 0.0) - ewma_);
  if (lost) {
    ++losses_;
    ++current_run_;
  } else if (current_run_ > 0) {
    ++bursts_;
    burst_losses_ += current_run_;
    current_run_ = 0;
  }
}

double LossEstimator::loss_rate() const noexcept {
  return observed_ == 0
             ? 0.0
             : static_cast<double>(losses_) / static_cast<double>(observed_);
}

double LossEstimator::mean_burst_length() const noexcept {
  return bursts_ == 0 ? 1.0
                      : static_cast<double>(burst_losses_) /
                            static_cast<double>(bursts_);
}

void LossEstimator::reset() {
  ewma_ = 0.0;
  observed_ = losses_ = bursts_ = burst_losses_ = current_run_ = 0;
}

}  // namespace pbl::loss
