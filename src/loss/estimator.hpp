// Online loss-characteristics estimation from an observed packet stream:
// the measurement half of an adaptive FEC controller (the paper's
// Section 4.1 discussion of "adaptive transport mechanisms that are based
// on measurements of receiver loss rates").
//
// Tracks the cumulative and exponentially-weighted loss rate and the mean
// length of loss bursts — exactly the (p, b) pair that parameterises the
// models and the Gilbert process.
#pragma once

#include <cstdint>

namespace pbl::loss {

class LossEstimator {
 public:
  /// alpha: EWMA weight of a new observation (0 < alpha <= 1).
  explicit LossEstimator(double alpha = 0.01);

  /// Feeds the outcome of one packet slot, in stream order.
  void observe(bool lost);

  std::uint64_t observed() const noexcept { return observed_; }
  std::uint64_t losses() const noexcept { return losses_; }

  /// Cumulative loss fraction over everything observed.
  double loss_rate() const noexcept;

  /// Exponentially-weighted loss rate (tracks drift).
  double ewma_loss_rate() const noexcept { return ewma_; }

  /// Mean length of completed runs of consecutive losses; 1.0 until a
  /// burst has completed.
  double mean_burst_length() const noexcept;

  /// Number of completed loss bursts.
  std::uint64_t bursts() const noexcept { return bursts_; }

  void reset();

 private:
  double alpha_;
  double ewma_ = 0.0;
  std::uint64_t observed_ = 0;
  std::uint64_t losses_ = 0;
  std::uint64_t bursts_ = 0;
  std::uint64_t burst_losses_ = 0;  // losses inside completed bursts
  std::uint64_t current_run_ = 0;
};

}  // namespace pbl::loss
