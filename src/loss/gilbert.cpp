#include <cmath>
#include <stdexcept>

#include "loss/loss_model.hpp"

namespace pbl::loss {

namespace {

/// Lazily-advanced two-state CTMC.  Between queries dt apart, the exact
/// transition probability of the 2-state chain is used:
///   P(X_{t+dt} = 1 | X_t = i) = pi1 + (1{i=1} - pi1) * exp(-(lambda+mu) dt)
class GilbertProcess final : public LossProcess {
 public:
  GilbertProcess(Rng rng, double enter_rate, double exit_rate)
      : rng_(rng), sum_(enter_rate + exit_rate),
        pi1_(enter_rate / (enter_rate + exit_rate)) {
    state_lost_ = rng_.bernoulli(pi1_);  // start in stationarity
  }

  bool lost(double time) override {
    const double dt = time - last_time_;
    last_time_ = time;
    if (dt > 0.0) {
      const double decay = decay_for(dt);
      const double p1 = pi1_ + ((state_lost_ ? 1.0 : 0.0) - pi1_) * decay;
      state_lost_ = rng_.bernoulli(p1);
    }
    return state_lost_;
  }

  double loss_probability() const override { return pi1_; }

 private:
  // Simulations query at a near-constant spacing (delta, or delta + T at
  // round boundaries), so a two-entry memo for exp(-sum*dt) removes the
  // exp() from the hot path.
  double decay_for(double dt) {
    if (dt == memo_dt_[0]) return memo_decay_[0];
    if (dt == memo_dt_[1]) return memo_decay_[1];
    const double d = std::exp(-sum_ * dt);
    memo_dt_[next_slot_] = dt;
    memo_decay_[next_slot_] = d;
    next_slot_ ^= 1;
    return d;
  }

  Rng rng_;
  double sum_;
  double pi1_;
  bool state_lost_ = false;
  double last_time_ = 0.0;
  double memo_dt_[2] = {-1.0, -1.0};
  double memo_decay_[2] = {0.0, 0.0};
  int next_slot_ = 0;
};

}  // namespace

GilbertLossModel::GilbertLossModel(double enter_rate, double exit_rate)
    : enter_rate_(enter_rate), exit_rate_(exit_rate) {
  if (enter_rate <= 0.0 || exit_rate <= 0.0)
    throw std::invalid_argument("GilbertLossModel: rates must be positive");
}

GilbertLossModel GilbertLossModel::from_packet_stats(double p,
                                                     double mean_burst,
                                                     double delta) {
  if (p <= 0.0 || p >= 1.0)
    throw std::invalid_argument("GilbertLossModel: p in (0,1)");
  if (mean_burst <= 1.0)
    throw std::invalid_argument(
        "GilbertLossModel: mean_burst must exceed 1 packet");
  if (delta <= 0.0)
    throw std::invalid_argument("GilbertLossModel: delta must be positive");
  // Mean run of consecutive lost packets at spacing delta is geometric
  // with continuation probability exp(-exit_rate * delta):
  //   mean_burst = 1 / (1 - exp(-exit_rate * delta))
  const double exit_rate = -std::log1p(-1.0 / mean_burst) / delta;
  const double enter_rate = exit_rate * p / (1.0 - p);
  return GilbertLossModel(enter_rate, exit_rate);
}

std::unique_ptr<LossProcess> GilbertLossModel::make_process(
    Rng rng, std::size_t /*receiver*/) const {
  return std::make_unique<GilbertProcess>(rng, enter_rate_, exit_rate_);
}

double GilbertLossModel::mean_loss_probability() const {
  return enter_rate_ / (enter_rate_ + exit_rate_);
}

}  // namespace pbl::loss
