#include <stdexcept>

#include "loss/loss_model.hpp"

namespace pbl::loss {

HeterogeneousLossModel::HeterogeneousLossModel(std::size_t receivers,
                                               double alpha, double p_low,
                                               double p_high)
    : receivers_(receivers), p_low_(p_low), p_high_(p_high) {
  if (receivers == 0)
    throw std::invalid_argument("HeterogeneousLossModel: need receivers >= 1");
  if (alpha < 0.0 || alpha > 1.0)
    throw std::invalid_argument("HeterogeneousLossModel: alpha in [0,1]");
  if (p_low < 0.0 || p_low > 1.0 || p_high < 0.0 || p_high > 1.0)
    throw std::invalid_argument("HeterogeneousLossModel: probabilities in [0,1]");
  high_count_ = static_cast<std::size_t>(
      static_cast<double>(receivers) * alpha + 0.5);
  if (high_count_ > receivers_) high_count_ = receivers_;
}

double HeterogeneousLossModel::receiver_loss_probability(
    std::size_t receiver) const {
  if (receiver >= receivers_)
    throw std::out_of_range("HeterogeneousLossModel: receiver index");
  // High-loss receivers occupy the tail of the index range.
  return receiver >= receivers_ - high_count_ ? p_high_ : p_low_;
}

std::unique_ptr<LossProcess> HeterogeneousLossModel::make_process(
    Rng rng, std::size_t receiver) const {
  return BernoulliLossModel(receiver_loss_probability(receiver))
      .make_process(rng, receiver);
}

double HeterogeneousLossModel::mean_loss_probability() const {
  const double hi = static_cast<double>(high_count_);
  const double lo = static_cast<double>(receivers_ - high_count_);
  return (lo * p_low_ + hi * p_high_) / static_cast<double>(receivers_);
}

}  // namespace pbl::loss
