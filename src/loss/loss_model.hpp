// Packet-loss models (paper Sections 3, 3.3 and 4.2).
//
// A LossModel is a factory of per-receiver LossProcess instances; each
// process answers "is a packet transmitted at time t lost?" for
// non-decreasing query times.  Time-independent models (Bernoulli) ignore
// t; the Gilbert model advances a two-state continuous-time Markov chain
// between queries, so query spacing — the Fig. 13 timing of each protocol
// variant — shapes the effective correlation.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "util/rng.hpp"

namespace pbl::loss {

class LossProcess {
 public:
  virtual ~LossProcess() = default;

  /// True if a packet sent at `time` is lost.  `time` must be
  /// non-decreasing across calls on the same process.
  virtual bool lost(double time) = 0;

  /// Long-run loss probability of this process.
  virtual double loss_probability() const = 0;
};

class LossModel {
 public:
  virtual ~LossModel() = default;

  /// Creates the loss process of receiver `receiver` (index only matters
  /// for heterogeneous populations).  Processes of different receivers
  /// are statistically independent.
  virtual std::unique_ptr<LossProcess> make_process(Rng rng,
                                                    std::size_t receiver) const = 0;

  /// Population-average loss probability.
  virtual double mean_loss_probability() const = 0;
};

/// Spatially and temporally independent loss with probability p.
class BernoulliLossModel final : public LossModel {
 public:
  explicit BernoulliLossModel(double p);
  std::unique_ptr<LossProcess> make_process(Rng rng,
                                            std::size_t receiver) const override;
  double mean_loss_probability() const override { return p_; }

 private:
  double p_;
};

/// Two-state continuous-time Markov chain ("Gilbert") burst-loss model
/// (Section 4.2).  State 1 = loss.  Parameterised either directly by the
/// transition rates or from packet-level statistics: stationary loss
/// probability p, mean burst length b (in packets), packet spacing delta.
class GilbertLossModel final : public LossModel {
 public:
  /// enter_rate: 0 -> 1 transitions per second; exit_rate: 1 -> 0.
  GilbertLossModel(double enter_rate, double exit_rate);

  /// The paper's parameterisation: choose rates so the chain has
  /// stationary loss probability `p` and, when sampled every `delta`
  /// seconds, a mean run of consecutive losses of `mean_burst` packets:
  ///   exit_rate  = -ln(1 - 1/mean_burst) / delta
  ///   enter_rate = exit_rate * p / (1 - p)
  /// (The printed Section 4.2 formulas attach the burst-sojourn rate to
  /// the wrong state for their generator convention; see DESIGN.md.)
  static GilbertLossModel from_packet_stats(double p, double mean_burst,
                                            double delta);

  std::unique_ptr<LossProcess> make_process(Rng rng,
                                            std::size_t receiver) const override;
  double mean_loss_probability() const override;

  double enter_rate() const noexcept { return enter_rate_; }
  double exit_rate() const noexcept { return exit_rate_; }

 private:
  double enter_rate_;  // lambda_01
  double exit_rate_;   // lambda_10
};

/// Heterogeneous population (Section 3.3): the first (1-alpha)*R receivers
/// lose independently at p_low, the remainder at p_high.
class HeterogeneousLossModel final : public LossModel {
 public:
  HeterogeneousLossModel(std::size_t receivers, double alpha, double p_low,
                         double p_high);
  std::unique_ptr<LossProcess> make_process(Rng rng,
                                            std::size_t receiver) const override;
  double mean_loss_probability() const override;

  std::size_t receivers() const noexcept { return receivers_; }
  std::size_t high_loss_count() const noexcept { return high_count_; }
  double receiver_loss_probability(std::size_t receiver) const;

 private:
  std::size_t receivers_;
  std::size_t high_count_;
  double p_low_;
  double p_high_;
};

/// Arbitrary class mixture: receivers are assigned to classes by index
/// ranges in declaration order (class 0 owns indices [0, count_0), class
/// 1 the next count_1, ...).  Generalises HeterogeneousLossModel beyond
/// two classes; the analytical counterpart is analysis::Population.
class MultiClassLossModel final : public LossModel {
 public:
  struct Class {
    double loss_prob = 0.0;
    std::size_t count = 0;
  };
  explicit MultiClassLossModel(std::vector<Class> classes);

  std::unique_ptr<LossProcess> make_process(Rng rng,
                                            std::size_t receiver) const override;
  double mean_loss_probability() const override;

  std::size_t receivers() const noexcept { return total_; }
  const std::vector<Class>& classes() const noexcept { return classes_; }
  double receiver_loss_probability(std::size_t receiver) const;

 private:
  std::vector<Class> classes_;
  std::size_t total_ = 0;
};

/// Mixture of arbitrary loss MODELS: receivers are assigned to component
/// models by index ranges in declaration order, so e.g. part of the
/// population can be bursty (Gilbert) while the rest loses independently.
/// Generalises MultiClassLossModel from probabilities to whole models.
class CompositeLossModel final : public LossModel {
 public:
  struct Component {
    std::shared_ptr<const LossModel> model;
    std::size_t count = 0;
  };
  explicit CompositeLossModel(std::vector<Component> components);

  std::unique_ptr<LossProcess> make_process(Rng rng,
                                            std::size_t receiver) const override;
  double mean_loss_probability() const override;

  std::size_t receivers() const noexcept { return total_; }
  /// The component model serving the given receiver index.
  const LossModel& component_for(std::size_t receiver) const;

 private:
  std::vector<Component> components_;
  std::size_t total_ = 0;
};

/// Deterministic scripted loss for tests: packet t_i is lost iff the i-th
/// entry of the pattern is true (pattern repeats; time is ignored).
class TraceLossModel final : public LossModel {
 public:
  explicit TraceLossModel(std::vector<bool> pattern);
  std::unique_ptr<LossProcess> make_process(Rng rng,
                                            std::size_t receiver) const override;
  double mean_loss_probability() const override;

 private:
  std::vector<bool> pattern_;
};

}  // namespace pbl::loss
