#include <stdexcept>

#include "loss/loss_model.hpp"

namespace pbl::loss {

MultiClassLossModel::MultiClassLossModel(std::vector<Class> classes)
    : classes_(std::move(classes)) {
  if (classes_.empty())
    throw std::invalid_argument("MultiClassLossModel: need at least one class");
  for (const auto& c : classes_) {
    if (c.loss_prob < 0.0 || c.loss_prob > 1.0)
      throw std::invalid_argument("MultiClassLossModel: loss_prob in [0,1]");
    if (c.count == 0)
      throw std::invalid_argument("MultiClassLossModel: class count >= 1");
    total_ += c.count;
  }
}

double MultiClassLossModel::receiver_loss_probability(
    std::size_t receiver) const {
  std::size_t offset = 0;
  for (const auto& c : classes_) {
    if (receiver < offset + c.count) return c.loss_prob;
    offset += c.count;
  }
  throw std::out_of_range("MultiClassLossModel: receiver index");
}

std::unique_ptr<LossProcess> MultiClassLossModel::make_process(
    Rng rng, std::size_t receiver) const {
  return BernoulliLossModel(receiver_loss_probability(receiver))
      .make_process(rng, receiver);
}

double MultiClassLossModel::mean_loss_probability() const {
  double sum = 0.0;
  for (const auto& c : classes_)
    sum += c.loss_prob * static_cast<double>(c.count);
  return sum / static_cast<double>(total_);
}

}  // namespace pbl::loss
