#include <stdexcept>

#include "loss/loss_model.hpp"

namespace pbl::loss {

namespace {

class TraceProcess final : public LossProcess {
 public:
  TraceProcess(const std::vector<bool>* pattern, double p)
      : pattern_(pattern), p_(p) {}

  bool lost(double /*time*/) override {
    const bool l = (*pattern_)[pos_];
    pos_ = (pos_ + 1) % pattern_->size();
    return l;
  }
  double loss_probability() const override { return p_; }

 private:
  const std::vector<bool>* pattern_;
  std::size_t pos_ = 0;
  double p_;
};

}  // namespace

TraceLossModel::TraceLossModel(std::vector<bool> pattern)
    : pattern_(std::move(pattern)) {
  if (pattern_.empty())
    throw std::invalid_argument("TraceLossModel: pattern must be non-empty");
}

std::unique_ptr<LossProcess> TraceLossModel::make_process(
    Rng /*rng*/, std::size_t /*receiver*/) const {
  return std::make_unique<TraceProcess>(&pattern_, mean_loss_probability());
}

double TraceLossModel::mean_loss_probability() const {
  std::size_t losses = 0;
  for (const bool b : pattern_) losses += b ? 1 : 0;
  return static_cast<double>(losses) / static_cast<double>(pattern_.size());
}

}  // namespace pbl::loss
