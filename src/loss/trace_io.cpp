#include "loss/trace_io.hpp"

#include <cctype>
#include <fstream>
#include <stdexcept>

namespace pbl::loss {

std::vector<bool> record_trace(LossProcess& process, std::size_t packets,
                               double delta) {
  std::vector<bool> trace(packets);
  for (std::size_t i = 0; i < packets; ++i)
    trace[i] = process.lost(static_cast<double>(i) * delta);
  return trace;
}

void save_trace(const std::string& path, const std::vector<bool>& trace) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_trace: cannot open " + path);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    out.put(trace[i] ? '1' : '0');
    if ((i + 1) % 80 == 0) out.put('\n');
  }
  if (trace.size() % 80 != 0) out.put('\n');
  if (!out) throw std::runtime_error("save_trace: write failed for " + path);
}

std::vector<bool> load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_trace: cannot open " + path);
  std::vector<bool> trace;
  char c = 0;
  while (in.get(c)) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    if (c == '0')
      trace.push_back(false);
    else if (c == '1')
      trace.push_back(true);
    else
      throw std::runtime_error("load_trace: unexpected character in " + path);
  }
  return trace;
}

}  // namespace pbl::loss
