#include "loss/trace_io.hpp"

#include <cctype>
#include <fstream>
#include <stdexcept>

namespace pbl::loss {

std::vector<bool> record_trace(LossProcess& process, std::size_t packets,
                               double delta) {
  std::vector<bool> trace(packets);
  for (std::size_t i = 0; i < packets; ++i)
    trace[i] = process.lost(static_cast<double>(i) * delta);
  return trace;
}

void save_trace(const std::string& path, const std::vector<bool>& trace) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_trace: cannot open " + path);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    out.put(trace[i] ? '1' : '0');
    if ((i + 1) % 80 == 0) out.put('\n');
  }
  if (trace.size() % 80 != 0) out.put('\n');
  if (!out) throw std::runtime_error("save_trace: write failed for " + path);
}

std::vector<bool> parse_trace(std::string_view text) {
  std::vector<bool> trace;
  trace.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '0') {
      trace.push_back(false);
    } else if (c == '1') {
      trace.push_back(true);
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      throw std::runtime_error("parse_trace: unexpected character '" +
                               std::string(1, c) + "' at offset " +
                               std::to_string(i));
    }
  }
  return trace;
}

std::vector<bool> load_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_trace: cannot open " + path);
  std::string text;
  char buf[4096];
  while (in.read(buf, sizeof(buf)) || in.gcount() > 0)
    text.append(buf, static_cast<std::size_t>(in.gcount()));
  // in.get()-style loops swallow mid-stream read errors and silently
  // return a partial trace; distinguish a clean EOF from a failed read.
  if (in.bad())
    throw std::runtime_error("load_trace: read failed for " + path);
  try {
    return parse_trace(text);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error("load_trace: " + path + ": " + e.what());
  }
}

}  // namespace pbl::loss
