// Recording, persisting and replaying loss traces.
//
// A trace turns any stochastic loss process into a reproducible fixture:
// record it once (e.g. from a Gilbert process calibrated to a measured
// path, or from a real packet capture converted offline), save it as a
// compact text file, and replay it through TraceLossModel in simulations
// and tests.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "loss/loss_model.hpp"

namespace pbl::loss {

/// Samples `packets` slots of `process` at `delta` spacing starting at
/// time 0; true = lost.
std::vector<bool> record_trace(LossProcess& process, std::size_t packets,
                               double delta);

/// Writes a trace as lines of '0'/'1' characters (80 per line, trailing
/// newline).  Throws std::runtime_error on I/O failure.
void save_trace(const std::string& path, const std::vector<bool>& trace);

/// Parses trace text: '0'/'1' characters with any whitespace (including
/// CRLF line endings and a missing trailing newline) ignored; empty input
/// yields an empty trace.  Throws std::runtime_error on any other
/// character.  This is the pure core of load_trace(), separated so the
/// format parser can be driven directly from memory (fuzzing, tests).
std::vector<bool> parse_trace(std::string_view text);

/// Reads a file written by save_trace() (whitespace ignored).  Throws
/// std::runtime_error on I/O failure — including read errors after a
/// successful open — or characters other than 0/1.
std::vector<bool> load_trace(const std::string& path);

}  // namespace pbl::loss
