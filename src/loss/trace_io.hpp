// Recording, persisting and replaying loss traces.
//
// A trace turns any stochastic loss process into a reproducible fixture:
// record it once (e.g. from a Gilbert process calibrated to a measured
// path, or from a real packet capture converted offline), save it as a
// compact text file, and replay it through TraceLossModel in simulations
// and tests.
#pragma once

#include <string>
#include <vector>

#include "loss/loss_model.hpp"

namespace pbl::loss {

/// Samples `packets` slots of `process` at `delta` spacing starting at
/// time 0; true = lost.
std::vector<bool> record_trace(LossProcess& process, std::size_t packets,
                               double delta);

/// Writes a trace as lines of '0'/'1' characters (80 per line, trailing
/// newline).  Throws std::runtime_error on I/O failure.
void save_trace(const std::string& path, const std::vector<bool>& trace);

/// Reads a file written by save_trace() (whitespace ignored).  Throws
/// std::runtime_error on I/O failure or characters other than 0/1.
std::vector<bool> load_trace(const std::string& path);

}  // namespace pbl::loss
