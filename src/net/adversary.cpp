#include "net/adversary.hpp"

#include <algorithm>
#include <chrono>

#include "fec/packet.hpp"
#include "net/peer_guard.hpp"
#include "net/udp/udp_np.hpp"

namespace pbl::net {

namespace {

double mono_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* to_string(AdversaryProfile profile) noexcept {
  switch (profile) {
    case AdversaryProfile::kStorm:
      return "storm";
    case AdversaryProfile::kSpoof:
      return "spoof";
    case AdversaryProfile::kReplay:
      return "replay";
    case AdversaryProfile::kGarbage:
      return "garbage";
    case AdversaryProfile::kFalseCompletion:
      return "false-completion";
  }
  return "?";
}

bool parse_adversary_profile(const std::string& name, AdversaryProfile& out) {
  if (name == "storm")
    out = AdversaryProfile::kStorm;
  else if (name == "spoof")
    out = AdversaryProfile::kSpoof;
  else if (name == "replay")
    out = AdversaryProfile::kReplay;
  else if (name == "garbage")
    out = AdversaryProfile::kGarbage;
  else if (name == "false-completion")
    out = AdversaryProfile::kFalseCompletion;
  else
    return false;
  return true;
}

AdversaryPeer::AdversaryPeer(AdversaryConfig config)
    : cfg_(std::move(config)), socket_(0) {
  if (cfg_.auth)
    member_key_ = derive_member_key(cfg_.auth_key, socket_.port());
}

AdversaryPeer::~AdversaryPeer() { stop(); }

void AdversaryPeer::start() {
  if (started_) return;
  started_ = true;
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { run(); });
}

void AdversaryPeer::stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  started_ = false;
}

void AdversaryPeer::run() {
  Rng rng(cfg_.seed);
  const double interval = cfg_.rate > 0.0 ? 1.0 / cfg_.rate : 0.01;
  double next = mono_now();
  while (!stop_.load(std::memory_order_relaxed)) {
    const double now = mono_now();
    if (now >= next) {
      attack_once(rng);
      // Catch-up is capped at one interval: a scheduler stall must not
      // turn into an unbounded burst that swamps even the test harness.
      next = std::max(next + interval, now - interval);
    }
    // The wait doubles as the observation window: group traffic arriving
    // meanwhile teaches the adversary the current TG/round/incarnation.
    observe(std::clamp(next - mono_now(), 0.0, 0.002));
  }
}

void AdversaryPeer::observe(double wait_s) {
  // One timed receive, then drain whatever is queued without waiting.
  bool first = true;
  while (!stop_.load(std::memory_order_relaxed)) {
    auto dg = socket_.receive_from(first ? wait_s : 0.0);
    first = false;
    if (!dg) {
      if (!socket_.has_pending()) break;
      continue;
    }
    const auto& hdr = dg->packet.header;
    ++stats_.captured;
    last_inc_ = std::max(last_inc_, hdr.incarnation);
    if (hdr.type == fec::PacketType::kPoll) {
      ++stats_.polls_seen;
      last_seq_ = hdr.seq;
      if (hdr.tg != kUdpEndOfSession) last_tg_ = hdr.tg;
    } else if (hdr.tg != kUdpEndOfSession &&
               hdr.tg < static_cast<std::uint32_t>(cfg_.num_tgs)) {
      last_tg_ = hdr.tg;
    }
    // Keep a bounded capture buffer of genuine sender frames to replay.
    if (cfg_.profile == AdversaryProfile::kReplay &&
        captured_frames_.size() < 64)
      captured_frames_.push_back(fec::serialize(dg->packet));
  }
}

void AdversaryPeer::attack_once(Rng& rng) {
  const auto send = [&](std::uint16_t dest, const fec::Packet& p) {
    if (socket_.send_to(dest, p) == SendStatus::kWouldBlock)
      ++stats_.would_block;
    ++stats_.sent;
  };
  const auto send_bytes = [&](std::uint16_t dest,
                              std::span<const std::uint8_t> bytes) {
    if (socket_.send_frame(dest, bytes) == SendStatus::kWouldBlock)
      ++stats_.would_block;
    ++stats_.sent;
  };
  // A plausible insider NAK: correct type, current TG and round, own
  // identity.  Each profile corrupts a different aspect of it.
  const auto base_nak = [&](std::uint16_t count) {
    fec::Packet nak;
    nak.header.type = fec::PacketType::kNak;
    nak.header.tg = last_tg_;
    nak.header.count = count;
    nak.header.seq = last_seq_;
    nak.header.incarnation = last_inc_;
    nak.header.index = socket_.port();
    return nak;
  };

  switch (cfg_.profile) {
    case AdversaryProfile::kStorm: {
      // Max-demand NAKs, correctly identified and (when auth is on)
      // correctly tagged: every accepted one inflates the parity burst,
      // so the ONLY effective defense is per-peer rate policing.
      auto nak = base_nak(static_cast<std::uint16_t>(cfg_.k));
      if (cfg_.auth) append_auth_trailer(nak, member_key_, fbseq_++);
      send(cfg_.sender_port, nak);
      break;
    }

    case AdversaryProfile::kSpoof: {
      // Feedback wearing a victim's identity: forged max-demand NAKs to
      // inflate their apparent need, forged ACKs to mark them served.
      if (cfg_.victims.empty()) break;
      const std::uint16_t victim = cfg_.victims[static_cast<std::size_t>(
          rng.below(cfg_.victims.size()))];
      auto fb = base_nak(rng.bernoulli(0.5)
                             ? static_cast<std::uint16_t>(cfg_.k)
                             : std::uint16_t{0});
      fb.header.index = victim;
      // The adversary does not know the victim's key; its own is the
      // best it has (and exactly what the addr-mismatch check catches).
      if (cfg_.auth) append_auth_trailer(fb, member_key_, fbseq_++);
      send(cfg_.sender_port, fb);
      break;
    }

    case AdversaryProfile::kReplay: {
      // Verbatim replays: its own first sealed NAK (same fbseq forever —
      // the replay window must reject the repeats) and captured sender
      // frames bounced back at the sender and injected at victims
      // (forged end markers arrive from the wrong source port).
      if (replay_feedback_.empty()) {
        auto nak = base_nak(1);
        if (cfg_.auth) append_auth_trailer(nak, member_key_, fbseq_++);
        replay_feedback_ = fec::serialize(nak);
      }
      send_bytes(cfg_.sender_port, replay_feedback_);
      if (!captured_frames_.empty()) {
        const auto& frame = captured_frames_[static_cast<std::size_t>(
            rng.below(captured_frames_.size()))];
        send_bytes(cfg_.sender_port, frame);
        if (!cfg_.victims.empty())
          send_bytes(cfg_.victims[static_cast<std::size_t>(
                         rng.below(cfg_.victims.size()))],
                     frame);
      }
      break;
    }

    case AdversaryProfile::kGarbage: {
      // Rotate through malformation classes.  Sealed-but-invalid frames
      // (valid CRC, nonsense semantics) matter most: they are the ones
      // only the shape check — not the parser — can stop.
      const std::uint64_t kind = rng.below(4);
      if (kind == 0) {
        // Raw noise: exercises the datagram parser and resync salvage.
        std::vector<std::uint8_t> noise(1 + rng.below(96));
        for (auto& b : noise)
          b = static_cast<std::uint8_t>(rng.below(256));
        send_bytes(cfg_.sender_port, noise);
        if (!cfg_.victims.empty())
          send_bytes(cfg_.victims[static_cast<std::size_t>(
                         rng.below(cfg_.victims.size()))],
                     noise);
      } else if (kind == 1) {
        // Truncated genuine frame: CRC cannot match.
        auto bytes = fec::serialize(base_nak(1));
        bytes.resize(bytes.size() - 1 - rng.below(bytes.size() - 1));
        send_bytes(cfg_.sender_port, bytes);
      } else if (kind == 2) {
        // Bit-malleated sealed frame: one flipped bit, stale CRC.
        auto nak = base_nak(1);
        if (cfg_.auth) append_auth_trailer(nak, member_key_, fbseq_++);
        auto bytes = fec::serialize(nak);
        bytes[rng.below(bytes.size())] ^=
            static_cast<std::uint8_t>(1u << rng.below(8));
        send_bytes(cfg_.sender_port, bytes);
      } else {
        // Sealed-but-invalid: parses fine, demands the impossible.
        auto nak = base_nak(static_cast<std::uint16_t>(cfg_.k + 1 +
                                                       rng.below(1000)));
        if (rng.bernoulli(0.5))
          nak.header.tg = static_cast<std::uint32_t>(cfg_.num_tgs) +
                          static_cast<std::uint32_t>(rng.below(1000));
        if (cfg_.auth) append_auth_trailer(nak, member_key_, fbseq_++);
        send(cfg_.sender_port, nak);
      }
      break;
    }

    case AdversaryProfile::kFalseCompletion: {
      // Claim the current round is done: a valid ACK for itself (it
      // decoded nothing) and a forged ACK for a victim.  The spoofed one
      // is the dangerous one — it could strand the victim unrepaired.
      auto ack = base_nak(0);
      if (cfg_.auth) append_auth_trailer(ack, member_key_, fbseq_++);
      send(cfg_.sender_port, ack);
      if (!cfg_.victims.empty()) {
        auto forged = base_nak(0);
        forged.header.index = cfg_.victims[static_cast<std::size_t>(
            rng.below(cfg_.victims.size()))];
        if (cfg_.auth) append_auth_trailer(forged, member_key_, fbseq_++);
        send(cfg_.sender_port, forged);
      }
      break;
    }
  }
}

}  // namespace pbl::net
