// Seeded Byzantine receiver for hostile-peer testing (tests/test_hostile,
// soak --scenario hostile).  An AdversaryPeer binds its own UDP socket,
// joins a session's multicast group like any member, and then misbehaves
// according to a profile: NAK storms, identity spoofing, verbatim frame
// replay, malformed garbage, or false completion claims.
//
// The adversary is deliberately WELL-INFORMED: it watches the sender's
// multicast traffic (it is an admitted member), so its forged feedback
// carries plausible TG numbers, round sequences and incarnations.  The
// defenses under test (net/peer_guard.hpp, the receiver-side source and
// auth checks) must win against an insider, not just against noise.
//
// Determinism: all attack content derives from util::Rng(seed).  Timing
// is wall-clock paced (a real thread against a real socket), so frame
// COUNTS vary run to run, but the attack byte-streams per slot do not.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "net/udp/udp_transport.hpp"
#include "util/rng.hpp"

namespace pbl::net {

enum class AdversaryProfile {
  kStorm,           ///< max-demand NAKs at far above the honest rate
  kSpoof,           ///< feedback claiming victims' identities
  kReplay,          ///< verbatim re-sends of captured frames
  kGarbage,         ///< malformed, truncated and sealed-but-invalid frames
  kFalseCompletion  ///< ACKs (own and spoofed) claiming TGs it never decoded
};

const char* to_string(AdversaryProfile profile) noexcept;

/// Parses "storm"/"spoof"/"replay"/"garbage"/"false-completion" (the CLI
/// --hostile values); returns false and leaves `out` alone on nonsense.
bool parse_adversary_profile(const std::string& name, AdversaryProfile& out);

struct AdversaryConfig {
  AdversaryProfile profile = AdversaryProfile::kStorm;
  std::uint16_t sender_port = 0;        ///< where feedback attacks aim
  std::vector<std::uint16_t> victims;   ///< honest members to spoof/inject at
  double rate = 200.0;                  ///< attack frames per second
  std::uint64_t seed = 1;               ///< drives all attack content
  std::size_t k = 4;                    ///< protocol k (bounds forged demand)
  std::size_t num_tgs = 1;              ///< forged TG numbers stay plausible
  bool auth = false;                    ///< tag feedback like a real member
  std::uint64_t auth_key = 0;           ///< session key (it IS admitted)
  std::uint8_t incarnation = 0;         ///< stamped on forged feedback
};

/// Counters filled by the attack thread; read them after stop().
struct AdversaryStats {
  std::uint64_t sent = 0;          ///< attack frames handed to the kernel
  std::uint64_t captured = 0;      ///< sender frames observed (and learned)
  std::uint64_t polls_seen = 0;    ///< POLLs among them (round tracking)
  std::uint64_t would_block = 0;   ///< sends the kernel pushed back on
};

/// One hostile group member.  Construct (binds the socket), register
/// port() as a group member, then start(); stop() joins the thread.
class AdversaryPeer {
 public:
  explicit AdversaryPeer(AdversaryConfig config);
  ~AdversaryPeer();

  AdversaryPeer(const AdversaryPeer&) = delete;
  AdversaryPeer& operator=(const AdversaryPeer&) = delete;

  /// The adversary's own bound port — its admitted group identity.
  std::uint16_t port() const noexcept { return socket_.port(); }

  void start();
  void stop();  ///< idempotent; joins the attack thread

  /// Valid after stop() (undefined while the thread runs).
  const AdversaryStats& stats() const noexcept { return stats_; }

 private:
  void run();
  void observe(double wait_s);  ///< drain + learn from group traffic
  void attack_once(Rng& rng);   ///< emit one attack frame (profile)

  AdversaryConfig cfg_;
  UdpSocket socket_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  // Attack-thread state (no locking: only run() touches these).
  AdversaryStats stats_;
  std::uint32_t last_tg_ = 0;        ///< latest TG seen in sender traffic
  std::uint32_t last_seq_ = 0;       ///< latest POLL round id
  std::uint8_t last_inc_ = 0;        ///< latest sender incarnation
  std::uint32_t fbseq_ = 0;          ///< own auth sequence (storm/false-ack)
  std::uint64_t member_key_ = 0;     ///< own (legitimate) feedback key
  std::vector<std::uint8_t> replay_feedback_;  ///< one sealed NAK, re-sent
  std::vector<std::vector<std::uint8_t>> captured_frames_;  ///< for replay
};

}  // namespace pbl::net
