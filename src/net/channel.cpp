#include "net/channel.hpp"

#include <stdexcept>

namespace pbl::net {

MulticastChannel::MulticastChannel(sim::Simulator& sim,
                                   const loss::LossModel& model,
                                   std::size_t receivers, double delay,
                                   bool lossless_control)
    : sim_(&sim), delay_(delay), lossless_control_(lossless_control) {
  if (receivers == 0)
    throw std::invalid_argument("MulticastChannel: need at least one receiver");
  if (delay < 0.0)
    throw std::invalid_argument("MulticastChannel: negative delay");
  processes_.reserve(receivers);
  for (std::size_t r = 0; r < receivers; ++r)
    processes_.push_back(model.make_process(sim.rng().split(r), r));
}

void MulticastChannel::multicast_down(const fec::Packet& packet) {
  if (tap_) tap_(packet);
  ++stats_.data_multicasts;
  const double t = sim_->now();
  for (std::size_t r = 0; r < processes_.size(); ++r) {
    if (processes_[r]->lost(t)) {
      ++stats_.data_drops;
      continue;
    }
    ++stats_.data_deliveries;
    sim_->schedule_in(delay_, [this, r, packet] {
      if (on_receiver_) on_receiver_(r, packet);
    });
  }
}

void MulticastChannel::multicast_control_down(const fec::Packet& packet) {
  if (tap_) tap_(packet);
  ++stats_.feedback_multicasts;
  const double t = sim_->now();
  for (std::size_t r = 0; r < processes_.size(); ++r) {
    if (!lossless_control_ && processes_[r]->lost(t)) continue;
    sim_->schedule_in(delay_, [this, r, packet] {
      if (on_receiver_) on_receiver_(r, packet);
    });
  }
}

void MulticastChannel::multicast_up(std::size_t from,
                                    const fec::Packet& packet) {
  if (from >= processes_.size())
    throw std::out_of_range("MulticastChannel: bad receiver index");
  if (tap_) tap_(packet);
  ++stats_.feedback_multicasts;
  const double t = sim_->now();
  sim_->schedule_in(delay_, [this, from, packet] {
    if (on_sender_) on_sender_(from, packet);
  });
  for (std::size_t r = 0; r < processes_.size(); ++r) {
    if (r == from) continue;
    if (!lossless_control_ && processes_[r]->lost(t)) continue;
    sim_->schedule_in(delay_, [this, r, packet] {
      if (on_receiver_) on_receiver_(r, packet);
    });
  }
}

}  // namespace pbl::net
