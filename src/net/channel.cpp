#include "net/channel.hpp"

#include <stdexcept>
#include <utility>

namespace pbl::net {

MulticastChannel::MulticastChannel(sim::Simulator& sim,
                                   const loss::LossModel& model,
                                   std::size_t receivers, double delay,
                                   bool lossless_control)
    : sim_(&sim), delay_(delay), lossless_control_(lossless_control) {
  if (receivers == 0)
    throw std::invalid_argument("MulticastChannel: need at least one receiver");
  if (delay < 0.0)
    throw std::invalid_argument("MulticastChannel: negative delay");
  processes_.reserve(receivers);
  for (std::size_t r = 0; r < receivers; ++r)
    processes_.push_back(model.make_process(sim.rng().split(r), r));
}

void MulticastChannel::set_impairment(const ImpairmentConfig& config) {
  impairments_.clear();
  control_impairments_.clear();
  if (config.enabled()) {
    impairments_.reserve(processes_.size());
    for (std::size_t r = 0; r < processes_.size(); ++r) {
      ImpairmentConfig per = config;
      // Independent but reproducible per-receiver fault streams.
      std::uint64_t sm = config.seed ^ (0x696d7061697221ULL + r);
      per.seed = splitmix64(sm);
      impairments_.push_back(std::make_unique<Impairment>(per));
    }
  }
  if (config.control_enabled()) {
    // One policy per control leg: receivers() down/overhear paths plus
    // the up path to the sender.  Seeds are derived with a different
    // tweak than the data policies, so data and control faults never
    // share a stream even for the same receiver.
    control_impairments_.reserve(processes_.size() + 1);
    for (std::size_t r = 0; r <= processes_.size(); ++r) {
      ImpairmentConfig per = config;
      std::uint64_t sm = config.seed ^ (0xc0117401f00dULL + r);
      per.seed = splitmix64(sm);
      control_impairments_.push_back(std::make_unique<Impairment>(per));
    }
  }
}

ImpairmentStats MulticastChannel::impairment_stats() const {
  ImpairmentStats total;
  for (const auto& imp : impairments_) total += imp->stats();
  for (const auto& imp : control_impairments_) total += imp->stats();
  return total;
}

void MulticastChannel::multicast_down(const fec::Packet& packet) {
  if (tap_) tap_(packet);
  ++stats_.data_multicasts;
  const double t = sim_->now();
  for (std::size_t r = 0; r < processes_.size(); ++r) {
    if (processes_[r]->lost(t)) {
      ++stats_.data_drops;
      continue;
    }
    if (impairments_.empty()) {
      ++stats_.data_deliveries;
      sim_->schedule_in(delay_, [this, r, packet] {
        if (on_receiver_) on_receiver_(r, packet);
      });
      continue;
    }
    auto deliveries = impairments_[r]->apply(packet, t);
    if (deliveries.empty()) {
      ++stats_.data_drops;  // the impairment ate every copy
      continue;
    }
    for (auto& d : deliveries) {
      ++stats_.data_deliveries;
      sim_->schedule_in(delay_ + d.extra_delay,
                        [this, r, p = std::move(d.packet)] {
                          if (on_receiver_) on_receiver_(r, p);
                        });
    }
  }
}

void MulticastChannel::multicast_control_down(const fec::Packet& packet) {
  if (tap_) tap_(packet);
  ++stats_.feedback_multicasts;
  const double t = sim_->now();
  for (std::size_t r = 0; r < processes_.size(); ++r) {
    if (!lossless_control_ && processes_[r]->lost(t)) continue;
    if (control_impairments_.empty()) {
      sim_->schedule_in(delay_, [this, r, packet] {
        if (on_receiver_) on_receiver_(r, packet);
      });
      continue;
    }
    for (auto& d : control_impairments_[r]->apply_control(packet)) {
      sim_->schedule_in(delay_ + d.extra_delay,
                        [this, r, p = std::move(d.packet)] {
                          if (on_receiver_) on_receiver_(r, p);
                        });
    }
  }
}

void MulticastChannel::multicast_up(std::size_t from,
                                    const fec::Packet& packet) {
  if (from >= processes_.size())
    throw std::out_of_range("MulticastChannel: bad receiver index");
  if (tap_) tap_(packet);
  ++stats_.feedback_multicasts;
  const double t = sim_->now();
  unicast_up_impl(from, packet);
  for (std::size_t r = 0; r < processes_.size(); ++r) {
    if (r == from) continue;
    if (!lossless_control_ && processes_[r]->lost(t)) continue;
    if (control_impairments_.empty()) {
      sim_->schedule_in(delay_, [this, r, packet] {
        if (on_receiver_) on_receiver_(r, packet);
      });
      continue;
    }
    for (auto& d : control_impairments_[r]->apply_control(packet)) {
      sim_->schedule_in(delay_ + d.extra_delay,
                        [this, r, p = std::move(d.packet)] {
                          if (on_receiver_) on_receiver_(r, p);
                        });
    }
  }
}

void MulticastChannel::unicast_up(std::size_t from, const fec::Packet& packet) {
  if (from >= processes_.size())
    throw std::out_of_range("MulticastChannel: bad receiver index");
  if (tap_) tap_(packet);
  ++stats_.feedback_multicasts;
  unicast_up_impl(from, packet);
}

void MulticastChannel::unicast_up_impl(std::size_t from,
                                       const fec::Packet& packet) {
  if (control_impairments_.empty()) {
    sim_->schedule_in(delay_, [this, from, packet] {
      if (on_sender_) on_sender_(from, packet);
    });
    return;
  }
  auto& up = control_impairments_[processes_.size()];
  for (auto& d : up->apply_control(packet)) {
    sim_->schedule_in(delay_ + d.extra_delay,
                      [this, from, p = std::move(d.packet)] {
                        if (on_sender_) on_sender_(from, p);
                      });
  }
}

}  // namespace pbl::net
