// Lossy multicast channel for the discrete-event simulator.
//
// Forward direction (sender -> receivers): every receiver has an
// independent LossProcess drawn from the configured LossModel; a multicast
// delivers to each receiver that does not lose the packet, after a fixed
// propagation delay.  Feedback direction (receiver -> group): NAKs are
// multicast to the sender AND all other receivers (needed for NAK
// suppression); the paper's analysis assumes control packets are never
// lost, which is the default here but can be disabled.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fec/packet.hpp"
#include "loss/loss_model.hpp"
#include "net/impairment.hpp"
#include "sim/simulator.hpp"

namespace pbl::net {

struct ChannelStats {
  std::uint64_t data_multicasts = 0;     ///< packets the sender put on the wire
  std::uint64_t data_deliveries = 0;     ///< per-receiver successful deliveries
  std::uint64_t data_drops = 0;          ///< per-receiver losses
  std::uint64_t feedback_multicasts = 0; ///< NAK/POLL transmissions
};

class MulticastChannel {
 public:
  /// receiver_handler(receiver, packet) runs at delivery time;
  /// sender_handler(from_receiver, packet) runs when feedback reaches the
  /// sender.  Handlers are installed after construction.
  MulticastChannel(sim::Simulator& sim, const loss::LossModel& model,
                   std::size_t receivers, double delay,
                   bool lossless_control = true);

  using ReceiverHandler =
      std::function<void(std::size_t receiver, const fec::Packet&)>;
  using SenderHandler =
      std::function<void(std::size_t from, const fec::Packet&)>;

  void set_receiver_handler(ReceiverHandler h) { on_receiver_ = std::move(h); }
  void set_sender_handler(SenderHandler h) { on_sender_ = std::move(h); }

  /// Observes every packet put on the wire, in transmission order and
  /// before any loss is applied — for protocol-invariant tests and
  /// debugging.  Pass nullptr to remove.
  using WireTap = std::function<void(const fec::Packet&)>;
  void set_wire_tap(WireTap tap) { tap_ = std::move(tap); }

  /// Installs adversarial impairment (reorder/dup/corrupt/truncate/jitter/
  /// burst drops) on the DATA down-path.  Each receiver gets an
  /// independent Impairment seeded from config.seed and its index, so a
  /// given (config, seed) reproduces the exact delivery schedule.
  ///
  /// When the config's control knobs (control_drop/control_dup/
  /// control_delay) are set, the CONTROL paths are impaired too, from
  /// RNG streams independent of the data-path ones: one per receiver for
  /// the POLL down-path and overheard NAKs, plus one for the NAK/ACK
  /// up-path to the sender.  With the control knobs at zero the control
  /// paths stay clean (the paper's lossless-feedback assumption, also
  /// toggled coarsely by lossless_control).  Call before any traffic; a
  /// fully disabled config removes everything.
  void set_impairment(const ImpairmentConfig& config);

  /// Sum of the per-receiver impairment fault counters (zeros when no
  /// impairment is installed).
  ImpairmentStats impairment_stats() const;

  std::size_t receivers() const noexcept { return processes_.size(); }

  /// Sender -> all receivers, subject to per-receiver loss.
  void multicast_down(const fec::Packet& packet);

  /// Sender -> all receivers on the control path (POLLs).  Lossless when
  /// lossless_control is set (the paper's assumption), lossy otherwise.
  void multicast_control_down(const fec::Packet& packet);

  /// Receiver `from` -> sender and all other receivers (feedback path).
  void multicast_up(std::size_t from, const fec::Packet& packet);

  /// Receiver `from` -> sender only (per-receiver ACKs of the reliable
  /// control mode; other receivers never see it, so it cannot perturb
  /// NAK suppression).  Subject to the control up-path impairment.
  void unicast_up(std::size_t from, const fec::Packet& packet);

  const ChannelStats& stats() const noexcept { return stats_; }

 private:
  /// The sender leg of the feedback path, shared by multicast_up and
  /// unicast_up: clean, or through the control up-path policy.
  void unicast_up_impl(std::size_t from, const fec::Packet& packet);

  sim::Simulator* sim_;
  std::vector<std::unique_ptr<loss::LossProcess>> processes_;
  std::vector<std::unique_ptr<Impairment>> impairments_;  // empty = clean
  /// Control-path policies: [r] = down/overhear path to receiver r,
  /// [receivers()] = up path to the sender.  Empty = clean control.
  std::vector<std::unique_ptr<Impairment>> control_impairments_;
  double delay_;
  bool lossless_control_;
  ReceiverHandler on_receiver_;
  SenderHandler on_sender_;
  WireTap tap_;
  ChannelStats stats_;
};

}  // namespace pbl::net
