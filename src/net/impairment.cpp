#include "net/impairment.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace pbl::net {

ImpairmentStats& ImpairmentStats::operator+=(const ImpairmentStats& o) noexcept {
  processed += o.processed;
  dropped += o.dropped;
  burst_dropped += o.burst_dropped;
  duplicated += o.duplicated;
  corrupted += o.corrupted;
  corrupt_dropped += o.corrupt_dropped;
  truncated += o.truncated;
  reordered += o.reordered;
  delivered += o.delivered;
  control_processed += o.control_processed;
  control_dropped += o.control_dropped;
  control_duplicated += o.control_duplicated;
  control_delayed += o.control_delayed;
  control_delivered += o.control_delivered;
  return *this;
}

namespace {

void validate_prob(double p, const char* name) {
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument(std::string("Impairment: ") + name +
                                " must be in [0, 1]");
}

}  // namespace

Impairment::Impairment(const ImpairmentConfig& config)
    : cfg_(config), rng_(config.seed),
      // A split() substream, NOT a reseed: the control stream must be
      // independent of rng_'s draw sequence so enabling control faults
      // leaves the data-path schedule of this seed byte-identical.
      control_rng_(Rng(config.seed).split(0xc0117401ULL)) {
  validate_prob(cfg_.drop_prob, "drop_prob");
  validate_prob(cfg_.dup_prob, "dup_prob");
  validate_prob(cfg_.corrupt_prob, "corrupt_prob");
  validate_prob(cfg_.truncate_prob, "truncate_prob");
  validate_prob(cfg_.reorder_prob, "reorder_prob");
  validate_prob(cfg_.control_drop, "control_drop");
  validate_prob(cfg_.control_dup, "control_dup");
  if (cfg_.control_delay < 0.0)
    throw std::invalid_argument("Impairment: control_delay must be >= 0");
  if (cfg_.delay_jitter < 0.0)
    throw std::invalid_argument("Impairment: delay_jitter must be >= 0");
  if (cfg_.reorder_step < 0.0)
    throw std::invalid_argument("Impairment: reorder_step must be >= 0");
  if (cfg_.burst_drop_p != 0.0) {
    validate_prob(cfg_.burst_drop_p, "burst_drop_p");
    burst_ = loss::GilbertLossModel::from_packet_stats(
                 cfg_.burst_drop_p, cfg_.burst_len, cfg_.burst_delta)
                 .make_process(rng_.split(0x6275727374ULL), 0);
  }
}

bool Impairment::pre_drop(double now) {
  if (burst_ && burst_->lost(now)) {
    ++stats_.burst_dropped;
    return true;
  }
  if (cfg_.drop_prob > 0.0 && rng_.bernoulli(cfg_.drop_prob)) {
    ++stats_.dropped;
    return true;
  }
  return false;
}

void Impairment::corrupt_bytes(std::vector<std::uint8_t>& bytes) {
  if (bytes.empty()) return;
  const std::size_t flips = 1 + static_cast<std::size_t>(rng_.below(4));
  for (std::size_t f = 0; f < flips; ++f) {
    const std::size_t pos = static_cast<std::size_t>(rng_.below(bytes.size()));
    bytes[pos] ^= static_cast<std::uint8_t>(1u << rng_.below(8));
  }
}

void Impairment::truncate_bytes(std::vector<std::uint8_t>& bytes) {
  if (bytes.empty()) return;
  bytes.resize(static_cast<std::size_t>(rng_.below(bytes.size())));
}

std::vector<Impairment::Delivery> Impairment::apply(const fec::Packet& packet,
                                                    double now) {
  ++stats_.processed;
  std::vector<Delivery> out;
  if (pre_drop(now)) return out;

  std::size_t copies = 1;
  if (cfg_.dup_prob > 0.0 && rng_.bernoulli(cfg_.dup_prob)) {
    ++stats_.duplicated;
    copies = 2;
  }

  for (std::size_t c = 0; c < copies; ++c) {
    Delivery d;
    // Damage is applied to the real wire bytes; the parse decides whether
    // the damaged copy survives (it virtually never does — the CRC and
    // the semantic header checks turn corruption into loss).
    const bool corrupt =
        cfg_.corrupt_prob > 0.0 && rng_.bernoulli(cfg_.corrupt_prob);
    const bool truncate =
        cfg_.truncate_prob > 0.0 && rng_.bernoulli(cfg_.truncate_prob);
    if (corrupt || truncate) {
      auto bytes = fec::serialize(packet);
      if (corrupt) {
        ++stats_.corrupted;
        corrupt_bytes(bytes);
      }
      if (truncate) {
        ++stats_.truncated;
        truncate_bytes(bytes);
      }
      try {
        d.packet = fec::deserialize(bytes);
      } catch (const std::invalid_argument&) {
        ++stats_.corrupt_dropped;
        continue;  // corruption became loss, as the contract requires
      }
    } else {
      d.packet = packet;
    }
    if (cfg_.delay_jitter > 0.0) d.extra_delay += rng_.uniform() * cfg_.delay_jitter;
    if (cfg_.reorder_window > 0 && cfg_.reorder_prob > 0.0 &&
        rng_.bernoulli(cfg_.reorder_prob)) {
      ++stats_.reordered;
      d.extra_delay += cfg_.reorder_step *
                       static_cast<double>(1 + rng_.below(cfg_.reorder_window));
    }
    ++stats_.delivered;
    out.push_back(std::move(d));
  }
  return out;
}

std::vector<Impairment::Delivery> Impairment::apply_control(
    const fec::Packet& packet) {
  ++stats_.control_processed;
  std::vector<Delivery> out;
  if (cfg_.control_drop > 0.0 && control_rng_.bernoulli(cfg_.control_drop)) {
    ++stats_.control_dropped;
    return out;
  }
  std::size_t copies = 1;
  if (cfg_.control_dup > 0.0 && control_rng_.bernoulli(cfg_.control_dup)) {
    ++stats_.control_duplicated;
    copies = 2;
  }
  for (std::size_t c = 0; c < copies; ++c) {
    Delivery d;
    d.packet = packet;
    if (cfg_.control_delay > 0.0) {
      d.extra_delay = control_rng_.uniform() * cfg_.control_delay;
      ++stats_.control_delayed;
    }
    ++stats_.control_delivered;
    out.push_back(std::move(d));
  }
  return out;
}

std::vector<std::vector<std::uint8_t>> Impairment::apply_bytes(
    std::span<const std::uint8_t> bytes) {
  // On the byte path control datagrams are recognisable by the wire type
  // (byte 0: 2 = POLL, 3 = NAK).  With control faults configured they are
  // diverted to the control policy (drop/dup only; extra delay has no
  // meaning for a datagram already received); with the control knobs at
  // zero they flow through the data-path faults unchanged, preserving the
  // pre-existing byte schedules per seed.
  if (cfg_.control_enabled() && bytes.size() >= 1 &&
      (bytes[0] == 2 || bytes[0] == 3)) {
    ++stats_.control_processed;
    std::vector<std::vector<std::uint8_t>> out;
    // The reorder queue still makes one slot of forward progress: a
    // control datagram occupies a receive slot whether or not it survives.
    for (auto& h : held_)
      if (h.release_after > 0) --h.release_after;
    if (!(cfg_.control_drop > 0.0 &&
          control_rng_.bernoulli(cfg_.control_drop))) {
      std::size_t copies = 1;
      if (cfg_.control_dup > 0.0 && control_rng_.bernoulli(cfg_.control_dup)) {
        ++stats_.control_duplicated;
        copies = 2;
      }
      for (std::size_t c = 0; c < copies; ++c) {
        ++stats_.control_delivered;
        out.emplace_back(bytes.begin(), bytes.end());
      }
    } else {
      ++stats_.control_dropped;
    }
    for (auto it = held_.begin(); it != held_.end();) {
      if (it->release_after == 0) {
        ++stats_.delivered;
        out.push_back(std::move(it->bytes));
        it = held_.erase(it);
      } else {
        ++it;
      }
    }
    return out;
  }

  ++stats_.processed;
  std::vector<std::vector<std::uint8_t>> out;

  // One slot of forward progress for the reorder queue, whatever happens
  // to the current datagram.
  for (auto& h : held_)
    if (h.release_after > 0) --h.release_after;

  // Drop decisions use the packet counter as the burst clock: datagrams
  // have no timestamps, so the chain advances one burst_delta per packet.
  const double now =
      static_cast<double>(stats_.processed) * cfg_.burst_delta;
  if (!pre_drop(now)) {
    std::size_t copies = 1;
    if (cfg_.dup_prob > 0.0 && rng_.bernoulli(cfg_.dup_prob)) {
      ++stats_.duplicated;
      copies = 2;
    }
    for (std::size_t c = 0; c < copies; ++c) {
      std::vector<std::uint8_t> copy(bytes.begin(), bytes.end());
      if (cfg_.corrupt_prob > 0.0 && rng_.bernoulli(cfg_.corrupt_prob)) {
        ++stats_.corrupted;
        corrupt_bytes(copy);
      }
      if (cfg_.truncate_prob > 0.0 && rng_.bernoulli(cfg_.truncate_prob)) {
        ++stats_.truncated;
        truncate_bytes(copy);
      }
      if (cfg_.reorder_window > 0 && cfg_.reorder_prob > 0.0 &&
          rng_.bernoulli(cfg_.reorder_prob)) {
        ++stats_.reordered;
        held_.push_back(
            {std::move(copy), 1 + static_cast<std::size_t>(
                                      rng_.below(cfg_.reorder_window))});
      } else {
        ++stats_.delivered;
        out.push_back(std::move(copy));
      }
    }
  }

  // Release every held datagram whose slip expired.
  for (auto it = held_.begin(); it != held_.end();) {
    if (it->release_after == 0) {
      ++stats_.delivered;
      out.push_back(std::move(it->bytes));
      it = held_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

std::vector<std::vector<std::uint8_t>> Impairment::drain() {
  std::vector<std::vector<std::uint8_t>> out;
  for (auto& h : held_) {
    ++stats_.delivered;
    out.push_back(std::move(h.bytes));
  }
  held_.clear();
  return out;
}

}  // namespace pbl::net
