// Deterministic adversarial network impairment for the simulated channel
// and the UDP transport.
//
// Real multicast paths do more than erase packets: they reorder,
// duplicate, corrupt and truncate them, and losses arrive in bursts.  An
// Impairment is a seeded policy that applies those faults to a packet
// stream reproducibly — the same config and seed yields the same fault
// schedule bit for bit, so protocol behaviour under adversarial
// conditions is a regression-testable property rather than a flaky one.
//
// Two integration points share one policy object:
//  - Packet level (net::MulticastChannel): apply() maps one transmitted
//    packet to zero or more deliveries, each with an extra delay.
//    Corruption and truncation are applied to the REAL wire encoding
//    (fec::serialize) and a copy whose bytes no longer parse is dropped,
//    honouring the fec::deserialize contract that corruption must become
//    loss before it reaches the erasure code.
//  - Byte level (net::UdpSocket): apply_bytes() maps one received
//    datagram to zero or more datagrams (possibly mutated, possibly held
//    back past later ones), which the socket then parses as usual.
//
// Burst drops reuse the existing Gilbert two-state chain
// (loss::GilbertLossModel), calibrated from packet statistics exactly as
// in Section 4.2 of the paper.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "fec/packet.hpp"
#include "loss/loss_model.hpp"
#include "util/rng.hpp"

namespace pbl::net {

struct ImpairmentConfig {
  std::uint64_t seed = 1;

  double drop_prob = 0.0;      ///< i.i.d. silent drop probability
  double dup_prob = 0.0;       ///< probability a packet is delivered twice
  double corrupt_prob = 0.0;   ///< probability of flipping 1..4 wire bits
  double truncate_prob = 0.0;  ///< probability the datagram is cut short
  double delay_jitter = 0.0;   ///< extra delay uniform in [0, delay_jitter) s

  /// Reordering: with probability reorder_prob a packet is held back.  On
  /// the packet path it slips by reorder_step * u seconds, u uniform in
  /// [1, reorder_window]; on the byte path it is released only after up
  /// to reorder_window subsequent datagrams have been delivered.
  double reorder_prob = 0.0;
  std::size_t reorder_window = 0;  ///< max packets a held-back packet slips
  double reorder_step = 0.001;     ///< seconds per slipped slot (packet path)

  /// Burst drops via the Gilbert chain: stationary loss probability
  /// burst_drop_p (0 disables), mean burst length burst_len packets at
  /// burst_delta packet spacing (GilbertLossModel::from_packet_stats).
  double burst_drop_p = 0.0;
  double burst_len = 2.0;
  double burst_delta = 0.001;

  /// Control-path (NAK/POLL) faults: the feedback-loss policy q_f of
  /// docs/ROBUSTNESS.md.  Drawn from an RNG stream independent of the
  /// data-path faults above, derived from the same seed — enabling them
  /// leaves the DATA-path fault schedule byte-identical per seed.
  double control_drop = 0.0;   ///< i.i.d. control-packet drop probability
  double control_dup = 0.0;    ///< probability a control packet is doubled
  double control_delay = 0.0;  ///< extra control delay uniform in [0, x) s

  /// True if any DATA-path fault is active; a default-constructed config
  /// is a no-op.
  bool enabled() const noexcept {
    return drop_prob > 0.0 || dup_prob > 0.0 || corrupt_prob > 0.0 ||
           truncate_prob > 0.0 || delay_jitter > 0.0 ||
           (reorder_prob > 0.0 && reorder_window > 0) || burst_drop_p > 0.0;
  }

  /// True if any control-path fault is active.
  bool control_enabled() const noexcept {
    return control_drop > 0.0 || control_dup > 0.0 || control_delay > 0.0;
  }
};

struct ImpairmentStats {
  std::uint64_t processed = 0;        ///< packets offered to the policy
  std::uint64_t dropped = 0;          ///< i.i.d. drops
  std::uint64_t burst_dropped = 0;    ///< Gilbert-chain drops
  std::uint64_t duplicated = 0;       ///< extra copies created
  std::uint64_t corrupted = 0;        ///< copies with flipped bits
  std::uint64_t corrupt_dropped = 0;  ///< corrupted copies killed by parsing
  std::uint64_t truncated = 0;        ///< copies cut short
  std::uint64_t reordered = 0;        ///< copies held back
  std::uint64_t delivered = 0;        ///< copies that survived to delivery

  std::uint64_t control_processed = 0;   ///< control packets offered
  std::uint64_t control_dropped = 0;     ///< control packets lost
  std::uint64_t control_duplicated = 0;  ///< extra control copies created
  std::uint64_t control_delayed = 0;     ///< control copies given extra delay
  std::uint64_t control_delivered = 0;   ///< control copies delivered

  ImpairmentStats& operator+=(const ImpairmentStats& o) noexcept;
};

class Impairment {
 public:
  explicit Impairment(const ImpairmentConfig& config);

  /// A surviving copy of a packet and the extra delay (on top of the
  /// channel's propagation delay) it accrued from jitter or reordering.
  struct Delivery {
    fec::Packet packet;
    double extra_delay = 0.0;
  };

  /// Packet path: returns the surviving copies of `packet` (empty on
  /// drop, two on duplication).  `now` drives the Gilbert burst chain.
  /// Corruption/truncation round-trip through fec::serialize /
  /// fec::deserialize, so a damaged copy is dropped exactly when the
  /// real wire path would drop it.
  std::vector<Delivery> apply(const fec::Packet& packet, double now);

  /// Control path (NAK/POLL): drop, duplication and delay only — control
  /// packets are never corrupted or reordered (corruption would just be
  /// loss, which control_drop already models).  Decisions come from an
  /// RNG stream independent of apply()/apply_bytes(), so enabling
  /// control faults never perturbs the data-path schedule of a seed.
  std::vector<Delivery> apply_control(const fec::Packet& packet);

  /// Byte path: returns the datagrams to deliver, in order, given one
  /// received datagram.  Held-back (reordered) datagrams are returned by
  /// a LATER call, after up to reorder_window successors; drain() flushes
  /// them at end of stream.
  std::vector<std::vector<std::uint8_t>> apply_bytes(
      std::span<const std::uint8_t> bytes);

  /// Releases any datagrams still held back by the reorder queue.
  std::vector<std::vector<std::uint8_t>> drain();

  const ImpairmentConfig& config() const noexcept { return cfg_; }
  const ImpairmentStats& stats() const noexcept { return stats_; }

 private:
  bool pre_drop(double now);  // burst + i.i.d. drop decision
  /// Flips 1..4 random bits of `bytes` in place.
  void corrupt_bytes(std::vector<std::uint8_t>& bytes);
  /// Cuts `bytes` to a strictly shorter random length (possibly zero).
  void truncate_bytes(std::vector<std::uint8_t>& bytes);

  ImpairmentConfig cfg_;
  Rng rng_;          // data-path fault stream
  Rng control_rng_;  // control-path fault stream (independent of rng_)
  std::unique_ptr<loss::LossProcess> burst_;
  ImpairmentStats stats_;

  struct Held {
    std::vector<std::uint8_t> bytes;
    std::size_t release_after;  // deliveries remaining until release
  };
  std::deque<Held> held_;  // byte-path reorder queue
};

}  // namespace pbl::net
