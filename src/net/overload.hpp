// Overload-robustness knobs for the server-side session drivers
// (docs/ROBUSTNESS.md, "Overload"): what to do when the kernel pushes
// back for longer than a burst, how receivers damp NAK implosion at
// runtime, and when a persistently lagging member is quarantined onto
// parity-only catch-up instead of stalling the group (paper Section 3.3).
//
// Every knob defaults to OFF and the default-configured driver is
// wire-identical to the pre-overload one — the differential suites pin
// that down — so overload handling is strictly opt-in per session.
#pragma once

#include <cstddef>

namespace pbl::net {

/// What a sender sheds once kernel pushback outlasts `stall_timeout`.
enum class ShedPolicy {
  /// Keep deferring on the retry timer — never drop, never fail.  The
  /// session deadline (when set) is the only bound.
  kDefer,
  /// Drop the unsent tail of the stalled PARITY burst and move on; the
  /// next NAK round re-requests what the drop cost.  DATA bursts always
  /// defer — shedding originals would guarantee repair work.
  kDropNewestParity,
  /// Give up: finish the session immediately with a structured
  /// PartialDeliveryReport (overloaded = true), refusing further work.
  kRefuse,
};

struct OverloadConfig {
  /// Token-bucket pacing of logical packet sends (DATA/PARITY), in
  /// packets per second; 0 disables.  A paced sender degrades to this
  /// rate floor under pushback instead of spinning the reactor.
  double pace_rate = 0.0;
  /// Bucket depth in packets (burst tolerance above the rate floor).
  double pace_burst = 16.0;

  /// Sustained-would-block budget [s] before `shed_policy` applies;
  /// 0 = defer indefinitely (the session deadline still bounds the run).
  double stall_timeout = 0.0;
  /// Reactor-timer retry cadence while a burst is stalled or the arena
  /// is exhausted [s].
  double retry_interval = 0.005;
  ShedPolicy shed_policy = ShedPolicy::kDefer;

  /// Receiver-side runtime NAK suppression (Section 5.1 slotting): a
  /// POLLed receiver needing l packets delays its NAK by a seeded slot
  /// draw instead of answering instantly; repair arriving first (another
  /// member asked for at least as much) suppresses the send entirely.
  bool nak_suppression = false;
  /// Slot size Ts [s] for the suppression draw; 0 = poll_window / (k+1)
  /// so the worst slot still lands inside the sender's collect window.
  double nak_slot = 0.0;
  /// Sender-side per-round feedback budget: NAKs beyond this many per
  /// round are counted as suppressed and do not widen the repair burst
  /// (the next round re-collects); 0 = unbounded.
  std::size_t feedback_budget = 0;

  /// Rounds a member may lag behind an acked quorum before quarantine;
  /// 0 disables quarantine.
  std::size_t quarantine_deficit = 0;
  /// Fraction of live members that must have ACKed the round for the
  /// laggards to accrue deficit (no one is penalised when the whole
  /// group is struggling).
  double quarantine_quorum = 0.5;
  /// Parity-only catch-up rounds served to quarantined members per TG
  /// after the main transfer; members still missing data after the
  /// budget are evicted via the liveness machinery.
  std::size_t catch_up_rounds = 4;
};

}  // namespace pbl::net
