#include "net/pacer.hpp"

#include <algorithm>

namespace pbl::net {

namespace {
// Guards the float comparison at exactly the earliest() instant: after
// sleeping (1 - tokens) / rate seconds the refill lands within an ulp of
// one whole token, and the admit must not spin on the rounding error.
constexpr double kSlack = 1e-9;
}  // namespace

Pacer::Pacer(double rate, double burst, double start)
    : rate_(rate > 0.0 ? rate : 0.0),
      burst_(std::max(burst, 1.0)),
      tokens_(std::max(burst, 1.0)),
      last_(start) {}

double Pacer::available(double now) const noexcept {
  if (!enabled()) return 1.0;
  const double dt = std::max(0.0, now - last_);
  return std::min(burst_, tokens_ + dt * rate_);
}

bool Pacer::ready(double now) const noexcept {
  return !enabled() || available(now) + kSlack >= 1.0;
}

void Pacer::consume(double now) noexcept {
  if (!enabled()) return;
  tokens_ = available(now) - 1.0;
  last_ = now;
}

double Pacer::earliest(double now) const noexcept {
  if (ready(now)) return now;
  return now + (1.0 - available(now)) / rate_;
}

}  // namespace pbl::net
