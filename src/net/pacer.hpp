// Deterministic token-bucket pacer for the overload-hardened send path
// (docs/ROBUSTNESS.md).  Tokens accrue at `rate` per second up to a
// `burst` ceiling; one token buys one logical packet send.  Time is
// whatever the caller reads from its injected protocol::Clock — the
// pacer never touches a real clock, so a ManualClock test replays the
// exact same admit/deny schedule every run.
//
// A sender under kernel pushback degrades to the configured rate floor
// instead of spinning: when ready() is false, earliest() is the precise
// absolute time the next token lands, which the reactor drivers use as
// their retry-timer deadline.
#pragma once

namespace pbl::net {

class Pacer {
 public:
  /// Disabled pacer: always ready, consume() is a no-op.
  Pacer() = default;
  /// `rate` tokens per second, bucket capped at `burst` tokens (the
  /// bucket starts full).  rate <= 0 constructs a disabled pacer.
  Pacer(double rate, double burst, double start);

  bool enabled() const noexcept { return rate_ > 0.0; }

  /// True when at least one whole token is available at `now`.
  bool ready(double now) const noexcept;

  /// Takes one token (may drive the bucket transiently negative if the
  /// caller ignored ready(); the debt is paid before the next admit).
  void consume(double now) noexcept;

  /// Absolute time at which ready() becomes true — `now` itself when a
  /// token is already available.  Meaningless on a disabled pacer.
  double earliest(double now) const noexcept;

  /// Tokens available at `now` (capped at burst).
  double available(double now) const noexcept;

 private:
  double rate_ = 0.0;
  double burst_ = 0.0;
  double tokens_ = 0.0;
  double last_ = 0.0;
};

}  // namespace pbl::net
