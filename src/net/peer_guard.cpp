#include "net/peer_guard.hpp"

#include <algorithm>
#include <cstring>

namespace pbl::net {

namespace {

inline std::uint64_t rotl64(std::uint64_t x, int b) noexcept {
  return (x << b) | (x >> (64 - b));
}

inline std::uint64_t load_le64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

inline void put_le16(std::uint8_t* p, std::uint16_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

inline void put_le32(std::uint8_t* p, std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

inline void put_le64(std::uint8_t* p, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

inline std::uint32_t load_le32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

// One splitmix64 step — the key-derivation mixer (matches util/rng.hpp).
inline std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t siphash24(std::uint64_t k0, std::uint64_t k1,
                        std::span<const std::uint8_t> data) {
  std::uint64_t v0 = 0x736f6d6570736575ULL ^ k0;
  std::uint64_t v1 = 0x646f72616e646f6dULL ^ k1;
  std::uint64_t v2 = 0x6c7967656e657261ULL ^ k0;
  std::uint64_t v3 = 0x7465646279746573ULL ^ k1;

  const auto sipround = [&] {
    v0 += v1;
    v1 = rotl64(v1, 13);
    v1 ^= v0;
    v0 = rotl64(v0, 32);
    v2 += v3;
    v3 = rotl64(v3, 16);
    v3 ^= v2;
    v0 += v3;
    v3 = rotl64(v3, 21);
    v3 ^= v0;
    v2 += v1;
    v1 = rotl64(v1, 17);
    v1 ^= v2;
    v2 = rotl64(v2, 32);
  };

  const std::size_t n = data.size();
  const std::size_t full = n & ~std::size_t{7};
  for (std::size_t i = 0; i < full; i += 8) {
    const std::uint64_t m = load_le64(data.data() + i);
    v3 ^= m;
    sipround();
    sipround();
    v0 ^= m;
  }
  std::uint64_t last = static_cast<std::uint64_t>(n & 0xff) << 56;
  for (std::size_t i = full; i < n; ++i)
    last |= static_cast<std::uint64_t>(data[i]) << (8 * (i - full));
  v3 ^= last;
  sipround();
  sipround();
  v0 ^= last;
  v2 ^= 0xff;
  sipround();
  sipround();
  sipround();
  sipround();
  return v0 ^ v1 ^ v2 ^ v3;
}

std::uint64_t derive_member_key(std::uint64_t session_key,
                                std::uint16_t port) {
  return mix64(session_key ^ (0x6d656d62ULL << 16) ^ port);
}

std::uint64_t derive_group_key(std::uint64_t session_key) {
  return mix64(session_key ^ 0x67726f7570ULL);
}

std::uint64_t feedback_tag(std::uint64_t key, const fec::PacketHeader& header,
                           std::uint32_t fbseq) {
  // The tag covers every semantic header field in wire order (type ..
  // seq; payload_len is framing, not semantics) plus the anti-replay
  // fbseq.  Control frames carry no payload besides the trailer itself,
  // so this authenticates everything that drives protocol state.
  std::uint8_t buf[22];
  buf[0] = static_cast<std::uint8_t>(header.type);
  buf[1] = header.incarnation;
  put_le32(buf + 2, header.tg);
  put_le16(buf + 6, header.index);
  put_le16(buf + 8, header.k);
  put_le16(buf + 10, header.n);
  put_le16(buf + 12, header.count);
  put_le32(buf + 14, header.seq);
  put_le32(buf + 18, fbseq);
  // Expand the 64-bit session-derived key into SipHash's 128-bit key.
  return siphash24(key, mix64(key), std::span<const std::uint8_t>(buf));
}

void append_auth_trailer(fec::Packet& packet, std::uint64_t key,
                         std::uint32_t fbseq) {
  const std::uint64_t tag = feedback_tag(key, packet.header, fbseq);
  const std::size_t base = packet.payload.size();
  packet.payload.resize(base + kAuthTrailerSize);
  put_le32(packet.payload.data() + base, fbseq);
  put_le64(packet.payload.data() + base + 4, tag);
}

std::optional<std::uint32_t> verify_auth_trailer(const fec::Packet& packet,
                                                 std::uint64_t key) {
  if (packet.payload.size() < kAuthTrailerSize) return std::nullopt;
  const std::uint8_t* trailer =
      packet.payload.data() + packet.payload.size() - kAuthTrailerSize;
  const std::uint32_t fbseq = load_le32(trailer);
  const std::uint64_t want = feedback_tag(key, packet.header, fbseq);
  // Fold the comparison through XOR so it is not value-dependent
  // byte-by-byte (a timing side channel is a stretch on loopback, but
  // the constant-time form costs nothing).
  std::uint64_t got = 0;
  std::memcpy(&got, trailer + 4, sizeof(got));
  std::uint8_t want_le[8];
  put_le64(want_le, want);
  std::uint64_t want_native = 0;
  std::memcpy(&want_native, want_le, sizeof(want_native));
  if ((got ^ want_native) != 0) return std::nullopt;
  return fbseq;
}

PeerGuard::PeerGuard(PeerGuardConfig cfg, std::vector<std::uint16_t> members,
                     std::size_t k, std::size_t num_tgs, double now)
    : cfg_(cfg), members_(std::move(members)), k_(k), num_tgs_(num_tgs) {
  peers_.resize(members_.size());
  for (std::size_t m = 0; m < members_.size(); ++m) {
    peers_[m].bucket = Pacer(cfg_.feedback_rate, cfg_.feedback_burst, now);
    peers_[m].key = derive_member_key(cfg_.auth_key, members_[m]);
  }
}

bool PeerGuard::window_admit(ReplayWindow& w, std::uint64_t val) {
  if (!w.any) {
    w.any = true;
    w.top = val;
    w.bits = 1;
    return true;
  }
  if (val > w.top) {
    const std::uint64_t shift = val - w.top;
    w.bits = shift >= 64 ? 0 : w.bits << shift;
    w.bits |= 1;
    w.top = val;
    return true;
  }
  const std::uint64_t diff = w.top - val;
  if (diff >= 64) return false;  // older than the window: treat as replay
  const std::uint64_t mask = std::uint64_t{1} << diff;
  if (w.bits & mask) return false;
  w.bits |= mask;
  return true;
}

void PeerGuard::strike(Peer& peer, double now) {
  ++peer.strikes;
  if (peer.strikes >= cfg_.ban_after) {
    peer.banned = true;
    peer.ever_banned = true;
    peer.banned_until = now + cfg_.ban_duration;
    peer.greylisted_until = 0.0;
    ++stats_.banned;
  } else if (peer.strikes >= cfg_.greylist_after &&
             now >= peer.greylisted_until) {
    peer.greylisted_until = now + cfg_.greylist_duration;
    ++stats_.greylisted;
  }
}

PeerVerdict PeerGuard::check(std::uint16_t src_port, const fec::Packet& packet,
                             double now) {
  const auto it = std::find(members_.begin(), members_.end(), src_port);
  if (it == members_.end()) {
    ++stats_.unknown_source;
    ++stats_.rejected;
    return PeerVerdict::kUnknownSource;
  }
  Peer& peer = peers_[static_cast<std::size_t>(it - members_.begin())];

  // Lazy readmission: a ban is quarantine, not expulsion.  Strikes and
  // the greylist reset; the replay window survives so captured frames
  // from before the ban stay dead.
  if (peer.banned && now >= peer.banned_until) {
    peer.banned = false;
    peer.strikes = 0;
    peer.greylisted_until = 0.0;
    peer.bucket = Pacer(cfg_.feedback_rate, cfg_.feedback_burst, now);
    ++stats_.readmitted;
  }
  if (peer.banned) {
    ++stats_.ban_drops;
    ++stats_.rejected;
    return PeerVerdict::kBanned;
  }

  // Shape: the sender socket only ever legitimately hears feedback —
  // a NAK/ACK about one of this session's TGs, demanding at most k
  // packets, with no payload beyond the (optional) auth trailer.
  const fec::PacketHeader& h = packet.header;
  const std::size_t expected_payload = cfg_.auth ? kAuthTrailerSize : 0;
  if (h.type != fec::PacketType::kNak || h.count > k_ || h.tg >= num_tgs_ ||
      packet.payload.size() != expected_payload) {
    strike(peer, now);
    ++stats_.bad_shape;
    ++stats_.rejected;
    return PeerVerdict::kBadShape;
  }

  // Identity: the member the frame claims to be must be where the bytes
  // came from.  Spoofing a victim's identity (to forge its ACKs or
  // inflate its NAK demand) is the cheapest feedback attack.
  if (cfg_.require_index_match && h.index != src_port) {
    strike(peer, now);
    ++stats_.addr_mismatch;
    ++stats_.rejected;
    return PeerVerdict::kAddrMismatch;
  }

  if (cfg_.auth) {
    const auto fbseq = verify_auth_trailer(packet, peer.key);
    if (!fbseq) {
      strike(peer, now);
      ++stats_.auth_failed;
      ++stats_.rejected;
      return PeerVerdict::kBadAuth;
    }
    const std::uint64_t val =
        (static_cast<std::uint64_t>(h.incarnation) << 32) | *fbseq;
    if (!window_admit(peer.window, val)) {
      strike(peer, now);
      ++stats_.replays;
      ++stats_.rejected;
      return PeerVerdict::kReplay;
    }
  }

  // Policing runs even while greylisted: a peer that keeps storming
  // through its quarantine keeps accruing strikes and escalates to a
  // ban, while a quiet greylisted peer serves out its time and recovers.
  if (peer.bucket.enabled() && !peer.bucket.ready(now)) {
    strike(peer, now);
    ++stats_.rate_limited;
    ++stats_.rejected;
    return PeerVerdict::kRateLimited;
  }

  if (now < peer.greylisted_until) {
    if (peer.bucket.enabled()) peer.bucket.consume(now);
    ++stats_.greylist_drops;
    ++stats_.rejected;
    return PeerVerdict::kGreylisted;
  }

  if (peer.bucket.enabled()) peer.bucket.consume(now);
  if (peer.strikes > 0) --peer.strikes;  // good behaviour pays down strikes
  ++stats_.accepted;
  return PeerVerdict::kAccept;
}

bool PeerGuard::is_banned(std::size_t member, double now) const {
  if (member >= peers_.size()) return false;
  const Peer& peer = peers_[member];
  return peer.banned && now < peer.banned_until;
}

bool PeerGuard::ever_banned(std::size_t member) const {
  if (member >= peers_.size()) return false;
  return peers_[member].ever_banned;
}

}  // namespace pbl::net
