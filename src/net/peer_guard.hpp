// Hostile-peer defense for the sender's feedback path (docs/ROBUSTNESS.md
// "Hostile peers").
//
// The paper's NAK-implosion analysis (Section 5) assumes every NAK is an
// honest receiver's; one spoofed, replayed or storming feedback stream can
// inflate parity rounds for the whole group.  PeerGuard sits between the
// socket and the protocol state machine and admits a feedback datagram
// only when ALL of these hold:
//
//   1. the kernel-reported source port is an admitted group member
//      (unknown-source traffic never touches protocol state);
//   2. the frame is shape-valid for feedback (NAK/ACK type, demand count
//      bounded by k, in-range TG, expected payload size);
//   3. the header's claimed member identity matches the source port
//      (the feedback_addr_mismatch cross-check — spoofing another
//      member's identity is the cheapest attack on liveness tracking);
//   4. with `auth` on, the SipHash-2-4 trailer verifies under the peer's
//      key and its (incarnation, fbseq) falls outside the per-peer
//      sliding replay window;
//   5. the peer is inside its per-peer token-bucket rate (net::Pacer)
//      and not currently greylisted or banned.
//
// Violations accrue per-peer strikes; strikes escalate greylist -> ban,
// and a ban expires back to readmission (quarantine, not capital
// punishment — a NAT rebinding must not permanently kill a member).
// Every decision is counted in PeerGuardStats, which the server folds
// into the schema'd session metrics.
//
// Every knob in PeerGuardConfig defaults OFF: with a default config the
// guard is never constructed and the wire path is byte-identical to the
// unguarded build (pinned by the differential suites).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fec/packet.hpp"
#include "net/pacer.hpp"

namespace pbl::net {

/// Hostile-peer defense knobs.  Everything defaults off/zero; enabling
/// `enabled` activates admission + shape + identity checks, `auth` adds
/// the keyed trailer + replay window, `feedback_rate` adds per-peer
/// policing with greylist -> ban escalation.
struct PeerGuardConfig {
  bool enabled = false;  ///< master switch for the whole guard
  /// Authenticate control frames with a keyed 64-bit SipHash-2-4 tag
  /// carried in the (otherwise unused) payload of POLL/NAK frames, plus
  /// a per-peer replay window keyed on (incarnation, fbseq).
  bool auth = false;
  /// Per-session master secret, minted at admission.  Per-member and
  /// group keys are derived from it (derive_member_key/derive_group_key).
  std::uint64_t auth_key = 0;
  /// When true (the reliable-control topology), the member id a feedback
  /// frame advertises in header.index must equal the datagram's source
  /// port; mismatches are rejected and strike the peer.
  bool require_index_match = true;
  /// Per-peer feedback token rate (datagrams/s); <= 0 disables policing.
  double feedback_rate = 0.0;
  double feedback_burst = 16.0;
  /// Strikes before a peer is greylisted (all its feedback dropped for
  /// greylist_duration) and before it is banned outright.
  std::size_t greylist_after = 8;
  std::size_t ban_after = 24;
  double greylist_duration = 0.25;  ///< seconds
  /// Ban length; on expiry the peer is readmitted with a clean slate
  /// (replay history is kept, so old captures stay dead).
  double ban_duration = 5.0;
};

/// Why a feedback datagram was admitted or dropped.
enum class PeerVerdict {
  kAccept,
  kUnknownSource,  ///< source port is not an admitted member
  kBadShape,       ///< not feedback-shaped (type/count/tg/payload)
  kAddrMismatch,   ///< claimed member identity != kernel source port
  kBadAuth,        ///< keyed trailer missing or tag mismatch
  kReplay,         ///< (incarnation, fbseq) already seen in the window
  kRateLimited,    ///< per-peer token bucket empty
  kGreylisted,     ///< valid but dropped: peer is quarantined
  kBanned,         ///< dropped unconditionally until the ban expires
};

/// Closed-world decision counters.  accepted + rejected == checks, and
/// rejected is the sum of the per-cause counters — fuzz_feedback holds
/// both invariants against arbitrary input.
struct PeerGuardStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t unknown_source = 0;
  std::uint64_t bad_shape = 0;
  std::uint64_t addr_mismatch = 0;
  std::uint64_t auth_failed = 0;
  std::uint64_t replays = 0;
  std::uint64_t rate_limited = 0;
  std::uint64_t greylist_drops = 0;  ///< valid frames eaten by a greylist
  std::uint64_t ban_drops = 0;       ///< anything arriving while banned
  std::uint64_t greylisted = 0;      ///< greylist episodes entered
  std::uint64_t banned = 0;          ///< ban episodes entered
  std::uint64_t readmitted = 0;      ///< bans expired back to membership
};

// ---- keyed frame authentication -----------------------------------------

/// Bytes of the auth trailer appended to a control frame's payload:
/// u32 fbseq (LE) followed by the u64 SipHash-2-4 tag (LE).
inline constexpr std::size_t kAuthTrailerSize = 12;

/// SipHash-2-4 with a 128-bit key over `data`.
std::uint64_t siphash24(std::uint64_t k0, std::uint64_t k1,
                        std::span<const std::uint8_t> data);

/// Per-member key: what a receiver tags its feedback with, and what the
/// sender verifies that member's feedback against.
std::uint64_t derive_member_key(std::uint64_t session_key,
                                std::uint16_t port);

/// Group key for sender -> receivers control frames (POLL, end marker).
/// One key for the whole group keeps the multicast fan-out byte-identical
/// per member.
std::uint64_t derive_group_key(std::uint64_t session_key);

/// Tag over the semantic header fields (everything before payload_len,
/// in wire order) plus fbseq.  Control frames carry no payload besides
/// the trailer, so this covers every byte that drives protocol state.
std::uint64_t feedback_tag(std::uint64_t key, const fec::PacketHeader& header,
                           std::uint32_t fbseq);

/// Appends the 12-byte trailer to packet.payload.
void append_auth_trailer(fec::Packet& packet, std::uint64_t key,
                         std::uint32_t fbseq);

/// Verifies the trailer at the END of packet.payload; returns the fbseq
/// on success, nullopt on missing/short payload or tag mismatch.
std::optional<std::uint32_t> verify_auth_trailer(const fec::Packet& packet,
                                                 std::uint64_t key);

// ---- the guard ----------------------------------------------------------

class PeerGuard {
 public:
  /// `members`: admitted peer ports in group order.  `k`/`num_tgs` bound
  /// shape validation (a receiver can never need more than k packets or
  /// speak about a TG the session does not have).  `now` seeds the
  /// per-peer token buckets.
  PeerGuard(PeerGuardConfig cfg, std::vector<std::uint16_t> members,
            std::size_t k, std::size_t num_tgs, double now);

  /// Classifies one feedback datagram.  Only kAccept may touch protocol
  /// state; every other verdict was already counted and (where the source
  /// is an admitted member) struck against the peer.
  PeerVerdict check(std::uint16_t src_port, const fec::Packet& packet,
                    double now);

  /// True while member m is inside an unexpired ban.  The round closer
  /// skips banned members so one adversary cannot stall the group.
  bool is_banned(std::size_t member, double now) const;

  /// Ever entered a ban or greylist (sticky) — the session report exempts
  /// such members from the completeness requirement.
  bool ever_banned(std::size_t member) const;

  const PeerGuardStats& stats() const noexcept { return stats_; }
  const PeerGuardConfig& config() const noexcept { return cfg_; }

 private:
  struct ReplayWindow {
    bool any = false;
    std::uint64_t top = 0;
    std::uint64_t bits = 0;
  };
  struct Peer {
    Pacer bucket;
    std::size_t strikes = 0;
    double greylisted_until = 0.0;
    double banned_until = 0.0;
    bool banned = false;
    bool ever_banned = false;
    std::uint64_t key = 0;
    ReplayWindow window;
  };

  /// Violation bookkeeping: one strike, with greylist/ban escalation.
  void strike(Peer& peer, double now);
  /// Advances a (incarnation, fbseq) window; false when val is a replay.
  static bool window_admit(ReplayWindow& w, std::uint64_t val);

  PeerGuardConfig cfg_;
  std::vector<std::uint16_t> members_;
  std::vector<Peer> peers_;
  std::size_t k_ = 0;
  std::size_t num_tgs_ = 0;
  PeerGuardStats stats_;
};

}  // namespace pbl::net
