#include "net/udp/frame_stream.hpp"

#include <stdexcept>

#include "util/crc32.hpp"

namespace pbl::net {

namespace {
std::uint32_t get_u32(std::span<const std::uint8_t> b, std::size_t off) {
  return static_cast<std::uint32_t>(b[off]) |
         (static_cast<std::uint32_t>(b[off + 1]) << 8) |
         (static_cast<std::uint32_t>(b[off + 2]) << 16) |
         (static_cast<std::uint32_t>(b[off + 3]) << 24);
}
}  // namespace

void FrameStreamDecoder::feed(std::span<const std::uint8_t> segment) {
  buf_.insert(buf_.end(), segment.begin(), segment.end());
  parse();
}

std::vector<fec::Packet> FrameStreamDecoder::take() {
  std::vector<fec::Packet> packets(
      std::make_move_iterator(out_.begin()),
      std::make_move_iterator(out_.end()));
  out_.clear();
  return packets;
}

void FrameStreamDecoder::parse() {
  constexpr std::size_t kMin = fec::kHeaderWireSize + fec::kCrcWireSize;
  std::size_t pos = 0;
  while (buf_.size() - pos >= kMin) {
    const std::span<const std::uint8_t> view{buf_.data() + pos,
                                             buf_.size() - pos};
    const std::size_t payload_len = get_u32(view, 18);
    const std::size_t total = fec::wire_size(payload_len);
    if (total > kMaxFrameBytes) {
      // Implausible length: not a frame start.  Slide one byte.
      ++pos;
      ++resyncs_;
      continue;
    }
    if (view.size() < total) break;  // frame still arriving
    const std::span<const std::uint8_t> frame = view.first(total);
    const std::uint32_t stored = get_u32(frame, total - fec::kCrcWireSize);
    if (pbl::crc32(frame.first(total - fec::kCrcWireSize)) != stored) {
      // Unsealed bytes: damage or mid-frame garbage.  Slide one byte —
      // a real frame may start inside the span we just rejected.
      ++pos;
      ++resyncs_;
      continue;
    }
    try {
      out_.push_back(fec::deserialize(frame));
      ++frames_emitted_;
    } catch (const std::invalid_argument&) {
      // Sealed by somebody, but not a packet of ours (bad type byte or
      // block-shape invariants): skip the whole frame.
      ++skipped_invalid_;
    }
    pos += total;
  }
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos));
}

}  // namespace pbl::net
