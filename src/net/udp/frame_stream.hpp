// Incremental decoder for a byte stream of concatenated wire frames.
//
// recvmmsg hands the receive path datagram-sized segments, but nothing
// guarantees a peer (or a capture replay, or the differential harness)
// slices a stream on frame boundaries.  FrameStreamDecoder accepts
// arbitrary segmentation and emits the same packet sequence regardless of
// where the cuts fall: every decision — emit, resynchronise by one byte,
// skip a sealed-but-invalid frame — is a pure function of the logical
// byte stream, never of segment boundaries.  fuzz/fuzz_frame_batch.cpp
// holds that invariant against adversarial splits.
//
// Resynchronisation policy on damage:
//   - implausible length field (frame would exceed kMaxFrameBytes), or a
//     CRC trailer that does not match: slide forward ONE byte and retry —
//     the stream may be mid-frame garbage with a real frame inside it;
//   - CRC-valid frame whose header fails semantic validation: skip the
//     WHOLE frame (it was sealed by a sender, just not one of ours).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "fec/packet.hpp"

namespace pbl::net {

class FrameStreamDecoder {
 public:
  /// Largest frame the decoder will believe a length field about — the
  /// UDP datagram ceiling, same bound the socket path enforces.
  static constexpr std::size_t kMaxFrameBytes = 65536;

  /// Appends a segment of the stream and parses as far as the buffered
  /// bytes allow; emitted packets are appended to the internal queue in
  /// stream order.
  void feed(std::span<const std::uint8_t> segment);

  /// Drains the emitted-packet queue.
  std::vector<fec::Packet> take();

  /// Unconsumed tail bytes (a frame still arriving).
  std::size_t buffered() const noexcept { return buf_.size(); }
  /// One-byte resynchronisation slides taken (damaged stream evidence).
  std::uint64_t resyncs() const noexcept { return resyncs_; }
  /// Sealed frames dropped for failing semantic header validation.
  std::uint64_t skipped_invalid() const noexcept { return skipped_invalid_; }
  std::uint64_t frames_emitted() const noexcept { return frames_emitted_; }

 private:
  void parse();

  std::vector<std::uint8_t> buf_;
  std::deque<fec::Packet> out_;
  std::uint64_t resyncs_ = 0;
  std::uint64_t skipped_invalid_ = 0;
  std::uint64_t frames_emitted_ = 0;
};

}  // namespace pbl::net
