#include "net/udp/packet_arena.hpp"

#include <cstring>
#include <stdexcept>

// Manual ASan poisoning: released frames become red zones inside our own
// slab, so a stale pointer dereference aborts with a use-after-free report
// instead of silently corrupting the next packet.
#if defined(__SANITIZE_ADDRESS__)
#define PBL_ARENA_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PBL_ARENA_ASAN 1
#endif
#endif

#ifdef PBL_ARENA_ASAN
#include <sanitizer/asan_interface.h>
#define PBL_ARENA_POISON(p, n) __asan_poison_memory_region((p), (n))
#define PBL_ARENA_UNPOISON(p, n) __asan_unpoison_memory_region((p), (n))
#else
#define PBL_ARENA_POISON(p, n) ((void)0)
#define PBL_ARENA_UNPOISON(p, n) ((void)0)
#endif

namespace pbl::net {

PacketArena::PacketArena(std::size_t frame_size, std::size_t frames)
    : frame_size_(frame_size), frames_(frames),
      slab_(frame_size * frames, kCanary), is_free_(frames, true) {
  if (frame_size == 0 || frames == 0)
    throw std::invalid_argument("PacketArena: zero-sized arena");
  free_.reserve(frames);
  // Push in reverse so the first acquire() hands out frame 0 — makes test
  // expectations and debug dumps read naturally.
  for (std::size_t i = frames; i-- > 0;) free_.push_back(i);
  PBL_ARENA_POISON(slab_.data(), slab_.size());
}

PacketArena::~PacketArena() {
  // The vector's own destructor (and ASan's delete hooks) must see the
  // slab addressable again.
  PBL_ARENA_UNPOISON(slab_.data(), slab_.size());
}

std::optional<PacketArena::Frame> PacketArena::acquire() {
  if (free_.empty()) return std::nullopt;
  const std::size_t index = free_.back();
  free_.pop_back();
  is_free_[index] = false;
  std::uint8_t* p = frame_ptr(index);
  PBL_ARENA_UNPOISON(p, frame_size_);
  for (std::size_t i = 0; i < frame_size_; ++i) {
    if (p[i] != kCanary) {
      ++canary_violations_;
      break;
    }
  }
  std::memset(p, 0, frame_size_);
  return Frame{index, std::span<std::uint8_t>(p, frame_size_)};
}

void PacketArena::release(const Frame& frame) {
  if (frame.index >= frames_)
    throw std::invalid_argument("PacketArena: foreign frame");
  if (is_free_[frame.index])
    throw std::logic_error("PacketArena: double free");
  is_free_[frame.index] = true;
  std::uint8_t* p = frame_ptr(frame.index);
  std::memset(p, kCanary, frame_size_);
  PBL_ARENA_POISON(p, frame_size_);
  free_.push_back(frame.index);
}

void PacketArena::release_all() {
  for (std::size_t i = 0; i < frames_; ++i) {
    if (is_free_[i]) continue;
    is_free_[i] = true;
    std::uint8_t* p = frame_ptr(i);
    std::memset(p, kCanary, frame_size_);
    PBL_ARENA_POISON(p, frame_size_);
    free_.push_back(i);
  }
}

}  // namespace pbl::net
