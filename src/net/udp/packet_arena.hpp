// Slab allocator for fixed-MTU wire frames.
//
// The batched send path builds an mmsg vector of frames per syscall; doing
// that with one heap vector per packet puts the allocator on the per-packet
// critical path.  PacketArena carves one slab into fixed-size frames handed
// out through a free-list: acquire() is a pop + zero-fill, release() a
// stamp + push.  Frames are stable addresses for the arena's lifetime, so
// an mmsg iovec can point at them across the syscall.
//
// Safety nets (tested in tests/test_packet_arena.cpp):
//   - released frames are stamped with a canary byte; acquire() checks the
//     stamp and counts violations (a live writer scribbling on a freed
//     frame shows up as canary_violations() > 0 even without ASan),
//   - under AddressSanitizer, released frames are poisoned so any touch
//     aborts with a use-after-free report immediately,
//   - acquire() zero-fills, so a recycled frame can never leak bytes of
//     its previous life into a shorter packet,
//   - exhaustion returns std::nullopt (a typed "no frame" the caller can
//     backpressure on) rather than growing or throwing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace pbl::net {

class PacketArena {
 public:
  /// Byte written over a frame on release(); acquire() verifies it
  /// survived before re-use.
  static constexpr std::uint8_t kCanary = 0xDD;

  /// A borrowed frame: index for release(), span over the frame bytes.
  struct Frame {
    std::size_t index;
    std::span<std::uint8_t> bytes;
  };

  /// `frame_size` bytes per frame, `frames` frames in the slab.
  PacketArena(std::size_t frame_size, std::size_t frames);
  ~PacketArena();

  PacketArena(const PacketArena&) = delete;
  PacketArena& operator=(const PacketArena&) = delete;

  /// Pops a zero-filled frame from the free-list, or std::nullopt when
  /// every frame is live (the exhaustion signal — callers flush their
  /// batch and retry).
  std::optional<Frame> acquire();

  /// Returns a frame to the free-list.  The frame's bytes are dead after
  /// this call: stamped with kCanary and (under ASan) poisoned.
  void release(const Frame& frame);

  /// Releases every live frame (batch-scoped reset between bursts).
  void release_all();

  std::size_t frame_size() const noexcept { return frame_size_; }
  std::size_t capacity() const noexcept { return frames_; }
  std::size_t live() const noexcept { return frames_ - free_.size(); }

  /// Number of times acquire() found a recycled frame whose canary stamp
  /// had been overwritten — evidence of a use-after-free writer.
  std::size_t canary_violations() const noexcept { return canary_violations_; }

 private:
  std::uint8_t* frame_ptr(std::size_t index) noexcept {
    return slab_.data() + index * frame_size_;
  }

  std::size_t frame_size_;
  std::size_t frames_;
  std::vector<std::uint8_t> slab_;
  std::vector<std::size_t> free_;      // LIFO free-list of frame indices
  std::vector<bool> is_free_;          // double-free / foreign-frame guard
  std::size_t canary_violations_ = 0;
};

}  // namespace pbl::net
