#include "net/udp/udp_np.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "fec/fec_block.hpp"
#include "net/udp/packet_arena.hpp"

namespace pbl::net {

using protocol::Backoff;
using protocol::Deadline;

UdpNpSender::UdpNpSender(UdpSocket socket, UdpGroup group,
                         const UdpNpConfig& config)
    : socket_(std::move(socket)), group_(std::move(group)), cfg_(config),
      code_(config.k, config.k + config.h) {
  if (config.k + config.h > 255)
    throw std::invalid_argument("UdpNpSender: k + h must be <= 255");
  if (group_.size() == 0)
    throw std::invalid_argument("UdpNpSender: empty group");
  if (config.reliable_control) config.retry.validate();
}

UdpNpSenderStats UdpNpSender::transfer(const std::vector<TgBytes>& groups) {
  UdpNpSenderStats stats;
  // Every deadline below — session deadline, poll windows — reads this
  // one injected clock; mixing clocks is how drain/retry timers skew.
  const protocol::Clock& clk =
      cfg_.clock ? *cfg_.clock : protocol::steady_clock();
  std::uint32_t round_id = 0;
  if (!cfg_.resume_completed.empty() &&
      cfg_.resume_completed.size() != groups.size())
    throw std::invalid_argument("UdpNpSender: resume_completed size mismatch");
  if (!cfg_.resume_parities.empty() &&
      cfg_.resume_parities.size() != groups.size())
    throw std::invalid_argument("UdpNpSender: resume_parities size mismatch");

  // Crash-aware transmit: every datagram carries this life's incarnation,
  // and the crash_after_sends'th send kills the sender mid-session (the
  // datagram never leaves) instead of going out.
  std::size_t sends = 0;
  const auto send_mc = [&](fec::Packet p) -> bool {
    if (stats.crashed) return false;
    if (sends >= cfg_.crash_after_sends) {
      stats.crashed = true;
      return false;
    }
    ++sends;
    p.header.incarnation = static_cast<std::uint8_t>(cfg_.incarnation);
    group_.multicast(socket_, p);
    return true;
  };

  // Zero-copy burst path for DATA/PARITY: frames are written in place in
  // arena slabs (headers by write_*_frame, parity payloads directly by
  // the GF kernels) and handed to the kernel as one batch per burst.
  // The frame order — packet-major, member-minor — is exactly the order
  // the per-sendto loop produced, so each receiver sees a byte-identical
  // stream; crash_after_sends still ticks per logical packet, before the
  // packet's frames are staged, so a crash clamps the burst at the same
  // wire position on both backends.
  std::size_t max_payload = cfg_.packet_len;
  for (const auto& g : groups)
    if (!g.empty()) max_payload = std::max(max_payload, g[0].size());
  PacketArena arena(fec::wire_size(max_payload),
                    std::max({cfg_.k, cfg_.h, std::size_t{1}}));
  std::vector<FrameRef> burst;
  const auto stage_frame = [&](std::span<const std::uint8_t> frame) {
    for (const std::uint16_t port : group_.members())
      burst.push_back({port, frame});
  };
  const auto flush_burst = [&] {
    if (!burst.empty()) socket_.send_batch_blocking(burst);
    burst.clear();
    arena.release_all();
  };

  // Reliable-mode per-member state, addressed by group index; a NAK/ACK
  // names its member by carrying the receiver's own port in header.index.
  const auto& members = group_.members();
  std::vector<bool> evicted(members.size(), false);
  std::vector<std::size_t> silent(members.size(), 0);
  std::vector<std::vector<bool>> delivered(
      members.size(), std::vector<bool>(groups.size(), false));
  const auto member_of = [&](std::uint16_t port) -> std::size_t {
    for (std::size_t m = 0; m < members.size(); ++m)
      if (members[m] == port) return m;
    return members.size();  // unknown port: foreign feedback
  };
  const Deadline deadline(clk.now(), cfg_.reliable_control
                                         ? cfg_.retry.session_deadline
                                         : 0.0);

  for (std::uint32_t i = 0; i < groups.size(); ++i) {
    if (groups[i].size() != cfg_.k)
      throw std::invalid_argument("UdpNpSender: each TG needs k packets");
    if (i < cfg_.resume_completed.size() && cfg_.resume_completed[i]) {
      ++stats.tgs_skipped;  // confirmed in a prior life: never re-sent
      continue;
    }
    if (stats.crashed) break;
    if (deadline.expired(clk.now())) {
      stats.report.deadline_expired = true;
      break;
    }
    fec::TgEncoder encoder(i, code_, groups[i]);

    for (std::size_t j = 0; j < cfg_.k; ++j) {
      if (sends >= cfg_.crash_after_sends) {
        stats.crashed = true;
        break;
      }
      ++sends;
      const auto frame = arena.acquire();
      const std::size_t len = encoder.write_data_frame(
          j, static_cast<std::uint8_t>(cfg_.incarnation), frame->bytes);
      stage_frame(frame->bytes.first(len));
      ++stats.data_sent;
    }
    flush_burst();

    std::vector<bool> acked(members.size(), false);
    std::vector<bool> heard(members.size(), false);
    Backoff poll_backoff(cfg_.retry, Rng(cfg_.seed).split(0x9100 + i));
    const auto confirmed = [&] {
      for (std::size_t m = 0; m < members.size(); ++m)
        if (!evicted[m] && !acked[m]) return false;
      return true;
    };

    // A resumed TG picks up above its journaled parity high-water mark:
    // repair indices receivers already hold are never re-multicast.
    std::size_t parities_used =
        i < cfg_.resume_parities.size()
            ? std::min<std::size_t>(cfg_.resume_parities[i], cfg_.h)
            : 0;
    double window_pad = 0.0;  // re-POLL backoff widens the collect window
    for (int round = 0; round < cfg_.max_rounds; ++round) {
      fec::Packet poll;
      poll.header.type = fec::PacketType::kPoll;
      poll.header.tg = i;
      poll.header.k = static_cast<std::uint16_t>(cfg_.k);
      poll.header.seq = ++round_id;
      if (!send_mc(poll)) break;
      ++stats.polls_sent;

      // Collect this round's NAKs; serve the maximum request.
      std::size_t l = 0;
      std::fill(heard.begin(), heard.end(), false);
      const double t0 = clk.now();
      const double window =
          std::min(cfg_.poll_window + window_pad, deadline.remaining(t0));
      double remaining = window;
      while (remaining > 0.0) {
        if (auto dg = socket_.receive_from(remaining)) {
          const auto* nak = &dg->packet;
          if (nak->header.type == fec::PacketType::kNak &&
              nak->header.tg == i) {
            if (cfg_.reliable_control &&
                nak->header.index != dg->src_port) {
              // The member identity rides in header.index; a frame whose
              // claim contradicts the kernel-reported source is spoofed
              // (or smuggled) feedback and must not touch liveness state.
              ++stats.feedback_addr_mismatch;
              remaining = window - (clk.now() - t0);
              continue;
            }
            if (cfg_.reliable_control) {
              const std::size_t m = member_of(nak->header.index);
              if (m < members.size()) {
                heard[m] = true;
                silent[m] = 0;
                if (nak->header.count == 0) {
                  ++stats.acks_received;
                  if (!acked[m]) {
                    acked[m] = true;
                    delivered[m][i] = true;
                  }
                }
              }
            }
            if (nak->header.count > 0 && nak->header.seq == round_id) {
              ++stats.naks_received;
              l = std::max(l, static_cast<std::size_t>(nak->header.count));
            }
          }
        }
        remaining = window - (clk.now() - t0);
      }

      // Write-ahead: "TG i complete" is journaled before the sender acts
      // on it, so a crash immediately after never forgets the completion.
      const auto complete_tg = [&] {
        if (cfg_.on_tg_completed) cfg_.on_tg_completed(i);
      };
      if (!cfg_.reliable_control) {
        if (l == 0) {
          complete_tg();  // silence: all receivers reconstructed TG i
          break;
        }
      } else {
        if (confirmed()) {
          complete_tg();  // every live member positively acked
          break;
        }
        if (deadline.expired(clk.now())) {
          stats.report.deadline_expired = true;
          break;
        }
        if (l == 0) {
          // A totally unanswered round: age every unconfirmed member and
          // re-POLL with a widened window — unless the budget is spent.
          for (std::size_t m = 0; m < members.size(); ++m) {
            if (evicted[m] || acked[m] || heard[m]) continue;
            if (++silent[m] >= cfg_.retry.grace_rounds) {
              evicted[m] = true;
              ++stats.evictions;
            }
          }
          if (confirmed()) {
            complete_tg();
            break;
          }
          if (poll_backoff.exhausted()) {
            ++stats.tgs_unconfirmed;
            break;
          }
          ++stats.poll_retries;
          window_pad = poll_backoff.next();
          continue;
        }
        window_pad = 0.0;  // progress: the next round is a normal one
      }

      l = std::min(l, cfg_.h - parities_used);
      if (l == 0) {
        ++stats.tgs_exhausted;
        break;
      }
      // Journal the new high-water BEFORE the parities leave: if the
      // sender dies in between, the next life merely skips indices that
      // were never sent (wasteful, never wrong) — the reverse order could
      // re-send indices receivers already hold.
      parities_used += l;
      if (cfg_.on_parities_sent) cfg_.on_parities_sent(i, parities_used);
      for (std::size_t j = 0; j < l; ++j) {
        if (stats.crashed) break;
        if (sends >= cfg_.crash_after_sends) {
          stats.crashed = true;
          break;
        }
        ++sends;
        const auto frame = arena.acquire();
        const std::size_t len = encoder.write_parity_frame(
            parities_used - l + j, static_cast<std::uint8_t>(cfg_.incarnation),
            frame->bytes);
        stage_frame(frame->bytes.first(len));
        ++stats.parity_sent;
      }
      flush_burst();
    }
    if (stats.crashed) break;
    if (deadline.expired(clk.now()) && !stats.report.deadline_expired)
      stats.report.deadline_expired = true;
    if (stats.report.deadline_expired) break;
  }

  if (!stats.crashed) {
    // A crashed sender never says goodbye — the receivers' phase-aware
    // idle clocks (or its own next incarnation) must end their runs.
    fec::Packet end;
    end.header.type = fec::PacketType::kPoll;
    end.header.tg = kUdpEndOfSession;
    send_mc(end);
  }

  if (!groups.empty()) {
    stats.tx_per_packet =
        static_cast<double>(stats.data_sent + stats.parity_sent) /
        (static_cast<double>(cfg_.k) * static_cast<double>(groups.size()));
  }
  if (cfg_.reliable_control) {
    auto& rep = stats.report;
    rep.delivered = std::move(delivered);
    rep.evicted.assign(members.size(), false);
    for (std::size_t m = 0; m < members.size(); ++m) rep.evicted[m] = evicted[m];
    rep.evictions = stats.evictions;
    rep.units_failed = stats.tgs_exhausted + stats.tgs_unconfirmed;
    rep.poll_retries = stats.poll_retries;
    rep.complete = !rep.deadline_expired && rep.evictions == 0 &&
                   rep.units_failed == 0;
    if (rep.complete)
      for (const auto& row : rep.delivered)
        for (const bool b : row) rep.complete = rep.complete && b;
  }
  return stats;
}

UdpNpReceiver::UdpNpReceiver(UdpSocket socket, std::uint16_t sender_port,
                             std::size_t num_tgs, const UdpNpConfig& config,
                             double inject_loss, Rng rng,
                             const ImpairmentConfig& impairment)
    : socket_(std::move(socket)), sender_port_(sender_port),
      num_tgs_(num_tgs), cfg_(config), inject_loss_(inject_loss), rng_(rng),
      code_(config.k, config.k + config.h) {
  if (inject_loss < 0.0 || inject_loss >= 1.0)
    throw std::invalid_argument("UdpNpReceiver: inject_loss in [0,1)");
  if (config.reliable_control) config.retry.validate();
  if (impairment.enabled() || impairment.control_enabled()) {
    impairment_ = std::make_shared<Impairment>(impairment);
    socket_.set_impairment(impairment_);
  }
}

UdpNpReceiverResult UdpNpReceiver::run(double idle_timeout) {
  UdpNpReceiverResult result;
  // One clock for everything: the idle/drain timeouts and the NAK
  // retransmit deadlines must agree on what "now" is.
  const protocol::Clock& clk =
      cfg_.clock ? *cfg_.clock : protocol::steady_clock();
  std::vector<fec::TgDecoder> decoders;
  decoders.reserve(num_tgs_);
  for (std::uint32_t i = 0; i < num_tgs_; ++i)
    decoders.emplace_back(i, code_, cfg_.packet_len);
  std::vector<bool> done(num_tgs_, false);
  std::size_t done_count = 0;

  // Reliable mode: one NAK retransmit slot for the TG currently being
  // repaired (the sender serves one TG at a time), with a per-TG backoff.
  std::vector<std::unique_ptr<Backoff>> nak_backoffs(num_tgs_);
  bool nak_pending = false;
  std::uint32_t nak_tg = 0;
  std::uint32_t nak_round = 0;
  double nak_retry_at = 0.0;
  // Highest sender incarnation heard; anything older is a dead life's
  // straggler and is dropped before it can answer for the live session.
  std::uint8_t known_inc = static_cast<std::uint8_t>(cfg_.incarnation);
  const auto send_feedback = [&](std::uint32_t tg, std::size_t count,
                                 std::uint32_t seq) {
    fec::Packet fb;
    fb.header.type = fec::PacketType::kNak;
    fb.header.tg = tg;
    fb.header.count = static_cast<std::uint16_t>(count);
    fb.header.seq = seq;
    fb.header.incarnation = known_inc;
    // The sender's liveness tracking needs to know who spoke: receive()
    // discards the source address, so the port rides in the header.
    if (cfg_.reliable_control) fb.header.index = socket_.port();
    socket_.send_to(sender_port_, fb);
  };

  // The DATA/PARITY path, shared by live reception and the end-of-stream
  // drain of the reorder queue.  Must be total over adversarial input:
  // anything that is not a well-formed shard of this session is counted
  // and ignored, never thrown on.
  const auto accept_block_packet = [&](const fec::Packet& packet) {
    const auto& hdr = packet.header;
    if (hdr.k != cfg_.k || hdr.n != cfg_.k + cfg_.h ||
        hdr.index >= cfg_.k + cfg_.h ||
        packet.payload.size() != cfg_.packet_len) {
      ++result.rejected;  // foreign block shape: cannot be ours
      return;
    }
    if (inject_loss_ > 0.0 && rng_.bernoulli(inject_loss_)) {
      ++result.dropped;
      return;
    }
    ++result.received;
    auto& dec = decoders[hdr.tg];
    if (!dec.add(packet)) {
      // Duplicated in flight, reordered past reconstruction, or already
      // held: idempotent by construction.
      ++result.duplicates;
      return;
    }
    if (dec.decodable() && !done[hdr.tg]) {
      (void)dec.reconstruct();
      result.decoded += dec.decoded_packets();
      done[hdr.tg] = true;
      ++done_count;
    }
  };

  // Phase-aware idle clock: mid-session silence (sender stalled) and the
  // post-completion drain for a possibly-lost end marker are distinct
  // timeouts with distinct end reasons — the old single idle_timeout
  // conflated "sender finished" with "sender stalled".
  double last_rx = clk.now();
  result.end_reason = UdpNpEndReason::kMidSessionSilence;
  while (true) {
    if (done_count >= cfg_.crash_after_tgs) {
      // Fault injection: fall silent mid-session, exactly like a crash.
      result.end_reason = UdpNpEndReason::kCrashed;
      break;
    }
    const double idle_budget =
        done_count == num_tgs_ ? cfg_.drain_timeout : idle_timeout;
    const double now = clk.now();
    const double idle_left = last_rx + idle_budget - now;
    if (idle_left <= 0.0) {
      result.end_reason = done_count == num_tgs_
                              ? UdpNpEndReason::kDrainTimeout
                              : UdpNpEndReason::kMidSessionSilence;
      break;
    }
    double wait = idle_left;
    if (cfg_.reliable_control && nak_pending)
      wait = std::min(wait, std::max(0.0, nak_retry_at - now));

    auto packet = socket_.receive(wait);
    if (!packet) {
      if (cfg_.reliable_control && nak_pending &&
          clk.now() >= nak_retry_at) {
        // The NAK (or its repair) may have been lost: retransmit under
        // this TG's backoff until served or the budget runs out.
        const std::size_t need = decoders[nak_tg].needed();
        auto& bo = nak_backoffs[nak_tg];
        if (need == 0 || !bo || bo->exhausted()) {
          nak_pending = false;
        } else {
          ++result.nak_retries;
          ++result.naks_sent;
          send_feedback(nak_tg, need, nak_round);
          nak_retry_at = clk.now() + cfg_.poll_window + bo->next();
        }
      }
      continue;  // the idle clock decides at the top of the loop
    }
    const auto& hdr = packet->header;
    // Stale-incarnation filtering comes first: a dead sender's straggler
    // must neither end the session (its end marker), repair anything, nor
    // count as liveness for the idle clock.
    if (hdr.incarnation < known_inc) {
      ++result.stale_rejected;
      continue;
    }
    known_inc = hdr.incarnation;
    last_rx = clk.now();
    if (hdr.type == fec::PacketType::kPoll && hdr.tg == kUdpEndOfSession) {
      result.end_reason = UdpNpEndReason::kEndOfSession;
      break;
    }
    if (hdr.tg >= num_tgs_) continue;  // foreign traffic

    switch (hdr.type) {
      case fec::PacketType::kData:
      case fec::PacketType::kParity:
        // Repair traffic for the NAKed TG: the request was heard.
        if (nak_pending && hdr.tg == nak_tg) nak_pending = false;
        accept_block_packet(*packet);
        break;
      case fec::PacketType::kPoll: {
        const std::size_t l = decoders[hdr.tg].needed();
        if (l == 0) {
          if (cfg_.reliable_control) {
            // Reliable mode answers every POLL; silence is for the dead.
            send_feedback(hdr.tg, 0, hdr.seq);
            ++result.acks_sent;
          }
          break;
        }
        send_feedback(hdr.tg, l, hdr.seq);
        ++result.naks_sent;
        if (cfg_.reliable_control) {
          auto& bo = nak_backoffs[hdr.tg];
          if (!bo)
            bo = std::make_unique<Backoff>(
                cfg_.retry, rng_.split(0x7000 + hdr.tg));
          nak_pending = true;
          nak_tg = hdr.tg;
          nak_round = hdr.seq;
          nak_retry_at = clk.now() + cfg_.poll_window +
                         (bo->exhausted() ? cfg_.poll_window : bo->next());
        }
        break;
      }
      case fec::PacketType::kNak:
        break;  // unicast topology: receivers do not overhear NAKs
    }
  }

  // Datagrams still held back by the reorder queue are "in flight" when
  // the session ends; flush them so a late shard can still complete a TG.
  if (impairment_) {
    for (const auto& bytes : impairment_->drain()) {
      try {
        const fec::Packet packet = fec::deserialize(bytes);
        if (packet.header.incarnation < known_inc) {
          ++result.stale_rejected;
          continue;
        }
        if ((packet.header.type == fec::PacketType::kData ||
             packet.header.type == fec::PacketType::kParity) &&
            packet.header.tg < num_tgs_)
          accept_block_packet(packet);
      } catch (const std::invalid_argument&) {
        // damaged in flight: loss
      }
    }
    result.impairment = impairment_->stats();
  }

  result.groups.resize(num_tgs_);
  for (std::uint32_t i = 0; i < num_tgs_; ++i)
    if (done[i]) result.groups[i] = decoders[i].reconstruct();
  result.complete = done_count == num_tgs_;
  return result;
}

}  // namespace pbl::net
