#include "net/udp/udp_np.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "fec/fec_block.hpp"

namespace pbl::net {

UdpNpSender::UdpNpSender(UdpSocket socket, UdpGroup group,
                         const UdpNpConfig& config)
    : socket_(std::move(socket)), group_(std::move(group)), cfg_(config),
      code_(config.k, config.k + config.h) {
  if (config.k + config.h > 255)
    throw std::invalid_argument("UdpNpSender: k + h must be <= 255");
  if (group_.size() == 0)
    throw std::invalid_argument("UdpNpSender: empty group");
}

UdpNpSenderStats UdpNpSender::transfer(const std::vector<TgBytes>& groups) {
  UdpNpSenderStats stats;
  std::uint32_t round_id = 0;

  for (std::uint32_t i = 0; i < groups.size(); ++i) {
    if (groups[i].size() != cfg_.k)
      throw std::invalid_argument("UdpNpSender: each TG needs k packets");
    fec::TgEncoder encoder(i, code_, groups[i]);

    for (std::size_t j = 0; j < cfg_.k; ++j) {
      group_.multicast(socket_, encoder.data_packet(j));
      ++stats.data_sent;
    }

    std::size_t parities_used = 0;
    for (int round = 0; round < cfg_.max_rounds; ++round) {
      fec::Packet poll;
      poll.header.type = fec::PacketType::kPoll;
      poll.header.tg = i;
      poll.header.k = static_cast<std::uint16_t>(cfg_.k);
      poll.header.seq = ++round_id;
      group_.multicast(socket_, poll);
      ++stats.polls_sent;

      // Collect this round's NAKs; serve the maximum request.
      std::size_t l = 0;
      const auto t0 = std::chrono::steady_clock::now();
      double remaining = cfg_.poll_window;
      while (remaining > 0.0) {
        if (auto nak = socket_.receive(remaining)) {
          if (nak->header.type == fec::PacketType::kNak &&
              nak->header.tg == i && nak->header.seq == round_id) {
            ++stats.naks_received;
            l = std::max(l, static_cast<std::size_t>(nak->header.count));
          }
        }
        remaining =
            cfg_.poll_window -
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
      }
      if (l == 0) break;  // silence: all receivers reconstructed TG i
      l = std::min(l, cfg_.h - parities_used);
      if (l == 0) {
        ++stats.tgs_exhausted;
        break;
      }
      for (std::size_t j = 0; j < l; ++j) {
        group_.multicast(socket_, encoder.parity_packet(parities_used + j));
        ++stats.parity_sent;
      }
      parities_used += l;
    }
  }

  fec::Packet end;
  end.header.type = fec::PacketType::kPoll;
  end.header.tg = kUdpEndOfSession;
  group_.multicast(socket_, end);

  if (!groups.empty()) {
    stats.tx_per_packet =
        static_cast<double>(stats.data_sent + stats.parity_sent) /
        (static_cast<double>(cfg_.k) * static_cast<double>(groups.size()));
  }
  return stats;
}

UdpNpReceiver::UdpNpReceiver(UdpSocket socket, std::uint16_t sender_port,
                             std::size_t num_tgs, const UdpNpConfig& config,
                             double inject_loss, Rng rng,
                             const ImpairmentConfig& impairment)
    : socket_(std::move(socket)), sender_port_(sender_port),
      num_tgs_(num_tgs), cfg_(config), inject_loss_(inject_loss), rng_(rng),
      code_(config.k, config.k + config.h) {
  if (inject_loss < 0.0 || inject_loss >= 1.0)
    throw std::invalid_argument("UdpNpReceiver: inject_loss in [0,1)");
  if (impairment.enabled()) {
    impairment_ = std::make_shared<Impairment>(impairment);
    socket_.set_impairment(impairment_);
  }
}

UdpNpReceiverResult UdpNpReceiver::run(double idle_timeout) {
  UdpNpReceiverResult result;
  std::vector<fec::TgDecoder> decoders;
  decoders.reserve(num_tgs_);
  for (std::uint32_t i = 0; i < num_tgs_; ++i)
    decoders.emplace_back(i, code_, cfg_.packet_len);
  std::vector<bool> done(num_tgs_, false);
  std::size_t done_count = 0;

  // The DATA/PARITY path, shared by live reception and the end-of-stream
  // drain of the reorder queue.  Must be total over adversarial input:
  // anything that is not a well-formed shard of this session is counted
  // and ignored, never thrown on.
  const auto accept_block_packet = [&](const fec::Packet& packet) {
    const auto& hdr = packet.header;
    if (hdr.k != cfg_.k || hdr.n != cfg_.k + cfg_.h ||
        hdr.index >= cfg_.k + cfg_.h ||
        packet.payload.size() != cfg_.packet_len) {
      ++result.rejected;  // foreign block shape: cannot be ours
      return;
    }
    if (inject_loss_ > 0.0 && rng_.bernoulli(inject_loss_)) {
      ++result.dropped;
      return;
    }
    ++result.received;
    auto& dec = decoders[hdr.tg];
    if (!dec.add(packet)) {
      // Duplicated in flight, reordered past reconstruction, or already
      // held: idempotent by construction.
      ++result.duplicates;
      return;
    }
    if (dec.decodable() && !done[hdr.tg]) {
      (void)dec.reconstruct();
      result.decoded += dec.decoded_packets();
      done[hdr.tg] = true;
      ++done_count;
    }
  };

  while (true) {
    auto packet = socket_.receive(idle_timeout);
    if (!packet) break;  // sender gone
    const auto& hdr = packet->header;
    if (hdr.type == fec::PacketType::kPoll && hdr.tg == kUdpEndOfSession)
      break;
    if (hdr.tg >= num_tgs_) continue;  // foreign traffic

    switch (hdr.type) {
      case fec::PacketType::kData:
      case fec::PacketType::kParity:
        accept_block_packet(*packet);
        break;
      case fec::PacketType::kPoll: {
        const std::size_t l = decoders[hdr.tg].needed();
        if (l == 0) break;
        fec::Packet nak;
        nak.header.type = fec::PacketType::kNak;
        nak.header.tg = hdr.tg;
        nak.header.count = static_cast<std::uint16_t>(l);
        nak.header.seq = hdr.seq;  // answer this round
        socket_.send_to(sender_port_, nak);
        ++result.naks_sent;
        break;
      }
      case fec::PacketType::kNak:
        break;  // unicast topology: receivers do not overhear NAKs
    }
  }

  // Datagrams still held back by the reorder queue are "in flight" when
  // the session ends; flush them so a late shard can still complete a TG.
  if (impairment_) {
    for (const auto& bytes : impairment_->drain()) {
      try {
        const fec::Packet packet = fec::deserialize(bytes);
        if ((packet.header.type == fec::PacketType::kData ||
             packet.header.type == fec::PacketType::kParity) &&
            packet.header.tg < num_tgs_)
          accept_block_packet(packet);
      } catch (const std::invalid_argument&) {
        // damaged in flight: loss
      }
    }
    result.impairment = impairment_->stats();
  }

  result.groups.resize(num_tgs_);
  for (std::uint32_t i = 0; i < num_tgs_; ++i)
    if (done[i]) result.groups[i] = decoders[i].reconstruct();
  result.complete = done_count == num_tgs_;
  return result;
}

}  // namespace pbl::net
