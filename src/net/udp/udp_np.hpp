// Protocol NP over real (loopback) UDP sockets: a blocking sender and
// receiver pair suitable for one thread each.
//
// Multicast is emulated by unicast fan-out (net/udp/udp_transport.hpp);
// NAK feedback is unicast to the sender, which performs the suppression
// itself by serving only the round's maximum request — the semantics of
// Section 5.1's slotting-and-damping, adapted to a topology where
// receivers cannot overhear each other.  Rounds are tagged (POLL/NAK
// carry a round id) so stale feedback cannot trigger spurious repair.
//
// Loss is injected at each receiver with a configurable probability,
// which keeps the demo independent of real network impairments while
// exercising the full wire path: serialisation, sockets, RSE repair,
// reassembly.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "fec/rse_code.hpp"
#include "net/impairment.hpp"
#include "net/overload.hpp"
#include "net/peer_guard.hpp"
#include "net/udp/udp_transport.hpp"
#include "protocol/retry.hpp"
#include "util/rng.hpp"

namespace pbl::net {

using TgBytes = std::vector<std::vector<std::uint8_t>>;  ///< k packets

struct UdpNpConfig {
  std::size_t k = 8;
  std::size_t h = 64;            ///< parity budget (k + h <= 255)
  std::size_t packet_len = 512;
  double poll_window = 0.08;     ///< seconds the sender collects NAKs per round
  int max_rounds = 200;          ///< per-TG round cap (safety against livelock)

  /// Control-plane reliability layer (docs/ROBUSTNESS.md).  When set,
  /// "silence after a POLL" no longer closes a TG: every receiver answers
  /// every POLL (NAK, or an ACK — a NAK with count == 0 — when it needs
  /// nothing; both carry the receiver's own port in header.index so the
  /// sender can track per-member liveness), unanswered rounds are
  /// re-POLLed with a widened collect window under `retry`'s seeded
  /// backoff, receivers retransmit NAKs whose repair never arrives, and
  /// members silent for retry.grace_rounds rounds are evicted instead of
  /// stalling the transfer.  Wall-clock deadlines (retry.session_deadline)
  /// bound the whole session; every exit fills UdpNpSenderStats::report.
  /// Off by default — the legacy silence-is-consent path is unchanged.
  bool reliable_control = false;
  protocol::RetryConfig retry{};
  std::uint64_t seed = 1;        ///< seeds the reliable-mode backoff jitter

  /// The ONE time source every deadline in the session reads: retry
  /// deadlines, poll collect windows, NAK retransmit timers, and the
  /// receiver's idle/drain clocks.  nullptr = protocol::steady_clock().
  /// Injecting a single clock means the drain timeout and the retry
  /// deadlines can never skew against each other, and the server's
  /// event-driven drivers (src/server/) can be tested on a ManualClock.
  const protocol::Clock* clock = nullptr;

  /// Receiver-side phase-aware timers (always active): once a receiver
  /// holds every TG it waits only `drain_timeout` seconds of silence for
  /// the (possibly lost) end-of-session marker instead of the full
  /// mid-session idle timeout, and reports which of the two ended the
  /// run (see UdpNpReceiverResult::end_reason).
  double drain_timeout = 1.0;

  /// Fault injection for liveness tests: the receiver returns (as if
  /// crashed) after completing this many TGs.  SIZE_MAX disables.
  std::size_t crash_after_tgs = static_cast<std::size_t>(-1);

  // ---- crash-tolerant sessions (docs/ROBUSTNESS.md) --------------------

  /// Sender incarnation, stamped into every outgoing packet's header.
  /// Receivers remember the highest incarnation heard and drop anything
  /// older — a dead life's stragglers (including its end-of-session
  /// marker) cannot answer for the live one.
  std::uint32_t incarnation = 0;
  /// Resume: TGs confirmed complete in a prior life are skipped outright
  /// (empty = fresh session; otherwise one flag per TG).
  std::vector<bool> resume_completed;
  /// Resume: per-TG parities-sent high-water, so a resumed TG serves
  /// fresh parity indices instead of re-multicasting repair packets the
  /// receivers already hold.
  std::vector<std::uint16_t> resume_parities;
  /// Deterministic crash injection: the sender process "dies" after this
  /// many datagram sends (data, parity or poll) — no end-of-session
  /// marker, no further feedback processing.  SIZE_MAX disables.
  std::size_t crash_after_sends = static_cast<std::size_t>(-1);
  /// Write-ahead hooks, invoked the moment durable progress changes
  /// (same shapes as NpConfig's — plug core::SessionJournal straight in).
  std::function<void(std::size_t tg)> on_tg_completed;
  std::function<void(std::size_t tg, std::size_t parities_used)>
      on_parities_sent;

  // ---- overload hardening (docs/ROBUSTNESS.md, "Overload") -------------

  /// Pacing, load shedding, NAK suppression and quarantine knobs; every
  /// field defaults to OFF (net/overload.hpp).  Honoured by the server's
  /// event-driven drivers (src/server/session_driver.hpp) — the blocking
  /// UdpNpSender/Receiver pair ignores it.
  OverloadConfig overload{};
  /// Sender packet-arena capacity in frames; 0 = max(k, h) (enough for
  /// the largest burst).  Smaller values force arena exhaustion: the
  /// driver then fills bursts in multiple arena generations, deferring
  /// on its retry timer between them — same bytes, bounded memory.
  std::size_t arena_frames = 0;

  // ---- hostile-peer hardening (docs/ROBUSTNESS.md, "Hostile peers") ----

  /// Feedback admission, keyed frame authentication and per-peer
  /// policing; every field defaults to OFF (net/peer_guard.hpp).
  /// Honoured by the server's event-driven drivers — the blocking pair
  /// only applies the always-on feedback_addr_mismatch cross-check.
  PeerGuardConfig guard{};
};

struct UdpNpSenderStats {
  std::uint64_t data_sent = 0;
  std::uint64_t parity_sent = 0;
  std::uint64_t polls_sent = 0;
  std::uint64_t naks_received = 0;
  std::uint64_t tgs_exhausted = 0;  ///< parity budget ran out
  double tx_per_packet = 0.0;

  // Reliable-control accounting (all zero unless reliable_control).
  std::uint64_t acks_received = 0;
  std::uint64_t poll_retries = 0;   ///< re-POLLs after unconfirmed rounds
  std::uint64_t evictions = 0;      ///< members evicted for silence
  std::uint64_t tgs_unconfirmed = 0;  ///< re-POLL budget ran out
  /// Structured degradation outcome; filled on every exit path.
  protocol::PartialDeliveryReport report{};

  // Crash-recovery accounting.
  bool crashed = false;              ///< crash_after_sends fired
  std::uint64_t tgs_skipped = 0;     ///< resumed TGs never retransmitted

  // Overload accounting (all zero unless the matching knob is on; see
  // net/overload.hpp).  Server drivers only.
  std::uint64_t would_block = 0;       ///< kWouldBlock batch results seen
  std::uint64_t arena_deferrals = 0;   ///< burst pauses on arena exhaustion
  std::uint64_t shed_frames = 0;       ///< staged frames dropped by shedding
  std::uint64_t naks_suppressed = 0;   ///< NAKs past the feedback budget
  std::uint64_t members_quarantined = 0;  ///< members moved to catch-up

  // Hostile-peer accounting (net/peer_guard.hpp).
  /// Feedback whose advertised member identity contradicted the
  /// kernel-reported source port.  Counted with the guard OFF too — the
  /// cross-check is always on wherever the source port is available.
  std::uint64_t feedback_addr_mismatch = 0;
  /// Guard decision counters (all zero unless guard.enabled).
  PeerGuardStats guard{};
};

/// Blocking sender: transfers the groups, then multicasts an end-of-
/// session marker.
class UdpNpSender {
 public:
  UdpNpSender(UdpSocket socket, UdpGroup group, const UdpNpConfig& config);

  /// Every TG must hold exactly k packets of packet_len bytes.
  UdpNpSenderStats transfer(const std::vector<TgBytes>& groups);

  std::uint16_t port() const noexcept { return socket_.port(); }

 private:
  UdpSocket socket_;
  UdpGroup group_;
  UdpNpConfig cfg_;
  fec::RseCode code_;
};

/// What ended a receiver's run — the old single idle_timeout conflated
/// "sender finished" with "sender stalled"; these are now distinct.
enum class UdpNpEndReason {
  kEndOfSession,      ///< the end-of-session marker arrived (clean)
  kDrainTimeout,      ///< all TGs held; the (lost) marker never came
  kMidSessionSilence, ///< sender went silent with TGs still missing
  kCrashed,           ///< fault injection: crash_after_tgs reached
};

struct UdpNpReceiverResult {
  std::vector<TgBytes> groups;     ///< reconstructed data, in TG order
  bool complete = false;           ///< every TG reconstructed
  std::uint64_t received = 0;      ///< packets accepted off the wire
  std::uint64_t dropped = 0;       ///< packets discarded by injected loss
  std::uint64_t decoded = 0;       ///< packets rebuilt by RSE decoding
  std::uint64_t naks_sent = 0;
  std::uint64_t duplicates = 0;    ///< redundant DATA/PARITY receptions
  std::uint64_t rejected = 0;      ///< block-shape/length mismatches dropped
  ImpairmentStats impairment{};    ///< wire fault counters (zero when clean)

  UdpNpEndReason end_reason = UdpNpEndReason::kMidSessionSilence;
  std::uint64_t acks_sent = 0;     ///< reliable mode: positive poll answers
  std::uint64_t nak_retries = 0;   ///< reliable mode: NAK retransmissions
  std::uint64_t stale_rejected = 0;///< dead-incarnation packets dropped
  /// Runtime NAK suppression (overload.nak_suppression): slotted NAKs
  /// cancelled because repair arrived first.  Server drivers only.
  std::uint64_t naks_suppressed = 0;

  // Hostile-peer accounting (guard knobs on; server drivers only).
  /// Datagrams dropped because they did not come from the sender's port.
  std::uint64_t foreign_rejected = 0;
  /// Control frames whose keyed trailer failed verification (guard.auth).
  std::uint64_t auth_rejected = 0;
};

/// Blocking receiver: processes packets until the end-of-session marker
/// (or `idle_timeout` seconds of silence).
class UdpNpReceiver {
 public:
  /// `inject_loss`: probability of silently dropping each received
  /// DATA/PARITY packet (simulated network loss); 0 disables.
  /// `impairment`: adversarial byte-level faults (reorder, duplication,
  /// corruption, truncation, burst drops) applied to every received
  /// datagram before parsing; a default config disables it.
  UdpNpReceiver(UdpSocket socket, std::uint16_t sender_port,
                std::size_t num_tgs, const UdpNpConfig& config,
                double inject_loss = 0.0, Rng rng = Rng(1),
                const ImpairmentConfig& impairment = {});

  UdpNpReceiverResult run(double idle_timeout = 10.0);

  std::uint16_t port() const noexcept { return socket_.port(); }

 private:
  UdpSocket socket_;
  std::uint16_t sender_port_;
  std::size_t num_tgs_;
  UdpNpConfig cfg_;
  double inject_loss_;
  Rng rng_;
  fec::RseCode code_;
  std::shared_ptr<Impairment> impairment_;  // installed on socket_, if any
};

/// The end-of-session marker the sender multicasts when done.
inline constexpr std::uint32_t kUdpEndOfSession = 0xFFFFFFFFu;

}  // namespace pbl::net
