#include "net/udp/udp_transport.hpp"

#include "net/udp/frame_stream.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace pbl::net {

namespace {

// Frames per sendmmsg/recvmmsg syscall.  Large enough to amortise the
// kernel crossing, small enough that the mmsghdr scaffolding stays on
// the stack (tx) or in a modest thread-local scratch (rx).
constexpr std::size_t kTxChunk = 128;
constexpr std::size_t kRxChunk = 16;
constexpr std::size_t kMaxDatagram = 65536;
// Malformed datagrams up to this size are run through FrameStreamDecoder
// to salvage embedded valid frames.  The byte-by-byte resync scan is
// O(size * frame) in the worst case, so a hostile peer flooding max-size
// garbage must not buy that work: larger junk is just counted + dropped.
constexpr std::size_t kSalvageLimit = 4096;

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

bool is_would_block(int err) noexcept {
  // ENOBUFS/ENOMEM: the kernel could not take the datagram right now —
  // for a lossy datagram protocol that is transient resource pressure,
  // not a broken socket; the caller defers or treats the frame as loss.
  return err == EAGAIN || err == EWOULDBLOCK || err == ENOBUFS ||
         err == ENOMEM;
}

// Backend selection state.  -1 = no scoped override.  The environment
// default is resolved once (first use) so a mid-run setenv cannot split
// a session across backends.
std::atomic<int> g_backend_override{-1};

UdpBackend env_default_backend() {
  static const UdpBackend resolved = [] {
    if (const char* env = std::getenv("PBL_UDP_BACKEND")) {
      if (std::string(env) == "fallback") return UdpBackend::kFallback;
      if (std::string(env) == "batched" && udp_batched_available())
        return UdpBackend::kBatched;
    }
    return udp_batched_available() ? UdpBackend::kBatched
                                   : UdpBackend::kFallback;
  }();
  return resolved;
}

}  // namespace

std::string to_string(UdpBackend backend) {
  switch (backend) {
    case UdpBackend::kBatched: return "batched";
    case UdpBackend::kFallback: return "fallback";
  }
  return "unknown";
}

bool udp_batched_available() noexcept {
#ifdef PBL_HAVE_MMSG
  return true;
#else
  return false;
#endif
}

UdpBackend active_udp_backend() noexcept {
  const int override = g_backend_override.load(std::memory_order_acquire);
  if (override >= 0) {
    const auto requested = static_cast<UdpBackend>(override);
    if (requested == UdpBackend::kBatched && !udp_batched_available())
      return UdpBackend::kFallback;
    return requested;
  }
  return env_default_backend();
}

ScopedUdpBackendOverride::ScopedUdpBackendOverride(UdpBackend backend)
    : previous_(g_backend_override.exchange(static_cast<int>(backend),
                                            std::memory_order_acq_rel)) {}

ScopedUdpBackendOverride::~ScopedUdpBackendOverride() {
  g_backend_override.store(previous_, std::memory_order_release);
}

UdpSocket::UdpSocket(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0)
    throw std::system_error(errno, std::generic_category(), "socket");
  sockaddr_in addr = loopback(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::system_error(err, std::generic_category(), "bind");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::system_error(err, std::generic_category(), "getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

UdpSocket::UdpSocket(UdpSocket&& other) noexcept
    : fd_(other.fd_), port_(other.port_),
      impairment_(std::move(other.impairment_)),
      pending_(std::move(other.pending_)), parsed_(std::move(other.parsed_)),
      frame_resyncs_(other.frame_resyncs_),
      frames_skipped_(other.frames_skipped_), tx_tap_(std::move(other.tx_tap_)),
      inject_errno_(other.inject_errno_), inject_count_(other.inject_count_),
      inject_every_errno_(other.inject_every_errno_),
      inject_every_(other.inject_every_), inject_burst_(other.inject_burst_),
      inject_burst_left_(other.inject_burst_left_),
      attempted_sends_(other.attempted_sends_),
      injected_failures_(other.injected_failures_) {
  other.fd_ = -1;
  other.port_ = 0;
  other.inject_count_ = 0;
  other.inject_every_ = 0;
  other.inject_burst_left_ = 0;
}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    port_ = other.port_;
    impairment_ = std::move(other.impairment_);
    pending_ = std::move(other.pending_);
    parsed_ = std::move(other.parsed_);
    frame_resyncs_ = other.frame_resyncs_;
    frames_skipped_ = other.frames_skipped_;
    tx_tap_ = std::move(other.tx_tap_);
    inject_errno_ = other.inject_errno_;
    inject_count_ = other.inject_count_;
    inject_every_errno_ = other.inject_every_errno_;
    inject_every_ = other.inject_every_;
    inject_burst_ = other.inject_burst_;
    inject_burst_left_ = other.inject_burst_left_;
    attempted_sends_ = other.attempted_sends_;
    injected_failures_ = other.injected_failures_;
    other.fd_ = -1;
    other.port_ = 0;
    other.inject_count_ = 0;
    other.inject_every_ = 0;
    other.inject_burst_left_ = 0;
  }
  return *this;
}

int UdpSocket::consume_injected_send() {
  if (inject_count_ > 0) {
    --inject_count_;
    ++injected_failures_;
    return inject_errno_;
  }
  if (inject_every_ > 0) {
    ++attempted_sends_;
    if (inject_burst_left_ == 0 && attempted_sends_ % inject_every_ == 0)
      inject_burst_left_ = inject_burst_;
    if (inject_burst_left_ > 0) {
      --inject_burst_left_;
      ++injected_failures_;
      return inject_every_errno_;
    }
  }
  return 0;
}

void UdpSocket::set_impairment(std::shared_ptr<Impairment> impairment) {
  impairment_ = std::move(impairment);
  pending_.clear();
  parsed_.clear();
}

SendStatus UdpSocket::send_raw(std::uint16_t dest_port,
                               std::span<const std::uint8_t> bytes) {
  const sockaddr_in dest = loopback(dest_port);
  for (;;) {
    if (const int inj = consume_injected_send()) {
      if (is_would_block(inj)) return SendStatus::kWouldBlock;
      throw std::system_error(inj, std::generic_category(),
                              "sendto (injected)");
    }
    const ssize_t sent =
        ::sendto(fd_, bytes.data(), bytes.size(), 0,
                 reinterpret_cast<const sockaddr*>(&dest), sizeof(dest));
    if (sent >= 0) {
      if (tx_tap_) tx_tap_(dest_port, bytes);
      return SendStatus::kSent;
    }
    if (errno == EINTR) continue;
    // Transient pushback is backpressure, not failure: callers either
    // retry (send_batch_blocking) or treat the frame as lost, which the
    // FEC/NAK machinery repairs like any other loss.
    if (is_would_block(errno)) return SendStatus::kWouldBlock;
    throw std::system_error(errno, std::generic_category(), "sendto");
  }
}

SendStatus UdpSocket::send_to(std::uint16_t dest_port,
                              const fec::Packet& packet) {
  const auto bytes = fec::serialize(packet);
  return send_raw(dest_port, bytes);
}

SendStatus UdpSocket::send_frame(std::uint16_t dest_port,
                                 std::span<const std::uint8_t> frame) {
  return send_raw(dest_port, frame);
}

BatchSendResult UdpSocket::send_batch(std::span<const FrameRef> frames) {
  BatchSendResult result;
#ifdef PBL_HAVE_MMSG
  if (active_udp_backend() == UdpBackend::kBatched) {
    while (result.sent < frames.size()) {
      const std::size_t chunk =
          std::min(kTxChunk, frames.size() - result.sent);
      sockaddr_in dests[kTxChunk];
      iovec iovs[kTxChunk];
      mmsghdr msgs[kTxChunk];
      std::memset(msgs, 0, chunk * sizeof(mmsghdr));
      for (std::size_t i = 0; i < chunk; ++i) {
        const FrameRef& f = frames[result.sent + i];
        dests[i] = loopback(f.dest_port);
        iovs[i].iov_base = const_cast<std::uint8_t*>(f.bytes.data());
        iovs[i].iov_len = f.bytes.size();
        msgs[i].msg_hdr.msg_name = &dests[i];
        msgs[i].msg_hdr.msg_namelen = sizeof(dests[i]);
        msgs[i].msg_hdr.msg_iov = &iovs[i];
        msgs[i].msg_hdr.msg_iovlen = 1;
      }
      int n;
      for (;;) {
        if (const int inj = consume_injected_send()) {
          errno = inj;
          n = -1;
        } else {
          n = ::sendmmsg(fd_, msgs, static_cast<unsigned>(chunk), 0);
        }
        if (n < 0 && errno == EINTR) continue;
        break;
      }
      if (n < 0) {
        result.last_errno = errno;
        if (is_would_block(errno)) {
          result.status = SendStatus::kWouldBlock;
          return result;
        }
        throw std::system_error(errno, std::generic_category(), "sendmmsg");
      }
      if (tx_tap_) {
        for (int i = 0; i < n; ++i) {
          const FrameRef& f = frames[result.sent + static_cast<std::size_t>(i)];
          tx_tap_(f.dest_port, f.bytes);
        }
      }
      result.sent += static_cast<std::size_t>(n);
      if (static_cast<std::size_t>(n) < chunk) {
        // Kernel took a prefix of the chunk: partial send.  Report
        // would-block so the caller resumes from frames[sent].
        result.status = SendStatus::kWouldBlock;
        result.last_errno = EAGAIN;
        return result;
      }
    }
    return result;
  }
#endif
  // Portable fallback: same frames, same order, one syscall each.
  for (const FrameRef& f : frames) {
    if (send_raw(f.dest_port, f.bytes) == SendStatus::kWouldBlock) {
      result.status = SendStatus::kWouldBlock;
      result.last_errno = EAGAIN;
      return result;
    }
    ++result.sent;
  }
  return result;
}

void UdpSocket::send_batch_blocking(std::span<const FrameRef> frames) {
  std::size_t done = 0;
  while (done < frames.size()) {
    const BatchSendResult r = send_batch(frames.subspan(done));
    done += r.sent;
    if (done >= frames.size()) break;
    // Backpressure: wait for the socket to drain, then resume from the
    // first unsent frame.  Loopback drains fast; the poll keeps a
    // pathological stall from spinning.
    pollfd pfd{fd_, POLLOUT, 0};
    ::poll(&pfd, 1, 100);
  }
}

std::size_t UdpSocket::drain_ready() {
#ifdef PBL_HAVE_MMSG
  if (active_udp_backend() == UdpBackend::kBatched) {
    // Scratch shared by every socket on this thread: kRxChunk max-size
    // datagram buffers plus the mmsg scaffolding (~1 MiB/thread).
    struct RxScratch {
      std::vector<std::uint8_t> bufs =
          std::vector<std::uint8_t>(kRxChunk * kMaxDatagram);
      sockaddr_in srcs[kRxChunk];
      iovec iovs[kRxChunk];
      mmsghdr msgs[kRxChunk];
    };
    thread_local RxScratch scratch;
    std::memset(scratch.msgs, 0, sizeof(scratch.msgs));
    std::memset(scratch.srcs, 0, sizeof(scratch.srcs));
    for (std::size_t i = 0; i < kRxChunk; ++i) {
      scratch.iovs[i].iov_base = scratch.bufs.data() + i * kMaxDatagram;
      scratch.iovs[i].iov_len = kMaxDatagram;
      scratch.msgs[i].msg_hdr.msg_iov = &scratch.iovs[i];
      scratch.msgs[i].msg_hdr.msg_iovlen = 1;
      scratch.msgs[i].msg_hdr.msg_name = &scratch.srcs[i];
      scratch.msgs[i].msg_hdr.msg_namelen = sizeof(scratch.srcs[i]);
    }
    timespec no_wait{0, 0};
    int n;
    do {
      n = ::recvmmsg(fd_, scratch.msgs, kRxChunk, MSG_DONTWAIT, &no_wait);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return 0;
    for (int i = 0; i < n; ++i) {
      const std::span<const std::uint8_t> raw{
          static_cast<const std::uint8_t*>(scratch.iovs[i].iov_base),
          scratch.msgs[i].msg_len};
      const std::uint16_t src = ntohs(scratch.srcs[i].sin_port);
      // Impairment is applied per datagram in kernel receive order —
      // exactly the order the fallback's one-at-a-time loop would see.
      // Duplicates inherit the original datagram's source.
      if (impairment_) {
        for (auto& bytes : impairment_->apply_bytes(raw))
          pending_.push_back({src, std::move(bytes)});
      } else {
        pending_.push_back(
            {src, std::vector<std::uint8_t>(raw.begin(), raw.end())});
      }
    }
    return static_cast<std::size_t>(n);
  }
#endif
  std::uint8_t buf[kMaxDatagram];
  sockaddr_in src_addr{};
  socklen_t src_len = sizeof(src_addr);
  const ssize_t got =
      ::recvfrom(fd_, buf, sizeof(buf), MSG_DONTWAIT,
                 reinterpret_cast<sockaddr*>(&src_addr), &src_len);
  if (got < 0) return 0;
  const std::span<const std::uint8_t> raw{buf, static_cast<std::size_t>(got)};
  const std::uint16_t src = ntohs(src_addr.sin_port);
  if (impairment_) {
    for (auto& bytes : impairment_->apply_bytes(raw))
      pending_.push_back({src, std::move(bytes)});
  } else {
    pending_.push_back(
        {src, std::vector<std::uint8_t>(raw.begin(), raw.end())});
  }
  return 1;
}

std::optional<Datagram> UdpSocket::parse_pending() {
  for (;;) {
    // Frames salvaged from an earlier malformed datagram go first (they
    // arrived before anything still sitting in pending_).
    if (!parsed_.empty()) {
      Datagram d = std::move(parsed_.front());
      parsed_.pop_front();
      return d;
    }
    if (pending_.empty()) return std::nullopt;
    RawDatagram raw = std::move(pending_.front());
    pending_.pop_front();
    try {
      return Datagram{raw.src_port, fec::deserialize(raw.bytes)};
    } catch (const std::invalid_argument&) {
      // Corrupted/truncated in flight — or hostile garbage.  Scan for
      // embedded sealed frames (bounded; see kSalvageLimit) and surface
      // the desync evidence through the frame_resyncs/frames_skipped
      // counters either way.
      if (raw.bytes.size() <= kSalvageLimit) {
        FrameStreamDecoder dec;
        dec.feed(raw.bytes);
        frame_resyncs_ += dec.resyncs();
        frames_skipped_ += dec.skipped_invalid();
        auto salvaged = dec.take();
        if (salvaged.empty()) ++frames_skipped_;
        for (auto& p : salvaged)
          parsed_.push_back({raw.src_port, std::move(p)});
      } else {
        ++frames_skipped_;
      }
    }
  }
}

std::optional<fec::Packet> UdpSocket::receive(double timeout_s) {
  if (auto d = receive_from(timeout_s)) return std::move(d->packet);
  return std::nullopt;
}

std::optional<Datagram> UdpSocket::receive_from(double timeout_s) {
  const auto start = std::chrono::steady_clock::now();
  bool polled = false;
  for (;;) {
    // Datagrams queued by an earlier drain go first.
    if (auto p = parse_pending()) return p;
    int ms = -1;
    if (timeout_s >= 0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      const double remaining = timeout_s - elapsed;
      if (remaining <= 0.0) {
        // An exhausted budget still gets ONE zero-timeout poll, so
        // receive(0) is a true non-blocking read for event-driven
        // callers (server/session_driver) instead of always nullopt.
        if (polled) return std::nullopt;
        ms = 0;
      } else {
        ms = static_cast<int>(remaining * 1000.0);
      }
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, ms);
    polled = true;
    if (ready <= 0) return std::nullopt;
    if (drain_ready() == 0) return std::nullopt;
  }
}

std::size_t UdpSocket::receive_batch(std::vector<fec::Packet>& out,
                                     std::size_t max_packets,
                                     double timeout_s) {
  std::size_t produced = 0;
  const auto take_pending = [&] {
    while (produced < max_packets) {
      auto p = parse_pending();
      if (!p) break;
      out.push_back(std::move(p->packet));
      ++produced;
    }
  };
  take_pending();
  if (produced >= max_packets) return produced;
  const int ms =
      timeout_s < 0 ? -1 : static_cast<int>(timeout_s * 1000.0);
  pollfd pfd{fd_, POLLIN, 0};
  if (::poll(&pfd, 1, ms) <= 0) return produced;
  drain_ready();
  take_pending();
  return produced;
}

void UdpGroup::multicast(UdpSocket& from, const fec::Packet& packet,
                         std::optional<std::uint16_t> exclude) const {
  // Serialize once; the same bytes fan out to every member as one batch.
  const auto bytes = fec::serialize(packet);
  multicast_frame(from, bytes, exclude);
}

void UdpGroup::multicast_frame(UdpSocket& from,
                               std::span<const std::uint8_t> frame,
                               std::optional<std::uint16_t> exclude) const {
  std::vector<FrameRef> refs;
  refs.reserve(members_.size());
  for (const std::uint16_t port : members_) {
    if (exclude && *exclude == port) continue;
    refs.push_back({port, frame});
  }
  from.send_batch_blocking(refs);
}

}  // namespace pbl::net
