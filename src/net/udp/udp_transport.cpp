#include "net/udp/udp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <span>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace pbl::net {

namespace {
sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}
}  // namespace

UdpSocket::UdpSocket(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0)
    throw std::system_error(errno, std::generic_category(), "socket");
  sockaddr_in addr = loopback(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::system_error(err, std::generic_category(), "bind");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::system_error(err, std::generic_category(), "getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

UdpSocket::UdpSocket(UdpSocket&& other) noexcept
    : fd_(other.fd_), port_(other.port_),
      impairment_(std::move(other.impairment_)),
      pending_(std::move(other.pending_)) {
  other.fd_ = -1;
  other.port_ = 0;
}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    port_ = other.port_;
    impairment_ = std::move(other.impairment_);
    pending_ = std::move(other.pending_);
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

void UdpSocket::set_impairment(std::shared_ptr<Impairment> impairment) {
  impairment_ = std::move(impairment);
  pending_.clear();
}

void UdpSocket::send_to(std::uint16_t dest_port, const fec::Packet& packet) {
  const auto bytes = fec::serialize(packet);
  const sockaddr_in dest = loopback(dest_port);
  const ssize_t sent =
      ::sendto(fd_, bytes.data(), bytes.size(), 0,
               reinterpret_cast<const sockaddr*>(&dest), sizeof(dest));
  if (sent < 0)
    throw std::system_error(errno, std::generic_category(), "sendto");
}

std::optional<fec::Packet> UdpSocket::receive(double timeout_s) {
  const auto start = std::chrono::steady_clock::now();
  bool polled = false;
  for (;;) {
    // Impaired datagrams queued by an earlier poll round go first.
    while (!pending_.empty()) {
      std::vector<std::uint8_t> bytes = std::move(pending_.front());
      pending_.pop_front();
      try {
        return fec::deserialize(bytes);
      } catch (const std::invalid_argument&) {
        // corrupted/truncated in flight: the parse turns it into loss
      }
    }
    int ms = -1;
    if (timeout_s >= 0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      const double remaining = timeout_s - elapsed;
      if (remaining <= 0.0) {
        // An exhausted budget still gets ONE zero-timeout poll, so
        // receive(0) is a true non-blocking read for event-driven
        // callers (server/session_driver) instead of always nullopt.
        if (polled) return std::nullopt;
        ms = 0;
      } else {
        ms = static_cast<int>(remaining * 1000.0);
      }
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, ms);
    polled = true;
    if (ready <= 0) return std::nullopt;
    std::uint8_t buf[65536];
    const ssize_t got = ::recv(fd_, buf, sizeof(buf), 0);
    if (got < 0) return std::nullopt;
    const std::span<const std::uint8_t> raw{buf,
                                            static_cast<std::size_t>(got)};
    if (impairment_) {
      for (auto& bytes : impairment_->apply_bytes(raw))
        pending_.push_back(std::move(bytes));
      continue;  // parse (or keep polling) on the next iteration
    }
    try {
      return fec::deserialize(raw);
    } catch (const std::invalid_argument&) {
      continue;  // malformed datagram: drop, keep waiting
    }
  }
}

void UdpGroup::multicast(UdpSocket& from, const fec::Packet& packet,
                         std::optional<std::uint16_t> exclude) const {
  for (const std::uint16_t port : members_) {
    if (exclude && *exclude == port) continue;
    from.send_to(port, packet);
  }
}

}  // namespace pbl::net
