#include "net/udp/udp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

namespace pbl::net {

namespace {
sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}
}  // namespace

UdpSocket::UdpSocket(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0)
    throw std::system_error(errno, std::generic_category(), "socket");
  sockaddr_in addr = loopback(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::system_error(err, std::generic_category(), "bind");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::system_error(err, std::generic_category(), "getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

UdpSocket::UdpSocket(UdpSocket&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

void UdpSocket::send_to(std::uint16_t dest_port, const fec::Packet& packet) {
  const auto bytes = fec::serialize(packet);
  const sockaddr_in dest = loopback(dest_port);
  const ssize_t sent =
      ::sendto(fd_, bytes.data(), bytes.size(), 0,
               reinterpret_cast<const sockaddr*>(&dest), sizeof(dest));
  if (sent < 0)
    throw std::system_error(errno, std::generic_category(), "sendto");
}

std::optional<fec::Packet> UdpSocket::receive(double timeout_s) {
  pollfd pfd{fd_, POLLIN, 0};
  const int ms = timeout_s < 0 ? -1 : static_cast<int>(timeout_s * 1000.0);
  const int ready = ::poll(&pfd, 1, ms);
  if (ready <= 0) return std::nullopt;
  std::uint8_t buf[65536];
  const ssize_t got = ::recv(fd_, buf, sizeof(buf), 0);
  if (got < 0) return std::nullopt;
  try {
    return fec::deserialize({buf, static_cast<std::size_t>(got)});
  } catch (const std::invalid_argument&) {
    return std::nullopt;  // malformed datagram: drop
  }
}

void UdpGroup::multicast(UdpSocket& from, const fec::Packet& packet,
                         std::optional<std::uint16_t> exclude) const {
  for (const std::uint16_t port : members_) {
    if (exclude && *exclude == port) continue;
    from.send_to(port, packet);
  }
}

}  // namespace pbl::net
