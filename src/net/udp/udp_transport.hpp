// Minimal loopback UDP transport for running the protocols over real
// sockets (examples/udp_multicast_demo, server/).
//
// Multicast is emulated by unicast fan-out on 127.0.0.1: a UdpGroup holds
// the member ports and replicates each send.  This keeps the demo
// independent of kernel multicast support while exercising the real wire
// encoding (fec/packet.hpp) end to end.
//
// Data plane: sends and receives are batched.  Where the libc provides
// sendmmsg/recvmmsg (PBL_HAVE_MMSG at configure time) a whole batch of
// frames crosses the kernel boundary in one syscall; otherwise a portable
// one-datagram-at-a-time fallback runs the identical framing code.  The
// two backends are wire-exact: byte-identical streams per seed, proven by
// tests/test_udp_differential.cpp.  PBL_UDP_BACKEND=batched|fallback
// forces either at runtime, and ScopedUdpBackendOverride pins one for a
// test's scope.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fec/packet.hpp"
#include "net/impairment.hpp"

namespace pbl::net {

enum class UdpBackend {
  kBatched,   ///< sendmmsg/recvmmsg, many frames per syscall
  kFallback,  ///< portable sendto/recv loop, one frame per syscall
};

std::string to_string(UdpBackend backend);

/// True when the batched backend was compiled in (PBL_HAVE_MMSG).
bool udp_batched_available() noexcept;

/// The backend sockets currently use.  Resolution order: active
/// ScopedUdpBackendOverride, then the PBL_UDP_BACKEND environment
/// variable ("batched"/"fallback", read once), then kBatched when
/// available.  Requests for an unavailable batched backend degrade to
/// kFallback.
UdpBackend active_udp_backend() noexcept;

/// Pins the backend for a scope (differential tests run each session
/// once per backend).  Nestable; restores the previous state on
/// destruction.
class ScopedUdpBackendOverride {
 public:
  explicit ScopedUdpBackendOverride(UdpBackend backend);
  ~ScopedUdpBackendOverride();
  ScopedUdpBackendOverride(const ScopedUdpBackendOverride&) = delete;
  ScopedUdpBackendOverride& operator=(const ScopedUdpBackendOverride&) =
      delete;

 private:
  int previous_;
};

/// Why a send stopped.  Transient kernel pushback (EAGAIN/EWOULDBLOCK/
/// ENOBUFS) is backpressure, not failure: the caller retries after the
/// socket drains.  Hard errors still throw std::system_error.
enum class SendStatus {
  kSent,
  kWouldBlock,
};

/// One frame of a batch: pre-serialized wire bytes and their destination.
/// The bytes are borrowed — arena frames or any stable buffer.
struct FrameRef {
  std::uint16_t dest_port = 0;
  std::span<const std::uint8_t> bytes;
};

/// Outcome of a (possibly partial) batch send.  `sent` frames — always a
/// prefix of the batch — reached the kernel; when status is kWouldBlock
/// the caller resumes from frames[sent] once the socket is writable.
struct BatchSendResult {
  std::size_t sent = 0;
  SendStatus status = SendStatus::kSent;
  int last_errno = 0;  ///< errno that stopped the batch, 0 if none
};

/// A parsed packet together with the kernel-reported source port of the
/// datagram that carried it.  On the loopback topology the source port
/// IS the peer identity, so this is what feedback admission (PeerGuard,
/// the feedback_addr_mismatch cross-check) keys on.
struct Datagram {
  std::uint16_t src_port = 0;
  fec::Packet packet;
};

class UdpSocket {
 public:
  /// Observes every frame the socket actually hands to the kernel, in
  /// send order (dest port + wire bytes).  The differential tests record
  /// the tap of each backend and require the streams byte-identical.
  using TxTap =
      std::function<void(std::uint16_t, std::span<const std::uint8_t>)>;

  /// Binds a UDP socket to 127.0.0.1:port (0 picks an ephemeral port).
  /// Throws std::system_error on failure.
  explicit UdpSocket(std::uint16_t port = 0);
  ~UdpSocket();

  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// The raw descriptor, for event-loop registration (server/reactor).
  /// The socket still owns it; callers must not close it.
  int fd() const noexcept { return fd_; }

  /// True when received datagrams are queued for parsing: a receive(0)
  /// can return packets even if the descriptor is not readable, so
  /// event-driven callers must drain until both are empty.
  bool has_pending() const noexcept {
    return !pending_.empty() || !parsed_.empty();
  }

  /// Sends a packet to 127.0.0.1:dest_port.  Returns kWouldBlock on
  /// transient kernel pushback (EAGAIN/EWOULDBLOCK/ENOBUFS) instead of
  /// throwing — for a lossy datagram protocol that is just loss, and the
  /// FEC/NAK machinery above already repairs it.  Hard errors throw.
  SendStatus send_to(std::uint16_t dest_port, const fec::Packet& packet);

  /// Sends pre-framed wire bytes (serialize()/write_*_frame output).
  SendStatus send_frame(std::uint16_t dest_port,
                        std::span<const std::uint8_t> frame);

  /// Hands a batch of frames to the kernel — one sendmmsg per chunk on
  /// the batched backend, a sendto loop on the fallback.  Stops at the
  /// first would-block; `sent` frames (a prefix) are on the wire.  Hard
  /// errors throw after reporting nothing-sent-beyond-`sent`.
  BatchSendResult send_batch(std::span<const FrameRef> frames);

  /// send_batch with partial-send resume: polls the socket writable and
  /// retries until every frame is sent.  The protocol senders use this —
  /// backpressure slows them instead of crashing them.
  void send_batch_blocking(std::span<const FrameRef> frames);

  /// Waits up to `timeout_s` for a datagram; returns std::nullopt on
  /// timeout.  Malformed datagrams are dropped silently (the poll loop
  /// keeps waiting for the rest of the timeout), so nullopt always means
  /// "nothing arrived", even under impairment.
  std::optional<fec::Packet> receive(double timeout_s);

  /// receive() plus the datagram's kernel-reported source port — the
  /// hostile-peer defenses key on where bytes actually came from, not on
  /// what the header claims.  Same timeout/drop semantics as receive().
  std::optional<Datagram> receive_from(double timeout_s);

  /// Batched receive: drains queued datagrams, then waits up to
  /// `timeout_s` for the socket once and pulls everything readable in a
  /// single recvmmsg (single recv on the fallback).  Parsed packets are
  /// appended to `out`, at most `max_packets`; returns how many.
  std::size_t receive_batch(std::vector<fec::Packet>& out,
                            std::size_t max_packets, double timeout_s);

  /// Routes every received datagram through an adversarial Impairment
  /// before parsing: drops, duplicates, bit corruption, truncation and
  /// holdback reordering all happen on the raw bytes, exercising the
  /// real fec::deserialize path.  Impairment is applied per datagram in
  /// receive order on both backends.  Pass nullptr to remove.  The
  /// impairment object outlives any pending datagrams it produced.
  void set_impairment(std::shared_ptr<Impairment> impairment);

  /// Installs a tap observing every frame sent (nullptr to remove).
  void set_tx_tap(TxTap tap) { tx_tap_ = std::move(tap); }

  /// Test hook: the next `count` send syscall attempts fail with
  /// errno = err instead of reaching the kernel.  Injecting EAGAIN /
  /// ENOBUFS exercises the backpressure path deterministically.
  void inject_send_errno(int err, std::size_t count) {
    inject_errno_ = err;
    inject_count_ = count;
  }

  /// Fault-injection hook for sustained pushback: every `every`-th send
  /// syscall attempt opens a window of `burst` consecutive failures with
  /// errno = err (EAGAIN/ENOBUFS model a stalled socket, ENOMEM a
  /// starved kernel — all treated as backpressure).  every == 0 disables.
  /// Deterministic: keyed off the socket's own attempt counter.
  void inject_send_errno_every(int err, std::size_t every,
                               std::size_t burst) {
    inject_every_errno_ = err;
    inject_every_ = every;
    inject_burst_ = burst == 0 ? 1 : burst;
    inject_burst_left_ = 0;
  }

  /// Send attempts failed by either injection hook since construction —
  /// the server folds this into the fault_injected_send metric.
  std::uint64_t injected_send_failures() const noexcept {
    return injected_failures_;
  }

  /// Corruption-driven desync evidence from the receive path.  A
  /// datagram that fails the whole-datagram parse is run through a
  /// FrameStreamDecoder to salvage any embedded valid frames (a hostile
  /// peer may concatenate garbage around a sealed frame); every one-byte
  /// resynchronisation slide and every skipped frame is counted here and
  /// surfaces in the session metrics as frame_resyncs/frames_skipped.
  std::uint64_t frame_resyncs() const noexcept { return frame_resyncs_; }
  std::uint64_t frames_skipped() const noexcept { return frames_skipped_; }

 private:
  SendStatus send_raw(std::uint16_t dest_port,
                      std::span<const std::uint8_t> bytes);
  /// Injection gate shared by every send syscall site: returns the errno
  /// this attempt must fail with, or 0 to let the real syscall run.
  int consume_injected_send();
  /// Pulls every readable datagram into pending_ (post-impairment).
  /// Returns the number of raw datagrams read off the socket.
  std::size_t drain_ready();
  /// Pops pending_ until a datagram parses (directly or salvaged via
  /// FrameStreamDecoder); nullopt when drained.
  std::optional<Datagram> parse_pending();

  /// A received datagram awaiting parsing, tagged with its source port.
  struct RawDatagram {
    std::uint16_t src_port = 0;
    std::vector<std::uint8_t> bytes;
  };

  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::shared_ptr<Impairment> impairment_;
  std::deque<RawDatagram> pending_;  // received, not yet parsed
  std::deque<Datagram> parsed_;      // salvaged frames awaiting delivery
  std::uint64_t frame_resyncs_ = 0;
  std::uint64_t frames_skipped_ = 0;
  TxTap tx_tap_;
  int inject_errno_ = 0;
  std::size_t inject_count_ = 0;
  int inject_every_errno_ = 0;
  std::size_t inject_every_ = 0;
  std::size_t inject_burst_ = 0;
  std::size_t inject_burst_left_ = 0;
  std::uint64_t attempted_sends_ = 0;
  std::uint64_t injected_failures_ = 0;
};

/// Emulated multicast group: fan-out over member ports.
class UdpGroup {
 public:
  void add_member(std::uint16_t port) { members_.push_back(port); }
  std::size_t size() const noexcept { return members_.size(); }

  /// Member ports in join order — the reliable control plane addresses
  /// per-member state (ACKs, liveness, eviction) by this index.
  const std::vector<std::uint16_t>& members() const noexcept {
    return members_;
  }

  /// Replicates the packet to every member (optionally excluding one,
  /// e.g. the NAK's own sender).  Serializes once and fans the same
  /// bytes out as a single batch.
  void multicast(UdpSocket& from, const fec::Packet& packet,
                 std::optional<std::uint16_t> exclude = std::nullopt) const;

  /// Fan-out of pre-framed wire bytes (the zero-copy send path: arena
  /// frames written by TgEncoder::write_*_frame go straight here).
  void multicast_frame(UdpSocket& from, std::span<const std::uint8_t> frame,
                       std::optional<std::uint16_t> exclude =
                           std::nullopt) const;

 private:
  std::vector<std::uint16_t> members_;
};

}  // namespace pbl::net
