// Minimal loopback UDP transport for running the protocols over real
// sockets (examples/udp_multicast_demo).
//
// Multicast is emulated by unicast fan-out on 127.0.0.1: a UdpGroup holds
// the member ports and replicates each send.  This keeps the demo
// independent of kernel multicast support while exercising the real wire
// encoding (fec/packet.hpp) end to end.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "fec/packet.hpp"
#include "net/impairment.hpp"

namespace pbl::net {

class UdpSocket {
 public:
  /// Binds a UDP socket to 127.0.0.1:port (0 picks an ephemeral port).
  /// Throws std::system_error on failure.
  explicit UdpSocket(std::uint16_t port = 0);
  ~UdpSocket();

  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// The raw descriptor, for event-loop registration (server/reactor).
  /// The socket still owns it; callers must not close it.
  int fd() const noexcept { return fd_; }

  /// True when impaired datagrams are queued for parsing: a receive(0)
  /// can return packets even if the descriptor is not readable, so
  /// event-driven callers must drain until both are empty.
  bool has_pending() const noexcept { return !pending_.empty(); }

  /// Sends a packet to 127.0.0.1:dest_port.
  void send_to(std::uint16_t dest_port, const fec::Packet& packet);

  /// Waits up to `timeout_s` for a datagram; returns std::nullopt on
  /// timeout.  Malformed datagrams are dropped silently (the poll loop
  /// keeps waiting for the rest of the timeout), so nullopt always means
  /// "nothing arrived", even under impairment.
  std::optional<fec::Packet> receive(double timeout_s);

  /// Routes every received datagram through an adversarial Impairment
  /// before parsing: drops, duplicates, bit corruption, truncation and
  /// holdback reordering all happen on the raw bytes, exercising the
  /// real fec::deserialize path.  Pass nullptr to remove.  The
  /// impairment object outlives any pending datagrams it produced.
  void set_impairment(std::shared_ptr<Impairment> impairment);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::shared_ptr<Impairment> impairment_;
  std::deque<std::vector<std::uint8_t>> pending_;  // impaired, not yet parsed
};

/// Emulated multicast group: fan-out over member ports.
class UdpGroup {
 public:
  void add_member(std::uint16_t port) { members_.push_back(port); }
  std::size_t size() const noexcept { return members_.size(); }

  /// Member ports in join order — the reliable control plane addresses
  /// per-member state (ACKs, liveness, eviction) by this index.
  const std::vector<std::uint16_t>& members() const noexcept {
    return members_;
  }

  /// Replicates the packet to every member (optionally excluding one,
  /// e.g. the NAK's own sender).
  void multicast(UdpSocket& from, const fec::Packet& packet,
                 std::optional<std::uint16_t> exclude = std::nullopt) const;

 private:
  std::vector<std::uint16_t> members_;
};

}  // namespace pbl::net
