#include "obs/metrics.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace pbl::obs {

namespace {

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  for (const char c : name)
    if (!(std::islower(static_cast<unsigned char>(c)) ||
          std::isdigit(static_cast<unsigned char>(c)) || c == '_'))
      return false;
  return true;
}

void append_indent(std::string& out, int indent) {
  out.append(static_cast<std::size_t>(indent), ' ');
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_histogram_json(std::string& out, const MetricDef& def,
                           const HistogramValue& h) {
  out += "{\"buckets\": [";
  for (std::size_t i = 0; i < def.buckets.size(); ++i) {
    if (i) out += ", ";
    append_json_double(out, def.buckets[i]);
  }
  out += "], \"counts\": [";
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    if (i) out += ", ";
    append_u64(out, h.counts[i]);
  }
  out += "], \"count\": ";
  append_u64(out, h.count);
  out += ", \"sum\": ";
  append_json_double(out, h.sum);
  out += "}";
}

}  // namespace

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
    case MetricKind::kString: return "string";
  }
  return "?";
}

void append_json_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_json_double(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan; snapshots must parse
    out += "0";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[40];
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(shorter, "%lf", &back);
    if (back == v) {
      out += shorter;
      return;
    }
  }
  out += buf;
}

MetricsRegistry::MetricsRegistry(std::vector<MetricDef> defs)
    : defs_(std::move(defs)) {
  slot_.reserve(defs_.size());
  for (const auto& def : defs_) {
    if (!valid_metric_name(def.name))
      throw std::invalid_argument("MetricsRegistry: bad metric name '" +
                                  def.name + "' (want [a-z0-9_]+)");
    for (const auto& other : defs_)
      if (&other != &def && other.name == def.name)
        throw std::invalid_argument("MetricsRegistry: duplicate metric '" +
                                    def.name + "'");
    if (def.kind == MetricKind::kHistogram) {
      if (def.buckets.empty())
        throw std::invalid_argument("MetricsRegistry: histogram '" + def.name +
                                    "' needs at least one bucket bound");
      for (std::size_t i = 1; i < def.buckets.size(); ++i)
        if (!(def.buckets[i] > def.buckets[i - 1]))
          throw std::invalid_argument("MetricsRegistry: histogram '" +
                                      def.name +
                                      "' buckets must be strictly ascending");
    } else if (!def.buckets.empty()) {
      throw std::invalid_argument("MetricsRegistry: only histograms take "
                                  "buckets ('" +
                                  def.name + "')");
    }
    if (def.kind != MetricKind::kString && !def.allowed.empty())
      throw std::invalid_argument("MetricsRegistry: only string metrics take "
                                  "allowed values ('" +
                                  def.name + "')");
    switch (def.kind) {
      case MetricKind::kCounter:
        slot_.push_back(counters_.size());
        counters_.push_back(0);
        break;
      case MetricKind::kGauge:
        slot_.push_back(gauges_.size());
        gauges_.push_back(0.0);
        break;
      case MetricKind::kHistogram: {
        slot_.push_back(histograms_.size());
        HistogramValue h;
        h.counts.assign(def.buckets.size() + 1, 0);
        histograms_.push_back(std::move(h));
        break;
      }
      case MetricKind::kString:
        slot_.push_back(strings_.size());
        strings_.push_back(def.allowed.empty() ? std::string()
                                               : def.allowed.front());
        break;
    }
  }
}

std::size_t MetricsRegistry::index_of(std::string_view name,
                                      MetricKind kind) const {
  for (std::size_t i = 0; i < defs_.size(); ++i) {
    if (defs_[i].name != name) continue;
    if (defs_[i].kind != kind)
      throw std::invalid_argument("MetricsRegistry: '" + std::string(name) +
                                  "' is a " + to_string(defs_[i].kind) +
                                  ", accessed as " + to_string(kind));
    return i;
  }
  throw std::invalid_argument("MetricsRegistry: unknown metric '" +
                              std::string(name) + "' — not in the schema");
}

void MetricsRegistry::inc(std::string_view name, std::uint64_t by) {
  counters_[slot_[index_of(name, MetricKind::kCounter)]] += by;
}

void MetricsRegistry::set_counter(std::string_view name, std::uint64_t value) {
  counters_[slot_[index_of(name, MetricKind::kCounter)]] = value;
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
  gauges_[slot_[index_of(name, MetricKind::kGauge)]] = value;
}

void MetricsRegistry::observe(std::string_view name, double value) {
  const std::size_t i = index_of(name, MetricKind::kHistogram);
  auto& h = histograms_[slot_[i]];
  const auto& bounds = defs_[i].buckets;
  std::size_t b = 0;
  while (b < bounds.size() && value > bounds[b]) ++b;
  ++h.counts[b];
  ++h.count;
  h.sum += value;
}

void MetricsRegistry::set_string(std::string_view name,
                                 std::string_view value) {
  const std::size_t i = index_of(name, MetricKind::kString);
  const auto& allowed = defs_[i].allowed;
  if (!allowed.empty()) {
    bool ok = false;
    for (const auto& a : allowed) ok = ok || a == value;
    if (!ok)
      throw std::invalid_argument("MetricsRegistry: '" + std::string(value) +
                                  "' is not an allowed value of '" +
                                  std::string(name) + "'");
  }
  strings_[slot_[i]] = std::string(value);
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  return counters_[slot_[index_of(name, MetricKind::kCounter)]];
}

double MetricsRegistry::gauge(std::string_view name) const {
  return gauges_[slot_[index_of(name, MetricKind::kGauge)]];
}

const HistogramValue& MetricsRegistry::histogram(std::string_view name) const {
  return histograms_[slot_[index_of(name, MetricKind::kHistogram)]];
}

const std::string& MetricsRegistry::text(std::string_view name) const {
  return strings_[slot_[index_of(name, MetricKind::kString)]];
}

void MetricsRegistry::values_json(std::string& out, int indent) const {
  out += "{\n";
  for (std::size_t i = 0; i < defs_.size(); ++i) {
    const auto& def = defs_[i];
    append_indent(out, indent + 2);
    append_json_escaped(out, def.name);
    out += ": ";
    switch (def.kind) {
      case MetricKind::kCounter: append_u64(out, counters_[slot_[i]]); break;
      case MetricKind::kGauge: append_json_double(out, gauges_[slot_[i]]); break;
      case MetricKind::kHistogram:
        append_histogram_json(out, def, histograms_[slot_[i]]);
        break;
      case MetricKind::kString:
        append_json_escaped(out, strings_[slot_[i]]);
        break;
    }
    out += i + 1 < defs_.size() ? ",\n" : "\n";
  }
  append_indent(out, indent);
  out += "}";
}

std::string MetricsRegistry::csv_header() const {
  std::string out;
  for (const auto& def : defs_) {
    if (!out.empty()) out += ',';
    if (def.kind == MetricKind::kHistogram) {
      out += def.name + "_count," + def.name + "_sum";
    } else {
      out += def.name;
    }
  }
  return out;
}

std::string MetricsRegistry::csv_row() const {
  std::string out;
  for (std::size_t i = 0; i < defs_.size(); ++i) {
    if (!out.empty()) out += ',';
    switch (defs_[i].kind) {
      case MetricKind::kCounter: append_u64(out, counters_[slot_[i]]); break;
      case MetricKind::kGauge: append_json_double(out, gauges_[slot_[i]]); break;
      case MetricKind::kHistogram: {
        const auto& h = histograms_[slot_[i]];
        append_u64(out, h.count);
        out += ',';
        append_json_double(out, h.sum);
        break;
      }
      case MetricKind::kString: out += strings_[slot_[i]]; break;
    }
  }
  return out;
}

void MetricsRegistry::schema_json(std::string& out, int indent) const {
  out += "[\n";
  for (std::size_t i = 0; i < defs_.size(); ++i) {
    const auto& def = defs_[i];
    append_indent(out, indent + 2);
    out += "{\"name\": ";
    append_json_escaped(out, def.name);
    out += ", \"kind\": ";
    append_json_escaped(out, to_string(def.kind));
    out += ", \"help\": ";
    append_json_escaped(out, def.help);
    if (def.kind == MetricKind::kHistogram) {
      out += ", \"buckets\": [";
      for (std::size_t b = 0; b < def.buckets.size(); ++b) {
        if (b) out += ", ";
        append_json_double(out, def.buckets[b]);
      }
      out += "]";
    }
    if (!def.allowed.empty()) {
      out += ", \"allowed\": [";
      for (std::size_t a = 0; a < def.allowed.size(); ++a) {
        if (a) out += ", ";
        append_json_escaped(out, def.allowed[a]);
      }
      out += "]";
    }
    out += "}";
    out += i + 1 < defs_.size() ? ",\n" : "\n";
  }
  append_indent(out, indent);
  out += "]";
}

std::string metrics_schema_document(
    const std::vector<MetricDef>& server_defs,
    const std::vector<MetricDef>& session_defs) {
  std::string out;
  out += "{\n  \"schema\": \"";
  out += kMetricsSchemaName;
  out += "\",\n  \"version\": ";
  append_u64(out, static_cast<std::uint64_t>(kMetricsSchemaVersion));
  out += ",\n  \"kind\": \"schema\",\n  \"server\": ";
  MetricsRegistry(server_defs).schema_json(out, 2);
  out += ",\n  \"session\": ";
  MetricsRegistry(session_defs).schema_json(out, 2);
  out += "\n}\n";
  return out;
}

}  // namespace pbl::obs
