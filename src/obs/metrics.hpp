// Structured observability: a schema'd metrics registry for the
// multicast server (docs/OBSERVABILITY.md).
//
// A MetricsRegistry is constructed from a fixed list of MetricDefs and
// never grows: the set of metric names IS the schema, versioned as
// pbl-metrics-v1 and exported to metrics-schema.json (the committed file
// is generated from these very defs, and tests assert the two never
// drift).  That closed-world rule is what lets the soak CI leg validate
// every emitted snapshot mechanically — an unknown key in a snapshot is
// a schema violation, not a new feature.
//
// Four metric kinds:
//   counter   — monotone u64 (packets sent, retries, evictions)
//   gauge     — instantaneous double (sessions active, journal bytes)
//   histogram — fixed upper-bound buckets + count + sum (durations)
//   string    — categorical state, optionally from a closed value set
//               (session state, end reason)
//
// The registry is deliberately single-threaded, like the reactor that
// feeds it: the server snapshots from its own event loop, so values need
// no atomics.  Access is by name (validated against the defs — an
// unknown name or kind mismatch throws), which keeps call sites
// greppable against the schema file.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pbl::obs {

inline constexpr const char* kMetricsSchemaName = "pbl-metrics-v1";
inline constexpr int kMetricsSchemaVersion = 1;

enum class MetricKind { kCounter, kGauge, kHistogram, kString };

const char* to_string(MetricKind kind);

struct MetricDef {
  std::string name;  ///< [a-z0-9_]+, unique within a registry
  MetricKind kind = MetricKind::kCounter;
  std::string help;
  /// Histogram upper bucket bounds, strictly ascending; an implicit
  /// +inf bucket is always appended (counts.size() == buckets.size()+1).
  std::vector<double> buckets;
  /// kString: the closed set of allowed values (empty = any string).
  std::vector<std::string> allowed;
};

/// A histogram's current contents: counts[i] covers
/// (buckets[i-1], buckets[i]], the last slot is the +inf overflow.
struct HistogramValue {
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double sum = 0.0;
};

class MetricsRegistry {
 public:
  /// Validates the defs (unique well-formed names, ascending buckets,
  /// kind/field consistency); throws std::invalid_argument on nonsense.
  explicit MetricsRegistry(std::vector<MetricDef> defs);

  // Writers.  Unknown name or wrong kind throws std::invalid_argument —
  // a metric not in the schema must fail loudly, not invent itself.
  void inc(std::string_view name, std::uint64_t by = 1);
  void set_counter(std::string_view name, std::uint64_t value);
  void set_gauge(std::string_view name, double value);
  void observe(std::string_view name, double value);
  /// Throws if the def has an allowed-value set and `value` is not in it.
  void set_string(std::string_view name, std::string_view value);

  // Readers (same lookup rules).
  std::uint64_t counter(std::string_view name) const;
  double gauge(std::string_view name) const;
  const HistogramValue& histogram(std::string_view name) const;
  const std::string& text(std::string_view name) const;

  const std::vector<MetricDef>& defs() const noexcept { return defs_; }

  /// Appends a JSON object ("{...}") holding every metric's current
  /// value, keys in def order.  `indent` spaces of leading indentation
  /// for the member lines; pass 0 for compact-ish output.
  void values_json(std::string& out, int indent) const;

  /// CSV over the scalar metrics only (counters, gauges, strings);
  /// histograms contribute <name>_count and <name>_sum columns.
  std::string csv_header() const;
  std::string csv_row() const;

  /// Appends a JSON array ("[...]") describing the defs — the schema
  /// fragment for this registry's scope.
  void schema_json(std::string& out, int indent) const;

 private:
  std::size_t index_of(std::string_view name, MetricKind kind) const;

  std::vector<MetricDef> defs_;
  std::vector<std::uint64_t> counters_;
  std::vector<double> gauges_;
  std::vector<HistogramValue> histograms_;
  std::vector<std::string> strings_;
  /// Per-def index into the kind-specific value vector above.
  std::vector<std::size_t> slot_;
};

/// The full metrics-schema.json document for a server: the schema/version
/// header plus the "server" and "session" def arrays.  The committed
/// metrics-schema.json is exactly this string (see
/// examples/multicast_server --print-schema).
std::string metrics_schema_document(const std::vector<MetricDef>& server_defs,
                                    const std::vector<MetricDef>& session_defs);

/// JSON string escaping for metric help/values (minimal: quotes,
/// backslash, control characters).
void append_json_escaped(std::string& out, std::string_view s);

/// Shortest round-trip-exact double formatting used across snapshots.
void append_json_double(std::string& out, double v);

}  // namespace pbl::obs
