#include "protocol/arq_nofec.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "fec/packet.hpp"
#include "net/channel.hpp"
#include "protocol/nak_suppression.hpp"
#include "sim/simulator.hpp"

namespace pbl::protocol {

using fec::Packet;
using fec::PacketType;

namespace {

/// Bitmap helpers: bit i of the NAK payload marks original i as missing.
std::vector<std::uint8_t> to_bitmap(const std::vector<bool>& missing) {
  std::vector<std::uint8_t> bytes((missing.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < missing.size(); ++i)
    if (missing[i]) bytes[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  return bytes;
}

bool bit_set(const std::vector<std::uint8_t>& bytes, std::size_t i) {
  return i / 8 < bytes.size() && (bytes[i / 8] >> (i % 8)) & 1u;
}

}  // namespace

struct ArqSession::Impl {
  Impl(const loss::LossModel& loss, std::size_t receivers, std::size_t num_tgs,
       const ArqConfig& config, std::uint64_t seed)
      : cfg(config), num_tgs(num_tgs), sim(seed),
        channel(sim, loss, receivers, config.delay, config.lossless_control) {
    if (receivers == 0) throw std::invalid_argument("ArqSession: receivers >= 1");
    if (num_tgs == 0) throw std::invalid_argument("ArqSession: num_tgs >= 1");

    tg_state.resize(num_tgs);
    rx.resize(receivers);
    for (std::size_t r = 0; r < receivers; ++r) {
      rx[r].have.assign(num_tgs, std::vector<bool>(cfg.k, false));
      rx[r].missing_count.assign(num_tgs, cfg.k);
      rx[r].poll_round.assign(num_tgs, 0);
      rx[r].nak_event.assign(num_tgs, sim::kInvalidEvent);
      rx[r].done_count = 0;
      rx[r].rng = Rng(seed).split(0x2000 + r);
    }

    channel.set_receiver_handler(
        [this](std::size_t r, const Packet& p) { on_receiver_packet(r, p); });
    channel.set_sender_handler(
        [this](std::size_t r, const Packet& p) { on_sender_feedback(r, p); });
  }

  struct TgState {
    std::uint32_t round = 0;  // feedback round (POLLs and NAKs carry it)
    sim::EventId deadline = sim::kInvalidEvent;
    bool serving = false;
  };

  // ---- sender ----------------------------------------------------------

  void schedule_send() {
    if (send_scheduled) return;
    if (urgent.empty() && next_tg >= num_tgs) return;
    const double at = std::max(sim.now(), last_send_time + cfg.delta);
    send_scheduled = true;
    sim.schedule_at(at, [this] {
      send_scheduled = false;
      send_next();
    });
  }

  void send_next() {
    last_send_time = sim.now();
    if (!urgent.empty()) {
      Packet p = std::move(urgent.front());
      urgent.pop_front();
      emit(p);
    } else if (next_tg < num_tgs) {
      emit(make_data(next_tg, next_index, /*retx=*/false));
      if (++next_index == cfg.k) {
        urgent.push_back(make_poll(next_tg, cfg.k));
        next_index = 0;
        ++next_tg;
      }
    }
    schedule_send();
  }

  Packet make_data(std::size_t tg, std::size_t i, bool retx) const {
    Packet p;
    p.header.type = PacketType::kData;
    p.header.tg = static_cast<std::uint32_t>(tg);
    p.header.index = static_cast<std::uint16_t>(i);
    p.header.k = static_cast<std::uint16_t>(cfg.k);
    p.header.n = static_cast<std::uint16_t>(cfg.k);
    p.header.count = retx ? 1 : 0;  // marks repair transmissions
    return p;
  }

  Packet make_poll(std::size_t tg, std::size_t s) {
    Packet p;
    p.header.type = PacketType::kPoll;
    p.header.tg = static_cast<std::uint32_t>(tg);
    p.header.k = static_cast<std::uint16_t>(cfg.k);
    p.header.count = static_cast<std::uint16_t>(s);
    p.header.seq = ++tg_state[tg].round;  // stale NAKs are filtered by round
    return p;
  }

  void emit(const Packet& p) {
    if (p.header.type == PacketType::kData) {
      if (p.header.count)
        ++stats.retransmissions;
      else
        ++stats.data_sent;
      channel.multicast_down(p);
      return;
    }
    ++stats.polls_sent;
    channel.multicast_control_down(p);
    arm_poll_deadline(p.header.tg, p.header.count);
  }

  void arm_poll_deadline(std::size_t tg, std::size_t s) {
    auto& st = tg_state[tg];
    st.serving = false;
    if (st.deadline != sim::kInvalidEvent) sim.cancel(st.deadline);
    const double window =
        2.0 * cfg.delay + (static_cast<double>(s) + 1.0) * cfg.slot;
    st.deadline = sim.schedule_in(window, [this, tg] {
      tg_state[tg].deadline = sim::kInvalidEvent;
    });
  }

  void on_sender_feedback(std::size_t /*from*/, const Packet& p) {
    if (p.header.type != PacketType::kNak) return;
    const std::size_t tg = p.header.tg;
    auto& st = tg_state[tg];
    if (st.serving) return;
    if (p.header.seq != st.round) return;  // stale NAK from an earlier round
    if (st.deadline != sim::kInvalidEvent) {
      sim.cancel(st.deadline);
      st.deadline = sim::kInvalidEvent;
    }
    st.serving = true;
    std::size_t count = 0;
    for (std::size_t i = 0; i < cfg.k; ++i) {
      if (bit_set(p.payload, i)) {
        urgent.push_back(make_data(tg, i, /*retx=*/true));
        ++count;
      }
    }
    urgent.push_back(make_poll(tg, count));
    schedule_send();
  }

  // ---- receivers -------------------------------------------------------

  struct Receiver {
    std::vector<std::vector<bool>> have;    // per TG, per packet
    std::vector<std::size_t> missing_count; // per TG
    std::vector<std::uint32_t> poll_round;  // latest POLL round per TG
    std::vector<sim::EventId> nak_event;    // pending NAK per TG
    std::size_t done_count = 0;
    Rng rng;
  };

  void on_receiver_packet(std::size_t r, const Packet& p) {
    auto& rec = rx[r];
    const std::size_t tg = p.header.tg;
    switch (p.header.type) {
      case PacketType::kData: {
        auto& have = rec.have[tg];
        if (have[p.header.index]) {
          ++stats.duplicate_receptions;
          return;
        }
        have[p.header.index] = true;
        if (--rec.missing_count[tg] == 0) {
          cancel_nak(r, tg);
          if (++rec.done_count == num_tgs)
            stats.completion_time = std::max(stats.completion_time, sim.now());
        }
        break;
      }
      case PacketType::kPoll:
        rec.poll_round[tg] = p.header.seq;
        on_poll(r, tg, p.header.count);
        break;
      case PacketType::kNak: {
        // Damping: suppress own NAK iff the overheard one covers our
        // whole missing set.
        if (rec.nak_event[tg] == sim::kInvalidEvent) return;
        bool covered = true;
        for (std::size_t i = 0; i < cfg.k && covered; ++i)
          if (!rec.have[tg][i] && !bit_set(p.payload, i)) covered = false;
        if (covered) {
          cancel_nak(r, tg);
          ++stats.naks_suppressed;
        }
        break;
      }
      case PacketType::kParity:
        throw std::logic_error("ArqSession: unexpected parity packet");
    }
  }

  void cancel_nak(std::size_t r, std::size_t tg) {
    if (rx[r].nak_event[tg] != sim::kInvalidEvent) {
      sim.cancel(rx[r].nak_event[tg]);
      rx[r].nak_event[tg] = sim::kInvalidEvent;
    }
  }

  void on_poll(std::size_t r, std::size_t tg, std::size_t s) {
    auto& rec = rx[r];
    const std::size_t l = rec.missing_count[tg];
    if (l == 0) return;
    cancel_nak(r, tg);
    const double backoff = nak_backoff(s, l, cfg.slot, rec.rng);
    rec.nak_event[tg] = sim.schedule_in(backoff, [this, r, tg] {
      rx[r].nak_event[tg] = sim::kInvalidEvent;
      ++stats.naks_sent;
      Packet nak;
      nak.header.type = PacketType::kNak;
      nak.header.tg = static_cast<std::uint32_t>(tg);
      std::vector<bool> missing(cfg.k);
      for (std::size_t i = 0; i < cfg.k; ++i) missing[i] = !rx[r].have[tg][i];
      nak.payload = to_bitmap(missing);
      nak.header.count =
          static_cast<std::uint16_t>(rx[r].missing_count[tg]);
      nak.header.seq = rx[r].poll_round[tg];  // answers this round's POLL
      nak.header.payload_len = static_cast<std::uint32_t>(nak.payload.size());
      channel.multicast_up(r, nak);
    });
  }

  ArqStats run() {
    schedule_send();
    sim.run();
    bool all = true;
    for (const auto& rec : rx)
      if (rec.done_count != num_tgs) all = false;
    stats.all_delivered = all;
    stats.tx_per_packet =
        static_cast<double>(stats.data_sent + stats.retransmissions) /
        (static_cast<double>(cfg.k) * static_cast<double>(num_tgs));
    return stats;
  }

  ArqConfig cfg;
  std::size_t num_tgs;
  sim::Simulator sim;
  net::MulticastChannel channel;

  std::vector<TgState> tg_state;
  std::deque<Packet> urgent;
  std::size_t next_tg = 0;
  std::size_t next_index = 0;
  double last_send_time = -1e9;
  bool send_scheduled = false;

  std::vector<Receiver> rx;
  ArqStats stats;
};

ArqSession::ArqSession(const loss::LossModel& loss, std::size_t receivers,
                       std::size_t num_tgs, const ArqConfig& config,
                       std::uint64_t seed)
    : impl_(std::make_unique<Impl>(loss, receivers, num_tgs, config, seed)) {}

ArqSession::~ArqSession() = default;

ArqStats ArqSession::run() { return impl_->run(); }

}  // namespace pbl::protocol
