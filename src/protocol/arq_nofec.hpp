// Generic receiver-initiated ARQ multicast without FEC — the N2-class
// baseline of Towsley, Kurose & Pingali that Section 5 compares protocol
// NP against.  Loss recovery retransmits the ORIGINAL packets that were
// lost, so feedback must identify them: NAKs carry a bitmap of missing
// packets, and a receiver suppresses its NAK only if an overheard NAK
// covers its whole missing set.  This is what makes ARQ feedback per
// packet rather than per transmission group, and what causes duplicate
// receptions at receivers that did not need a retransmission.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "loss/loss_model.hpp"

namespace pbl::protocol {

struct ArqConfig {
  std::size_t k = 20;           ///< packets per transmission group
  std::size_t packet_len = 256;
  double delta = 0.001;         ///< packet spacing [s]
  double slot = 0.005;          ///< NAK suppression slot size [s]
  double delay = 0.010;         ///< one-way propagation delay [s]
  bool lossless_control = true;
};

struct ArqStats {
  std::uint64_t data_sent = 0;           ///< first transmissions
  std::uint64_t retransmissions = 0;     ///< repair transmissions
  std::uint64_t polls_sent = 0;
  std::uint64_t naks_sent = 0;
  std::uint64_t naks_suppressed = 0;
  std::uint64_t duplicate_receptions = 0;
  double completion_time = 0.0;
  bool all_delivered = false;
  double tx_per_packet = 0.0;            ///< (data+retx)/(k*num_tgs), E[M]
};

class ArqSession {
 public:
  ArqSession(const loss::LossModel& loss, std::size_t receivers,
             std::size_t num_tgs, const ArqConfig& config,
             std::uint64_t seed = 1);
  ~ArqSession();

  ArqSession(const ArqSession&) = delete;
  ArqSession& operator=(const ArqSession&) = delete;

  ArqStats run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace pbl::protocol
