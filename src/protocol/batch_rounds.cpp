#include "protocol/batch_rounds.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/replicator.hpp"
#include "util/numerics.hpp"

namespace pbl::protocol {

IidBatchTransmitter::IidBatchTransmitter(const std::vector<Segment>& segments,
                                         Rng rng)
    : rng_(rng) {
  std::size_t off = 0;
  for (const auto& seg : segments) {
    if (seg.count == 0) continue;
    const std::size_t lo = off;
    const std::size_t hi = off + seg.count;
    const unsigned head = static_cast<unsigned>(lo % 64);
    const unsigned tail = static_cast<unsigned>(hi % 64);
    spans_.push_back(Span{lo / 64, (hi - 1) / 64 + 1,
                          ~std::uint64_t{0} << head,
                          tail == 0 ? ~std::uint64_t{0}
                                    : ~std::uint64_t{0} >> (64 - tail),
                          lo, seg.count,
                          loss::BinomialDist(seg.count, seg.p)});
    off = hi;
  }
  receivers_ = off;
  if (receivers_ == 0)
    throw std::invalid_argument("IidBatchTransmitter: need receivers >= 1");
  scratch_.resize((receivers_ + 63) / 64, 0);
}

/// Marks `target` distinct uniform lanes of `sp` in scratch_, by
/// rejection on already-marked lanes (the caller keeps target <= half
/// the segment, so the expected number of redraws is < 2 per lane).
void IidBatchTransmitter::place_lanes(const Span& sp, std::size_t target) {
  std::size_t placed = 0;
  while (placed < target) {
    const std::size_t lane = sp.begin_lane + rng_.below(sp.lanes);
    std::uint64_t& word = scratch_[lane >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (lane & 63);
    if (!(word & bit)) {
      word |= bit;
      ++placed;
    }
  }
}

void IidBatchTransmitter::transmit(double /*t*/, const sim::BitVec& active,
                                   sim::BitVec& received) {
  for (std::size_t w = 0; w < received.num_words(); ++w)
    received.data()[w] = 0;
  for (const Span& sp : spans_) {
    const std::uint64_t lost = sp.count(rng_);
    if (lost == sp.lanes) continue;  // everybody lost it: nothing received
    const bool rare_is_lost = lost <= sp.lanes / 2;
    if (lost != 0) {
      for (std::size_t w = sp.begin_word; w < sp.end_word; ++w)
        scratch_[w] = 0;
      place_lanes(sp, rare_is_lost ? static_cast<std::size_t>(lost)
                                   : sp.lanes - static_cast<std::size_t>(lost));
    }
    for (std::size_t w = sp.begin_word; w < sp.end_word; ++w) {
      std::uint64_t mask = ~std::uint64_t{0};
      if (w == sp.begin_word) mask &= sp.first_mask;
      if (w + 1 == sp.end_word) mask &= sp.last_mask;
      std::uint64_t got = active.word(w) & mask;
      if (lost != 0) got &= rare_is_lost ? ~scratch_[w] : scratch_[w];
      received.data()[w] |= got;
    }
  }
}

ProcessBatchTransmitter::ProcessBatchTransmitter(const loss::LossModel& model,
                                                 std::size_t first_receiver,
                                                 std::size_t receivers,
                                                 Rng base) {
  if (receivers == 0)
    throw std::invalid_argument("ProcessBatchTransmitter: need receivers >= 1");
  processes_.reserve(receivers);
  // Same substream derivation as IidTransmitter over the whole population,
  // so shard results match the exact engine bit for bit.
  for (std::size_t r = 0; r < receivers; ++r)
    processes_.push_back(
        model.make_process(base.split(first_receiver + r), first_receiver + r));
}

void ProcessBatchTransmitter::transmit(double t, const sim::BitVec& active,
                                       sim::BitVec& received) {
  for (std::size_t w = 0; w < received.num_words(); ++w)
    received.data()[w] = 0;
  for (std::size_t r = 0; r < processes_.size(); ++r) {
    if (!active.test(r)) continue;
    if (!processes_[r]->lost(t)) received.set(r);
  }
}

namespace {

/// The piecewise-constant-p segments of shard [first, first + count)
/// under an IID loss model, empty when the model has no IID fast path
/// (e.g. Gilbert, whose loss is time-dependent).
std::vector<IidBatchTransmitter::Segment> iid_segments(
    const loss::LossModel& model, std::size_t first_receiver,
    std::size_t count) {
  std::vector<IidBatchTransmitter::Segment> segs;
  const std::size_t lo = first_receiver;
  const std::size_t hi = first_receiver + count;
  const auto add = [&](std::size_t a, std::size_t b, double p) {
    a = std::max(a, lo);
    b = std::min(b, hi);
    if (a < b) segs.push_back({b - a, p});
  };
  if (const auto* bern = dynamic_cast<const loss::BernoulliLossModel*>(&model)) {
    segs.push_back({count, bern->mean_loss_probability()});
  } else if (const auto* het =
                 dynamic_cast<const loss::HeterogeneousLossModel*>(&model)) {
    if (hi > het->receivers())
      throw std::invalid_argument(
          "make_batch_transmitter: shard exceeds model population");
    const std::size_t boundary = het->receivers() - het->high_loss_count();
    if (boundary > 0) add(0, boundary, het->receiver_loss_probability(0));
    if (boundary < het->receivers())
      add(boundary, het->receivers(),
          het->receiver_loss_probability(boundary));
  } else if (const auto* mc =
                 dynamic_cast<const loss::MultiClassLossModel*>(&model)) {
    if (hi > mc->receivers())
      throw std::invalid_argument(
          "make_batch_transmitter: shard exceeds model population");
    std::size_t at = 0;
    for (const auto& cls : mc->classes()) {
      add(at, at + cls.count, cls.loss_prob);
      at += cls.count;
    }
  }
  return segs;
}

}  // namespace

std::unique_ptr<BatchTransmitter> make_batch_transmitter(
    const loss::LossModel& model, std::size_t first_receiver,
    std::size_t count, Rng base, Rng fast_rng, bool allow_fast_path) {
  if (count == 0)
    throw std::invalid_argument("make_batch_transmitter: need receivers >= 1");
  if (allow_fast_path) {
    const auto segs = iid_segments(model, first_receiver, count);
    if (!segs.empty())
      return std::make_unique<IidBatchTransmitter>(segs, fast_rng);
  }
  return std::make_unique<ProcessBatchTransmitter>(model, first_receiver,
                                                   count, base);
}

namespace {

using sim::BitVec;
using sim::ReceiverShard;
using TxVec = std::vector<std::unique_ptr<BatchTransmitter>>;

struct ShardRange {
  std::size_t first = 0;
  std::size_t count = 0;
};

std::vector<ShardRange> partition(std::size_t receivers, std::size_t shards) {
  shards = std::clamp<std::size_t>(shards, 1, receivers);
  std::vector<ShardRange> out(shards);
  const std::size_t base = receivers / shards;
  const std::size_t rem = receivers % shards;
  std::size_t first = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    out[s].first = first;
    out[s].count = base + (s < rem ? 1 : 0);
    first += out[s].count;
  }
  return out;
}

// Mirrors of the exact engines' static helpers (rounds.cpp); they must
// stay in lock-step so the two engines draw feedback-loss randomness and
// account rounds identically.
void validate(const McConfig& cfg) {
  if (cfg.k < 1) throw std::invalid_argument("McConfig: need k >= 1");
  if (cfg.h < 0) throw std::invalid_argument("McConfig: need h >= 0");
  if (cfg.num_tgs < 1)
    throw std::invalid_argument("McConfig: need num_tgs >= 1");
  if (cfg.q_f < 0.0 || cfg.q_f >= 1.0)
    throw std::invalid_argument("McConfig: need q_f in [0, 1)");
  cfg.timing.validate();
}

std::uint64_t lost_feedback_rounds(double q_f, Rng& rng) {
  std::uint64_t extra = 0;
  while (q_f > 0.0 && rng.bernoulli(q_f)) ++extra;
  return extra;
}

std::uint64_t charge_feedback_gap(const McConfig& cfg, Rng& rng, double& t) {
  const std::uint64_t lost = lost_feedback_rounds(cfg.q_f, rng);
  t += cfg.timing.gap * static_cast<double>(1 + lost);
  return lost;
}

void log_nak(const McConfig& cfg, std::size_t value) {
  if (cfg.nak_log != nullptr)
    cfg.nak_log->push_back(static_cast<std::uint32_t>(value));
}

McResult finish(const RunningStats& tx_stats, const RunningStats& round_stats,
                const RunningStats& time_stats, std::uint64_t sent) {
  McResult res;
  res.mean_tx = tx_stats.mean();
  res.ci95 = tx_stats.ci95_halfwidth();
  res.mean_rounds = round_stats.mean();
  res.mean_time = time_stats.mean();
  res.packets_sent = sent;
  return res;
}

/// active = receivers of the shard missing at least one of `have`'s planes.
void fill_union_missing(const ReceiverShard& have, BitVec& active) {
  for (std::size_t w = 0; w < active.num_words(); ++w) {
    std::uint64_t all = ~std::uint64_t{0};
    for (std::size_t i = 0; i < have.num_planes(); ++i)
      all &= have.plane(i).word(w);
    active.data()[w] = ~all & active.live_mask(w);
  }
}

/// Applies one reception mask to slot-count planes: counts[j] holds the
/// receivers with >= j+1 receptions, so the update runs j descending —
/// counts[j] |= counts[j-1] & b reads the not-yet-updated j-1 plane.
void bump_counts(std::vector<BitVec>& counts, const BitVec& received) {
  const std::size_t k = counts.size();
  for (std::size_t w = 0; w < received.num_words(); ++w) {
    const std::uint64_t b = received.word(w);
    if (b == 0) continue;
    for (std::size_t j = k - 1; j > 0; --j)
      counts[j].data()[w] |= counts[j - 1].word(w) & b;
    counts[0].data()[w] |= b;
  }
}

/// Applies one reception mask to deficit planes: plane j holds the
/// receivers with deficit >= j+1, so a reception demotes plane j to the
/// old plane j+1 — in-place ascending, each step reads only the untouched
/// j+1 plane.
void drop_deficits(ReceiverShard& deficits, const BitVec& received) {
  const std::size_t k = deficits.num_planes();
  for (std::size_t w = 0; w < received.num_words(); ++w) {
    const std::uint64_t b = received.word(w);
    if (b == 0) continue;
    for (std::size_t j = 0; j < k; ++j) {
      std::uint64_t& dj = deficits.plane(j).data()[w];
      const std::uint64_t next =
          j + 1 < k ? deficits.plane(j + 1).word(w) : 0;
      dj = (dj & ~b) | (next & b);
    }
  }
}

/// Largest j with deficit plane j-1 non-empty: the shard's NAK value.
std::size_t max_deficit(const ReceiverShard& deficits) {
  for (std::size_t j = deficits.num_planes(); j > 0; --j)
    if (deficits.plane(j - 1).any()) return j;
  return 0;
}

McResult run_nofec(TxVec& txs, const std::vector<ShardRange>& ranges,
                   const McConfig& cfg, unsigned threads) {
  const std::size_t k = static_cast<std::size_t>(cfg.k);
  struct State {
    ReceiverShard have;
    BitVec active, received;
  };
  std::vector<State> st;
  st.reserve(ranges.size());
  for (const auto& rr : ranges)
    st.push_back(
        {ReceiverShard(rr.first, rr.count, k), BitVec(rr.count), BitVec(rr.count)});

  RunningStats tx_stats, round_stats, time_stats;
  std::uint64_t sent_total = 0;
  double t = 0.0;
  Rng fb_rng(cfg.seed ^ 0xfeedbaccULL);

  for (std::int64_t tg = 0; tg < cfg.num_tgs; ++tg) {
    const double tg_start = t;
    for (auto& s : st) s.have.fill(false);
    std::vector<std::size_t> pending(k);
    for (std::size_t i = 0; i < k; ++i) pending[i] = i;

    std::uint64_t sent = 0;
    std::uint64_t rounds = 0;
    while (!pending.empty()) {
      ++rounds;
      const double t0 = t;
      sim::detail::run_indexed(st.size(), threads, [&](std::uint64_t s) {
        State& sh = st[s];
        double tt = t0;
        for (const std::size_t i : pending) {
          BitVec& h = sh.have.plane(i);
          for (std::size_t w = 0; w < sh.active.num_words(); ++w)
            sh.active.data()[w] = ~h.word(w) & sh.active.live_mask(w);
          txs[s]->transmit(tt, sh.active, sh.received);
          h |= sh.received;
          tt += cfg.timing.delta;
        }
      });
      // Repeated addition, not one multiply: the exact engine accumulates
      // t (and cost) per packet, and bit-identical mean_time requires the
      // same rounding sequence.
      for (std::size_t i = 0; i < pending.size(); ++i) t += cfg.timing.delta;
      sent += pending.size();

      std::vector<std::size_t> next;
      for (const std::size_t i : pending) {
        std::size_t miss = 0;
        for (const auto& sh : st) miss += sh.have.missing(i);
        if (miss > 0) next.push_back(i);
      }
      pending = std::move(next);
      log_nak(cfg, pending.size());
      if (!pending.empty()) rounds += charge_feedback_gap(cfg, fb_rng, t);
    }
    sent_total += sent;
    tx_stats.add(static_cast<double>(sent) / static_cast<double>(k));
    round_stats.add(static_cast<double>(rounds));
    time_stats.add(t - tg_start);
    t += cfg.timing.gap;
  }
  return finish(tx_stats, round_stats, time_stats, sent_total);
}

McResult run_naks(TxVec& txs, const std::vector<ShardRange>& ranges,
                  const McConfig& cfg, unsigned threads) {
  const std::size_t k = static_cast<std::size_t>(cfg.k);
  const std::size_t a = static_cast<std::size_t>(cfg.h);
  struct State {
    ReceiverShard deficits;  // plane j: receivers with deficit >= j+1
    BitVec received;
    std::size_t nak = 0;
  };
  std::vector<State> st;
  st.reserve(ranges.size());
  for (const auto& rr : ranges)
    st.push_back({ReceiverShard(rr.first, rr.count, k), BitVec(rr.count), 0});

  RunningStats tx_stats, round_stats, time_stats;
  std::uint64_t sent_total = 0;
  double t = 0.0;
  Rng fb_rng(cfg.seed ^ 0xfeedbaccULL);

  for (std::int64_t tg = 0; tg < cfg.num_tgs; ++tg) {
    const double tg_start = t;
    for (auto& s : st) s.deficits.fill(true);  // everyone starts k short
    std::uint64_t sent = 0;
    std::uint64_t rounds = 0;
    std::size_t burst = k + a;
    while (true) {
      ++rounds;
      const double t0 = t;
      const std::size_t slots = burst;
      sim::detail::run_indexed(st.size(), threads, [&](std::uint64_t s) {
        State& sh = st[s];
        double tt = t0;
        for (std::size_t slot = 0; slot < slots; ++slot) {
          // Active receivers = deficit >= 1 = plane 0, re-read every slot.
          txs[s]->transmit(tt, sh.deficits.plane(0), sh.received);
          drop_deficits(sh.deficits, sh.received);
          tt += cfg.timing.delta;
        }
        sh.nak = max_deficit(sh.deficits);
      });
      for (std::size_t slot = 0; slot < slots; ++slot) t += cfg.timing.delta;
      sent += slots;

      std::size_t l = 0;
      for (const auto& sh : st) l = std::max(l, sh.nak);
      log_nak(cfg, l);
      if (l == 0) break;
      burst = l;
      rounds += charge_feedback_gap(cfg, fb_rng, t);
    }
    sent_total += sent;
    tx_stats.add(static_cast<double>(sent) / static_cast<double>(k));
    round_stats.add(static_cast<double>(rounds));
    time_stats.add(t - tg_start);
    t += cfg.timing.gap;
  }
  return finish(tx_stats, round_stats, time_stats, sent_total);
}

/// One shard's input to the counts-based NP engine: its IID segments and
/// its RNG substream (the same substream index the bitmap fast path
/// would hand its IidBatchTransmitter).
struct ShardSegments {
  std::vector<IidBatchTransmitter::Segment> segments;
  Rng rng;
};

/// Protocol NP on deficit-class counts — the IID fast path taken to its
/// limit.  Under segmented IID loss the receivers of a segment are
/// exchangeable, and the only per-receiver state NP keeps is the scalar
/// parity deficit, so the whole segment is described by how many
/// receivers sit at each deficit d in [1, k].  A round of `slots`
/// transmissions moves a receiver at deficit d to max(0, d - r) with
/// r ~ Binomial(slots, 1 - p) receptions, independently — i.e. each
/// class splits multinomially.  Advancing a round costs O(k * slots)
/// exact binomial draws (loss::sample_binomial), independent of R: this
/// is what makes NP at R = 10^6 almost free (bench/ext_scale_r).
/// Distribution-identical to run_naks over an IidBatchTransmitter and
/// to the exact engine (tests/test_shard_equivalence.cpp); round
/// structure, NAK logging, timing and feedback draws stay in lock-step
/// with run_naks.
McResult run_naks_counts(const std::vector<ShardSegments>& shards,
                         const McConfig& cfg, unsigned threads) {
  const std::size_t k = static_cast<std::size_t>(cfg.k);
  const std::size_t a = static_cast<std::size_t>(cfg.h);
  struct SegState {
    double p = 0.0;              // segment loss probability
    std::size_t receivers = 0;
    std::vector<std::uint64_t> cnt;  // cnt[d]: receivers at deficit d (1..k)
  };
  struct State {
    std::vector<SegState> segs;
    Rng rng;
    std::size_t nak = 0;
  };
  std::vector<State> st;
  st.reserve(shards.size());
  for (const auto& sh : shards) {
    State s{{}, sh.rng, 0};
    for (const auto& seg : sh.segments)
      s.segs.push_back({seg.p, seg.count,
                        std::vector<std::uint64_t>(k + 1, 0)});
    st.push_back(std::move(s));
  }

  // One round for one shard: split every occupied deficit class by its
  // exact reception-count pmf.  Receptions beyond d - 1 all land at
  // deficit 0, so each class needs at most min(slots, d) splits.
  const auto advance = [&](State& s, std::size_t slots) {
    std::size_t nak = 0;
    for (SegState& seg : s.segs) {
      const double q = 1.0 - seg.p;  // per-slot reception probability
      std::vector<std::uint64_t> next(k + 1, 0);
      for (std::size_t d = k; d >= 1; --d) {
        std::uint64_t rem = seg.cnt[d];
        if (rem == 0) continue;
        const std::size_t m = std::min(slots, d);
        double mass = 1.0;
        for (std::size_t r = 0; r < m && rem > 0; ++r) {
          const double pmf =
              binomial_pmf(static_cast<std::int64_t>(slots),
                           static_cast<std::int64_t>(r), q);
          const double pr =
              mass > 0.0 ? std::clamp(pmf / mass, 0.0, 1.0) : 0.0;
          const std::uint64_t n_r = loss::sample_binomial(s.rng, rem, pr);
          if (n_r > 0) next[d - r] += n_r;
          rem -= n_r;
          mass -= pmf;
        }
        // Leftover receivers got >= m receptions: still d - slots short
        // when the round was shorter than their deficit, done otherwise.
        if (rem > 0 && d > slots) next[d - slots] += rem;
      }
      seg.cnt = std::move(next);
      for (std::size_t d = k; d >= 1; --d)
        if (seg.cnt[d] > 0) {
          nak = std::max(nak, d);
          break;
        }
    }
    s.nak = nak;
  };

  RunningStats tx_stats, round_stats, time_stats;
  std::uint64_t sent_total = 0;
  double t = 0.0;
  Rng fb_rng(cfg.seed ^ 0xfeedbaccULL);

  for (std::int64_t tg = 0; tg < cfg.num_tgs; ++tg) {
    const double tg_start = t;
    for (auto& s : st)
      for (auto& seg : s.segs) {  // everyone starts k short
        std::fill(seg.cnt.begin(), seg.cnt.end(), std::uint64_t{0});
        seg.cnt[k] = seg.receivers;
      }
    std::uint64_t sent = 0;
    std::uint64_t rounds = 0;
    std::size_t burst = k + a;
    while (true) {
      ++rounds;
      const std::size_t slots = burst;
      sim::detail::run_indexed(st.size(), threads,
                               [&](std::uint64_t s) { advance(st[s], slots); });
      for (std::size_t slot = 0; slot < slots; ++slot) t += cfg.timing.delta;
      sent += slots;

      std::size_t l = 0;
      for (const auto& sh : st) l = std::max(l, sh.nak);
      log_nak(cfg, l);
      if (l == 0) break;
      burst = l;
      rounds += charge_feedback_gap(cfg, fb_rng, t);
    }
    sent_total += sent;
    tx_stats.add(static_cast<double>(sent) / static_cast<double>(k));
    round_stats.add(static_cast<double>(rounds));
    time_stats.add(t - tg_start);
    t += cfg.timing.gap;
  }
  return finish(tx_stats, round_stats, time_stats, sent_total);
}

McResult run_layered(TxVec& txs, const std::vector<ShardRange>& ranges,
                     const McConfig& cfg, unsigned threads) {
  const std::size_t k = static_cast<std::size_t>(cfg.k);
  const std::size_t n = k + static_cast<std::size_t>(cfg.h);
  struct State {
    ReceiverShard have;          // plane i: receivers holding original i
    std::vector<BitVec> counts;  // plane j: >= j+1 block slots this round
    std::vector<BitVec> direct;  // plane i: original i received directly
    BitVec active, received;
  };
  std::vector<State> st;
  st.reserve(ranges.size());
  for (const auto& rr : ranges) {
    State s{ReceiverShard(rr.first, rr.count, k), {}, {}, BitVec(rr.count),
            BitVec(rr.count)};
    s.counts.assign(k, BitVec(rr.count));
    s.direct.assign(k, BitVec(rr.count));
    st.push_back(std::move(s));
  }

  RunningStats tx_stats, round_stats, time_stats;
  std::uint64_t sent_total = 0;
  double t = 0.0;
  Rng fb_rng(cfg.seed ^ 0xfeedbaccULL);

  for (std::int64_t tg = 0; tg < cfg.num_tgs; ++tg) {
    const double tg_start = t;
    for (auto& s : st) s.have.fill(false);
    std::vector<char> pending(k, 1);
    std::size_t pending_count = k;

    double cost = 0.0;
    std::uint64_t rounds = 0;
    while (pending_count > 0) {
      ++rounds;
      cost += static_cast<double>(pending_count) * static_cast<double>(n) /
              static_cast<double>(k);
      const double t0 = t;
      sim::detail::run_indexed(st.size(), threads, [&](std::uint64_t s) {
        State& sh = st[s];
        // Receivers missing any original participate; fixed for the round.
        fill_union_missing(sh.have, sh.active);
        for (auto& c : sh.counts) c.fill(false);
        for (std::size_t i = 0; i < k; ++i)
          if (pending[i]) sh.direct[i].fill(false);

        double tt = t0;
        for (std::size_t slot = 0; slot < n; ++slot) {
          txs[s]->transmit(tt, sh.active, sh.received);
          tt += cfg.timing.delta;
          bump_counts(sh.counts, sh.received);
          if (slot < k && pending[slot]) {
            BitVec& d = sh.direct[slot];
            const BitVec& h = sh.have.plane(slot);
            for (std::size_t w = 0; w < d.num_words(); ++w)
              d.data()[w] |= sh.received.word(w) & ~h.word(w);
          }
        }
        // Harvest: decodable receivers (>= k slots) recover every pending
        // original; the rest keep their direct receptions.
        const BitVec& decodable = sh.counts[k - 1];
        for (std::size_t i = 0; i < k; ++i) {
          if (!pending[i]) continue;
          BitVec& h = sh.have.plane(i);
          for (std::size_t w = 0; w < h.num_words(); ++w)
            h.data()[w] |= decodable.word(w) | sh.direct[i].word(w);
        }
      });
      for (std::size_t slot = 0; slot < n; ++slot) t += cfg.timing.delta;
      sent_total += n;

      std::fill(pending.begin(), pending.end(), char{0});
      pending_count = 0;
      for (std::size_t i = 0; i < k; ++i) {
        std::size_t miss = 0;
        for (const auto& sh : st) miss += sh.have.missing(i);
        if (miss > 0) {
          pending[i] = 1;
          ++pending_count;
        }
      }
      log_nak(cfg, pending_count);
      if (pending_count > 0) rounds += charge_feedback_gap(cfg, fb_rng, t);
    }
    tx_stats.add(cost / static_cast<double>(k));
    round_stats.add(static_cast<double>(rounds));
    time_stats.add(t - tg_start);
    t += cfg.timing.gap;
  }
  return finish(tx_stats, round_stats, time_stats, sent_total);
}

McResult run_finite(TxVec& txs, const std::vector<ShardRange>& ranges,
                    const McConfig& cfg, unsigned threads) {
  const std::size_t k = static_cast<std::size_t>(cfg.k);
  const std::size_t h = static_cast<std::size_t>(cfg.h);
  struct State {
    ReceiverShard have;          // plane i: receivers holding original i
    std::vector<BitVec> counts;  // plane j: >= j+1 block packets this block
    std::vector<BitVec> slots;   // plane i: data slot i received this block
    BitVec missers;              // miss > 0, fixed for the block
    BitVec active, received;
    std::size_t nak = 0;
  };
  std::vector<State> st;
  st.reserve(ranges.size());
  for (const auto& rr : ranges) {
    State s{ReceiverShard(rr.first, rr.count, k), {},           {},
            BitVec(rr.count),                     BitVec(rr.count),
            BitVec(rr.count),                     0};
    s.counts.assign(k, BitVec(rr.count));
    s.slots.assign(k, BitVec(rr.count));
    st.push_back(std::move(s));
  }

  // One parity/data burst of `slots` packets starting at t0; data bursts
  // also record per-slot reception planes.  Active receivers are the
  // block's missers that cannot yet decode, re-read every slot, exactly
  // like the exact engine's wants_block.
  const auto run_burst = [&](State& sh, BatchTransmitter& tx, double t0,
                             std::size_t slots, bool record_slots) {
    double tt = t0;
    for (std::size_t slot = 0; slot < slots; ++slot) {
      const BitVec& full = sh.counts[k - 1];
      for (std::size_t w = 0; w < sh.active.num_words(); ++w)
        sh.active.data()[w] = sh.missers.word(w) & ~full.word(w);
      tx.transmit(tt, sh.active, sh.received);
      tt += cfg.timing.delta;
      bump_counts(sh.counts, sh.received);
      if (record_slots) {
        BitVec& rec = sh.slots[slot];
        for (std::size_t w = 0; w < rec.num_words(); ++w)
          rec.data()[w] = sh.received.word(w);
      }
    }
    // Shard NAK: k minus the smallest packet count among the missers.
    sh.nak = 0;
    for (std::size_t c = 0; c < k; ++c) {
      bool hit = false;
      const BitVec& plane = sh.counts[c];
      for (std::size_t w = 0; w < plane.num_words(); ++w) {
        if (sh.missers.word(w) & ~plane.word(w)) {
          hit = true;
          break;
        }
      }
      if (hit) {
        sh.nak = k - c;
        break;
      }
    }
  };

  RunningStats tx_stats, round_stats, time_stats;
  std::uint64_t sent_total = 0;
  double t = 0.0;
  Rng fb_rng(cfg.seed ^ 0xfeedbaccULL);

  for (std::int64_t tg = 0; tg < cfg.num_tgs; ++tg) {
    const double tg_start = t;
    for (auto& s : st) s.have.fill(false);
    std::vector<char> pending(k, 1);
    std::size_t pending_count = k;

    double cost = 0.0;
    std::uint64_t rounds = 0;
    while (pending_count > 0) {
      // ---- one FEC block: k data slots + up to h on-demand parities ----
      const double share =
          static_cast<double>(pending_count) / static_cast<double>(k);
      ++rounds;
      const double t0 = t;
      sim::detail::run_indexed(st.size(), threads, [&](std::uint64_t s) {
        State& sh = st[s];
        fill_union_missing(sh.have, sh.missers);
        for (auto& c : sh.counts) c.fill(false);
        run_burst(sh, *txs[s], t0, k, /*record_slots=*/true);
      });
      // Per-packet accumulation mirrors the exact engine's rounding.
      for (std::size_t slot = 0; slot < k; ++slot) {
        t += cfg.timing.delta;
        cost += share;
      }
      sent_total += k;

      std::size_t parities_used = 0;
      while (true) {
        std::size_t l = 0;
        for (const auto& sh : st) l = std::max(l, sh.nak);
        log_nak(cfg, l);
        if (l == 0) break;
        l = std::min(l, h - parities_used);
        if (l == 0) break;  // budget exhausted
        rounds += charge_feedback_gap(cfg, fb_rng, t);
        ++rounds;
        const double tp = t;
        const std::size_t slots = l;
        sim::detail::run_indexed(st.size(), threads, [&](std::uint64_t s) {
          run_burst(st[s], *txs[s], tp, slots, /*record_slots=*/false);
        });
        for (std::size_t slot = 0; slot < slots; ++slot) {
          t += cfg.timing.delta;
          cost += share;
        }
        sent_total += slots;
        parities_used += slots;
      }

      // Harvest: decodable receivers recover every pending original; the
      // rest keep the data slots they caught directly.
      sim::detail::run_indexed(st.size(), threads, [&](std::uint64_t s) {
        State& sh = st[s];
        const BitVec& decodable = sh.counts[k - 1];
        for (std::size_t i = 0; i < k; ++i) {
          if (!pending[i]) continue;
          BitVec& hv = sh.have.plane(i);
          for (std::size_t w = 0; w < hv.num_words(); ++w)
            hv.data()[w] |= decodable.word(w) | sh.slots[i].word(w);
        }
      });

      std::fill(pending.begin(), pending.end(), char{0});
      pending_count = 0;
      for (std::size_t i = 0; i < k; ++i) {
        std::size_t miss = 0;
        for (const auto& sh : st) miss += sh.have.missing(i);
        if (miss > 0) {
          pending[i] = 1;
          ++pending_count;
        }
      }
      if (pending_count > 0) rounds += charge_feedback_gap(cfg, fb_rng, t);
    }
    tx_stats.add(cost / static_cast<double>(k));
    round_stats.add(static_cast<double>(rounds));
    time_stats.add(t - tg_start);
    t += cfg.timing.gap;
  }
  return finish(tx_stats, round_stats, time_stats, sent_total);
}

McResult run_stream(TxVec& txs, const std::vector<ShardRange>& ranges,
                    const McConfig& cfg, unsigned threads) {
  const std::size_t k = static_cast<std::size_t>(cfg.k);
  struct State {
    ReceiverShard deficits;
    BitVec received;
    bool busy = true;
  };
  std::vector<State> st;
  st.reserve(ranges.size());
  for (const auto& rr : ranges)
    st.push_back({ReceiverShard(rr.first, rr.count, k), BitVec(rr.count), true});

  RunningStats tx_stats, round_stats, time_stats;
  std::uint64_t sent_total = 0;
  double t = 0.0;

  for (std::int64_t tg = 0; tg < cfg.num_tgs; ++tg) {
    const double tg_start = t;
    for (auto& s : st) {
      s.deficits.fill(true);
      s.busy = true;
    }
    std::uint64_t sent = 0;
    bool unfinished = true;
    while (unfinished) {
      const double t0 = t;
      sim::detail::run_indexed(st.size(), threads, [&](std::uint64_t s) {
        State& sh = st[s];
        if (!sh.busy) return;  // all of this shard already left the group
        txs[s]->transmit(t0, sh.deficits.plane(0), sh.received);
        drop_deficits(sh.deficits, sh.received);
        sh.busy = sh.deficits.plane(0).any();
      });
      t += cfg.timing.delta;
      ++sent;
      unfinished = false;
      for (const auto& sh : st) unfinished = unfinished || sh.busy;
    }
    sent_total += sent;
    tx_stats.add(static_cast<double>(sent) / static_cast<double>(k));
    round_stats.add(1.0);
    time_stats.add(t - tg_start);
    t += cfg.timing.gap;
  }
  return finish(tx_stats, round_stats, time_stats, sent_total);
}

}  // namespace

McResult sim_batched(BatchScheme scheme, const loss::LossModel& model,
                     std::size_t receivers, const McConfig& cfg, Rng rng,
                     const BatchOptions& opts) {
  validate(cfg);
  if (receivers == 0)
    throw std::invalid_argument("sim_batched: need receivers >= 1");
  const auto ranges = partition(receivers, opts.shards);
  const unsigned threads = sim::resolve_threads(opts.threads);

  // Protocol NP under IID loss never needs per-receiver identity at all:
  // route it to the deficit-class-counts engine, whose cost per round is
  // independent of R (see run_naks_counts).
  if (scheme == BatchScheme::kIntegratedNaks && opts.allow_fast_path) {
    std::vector<ShardSegments> shards;
    shards.reserve(ranges.size());
    for (std::size_t s = 0; s < ranges.size(); ++s) {
      auto segs = iid_segments(model, ranges[s].first, ranges[s].count);
      if (segs.empty()) break;  // no IID fast path: fall through below
      shards.push_back({std::move(segs), rng.split(receivers + s)});
    }
    if (shards.size() == ranges.size())
      return run_naks_counts(shards, cfg, threads);
  }

  TxVec txs;
  txs.reserve(ranges.size());
  for (std::size_t s = 0; s < ranges.size(); ++s)
    txs.push_back(make_batch_transmitter(model, ranges[s].first,
                                         ranges[s].count, rng,
                                         rng.split(receivers + s),
                                         opts.allow_fast_path));

  switch (scheme) {
    case BatchScheme::kNoFec:
      return run_nofec(txs, ranges, cfg, threads);
    case BatchScheme::kLayered:
      return run_layered(txs, ranges, cfg, threads);
    case BatchScheme::kIntegratedNaks:
      return run_naks(txs, ranges, cfg, threads);
    case BatchScheme::kIntegratedFinite:
      return run_finite(txs, ranges, cfg, threads);
    case BatchScheme::kIntegratedStream:
      return run_stream(txs, ranges, cfg, threads);
  }
  throw std::invalid_argument("sim_batched: unknown scheme");
}

}  // namespace pbl::protocol
