// Batched, sharded round-based simulators: the million-receiver engine.
//
// These reimplement the exact per-receiver simulators of rounds.hpp on
// packed-bitmap receiver state (sim::ReceiverShard) with batched loss
// sampling (loss::BinomialDist): one exact binomial loss count per
// constant-p segment per transmission, placed as a uniform random
// subset of the segment's lanes.  One transmission costs O(R/64) word
// operations plus O(1 + R p) PRNG draws instead of O(R) per-receiver
// object queries.  Full-protocol points at R = 10^5..10^6 — the paper's
// headline scaling axis — become simulable (bench/ext_scale_r).
//
// Semantics contract (enforced by tests/test_shard_equivalence.cpp):
//   * Per-receiver fallback path (Gilbert or any model without a batch
//     fast path, or allow_fast_path = false): byte-identical results to
//     the exact engine for the same model, seed and McConfig — the same
//     per-receiver RNG substreams are consumed at the same times, only
//     the bookkeeping is bitmap-based.
//   * IID fast path (Bernoulli / two-class / multi-class): per-round NAK
//     counts and per-TG statistics are distribution-identical to the
//     exact engine (loss counts are exact binomial draws with uniform
//     placement, which is the i.i.d. measure).  Protocol NP goes one
//     step further: receivers of an IID segment are exchangeable and NP
//     keeps only a scalar deficit per receiver, so the engine tracks
//     deficit-class COUNTS and advances each round with O(k * slots)
//     exact binomial splits — cost independent of R entirely.
//
// Determinism: results depend on (model, receivers, cfg, rng, shards)
// but never on `threads` — every shard owns an Rng substream derived
// from (rng, shard index), shard work is fanned out over the process
// ThreadPool, and merges fold in shard-index order.
#pragma once

#include <memory>

#include "loss/batch_sampler.hpp"
#include "loss/loss_model.hpp"
#include "protocol/rounds.hpp"
#include "sim/receiver_shard.hpp"

namespace pbl::protocol {

/// Batched counterpart of PacketTransmitter: delivers one packet to every
/// receiver of one shard at once.  `transmit` overwrites `received` with
/// the subset of `active` that got the packet (all words are assigned).
class BatchTransmitter {
 public:
  virtual ~BatchTransmitter() = default;
  virtual std::size_t receivers() const = 0;
  virtual void transmit(double t, const sim::BitVec& active,
                        sim::BitVec& received) = 0;
};

/// IID fast path: loss is spatially and temporally independent with a
/// per-receiver probability that is piecewise-constant over index ranges
/// (Bernoulli: one segment; two-class/multi-class: one per class).
///
/// Per transmission each segment draws its loss COUNT exactly once
/// (L ~ Binomial(lanes, p), exact — loss::BinomialDist) and scatters L
/// distinct lost lanes uniformly, which is precisely the i.i.d.
/// Bernoulli measure by the conditional-uniformity decomposition.  Cost
/// per segment: 1 + ~L PRNG draws, independent of the active pattern.
class IidBatchTransmitter final : public BatchTransmitter {
 public:
  struct Segment {
    std::size_t count = 0;  ///< receivers in this segment (shard-local)
    double p = 0.0;         ///< their loss probability
  };
  IidBatchTransmitter(const std::vector<Segment>& segments, Rng rng);

  std::size_t receivers() const override { return receivers_; }
  void transmit(double t, const sim::BitVec& active,
                sim::BitVec& received) override;

 private:
  struct Span {
    std::size_t begin_word, end_word;  // words touched by this segment
    std::uint64_t first_mask, last_mask;
    std::size_t begin_lane, lanes;     // lane interval of this segment
    loss::BinomialDist count;          // Binomial(lanes, p)
  };
  void place_lanes(const Span& sp, std::size_t target);

  std::vector<Span> spans_;
  std::vector<std::uint64_t> scratch_;  // loss pattern under construction
  std::size_t receivers_ = 0;
  Rng rng_;
};

/// Per-receiver fallback: one loss::LossProcess per receiver, queried
/// exactly like the exact engine's IidTransmitter (receiver r's process
/// is model.make_process(base.split(first + r), first + r)), so results
/// are bit-identical to it for any shard split.
class ProcessBatchTransmitter final : public BatchTransmitter {
 public:
  ProcessBatchTransmitter(const loss::LossModel& model,
                          std::size_t first_receiver, std::size_t receivers,
                          Rng base);
  std::size_t receivers() const override { return processes_.size(); }
  void transmit(double t, const sim::BitVec& active,
                sim::BitVec& received) override;

 private:
  std::vector<std::unique_ptr<loss::LossProcess>> processes_;
};

/// Builds the shard transmitter for receivers [first, first + count):
/// the segmented IID fast path when the model allows it (and
/// allow_fast_path), the per-receiver fallback otherwise.  `base` is the
/// whole-population RNG (fallback splits it per global receiver index;
/// the fast path splits it per shard at index receivers_total + shard).
std::unique_ptr<BatchTransmitter> make_batch_transmitter(
    const loss::LossModel& model, std::size_t first_receiver,
    std::size_t count, Rng base, Rng fast_rng, bool allow_fast_path);

/// Which exact simulator sim_batched mirrors.
enum class BatchScheme {
  kNoFec,             ///< sim_nofec
  kLayered,           ///< sim_layered
  kIntegratedNaks,    ///< sim_integrated_naks (protocol NP, n = infinity)
  kIntegratedFinite,  ///< sim_integrated_finite
  kIntegratedStream,  ///< sim_integrated_stream (integrated FEC 1)
};

struct BatchOptions {
  /// Receiver shards: fixed shard count => reproducible results.  Values
  /// above the receiver count are clamped.
  std::size_t shards = 1;
  /// Worker threads for the per-round shard fan-out (0 = hardware,
  /// 1 = inline).  Never affects results, only wall-clock.
  unsigned threads = 1;
  /// false forces the per-receiver fallback even for IID models — the
  /// bit-identical cross-check against the exact engine.
  bool allow_fast_path = true;
};

/// Runs the batched, sharded Monte-Carlo simulation of `scheme` for
/// `receivers` receivers losing per `model`.  `rng` seeds the loss
/// randomness exactly as the Rng passed to IidTransmitter does for the
/// exact engine; cfg.seed still seeds the feedback-loss stream.
McResult sim_batched(BatchScheme scheme, const loss::LossModel& model,
                     std::size_t receivers, const McConfig& cfg, Rng rng,
                     const BatchOptions& opts = {});

}  // namespace pbl::protocol
