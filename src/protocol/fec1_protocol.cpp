#include "protocol/fec1_protocol.hpp"

#include <optional>
#include <stdexcept>
#include <vector>

#include "fec/fec_block.hpp"
#include "fec/rse_code.hpp"
#include "sim/simulator.hpp"

namespace pbl::protocol {

struct Fec1Session::Impl {
  Impl(const loss::LossModel& loss, std::size_t receivers, std::size_t num_tgs,
       const Fec1Config& config, std::uint64_t seed)
      : cfg(config), num_tgs(num_tgs), sim(seed),
        code(config.k, config.k + config.h) {
    if (receivers == 0) throw std::invalid_argument("Fec1Session: receivers >= 1");
    if (num_tgs == 0) throw std::invalid_argument("Fec1Session: num_tgs >= 1");
    if (config.k + config.h > 255)
      throw std::invalid_argument("Fec1Session: k + h must be <= 255");
    if (config.leave_latency < 0.0)
      throw std::invalid_argument("Fec1Session: leave_latency >= 0");

    Rng data_rng(seed ^ 0x5eed5eedULL);
    source.resize(num_tgs);
    encoders.reserve(num_tgs);
    for (std::size_t i = 0; i < num_tgs; ++i) {
      source[i].resize(cfg.k);
      for (auto& pkt : source[i]) {
        pkt.resize(cfg.packet_len);
        for (auto& b : pkt) b = static_cast<std::uint8_t>(data_rng());
      }
      encoders.emplace_back(static_cast<std::uint32_t>(i), code, source[i]);
    }

    rx.resize(receivers);
    for (std::size_t r = 0; r < receivers; ++r) {
      rx[r].process = loss.make_process(Rng(seed).split(0x3000 + r), r);
      rx[r].done.assign(num_tgs, false);
    }
  }

  struct Receiver {
    std::unique_ptr<loss::LossProcess> process;
    std::optional<fec::TgDecoder> decoder;  // for the current TG
    bool member = false;                    // receiving the current stream
    std::vector<bool> done;
    std::size_t done_count = 0;
  };

  void start_tg(std::size_t tg) {
    current_tg = tg;
    next_index = 0;
    members = rx.size();
    for (auto& r : rx) {
      r.member = true;
      r.decoder.emplace(static_cast<std::uint32_t>(tg), code, cfg.packet_len);
    }
    sim.schedule_in(0.0, [this] { send_next(); });
  }

  void send_next() {
    if (members == 0) {
      advance_tg();
      return;
    }
    if (next_index >= cfg.k + cfg.h) {
      // Parity budget exhausted.  Remaining members that already decoded
      // are merely slow to leave; only undecoded ones mean failure.
      bool any_needy = false;
      for (const auto& r : rx)
        if (r.member && !r.done[current_tg]) any_needy = true;
      if (any_needy) ++stats.tgs_failed;
      advance_tg();
      return;
    }
    fec::Packet packet = next_index < cfg.k
                             ? encoders[current_tg].data_packet(next_index)
                             : encoders[current_tg].parity_packet(next_index - cfg.k);
    if (next_index < cfg.k)
      ++stats.data_sent;
    else
      ++stats.parity_sent;
    ++next_index;

    const double t = sim.now();
    for (std::size_t r = 0; r < rx.size(); ++r) {
      if (!rx[r].member) continue;  // routing already pruned this receiver
      if (rx[r].process->lost(t)) continue;
      sim.schedule_in(cfg.delay, [this, r, packet] { deliver(r, packet); });
    }
    sim.schedule_in(cfg.delta, [this] { send_next(); });
  }

  void deliver(std::size_t r, const fec::Packet& packet) {
    auto& rec = rx[r];
    // The leave is processed by the receiver's last-hop router: once it
    // has taken effect, packets are pruned there and never reach the
    // receiver (checked at delivery time, not send time).
    if (!rec.member) return;
    if (!rec.decoder || rec.decoder->tg_id() != packet.header.tg) return;
    if (rec.done[packet.header.tg]) {
      // Landed inside the leave window [decode, decode + leave_latency]:
      // an unnecessary reception in the paper's sense.
      ++stats.duplicate_receptions;
      return;
    }
    rec.decoder->add(packet);
    if (!rec.decoder->decodable()) return;

    const auto& rebuilt = rec.decoder->reconstruct();
    stats.packets_decoded += rec.decoder->decoded_packets();
    if (rebuilt != source[packet.header.tg]) corrupted = true;
    rec.done[packet.header.tg] = true;
    if (++rec.done_count == num_tgs)
      stats.completion_time = std::max(stats.completion_time, sim.now());
    // Leave the group; routing stops deliveries after leave_latency.  The
    // event is tagged with the TG it belongs to so that a slow leave does
    // not evict the receiver from the NEXT group's stream.
    const std::size_t leave_tg = packet.header.tg;
    sim.schedule_in(cfg.leave_latency, [this, r, leave_tg] {
      if (leave_tg == current_tg && rx[r].member) {
        rx[r].member = false;
        --members;
      }
    });
  }

  void advance_tg() {
    if (current_tg + 1 < num_tgs) {
      start_tg(current_tg + 1);
    }
  }

  Fec1Stats run() {
    start_tg(0);
    sim.run();
    bool all = !corrupted;
    for (const auto& r : rx)
      if (r.done_count != num_tgs) all = false;
    stats.all_delivered = all;
    stats.tx_per_packet =
        static_cast<double>(stats.data_sent + stats.parity_sent) /
        (static_cast<double>(cfg.k) * static_cast<double>(num_tgs));
    return stats;
  }

  Fec1Config cfg;
  std::size_t num_tgs;
  sim::Simulator sim;
  fec::RseCode code;

  std::vector<std::vector<std::vector<std::uint8_t>>> source;
  std::vector<fec::TgEncoder> encoders;
  std::vector<Receiver> rx;

  std::size_t current_tg = 0;
  std::size_t next_index = 0;
  std::size_t members = 0;
  bool corrupted = false;
  Fec1Stats stats;
};

Fec1Session::Fec1Session(const loss::LossModel& loss, std::size_t receivers,
                         std::size_t num_tgs, const Fec1Config& config,
                         std::uint64_t seed)
    : impl_(std::make_unique<Impl>(loss, receivers, num_tgs, config, seed)) {}

Fec1Session::~Fec1Session() = default;

Fec1Stats Fec1Session::run() { return impl_->run(); }

}  // namespace pbl::protocol
