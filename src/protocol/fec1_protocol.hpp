// Integrated FEC 1 (paper Section 4.2) on the discrete-event simulator:
// the sender transmits the k data packets followed by a continuous parity
// stream, all at rate 1/delta, with NO feedback for loss recovery.  A
// receiver leaves the multicast group the moment it can reconstruct the
// TG; the sender stops the stream when the group is empty (modelling a
// multicast-routing leave that takes `leave_latency` to take effect).
//
// The paper claims "no unnecessary delivery and reception of parity
// packets, provided that the time needed to depart from the group is
// smaller than the packet inter-arrival time" — this implementation makes
// that claim testable: duplicate receptions are exactly the packets that
// land during a receiver's leave window (after it the last-hop router has
// pruned the receiver and packets never reach it).
//
// The sender observes group membership through the (idealised) routing
// state: it stops streaming once everyone has left.  Packets already in
// the pipeline when the last receiver decodes still count as
// transmissions, so the E[M] = (k + L)/k bound of Eq. (6) is attained
// exactly only when `delay` (+ leave_latency) is below the packet spacing
// `delta` — the same proviso the paper attaches to the scheme.
#pragma once

#include <cstdint>
#include <memory>

#include "loss/loss_model.hpp"

namespace pbl::protocol {

struct Fec1Config {
  std::size_t k = 20;           ///< data packets per TG
  std::size_t h = 200;          ///< parity budget (k + h <= 255)
  std::size_t packet_len = 256;
  double delta = 0.001;         ///< packet spacing [s]
  double delay = 0.010;         ///< one-way propagation delay [s]
  double leave_latency = 0.0;   ///< time for a group leave to take effect [s]
};

struct Fec1Stats {
  std::uint64_t data_sent = 0;
  std::uint64_t parity_sent = 0;
  std::uint64_t duplicate_receptions = 0;  ///< packets landing after decode
  std::uint64_t packets_decoded = 0;
  std::uint64_t tgs_failed = 0;            ///< parity budget exhausted
  double completion_time = 0.0;
  bool all_delivered = false;
  double tx_per_packet = 0.0;
};

/// One sender, `receivers` receivers, `num_tgs` groups of random data,
/// transmitted sequentially (one group's stream ends before the next
/// starts — FEC 1 has no feedback to interleave around).
class Fec1Session {
 public:
  Fec1Session(const loss::LossModel& loss, std::size_t receivers,
              std::size_t num_tgs, const Fec1Config& config,
              std::uint64_t seed = 1);
  ~Fec1Session();

  Fec1Session(const Fec1Session&) = delete;
  Fec1Session& operator=(const Fec1Session&) = delete;

  Fec1Stats run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace pbl::protocol
