#include "protocol/layered_protocol.hpp"

#include <algorithm>
#include <deque>
#include <optional>
#include <stdexcept>

#include "fec/fec_block.hpp"
#include "fec/rse_code.hpp"
#include "net/channel.hpp"
#include "protocol/nak_suppression.hpp"
#include "sim/simulator.hpp"

namespace pbl::protocol {

using fec::Packet;
using fec::PacketType;

namespace {

constexpr std::uint64_t kPadSeq = ~std::uint64_t{0};

void put_seq(std::vector<std::uint8_t>& frame, std::uint64_t seq) {
  for (int i = 0; i < 8; ++i)
    frame.push_back(static_cast<std::uint8_t>(seq >> (8 * i)));
}

std::uint64_t read_seq(const std::vector<std::uint8_t>& frame) {
  std::uint64_t seq = 0;
  for (int i = 0; i < 8; ++i)
    seq |= static_cast<std::uint64_t>(frame[static_cast<std::size_t>(i)])
           << (8 * i);
  return seq;
}

std::vector<std::uint8_t> bitmap_of(const std::vector<bool>& missing) {
  std::vector<std::uint8_t> bytes((missing.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < missing.size(); ++i)
    if (missing[i]) bytes[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  return bytes;
}

bool bit_at(const std::vector<std::uint8_t>& bytes, std::size_t i) {
  return i / 8 < bytes.size() && (bytes[i / 8] >> (i % 8)) & 1u;
}

}  // namespace

struct LayeredSession::Impl {
  Impl(const loss::LossModel& loss, std::size_t receivers,
       std::size_t num_packets, const LayeredConfig& config,
       std::uint64_t seed)
      : cfg(config), num_packets(num_packets), sim(seed),
        code(config.k, config.k + config.h),
        channel(sim, loss, receivers, config.delay, config.lossless_control) {
    if (receivers == 0)
      throw std::invalid_argument("LayeredSession: receivers >= 1");
    if (num_packets == 0)
      throw std::invalid_argument("LayeredSession: num_packets >= 1");
    if (config.k + config.h > 255)
      throw std::invalid_argument("LayeredSession: k + h must be <= 255");

    Rng data_rng(seed ^ 0x1a7e6edULL);
    originals.resize(num_packets);
    for (auto& pkt : originals) {
      pkt.resize(cfg.packet_len);
      for (auto& b : pkt) b = static_cast<std::uint8_t>(data_rng());
    }

    queued_flag.assign(num_packets, true);
    for (std::uint64_t s = 0; s < num_packets; ++s) queue.push_back(s);

    rx.resize(receivers);
    for (std::size_t r = 0; r < receivers; ++r) {
      rx[r].delivered.assign(num_packets, false);
      rx[r].rng = Rng(seed).split(0x4000 + r);
    }

    if (cfg.impairment.enabled()) channel.set_impairment(cfg.impairment);

    channel.set_receiver_handler(
        [this](std::size_t r, const Packet& p) { on_receiver_packet(r, p); });
    channel.set_sender_handler(
        [this](std::size_t r, const Packet& p) { on_sender_feedback(r, p); });
  }

  // ---- sender ------------------------------------------------------------

  struct BlockState {
    std::vector<std::uint64_t> seqs;        // slot -> original seq (or kPadSeq)
    std::vector<std::uint8_t> nak_union;    // union of this round's bitmaps
    bool closed = false;
  };

  /// Sends the next block if enough packets are queued — or a padded
  /// final block once nothing more can arrive.
  void try_form_block() {
    if (sending) return;
    if (queue.empty()) return;
    if (queue.size() < cfg.k && outstanding_blocks > 0) return;  // wait

    BlockState block;
    block.seqs.reserve(cfg.k);
    std::vector<std::vector<std::uint8_t>> framed;
    framed.reserve(cfg.k);
    Rng pad_rng(blocks.size() ^ 0x9a9ULL);
    for (std::size_t i = 0; i < cfg.k; ++i) {
      std::uint64_t seq = kPadSeq;
      if (!queue.empty()) {
        seq = queue.front();
        queue.pop_front();
        queued_flag[seq] = false;
      }
      block.seqs.push_back(seq);
      std::vector<std::uint8_t> frame;
      frame.reserve(8 + cfg.packet_len);
      put_seq(frame, seq);
      if (seq != kPadSeq) {
        frame.insert(frame.end(), originals[seq].begin(), originals[seq].end());
      } else {
        frame.resize(8 + cfg.packet_len, 0);
        ++stats.padding_sent;  // counted at formation; sent exactly once
      }
      framed.push_back(std::move(frame));
    }
    const auto block_id = static_cast<std::uint32_t>(blocks.size());
    blocks.push_back(std::move(block));
    encoders.emplace_back(block_id, code, std::move(framed));
    ++outstanding_blocks;
    ++stats.blocks_sent;
    sending = true;
    send_slot(block_id, 0);
  }

  void send_slot(std::uint32_t block_id, std::size_t slot) {
    const std::size_t n = cfg.k + cfg.h;
    if (slot < n) {
      Packet p = slot < cfg.k ? encoders[block_id].data_packet(slot)
                              : encoders[block_id].parity_packet(slot - cfg.k);
      if (slot < cfg.k) {
        if (blocks[block_id].seqs[slot] != kPadSeq) ++stats.data_sent;
      } else {
        ++stats.parity_sent;
      }
      channel.multicast_down(p);
      sim.schedule_in(cfg.delta, [this, block_id, slot] {
        send_slot(block_id, slot + 1);
      });
      return;
    }
    // Block done: poll (manifest rides in the control payload).
    Packet poll;
    poll.header.type = PacketType::kPoll;
    poll.header.tg = block_id;
    poll.header.k = static_cast<std::uint16_t>(cfg.k);
    poll.header.n = static_cast<std::uint16_t>(n);
    poll.header.count = static_cast<std::uint16_t>(n);
    for (const std::uint64_t seq : blocks[block_id].seqs)
      put_seq(poll.payload, seq);
    poll.header.payload_len = static_cast<std::uint32_t>(poll.payload.size());
    channel.multicast_control_down(poll);

    const double window = 2.0 * cfg.delay +
                          (static_cast<double>(n) + 1.0) * cfg.slot;
    sim.schedule_in(window, [this, block_id] { close_block(block_id); });

    sending = false;
    sim.schedule_in(cfg.delta, [this] { try_form_block(); });
  }

  void close_block(std::uint32_t block_id) {
    auto& block = blocks[block_id];
    block.closed = true;
    --outstanding_blocks;
    // Re-enqueue every original the round's NAKs named.
    for (std::size_t i = 0; i < cfg.k; ++i) {
      if (!bit_at(block.nak_union, i)) continue;
      const std::uint64_t seq = block.seqs[i];
      if (seq == kPadSeq || queued_flag[seq]) continue;
      queued_flag[seq] = true;
      queue.push_back(seq);
    }
    try_form_block();
  }

  void on_sender_feedback(std::size_t /*from*/, const Packet& p) {
    if (p.header.type != PacketType::kNak) return;
    if (p.header.tg >= blocks.size()) return;  // corrupt/foreign feedback
    auto& block = blocks[p.header.tg];
    if (block.closed) return;  // stale
    if (block.nak_union.size() < p.payload.size())
      block.nak_union.resize(p.payload.size(), 0);
    for (std::size_t i = 0; i < p.payload.size(); ++i)
      block.nak_union[i] |= p.payload[i];
  }

  // ---- receivers ----------------------------------------------------------

  struct Receiver {
    std::vector<std::optional<fec::TgDecoder>> decoders;  // per block
    std::vector<bool> delivered;
    std::size_t delivered_count = 0;
    std::vector<std::unique_ptr<NakTimer>> timers;        // per block
    std::vector<std::vector<std::uint8_t>> pending_bitmap;  // per block
    Rng rng;
  };

  fec::TgDecoder& decoder(std::size_t r, std::uint32_t block_id) {
    auto& rec = rx[r];
    if (rec.decoders.size() <= block_id) rec.decoders.resize(block_id + 1);
    if (!rec.decoders[block_id])
      rec.decoders[block_id].emplace(block_id, code, 8 + cfg.packet_len);
    return *rec.decoders[block_id];
  }

  void deliver(std::size_t r, const std::vector<std::uint8_t>& frame) {
    const std::uint64_t seq = read_seq(frame);
    if (seq == kPadSeq) return;
    auto& rec = rx[r];
    if (rec.delivered[seq]) {
      ++stats.duplicate_deliveries;
      return;
    }
    // Byte-exact verification of the delivered content.
    if (!std::equal(frame.begin() + 8, frame.end(), originals[seq].begin(),
                    originals[seq].end()))
      corrupted = true;
    rec.delivered[seq] = true;
    if (++rec.delivered_count == num_packets)
      stats.completion_time = std::max(stats.completion_time, sim.now());
  }

  void on_receiver_packet(std::size_t r, const Packet& p) {
    // Block ids grow with blocks.size() and all per-block arrays are
    // indexed by them, so an adversarial channel must not be able to
    // reach this switch with an id we never issued (decoder() would
    // otherwise allocate a multi-gigabyte vector for a corrupt tg).
    if (p.header.tg >= blocks.size()) return;
    switch (p.header.type) {
      case PacketType::kData:
      case PacketType::kParity: {
        // Wrong block shape or frame size: not a shard of this session.
        if (p.header.index >= cfg.k + cfg.h ||
            p.payload.size() != 8 + cfg.packet_len)
          return;
        auto& dec = decoder(r, p.header.tg);
        const bool was_decodable = dec.decodable();
        if (!dec.add(p)) return;
        if (p.header.type == PacketType::kData) deliver(r, p.payload);
        if (!was_decodable && dec.decodable()) {
          const auto& rebuilt = dec.reconstruct();
          stats.packets_decoded += dec.decoded_packets();
          for (const auto& frame : rebuilt) deliver(r, frame);
        }
        break;
      }
      case PacketType::kPoll:
        on_poll(r, p);
        break;
      case PacketType::kNak: {
        // Damping: cancel our pending NAK iff the overheard bitmap covers
        // everything we miss from this block.
        auto& rec = rx[r];
        const std::uint32_t b = p.header.tg;
        if (rec.timers.size() <= b || !rec.timers[b] ||
            !rec.timers[b]->pending())
          return;
        bool covered = true;
        const auto& mine = rec.pending_bitmap[b];
        for (std::size_t i = 0; i < cfg.k && covered; ++i)
          if (bit_at(mine, i) && !bit_at(p.payload, i)) covered = false;
        if (covered) {
          rec.timers[b]->disarm();
          ++stats.naks_suppressed;
        }
        break;
      }
    }
  }

  void on_poll(std::size_t r, const Packet& poll) {
    if (poll.payload.size() < cfg.k * 8) return;  // manifest incomplete
    auto& rec = rx[r];
    const std::uint32_t b = poll.header.tg;
    // Missing = data slots whose CONTENT (by the manifest) we lack.
    std::vector<bool> missing(cfg.k, false);
    std::size_t count = 0;
    auto& dec = decoder(r, b);
    const bool decoded = dec.decodable();
    for (std::size_t i = 0; i < cfg.k; ++i) {
      std::uint64_t seq = 0;
      for (int byte = 0; byte < 8; ++byte)
        seq |= static_cast<std::uint64_t>(
                   poll.payload[i * 8 + static_cast<std::size_t>(byte)])
               << (8 * byte);
      if (seq == kPadSeq) continue;
      if (decoded || rec.delivered[seq]) continue;
      missing[i] = true;
      ++count;
    }
    if (count == 0) return;

    if (rec.timers.size() <= b) {
      rec.timers.resize(b + 1);
      rec.pending_bitmap.resize(b + 1);
    }
    rec.pending_bitmap[b] = bitmap_of(missing);
    if (!rec.timers[b]) {
      rec.timers[b] = std::make_unique<NakTimer>(sim, [this, r, b](std::size_t) {
        ++stats.naks_sent;
        Packet nak;
        nak.header.type = PacketType::kNak;
        nak.header.tg = b;
        nak.payload = rx[r].pending_bitmap[b];
        nak.header.count = 0;
        nak.header.payload_len = static_cast<std::uint32_t>(nak.payload.size());
        channel.multicast_up(r, nak);
      });
    }
    rec.timers[b]->arm(count,
                       nak_backoff(poll.header.count, count, cfg.slot, rec.rng));
  }

  // ---- run ----------------------------------------------------------------

  LayeredStats run() {
    try_form_block();
    sim.run();
    bool all = !corrupted;
    for (const auto& rec : rx)
      if (rec.delivered_count != num_packets) all = false;
    stats.all_delivered = all;
    stats.impairment = channel.impairment_stats();
    const auto n = static_cast<double>(num_packets);
    stats.tx_per_packet =
        static_cast<double>(stats.data_sent + stats.parity_sent +
                            stats.padding_sent) /
        n;
    stats.rm_tx_per_packet = static_cast<double>(stats.data_sent) / n;
    return stats;
  }

  LayeredConfig cfg;
  std::size_t num_packets;
  sim::Simulator sim;
  fec::RseCode code;
  net::MulticastChannel channel;

  std::vector<std::vector<std::uint8_t>> originals;
  std::deque<std::uint64_t> queue;
  std::vector<bool> queued_flag;
  std::vector<BlockState> blocks;
  std::vector<fec::TgEncoder> encoders;
  std::size_t outstanding_blocks = 0;
  bool sending = false;

  std::vector<Receiver> rx;
  bool corrupted = false;
  LayeredStats stats;
};

LayeredSession::LayeredSession(const loss::LossModel& loss,
                               std::size_t receivers, std::size_t num_packets,
                               const LayeredConfig& config, std::uint64_t seed)
    : impl_(std::make_unique<Impl>(loss, receivers, num_packets, config,
                                   seed)) {}

LayeredSession::~LayeredSession() = default;

LayeredStats LayeredSession::run() { return impl_->run(); }

}  // namespace pbl::protocol
