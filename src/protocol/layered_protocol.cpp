#include "protocol/layered_protocol.hpp"

#include <algorithm>
#include <deque>
#include <optional>
#include <stdexcept>

#include "fec/fec_block.hpp"
#include "fec/rse_code.hpp"
#include "net/channel.hpp"
#include "protocol/nak_suppression.hpp"
#include "sim/simulator.hpp"

namespace pbl::protocol {

using fec::Packet;
using fec::PacketType;

namespace {

constexpr std::uint64_t kPadSeq = ~std::uint64_t{0};

void put_seq(std::vector<std::uint8_t>& frame, std::uint64_t seq) {
  for (int i = 0; i < 8; ++i)
    frame.push_back(static_cast<std::uint8_t>(seq >> (8 * i)));
}

std::uint64_t read_seq(const std::vector<std::uint8_t>& frame) {
  std::uint64_t seq = 0;
  for (int i = 0; i < 8; ++i)
    seq |= static_cast<std::uint64_t>(frame[static_cast<std::size_t>(i)])
           << (8 * i);
  return seq;
}

std::vector<std::uint8_t> bitmap_of(const std::vector<bool>& missing) {
  std::vector<std::uint8_t> bytes((missing.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < missing.size(); ++i)
    if (missing[i]) bytes[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  return bytes;
}

bool bit_at(const std::vector<std::uint8_t>& bytes, std::size_t i) {
  return i / 8 < bytes.size() && (bytes[i / 8] >> (i % 8)) & 1u;
}

}  // namespace

struct LayeredSession::Impl {
  Impl(const loss::LossModel& loss, std::size_t receivers,
       std::size_t num_packets, const LayeredConfig& config,
       std::uint64_t seed)
      : cfg(config), num_packets(num_packets), session_seed(seed), sim(seed),
        code(config.k, config.k + config.h),
        channel(sim, loss, receivers, config.delay, config.lossless_control) {
    if (receivers == 0)
      throw std::invalid_argument("LayeredSession: receivers >= 1");
    if (num_packets == 0)
      throw std::invalid_argument("LayeredSession: num_packets >= 1");
    if (config.k + config.h > 255)
      throw std::invalid_argument("LayeredSession: k + h must be <= 255");
    if (config.reliable_control) config.retry.validate();
    if (config.resume.confirmed_prefix > num_packets)
      throw std::invalid_argument(
          "LayeredSession: resume.confirmed_prefix exceeds num_packets");

    Rng data_rng(seed ^ 0x1a7e6edULL);
    originals.resize(num_packets);
    for (auto& pkt : originals) {
      pkt.resize(cfg.packet_len);
      for (auto& b : pkt) b = static_cast<std::uint8_t>(data_rng());
    }

    // Resume-at-prefix: originals confirmed in a prior life are never
    // enqueued again; the contiguous-confirmation scan starts past them.
    const std::uint64_t prefix = cfg.resume.confirmed_prefix;
    confirmed_seq.assign(num_packets, false);
    for (std::uint64_t s = 0; s < prefix; ++s) confirmed_seq[s] = true;
    confirmed_prefix = prefix;
    stats.resumed_skipped = prefix;
    queued_flag.assign(num_packets, false);
    for (std::uint64_t s = prefix; s < num_packets; ++s) {
      queued_flag[s] = true;
      queue.push_back(s);
    }

    rx.resize(receivers);
    for (std::size_t r = 0; r < receivers; ++r) {
      rx[r].delivered.assign(num_packets, false);
      rx[r].known_incarnation =
          static_cast<std::uint8_t>(cfg.resume.receiver_incarnation);
      // Receiver priors: the prefix was delivered in the sender's prior
      // life (real receivers would simply still hold it).
      for (std::uint64_t s = 0; s < prefix; ++s) rx[r].delivered[s] = true;
      rx[r].delivered_count = prefix;
      rx[r].rng = Rng(seed).split(0x4000 + r);
    }

    if (cfg.reliable_control) {
      evicted.assign(receivers, false);
      silent_rounds.assign(receivers, 0);
    }

    if (cfg.impairment.enabled() || cfg.impairment.control_enabled())
      channel.set_impairment(cfg.impairment);

    channel.set_receiver_handler(
        [this](std::size_t r, const Packet& p) { on_receiver_packet(r, p); });
    channel.set_sender_handler(
        [this](std::size_t r, const Packet& p) { on_sender_feedback(r, p); });
  }

  // ---- sender ------------------------------------------------------------

  struct BlockState {
    std::vector<std::uint64_t> seqs;        // slot -> original seq (or kPadSeq)
    std::vector<std::uint8_t> nak_union;    // union of this round's bitmaps
    bool closed = false;

    // Reliable-control state (sized only when reliable_control).
    std::vector<bool> responded;            // per-receiver: ACK or NAK seen
    std::unique_ptr<Backoff> poll_backoff;  // re-POLL budget for this block
  };

  /// Sends the next block if enough packets are queued — or a padded
  /// final block once nothing more can arrive.
  void try_form_block() {
    if (sending || sender_dead) return;
    if (queue.empty()) return;
    if (queue.size() < cfg.k && outstanding_blocks > 0) return;  // wait

    BlockState block;
    block.seqs.reserve(cfg.k);
    std::vector<std::vector<std::uint8_t>> framed;
    framed.reserve(cfg.k);
    Rng pad_rng(blocks.size() ^ 0x9a9ULL);
    for (std::size_t i = 0; i < cfg.k; ++i) {
      std::uint64_t seq = kPadSeq;
      if (!queue.empty()) {
        seq = queue.front();
        queue.pop_front();
        queued_flag[seq] = false;
      }
      block.seqs.push_back(seq);
      std::vector<std::uint8_t> frame;
      frame.reserve(8 + cfg.packet_len);
      put_seq(frame, seq);
      if (seq != kPadSeq) {
        frame.insert(frame.end(), originals[seq].begin(), originals[seq].end());
      } else {
        frame.resize(8 + cfg.packet_len, 0);
        ++stats.padding_sent;  // counted at formation; sent exactly once
      }
      framed.push_back(std::move(frame));
    }
    const auto block_id = static_cast<std::uint32_t>(blocks.size());
    if (cfg.reliable_control) {
      block.responded.assign(rx.size(), false);
      block.poll_backoff = std::make_unique<Backoff>(
          cfg.retry, Rng(session_seed).split(0x9100000000ULL + block_id));
    }
    blocks.push_back(std::move(block));
    encoders.emplace_back(block_id, code, std::move(framed));
    ++outstanding_blocks;
    ++stats.blocks_sent;
    sending = true;
    send_slot(block_id, 0);
  }

  /// The sender process dies: nothing further is sent, heard or closed.
  void crash_sender() {
    if (sender_dead) return;
    sender_dead = true;
    stats.sender_crashed = true;
  }

  void send_slot(std::uint32_t block_id, std::size_t slot) {
    if (sender_dead) return;
    const std::size_t n = cfg.k + cfg.h;
    if (slot < n) {
      if (cfg.crash_after_tx != kNoSenderCrash &&
          tx_count >= cfg.crash_after_tx) {
        crash_sender();
        return;
      }
      ++tx_count;
      Packet p = slot < cfg.k ? encoders[block_id].data_packet(slot)
                              : encoders[block_id].parity_packet(slot - cfg.k);
      p.header.incarnation = static_cast<std::uint8_t>(cfg.resume.incarnation);
      if (slot < cfg.k) {
        if (blocks[block_id].seqs[slot] != kPadSeq) ++stats.data_sent;
      } else {
        ++stats.parity_sent;
      }
      channel.multicast_down(p);
      sim.schedule_in(cfg.delta, [this, block_id, slot] {
        send_slot(block_id, slot + 1);
      });
      return;
    }
    // Block done: poll (manifest rides in the control payload).
    send_poll(block_id);
    sending = false;
    sim.schedule_in(cfg.delta, [this] { try_form_block(); });
  }

  void send_poll(std::uint32_t block_id) {
    if (sender_dead) return;
    if (cfg.crash_after_tx != kNoSenderCrash &&
        tx_count >= cfg.crash_after_tx) {
      crash_sender();
      return;
    }
    ++tx_count;
    const std::size_t n = cfg.k + cfg.h;
    Packet poll;
    poll.header.incarnation = static_cast<std::uint8_t>(cfg.resume.incarnation);
    poll.header.type = PacketType::kPoll;
    poll.header.tg = block_id;
    poll.header.k = static_cast<std::uint16_t>(cfg.k);
    poll.header.n = static_cast<std::uint16_t>(n);
    poll.header.count = static_cast<std::uint16_t>(n);
    for (const std::uint64_t seq : blocks[block_id].seqs)
      put_seq(poll.payload, seq);
    poll.header.payload_len = static_cast<std::uint32_t>(poll.payload.size());
    channel.multicast_control_down(poll);

    const double window = 2.0 * cfg.delay +
                          (static_cast<double>(n) + 1.0) * cfg.slot;
    if (cfg.reliable_control) {
      sim.schedule_in(window,
                      [this, block_id] { on_block_window_closed(block_id); });
    } else {
      sim.schedule_in(window, [this, block_id] { close_block(block_id); });
    }
  }

  // ---- reliable control plane (sender side) ------------------------------

  bool all_responded(std::uint32_t block_id) const {
    const auto& block = blocks[block_id];
    for (std::size_t r = 0; r < rx.size(); ++r)
      if (!evicted[r] && !block.responded[r]) return false;
    return true;
  }

  void evict(std::size_t r) {
    if (evicted[r]) return;
    evicted[r] = true;
    ++stats.evictions;
  }

  /// Reliable mode's round close: a block only closes once every live
  /// receiver has answered its POLL (with a NAK or an ACK); silent
  /// receivers age toward eviction and unanswered rounds are re-POLLed
  /// under the block's backoff until the budget runs out.
  void on_block_window_closed(std::uint32_t block_id) {
    if (sender_dead) return;
    auto& block = blocks[block_id];
    if (block.closed) return;
    if (all_responded(block_id)) {
      close_block(block_id);
      return;
    }
    for (std::size_t r = 0; r < rx.size(); ++r) {
      if (evicted[r] || block.responded[r]) continue;
      if (++silent_rounds[r] >= cfg.retry.grace_rounds) evict(r);
    }
    if (all_responded(block_id)) {
      close_block(block_id);
      return;
    }
    if (block.poll_backoff->exhausted()) {
      // Degrade, don't spin: the block closes unconfirmed, which the
      // late-NAK path and the final report make visible.  An unconfirmed
      // close never advances the durable prefix.
      ++stats.blocks_unconfirmed;
      close_block(block_id, /*confirmed_close=*/false);
      return;
    }
    ++stats.poll_retries;
    sim.schedule_in(block.poll_backoff->next(), [this, block_id] {
      if (!blocks[block_id].closed) send_poll(block_id);
    });
  }

  void close_block(std::uint32_t block_id, bool confirmed_close = true) {
    if (sender_dead) return;
    auto& block = blocks[block_id];
    block.closed = true;
    --outstanding_blocks;
    // Re-enqueue every original the round's NAKs named.
    for (std::size_t i = 0; i < cfg.k; ++i) {
      if (!bit_at(block.nak_union, i)) continue;
      const std::uint64_t seq = block.seqs[i];
      if (seq == kPadSeq || queued_flag[seq]) continue;
      queued_flag[seq] = true;
      queue.push_back(seq);
    }
    // A confirmed close (every live receiver answered, or the classic
    // silence-is-consent window) marks its non-NAKed originals delivered;
    // the durable prefix — what a restarted sender may skip — advances
    // over the contiguous confirmed run.
    if (confirmed_close) {
      for (std::size_t i = 0; i < cfg.k; ++i) {
        if (bit_at(block.nak_union, i)) continue;
        const std::uint64_t seq = block.seqs[i];
        if (seq != kPadSeq) confirmed_seq[seq] = true;
      }
      advance_prefix();
    }
    try_form_block();
  }

  /// Slides the confirmed contiguous prefix forward and journals it via
  /// the write-ahead hook.  Monotone: once journaled, never retracted.
  void advance_prefix() {
    bool advanced = false;
    while (confirmed_prefix < num_packets && confirmed_seq[confirmed_prefix]) {
      ++confirmed_prefix;
      advanced = true;
    }
    if (advanced && cfg.on_prefix_confirmed)
      cfg.on_prefix_confirmed(confirmed_prefix);
  }

  void on_sender_feedback(std::size_t from, const Packet& p) {
    if (sender_dead) return;  // a dead process hears nothing
    if (p.header.type != PacketType::kNak) return;
    if (p.header.tg >= blocks.size()) return;  // corrupt/foreign feedback
    auto& block = blocks[p.header.tg];
    bool any_bit = false;
    for (const std::uint8_t b : p.payload) any_bit |= b != 0;
    if (cfg.reliable_control && from < rx.size()) {
      // Any feedback proves the receiver alive and answers this block's
      // round, whether it names missing slots or confirms (empty bitmap).
      silent_rounds[from] = 0;
      if (!evicted[from]) block.responded[from] = true;
      if (!any_bit) ++stats.acks_received;
    }
    if (block.closed) {
      // Late NAK: with a reliable control plane this is a real repair
      // request whose earlier copies were lost, not stale noise — the
      // named originals ride in a future block.
      if (!cfg.reliable_control || !any_bit) return;
      ++stats.late_naks;
      bool requeued = false;
      for (std::size_t i = 0; i < cfg.k; ++i) {
        if (!bit_at(p.payload, i)) continue;
        const std::uint64_t seq = block.seqs[i];
        // The journaled prefix is monotone; above it a late NAK retracts
        // the optimistic confirmation until the repair round re-earns it.
        if (seq != kPadSeq && seq >= confirmed_prefix) confirmed_seq[seq] = false;
        if (seq == kPadSeq || queued_flag[seq]) continue;
        queued_flag[seq] = true;
        queue.push_back(seq);
        requeued = true;
      }
      if (requeued) try_form_block();
      return;
    }
    if (block.nak_union.size() < p.payload.size())
      block.nak_union.resize(p.payload.size(), 0);
    for (std::size_t i = 0; i < p.payload.size(); ++i)
      block.nak_union[i] |= p.payload[i];
  }

  // ---- receivers ----------------------------------------------------------

  struct Receiver {
    std::vector<std::optional<fec::TgDecoder>> decoders;  // per block
    std::vector<bool> delivered;
    std::size_t delivered_count = 0;
    std::vector<std::unique_ptr<NakTimer>> timers;        // per block
    std::vector<std::vector<std::uint8_t>> pending_bitmap;  // per block
    Rng rng;
    /// Highest sender incarnation this receiver has heard from; packets
    /// stamped with an older one are a dead incarnation's stragglers.
    std::uint8_t known_incarnation = 0;

    // Reliable-control state, all per block and lazily sized (see
    // ensure_reliable_arrays).
    std::vector<char> poll_seen;
    std::vector<std::vector<std::uint64_t>> manifest;  // empty until polled
    std::vector<std::vector<bool>> held;  // data slots observed on the wire
    std::vector<sim::EventId> watchdog;   // fires if a block's POLL is lost
    std::vector<std::unique_ptr<Backoff>> retry_backoff;
    std::vector<sim::EventId> retry_event;  // pending NAK retransmit
  };

  void ensure_reliable_arrays(Receiver& rec, std::uint32_t b) {
    if (rec.poll_seen.size() > b) return;
    rec.poll_seen.resize(b + 1, 0);
    rec.manifest.resize(b + 1);
    rec.held.resize(b + 1);
    rec.watchdog.resize(b + 1, sim::kInvalidEvent);
    rec.retry_backoff.resize(b + 1);
    rec.retry_event.resize(b + 1, sim::kInvalidEvent);
  }

  /// Data slots of block `b` that receiver `r` still needs: by content
  /// once the manifest is known, by held wire slots before that (the
  /// conservative fallback a lost POLL forces).
  std::vector<bool> compute_missing(std::size_t r, std::uint32_t b) {
    auto& rec = rx[r];
    ensure_reliable_arrays(rec, b);
    std::vector<bool> missing(cfg.k, false);
    auto& dec = decoder(r, b);
    if (dec.decodable()) return missing;  // everything recoverable locally
    if (!rec.manifest[b].empty()) {
      for (std::size_t i = 0; i < cfg.k; ++i) {
        const std::uint64_t seq = rec.manifest[b][i];
        if (seq == kPadSeq || rec.delivered[seq]) continue;
        missing[i] = true;
      }
    } else {
      auto& held = rec.held[b];
      if (held.size() < cfg.k) held.resize(cfg.k, false);
      for (std::size_t i = 0; i < cfg.k; ++i) missing[i] = !held[i];
    }
    return missing;
  }

  void send_nak_bitmap(std::size_t r, std::uint32_t b,
                       const std::vector<bool>& missing) {
    Packet nak;
    nak.header.incarnation = rx[r].known_incarnation;
    nak.header.type = PacketType::kNak;
    nak.header.tg = b;
    nak.payload = bitmap_of(missing);
    nak.header.count = 0;
    nak.header.payload_len = static_cast<std::uint32_t>(nak.payload.size());
    channel.multicast_up(r, nak);
  }

  /// The empty-bitmap ACK: unicast, so other receivers' damping never
  /// sees it.
  void send_ack(std::size_t r, std::uint32_t b) {
    ++stats.acks_sent;
    Packet ack;
    ack.header.incarnation = rx[r].known_incarnation;
    ack.header.type = PacketType::kNak;
    ack.header.tg = b;
    ack.header.count = 0;
    ack.header.payload_len = 0;
    channel.unicast_up(r, ack);
  }

  void cancel_retry(std::size_t r, std::uint32_t b) {
    auto& rec = rx[r];
    if (rec.retry_event.size() <= b) return;
    auto& ev = rec.retry_event[b];
    if (ev != sim::kInvalidEvent) {
      sim.cancel(ev);
      ev = sim::kInvalidEvent;
    }
  }

  /// A NAK for block `b` is in flight; if its repair does not show up
  /// (in a future block, by content) it is retransmitted under backoff
  /// until nothing is missing or the budget runs out.
  void arm_retry(std::size_t r, std::uint32_t b) {
    auto& rec = rx[r];
    ensure_reliable_arrays(rec, b);
    cancel_retry(r, b);
    auto& bo = rec.retry_backoff[b];
    if (!bo)
      bo = std::make_unique<Backoff>(
          cfg.retry, Rng(session_seed).split(
                         0x7000000000ULL +
                         (static_cast<std::uint64_t>(r) << 32) + b));
    if (bo->exhausted()) return;
    const double wait = 2.0 * cfg.delay + bo->next();
    rec.retry_event[b] = sim.schedule_in(wait, [this, r, b] {
      rx[r].retry_event[b] = sim::kInvalidEvent;
      const auto missing = compute_missing(r, b);
      if (std::none_of(missing.begin(), missing.end(),
                       [](bool m) { return m; }))
        return;
      ++stats.nak_retries;
      ++stats.naks_sent;
      send_nak_bitmap(r, b, missing);
      arm_retry(r, b);
    });
  }

  /// Fires when a block's shards were seen but its POLL never arrived:
  /// the receiver opens the feedback round itself with an unsolicited
  /// NAK for the wire slots it is missing.
  void on_watchdog(std::size_t r, std::uint32_t b) {
    auto& rec = rx[r];
    rec.watchdog[b] = sim::kInvalidEvent;
    if (rec.poll_seen[b]) return;
    const auto missing = compute_missing(r, b);
    if (std::none_of(missing.begin(), missing.end(),
                     [](bool m) { return m; }))
      return;
    ++stats.naks_sent;
    send_nak_bitmap(r, b, missing);
    arm_retry(r, b);
  }

  fec::TgDecoder& decoder(std::size_t r, std::uint32_t block_id) {
    auto& rec = rx[r];
    if (rec.decoders.size() <= block_id) rec.decoders.resize(block_id + 1);
    if (!rec.decoders[block_id])
      rec.decoders[block_id].emplace(block_id, code, 8 + cfg.packet_len);
    return *rec.decoders[block_id];
  }

  void deliver(std::size_t r, const std::vector<std::uint8_t>& frame) {
    const std::uint64_t seq = read_seq(frame);
    if (seq == kPadSeq) return;
    auto& rec = rx[r];
    if (rec.delivered[seq]) {
      ++stats.duplicate_deliveries;
      return;
    }
    // Byte-exact verification of the delivered content.
    if (!std::equal(frame.begin() + 8, frame.end(), originals[seq].begin(),
                    originals[seq].end()))
      corrupted = true;
    rec.delivered[seq] = true;
    if (++rec.delivered_count == num_packets)
      stats.completion_time = std::max(stats.completion_time, sim.now());
  }

  void on_receiver_packet(std::size_t r, const Packet& p) {
    // Block ids grow with blocks.size() and all per-block arrays are
    // indexed by them, so an adversarial channel must not be able to
    // reach this switch with an id we never issued (decoder() would
    // otherwise allocate a multi-gigabyte vector for a corrupt tg).
    if (p.header.tg >= blocks.size()) return;
    // Stale-incarnation filter: stragglers from a sender life that
    // predates the last restart are dropped before any state changes.
    if (p.header.incarnation < rx[r].known_incarnation) {
      ++stats.stale_rejected;
      return;
    }
    rx[r].known_incarnation = p.header.incarnation;
    switch (p.header.type) {
      case PacketType::kData:
      case PacketType::kParity: {
        // Wrong block shape or frame size: not a shard of this session.
        if (p.header.index >= cfg.k + cfg.h ||
            p.payload.size() != 8 + cfg.packet_len)
          return;
        if (cfg.reliable_control) {
          auto& rec = rx[r];
          const std::uint32_t b = p.header.tg;
          ensure_reliable_arrays(rec, b);
          if (p.header.index < cfg.k) {
            auto& held = rec.held[b];
            if (held.size() < cfg.k) held.resize(cfg.k, false);
            held[p.header.index] = true;
          }
          // A shard announces the block; if its POLL never shows up the
          // watchdog opens the feedback round from this side.  The wait
          // covers the rest of the block, the POLL round trip, and the
          // widest NAK backoff, plus one retry quantum of slack.
          if (!rec.poll_seen[b] && rec.watchdog[b] == sim::kInvalidEvent) {
            const double n = static_cast<double>(cfg.k + cfg.h);
            const double wait = n * cfg.delta + 2.0 * cfg.delay +
                                (n + 1.0) * cfg.slot +
                                cfg.retry.initial_backoff;
            rec.watchdog[b] =
                sim.schedule_in(wait, [this, r, b] { on_watchdog(r, b); });
          }
        }
        auto& dec = decoder(r, p.header.tg);
        const bool was_decodable = dec.decodable();
        if (!dec.add(p)) return;
        if (p.header.type == PacketType::kData) deliver(r, p.payload);
        if (!was_decodable && dec.decodable()) {
          const auto& rebuilt = dec.reconstruct();
          stats.packets_decoded += dec.decoded_packets();
          for (const auto& frame : rebuilt) deliver(r, frame);
        }
        break;
      }
      case PacketType::kPoll:
        on_poll(r, p);
        break;
      case PacketType::kNak: {
        // Damping: cancel our pending NAK iff the overheard bitmap covers
        // everything we miss from this block.
        auto& rec = rx[r];
        const std::uint32_t b = p.header.tg;
        if (rec.timers.size() <= b || !rec.timers[b] ||
            !rec.timers[b]->pending())
          return;
        bool covered = true;
        const auto& mine = rec.pending_bitmap[b];
        for (std::size_t i = 0; i < cfg.k && covered; ++i)
          if (bit_at(mine, i) && !bit_at(p.payload, i)) covered = false;
        if (covered) {
          rec.timers[b]->disarm();
          ++stats.naks_suppressed;
        }
        break;
      }
    }
  }

  void on_poll(std::size_t r, const Packet& poll) {
    if (poll.payload.size() < cfg.k * 8) return;  // manifest incomplete
    auto& rec = rx[r];
    const std::uint32_t b = poll.header.tg;
    // Missing = data slots whose CONTENT (by the manifest) we lack.
    std::vector<bool> missing(cfg.k, false);
    std::size_t count = 0;
    auto& dec = decoder(r, b);
    const bool decoded = dec.decodable();
    std::vector<std::uint64_t> seqs(cfg.k, kPadSeq);
    for (std::size_t i = 0; i < cfg.k; ++i) {
      std::uint64_t seq = 0;
      for (int byte = 0; byte < 8; ++byte)
        seq |= static_cast<std::uint64_t>(
                   poll.payload[i * 8 + static_cast<std::size_t>(byte)])
               << (8 * byte);
      seqs[i] = seq;
      if (seq == kPadSeq) continue;
      if (decoded || rec.delivered[seq]) continue;
      missing[i] = true;
      ++count;
    }
    if (cfg.reliable_control) {
      ensure_reliable_arrays(rec, b);
      rec.poll_seen[b] = 1;
      rec.manifest[b] = std::move(seqs);
      if (rec.watchdog[b] != sim::kInvalidEvent) {
        sim.cancel(rec.watchdog[b]);
        rec.watchdog[b] = sim::kInvalidEvent;
      }
      if (count == 0) {
        // Reliable mode answers every POLL: silence is reserved for the
        // dead.
        cancel_retry(r, b);
        send_ack(r, b);
        return;
      }
    }
    if (count == 0) return;

    if (rec.timers.size() <= b) {
      rec.timers.resize(b + 1);
      rec.pending_bitmap.resize(b + 1);
    }
    rec.pending_bitmap[b] = bitmap_of(missing);
    if (!rec.timers[b]) {
      rec.timers[b] = std::make_unique<NakTimer>(sim, [this, r, b](std::size_t) {
        ++stats.naks_sent;
        Packet nak;
        nak.header.type = PacketType::kNak;
        nak.header.tg = b;
        nak.payload = rx[r].pending_bitmap[b];
        nak.header.incarnation = rx[r].known_incarnation;
        nak.header.count = 0;
        nak.header.payload_len = static_cast<std::uint32_t>(nak.payload.size());
        channel.multicast_up(r, nak);
        // If this NAK (or its repair) is lost, retransmit under backoff.
        if (cfg.reliable_control) arm_retry(r, b);
      });
    }
    rec.timers[b]->arm(count,
                       nak_backoff(poll.header.count, count, cfg.slot, rec.rng));
  }

  // ---- run ----------------------------------------------------------------

  LayeredStats run() {
    try_form_block();
    if (cfg.reliable_control && cfg.retry.session_deadline > 0.0) {
      sim.run(cfg.retry.session_deadline);
      if (!sim.queue().empty()) {
        stats.report.deadline_expired = true;
        sim.queue().clear();
      }
    } else {
      sim.run();
    }
    bool all = !corrupted;
    for (const auto& rec : rx)
      if (rec.delivered_count != num_packets) all = false;
    stats.all_delivered = all;
    stats.confirmed_prefix = confirmed_prefix;
    stats.impairment = channel.impairment_stats();
    const auto n = static_cast<double>(num_packets);
    stats.tx_per_packet =
        static_cast<double>(stats.data_sent + stats.parity_sent +
                            stats.padding_sent) /
        n;
    stats.rm_tx_per_packet = static_cast<double>(stats.data_sent) / n;
    build_report();
    return stats;
  }

  /// Fills LayeredStats::report on every exit path.
  void build_report() {
    auto& rep = stats.report;
    rep.delivered.assign(rx.size(), std::vector<bool>(num_packets, false));
    for (std::size_t r = 0; r < rx.size(); ++r)
      for (std::size_t u = 0; u < num_packets; ++u)
        rep.delivered[r][u] = rx[r].delivered[u];
    rep.evicted.assign(rx.size(), false);
    for (std::size_t r = 0; r < evicted.size(); ++r)
      rep.evicted[r] = evicted[r];
    rep.evictions = stats.evictions;
    rep.units_failed = stats.blocks_unconfirmed;
    rep.poll_retries = stats.poll_retries;
    rep.nak_retries = stats.nak_retries;
    rep.complete = stats.all_delivered && stats.evictions == 0 &&
                   stats.blocks_unconfirmed == 0 && !rep.deadline_expired;
  }

  LayeredConfig cfg;
  std::size_t num_packets;
  std::uint64_t session_seed;
  sim::Simulator sim;
  fec::RseCode code;
  net::MulticastChannel channel;

  std::vector<std::vector<std::uint8_t>> originals;
  std::deque<std::uint64_t> queue;
  std::vector<bool> queued_flag;
  std::vector<BlockState> blocks;
  std::vector<fec::TgEncoder> encoders;
  std::size_t outstanding_blocks = 0;
  bool sending = false;

  // Crash-recovery state: which originals every live receiver confirmed,
  // and the contiguous prefix of them (the journaled resume point).
  std::vector<bool> confirmed_seq;
  std::uint64_t confirmed_prefix = 0;
  bool sender_dead = false;
  std::size_t tx_count = 0;

  std::vector<Receiver> rx;
  bool corrupted = false;

  // Reliable-control liveness (sized only when reliable_control).
  std::vector<bool> evicted;
  std::vector<std::size_t> silent_rounds;

  LayeredStats stats;
};

LayeredSession::LayeredSession(const loss::LossModel& loss,
                               std::size_t receivers, std::size_t num_packets,
                               const LayeredConfig& config, std::uint64_t seed)
    : impl_(std::make_unique<Impl>(loss, receivers, num_packets, config,
                                   seed)) {}

LayeredSession::~LayeredSession() = default;

LayeredStats LayeredSession::run() { return impl_->run(); }

}  // namespace pbl::protocol
