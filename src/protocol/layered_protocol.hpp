// Layered FEC on the discrete-event simulator (paper Section 3.1,
// Fig. 2a): a transparent FEC layer UNDER a reliable-multicast ARQ layer.
//
// The sender's FEC layer groups every k outgoing RM packets into a block
// and appends h parities; the receiver's FEC layer reconstructs the block
// whenever any k of its k+h packets arrive and hands the originals up.
// Loss visible to the RM layer is therefore q(k, n, p) of Eq. (2).  The
// RM layer recovers ARQ-style: after each block the sender polls, and
// receivers NAK a bitmap of the block slots whose CONTENT they still
// miss (slotting/damping with the superset suppression rule).  The sender
// unions the round's bitmaps and re-enqueues those original packets —
// they ride in a FUTURE block together with fresh data, exactly the
// "retransmits the lost originals as part of a new group" behaviour the
// paper describes and the n/k cost accounting of Eq. (3) assumes.
//
// Each original packet is framed as [seq | payload] inside the FEC layer,
// so block decoding recovers the sequence number along with the bytes —
// the detail that makes "any k of n" reconstruction deliverable upward.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "loss/loss_model.hpp"
#include "net/impairment.hpp"
#include "protocol/retry.hpp"

namespace pbl::protocol {

/// Progress a restarted layered sender carries into its next incarnation.
/// The layered protocol's durable unit is the application packet stream,
/// so recovery is a confirmed contiguous PREFIX of originals rather than
/// a TG bitmap: everything below the prefix was delivered to every live
/// receiver in a prior life and is never re-enqueued.
struct LayeredResume {
  /// This run's incarnation id, stamped into every outgoing packet;
  /// receivers reject packets from earlier incarnations.
  std::uint32_t incarnation = 0;
  /// What the receivers had seen before the restart.
  std::uint32_t receiver_incarnation = 0;
  /// Originals [0, confirmed_prefix) are confirmed delivered; receivers
  /// are primed as already holding them.
  std::uint64_t confirmed_prefix = 0;

  bool enabled() const noexcept {
    return incarnation > 0 || confirmed_prefix > 0;
  }
};

struct LayeredConfig {
  std::size_t k = 7;            ///< originals per FEC block
  std::size_t h = 1;            ///< parities per FEC block
  std::size_t packet_len = 256; ///< application payload bytes per packet
  double delta = 0.001;         ///< packet spacing [s]
  double slot = 0.005;          ///< NAK suppression slot size [s]
  double delay = 0.010;         ///< one-way propagation delay [s]
  bool lossless_control = true;
  /// Adversarial impairment of the DATA down-path; the control knobs
  /// (impairment.control_*) additionally impair the POLL/NAK paths.
  net::ImpairmentConfig impairment{};

  /// Control-plane reliability layer (docs/ROBUSTNESS.md).  When set, a
  /// block's poll round is no longer closed on silence: every receiver
  /// answers every POLL (a NAK bitmap, or an empty-bitmap ACK unicast to
  /// the sender when nothing is missing), unanswered rounds are re-POLLed
  /// under `retry`'s seeded backoff, receivers that saw a block's shards
  /// but never its POLL reconstruct the feedback round from a watchdog
  /// NAK, lost NAKs are retransmitted under backoff, late NAKs on closed
  /// blocks re-enqueue the named originals instead of being dropped, and
  /// receivers silent for retry.grace_rounds are evicted.  Every exit is
  /// total and fills LayeredStats::report.  Off by default — the
  /// lossless-feedback fast path stays byte-identical.
  bool reliable_control = false;
  RetryConfig retry{};

  /// Crash-recovery state for a restarted sender (default: fresh session).
  LayeredResume resume{};
  /// Write-ahead hook: fired whenever the confirmed contiguous prefix of
  /// originals advances, with the new prefix — a journal can persist it
  /// before the crash that makes it matter.  The prefix is trustworthy
  /// under reliable_control (positive per-receiver ACKs); on the classic
  /// silence-is-consent path it inherits that path's optimism.
  std::function<void(std::uint64_t prefix)> on_prefix_confirmed;
  /// Deterministic crash injection: the sender dies after its Nth channel
  /// transmission (data, parity or poll).  kNoSenderCrash disables.
  std::size_t crash_after_tx = kNoSenderCrash;
};

struct LayeredStats {
  std::uint64_t blocks_sent = 0;
  std::uint64_t data_sent = 0;         ///< original-packet transmissions (incl. re-sends)
  std::uint64_t parity_sent = 0;
  std::uint64_t padding_sent = 0;      ///< dummy fill of the final partial blocks
  std::uint64_t naks_sent = 0;
  std::uint64_t naks_suppressed = 0;
  std::uint64_t duplicate_deliveries = 0;  ///< RM-level duplicates, all receivers
  std::uint64_t packets_decoded = 0;       ///< FEC-layer reconstructions
  double completion_time = 0.0;
  bool all_delivered = false;
  /// Physical transmissions (data+parity+padding) per application packet:
  /// the Eq. (3) E[M] quantity.
  double tx_per_packet = 0.0;
  /// RM-layer transmissions per application packet (E[M'] of the paper).
  double rm_tx_per_packet = 0.0;
  net::ImpairmentStats impairment{};  ///< channel fault counters (zero when clean)

  // Reliable-control accounting (all zero unless reliable_control).
  std::uint64_t acks_sent = 0;        ///< empty-bitmap poll answers
  std::uint64_t acks_received = 0;
  std::uint64_t poll_retries = 0;     ///< block re-POLLs after silent rounds
  std::uint64_t nak_retries = 0;      ///< receiver NAK retransmissions
  std::uint64_t late_naks = 0;        ///< NAKs honoured on closed blocks
  std::uint64_t evictions = 0;        ///< receivers evicted for silence
  std::uint64_t blocks_unconfirmed = 0;  ///< closed with the budget spent
  /// Structured degradation outcome; filled on every exit path.
  PartialDeliveryReport report{};

  // Crash-recovery accounting.
  bool sender_crashed = false;         ///< crash_after_tx fired this run
  std::uint64_t stale_rejected = 0;    ///< packets dropped: dead incarnation
  std::uint64_t resumed_skipped = 0;   ///< originals carried in confirmed
  std::uint64_t confirmed_prefix = 0;  ///< final contiguous confirmed prefix
};

/// One sender, `receivers` receivers, `num_packets` application packets
/// of random data.
class LayeredSession {
 public:
  LayeredSession(const loss::LossModel& loss, std::size_t receivers,
                 std::size_t num_packets, const LayeredConfig& config,
                 std::uint64_t seed = 1);
  ~LayeredSession();

  LayeredSession(const LayeredSession&) = delete;
  LayeredSession& operator=(const LayeredSession&) = delete;

  LayeredStats run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace pbl::protocol
