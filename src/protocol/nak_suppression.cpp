#include "protocol/nak_suppression.hpp"

#include <stdexcept>

namespace pbl::protocol {

double nak_backoff(std::size_t s, std::size_t l, double slot_size, Rng& rng) {
  if (slot_size < 0.0)
    throw std::invalid_argument("nak_backoff: slot_size must be >= 0");
  if (l == 0) throw std::invalid_argument("nak_backoff: l must be > 0");
  const std::size_t slot = l >= s ? 0 : s - l;
  return (static_cast<double>(slot) + rng.uniform()) * slot_size;
}

NakTimer::NakTimer(sim::Simulator& sim, std::function<void(std::size_t)> send)
    : sim_(&sim), send_(std::move(send)) {}

NakTimer::~NakTimer() { cancel(); }

void NakTimer::cancel() {
  if (event_ != sim::kInvalidEvent) {
    sim_->cancel(event_);
    event_ = sim::kInvalidEvent;
  }
}

void NakTimer::arm(std::size_t l, double delay) {
  cancel();
  l_ = l;
  event_ = sim_->schedule_in(delay, [this] {
    event_ = sim::kInvalidEvent;
    send_(l_);
  });
}

bool NakTimer::on_heard(std::size_t m) {
  if (event_ == sim::kInvalidEvent) return false;
  if (m < l_) return false;  // the heard NAK asks for less than we need
  cancel();
  ++suppressed_;
  return true;
}

}  // namespace pbl::protocol
