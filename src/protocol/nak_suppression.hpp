// Slotting-and-damping NAK suppression (paper Section 5.1, following SRM).
//
// After a POLL(i, s), a receiver needing l more packets schedules its
// NAK(i, l) uniformly inside the slot [(s-l) Ts, (s-l+1) Ts]: the more
// packets a receiver misses, the earlier it speaks, so the worst-off
// receiver's NAK tends to go out first and — because NAKs are multicast —
// suppresses everyone needing m <= l.  Ideally one NAK per round reaches
// the sender.
#pragma once

#include <cstddef>
#include <functional>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace pbl::protocol {

/// Backoff delay for a receiver needing l of the s packets just polled:
/// uniform in [(s-l) Ts, (s-l+1) Ts], clamped below at slot 0 when l > s.
double nak_backoff(std::size_t s, std::size_t l, double slot_size, Rng& rng);

/// Per-(receiver, TG) pending-NAK state machine.
class NakTimer {
 public:
  /// send(l) is invoked when the timer fires (the NAK goes out).
  NakTimer(sim::Simulator& sim, std::function<void(std::size_t)> send);
  ~NakTimer();

  NakTimer(const NakTimer&) = delete;
  NakTimer& operator=(const NakTimer&) = delete;

  /// Arms (or re-arms) the timer to send NAK(l) after `delay`.
  void arm(std::size_t l, double delay);

  /// Another receiver's NAK(m) was heard: cancels the pending NAK if
  /// m >= l (damping).  Returns true if a pending NAK was suppressed.
  bool on_heard(std::size_t m);

  /// Cancels any pending NAK without counting it as suppressed (used when
  /// the receiver completes the TG on its own).
  void disarm() { cancel(); }

  bool pending() const noexcept { return event_ != sim::kInvalidEvent; }
  std::size_t suppressed_count() const noexcept { return suppressed_; }

 private:
  void cancel();

  sim::Simulator* sim_;
  std::function<void(std::size_t)> send_;
  sim::EventId event_ = sim::kInvalidEvent;
  std::size_t l_ = 0;
  std::size_t suppressed_ = 0;
};

}  // namespace pbl::protocol
