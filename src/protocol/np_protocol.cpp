#include "protocol/np_protocol.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <optional>
#include <stdexcept>

#include "util/numerics.hpp"

namespace pbl::protocol {

using fec::Packet;
using fec::PacketType;

struct NpSession::Impl {
  Impl(const loss::LossModel& loss, std::size_t receivers, std::size_t num_tgs,
       const NpConfig& config, std::uint64_t seed,
       std::vector<std::vector<std::vector<std::uint8_t>>> provided)
      : cfg(config), num_receivers(receivers), num_tgs(num_tgs),
        session_seed(seed), sim(seed),
        code(config.k, config.k + config.h),
        channel(sim, loss, receivers, config.delay, config.lossless_control) {
    if (receivers == 0) throw std::invalid_argument("NpSession: receivers >= 1");
    if (num_tgs == 0) throw std::invalid_argument("NpSession: num_tgs >= 1");
    if (config.k + config.h > 255)
      throw std::invalid_argument("NpSession: k + h must be <= 255");
    if (config.reliable_control) config.retry.validate();
    if (config.crash_receiver != kNoCrashReceiver &&
        config.crash_receiver >= receivers)
      throw std::invalid_argument("NpSession: crash_receiver out of range");
    if (config.join_receiver != kNoJoinReceiver) {
      if (config.join_receiver >= receivers)
        throw std::invalid_argument("NpSession: join_receiver out of range");
      if (!config.reliable_control)
        throw std::invalid_argument(
            "NpSession: late join requires reliable_control (catch-up "
            "bookkeeping runs on per-receiver ACKs)");
      if (config.join_receiver == config.crash_receiver)
        throw std::invalid_argument(
            "NpSession: a receiver cannot both crash and late-join");
    }
    if (!cfg.resume.completed.empty() &&
        cfg.resume.completed.size() != num_tgs)
      throw std::invalid_argument("NpSession: resume.completed size mismatch");
    if (!cfg.resume.parities_sent.empty() &&
        cfg.resume.parities_sent.size() != num_tgs)
      throw std::invalid_argument(
          "NpSession: resume.parities_sent size mismatch");
    for (const auto hw : cfg.resume.parities_sent)
      if (hw > config.h)
        throw std::invalid_argument(
            "NpSession: resume.parities_sent exceeds parity budget h");
    for (const auto& prior : cfg.resume.receiver_decoded)
      if (prior.size() != num_tgs)
        throw std::invalid_argument(
            "NpSession: resume.receiver_decoded shape mismatch");
    if (!cfg.resume.receiver_decoded.empty() &&
        cfg.resume.receiver_decoded.size() != receivers)
      throw std::invalid_argument(
          "NpSession: resume.receiver_decoded needs one bitmap per receiver");

    if (provided.empty()) {
      // Random source data, one TG at a time.
      Rng data_rng(seed ^ 0xabcdef12345ULL);
      source.resize(num_tgs);
      for (std::size_t i = 0; i < num_tgs; ++i) {
        source[i].resize(cfg.k);
        for (auto& pkt : source[i]) {
          pkt.resize(cfg.packet_len);
          for (auto& b : pkt) b = static_cast<std::uint8_t>(data_rng());
        }
      }
    } else {
      for (const auto& tg : provided) {
        if (tg.size() != cfg.k)
          throw std::invalid_argument("NpSession: each TG needs exactly k packets");
        for (const auto& pkt : tg)
          if (pkt.size() != cfg.packet_len)
            throw std::invalid_argument(
                "NpSession: packets must be packet_len bytes");
      }
      source = std::move(provided);
    }
    encoders.reserve(num_tgs);
    for (std::size_t i = 0; i < num_tgs; ++i) {
      encoders.emplace_back(static_cast<std::uint32_t>(i), code, source[i]);
      if (cfg.pre_encode) encoders.back().pre_encode();
    }

    tg_state.resize(num_tgs);
    current_proactive = std::min(cfg.proactive, cfg.h);
    rx.resize(receivers);
    for (std::size_t r = 0; r < receivers; ++r) {
      rx[r].decoders.resize(num_tgs);
      rx[r].timers.resize(num_tgs);
      rx[r].poll_round.assign(num_tgs, 0);
      rx[r].done.assign(num_tgs, false);
      rx[r].rng = Rng(seed).split(0x1000 + r);
    }

    if (cfg.reliable_control) {
      evicted.assign(receivers, false);
      silent_rounds.assign(receivers, 0);
      const Rng root(seed);
      for (std::size_t i = 0; i < num_tgs; ++i) {
        auto& st = tg_state[i];
        st.acked.assign(receivers, false);
        st.heard.assign(receivers, 0);
        // Independent substream per TG: re-POLL schedules are
        // bit-reproducible and insensitive to other TGs' retry counts.
        st.poll_backoff =
            std::make_unique<Backoff>(cfg.retry, root.split(0x9100 + i));
      }
      for (std::size_t r = 0; r < receivers; ++r) {
        rx[r].nak_backoffs.resize(num_tgs);
        rx[r].nak_retry.assign(num_tgs, sim::kInvalidEvent);
      }
    }

    // ---- crash-recovery priming (a restarted sender's second life) ----
    if (cfg.resume.enabled()) {
      // Every receiver remembers the newest incarnation it heard, even
      // when it decoded nothing in the prior life.
      for (auto& rec : rx)
        rec.known_incarnation =
            static_cast<std::uint8_t>(cfg.resume.receiver_incarnation);
      // Receiver priors first, so per-TG receivers_done counts are right.
      for (std::size_t r = 0; r < cfg.resume.receiver_decoded.size(); ++r) {
        auto& rec = rx[r];
        for (std::size_t i = 0; i < num_tgs; ++i) {
          if (!cfg.resume.receiver_decoded[r][i]) continue;
          rec.done[i] = true;
          ++rec.done_count;
          ++tg_state[i].receivers_done;
          if (cfg.reliable_control) {
            tg_state[i].acked[r] = true;
            ++tg_state[i].acked_count;
          }
        }
      }
      for (std::size_t i = 0; i < num_tgs; ++i) {
        auto& st = tg_state[i];
        if (!cfg.resume.parities_sent.empty())
          st.parities_used = cfg.resume.parities_sent[i];
        if (!cfg.resume.completed.empty() && cfg.resume.completed[i]) {
          // Confirmed in a prior life: never retransmitted.  Without
          // receiver priors the count is pinned so nothing under-counts.
          st.completed = true;
          ++stats.resumed_tgs_skipped;
          if (cfg.resume.receiver_decoded.empty())
            st.receivers_done = num_receivers;
        }
      }
    }

    // Late join: the joiner is deaf and non-blocking until join_time,
    // then the sender reopens whatever it missed (catch-up via parity).
    joined.assign(receivers, true);
    if (cfg.join_receiver != kNoJoinReceiver) {
      joined[cfg.join_receiver] = false;
      sim.schedule_at(cfg.join_time, [this] { on_join(cfg.join_receiver); });
    }

    if (cfg.crash_receiver != kNoCrashReceiver) {
      // Fault injection: the receiver falls silent mid-session — its
      // timers die with it, and it ignores everything from then on.
      sim.schedule_at(cfg.crash_time, [this, r = cfg.crash_receiver] {
        auto& rec = rx[r];
        rec.crashed = true;
        for (auto& t : rec.timers)
          if (t) t->disarm();
        for (std::size_t tg = 0; tg < this->num_tgs; ++tg)
          cancel_nak_retry(r, tg);
      });
    }

    if (cfg.impairment.enabled() || cfg.impairment.control_enabled())
      channel.set_impairment(cfg.impairment);

    channel.set_receiver_handler(
        [this](std::size_t r, const Packet& p) { on_receiver_packet(r, p); });
    channel.set_sender_handler(
        [this](std::size_t r, const Packet& p) { on_sender_feedback(r, p); });
  }

  // ---- sender ----------------------------------------------------------

  struct TgState {
    std::size_t parities_used = 0;     // parities transmitted so far
    std::size_t proactive = 0;         // parities sent with the data
    double first_send = -1.0;          // when the TG's first data packet left
    std::size_t receivers_done = 0;    // receivers that reconstructed the TG
    double latency = -1.0;             // set once receivers_done == R
    std::uint32_t round = 0;           // feedback round (POLLs and NAKs carry it)
    sim::EventId deadline = sim::kInvalidEvent;
    bool serving = false;              // parities queued, ignore further NAKs
    bool failed = false;
    bool round1_observed = false;      // fed the adaptive loss estimator

    // Reliable-control state (unused on the lossless fast path).
    std::vector<bool> acked;           // per-receiver TG confirmation
    std::size_t acked_count = 0;
    std::vector<char> heard;           // feedback seen since the last POLL
    std::unique_ptr<Backoff> poll_backoff;  // re-POLL budget for this TG
    std::size_t last_poll_count = 0;   // s of the latest POLL (re-poll window)
    bool completed = false;            // counted in tgs_completed exactly once
  };

  void start() {
    skip_completed_tgs();
    schedule_send();
  }

  /// Resume-at-first-incomplete: TGs confirmed in a prior incarnation are
  /// never re-entered by the data pump.
  void skip_completed_tgs() {
    while (next_tg < num_tgs && tg_state[next_tg].completed) ++next_tg;
  }

  void schedule_send() {
    if (sender_dead || send_scheduled) return;
    if (urgent.empty() && next_tg >= num_tgs) return;  // nothing to send
    const double at = std::max(sim.now(), last_send_time + cfg.delta);
    send_scheduled = true;
    sim.schedule_at(at, [this] {
      send_scheduled = false;
      send_next();
    });
  }

  void send_next() {
    if (sender_dead) return;
    last_send_time = sim.now();
    if (!urgent.empty()) {
      Packet p = std::move(urgent.front());
      urgent.pop_front();
      emit(p);
    } else if (next_tg < num_tgs) {
      const std::size_t i = next_tg;
      if (next_data_index < cfg.k) {
        emit(encoders[i].data_packet(next_data_index));
        ++next_data_index;
        if (next_data_index == cfg.k) {
          // TG data done: append the proactive parities (the "a" of
          // Section 3.2), then poll, then move on to the next TG.
          auto& st = tg_state[i];
          st.proactive = std::min(current_proactive, cfg.h);
          for (std::size_t j = 0; j < st.proactive; ++j) {
            Packet parity = encoders[i].parity_packet(j);
            parity.header.count = 1;  // marks a proactive parity
            urgent.push_back(std::move(parity));
          }
          // A resumed TG's high-water mark stays capped at h so the
          // fresh-parity arithmetic below never wraps.
          st.parities_used = std::min(cfg.h, st.parities_used + st.proactive);
          if (cfg.on_parities_sent && st.proactive > 0)
            cfg.on_parities_sent(i, st.parities_used);
          urgent.push_back(make_poll(i, cfg.k + st.proactive));
          next_data_index = 0;
          ++next_tg;
          skip_completed_tgs();
        }
      }
    }
    schedule_send();
  }

  /// The sender process dies: nothing further is sent, heard or decided.
  /// Receivers live on — their timers drain against silence, bounded by
  /// their retry budgets, exactly as if the peer were gone for real.
  void crash_sender() {
    if (sender_dead) return;
    sender_dead = true;
    stats.sender_crashed = true;
    urgent.clear();
    next_tg = num_tgs;
    for (auto& st : tg_state) {
      if (st.deadline != sim::kInvalidEvent) {
        sim.cancel(st.deadline);
        st.deadline = sim::kInvalidEvent;
      }
    }
  }

  void emit(Packet p) {
    if (sender_dead) return;
    if (cfg.crash_after_tx != kNoSenderCrash && tx_count >= cfg.crash_after_tx) {
      crash_sender();  // dies BEFORE the (N+1)th transmission leaves
      return;
    }
    ++tx_count;
    // Every downstream packet carries the sender's incarnation so a dead
    // incarnation's stragglers are recognisable at the receivers.
    p.header.incarnation = static_cast<std::uint8_t>(cfg.resume.incarnation);
    switch (p.header.type) {
      case PacketType::kData:
        if (tg_state[p.header.tg].first_send < 0.0)
          tg_state[p.header.tg].first_send = sim.now();
        ++stats.data_sent;
        channel.multicast_down(p);
        break;
      case PacketType::kParity:
        if (p.header.count)
          ++stats.proactive_sent;
        else
          ++stats.parity_sent;
        channel.multicast_down(p);
        break;
      case PacketType::kPoll: {
        ++stats.polls_sent;
        channel.multicast_control_down(p);
        arm_poll_deadline(p.header.tg, p.header.count);
        break;
      }
      case PacketType::kNak:
        throw std::logic_error("sender does not emit NAKs");
    }
  }

  Packet make_poll(std::size_t tg, std::size_t s) {
    Packet p;
    p.header.type = PacketType::kPoll;
    p.header.tg = static_cast<std::uint32_t>(tg);
    p.header.k = static_cast<std::uint16_t>(cfg.k);
    p.header.n = static_cast<std::uint16_t>(cfg.k + cfg.h);
    p.header.count = static_cast<std::uint16_t>(s);
    auto& st = tg_state[tg];
    st.last_poll_count = s;
    if (cfg.reliable_control) std::fill(st.heard.begin(), st.heard.end(), 0);
    // A fresh feedback round opens with every POLL; stale NAKs answering
    // an earlier round are recognisable by their round id and ignored.
    p.header.seq = ++st.round;
    return p;
  }

  void arm_poll_deadline(std::size_t tg, std::size_t s) {
    auto& st = tg_state[tg];
    st.serving = false;
    if (st.deadline != sim::kInvalidEvent) sim.cancel(st.deadline);
    // Worst-case NAK backoff is s * Ts (a receiver needing l = 1); add the
    // poll's downlink and the NAK's uplink propagation.
    const double window =
        2.0 * cfg.delay + static_cast<double>(s) * cfg.slot + cfg.slot;
    if (cfg.reliable_control) {
      st.deadline =
          sim.schedule_in(window, [this, tg] { on_poll_window_closed(tg); });
      return;
    }
    st.deadline = sim.schedule_in(window, [this, tg] {
      auto& s = tg_state[tg];
      s.deadline = sim::kInvalidEvent;
      if (!s.completed) {
        s.completed = true;
        ++stats.tgs_completed;  // silence after a poll means the TG is done
        if (cfg.on_tg_completed) cfg.on_tg_completed(tg);
      }
      observe_round1(tg, 0);  // nobody needed anything this round
    });
  }

  // ---- reliable control plane (sender side) ----------------------------

  /// Every attached receiver has either acknowledged `tg` or been
  /// evicted.  A late joiner that hasn't joined yet never blocks.
  bool confirmed(std::size_t tg) const {
    const auto& st = tg_state[tg];
    for (std::size_t r = 0; r < num_receivers; ++r)
      if (joined[r] && !evicted[r] && !st.acked[r]) return false;
    return true;
  }

  /// Marks `tg` done exactly once (reliable mode's replacement for the
  /// silence-means-done deadline lambda).
  void finish_tg(std::size_t tg) {
    auto& st = tg_state[tg];
    if (st.completed || st.failed) return;
    st.completed = true;
    ++stats.tgs_completed;
    if (cfg.on_tg_completed) cfg.on_tg_completed(tg);
    if (st.deadline != sim::kInvalidEvent) {
      sim.cancel(st.deadline);
      st.deadline = sim::kInvalidEvent;
    }
    observe_round1(tg, 0);  // a round-1 confirmation means nobody NAKed
  }

  void evict(std::size_t r) {
    if (evicted[r]) return;
    evicted[r] = true;
    ++stats.evictions;
  }

  /// Reliable mode's window close: silence no longer means completion.
  /// Confirmed -> done; silent blockers age toward eviction; otherwise
  /// re-POLL under the TG's backoff until the retry budget runs out.
  void on_poll_window_closed(std::size_t tg) {
    auto& st = tg_state[tg];
    st.deadline = sim::kInvalidEvent;
    // No early-out on st.completed: a completed TG REOPENED for a late
    // joiner still re-polls until the joiner confirms or is evicted.
    if (sender_dead || st.failed || st.serving) return;
    if (confirmed(tg)) {
      finish_tg(tg);  // no-op for a reopened, already-counted TG
      return;
    }
    // Liveness: every blocking receiver that stayed silent this round ages
    // by one; any feedback (for any TG) resets its counter.  Damping is
    // off in reliable mode, so a live blocked receiver always answers —
    // per-member silence is a valid crash signal.
    for (std::size_t r = 0; r < num_receivers; ++r) {
      if (evicted[r] || !joined[r] || st.acked[r] || st.heard[r]) continue;
      if (++silent_rounds[r] >= cfg.retry.grace_rounds) evict(r);
    }
    if (confirmed(tg)) {
      finish_tg(tg);
      return;
    }
    if (st.poll_backoff->exhausted()) {
      if (!st.completed) {   // a reopened TG keeps its completed status
        st.failed = true;    // retry budget spent: degrade, don't spin
        ++stats.tgs_failed;
      }
      return;
    }
    ++stats.poll_retries;
    const double wait = st.poll_backoff->next();
    sim.schedule_in(wait, [this, tg] {
      auto& s = tg_state[tg];
      if (sender_dead || s.failed || s.serving) return;
      if (confirmed(tg)) {
        finish_tg(tg);  // resolved while we waited (e.g. by an eviction)
        return;
      }
      urgent.push_back(
          make_poll(tg, std::max<std::size_t>(s.last_poll_count, 1)));
      schedule_send();
    });
  }

  /// Feeds the adaptive controller with the maximum missing-count the
  /// first feedback round of `tg` revealed (0 = silence).  The NAK
  /// reports losses BEYOND the a proactive parities, so the worst
  /// receiver's loss count is max_missing + a when a NAK arrived;
  /// silence only says the maximum was <= a (censored) — the estimate is
  /// then decayed gently so an improving channel sheds redundancy.
  void observe_round1(std::size_t tg, std::size_t max_missing) {
    auto& st = tg_state[tg];
    if (st.round1_observed || st.round != 1) return;
    st.round1_observed = true;
    if (!cfg.adaptive) return;
    if (max_missing > 0) {
      const double sample =
          static_cast<double>(max_missing + st.proactive);
      ewma_max_missing += 0.3 * (sample - ewma_max_missing);
    } else {
      ewma_max_missing =
          std::min(ewma_max_missing * 0.9,
                   static_cast<double>(st.proactive));
    }
    replan_proactive();
  }

  /// Inverts E[max over R of Bin(n1, p) losses] = ewma_max_missing for p,
  /// then picks the smallest a with P(no receiver needs a round) >= the
  /// configured confidence.  Requires the sender to know (roughly) R —
  /// reasonable for provisioned sessions; see NpConfig::adaptive.
  void replan_proactive() {
    // The estimator's samples are (uncensored) maxima of losses over the
    // k + a packets of round 1; invert against that block size.
    const auto n1 = static_cast<std::int64_t>(cfg.k + current_proactive);
    const double receivers = static_cast<double>(num_receivers);
    const auto expected_max = [&](double p) {
      double cdf = 0.0, sum = 0.0;
      for (std::int64_t j = 0; j < n1; ++j) {
        cdf += binomial_pmf(n1, j, p);
        sum += one_minus_pow_one_minus(1.0 - std::min(cdf, 1.0), receivers);
      }
      return sum;
    };
    double p_hat = 0.0;
    if (ewma_max_missing > 1e-9) {
      double lo = 1e-9, hi = 0.9;
      for (int iter = 0; iter < 60; ++iter) {
        const double mid = 0.5 * (lo + hi);
        (expected_max(mid) < ewma_max_missing ? lo : hi) = mid;
      }
      p_hat = 0.5 * (lo + hi);
    }
    // Smallest a with P(Lr <= a)^R >= confidence.
    std::size_t a = 0;
    for (; a < cfg.h; ++a) {
      const double per =
          binomial_cdf(static_cast<std::int64_t>(cfg.k + a),
                       static_cast<std::int64_t>(a), p_hat);
      if (per > 0.0 &&
          std::exp(receivers * std::log(per)) >= cfg.adaptive_confidence)
        break;
    }
    current_proactive = a;
  }

  void on_sender_feedback(std::size_t from, const Packet& p) {
    if (sender_dead) return;  // a dead sender hears nothing
    if (p.header.type != PacketType::kNak) return;
    if (p.header.tg >= num_tgs) return;  // corrupt/foreign feedback
    const std::size_t tg = p.header.tg;
    auto& st = tg_state[tg];
    if (cfg.reliable_control) {
      // Any feedback proves the receiver alive — mark before any staleness
      // or duplicate filtering, so even a late NAK resets its silence age.
      if (from < num_receivers && !evicted[from]) {
        silent_rounds[from] = 0;
        st.heard[from] = 1;
      }
      if (p.header.count == 0) {
        // ACK: per-receiver positive confirmation of the whole TG.  Not
        // round-scoped (a TG once decoded stays decoded), so no stale-seq
        // check; duplicates from control_dup are absorbed by the bitmap.
        ++stats.acks_received;
        if (from < num_receivers && !evicted[from] && !st.acked[from]) {
          st.acked[from] = true;
          ++st.acked_count;
          if (confirmed(tg)) finish_tg(tg);
        }
        return;
      }
      if (st.completed) {
        // Normally a late NAK after confirmation is moot — unless it is a
        // live, attached receiver that never confirmed the TG (a late
        // joiner) asking to be caught up.
        serve_catch_up(tg, from, p);
        return;
      }
    }
    if (st.serving || st.failed) return;  // already reacting to this round
    if (p.header.seq != st.round) return; // stale NAK from an earlier round
    observe_round1(tg, p.header.count);
    if (st.deadline != sim::kInvalidEvent) {
      sim.cancel(st.deadline);
      st.deadline = sim::kInvalidEvent;
    }
    std::size_t l = p.header.count;
    const std::size_t available = cfg.h - st.parities_used;
    if (available == 0) {
      st.failed = true;
      ++stats.tgs_failed;
      return;
    }
    l = std::min(l, available);
    st.serving = true;
    for (std::size_t j = 0; j < l; ++j)
      urgent.push_back(encoders[tg].parity_packet(st.parities_used + j));
    st.parities_used += l;
    if (cfg.on_parities_sent) cfg.on_parities_sent(tg, st.parities_used);
    urgent.push_back(make_poll(tg, l));
    schedule_send();
  }

  /// A NAK against a TG already confirmed complete, from a live, attached
  /// receiver that never acknowledged it: a late joiner asking to be
  /// caught up.  Repair runs through the same multicast parity rounds as
  /// ordinary loss recovery — fresh parity indices first, plain data
  /// packets only once the parity budget is spent — never a per-receiver
  /// unicast replay.
  void serve_catch_up(std::size_t tg, std::size_t from, const Packet& p) {
    auto& st = tg_state[tg];
    if (from >= num_receivers || evicted[from] || !joined[from] ||
        st.acked[from])
      return;
    if (st.serving || p.header.seq != st.round) return;
    if (st.deadline != sim::kInvalidEvent) {
      sim.cancel(st.deadline);
      st.deadline = sim::kInvalidEvent;
    }
    st.serving = true;
    const std::size_t need = std::max<std::size_t>(p.header.count, 1);
    const std::size_t fresh = std::min(need, cfg.h - st.parities_used);
    for (std::size_t j = 0; j < fresh; ++j)
      urgent.push_back(encoders[tg].parity_packet(st.parities_used + j));
    st.parities_used += fresh;
    if (cfg.on_parities_sent && fresh > 0)
      cfg.on_parities_sent(tg, st.parities_used);
    for (std::size_t j = 0; fresh + j < need && j < cfg.k; ++j)
      urgent.push_back(encoders[tg].data_packet(j));
    ++stats.catch_up_polls;
    urgent.push_back(make_poll(tg, need));
    schedule_send();
  }

  /// Late join: receiver `r` attaches now.  From here on it hears and
  /// answers like everyone else, and the sender reopens every TG it has
  /// already moved past so the joiner is caught up through ordinary
  /// multicast parity rounds.
  void on_join(std::size_t r) {
    joined[r] = true;
    if (sender_dead) return;
    for (std::size_t tg = 0; tg < num_tgs; ++tg) {
      auto& st = tg_state[tg];
      const bool opened = st.completed || st.first_send >= 0.0;
      if (!opened || st.failed || rx[r].done[tg]) continue;
      ++stats.catch_up_polls;
      urgent.push_back(make_poll(tg, cfg.k));
      schedule_send();
    }
  }

  // ---- receivers -------------------------------------------------------

  struct Receiver {
    std::vector<std::optional<fec::TgDecoder>> decoders;
    std::vector<std::unique_ptr<NakTimer>> timers;
    std::vector<std::uint32_t> poll_round;  // round id of the latest POLL per TG
    std::vector<bool> done;
    std::size_t done_count = 0;
    /// Highest sender incarnation heard; packets from older incarnations
    /// (a dead sender's stragglers) are rejected.  Primed from
    /// NpResume::receiver_incarnation on restart.
    std::uint8_t known_incarnation = 0;
    Rng rng;

    // Reliable-control state (sized only when reliable_control).
    bool crashed = false;  // fault injection: ignores everything from now on
    std::vector<std::unique_ptr<Backoff>> nak_backoffs;  // per-TG, lazy
    std::vector<sim::EventId> nak_retry;  // pending retransmit per TG
  };

  void cancel_nak_retry(std::size_t r, std::size_t tg) {
    if (rx[r].nak_retry.empty()) return;
    auto& ev = rx[r].nak_retry[tg];
    if (ev != sim::kInvalidEvent) {
      sim.cancel(ev);
      ev = sim::kInvalidEvent;
    }
  }

  /// Receiver r's NAK for `tg` is in flight; if no repair (or new POLL)
  /// shows up within an RTT plus backoff, retransmit it.  Covers the NAK
  /// itself being lost — the re-POLL only covers rounds the sender knows
  /// went unanswered.
  void arm_nak_retry(std::size_t r, std::size_t tg) {
    auto& rec = rx[r];
    cancel_nak_retry(r, tg);
    auto& bo = rec.nak_backoffs[tg];
    if (!bo)
      bo = std::make_unique<Backoff>(
          cfg.retry, Rng(session_seed).split(0x7000 + r * num_tgs + tg));
    if (bo->exhausted()) return;  // budget spent; the sender's re-POLL remains
    const double wait = 2.0 * cfg.delay + bo->next();
    rec.nak_retry[tg] = sim.schedule_in(wait, [this, r, tg] {
      rx[r].nak_retry[tg] = sim::kInvalidEvent;
      if (rx[r].crashed || rx[r].done[tg]) return;
      const std::size_t need = decoder(r, tg).needed();
      if (need == 0) return;
      ++stats.nak_retries;
      ++stats.naks_sent;
      Packet nak;
      nak.header.type = PacketType::kNak;
      nak.header.tg = static_cast<std::uint32_t>(tg);
      nak.header.count = static_cast<std::uint16_t>(need);
      nak.header.seq = rx[r].poll_round[tg];
      nak.header.incarnation = rx[r].known_incarnation;
      channel.multicast_up(r, nak);
      arm_nak_retry(r, tg);
    });
  }

  /// An ACK is a NAK with count == 0, unicast to the sender only — other
  /// receivers never see it, so NAK suppression statistics are untouched.
  void send_ack(std::size_t r, std::size_t tg) {
    ++stats.acks_sent;
    Packet ack;
    ack.header.type = PacketType::kNak;
    ack.header.tg = static_cast<std::uint32_t>(tg);
    ack.header.count = 0;
    ack.header.seq = rx[r].poll_round[tg];
    ack.header.incarnation = rx[r].known_incarnation;
    channel.unicast_up(r, ack);
  }

  fec::TgDecoder& decoder(std::size_t r, std::size_t tg) {
    auto& slot = rx[r].decoders[tg];
    if (!slot)
      slot.emplace(static_cast<std::uint32_t>(tg), code, cfg.packet_len);
    return *slot;
  }

  void on_receiver_packet(std::size_t r, const Packet& p) {
    // An adversarial channel can deliver packets whose headers no longer
    // address anything we track (foreign traffic, or corruption that
    // survived the wire checks).  Every per-TG array below is indexed by
    // tg, so the receive path must be total over arbitrary headers.
    if (p.header.tg >= num_tgs) return;
    if (rx[r].crashed) return;  // a crashed receiver hears nothing
    if (!joined[r]) return;     // a late joiner hears nothing before joining
    // Stale-incarnation filtering: traffic from a sender life older than
    // the newest one heard is a dead incarnation's straggler — drop it
    // rather than let it answer (or corrupt) the live session.
    if (p.header.incarnation < rx[r].known_incarnation) {
      ++stats.stale_rejected;
      return;
    }
    rx[r].known_incarnation = p.header.incarnation;
    switch (p.header.type) {
      case PacketType::kData:
      case PacketType::kParity: {
        // A block address outside our code's shape or a wrong-size
        // payload cannot be a shard of this session; count it as loss
        // rather than letting TgDecoder::add throw mid-simulation.
        if (p.header.index >= code.n() || p.payload.size() != cfg.packet_len)
          return;
        // Repair traffic arrived: the in-flight NAK was heard, stand down.
        if (cfg.reliable_control) cancel_nak_retry(r, p.header.tg);
        auto& dec = decoder(r, p.header.tg);
        const bool was_done = rx[r].done[p.header.tg];
        if (!dec.add(p)) {
          ++stats.duplicate_receptions;
          return;
        }
        if (!was_done && dec.decodable()) complete_tg(r, p.header.tg);
        break;
      }
      case PacketType::kPoll:
        // A new POLL supersedes any pending NAK retransmit for this TG.
        if (cfg.reliable_control) cancel_nak_retry(r, p.header.tg);
        rx[r].poll_round[p.header.tg] = p.header.seq;
        on_poll(r, p.header.tg, p.header.count);
        break;
      case PacketType::kNak:
        // Another receiver's NAK: damping — except in reliable mode,
        // where a suppressed receiver is indistinguishable from a crashed
        // one, so everyone answers (reliability costs feedback traffic).
        if (!cfg.reliable_control)
          if (auto& timer = rx[r].timers[p.header.tg])
            timer->on_heard(p.header.count);
        break;
    }
  }

  void on_poll(std::size_t r, std::size_t tg, std::size_t s) {
    // A receiver that already delivered the TG — possibly in the sender's
    // previous incarnation, so this life's decoder may be empty — answers
    // from its done bitmap, never by re-requesting content it has.
    if (rx[r].done[tg]) {
      if (cfg.reliable_control) send_ack(r, tg);
      return;
    }
    auto& dec = decoder(r, tg);
    const std::size_t l = dec.needed();
    if (l == 0) {
      // Reliable mode: a POLL is answered positively, never with silence.
      if (cfg.reliable_control) send_ack(r, tg);
      return;
    }
    auto& timer = rx[r].timers[tg];
    if (!timer) {
      timer = std::make_unique<NakTimer>(sim, [this, r, tg](std::size_t need) {
        ++stats.naks_sent;
        Packet nak;
        nak.header.type = PacketType::kNak;
        nak.header.tg = static_cast<std::uint32_t>(tg);
        nak.header.count = static_cast<std::uint16_t>(need);
        nak.header.seq = rx[r].poll_round[tg];  // answers this round's POLL
        nak.header.incarnation = rx[r].known_incarnation;
        channel.multicast_up(r, nak);
        // If the NAK (or the repair) is lost, retransmit under backoff.
        if (cfg.reliable_control) arm_nak_retry(r, tg);
      });
    }
    timer->arm(l, nak_backoff(s, l, cfg.slot, rx[r].rng));
  }

  void complete_tg(std::size_t r, std::size_t tg) {
    auto& dec = *rx[r].decoders[tg];
    const auto& rebuilt = dec.reconstruct();
    stats.packets_decoded += dec.decoded_packets();
    if (rebuilt != source[tg]) corrupted = true;
    rx[r].done[tg] = true;
    auto& st = tg_state[tg];
    // Resumed TGs that were never (re)sent this life have no first_send;
    // their latency belongs to the incarnation that actually sent them.
    if (++st.receivers_done >= num_receivers && st.first_send >= 0.0 &&
        st.latency < 0.0)
      st.latency = sim.now() - st.first_send;
    if (++rx[r].done_count == num_tgs)
      stats.completion_time = std::max(stats.completion_time, sim.now());
    // A pending NAK for this TG is moot now.
    if (auto& timer = rx[r].timers[tg]) timer->disarm();
    if (cfg.reliable_control) {
      cancel_nak_retry(r, tg);
      // Proactive confirmation: don't make the sender poll again to learn
      // what it could be told now.
      send_ack(r, tg);
    }
  }

  // ---- run -------------------------------------------------------------

  NpStats run() {
    start();
    if (cfg.reliable_control && cfg.retry.session_deadline > 0.0) {
      sim.run(cfg.retry.session_deadline);
      if (!sim.queue().empty()) {
        // The deadline ended the run with work still pending: a total,
        // reported exit (never a hang) — discard the stale events.
        stats.report.deadline_expired = true;
        sim.queue().clear();
      }
    } else {
      sim.run();
    }
    for (std::size_t i = 0; i < num_tgs; ++i)
      stats.parities_encoded += encoders[i].parities_encoded();
    std::uint64_t suppressed = 0;
    bool all = !corrupted;
    for (auto& rec : rx) {
      if (rec.done_count != num_tgs) all = false;
      for (auto& t : rec.timers)
        if (t) suppressed += t->suppressed_count();
    }
    stats.packet_deliveries = channel.stats().data_deliveries;
    stats.naks_suppressed = suppressed;
    stats.impairment = channel.impairment_stats();
    std::vector<double> latencies;
    latencies.reserve(tg_state.size());
    double latency_sum = 0.0;
    for (const auto& st : tg_state) {
      if (st.latency >= 0.0) {
        latency_sum += st.latency;
        latencies.push_back(st.latency);
      }
    }
    if (!latencies.empty()) {
      stats.mean_tg_latency =
          latency_sum / static_cast<double>(latencies.size());
      std::sort(latencies.begin(), latencies.end());
      stats.p95_tg_latency =
          latencies[std::min(latencies.size() - 1,
                             static_cast<std::size_t>(
                                 0.95 * static_cast<double>(latencies.size())))];
    }
    stats.all_delivered = all;
    stats.final_proactive = static_cast<double>(current_proactive);
    stats.tx_per_packet =
        static_cast<double>(stats.data_sent + stats.parity_sent +
                            stats.proactive_sent) /
        (static_cast<double>(cfg.k) * static_cast<double>(num_tgs));
    build_report();
    return stats;
  }

  /// Fills NpStats::report on every exit path — complete, degraded, or
  /// deadline-expired alike.
  void build_report() {
    auto& rep = stats.report;
    rep.delivered.assign(num_receivers, std::vector<bool>(num_tgs, false));
    for (std::size_t r = 0; r < num_receivers; ++r)
      for (std::size_t i = 0; i < num_tgs; ++i)
        rep.delivered[r][i] = rx[r].done[i];
    rep.evicted.assign(num_receivers, false);
    for (std::size_t r = 0; r < evicted.size(); ++r)
      rep.evicted[r] = evicted[r];
    rep.evictions = stats.evictions;
    rep.units_failed = stats.tgs_failed;
    rep.poll_retries = stats.poll_retries;
    rep.nak_retries = stats.nak_retries;
    rep.complete = stats.all_delivered && stats.evictions == 0 &&
                   stats.tgs_failed == 0 && !rep.deadline_expired;
  }

  NpConfig cfg;
  std::size_t num_receivers;
  std::size_t num_tgs;
  std::uint64_t session_seed;
  sim::Simulator sim;
  fec::RseCode code;
  net::MulticastChannel channel;

  std::vector<std::vector<std::vector<std::uint8_t>>> source;
  std::vector<fec::TgEncoder> encoders;
  std::vector<TgState> tg_state;
  std::size_t current_proactive = 0;
  double ewma_max_missing = 0.0;
  std::deque<Packet> urgent;
  std::size_t next_tg = 0;
  std::size_t next_data_index = 0;
  double last_send_time = -1e9;
  bool send_scheduled = false;

  std::vector<Receiver> rx;
  bool corrupted = false;

  // Reliable-control liveness (sized only when reliable_control).
  std::vector<bool> evicted;
  std::vector<std::size_t> silent_rounds;

  // Crash injection and late join.
  std::vector<bool> joined;   // false only for a joiner before join_time
  bool sender_dead = false;   // crash_after_tx fired: the sender is gone
  std::size_t tx_count = 0;   // transmissions so far (crash countdown)

  NpStats stats;
};

NpSession::NpSession(const loss::LossModel& loss, std::size_t receivers,
                     std::size_t num_tgs, const NpConfig& config,
                     std::uint64_t seed)
    : impl_(std::make_unique<Impl>(
          loss, receivers, num_tgs, config, seed,
          std::vector<std::vector<std::vector<std::uint8_t>>>{})) {}

NpSession::NpSession(const loss::LossModel& loss, std::size_t receivers,
                     std::vector<std::vector<std::vector<std::uint8_t>>> data,
                     const NpConfig& config, std::uint64_t seed)
    : impl_(std::make_unique<Impl>(loss, receivers, data.size(), config, seed,
                                   std::move(data))) {}

NpSession::~NpSession() = default;

NpStats NpSession::run() { return impl_->run(); }

void NpSession::set_wire_tap(std::function<void(const fec::Packet&)> tap) {
  impl_->channel.set_wire_tap(std::move(tap));
}

const std::vector<std::vector<std::vector<std::uint8_t>>>&
NpSession::source_data() const {
  return impl_->source;
}

}  // namespace pbl::protocol
