// Protocol NP: the paper's hybrid-ARQ reliable multicast protocol
// (Section 5.1), implemented end-to-end on the discrete-event simulator.
//
// The sender multicasts the k data packets of each transmission group,
// then a POLL(i, k).  Receivers that cannot yet reconstruct TG i schedule
// a NAK(i, l) under slotting-and-damping (nak_suppression.hpp); NAKs are
// multicast, so one NAK per round ideally survives.  On NAK(i, l) the
// sender interrupts the current group, multicasts l parities of TG i
// followed by POLL(i, l), and resumes.  A TG is complete when a POLL's
// response window closes with no NAK.
//
// Unlike the idealised models, this runs the real RSE codec on real bytes
// and verifies the reconstruction, counts duplicate receptions, encode/
// decode operations, NAKs sent and suppressed, and completion time.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fec/fec_block.hpp"
#include "fec/rse_code.hpp"
#include "loss/loss_model.hpp"
#include "net/channel.hpp"
#include "protocol/nak_suppression.hpp"
#include "protocol/retry.hpp"
#include "sim/simulator.hpp"

namespace pbl::protocol {

/// "No receiver crashes" sentinel for NpConfig::crash_receiver.
inline constexpr std::size_t kNoCrashReceiver =
    static_cast<std::size_t>(-1);

/// "No late join" sentinel for NpConfig::join_receiver.
inline constexpr std::size_t kNoJoinReceiver = static_cast<std::size_t>(-1);

// kNoSenderCrash (the crash_after_tx sentinel) lives in protocol/retry.hpp,
// shared with the layered protocol.

/// Progress a restarted sender carries into its next incarnation
/// (recovered from a write-ahead journal; core/session_state.hpp).  In
/// the DES each incarnation is a fresh NpSession object while the real
/// receivers would have survived the sender's death, so the receivers'
/// decoded-TG bitmaps are threaded through explicitly as priors.
struct NpResume {
  /// This run's incarnation id, carried in every DATA/PARITY/POLL
  /// header; receivers reject packets from earlier incarnations.
  std::uint32_t incarnation = 0;
  /// What the receivers had seen before the restart (stale-packet
  /// filtering starts from here rather than from zero).
  std::uint32_t receiver_incarnation = 0;
  /// Sender progress: TGs confirmed complete in a prior life are never
  /// retransmitted — the sender resumes at the first incomplete TG.
  std::vector<bool> completed;
  /// Per-TG parities-sent high-water mark: a resumed TG serves FRESH
  /// parity indices, so repair packets receivers already hold are never
  /// wastefully re-multicast.
  std::vector<std::uint16_t> parities_sent;
  /// Receiver priors: decoded-TG bitmaps per receiver (may be empty =
  /// all receivers start cold).  A primed receiver answers POLLs for
  /// those TGs from its bitmap (ACK under reliable control, silence
  /// otherwise) instead of NAKing for content it already delivered.
  std::vector<std::vector<bool>> receiver_decoded;

  bool enabled() const noexcept {
    return incarnation > 0 || !completed.empty();
  }
};

struct NpConfig {
  std::size_t k = 20;          ///< data packets per TG
  std::size_t h = 100;         ///< parity budget per TG (n = k + h <= 255)
  std::size_t packet_len = 256;///< payload bytes per packet
  double delta = 0.001;        ///< packet send spacing [s]
  double slot = 0.005;         ///< Ts: NAK suppression slot size [s]
  double delay = 0.010;        ///< one-way propagation delay [s]
  bool pre_encode = false;     ///< compute all parities before sending
  bool lossless_control = true;

  /// Adversarial impairment of the DATA down-path (reorder, duplication,
  /// corruption, truncation, jitter, burst drops); disabled by default.
  /// The control knobs (impairment.control_*) additionally impair the
  /// NAK/POLL paths — see MulticastChannel::set_impairment.
  net::ImpairmentConfig impairment{};

  /// Control-plane reliability layer (docs/ROBUSTNESS.md).  When set,
  /// "silence after a POLL" no longer means completion: every receiver
  /// positively acknowledges each TG (an ACK is a NAK with count == 0,
  /// unicast to the sender), unanswered POLL rounds are re-polled under
  /// `retry`'s seeded exponential backoff, receivers whose NAKs go
  /// unanswered retransmit them, and receivers silent for
  /// retry.grace_rounds consecutive rounds are evicted instead of
  /// stalling the session.  NAK damping is disabled in this mode (a
  /// suppressed receiver is indistinguishable from a crashed one), so
  /// reliability is bought with more feedback traffic.  Every exit path
  /// is total: budget or deadline exhaustion ends the session with
  /// NpStats::report filled in, never a hang.  Off by default — the
  /// paper's lossless-feedback fast path stays byte-identical.
  bool reliable_control = false;
  RetryConfig retry{};

  /// Fault injection for liveness tests: receiver `crash_receiver` stops
  /// sending and receiving at sim time `crash_time` seconds
  /// (kNoCrashReceiver disables).
  std::size_t crash_receiver = kNoCrashReceiver;
  double crash_time = 0.0;

  /// Crash-recovery state for a restarted sender (default: fresh session).
  NpResume resume{};

  /// Write-ahead hooks: invoked synchronously the moment the sender's
  /// durable progress changes, so a journal (core/session_state.hpp) can
  /// record it BEFORE the crash that makes it matter.  Optional.
  std::function<void(std::size_t tg)> on_tg_completed;
  std::function<void(std::size_t tg, std::size_t parities_used)>
      on_parities_sent;

  /// Deterministic crash injection: the sender process "dies" after its
  /// Nth channel transmission (data, parity or poll — counted in emit
  /// order), falling silent mid-session exactly like a killed process:
  /// nothing further is sent, heard, or journaled.  kNoSenderCrash
  /// disables.  The session still runs to quiescence so surviving
  /// receivers' state can be harvested for the next incarnation.
  std::size_t crash_after_tx = kNoSenderCrash;

  /// Late join: receiver `join_receiver` attaches at sim time `join_time`
  /// having heard nothing before it.  On attach the sender reopens every
  /// TG the joiner is missing and serves it whole via parity rounds —
  /// one parity stream catches up the joiner while repairing other
  /// receivers' unrelated losses, never a per-receiver unicast replay.
  /// Requires reliable_control (the catch-up bookkeeping runs on ACKs).
  std::size_t join_receiver = kNoJoinReceiver;
  double join_time = 0.0;

  /// Parities sent proactively with each TG's data ("a" in Section 3.2):
  /// trades bandwidth for fewer feedback rounds and lower latency.
  std::size_t proactive = 0;
  /// Adapt `proactive` per TG from the losses the NAKs reveal: after each
  /// completed TG the sender re-plans a so that, at the estimated loss
  /// rate, a retransmission round is unlikely (adaptive hybrid ARQ; the
  /// paper's Section 4.1 discussion of measurement-based adaptation).
  bool adaptive = false;
  double adaptive_confidence = 0.9;  ///< target P(no NAK round) when adapting
};

struct NpStats {
  std::uint64_t data_sent = 0;
  std::uint64_t parity_sent = 0;       ///< reactive (NAK-triggered) parities
  std::uint64_t proactive_sent = 0;    ///< parities sent with the data
  double final_proactive = 0.0;        ///< `a` in use after the last TG
  std::uint64_t polls_sent = 0;
  std::uint64_t naks_sent = 0;
  std::uint64_t naks_suppressed = 0;
  std::uint64_t duplicate_receptions = 0;  ///< across all receivers
  std::uint64_t packet_deliveries = 0;     ///< data/parity receptions, all receivers
  std::uint64_t parities_encoded = 0;      ///< sender-side encode operations
  std::uint64_t packets_decoded = 0;       ///< receiver-side reconstructions
  std::uint64_t tgs_completed = 0;
  std::uint64_t tgs_failed = 0;            ///< parity budget exhausted
  double completion_time = 0.0;            ///< when the last receiver finished
  double mean_tg_latency = 0.0;            ///< mean time from a TG's first data
                                           ///< packet to its last receiver decoding
  double p95_tg_latency = 0.0;             ///< 95th percentile of the same
  bool all_delivered = false;              ///< every receiver got every byte intact
  double tx_per_packet = 0.0;              ///< (data+parity)/(k * num_tgs), E[M]
  net::ImpairmentStats impairment{};       ///< channel fault counters (zero when clean)

  // Reliable-control accounting (all zero unless reliable_control).
  std::uint64_t acks_sent = 0;      ///< per-receiver TG acknowledgements
  std::uint64_t acks_received = 0;  ///< ACKs that reached the sender
  std::uint64_t poll_retries = 0;   ///< re-POLLs after unconfirmed rounds
  std::uint64_t nak_retries = 0;    ///< receiver NAK retransmissions
  std::uint64_t evictions = 0;      ///< receivers evicted for silence
  /// Structured degradation outcome; filled on every exit path.
  PartialDeliveryReport report{};

  // Crash-recovery accounting.
  bool sender_crashed = false;        ///< crash_after_tx fired this run
  std::uint64_t stale_rejected = 0;   ///< packets dropped: dead incarnation
  std::uint64_t catch_up_polls = 0;   ///< POLLs reopening TGs (late join /
                                      ///< resume repair)
  std::uint64_t resumed_tgs_skipped = 0;  ///< TGs carried in complete
};

/// One sender, `receivers` receivers, `num_tgs` groups of random data —
/// or caller-supplied groups (for real file transfer, see
/// core/file_transfer.hpp).
class NpSession {
 public:
  NpSession(const loss::LossModel& loss, std::size_t receivers,
            std::size_t num_tgs, const NpConfig& config,
            std::uint64_t seed = 1);

  /// Transmits the given groups: data[i] must hold exactly config.k
  /// packets of config.packet_len bytes.
  NpSession(const loss::LossModel& loss, std::size_t receivers,
            std::vector<std::vector<std::vector<std::uint8_t>>> data,
            const NpConfig& config, std::uint64_t seed = 1);
  ~NpSession();

  NpSession(const NpSession&) = delete;
  NpSession& operator=(const NpSession&) = delete;

  /// Runs to quiescence and returns the collected statistics.
  NpStats run();

  /// Observes every packet the session puts on the wire, in order and
  /// before loss (net::MulticastChannel::set_wire_tap); install before
  /// run().  Used by the protocol-invariant tests.
  void set_wire_tap(std::function<void(const fec::Packet&)> tap);

  /// The data the sender transmitted (for external verification).
  const std::vector<std::vector<std::vector<std::uint8_t>>>& source_data() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace pbl::protocol
