// Protocol NP: the paper's hybrid-ARQ reliable multicast protocol
// (Section 5.1), implemented end-to-end on the discrete-event simulator.
//
// The sender multicasts the k data packets of each transmission group,
// then a POLL(i, k).  Receivers that cannot yet reconstruct TG i schedule
// a NAK(i, l) under slotting-and-damping (nak_suppression.hpp); NAKs are
// multicast, so one NAK per round ideally survives.  On NAK(i, l) the
// sender interrupts the current group, multicasts l parities of TG i
// followed by POLL(i, l), and resumes.  A TG is complete when a POLL's
// response window closes with no NAK.
//
// Unlike the idealised models, this runs the real RSE codec on real bytes
// and verifies the reconstruction, counts duplicate receptions, encode/
// decode operations, NAKs sent and suppressed, and completion time.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fec/fec_block.hpp"
#include "fec/rse_code.hpp"
#include "loss/loss_model.hpp"
#include "net/channel.hpp"
#include "protocol/nak_suppression.hpp"
#include "protocol/retry.hpp"
#include "sim/simulator.hpp"

namespace pbl::protocol {

/// "No receiver crashes" sentinel for NpConfig::crash_receiver.
inline constexpr std::size_t kNoCrashReceiver =
    static_cast<std::size_t>(-1);

struct NpConfig {
  std::size_t k = 20;          ///< data packets per TG
  std::size_t h = 100;         ///< parity budget per TG (n = k + h <= 255)
  std::size_t packet_len = 256;///< payload bytes per packet
  double delta = 0.001;        ///< packet send spacing [s]
  double slot = 0.005;         ///< Ts: NAK suppression slot size [s]
  double delay = 0.010;        ///< one-way propagation delay [s]
  bool pre_encode = false;     ///< compute all parities before sending
  bool lossless_control = true;

  /// Adversarial impairment of the DATA down-path (reorder, duplication,
  /// corruption, truncation, jitter, burst drops); disabled by default.
  /// The control knobs (impairment.control_*) additionally impair the
  /// NAK/POLL paths — see MulticastChannel::set_impairment.
  net::ImpairmentConfig impairment{};

  /// Control-plane reliability layer (docs/ROBUSTNESS.md).  When set,
  /// "silence after a POLL" no longer means completion: every receiver
  /// positively acknowledges each TG (an ACK is a NAK with count == 0,
  /// unicast to the sender), unanswered POLL rounds are re-polled under
  /// `retry`'s seeded exponential backoff, receivers whose NAKs go
  /// unanswered retransmit them, and receivers silent for
  /// retry.grace_rounds consecutive rounds are evicted instead of
  /// stalling the session.  NAK damping is disabled in this mode (a
  /// suppressed receiver is indistinguishable from a crashed one), so
  /// reliability is bought with more feedback traffic.  Every exit path
  /// is total: budget or deadline exhaustion ends the session with
  /// NpStats::report filled in, never a hang.  Off by default — the
  /// paper's lossless-feedback fast path stays byte-identical.
  bool reliable_control = false;
  RetryConfig retry{};

  /// Fault injection for liveness tests: receiver `crash_receiver` stops
  /// sending and receiving at sim time `crash_time` seconds
  /// (kNoCrashReceiver disables).
  std::size_t crash_receiver = kNoCrashReceiver;
  double crash_time = 0.0;

  /// Parities sent proactively with each TG's data ("a" in Section 3.2):
  /// trades bandwidth for fewer feedback rounds and lower latency.
  std::size_t proactive = 0;
  /// Adapt `proactive` per TG from the losses the NAKs reveal: after each
  /// completed TG the sender re-plans a so that, at the estimated loss
  /// rate, a retransmission round is unlikely (adaptive hybrid ARQ; the
  /// paper's Section 4.1 discussion of measurement-based adaptation).
  bool adaptive = false;
  double adaptive_confidence = 0.9;  ///< target P(no NAK round) when adapting
};

struct NpStats {
  std::uint64_t data_sent = 0;
  std::uint64_t parity_sent = 0;       ///< reactive (NAK-triggered) parities
  std::uint64_t proactive_sent = 0;    ///< parities sent with the data
  double final_proactive = 0.0;        ///< `a` in use after the last TG
  std::uint64_t polls_sent = 0;
  std::uint64_t naks_sent = 0;
  std::uint64_t naks_suppressed = 0;
  std::uint64_t duplicate_receptions = 0;  ///< across all receivers
  std::uint64_t packet_deliveries = 0;     ///< data/parity receptions, all receivers
  std::uint64_t parities_encoded = 0;      ///< sender-side encode operations
  std::uint64_t packets_decoded = 0;       ///< receiver-side reconstructions
  std::uint64_t tgs_completed = 0;
  std::uint64_t tgs_failed = 0;            ///< parity budget exhausted
  double completion_time = 0.0;            ///< when the last receiver finished
  double mean_tg_latency = 0.0;            ///< mean time from a TG's first data
                                           ///< packet to its last receiver decoding
  double p95_tg_latency = 0.0;             ///< 95th percentile of the same
  bool all_delivered = false;              ///< every receiver got every byte intact
  double tx_per_packet = 0.0;              ///< (data+parity)/(k * num_tgs), E[M]
  net::ImpairmentStats impairment{};       ///< channel fault counters (zero when clean)

  // Reliable-control accounting (all zero unless reliable_control).
  std::uint64_t acks_sent = 0;      ///< per-receiver TG acknowledgements
  std::uint64_t acks_received = 0;  ///< ACKs that reached the sender
  std::uint64_t poll_retries = 0;   ///< re-POLLs after unconfirmed rounds
  std::uint64_t nak_retries = 0;    ///< receiver NAK retransmissions
  std::uint64_t evictions = 0;      ///< receivers evicted for silence
  /// Structured degradation outcome; filled on every exit path.
  PartialDeliveryReport report{};
};

/// One sender, `receivers` receivers, `num_tgs` groups of random data —
/// or caller-supplied groups (for real file transfer, see
/// core/file_transfer.hpp).
class NpSession {
 public:
  NpSession(const loss::LossModel& loss, std::size_t receivers,
            std::size_t num_tgs, const NpConfig& config,
            std::uint64_t seed = 1);

  /// Transmits the given groups: data[i] must hold exactly config.k
  /// packets of config.packet_len bytes.
  NpSession(const loss::LossModel& loss, std::size_t receivers,
            std::vector<std::vector<std::vector<std::uint8_t>>> data,
            const NpConfig& config, std::uint64_t seed = 1);
  ~NpSession();

  NpSession(const NpSession&) = delete;
  NpSession& operator=(const NpSession&) = delete;

  /// Runs to quiescence and returns the collected statistics.
  NpStats run();

  /// Observes every packet the session puts on the wire, in order and
  /// before loss (net::MulticastChannel::set_wire_tap); install before
  /// run().  Used by the protocol-invariant tests.
  void set_wire_tap(std::function<void(const fec::Packet&)> tap);

  /// The data the sender transmitted (for external verification).
  const std::vector<std::vector<std::vector<std::uint8_t>>>& source_data() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace pbl::protocol
