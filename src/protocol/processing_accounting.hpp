// Bridges the DES protocol to the Fig. 17 processing model: maps the
// event counts a completed NpSession reports onto the per-operation costs
// of analysis::ProcessingCosts, yielding the session's total sender and
// per-receiver CPU time under the paper's cost model.  Comparing the
// per-packet quotient with Eqs. (13)-(16) validates the closed forms
// against the protocol they describe.
#pragma once

#include <cstddef>

#include "analysis/processing.hpp"
#include "protocol/np_protocol.hpp"

namespace pbl::protocol {

struct SessionCpuTime {
  double sender = 0.0;         ///< total sender CPU [s]
  double receiver_mean = 0.0;  ///< mean per-receiver CPU [s]

  /// Per-data-packet times, comparable to 1/EndHostRates::{sender,receiver}.
  double sender_per_packet = 0.0;
  double receiver_per_packet = 0.0;
};

/// Costs a finished session.  `k` and `num_tgs` must match the session's
/// configuration; `receivers` the population size.
inline SessionCpuTime np_session_cpu(const NpStats& stats,
                                     std::size_t receivers, std::size_t k,
                                     std::size_t num_tgs,
                                     const analysis::ProcessingCosts& c = {}) {
  SessionCpuTime t;
  const double kd = static_cast<double>(k);
  const auto packets_sent = static_cast<double>(
      stats.data_sent + stats.parity_sent + stats.proactive_sent);
  const auto encoded = static_cast<double>(stats.parities_encoded);
  const auto naks = static_cast<double>(stats.naks_sent);
  const double r = static_cast<double>(receivers);

  // Sender: encoding (k*ce per parity, Eq. 15), packet transmission,
  // NAK processing (control is lossless: every NAK arrives).
  t.sender = encoded * kd * c.ce + packets_sent * c.xp + naks * c.xn;

  // Receiver: packet reception, own NAKs sent, overheard NAKs, decoding
  // (k*cd per reconstructed packet, Eq. 16) — averaged over receivers.
  const double deliveries = static_cast<double>(stats.packet_deliveries);
  const double decoded = static_cast<double>(stats.packets_decoded);
  t.receiver_mean = (deliveries / r) * c.yp + (naks / r) * c.yn +
                    naks * ((r - 1.0) / r) * c.yn2 +
                    (decoded / r) * kd * c.cd;

  const double data_packets = kd * static_cast<double>(num_tgs);
  t.sender_per_packet = t.sender / data_packets;
  t.receiver_per_packet = t.receiver_mean / data_packets;
  return t;
}

}  // namespace pbl::protocol
