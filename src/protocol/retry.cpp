#include "protocol/retry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace pbl::protocol {

void RetryConfig::validate() const {
  if (initial_backoff <= 0.0)
    throw std::invalid_argument("RetryConfig: initial_backoff must be > 0");
  if (multiplier < 1.0)
    throw std::invalid_argument("RetryConfig: multiplier must be >= 1");
  if (max_backoff < initial_backoff)
    throw std::invalid_argument(
        "RetryConfig: max_backoff must be >= initial_backoff");
  if (jitter < 0.0 || jitter >= 1.0)
    throw std::invalid_argument("RetryConfig: jitter must be in [0, 1)");
  if (session_deadline < 0.0)
    throw std::invalid_argument("RetryConfig: session_deadline must be >= 0");
}

Backoff::Backoff(const RetryConfig& config, Rng rng)
    : cfg_(config), rng_(rng) {
  cfg_.validate();
}

double Backoff::next() {
  if (exhausted()) throw std::logic_error("Backoff: retry budget exhausted");
  const double base =
      std::min(cfg_.max_backoff,
               cfg_.initial_backoff *
                   std::pow(cfg_.multiplier,
                            static_cast<double>(attempts_)));
  ++attempts_;
  // Symmetric jitter desynchronises retries without changing the mean.
  return base * (1.0 + cfg_.jitter * (2.0 * rng_.uniform() - 1.0));
}

double Deadline::remaining(double now) const noexcept {
  if (!bounded()) return std::numeric_limits<double>::infinity();
  return std::max(0.0, expires_at() - now);
}

double retry_clock_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

namespace {
class ProcessSteadyClock final : public Clock {
 public:
  double now() const override { return retry_clock_now(); }
};
}  // namespace

const Clock& steady_clock() noexcept {
  static const ProcessSteadyClock clock;
  return clock;
}

double PartialDeliveryReport::completion_fraction() const noexcept {
  std::size_t total = 0;
  std::size_t got = 0;
  for (const auto& row : delivered) {
    total += row.size();
    for (const bool b : row) got += b ? 1 : 0;
  }
  if (total == 0) return complete ? 1.0 : 0.0;
  return static_cast<double>(got) / static_cast<double>(total);
}

std::string PartialDeliveryReport::summary() const {
  std::string s = complete ? "complete" : "partial";
  s += " (" + std::to_string(completion_fraction() * 100.0) + "% delivered";
  if (deadline_expired) s += ", deadline expired";
  if (overloaded) s += ", overloaded";
  if (evictions) s += ", " + std::to_string(evictions) + " evicted";
  if (quarantined) s += ", " + std::to_string(quarantined) + " quarantined";
  if (expelled) s += ", " + std::to_string(expelled) + " expelled";
  if (shed_frames) s += ", " + std::to_string(shed_frames) + " frames shed";
  if (units_failed) s += ", " + std::to_string(units_failed) + " units failed";
  s += ", " + std::to_string(poll_retries) + " poll retries, " +
       std::to_string(nak_retries) + " nak retries)";
  return s;
}

}  // namespace pbl::protocol
