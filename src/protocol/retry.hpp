// Control-plane reliability primitives: seeded exponential backoff with
// jitter, retry budgets, monotonic deadlines, and the structured
// PartialDeliveryReport every degraded session exit returns.
//
// The paper assumes NAKs and POLLs always arrive; these pieces are what
// the protocols need once that assumption is dropped (docs/ROBUSTNESS.md).
// Everything is deterministic: a Backoff draws its jitter from an explicit
// Rng substream, so a fixed seed reproduces the exact retry schedule —
// in simulation the delays feed sim::EventQueue, over UDP they feed
// wall-clock timeouts (retry_clock_now).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace pbl::protocol {

/// "Sender never crashes" sentinel for the protocols' crash_after_tx
/// fault-injection knobs (crash-tolerant sessions, docs/ROBUSTNESS.md).
inline constexpr std::size_t kNoSenderCrash = static_cast<std::size_t>(-1);

struct RetryConfig {
  double initial_backoff = 0.05;  ///< first retry delay [s]
  double multiplier = 2.0;        ///< geometric growth per retry
  double max_backoff = 0.4;      ///< delay ceiling [s]
  double jitter = 0.1;            ///< symmetric fraction: d *= 1 + j*(2u-1)
  std::size_t max_retries = 8;    ///< retry budget per unit (TG/block/NAK)
  std::size_t grace_rounds = 3;   ///< unanswered polls before eviction
  double session_deadline = 0.0;  ///< total session budget [s]; 0 = unbounded

  void validate() const;  ///< throws std::invalid_argument on nonsense
};

/// Deterministic jittered exponential backoff: delay i (0-based) is
/// min(max_backoff, initial * multiplier^i) * (1 + jitter * (2u - 1)),
/// u uniform in [0, 1) from the Rng handed in at construction.  The
/// schedule depends only on (config, rng state) — bit-reproducible.
class Backoff {
 public:
  Backoff() : Backoff(RetryConfig{}, Rng(1)) {}
  Backoff(const RetryConfig& config, Rng rng);

  /// True once the retry budget is spent; next() must not be called then.
  bool exhausted() const noexcept { return attempts_ >= cfg_.max_retries; }

  /// Delay before the next retry [s]; consumes one unit of budget.
  double next();

  std::size_t attempts() const noexcept { return attempts_; }
  void reset() noexcept { attempts_ = 0; }

 private:
  RetryConfig cfg_;
  Rng rng_;
  std::size_t attempts_ = 0;
};

/// Monotonic deadline on whatever clock the caller runs (sim time or
/// retry_clock_now()).  A budget <= 0 means unbounded.
class Deadline {
 public:
  Deadline() = default;
  Deadline(double start, double budget) : start_(start), budget_(budget) {}

  bool bounded() const noexcept { return budget_ > 0.0; }
  double expires_at() const noexcept { return start_ + budget_; }
  bool expired(double now) const noexcept {
    return bounded() && now >= expires_at();
  }
  /// Seconds left (clamped at 0); a huge value when unbounded.
  double remaining(double now) const noexcept;

 private:
  double start_ = 0.0;
  double budget_ = 0.0;
};

/// Wall-clock seconds on a monotonic clock (std::chrono::steady_clock),
/// for driving Deadline outside the simulator (net::UdpNpSender/Receiver).
double retry_clock_now();

/// Injectable time source.  Every wall-clock read a protocol component
/// makes — retry deadlines, poll windows, drain/idle timeouts — goes
/// through ONE Clock, so two timers in the same session can never skew
/// against each other (the old code mixed retry_clock_now() with raw
/// std::chrono::steady_clock reads), and tests can drive state machines
/// deterministically with a ManualClock instead of sleeping.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual double now() const = 0;
};

/// The process-wide monotonic clock (retry_clock_now under the hood).
/// Components take `const Clock*` defaulting to nullptr == this one.
const Clock& steady_clock() noexcept;

/// Hand-advanced clock for deterministic timer tests: time moves only
/// when the test says so.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(double start = 0.0) noexcept : t_(start) {}
  double now() const noexcept override { return t_; }
  void advance(double dt) noexcept { t_ += dt; }
  void set(double t) noexcept { t_ = t; }

 private:
  double t_;
};

/// Structured outcome of a session that may have degraded rather than
/// completed: who got what, who was evicted, and which budget ended it.
/// Every exit path of a reliable-control session is total and fills one
/// of these — budget exhaustion and deadline expiry are reported, never
/// thrown or spun on.
struct PartialDeliveryReport {
  bool complete = false;          ///< every receiver delivered every unit
  bool deadline_expired = false;  ///< the session Deadline ended the run
  /// delivered[r][u]: receiver r completed unit u (TG for NP/UDP,
  /// application packet for layered).
  std::vector<std::vector<bool>> delivered;
  std::vector<bool> evicted;      ///< receivers evicted for silence
  std::uint64_t evictions = 0;
  std::uint64_t units_failed = 0; ///< units whose retry/parity budget ran out
  std::uint64_t poll_retries = 0; ///< sender re-POLLs after silent rounds
  std::uint64_t nak_retries = 0;  ///< receiver NAK retransmissions

  // Overload outcomes (net/overload.hpp; zero/false on unhardened runs).
  std::uint64_t shed_frames = 0;  ///< staged frames dropped under pushback
  std::uint64_t quarantined = 0;  ///< members shifted to parity catch-up
  bool overloaded = false;        ///< ShedPolicy::kRefuse ended the run

  // Hostile-peer outcome (net/peer_guard.hpp; zero on unguarded runs).
  /// Members banished for hostile behaviour (PeerGuard ban).  An
  /// expelled member is exempt from the completeness requirement:
  /// `complete` means every NON-expelled receiver delivered every unit.
  std::uint64_t expelled = 0;

  /// Fraction of (receiver, unit) pairs delivered; 1.0 when complete.
  double completion_fraction() const noexcept;

  /// One-line human-readable summary for logs and test failure messages.
  std::string summary() const;
};

}  // namespace pbl::protocol
