#include "protocol/rounds.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "fec/interleaver.hpp"

namespace pbl::protocol {

IidTransmitter::IidTransmitter(const loss::LossModel& model,
                               std::size_t receivers, Rng rng) {
  if (receivers == 0)
    throw std::invalid_argument("IidTransmitter: need receivers >= 1");
  processes_.reserve(receivers);
  for (std::size_t r = 0; r < receivers; ++r)
    processes_.push_back(model.make_process(rng.split(r), r));
}

void IidTransmitter::transmit(double t, std::span<const char> active,
                              std::span<char> received) {
  if (active.size() != processes_.size() || received.size() != processes_.size())
    throw std::invalid_argument("IidTransmitter: span size mismatch");
  for (std::size_t r = 0; r < processes_.size(); ++r) {
    if (!active[r]) continue;
    if (!processes_[r]->lost(t)) received[r] = 1;
  }
}

TreeTransmitter::TreeTransmitter(const tree::MulticastTree& tree,
                                 double p_node, Rng rng)
    : tree_(&tree), p_node_(p_node), rng_(rng) {
  if (p_node < 0.0 || p_node >= 1.0)
    throw std::invalid_argument("TreeTransmitter: p_node in [0,1)");
}

void TreeTransmitter::transmit(double /*t*/, std::span<const char> active,
                               std::span<char> received) {
  tree_->multicast_once(p_node_, rng_, active, received);
}

namespace {

/// Shared bookkeeping for the per-TG Monte-Carlo loops.
struct Workspace {
  explicit Workspace(std::size_t receivers)
      : active(receivers, 0), received(receivers, 0) {}
  std::vector<char> active;
  std::vector<char> received;

  void clear_received() {
    std::fill(received.begin(), received.end(), char{0});
  }
};

void validate(const McConfig& cfg) {
  if (cfg.k < 1) throw std::invalid_argument("McConfig: need k >= 1");
  if (cfg.h < 0) throw std::invalid_argument("McConfig: need h >= 0");
  if (cfg.num_tgs < 1) throw std::invalid_argument("McConfig: need num_tgs >= 1");
  if (cfg.q_f < 0.0 || cfg.q_f >= 1.0)
    throw std::invalid_argument("McConfig: need q_f in [0, 1)");
  cfg.timing.validate();
}

/// Extra feedback exchanges forced by control-plane loss: each NAK/POLL
/// exchange is independently lost with probability q_f, and every lost
/// one costs a timeout gap before the retry (geometric).  With q_f = 0
/// the Rng is never touched.
std::uint64_t lost_feedback_rounds(double q_f, Rng& rng) {
  std::uint64_t extra = 0;
  while (q_f > 0.0 && rng.bernoulli(q_f)) ++extra;
  return extra;
}

/// Charges the inter-round feedback gap, inflated by any lost feedback
/// exchanges; returns the rounds the retries added.
std::uint64_t charge_feedback_gap(const McConfig& cfg, Rng& rng, double& t) {
  const std::uint64_t lost = lost_feedback_rounds(cfg.q_f, rng);
  t += cfg.timing.gap * static_cast<double>(1 + lost);
  return lost;
}

/// Appends one per-round feedback aggregate to cfg.nak_log when attached.
void log_nak(const McConfig& cfg, std::size_t value) {
  if (cfg.nak_log != nullptr)
    cfg.nak_log->push_back(static_cast<std::uint32_t>(value));
}

McResult finish(const RunningStats& tx_stats, const RunningStats& round_stats,
                const RunningStats& time_stats, std::uint64_t sent) {
  McResult res;
  res.mean_tx = tx_stats.mean();
  res.ci95 = tx_stats.ci95_halfwidth();
  res.mean_rounds = round_stats.mean();
  res.mean_time = time_stats.mean();
  res.packets_sent = sent;
  return res;
}

}  // namespace

McResult sim_nofec(PacketTransmitter& tx, const McConfig& cfg) {
  validate(cfg);
  const std::size_t R = tx.receivers();
  const std::size_t k = static_cast<std::size_t>(cfg.k);
  Workspace ws(R);
  // have[r * k + i]: receiver r holds packet i.
  std::vector<char> have(R * k);
  std::vector<std::size_t> miss_count(k);  // receivers missing packet i

  RunningStats tx_stats, round_stats, time_stats;
  std::uint64_t sent_total = 0;
  double t = 0.0;
  Rng fb_rng(cfg.seed ^ 0xfeedbaccULL);

  for (std::int64_t tg = 0; tg < cfg.num_tgs; ++tg) {
    const double tg_start = t;
    std::fill(have.begin(), have.end(), char{0});
    std::fill(miss_count.begin(), miss_count.end(), R);
    std::vector<std::size_t> pending(k);
    for (std::size_t i = 0; i < k; ++i) pending[i] = i;

    std::uint64_t sent = 0;
    std::uint64_t rounds = 0;
    while (!pending.empty()) {
      ++rounds;
      for (const std::size_t i : pending) {
        for (std::size_t r = 0; r < R; ++r) ws.active[r] = !have[r * k + i];
        ws.clear_received();
        tx.transmit(t, ws.active, ws.received);
        t += cfg.timing.delta;
        ++sent;
        for (std::size_t r = 0; r < R; ++r) {
          if (ws.received[r]) {
            have[r * k + i] = 1;
            --miss_count[i];
          }
        }
      }
      std::vector<std::size_t> next;
      for (const std::size_t i : pending)
        if (miss_count[i] > 0) next.push_back(i);
      pending = std::move(next);
      log_nak(cfg, pending.size());
      if (!pending.empty()) rounds += charge_feedback_gap(cfg, fb_rng, t);
    }
    sent_total += sent;
    tx_stats.add(static_cast<double>(sent) / static_cast<double>(k));
    round_stats.add(static_cast<double>(rounds));
    time_stats.add(t - tg_start);
    t += cfg.timing.gap;  // spacing before the next TG
  }
  return finish(tx_stats, round_stats, time_stats, sent_total);
}

McResult sim_layered(PacketTransmitter& tx, const McConfig& cfg) {
  validate(cfg);
  const std::size_t R = tx.receivers();
  const std::size_t k = static_cast<std::size_t>(cfg.k);
  const std::size_t n = k + static_cast<std::size_t>(cfg.h);
  Workspace ws(R);

  std::vector<char> have(R * k);          // originals held, per receiver
  std::vector<std::size_t> miss(R);       // originals still missing, per receiver
  std::vector<std::uint16_t> slots(R);    // block slots received this round
  std::vector<char> direct(R * k);        // originals received directly this round

  RunningStats tx_stats, round_stats, time_stats;
  std::uint64_t sent_total = 0;
  double t = 0.0;
  Rng fb_rng(cfg.seed ^ 0xfeedbaccULL);

  for (std::int64_t tg = 0; tg < cfg.num_tgs; ++tg) {
    const double tg_start = t;
    std::fill(have.begin(), have.end(), char{0});
    std::fill(miss.begin(), miss.end(), k);
    std::vector<char> pending(k, 1);  // originals carried by the next block
    std::size_t pending_count = k;

    double cost = 0.0;
    std::uint64_t rounds = 0;
    while (pending_count > 0) {
      ++rounds;
      // Cost attributed to this TG: each pending original is charged the
      // n/k overhead of the block that carries it (Eq. (3) accounting).
      cost += static_cast<double>(pending_count) * static_cast<double>(n) /
              static_cast<double>(k);

      for (std::size_t r = 0; r < R; ++r) ws.active[r] = miss[r] > 0;
      std::fill(slots.begin(), slots.end(), std::uint16_t{0});
      std::fill(direct.begin(), direct.end(), char{0});

      // The block has n slots: slot i < k carries original i (a fresh
      // packet of another group if i is not pending — it still counts
      // towards decodability); slots >= k carry the block's parities.
      for (std::size_t s = 0; s < n; ++s) {
        ws.clear_received();
        tx.transmit(t, ws.active, ws.received);
        t += cfg.timing.delta;
        sent_total += 1;
        for (std::size_t r = 0; r < R; ++r) {
          if (!ws.received[r]) continue;
          ++slots[r];
          if (s < k && pending[s] && !have[r * k + s]) direct[r * k + s] = 1;
        }
      }

      for (std::size_t r = 0; r < R; ++r) {
        if (miss[r] == 0) continue;
        if (slots[r] >= k) {
          // Block decodable: the receiver recovers every pending original.
          for (std::size_t i = 0; i < k; ++i) {
            if (pending[i] && !have[r * k + i]) {
              have[r * k + i] = 1;
              --miss[r];
            }
          }
        } else {
          for (std::size_t i = 0; i < k; ++i) {
            if (direct[r * k + i]) {
              have[r * k + i] = 1;
              --miss[r];
            }
          }
        }
      }

      // Originals still missing anywhere ride in the next block.
      std::fill(pending.begin(), pending.end(), char{0});
      pending_count = 0;
      for (std::size_t r = 0; r < R; ++r) {
        if (miss[r] == 0) continue;
        for (std::size_t i = 0; i < k; ++i) {
          if (!have[r * k + i] && !pending[i]) {
            pending[i] = 1;
            ++pending_count;
          }
        }
      }
      log_nak(cfg, pending_count);
      if (pending_count > 0) rounds += charge_feedback_gap(cfg, fb_rng, t);
    }
    tx_stats.add(cost / static_cast<double>(k));
    round_stats.add(static_cast<double>(rounds));
    time_stats.add(t - tg_start);
    t += cfg.timing.gap;
  }
  return finish(tx_stats, round_stats, time_stats, sent_total);
}


McResult sim_layered_interleaved(PacketTransmitter& tx, const McConfig& cfg,
                                 std::size_t depth) {
  validate(cfg);
  if (depth == 0)
    throw std::invalid_argument("sim_layered_interleaved: depth >= 1");
  const std::size_t R = tx.receivers();
  const std::size_t k = static_cast<std::size_t>(cfg.k);
  const std::size_t n = k + static_cast<std::size_t>(cfg.h);
  const fec::Interleaver interleaver(depth, n);
  Workspace ws(R);

  // Per-group receiver state, group-major.
  struct GroupState {
    std::vector<char> have;          // R * k originals held
    std::vector<std::size_t> miss;   // originals missing per receiver
    std::vector<std::uint16_t> slots;// block slots received this round
    std::vector<char> direct;        // R * k direct receptions this round
    std::vector<char> pending;       // originals in the next block
    std::size_t pending_count = 0;
    double cost = 0.0;
    std::uint64_t rounds = 0;
    double start_time = 0.0;
    bool finished = false;
  };
  std::vector<GroupState> groups(depth);
  for (auto& g : groups) {
    g.have.assign(R * k, 0);
    g.miss.assign(R, k);
    g.slots.assign(R, 0);
    g.direct.assign(R * k, 0);
    g.pending.assign(k, 1);
  }

  RunningStats tx_stats, round_stats, time_stats;
  std::uint64_t sent_total = 0;
  double t = 0.0;
  Rng fb_rng(cfg.seed ^ 0xfeedbaccULL);

  // Process whole interleaving windows of `depth` groups at a time.
  std::int64_t windows =
      (cfg.num_tgs + static_cast<std::int64_t>(depth) - 1) /
      static_cast<std::int64_t>(depth);
  for (std::int64_t w = 0; w < windows; ++w) {
    for (auto& g : groups) {
      std::fill(g.have.begin(), g.have.end(), char{0});
      std::fill(g.miss.begin(), g.miss.end(), k);
      std::fill(g.pending.begin(), g.pending.end(), char{1});
      g.pending_count = k;
      g.cost = 0.0;
      g.rounds = 0;
      g.start_time = t;
      g.finished = false;
    }

    std::size_t unfinished = depth;
    while (unfinished > 0) {
      // Round bookkeeping per still-active group.
      for (auto& g : groups) {
        if (g.finished) continue;
        ++g.rounds;
        g.cost += static_cast<double>(g.pending_count) *
                  static_cast<double>(n) / static_cast<double>(k);
        std::fill(g.slots.begin(), g.slots.end(), std::uint16_t{0});
        std::fill(g.direct.begin(), g.direct.end(), char{0});
      }

      // One interleaved window: slot s carries packet (gi, idx).
      for (std::size_t s = 0; s < interleaver.window(); ++s) {
        const auto [gi, idx] = interleaver.slot_to_packet(s);
        auto& g = groups[gi];
        if (g.finished) {
          // The slot is occupied by unrelated traffic; time still passes.
          t += cfg.timing.delta;
          continue;
        }
        for (std::size_t r = 0; r < R; ++r) ws.active[r] = g.miss[r] > 0;
        ws.clear_received();
        tx.transmit(t, ws.active, ws.received);
        t += cfg.timing.delta;
        sent_total += 1;
        for (std::size_t r = 0; r < R; ++r) {
          if (!ws.received[r]) continue;
          ++g.slots[r];
          if (idx < k && g.pending[idx] && !g.have[r * k + idx])
            g.direct[r * k + idx] = 1;
        }
      }

      // Block decode / bookkeeping, exactly as in sim_layered.
      for (auto& g : groups) {
        if (g.finished) continue;
        for (std::size_t r = 0; r < R; ++r) {
          if (g.miss[r] == 0) continue;
          if (g.slots[r] >= k) {
            for (std::size_t i = 0; i < k; ++i) {
              if (g.pending[i] && !g.have[r * k + i]) {
                g.have[r * k + i] = 1;
                --g.miss[r];
              }
            }
          } else {
            for (std::size_t i = 0; i < k; ++i) {
              if (g.direct[r * k + i]) {
                g.have[r * k + i] = 1;
                --g.miss[r];
              }
            }
          }
        }
        std::fill(g.pending.begin(), g.pending.end(), char{0});
        g.pending_count = 0;
        for (std::size_t r = 0; r < R; ++r) {
          if (g.miss[r] == 0) continue;
          for (std::size_t i = 0; i < k; ++i) {
            if (!g.have[r * k + i] && !g.pending[i]) {
              g.pending[i] = 1;
              ++g.pending_count;
            }
          }
        }
        if (g.pending_count == 0) {
          g.finished = true;
          --unfinished;
          tx_stats.add(g.cost / static_cast<double>(k));
          round_stats.add(static_cast<double>(g.rounds));
          time_stats.add(t - g.start_time);
        }
      }
      if (unfinished > 0) {
        // A lost exchange stalls the whole window, so every still-active
        // group pays the retry rounds.
        const std::uint64_t lost = charge_feedback_gap(cfg, fb_rng, t);
        if (lost > 0)
          for (auto& g : groups)
            if (!g.finished) g.rounds += lost;
      }
    }
    t += cfg.timing.gap;
  }
  return finish(tx_stats, round_stats, time_stats, sent_total);
}

McResult sim_integrated_naks(PacketTransmitter& tx, const McConfig& cfg) {
  validate(cfg);
  const std::size_t R = tx.receivers();
  const std::size_t k = static_cast<std::size_t>(cfg.k);
  const std::size_t a = static_cast<std::size_t>(cfg.h);  // proactive parities
  Workspace ws(R);
  std::vector<std::size_t> cnt(R);  // distinct block packets held

  RunningStats tx_stats, round_stats, time_stats;
  std::uint64_t sent_total = 0;
  double t = 0.0;
  Rng fb_rng(cfg.seed ^ 0xfeedbaccULL);

  for (std::int64_t tg = 0; tg < cfg.num_tgs; ++tg) {
    const double tg_start = t;
    std::fill(cnt.begin(), cnt.end(), std::size_t{0});
    std::uint64_t sent = 0;
    std::uint64_t rounds = 0;
    std::size_t burst = k + a;  // round 1: the TG plus a proactive parities
    while (true) {
      ++rounds;
      for (std::size_t s = 0; s < burst; ++s) {
        for (std::size_t r = 0; r < R; ++r) ws.active[r] = cnt[r] < k;
        ws.clear_received();
        tx.transmit(t, ws.active, ws.received);
        t += cfg.timing.delta;
        ++sent;
        for (std::size_t r = 0; r < R; ++r)
          if (ws.received[r]) ++cnt[r];
      }
      // Receiver feedback: the maximum number of packets anyone misses.
      std::size_t l = 0;
      for (std::size_t r = 0; r < R; ++r)
        l = std::max(l, k - std::min(cnt[r], k));
      log_nak(cfg, l);
      if (l == 0) break;
      burst = l;
      rounds += charge_feedback_gap(cfg, fb_rng, t);
    }
    sent_total += sent;
    tx_stats.add(static_cast<double>(sent) / static_cast<double>(k));
    round_stats.add(static_cast<double>(rounds));
    time_stats.add(t - tg_start);
    t += cfg.timing.gap;
  }
  return finish(tx_stats, round_stats, time_stats, sent_total);
}


McResult sim_integrated_finite(PacketTransmitter& tx, const McConfig& cfg) {
  validate(cfg);
  const std::size_t R = tx.receivers();
  const std::size_t k = static_cast<std::size_t>(cfg.k);
  const std::size_t h = static_cast<std::size_t>(cfg.h);
  Workspace ws(R);

  // Per-block receiver state.
  std::vector<char> slot_have(R * k);      // data slots received this block
  std::vector<std::size_t> cnt(R);         // total distinct packets received
  std::vector<char> have(R * k);           // ORIGINALS held across blocks
  std::vector<std::size_t> miss(R);        // originals missing per receiver

  RunningStats tx_stats, round_stats, time_stats;
  std::uint64_t sent_total = 0;
  double t = 0.0;
  Rng fb_rng(cfg.seed ^ 0xfeedbaccULL);

  for (std::int64_t tg = 0; tg < cfg.num_tgs; ++tg) {
    const double tg_start = t;
    std::fill(have.begin(), have.end(), char{0});
    std::fill(miss.begin(), miss.end(), k);
    std::vector<char> pending(k, 1);  // originals carried by the next block
    std::size_t pending_count = k;

    double cost = 0.0;
    std::uint64_t rounds = 0;
    while (pending_count > 0) {
      // ---- one FEC block: k data slots + up to h on-demand parities ----
      const double share = static_cast<double>(pending_count) /
                           static_cast<double>(k);
      std::fill(slot_have.begin(), slot_have.end(), char{0});
      std::fill(cnt.begin(), cnt.end(), std::size_t{0});
      // A receiver participates while it misses one of OUR originals and
      // cannot yet decode the block.
      const auto wants_block = [&](std::size_t r) {
        return miss[r] > 0 && cnt[r] < k;
      };

      // Round 1: the k data slots.
      ++rounds;
      for (std::size_t sidx = 0; sidx < k; ++sidx) {
        for (std::size_t r = 0; r < R; ++r) ws.active[r] = wants_block(r);
        ws.clear_received();
        tx.transmit(t, ws.active, ws.received);
        t += cfg.timing.delta;
        ++sent_total;
        cost += share;
        for (std::size_t r = 0; r < R; ++r) {
          if (!ws.received[r]) continue;
          ++cnt[r];
          slot_have[r * k + sidx] = 1;
        }
      }
      // NAK-driven parity rounds, bounded by the budget h.
      std::size_t parities_used = 0;
      while (true) {
        std::size_t l = 0;
        for (std::size_t r = 0; r < R; ++r)
          if (miss[r] > 0) l = std::max(l, k - std::min(cnt[r], k));
        log_nak(cfg, l);
        if (l == 0) break;
        l = std::min(l, h - parities_used);
        if (l == 0) break;  // budget exhausted
        rounds += charge_feedback_gap(cfg, fb_rng, t);
        ++rounds;
        for (std::size_t j = 0; j < l; ++j) {
          for (std::size_t r = 0; r < R; ++r) ws.active[r] = wants_block(r);
          ws.clear_received();
          tx.transmit(t, ws.active, ws.received);
          t += cfg.timing.delta;
          ++sent_total;
          cost += share;
          for (std::size_t r = 0; r < R; ++r)
            if (ws.received[r]) ++cnt[r];
        }
        parities_used += l;
      }

      // Harvest: decodable receivers recover every pending original;
      // others keep the data slots they caught directly.
      for (std::size_t r = 0; r < R; ++r) {
        if (miss[r] == 0) continue;
        if (cnt[r] >= k) {
          for (std::size_t i = 0; i < k; ++i) {
            if (pending[i] && !have[r * k + i]) {
              have[r * k + i] = 1;
              --miss[r];
            }
          }
        } else {
          for (std::size_t i = 0; i < k; ++i) {
            if (slot_have[r * k + i] && pending[i] && !have[r * k + i]) {
              have[r * k + i] = 1;
              --miss[r];
            }
          }
        }
      }
      std::fill(pending.begin(), pending.end(), char{0});
      pending_count = 0;
      for (std::size_t r = 0; r < R; ++r) {
        if (miss[r] == 0) continue;
        for (std::size_t i = 0; i < k; ++i) {
          if (!have[r * k + i] && !pending[i]) {
            pending[i] = 1;
            ++pending_count;
          }
        }
      }
      if (pending_count > 0) rounds += charge_feedback_gap(cfg, fb_rng, t);
    }
    tx_stats.add(cost / static_cast<double>(k));
    round_stats.add(static_cast<double>(rounds));
    time_stats.add(t - tg_start);
    t += cfg.timing.gap;
  }
  return finish(tx_stats, round_stats, time_stats, sent_total);
}

McResult sim_integrated_stream(PacketTransmitter& tx, const McConfig& cfg) {
  validate(cfg);
  const std::size_t R = tx.receivers();
  const std::size_t k = static_cast<std::size_t>(cfg.k);
  Workspace ws(R);
  std::vector<std::size_t> cnt(R);

  RunningStats tx_stats, round_stats, time_stats;
  std::uint64_t sent_total = 0;
  double t = 0.0;

  for (std::int64_t tg = 0; tg < cfg.num_tgs; ++tg) {
    const double tg_start = t;
    std::fill(cnt.begin(), cnt.end(), std::size_t{0});
    std::uint64_t sent = 0;
    std::size_t unfinished = R;
    while (unfinished > 0) {
      for (std::size_t r = 0; r < R; ++r) ws.active[r] = cnt[r] < k;
      ws.clear_received();
      tx.transmit(t, ws.active, ws.received);
      t += cfg.timing.delta;
      ++sent;
      for (std::size_t r = 0; r < R; ++r) {
        if (ws.received[r] && ++cnt[r] == k) --unfinished;
      }
    }
    sent_total += sent;
    tx_stats.add(static_cast<double>(sent) / static_cast<double>(k));
    round_stats.add(1.0);
    time_stats.add(t - tg_start);
    t += cfg.timing.gap;
  }
  return finish(tx_stats, round_stats, time_stats, sent_total);
}

}  // namespace pbl::protocol
