// Round-based Monte-Carlo simulators for the four loss-recovery schemes,
// generic over how packets reach receivers (i.i.d./burst processes or a
// lossy multicast tree).  These regenerate the paper's simulation figures:
// Fig. 11/12 (shared loss), Fig. 15/16 (burst loss), and cross-validate
// the closed forms of Section 3.
//
// The metric is the paper's E[M]: mean packet transmissions per data
// packet until every receiver can deliver it (network-bandwidth cost).
// For layered FEC each RM-layer (re)transmission is charged the n/k parity
// overhead of its FEC block, matching Eq. (3).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "loss/loss_model.hpp"
#include "protocol/timing.hpp"
#include "tree/multicast_tree.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace pbl::protocol {

/// How one packet transmission reaches the receiver population.
/// Implementations must tolerate non-decreasing transmit times.
class PacketTransmitter {
 public:
  virtual ~PacketTransmitter() = default;

  virtual std::size_t receivers() const = 0;

  /// Transmits one packet at absolute time `t`.  `active[r]` marks the
  /// receivers whose outcome matters; `received[r]` is set to 1 for every
  /// active receiver that gets the packet (entries of inactive receivers
  /// are left untouched).
  virtual void transmit(double t, std::span<const char> active,
                        std::span<char> received) = 0;
};

/// Spatially independent receivers, each with its own LossProcess (works
/// with Bernoulli, Gilbert and heterogeneous models).
class IidTransmitter final : public PacketTransmitter {
 public:
  IidTransmitter(const loss::LossModel& model, std::size_t receivers, Rng rng);
  std::size_t receivers() const override { return processes_.size(); }
  void transmit(double t, std::span<const char> active,
                std::span<char> received) override;

 private:
  std::vector<std::unique_ptr<loss::LossProcess>> processes_;
};

/// Transmission over a multicast tree with per-node loss (Section 4.1);
/// loss is spatially correlated between receivers sharing tree nodes.
class TreeTransmitter final : public PacketTransmitter {
 public:
  TreeTransmitter(const tree::MulticastTree& tree, double p_node, Rng rng);
  std::size_t receivers() const override { return tree_->num_leaves(); }
  void transmit(double t, std::span<const char> active,
                std::span<char> received) override;

 private:
  const tree::MulticastTree* tree_;
  double p_node_;
  Rng rng_;
};

struct McConfig {
  std::int64_t k = 7;        ///< transmission-group size
  std::int64_t h = 0;        ///< parities per FEC block (layered) / initial parities a (integrated)
  std::int64_t num_tgs = 200;///< transmission groups to sample
  Timing timing{};

  /// Probability that one feedback exchange (NAK/POLL round trip) is
  /// lost.  A lost exchange costs one extra timeout gap and one extra
  /// round before the retry succeeds (geometric), modelling the paper's
  /// lossless-feedback assumption being dropped (docs/ROBUSTNESS.md).
  /// q_f = 0 draws nothing, so lossless results stay byte-identical.
  double q_f = 0.0;
  std::uint64_t seed = 0x5eedf00dULL;  ///< feedback-loss stream seed

  /// Optional instrumentation: when non-null, every simulator appends its
  /// per-round feedback aggregate here — the pending-original count for
  /// sim_nofec / sim_layered, the NAK'd parity count l for the integrated
  /// schemes (the raw pre-budget value for sim_integrated_finite).  The
  /// batched engine (batch_rounds.hpp) appends at identical junctures, so
  /// equal logs mean equal round structure; the equivalence tests compare
  /// them.  sim_integrated_stream has no feedback and logs nothing.
  std::vector<std::uint32_t>* nak_log = nullptr;
};

struct McResult {
  double mean_tx = 0.0;     ///< estimate of E[M]
  double ci95 = 0.0;        ///< 95% confidence half-width on mean_tx
  double mean_rounds = 0.0; ///< mean transmission rounds per TG
  double mean_time = 0.0;   ///< mean TG completion time [s] (Fig. 13 timing)
  std::uint64_t packets_sent = 0;
};

/// Plain ARQ: every packet is multicast-retransmitted until all receivers
/// hold it; retransmissions of a packet are spaced delta + T.
McResult sim_nofec(PacketTransmitter& tx, const McConfig& cfg);

/// Layered FEC (Section 3.1): blocks of k data + h parities; receivers
/// that get >= k of n recover everything; lost originals keep their block
/// slot and ride in a fresh block next round (cost-shared n/k per packet).
McResult sim_layered(PacketTransmitter& tx, const McConfig& cfg);

/// Layered FEC with block interleaving (Section 4.2: "under interleaving
/// the sender spreads the transmission of a FEC block over an interval
/// that is longer than the loss burst length").  `depth` FEC blocks are
/// transmitted simultaneously with their slots interleaved (fec::
/// Interleaver order), so adjacent losses hit different blocks; depth = 1
/// reduces exactly to sim_layered.  Useful only under temporally
/// correlated loss — it exists to quantify how much interleaving repairs
/// layered FEC's Fig. 15 burst-loss collapse.
McResult sim_layered_interleaved(PacketTransmitter& tx, const McConfig& cfg,
                                 std::size_t depth);

/// Integrated FEC 2 / idealised protocol NP (Sections 3.2, 4.2): k data
/// (+ cfg.h initial parities) are sent, then per round the sender
/// multicasts max-over-receivers missing-count parity packets, rounds
/// spaced delta + T, until every receiver has k distinct packets.  The
/// parity supply is unlimited (the paper's n = infinity lower bound).
McResult sim_integrated_naks(PacketTransmitter& tx, const McConfig& cfg);

/// Integrated FEC with a FINITE parity budget (cfg.h = h): parities are
/// served on demand as in sim_integrated_naks, but when the block's h
/// parities are used up, the originals still missing anywhere join a new
/// transmission group (with other data) and the process repeats — the
/// protocol the corrected Fig. 6 formula (analysis::expected_tx_integrated)
/// models.  Cost is attributed per carried original, like sim_layered.
McResult sim_integrated_finite(PacketTransmitter& tx, const McConfig& cfg);

/// Integrated FEC 1 (Section 4.2): data then a continuous parity stream,
/// everything spaced delta with no feedback gaps; a receiver leaves the
/// group once it holds k packets; the sender stops when all have left.
McResult sim_integrated_stream(PacketTransmitter& tx, const McConfig& cfg);

}  // namespace pbl::protocol
