// Timing is a plain parameter struct (see timing.hpp); this translation
// unit anchors the library target.
#include "protocol/timing.hpp"
