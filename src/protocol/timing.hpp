// Transmission timing of the four recovery schemes (paper Fig. 13).
//
// Packets within a round are spaced delta = 1/lambda apart; a feedback/
// retransmission gap T separates a round from the next.  The paper's
// burst-loss experiments use delta = 40 ms (25 packets/s, Bolot's loaded
// Internet path) and T = 300 ms.
//
//   no FEC:          retransmissions of a packet spaced delta + T
//   layered FEC:     FEC blocks (n slots at delta) spaced delta + T
//   integrated FEC1: data then parities, all at delta; no feedback gaps
//   integrated FEC2: parity rounds separated by delta + T (interleaving)
#pragma once

#include <stdexcept>

namespace pbl::protocol {

struct Timing {
  double delta = 0.040;  ///< packet spacing within a round [s]
  double gap = 0.300;    ///< T: extra spacing between rounds [s]

  void validate() const {
    if (delta <= 0.0) throw std::invalid_argument("Timing: delta must be > 0");
    if (gap < 0.0) throw std::invalid_argument("Timing: gap must be >= 0");
  }
};

}  // namespace pbl::protocol
