#include "server/reactor.hpp"

#include <poll.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <system_error>

namespace pbl::server {

namespace {

Reactor::Backend resolve_backend(Reactor::Backend requested) {
  if (requested != Reactor::Backend::kAuto) return requested;
  if (const char* env = std::getenv("PBL_SERVER_BACKEND")) {
    if (std::strcmp(env, "poll") == 0) return Reactor::Backend::kPoll;
    if (std::strcmp(env, "epoll") == 0) return Reactor::Backend::kEpoll;
  }
#ifdef __linux__
  return Reactor::Backend::kEpoll;
#else
  return Reactor::Backend::kPoll;
#endif
}

}  // namespace

Reactor::Reactor(Backend backend, const protocol::Clock* clock)
    : backend_(resolve_backend(backend)),
      clock_(clock ? clock : &protocol::steady_clock()) {
#ifdef __linux__
  if (backend_ == Backend::kEpoll) {
    epoll_fd_ = ::epoll_create1(0);
    if (epoll_fd_ < 0)
      throw std::system_error(errno, std::generic_category(), "epoll_create1");
  }
#else
  if (backend_ == Backend::kEpoll)
    throw std::invalid_argument("Reactor: epoll backend requires Linux");
#endif
}

Reactor::~Reactor() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void Reactor::add_fd(int fd, std::function<void()> on_readable) {
  if (fd < 0) throw std::invalid_argument("Reactor::add_fd: bad fd");
  if (handlers_.count(fd))
    throw std::invalid_argument("Reactor::add_fd: fd already registered");
#ifdef __linux__
  if (backend_ == Backend::kEpoll) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0)
      throw std::system_error(errno, std::generic_category(), "epoll_ctl add");
  }
#endif
  handlers_.emplace(fd, std::move(on_readable));
}

void Reactor::remove_fd(int fd) {
  const auto it = handlers_.find(fd);
  if (it == handlers_.end()) return;
#ifdef __linux__
  if (backend_ == Backend::kEpoll)
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
#endif
  handlers_.erase(it);
}

Reactor::TimerId Reactor::add_timer(double when, std::function<void()> fn) {
  const TimerId id = next_timer_id_++;
  timer_fns_.emplace(id, std::move(fn));
  timer_heap_.push(TimerEntry{when, id});
  return id;
}

void Reactor::cancel_timer(TimerId id) {
  // Lazy cancellation: the heap entry stays and is skipped when popped.
  timer_fns_.erase(id);
}

double Reactor::next_timer_deadline() {
  while (!timer_heap_.empty() && !timer_fns_.count(timer_heap_.top().id))
    timer_heap_.pop();  // drop cancelled entries
  return timer_heap_.empty() ? std::numeric_limits<double>::infinity()
                             : timer_heap_.top().when;
}

bool Reactor::wait_ready(double wait_s, std::vector<int>& ready) {
  int timeout_ms;
  if (wait_s <= 0.0) {
    timeout_ms = 0;
  } else {
    // Ceil so a 0.4 ms deadline does not busy-spin as timeout 0.
    const double ms = std::ceil(wait_s * 1000.0);
    timeout_ms = ms > 86400000.0 ? 86400000 : static_cast<int>(ms);
  }

#ifdef __linux__
  if (backend_ == Backend::kEpoll) {
    epoll_event events[64];
    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return false;
      throw std::system_error(errno, std::generic_category(), "epoll_wait");
    }
    for (int i = 0; i < n; ++i) ready.push_back(events[i].data.fd);
    return n > 0;
  }
#endif

  std::vector<pollfd> pfds;
  pfds.reserve(handlers_.size());
  for (const auto& [fd, fn] : handlers_)
    pfds.push_back(pollfd{fd, POLLIN, 0});
  const int n =
      ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return false;
    throw std::system_error(errno, std::generic_category(), "poll");
  }
  for (const auto& pfd : pfds)
    if (pfd.revents & (POLLIN | POLLERR | POLLHUP)) ready.push_back(pfd.fd);
  return n > 0;
}

bool Reactor::poll_once(double max_wait_s) {
  // Bound the wait by the nearest live timer.
  double wait = max_wait_s;
  const double next = next_timer_deadline();
  if (std::isfinite(next)) {
    const double until = next - now();
    if (until < wait) wait = until;
  }
  if (wait < 0.0) wait = 0.0;

  std::vector<int> ready;
  wait_ready(wait, ready);

  bool ran = false;
  for (const int fd : ready) {
    // A previous handler in this batch may have removed this fd.
    const auto it = handlers_.find(fd);
    if (it == handlers_.end()) continue;
    it->second();  // may mutate handlers_/timers freely
    ran = true;
  }

  // Fire due timers (cancellation-aware).  A timer fn may arm new ones;
  // any armed with when <= t fires later in this same loop, but only
  // after the arming fn has returned — so a zero-delay timer is a safe
  // way to defer work off the current stack frame.
  const double t = now();
  while (!timer_heap_.empty() && timer_heap_.top().when <= t) {
    const TimerEntry e = timer_heap_.top();
    timer_heap_.pop();
    const auto it = timer_fns_.find(e.id);
    if (it == timer_fns_.end()) continue;  // cancelled
    auto fn = std::move(it->second);
    timer_fns_.erase(it);
    fn();
    ran = true;
  }
  return ran;
}

void Reactor::run() {
  stopped_ = false;
  while (!stopped_) poll_once(60.0);
}

}  // namespace pbl::server
