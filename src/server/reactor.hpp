// Single-threaded reactor event loop for the multicast server: readable
// file descriptors plus a monotone timer heap, multiplexed through epoll
// (Linux) with a portable poll(2) fallback.
//
// One thread owns one Reactor.  Handlers run inline on that thread, so
// driver state machines need no locks; a handler may freely add or
// remove fds and timers — including its own — during dispatch.  Time
// comes from an injected protocol::Clock, the same clock every session
// deadline reads (udp_np's unified-clock contract), so a test can pump
// the loop with a ManualClock and poll_once(0) instead of sleeping.
//
// The backend is chosen at construction: Backend::kAuto resolves to
// epoll when compiled on Linux, unless PBL_SERVER_BACKEND=poll in the
// environment forces the fallback — which is exactly how CI runs the
// server suites under both multiplexers on one machine.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "protocol/retry.hpp"

namespace pbl::server {

class Reactor {
 public:
  enum class Backend { kAuto, kEpoll, kPoll };
  using TimerId = std::uint64_t;

  explicit Reactor(Backend backend = Backend::kAuto,
                   const protocol::Clock* clock = nullptr);
  ~Reactor();
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// The backend actually in use (never kAuto).
  Backend backend() const noexcept { return backend_; }
  double now() const { return clock_->now(); }
  const protocol::Clock& clock() const noexcept { return *clock_; }

  /// Registers `fd` for readability; `on_readable` runs on the loop
  /// thread each time it becomes ready.  One handler per fd.
  void add_fd(int fd, std::function<void()> on_readable);
  void remove_fd(int fd);

  /// One-shot timer at absolute clock time `when` (clock().now() units).
  TimerId add_timer(double when, std::function<void()> fn);
  void cancel_timer(TimerId id);

  /// Runs until stop().  With no fds and no timers the loop blocks in
  /// short waits, so an embedded caller should stop() from a handler.
  void run();
  /// One wait-dispatch round, blocking at most `max_wait_s` (0 = only
  /// what is ready now).  Returns true if any handler or timer ran.
  bool poll_once(double max_wait_s);
  void stop() noexcept { stopped_ = true; }
  bool stopped() const noexcept { return stopped_; }

  std::size_t fd_count() const noexcept { return handlers_.size(); }
  std::size_t timer_count() const noexcept { return timer_fns_.size(); }

 private:
  struct TimerEntry {
    double when;
    TimerId id;
    bool operator>(const TimerEntry& o) const {
      return when > o.when || (when == o.when && id > o.id);
    }
  };

  bool wait_ready(double wait_s, std::vector<int>& ready);
  /// Earliest live timer deadline, or +inf.
  double next_timer_deadline();

  Backend backend_ = Backend::kPoll;
  const protocol::Clock* clock_;
  int epoll_fd_ = -1;
  bool stopped_ = false;
  std::unordered_map<int, std::function<void()>> handlers_;
  std::unordered_map<TimerId, std::function<void()>> timer_fns_;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>,
                      std::greater<TimerEntry>>
      timer_heap_;
  TimerId next_timer_id_ = 1;
};

}  // namespace pbl::server
