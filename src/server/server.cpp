#include "server/server.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace pbl::server {

namespace {

// SIGTERM/SIGINT land here; the handler may only touch async-signal-safe
// state, so it writes one byte into a pipe the reactor watches.
int g_signal_pipe_write = -1;

extern "C" void pbl_server_signal_handler(int) {
  if (g_signal_pipe_write >= 0) {
    const char byte = 1;
    [[maybe_unused]] const auto n = ::write(g_signal_pipe_write, &byte, 1);
  }
}

const char* end_reason_name(net::UdpNpEndReason reason) {
  switch (reason) {
    case net::UdpNpEndReason::kEndOfSession: return "end_of_session";
    case net::UdpNpEndReason::kDrainTimeout: return "drain_timeout";
    case net::UdpNpEndReason::kMidSessionSilence: return "mid_session_silence";
    case net::UdpNpEndReason::kCrashed: return "crashed";
  }
  return "none";
}

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << text;
  if (!out) throw std::runtime_error("short write to " + path);
}

}  // namespace

std::vector<obs::MetricDef> MulticastServer::server_metric_defs() {
  using K = obs::MetricKind;
  return {
      {"server_state", K::kString, "lifecycle state of the server process",
       {}, {"starting", "running", "draining", "stopped"}},
      {"sessions_admitted", K::kCounter,
       "sessions accepted by admission control", {}, {}},
      {"sessions_refused", K::kCounter,
       "submissions refused (at max_sessions or draining)", {}, {}},
      {"sessions_resumed", K::kCounter,
       "sessions recovered from write-ahead journals", {}, {}},
      {"sessions_completed", K::kCounter,
       "sessions finished with full delivery", {}, {}},
      {"sessions_failed", K::kCounter,
       "sessions finished degraded (evictions, budgets, crash)", {}, {}},
      {"sessions_drained", K::kCounter,
       "sessions force-stopped and journaled at drain", {}, {}},
      {"signals_received", K::kCounter, "SIGTERM/SIGINT deliveries", {}, {}},
      {"snapshots_written", K::kCounter,
       "metrics snapshots emitted (including this one)", {}, {}},
      {"total_data_sent", K::kCounter, "DATA packets multicast, all sessions",
       {}, {}},
      {"total_parity_sent", K::kCounter,
       "PARITY packets multicast, all sessions", {}, {}},
      {"total_polls_sent", K::kCounter, "POLL rounds, all sessions", {}, {}},
      {"total_naks_received", K::kCounter, "NAKs heard, all sessions", {}, {}},
      {"total_acks_received", K::kCounter, "ACKs heard, all sessions", {}, {}},
      {"total_poll_retries", K::kCounter,
       "sender re-POLLs after silent rounds, all sessions", {}, {}},
      {"total_nak_retries", K::kCounter,
       "receiver NAK retransmissions, all sessions", {}, {}},
      {"total_evictions", K::kCounter,
       "members evicted for silence, all sessions", {}, {}},
      {"total_tgs_completed", K::kCounter,
       "transmission groups confirmed complete, all sessions", {}, {}},
      {"total_tgs_skipped", K::kCounter,
       "resumed TGs never retransmitted, all sessions", {}, {}},
      {"total_stale_rejected", K::kCounter,
       "dead-incarnation packets dropped, all sessions", {}, {}},
      {"total_redelivered_prior", K::kCounter,
       "exactly-once violations: packets for journal-confirmed TGs",
       {}, {}},
      {"total_payload_mismatches", K::kCounter,
       "decoded TGs that failed end-to-end byte verification", {}, {}},
      {"would_block_total", K::kCounter,
       "kernel send-buffer pushbacks absorbed, all sessions", {}, {}},
      {"total_arena_deferrals", K::kCounter,
       "bursts deferred on packet-arena exhaustion, all sessions", {}, {}},
      {"total_shed_frames", K::kCounter,
       "frames shed under sustained overload, all sessions", {}, {}},
      {"total_naks_suppressed", K::kCounter,
       "NAKs suppressed (slotting or feedback budget), all sessions", {}, {}},
      {"total_members_quarantined", K::kCounter,
       "slow receivers moved to parity-only catch-up, all sessions", {}, {}},
      {"total_peer_rejected", K::kCounter,
       "hostile datagrams dropped before protocol state, all sessions",
       {}, {}},
      {"total_peer_greylisted", K::kCounter,
       "peer greylist episodes, all sessions", {}, {}},
      {"total_peer_banned", K::kCounter, "peer ban episodes, all sessions",
       {}, {}},
      {"total_feedback_addr_mismatch", K::kCounter,
       "feedback whose claimed identity contradicted its source, all sessions",
       {}, {}},
      {"total_frame_resyncs", K::kCounter,
       "byte-level resync slides while salvaging datagrams, all sessions",
       {}, {}},
      {"total_frames_skipped", K::kCounter,
       "unparseable frames dropped on the receive path, all sessions",
       {}, {}},
      {"fault_injected_send", K::kCounter,
       "injected send-syscall failures absorbed, all sessions", {}, {}},
      {"fault_injected_journal", K::kCounter,
       "injected journal write failures absorbed, all sessions", {}, {}},
      {"fault_injected_socket", K::kCounter,
       "injected socket-creation failures (admissions refused)", {}, {}},
      {"sessions_active", K::kGauge, "sessions currently on the reactor", {},
       {}},
      {"fds_registered", K::kGauge, "descriptors registered with the reactor",
       {}, {}},
      {"timers_armed", K::kGauge, "live reactor timers", {}, {}},
      {"uptime_seconds", K::kGauge, "seconds since server construction", {},
       {}},
      {"journal_bytes_total", K::kGauge,
       "bytes across all active session journals", {}, {}},
      {"session_duration_seconds", K::kHistogram,
       "wall-clock lifetime of finalized sessions",
       {0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0}, {}},
      {"session_tx_per_packet", K::kHistogram,
       "transmissions per data packet of finalized sessions",
       {1.0, 1.05, 1.1, 1.25, 1.5, 2.0, 3.0, 5.0}, {}},
  };
}

std::vector<obs::MetricDef> MulticastServer::session_metric_defs() {
  using K = obs::MetricKind;
  return {
      {"state", K::kString, "session lifecycle state", {},
       {"active", "completed", "failed", "drained"}},
      {"end_reason", K::kString,
       "what ended the receivers' runs (worst across members)", {},
       {"none", "end_of_session", "drain_timeout", "mid_session_silence",
        "crashed"}},
      {"resumed", K::kCounter, "1 when recovered from a journal", {}, {}},
      {"data_sent", K::kCounter, "DATA packets multicast", {}, {}},
      {"parity_sent", K::kCounter, "PARITY packets multicast", {}, {}},
      {"polls_sent", K::kCounter, "POLL rounds sent", {}, {}},
      {"naks_received", K::kCounter, "NAKs heard by the sender", {}, {}},
      {"acks_received", K::kCounter, "ACKs heard by the sender", {}, {}},
      {"poll_retries", K::kCounter, "re-POLLs after silent rounds", {}, {}},
      {"evictions", K::kCounter, "members evicted for silence", {}, {}},
      {"tgs_completed", K::kCounter, "TGs confirmed complete this life", {},
       {}},
      {"tgs_skipped", K::kCounter, "TGs skipped as complete in a prior life",
       {}, {}},
      {"tgs_unconfirmed", K::kCounter, "TGs whose re-POLL budget ran out", {},
       {}},
      {"tgs_exhausted", K::kCounter, "TGs whose parity budget ran out", {},
       {}},
      {"would_block", K::kCounter,
       "kernel send-buffer pushbacks absorbed by the sender", {}, {}},
      {"arena_deferrals", K::kCounter,
       "bursts deferred on packet-arena exhaustion", {}, {}},
      {"shed_frames", K::kCounter, "frames shed under sustained overload", {},
       {}},
      {"naks_suppressed", K::kCounter,
       "NAKs suppressed by slotting or the sender feedback budget", {}, {}},
      {"members_quarantined", K::kCounter,
       "slow receivers moved to parity-only catch-up", {}, {}},
      {"peer_rejected", K::kCounter,
       "hostile datagrams dropped before protocol state (guard rejections "
       "plus receiver-side foreign-source and auth drops)", {}, {}},
      {"peer_greylisted", K::kCounter,
       "greylist episodes pronounced by the peer guard", {}, {}},
      {"peer_banned", K::kCounter, "ban episodes pronounced by the peer guard",
       {}, {}},
      {"members_expelled", K::kCounter,
       "banned members exempted from the completeness requirement", {}, {}},
      {"feedback_addr_mismatch", K::kCounter,
       "feedback whose claimed identity contradicted its kernel-reported "
       "source", {}, {}},
      {"frame_resyncs", K::kCounter,
       "byte-level resync slides while salvaging malformed datagrams", {}, {}},
      {"frames_skipped", K::kCounter,
       "unparseable frames dropped on the receive path", {}, {}},
      {"receiver_naks_sent", K::kCounter, "NAKs sent across all members", {},
       {}},
      {"receiver_nak_retries", K::kCounter,
       "NAK retransmissions across all members", {}, {}},
      {"receiver_duplicates", K::kCounter,
       "redundant DATA/PARITY receptions across all members", {}, {}},
      {"receiver_stale_rejected", K::kCounter,
       "dead-incarnation packets dropped across all members", {}, {}},
      {"redelivered_prior", K::kCounter,
       "exactly-once violations across all members", {}, {}},
      {"payload_mismatches", K::kCounter,
       "decoded TGs failing byte verification across all members", {}, {}},
      {"receivers", K::kGauge, "members in the group", {}, {}},
      {"receivers_finished", K::kGauge, "members whose run has ended", {}, {}},
      {"tgs_done_min", K::kGauge, "fewest TGs decoded by any member", {}, {}},
      {"journal_bytes", K::kGauge, "write-ahead journal size on disk", {}, {}},
      {"duration_seconds", K::kGauge, "seconds since session admission", {},
       {}},
  };
}

std::string MulticastServer::schema_document() {
  return obs::metrics_schema_document(server_metric_defs(),
                                      session_metric_defs());
}

MulticastServer::MulticastServer(Reactor& reactor, ServerConfig config)
    : reactor_(reactor), cfg_(std::move(config)),
      server_metrics_(server_metric_defs()) {
  if (!cfg_.np.clock) cfg_.np.clock = &reactor_.clock();
  started_at_ = reactor_.now();
  server_metrics_.set_string("server_state", "running");
  schedule_snapshot_timer();
}

MulticastServer::~MulticastServer() {
  if (drain_timer_armed_) reactor_.cancel_timer(drain_timer_);
  if (snapshot_timer_armed_) reactor_.cancel_timer(snapshot_timer_);
  if (signal_pipe_read_ >= 0) {
    reactor_.remove_fd(signal_pipe_read_);
    ::close(signal_pipe_read_);
    if (g_signal_pipe_write >= 0) {
      ::close(g_signal_pipe_write);
      g_signal_pipe_write = -1;
    }
  }
}

std::string MulticastServer::journal_path(std::uint64_t id) const {
  return cfg_.journal_dir + "/session_" + std::to_string(id) + ".journal";
}

std::string MulticastServer::receiver_state_path(std::uint64_t id,
                                                 std::size_t r) const {
  return cfg_.journal_dir + "/recv_" + std::to_string(id) + "_" +
         std::to_string(r) + ".state";
}

bool MulticastServer::submit(SessionSpec spec) {
  return admit(std::move(spec), /*resuming=*/false);
}

bool MulticastServer::admit(SessionSpec spec, bool resuming) {
  if (stopped_ || draining_ || active_count_ >= cfg_.max_sessions ||
      sessions_.count(spec.id)) {
    ++refused_;
    server_metrics_.inc("sessions_refused");
    return false;
  }
  if (spec.groups.empty())
    throw std::invalid_argument("MulticastServer: session needs >= 1 TG");
  if (spec.receivers == 0)
    throw std::invalid_argument("MulticastServer: session needs >= 1 receiver");
  for (const auto& tg : spec.groups)
    if (tg.size() != cfg_.np.k)
      throw std::invalid_argument("MulticastServer: each TG needs k packets");

  auto session = std::make_unique<Session>(session_metric_defs());
  Session& s = *session;
  s.id = spec.id;
  s.spec = std::move(spec);
  s.started_at = reactor_.now();
  s.resumed = resuming;
  const std::uint64_t id = s.id;
  const std::size_t num_tgs = s.spec.groups.size();

  net::UdpNpConfig np = cfg_.np;
  np.seed = s.spec.seed;
  // Session auth keys are minted at admission, deterministically from
  // (seed, id): a resumed life derives the SAME key, so receivers that
  // survived the crash keep verifying the new sender incarnation.
  if (np.guard.auth && np.guard.auth_key == 0)
    np.guard.auth_key = net::siphash24(s.spec.seed, id, {});

  // Crash tolerance: open (or recover) this session's write-ahead
  // journal before a single packet moves.  SessionJournal bumps and
  // journals the incarnation itself on resume.
  std::vector<std::vector<bool>> recv_resume(s.spec.receivers);
  std::vector<std::uint32_t> recv_inc(s.spec.receivers, 0);
  if (!cfg_.journal_dir.empty()) {
    core::SenderSessionState fresh;
    fresh.session_id = id;
    fresh.k = static_cast<std::uint32_t>(np.k);
    fresh.h = static_cast<std::uint32_t>(np.h);
    fresh.packet_len = static_cast<std::uint32_t>(np.packet_len);
    fresh.num_tgs = static_cast<std::uint32_t>(num_tgs);
    fresh.completed.assign(num_tgs, false);
    fresh.parities_sent.assign(num_tgs, 0);
    core::SessionJournal::Options jopt;
    jopt.checkpoint_interval = cfg_.journal_checkpoint_interval;
    jopt.sync_every = cfg_.journal_sync_every;
    s.journal = std::make_unique<core::SessionJournal>(journal_path(id), fresh,
                                                       jopt);
    const core::SenderSessionState& st = s.journal->state();
    np.incarnation = st.incarnation;
    if (s.journal->resumed()) {
      np.resume_completed = st.completed;
      np.resume_parities = st.parities_sent;
      for (std::size_t r = 0; r < s.spec.receivers; ++r) {
        if (auto rs =
                core::load_receiver_state_file(receiver_state_path(id, r))) {
          if (rs->num_tgs == num_tgs) {
            recv_resume[r] = rs->decoded;
            recv_inc[r] = rs->incarnation;
          }
        }
      }
    }
    core::SessionJournal* journal = s.journal.get();
    np.on_tg_completed = [journal](std::size_t tg) {
      journal->record_tg_completed(tg);
    };
    np.on_parities_sent = [journal](std::size_t tg, std::size_t high_water) {
      journal->record_parities_sent(tg, high_water);
    };
    if (cfg_.faults.journal_fail_every > 0)
      s.journal->journal().inject_write_failure(cfg_.faults.journal_fail_every);
  }

  // Socket creation can fail (fd limit) — for real or by injection.  An
  // exhausted descriptor table refuses the admission; it never crashes
  // the server or strands a half-built session.
  auto make_socket = [this] {
    ++sockets_created_;
    if (cfg_.faults.socket_fail_nth > 0 &&
        sockets_created_ == cfg_.faults.socket_fail_nth) {
      ++fault_injected_socket_;
      server_metrics_.inc("fault_injected_socket");
      throw std::system_error(EMFILE, std::generic_category(),
                              "socket (injected fd limit)");
    }
    return net::UdpSocket();  // ephemeral loopback port
  };
  std::optional<net::UdpSocket> sender_socket;
  std::vector<net::UdpSocket> receiver_sockets;
  net::UdpGroup group;
  try {
    sender_socket.emplace(make_socket());
    for (std::size_t r = 0; r < s.spec.receivers; ++r) {
      receiver_sockets.push_back(make_socket());
      group.add_member(receiver_sockets.back().port());
    }
  } catch (const std::system_error&) {
    s.journal.reset();
    if (!resuming) remove_session_files(s);  // fresh journal: nothing to keep
    ++refused_;
    server_metrics_.inc("sessions_refused");
    return false;
  }
  const std::uint16_t sender_port = sender_socket->port();

  // Byzantine injection: the adversary binds its own socket and joins
  // the group as a full member — the sender multicasts to it, tracks it,
  // and owes it completeness until the guard bans (expels) it.  It is
  // NOT in `receivers`, so honest-side accounting is untouched.
  if (cfg_.hostile.enabled) {
    net::AdversaryConfig ac;
    if (!net::parse_adversary_profile(cfg_.hostile.profile, ac.profile))
      throw std::invalid_argument("MulticastServer: unknown hostile profile " +
                                  cfg_.hostile.profile);
    ac.sender_port = sender_port;
    ac.victims = group.members();  // honest members only, joined so far
    ac.rate = cfg_.hostile.rate;
    ac.seed = s.spec.seed ^ (id * 0xAD5EC0DEull) ^ 0xBADF00Dull;
    ac.k = np.k;
    ac.num_tgs = num_tgs;
    ac.auth = np.guard.auth;
    ac.auth_key = np.guard.auth_key;
    ac.incarnation = static_cast<std::uint8_t>(np.incarnation);
    s.adversary = std::make_unique<net::AdversaryPeer>(std::move(ac));
    group.add_member(s.adversary->port());
  }

  if (cfg_.faults.send_eagain_every > 0)
    sender_socket->inject_send_errno_every(EAGAIN, cfg_.faults.send_eagain_every,
                                           cfg_.faults.send_eagain_burst);

  for (std::size_t r = 0; r < s.spec.receivers; ++r) {
    ReceiverSessionDriver::Options opt;
    opt.idle_timeout = cfg_.receiver_idle_timeout;
    opt.data_loss = s.spec.data_loss;
    opt.rng = Rng(s.spec.seed ^ (id * 0x9E3779B97F4A7C15ull))
                  .split(0xA000 + r);
    opt.impairment = s.spec.impairment;
    opt.resume_decoded = std::move(recv_resume[r]);
    opt.resume_confirmed = np.resume_completed;
    opt.resume_incarnation = recv_inc[r];
    opt.expected = &s.spec.groups;
    s.receivers.push_back(std::make_unique<ReceiverSessionDriver>(
        reactor_, std::move(receiver_sockets[r]), sender_port, num_tgs, np,
        std::move(opt), [this, id] {
          Session& owner = *sessions_.at(id);
          ++owner.receivers_finished;
          maybe_finish_session(id);
        }));
  }
  s.sender = std::make_unique<SenderSessionDriver>(
      reactor_, std::move(*sender_socket), std::move(group), np, s.spec.groups,
      [this, id] {
        sessions_.at(id)->sender_finished = true;
        maybe_finish_session(id);
      });

  s.metrics.set_string("state", "active");
  s.metrics.set_string("end_reason", "none");
  s.metrics.set_counter("resumed", resuming ? 1 : 0);
  s.metrics.set_gauge("receivers", static_cast<double>(s.spec.receivers));

  sessions_.emplace(id, std::move(session));
  ++active_count_;
  ++admitted_;
  if (resuming) ++resumed_;
  server_metrics_.inc("sessions_admitted");
  if (resuming) server_metrics_.inc("sessions_resumed");
  server_metrics_.set_gauge("sessions_active",
                            static_cast<double>(active_count_));

  Session& started = *sessions_.at(id);
  for (auto& r : started.receivers) r->start();
  started.sender->start();
  if (started.adversary) started.adversary->start();
  return true;
}

std::size_t MulticastServer::resume_journaled_sessions(
    const ResumeProvider& provider) {
  if (cfg_.journal_dir.empty()) return 0;
  std::size_t resumed = 0;
  for (const auto& path : core::list_session_journals(cfg_.journal_dir)) {
    const auto state = core::peek_session_journal(path);
    if (!state) continue;
    if (state->all_complete()) {
      // The prior life finished every TG but was stopped before it could
      // clean up: the session IS complete — bookkeep it, no re-run.
      ++completed_;
      server_metrics_.inc("sessions_completed");
      std::error_code ec;
      std::filesystem::remove(path, ec);
      for (std::size_t r = 0; r < 1024; ++r) {
        const std::string rp = receiver_state_path(state->session_id, r);
        if (!std::filesystem::remove(rp, ec)) break;
      }
      continue;
    }
    auto spec = provider(*state);
    if (!spec) continue;
    spec->id = state->session_id;
    if (admit(std::move(*spec), /*resuming=*/true)) ++resumed;
  }
  return resumed;
}

void MulticastServer::maybe_finish_session(std::uint64_t id) {
  Session& s = *sessions_.at(id);
  if (s.finalized || s.finalize_scheduled) return;
  if (!s.sender_finished || s.receivers_finished < s.receivers.size()) return;
  // Defer one reactor round: the callback that brought us here is still
  // on a driver's stack frame, and finalize destroys the drivers.
  s.finalize_scheduled = true;
  reactor_.add_timer(reactor_.now(),
                     [this, id] { finalize_session(id, /*drained=*/false); });
}

void MulticastServer::refresh_session_metrics(Session& s) {
  auto& m = s.metrics;
  if (s.sender) {
    const net::UdpNpSenderStats& st = s.sender->stats();
    m.set_counter("data_sent", st.data_sent);
    m.set_counter("parity_sent", st.parity_sent);
    m.set_counter("polls_sent", st.polls_sent);
    m.set_counter("naks_received", st.naks_received);
    m.set_counter("acks_received", st.acks_received);
    m.set_counter("poll_retries", st.poll_retries);
    m.set_counter("evictions", st.evictions);
    m.set_counter("tgs_completed", s.sender->tgs_completed());
    m.set_counter("tgs_skipped", st.tgs_skipped);
    m.set_counter("tgs_unconfirmed", st.tgs_unconfirmed);
    m.set_counter("tgs_exhausted", st.tgs_exhausted);
    m.set_counter("would_block", st.would_block);
    m.set_counter("arena_deferrals", st.arena_deferrals);
    m.set_counter("shed_frames", st.shed_frames);
    m.set_counter("members_quarantined", st.members_quarantined);
  }
  if (s.sender || !s.receivers.empty()) {
    std::uint64_t supp = s.sender ? s.sender->stats().naks_suppressed : 0;
    for (const auto& r : s.receivers) supp += r->result().naks_suppressed;
    m.set_counter("naks_suppressed", supp);
  }
  if (!s.receivers.empty()) {
    std::uint64_t naks = 0, retries = 0, dups = 0, stale = 0, redeliv = 0,
                  mismatch = 0;
    std::size_t min_done = static_cast<std::size_t>(-1);
    for (const auto& r : s.receivers) {
      const net::UdpNpReceiverResult& res = r->result();
      naks += res.naks_sent;
      retries += res.nak_retries;
      dups += res.duplicates;
      stale += res.stale_rejected;
      redeliv += r->redelivered_prior();
      mismatch += r->payload_mismatches();
      min_done = std::min(min_done, r->tgs_done());
    }
    m.set_counter("receiver_naks_sent", naks);
    m.set_counter("receiver_nak_retries", retries);
    m.set_counter("receiver_duplicates", dups);
    m.set_counter("receiver_stale_rejected", stale);
    m.set_counter("redelivered_prior", redeliv);
    m.set_counter("payload_mismatches", mismatch);
    m.set_gauge("tgs_done_min", static_cast<double>(min_done));
  }
  if (s.sender || !s.receivers.empty()) {
    // Hostile-peer evidence combines the sender-side guard with the
    // receiver-side source/auth drops; frame-desync counters span every
    // socket in the session.
    std::uint64_t foreign = 0, auth_rej = 0, resyncs = 0, skipped = 0;
    for (const auto& r : s.receivers) {
      foreign += r->result().foreign_rejected;
      auth_rej += r->result().auth_rejected;
      resyncs += r->frame_resyncs();
      skipped += r->frames_skipped();
    }
    if (s.sender) {
      const net::UdpNpSenderStats& st = s.sender->stats();
      m.set_counter("peer_rejected", st.guard.rejected + foreign + auth_rej);
      m.set_counter("peer_greylisted", st.guard.greylisted);
      m.set_counter("peer_banned", st.guard.banned);
      m.set_counter("members_expelled", st.report.expelled);
      m.set_counter("feedback_addr_mismatch",
                    st.feedback_addr_mismatch + st.guard.addr_mismatch);
      resyncs += s.sender->frame_resyncs();
      skipped += s.sender->frames_skipped();
    }
    m.set_counter("frame_resyncs", resyncs);
    m.set_counter("frames_skipped", skipped);
  }
  m.set_gauge("receivers_finished", static_cast<double>(s.receivers_finished));
  m.set_gauge("journal_bytes",
              s.journal ? static_cast<double>(s.journal->journal().size_bytes())
                        : 0.0);
  if (!s.finalized)
    m.set_gauge("duration_seconds", reactor_.now() - s.started_at);
}

void MulticastServer::refresh_server_metrics() {
  server_metrics_.set_counter("sessions_admitted", admitted_);
  server_metrics_.set_counter("sessions_refused", refused_);
  server_metrics_.set_counter("sessions_resumed", resumed_);
  server_metrics_.set_counter("sessions_completed", completed_);
  server_metrics_.set_counter("sessions_failed", failed_);
  server_metrics_.set_counter("sessions_drained", drained_);
  server_metrics_.set_gauge("sessions_active",
                            static_cast<double>(active_count_));
  server_metrics_.set_gauge("fds_registered",
                            static_cast<double>(reactor_.fd_count()));
  server_metrics_.set_gauge("timers_armed",
                            static_cast<double>(reactor_.timer_count()));
  server_metrics_.set_gauge("uptime_seconds", reactor_.now() - started_at_);
  double journal_bytes = 0.0;
  std::uint64_t fsend = fault_injected_send_;
  std::uint64_t fjournal = fault_injected_journal_;
  for (const auto& [id, s] : sessions_) {
    if (s->journal) {
      journal_bytes += static_cast<double>(s->journal->journal().size_bytes());
      fjournal += s->journal->journal().write_failures();
    }
    if (s->sender) fsend += s->sender->injected_send_failures();
  }
  server_metrics_.set_gauge("journal_bytes_total", journal_bytes);
  server_metrics_.set_counter("fault_injected_send", fsend);
  server_metrics_.set_counter("fault_injected_journal", fjournal);
  server_metrics_.set_counter("fault_injected_socket", fault_injected_socket_);
}

void MulticastServer::finalize_session(std::uint64_t id, bool drained) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end() || it->second->finalized) return;
  Session& s = *it->second;
  // The attack thread must stop before the sockets it aims at close.
  if (s.adversary) s.adversary->stop();
  refresh_session_metrics(s);
  const double duration = reactor_.now() - s.started_at;
  s.metrics.set_gauge("duration_seconds", duration);

  std::string state;
  if (drained) {
    state = "drained";
  } else {
    bool ok;
    if (cfg_.np.reliable_control) {
      ok = s.sender->stats().report.complete;
    } else {
      ok = !s.sender->stats().crashed;
      for (const auto& r : s.receivers) ok = ok && r->result().complete;
    }
    for (const auto& r : s.receivers)
      ok = ok && r->payload_mismatches() == 0 && r->redelivered_prior() == 0;
    state = ok ? "completed" : "failed";
  }
  s.metrics.set_string("state", state);
  if (!s.receivers.empty()) {
    std::string reason = "end_of_session";
    for (const auto& r : s.receivers) {
      if (r->result().end_reason != net::UdpNpEndReason::kEndOfSession) {
        reason = end_reason_name(r->result().end_reason);
        break;
      }
    }
    s.metrics.set_string("end_reason", drained ? "drain_timeout" : reason);
  }

  // Fold this session's lifetime counters into the server registry.
  server_metrics_.inc("total_data_sent", s.metrics.counter("data_sent"));
  server_metrics_.inc("total_parity_sent", s.metrics.counter("parity_sent"));
  server_metrics_.inc("total_polls_sent", s.metrics.counter("polls_sent"));
  server_metrics_.inc("total_naks_received",
                      s.metrics.counter("naks_received"));
  server_metrics_.inc("total_acks_received",
                      s.metrics.counter("acks_received"));
  server_metrics_.inc("total_poll_retries", s.metrics.counter("poll_retries"));
  server_metrics_.inc("total_nak_retries",
                      s.metrics.counter("receiver_nak_retries"));
  server_metrics_.inc("total_evictions", s.metrics.counter("evictions"));
  server_metrics_.inc("total_tgs_completed",
                      s.metrics.counter("tgs_completed"));
  server_metrics_.inc("total_tgs_skipped", s.metrics.counter("tgs_skipped"));
  server_metrics_.inc("total_stale_rejected",
                      s.metrics.counter("receiver_stale_rejected"));
  server_metrics_.inc("total_redelivered_prior",
                      s.metrics.counter("redelivered_prior"));
  server_metrics_.inc("total_payload_mismatches",
                      s.metrics.counter("payload_mismatches"));
  server_metrics_.inc("would_block_total", s.metrics.counter("would_block"));
  server_metrics_.inc("total_arena_deferrals",
                      s.metrics.counter("arena_deferrals"));
  server_metrics_.inc("total_shed_frames", s.metrics.counter("shed_frames"));
  server_metrics_.inc("total_naks_suppressed",
                      s.metrics.counter("naks_suppressed"));
  server_metrics_.inc("total_members_quarantined",
                      s.metrics.counter("members_quarantined"));
  server_metrics_.inc("total_peer_rejected",
                      s.metrics.counter("peer_rejected"));
  server_metrics_.inc("total_peer_greylisted",
                      s.metrics.counter("peer_greylisted"));
  server_metrics_.inc("total_peer_banned", s.metrics.counter("peer_banned"));
  server_metrics_.inc("total_feedback_addr_mismatch",
                      s.metrics.counter("feedback_addr_mismatch"));
  server_metrics_.inc("total_frame_resyncs",
                      s.metrics.counter("frame_resyncs"));
  server_metrics_.inc("total_frames_skipped",
                      s.metrics.counter("frames_skipped"));
  if (s.sender) fault_injected_send_ += s.sender->injected_send_failures();
  if (s.journal)
    fault_injected_journal_ += s.journal->journal().write_failures();
  server_metrics_.observe("session_duration_seconds", duration);
  if (s.sender && s.sender->stats().tx_per_packet > 0.0)
    server_metrics_.observe("session_tx_per_packet",
                            s.sender->stats().tx_per_packet);

  if (state == "completed") {
    ++completed_;
    server_metrics_.inc("sessions_completed");
  } else if (state == "failed") {
    ++failed_;
    server_metrics_.inc("sessions_failed");
  } else {
    ++drained_;
    server_metrics_.inc("sessions_drained");
  }

  // Release the drivers (sockets, fds, timers) — at a thousand sessions
  // holding finished drivers open exhausts the descriptor table.  The
  // journal closes too; its file stays only for drained sessions.
  s.sender.reset();
  s.receivers.clear();
  s.adversary.reset();
  s.journal.reset();
  if (state != "drained") remove_session_files(s);
  s.finalized = true;
  --active_count_;
  server_metrics_.set_gauge("sessions_active",
                            static_cast<double>(active_count_));

  if (active_count_ == 0 && (draining_ || cfg_.exit_when_idle))
    finish_and_stop();
}

void MulticastServer::persist_for_next_life(Session& s) {
  if (!s.journal || cfg_.journal_dir.empty()) return;
  for (std::size_t r = 0; r < s.receivers.size(); ++r) {
    core::ReceiverSessionState rs;
    rs.session_id = s.id;
    rs.receiver = static_cast<std::uint32_t>(r);
    rs.incarnation = s.receivers[r]->incarnation_heard();
    rs.num_tgs = static_cast<std::uint32_t>(s.spec.groups.size());
    rs.decoded = s.receivers[r]->decoded_bitmap();
    core::save_receiver_state_file(receiver_state_path(s.id, r), rs);
  }
  s.journal->checkpoint();
}

void MulticastServer::remove_session_files(Session& s) {
  if (cfg_.journal_dir.empty()) return;
  std::error_code ec;
  std::filesystem::remove(journal_path(s.id), ec);
  for (std::size_t r = 0; r < s.spec.receivers; ++r)
    std::filesystem::remove(receiver_state_path(s.id, r), ec);
}

void MulticastServer::force_stop_all() {
  for (auto& [id, session] : sessions_) {
    Session& s = *session;
    if (s.finalized) continue;
    if (s.sender_finished && s.receivers_finished >= s.receivers.size()) {
      // Finished naturally; only its deferred finalize timer is pending.
      finalize_session(id, /*drained=*/false);
      continue;
    }
    persist_for_next_life(s);
    if (s.sender) s.sender->stop();
    for (auto& r : s.receivers) r->stop();
    finalize_session(id, /*drained=*/true);
  }
  if (!stopped_ && active_count_ == 0 && draining_) finish_and_stop();
}

void MulticastServer::request_drain() {
  if (draining_ || stopped_) return;
  draining_ = true;
  server_metrics_.set_string("server_state", "draining");
  if (active_count_ == 0) {
    finish_and_stop();
    return;
  }
  drain_timer_ = reactor_.add_timer(reactor_.now() + cfg_.drain_grace, [this] {
    drain_timer_armed_ = false;
    force_stop_all();
  });
  drain_timer_armed_ = true;
}

void MulticastServer::finish_and_stop() {
  if (stopped_) return;
  stopped_ = true;
  if (drain_timer_armed_) {
    reactor_.cancel_timer(drain_timer_);
    drain_timer_armed_ = false;
  }
  if (snapshot_timer_armed_) {
    reactor_.cancel_timer(snapshot_timer_);
    snapshot_timer_armed_ = false;
  }
  server_metrics_.set_string("server_state", "stopped");
  write_snapshot();
  reactor_.stop();
}

void MulticastServer::schedule_snapshot_timer() {
  if (cfg_.snapshot_interval <= 0.0 || stopped_) return;
  snapshot_timer_ =
      reactor_.add_timer(reactor_.now() + cfg_.snapshot_interval, [this] {
        snapshot_timer_armed_ = false;
        if (stopped_) return;
        write_snapshot();
        schedule_snapshot_timer();
      });
  snapshot_timer_armed_ = true;
}

void MulticastServer::install_signal_handlers() {
  if (signal_pipe_read_ >= 0) return;
  int fds[2];
  if (::pipe(fds) != 0)
    throw std::system_error(errno, std::generic_category(), "pipe");
  ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
  ::fcntl(fds[1], F_SETFL, O_NONBLOCK);
  signal_pipe_read_ = fds[0];
  g_signal_pipe_write = fds[1];
  struct sigaction sa{};
  sa.sa_handler = pbl_server_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  reactor_.add_fd(signal_pipe_read_, [this] { on_signal_readable(); });
}

void MulticastServer::on_signal_readable() {
  char buf[64];
  while (::read(signal_pipe_read_, buf, sizeof(buf)) > 0) {
  }
  server_metrics_.inc("signals_received");
  request_drain();
}

const obs::MetricsRegistry& MulticastServer::session_metrics(
    std::uint64_t id) const {
  return sessions_.at(id)->metrics;
}

std::uint64_t MulticastServer::redelivered_prior_total() const {
  std::uint64_t total = 0;
  for (const auto& [id, s] : sessions_) {
    if (!s->receivers.empty()) {
      for (const auto& r : s->receivers) total += r->redelivered_prior();
    } else {
      total += s->metrics.counter("redelivered_prior");
    }
  }
  return total;
}

std::uint64_t MulticastServer::payload_mismatches_total() const {
  std::uint64_t total = 0;
  for (const auto& [id, s] : sessions_) {
    if (!s->receivers.empty()) {
      for (const auto& r : s->receivers) total += r->payload_mismatches();
    } else {
      total += s->metrics.counter("payload_mismatches");
    }
  }
  return total;
}

std::string MulticastServer::snapshot_json() {
  for (auto& [id, s] : sessions_)
    if (!s->finalized) refresh_session_metrics(*s);
  refresh_server_metrics();

  std::string out;
  out += "{\n  \"schema\": \"";
  out += obs::kMetricsSchemaName;
  out += "\",\n  \"version\": ";
  out += std::to_string(obs::kMetricsSchemaVersion);
  out += ",\n  \"kind\": \"snapshot\",\n  \"time\": ";
  obs::append_json_double(out, reactor_.now());
  out += ",\n  \"server\": ";
  server_metrics_.values_json(out, 2);
  out += ",\n  \"sessions\": {";
  bool first = true;
  for (const auto& [id, s] : sessions_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + std::to_string(id) + "\": ";
    s->metrics.values_json(out, 4);
  }
  out += sessions_.empty() ? "}" : "\n  }";
  out += "\n}\n";
  return out;
}

void MulticastServer::write_snapshot() {
  server_metrics_.inc("snapshots_written");
  const std::string doc = snapshot_json();
  if (!cfg_.snapshot_dir.empty()) {
    char name[40];
    std::snprintf(name, sizeof(name), "snapshot_%05llu.json",
                  static_cast<unsigned long long>(snapshot_seq_));
    write_text_file(cfg_.snapshot_dir + "/" + name, doc);
  }
  ++snapshot_seq_;
  if (!cfg_.csv_path.empty()) {
    bool need_header = true;
    {
      std::error_code ec;
      const auto size = std::filesystem::file_size(cfg_.csv_path, ec);
      need_header = ec || size == 0;
    }
    std::ofstream out(cfg_.csv_path, std::ios::app);
    if (out) {
      if (need_header) out << "time," << server_metrics_.csv_header() << "\n";
      std::string row;
      obs::append_json_double(row, reactor_.now());
      out << row << "," << server_metrics_.csv_row() << "\n";
    }
  }
}

}  // namespace pbl::server
