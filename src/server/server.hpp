// The long-running multicast server: N concurrent UDP NP sessions
// multiplexed on one Reactor, each owning its write-ahead SessionJournal
// and reliable-control retry state, with admission control, graceful
// SIGTERM drain, crash-resume from journals, and a schema'd metrics
// registry exported as JSON/CSV snapshots (docs/OBSERVABILITY.md).
//
// Lifecycle of a session:
//   submit() ── admission check ──> active (drivers on the reactor)
//     └─ sender + every receiver finish ──> finalized (completed/failed)
//     └─ drain deadline ──> force-stopped ──> finalized (drained),
//        journal checkpointed + receiver bitmaps persisted for the next
//        life; resume_journaled_sessions() picks them up after restart.
//
// Everything runs on the reactor thread; no locks anywhere.  The
// metrics registries are closed-world (obs/metrics.hpp): the def lists
// in server.cpp ARE the pbl-metrics-v1 schema, and the committed
// metrics-schema.json is generated from them via
// examples/multicast_server --print-schema.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/session_state.hpp"
#include "net/adversary.hpp"
#include "net/udp/udp_np.hpp"
#include "obs/metrics.hpp"
#include "server/reactor.hpp"
#include "server/session_driver.hpp"

namespace pbl::server {

struct ServerConfig {
  /// Admission cap: submissions beyond this many concurrently active
  /// sessions are refused (backpressure, not queueing).
  std::size_t max_sessions = 64;
  /// Protocol template for every session; clock defaults to the
  /// reactor's, so every deadline in the server reads one time source.
  net::UdpNpConfig np{};
  /// Directory for write-ahead journals and receiver state files
  /// ("" disables crash tolerance).
  std::string journal_dir;
  /// Directory receiving snapshot_NNNNN.json files ("" = in-memory only).
  std::string snapshot_dir;
  /// CSV file appended one server-wide row per snapshot ("" = none).
  std::string csv_path;
  /// Periodic snapshot interval [s]; 0 = only on drain/idle exit.
  double snapshot_interval = 0.0;
  /// Seconds granted to in-flight sessions after request_drain() before
  /// they are force-stopped and journaled for the next life.
  double drain_grace = 5.0;
  /// Mid-session silence budget for every receiver endpoint [s].
  double receiver_idle_timeout = 10.0;
  /// Stop the reactor once every submitted session has finalized (batch
  /// mode — the soak harness); off = keep serving (daemon mode).
  bool exit_when_idle = false;
  std::size_t journal_checkpoint_interval = 16;
  /// util::JournalConfig::sync_every; 0 = OS-buffered (soak-friendly).
  std::size_t journal_sync_every = 0;
  /// Deterministic resource-exhaustion fault injection, applied to every
  /// admitted session (docs/ROBUSTNESS.md).  All zeros = no faults.
  struct FaultPlan {
    /// Every Nth send syscall on a session's sender socket fails with
    /// EAGAIN for a burst of consecutive attempts (0 = off).
    std::size_t send_eagain_every = 0;
    std::size_t send_eagain_burst = 4;
    /// Every Nth journal append fails ENOSPC-style, record lost but the
    /// journal stays usable (0 = off).
    std::size_t journal_fail_every = 0;
    /// The Nth socket creation across the server's lifetime throws
    /// (fd-limit simulation) — the admission is refused, not crashed
    /// (0 = off, 1-based).
    std::size_t socket_fail_nth = 0;
  } faults{};
  /// Byzantine-receiver injection: every admitted session gets one
  /// AdversaryPeer joined to its group, attacking per the profile
  /// (net/adversary.hpp).  Drives test_hostile and soak --scenario
  /// hostile; the np.guard knobs are what the adversary is up against.
  struct HostilePlan {
    bool enabled = false;
    std::string profile = "storm";  ///< parse_adversary_profile names
    double rate = 200.0;            ///< attack frames per second
  } hostile{};
};

class MulticastServer {
 public:
  /// One session's payload and per-session knobs.
  struct SessionSpec {
    std::uint64_t id = 0;
    std::vector<net::TgBytes> groups;   ///< num_tgs × k × packet_len
    std::size_t receivers = 2;
    double data_loss = 0.0;             ///< per-receiver injected loss
    net::ImpairmentConfig impairment{}; ///< per-receiver wire faults
    std::uint64_t seed = 1;
  };

  /// Maps a journaled sender state back to its payload, which the server
  /// cannot persist (only progress is durable; data is regenerable).
  /// Return std::nullopt to leave that journal untouched on disk.
  using ResumeProvider = std::function<std::optional<SessionSpec>(
      const core::SenderSessionState&)>;

  MulticastServer(Reactor& reactor, ServerConfig config);
  ~MulticastServer();
  MulticastServer(const MulticastServer&) = delete;
  MulticastServer& operator=(const MulticastServer&) = delete;

  /// Admission-controlled start of a fresh session.  Returns false (and
  /// counts a refusal) when at max_sessions or draining.
  bool submit(SessionSpec spec);

  /// Scans journal_dir for incomplete sessions from a prior life and
  /// resubmits each via the provider (admission rules apply).  Journals
  /// of sessions that were already complete are deleted.  Returns how
  /// many sessions were resumed.
  std::size_t resume_journaled_sessions(const ResumeProvider& provider);

  /// Graceful drain: refuse new admissions, give active sessions
  /// drain_grace seconds to finish, then force-stop and journal the
  /// stragglers; writes a final snapshot and stops the reactor.
  void request_drain();
  bool draining() const noexcept { return draining_; }

  /// SIGTERM/SIGINT → request_drain(), delivered through a self-pipe
  /// registered on the reactor (async-signal-safe).
  void install_signal_handlers();

  std::size_t active_sessions() const noexcept { return active_count_; }
  std::uint64_t completed_sessions() const noexcept { return completed_; }
  std::uint64_t failed_sessions() const noexcept { return failed_; }
  std::uint64_t drained_sessions() const noexcept { return drained_; }
  std::uint64_t refused_sessions() const noexcept { return refused_; }
  std::uint64_t resumed_sessions() const noexcept { return resumed_; }
  std::uint64_t redelivered_prior_total() const;
  std::uint64_t payload_mismatches_total() const;

  obs::MetricsRegistry& server_metrics() noexcept { return server_metrics_; }
  /// Per-session registry; throws std::out_of_range on unknown id.
  const obs::MetricsRegistry& session_metrics(std::uint64_t id) const;

  /// The full snapshot document (schema header + server + all sessions),
  /// refreshed from live driver state first.
  std::string snapshot_json();
  /// Emits snapshot_json() to snapshot_dir/csv_path per config.
  void write_snapshot();

  /// The pbl-metrics-v1 schema document these registries implement —
  /// byte-identical to the committed metrics-schema.json.
  static std::string schema_document();
  static std::vector<obs::MetricDef> server_metric_defs();
  static std::vector<obs::MetricDef> session_metric_defs();

 private:
  struct Session {
    std::uint64_t id = 0;
    SessionSpec spec;  ///< owns the payload; drivers borrow it
    std::unique_ptr<core::SessionJournal> journal;
    std::unique_ptr<SenderSessionDriver> sender;
    std::vector<std::unique_ptr<ReceiverSessionDriver>> receivers;
    /// The session's Byzantine member (ServerConfig::HostilePlan); its
    /// port is in the group but it is NOT counted among `receivers`.
    std::unique_ptr<net::AdversaryPeer> adversary;
    obs::MetricsRegistry metrics;
    double started_at = 0.0;
    bool resumed = false;
    bool sender_finished = false;
    std::size_t receivers_finished = 0;
    bool finalize_scheduled = false;
    bool finalized = false;

    explicit Session(std::vector<obs::MetricDef> defs)
        : metrics(std::move(defs)) {}
  };

  bool admit(SessionSpec spec, bool resuming);
  void maybe_finish_session(std::uint64_t id);
  void finalize_session(std::uint64_t id, bool drained);
  void refresh_session_metrics(Session& session);
  void refresh_server_metrics();
  void force_stop_all();
  void persist_for_next_life(Session& session);
  void remove_session_files(Session& session);
  void finish_and_stop();
  void schedule_snapshot_timer();
  void on_signal_readable();
  std::string journal_path(std::uint64_t id) const;
  std::string receiver_state_path(std::uint64_t id, std::size_t r) const;

  Reactor& reactor_;
  ServerConfig cfg_;
  obs::MetricsRegistry server_metrics_;
  std::map<std::uint64_t, std::unique_ptr<Session>> sessions_;
  double started_at_ = 0.0;
  std::size_t active_count_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t refused_ = 0;
  std::uint64_t resumed_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t drained_ = 0;
  std::uint64_t snapshot_seq_ = 0;
  std::size_t sockets_created_ = 0;   ///< FaultPlan::socket_fail_nth counter
  std::uint64_t fault_injected_socket_ = 0;
  std::uint64_t fault_injected_send_ = 0;
  std::uint64_t fault_injected_journal_ = 0;
  bool draining_ = false;
  bool stopped_ = false;
  bool drain_timer_armed_ = false;
  Reactor::TimerId drain_timer_ = 0;
  bool snapshot_timer_armed_ = false;
  Reactor::TimerId snapshot_timer_ = 0;
  bool csv_header_written_ = false;
  int signal_pipe_read_ = -1;
};

}  // namespace pbl::server
