#include "server/session_driver.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace pbl::server {

using protocol::Backoff;
using protocol::Deadline;

// ---------------------------------------------------------------------------
// SenderSessionDriver
// ---------------------------------------------------------------------------

SenderSessionDriver::SenderSessionDriver(Reactor& reactor, net::UdpSocket socket,
                                         net::UdpGroup group,
                                         const net::UdpNpConfig& config,
                                         const std::vector<net::TgBytes>& groups,
                                         std::function<void()> on_finished)
    : reactor_(reactor), socket_(std::move(socket)), group_(std::move(group)),
      cfg_(config), groups_(groups), code_(config.k, config.k + config.h),
      clk_(config.clock ? *config.clock : protocol::steady_clock()),
      on_finished_(std::move(on_finished)) {
  if (config.k + config.h > 255)
    throw std::invalid_argument("SenderSessionDriver: k + h must be <= 255");
  if (group_.size() == 0)
    throw std::invalid_argument("SenderSessionDriver: empty group");
  if (cfg_.reliable_control) cfg_.retry.validate();
  if (!cfg_.resume_completed.empty() &&
      cfg_.resume_completed.size() != groups_.size())
    throw std::invalid_argument(
        "SenderSessionDriver: resume_completed size mismatch");
  if (!cfg_.resume_parities.empty() &&
      cfg_.resume_parities.size() != groups_.size())
    throw std::invalid_argument(
        "SenderSessionDriver: resume_parities size mismatch");
  for (const auto& tg : groups_)
    if (tg.size() != cfg_.k)
      throw std::invalid_argument("SenderSessionDriver: each TG needs k packets");
  std::size_t max_payload = cfg_.packet_len;
  for (const auto& g : groups_)
    if (!g.empty()) max_payload = std::max(max_payload, g[0].size());
  arena_ = std::make_unique<net::PacketArena>(
      fec::wire_size(max_payload),
      std::max({cfg_.k, cfg_.h, std::size_t{1}}));
}

SenderSessionDriver::~SenderSessionDriver() {
  disarm_timer();
  if (fd_registered_) reactor_.remove_fd(socket_.fd());
}

void SenderSessionDriver::start() {
  if (started_) return;
  started_ = true;
  const auto& members = group_.members();
  evicted_.assign(members.size(), false);
  silent_.assign(members.size(), 0);
  delivered_.assign(members.size(), std::vector<bool>(groups_.size(), false));
  deadline_ = Deadline(clk_.now(), cfg_.reliable_control
                                       ? cfg_.retry.session_deadline
                                       : 0.0);
  reactor_.add_fd(socket_.fd(), [this] { on_readable(); });
  fd_registered_ = true;
  tg_ = 0;
  begin_next_tg();
}

void SenderSessionDriver::stop() {
  if (finished_ || stopped_) return;
  stopped_ = true;
  disarm_timer();
  if (fd_registered_) {
    reactor_.remove_fd(socket_.fd());
    fd_registered_ = false;
  }
}

bool SenderSessionDriver::send_mc(fec::Packet packet) {
  if (stats_.crashed) return false;
  if (sends_ >= cfg_.crash_after_sends) {
    stats_.crashed = true;
    return false;
  }
  ++sends_;
  packet.header.incarnation = static_cast<std::uint8_t>(cfg_.incarnation);
  group_.multicast(socket_, packet);
  return true;
}

void SenderSessionDriver::stage_frame(std::span<const std::uint8_t> frame) {
  for (const std::uint16_t port : group_.members())
    burst_.push_back({port, frame});
}

void SenderSessionDriver::flush_burst() {
  if (!burst_.empty()) socket_.send_batch_blocking(burst_);
  burst_.clear();
  arena_->release_all();
}

std::size_t SenderSessionDriver::member_of(std::uint16_t port) const {
  const auto& members = group_.members();
  for (std::size_t m = 0; m < members.size(); ++m)
    if (members[m] == port) return m;
  return members.size();  // unknown port: foreign feedback
}

bool SenderSessionDriver::confirmed() const {
  for (std::size_t m = 0; m < group_.members().size(); ++m)
    if (!evicted_[m] && !acked_[m]) return false;
  return true;
}

void SenderSessionDriver::arm_window_timer(double window) {
  window_timer_ = reactor_.add_timer(clk_.now() + window, [this] {
    timer_armed_ = false;
    on_window_expired();
  });
  timer_armed_ = true;
}

void SenderSessionDriver::disarm_timer() {
  if (!timer_armed_) return;
  reactor_.cancel_timer(window_timer_);
  timer_armed_ = false;
}

void SenderSessionDriver::begin_next_tg() {
  // Skip TGs confirmed complete in a prior life; they are never re-sent.
  while (tg_ < groups_.size() && tg_ < cfg_.resume_completed.size() &&
         cfg_.resume_completed[tg_]) {
    ++stats_.tgs_skipped;
    ++tg_;
  }
  if (tg_ >= groups_.size()) {
    finish_session();
    return;
  }
  if (stats_.crashed) {
    finish_session();
    return;
  }
  if (deadline_.expired(clk_.now())) {
    stats_.report.deadline_expired = true;
    finish_session();
    return;
  }

  encoder_.emplace(static_cast<std::uint32_t>(tg_), code_, groups_[tg_]);
  // Zero-copy burst: frames written in place, one batch to the kernel.
  // crash_after_sends ticks per logical packet BEFORE its frames are
  // staged, clamping the burst at the same wire position the per-packet
  // loop would have (see UdpNpSender::transfer).
  for (std::size_t j = 0; j < cfg_.k; ++j) {
    if (sends_ >= cfg_.crash_after_sends) {
      stats_.crashed = true;
      break;
    }
    ++sends_;
    const auto frame = arena_->acquire();
    const std::size_t len = encoder_->write_data_frame(
        j, static_cast<std::uint8_t>(cfg_.incarnation), frame->bytes);
    stage_frame(frame->bytes.first(len));
    ++stats_.data_sent;
  }
  flush_burst();
  if (stats_.crashed) {
    finish_session();
    return;
  }

  acked_.assign(group_.members().size(), false);
  heard_.assign(group_.members().size(), false);
  poll_backoff_.emplace(cfg_.retry, Rng(cfg_.seed).split(0x9100 + tg_));
  parities_used_ = tg_ < cfg_.resume_parities.size()
                       ? std::min<std::size_t>(cfg_.resume_parities[tg_], cfg_.h)
                       : 0;
  window_pad_ = 0.0;
  round_ = 0;
  send_poll();
}

void SenderSessionDriver::send_poll() {
  if (round_ >= cfg_.max_rounds) {
    // Round cap hit: abandon this TG (same silent fall-through as the
    // blocking sender's for-loop exhausting) and move on.
    ++tg_;
    begin_next_tg();
    return;
  }
  fec::Packet poll;
  poll.header.type = fec::PacketType::kPoll;
  poll.header.tg = static_cast<std::uint32_t>(tg_);
  poll.header.k = static_cast<std::uint16_t>(cfg_.k);
  poll.header.seq = ++round_id_;
  if (!send_mc(poll)) {
    finish_session();
    return;
  }
  ++stats_.polls_sent;

  l_ = 0;
  std::fill(heard_.begin(), heard_.end(), false);
  const double now = clk_.now();
  const double window =
      std::min(cfg_.poll_window + window_pad_, deadline_.remaining(now));
  arm_window_timer(window);
}

void SenderSessionDriver::on_readable() {
  while (!finished_ && !stopped_) {
    auto nak = socket_.receive(0.0);
    if (!nak) {
      if (!socket_.has_pending()) break;
      continue;
    }
    if (nak->header.type != fec::PacketType::kNak ||
        nak->header.tg != static_cast<std::uint32_t>(tg_))
      continue;
    if (cfg_.reliable_control) {
      const std::size_t m = member_of(nak->header.index);
      if (m < group_.members().size()) {
        heard_[m] = true;
        silent_[m] = 0;
        if (nak->header.count == 0) {
          ++stats_.acks_received;
          if (!acked_[m]) {
            acked_[m] = true;
            delivered_[m][tg_] = true;
          }
        }
      }
    }
    if (nak->header.count > 0 && nak->header.seq == round_id_) {
      ++stats_.naks_received;
      l_ = std::max(l_, static_cast<std::size_t>(nak->header.count));
    }
  }
}

void SenderSessionDriver::on_window_expired() {
  if (finished_ || stopped_) return;
  // Pull in any feedback that raced the timer into the socket buffer.
  on_readable();
  after_window();
}

void SenderSessionDriver::after_window() {
  const auto complete_tg = [&] {
    if (cfg_.on_tg_completed) cfg_.on_tg_completed(tg_);
    ++tgs_completed_;
  };
  const auto next_tg = [&] {
    ++tg_;
    begin_next_tg();
  };

  if (!cfg_.reliable_control) {
    if (l_ == 0) {
      complete_tg();  // silence: all receivers reconstructed this TG
      next_tg();
      return;
    }
  } else {
    if (confirmed()) {
      complete_tg();  // every live member positively acked
      next_tg();
      return;
    }
    if (deadline_.expired(clk_.now())) {
      stats_.report.deadline_expired = true;
      finish_session();
      return;
    }
    if (l_ == 0) {
      // A totally unanswered round: age every unconfirmed member and
      // re-POLL with a widened window — unless the budget is spent.
      for (std::size_t m = 0; m < group_.members().size(); ++m) {
        if (evicted_[m] || acked_[m] || heard_[m]) continue;
        if (++silent_[m] >= cfg_.retry.grace_rounds) {
          evicted_[m] = true;
          ++stats_.evictions;
        }
      }
      if (confirmed()) {
        complete_tg();
        next_tg();
        return;
      }
      if (poll_backoff_->exhausted()) {
        ++stats_.tgs_unconfirmed;
        next_tg();
        return;
      }
      ++stats_.poll_retries;
      window_pad_ = poll_backoff_->next();
      ++round_;
      send_poll();
      return;
    }
    window_pad_ = 0.0;  // progress: the next round is a normal one
  }

  std::size_t l = std::min(l_, cfg_.h - parities_used_);
  if (l == 0) {
    ++stats_.tgs_exhausted;
    next_tg();
    return;
  }
  // Journal the new high-water BEFORE the parities leave: if the sender
  // dies in between, the next life merely skips indices that were never
  // sent (wasteful, never wrong) — the reverse order could re-send
  // indices receivers already hold.
  parities_used_ += l;
  if (cfg_.on_parities_sent) cfg_.on_parities_sent(tg_, parities_used_);
  for (std::size_t j = 0; j < l; ++j) {
    if (stats_.crashed) break;
    if (sends_ >= cfg_.crash_after_sends) {
      stats_.crashed = true;
      break;
    }
    ++sends_;
    const auto frame = arena_->acquire();
    const std::size_t len = encoder_->write_parity_frame(
        parities_used_ - l + j, static_cast<std::uint8_t>(cfg_.incarnation),
        frame->bytes);
    stage_frame(frame->bytes.first(len));
    ++stats_.parity_sent;
  }
  flush_burst();
  if (stats_.crashed) {
    finish_session();
    return;
  }
  ++round_;
  send_poll();
}

void SenderSessionDriver::finish_session() {
  if (finished_) return;
  if (!stats_.crashed) {
    // A crashed sender never says goodbye — the receivers' phase-aware
    // idle clocks (or its own next incarnation) must end their runs.
    fec::Packet end;
    end.header.type = fec::PacketType::kPoll;
    end.header.tg = net::kUdpEndOfSession;
    send_mc(end);
  }
  if (!groups_.empty()) {
    stats_.tx_per_packet =
        static_cast<double>(stats_.data_sent + stats_.parity_sent) /
        (static_cast<double>(cfg_.k) * static_cast<double>(groups_.size()));
  }
  if (cfg_.reliable_control) {
    auto& rep = stats_.report;
    rep.delivered = delivered_;
    rep.evicted = evicted_;
    rep.evictions = stats_.evictions;
    rep.units_failed = stats_.tgs_exhausted + stats_.tgs_unconfirmed;
    rep.poll_retries = stats_.poll_retries;
    rep.complete = !rep.deadline_expired && rep.evictions == 0 &&
                   rep.units_failed == 0;
    if (rep.complete)
      for (const auto& row : rep.delivered)
        for (const bool b : row) rep.complete = rep.complete && b;
    // Resumed TGs were delivered by a prior life; their per-member rows
    // are vacuously incomplete this life, so exempt them.
    if (!rep.complete && !rep.deadline_expired && rep.evictions == 0 &&
        rep.units_failed == 0 && !cfg_.resume_completed.empty()) {
      bool all = true;
      for (const auto& row : rep.delivered)
        for (std::size_t i = 0; i < row.size(); ++i)
          if (!row[i] && !cfg_.resume_completed[i]) all = false;
      rep.complete = all;
    }
  }
  disarm_timer();
  if (fd_registered_) {
    reactor_.remove_fd(socket_.fd());
    fd_registered_ = false;
  }
  finished_ = true;
  if (on_finished_) on_finished_();  // may reschedule our destruction; last
}

// ---------------------------------------------------------------------------
// ReceiverSessionDriver
// ---------------------------------------------------------------------------

ReceiverSessionDriver::ReceiverSessionDriver(
    Reactor& reactor, net::UdpSocket socket, std::uint16_t sender_port,
    std::size_t num_tgs, const net::UdpNpConfig& config, Options options,
    std::function<void()> on_finished)
    : reactor_(reactor), socket_(std::move(socket)), sender_port_(sender_port),
      num_tgs_(num_tgs), cfg_(config), opt_(std::move(options)),
      code_(config.k, config.k + config.h),
      clk_(config.clock ? *config.clock : protocol::steady_clock()),
      on_finished_(std::move(on_finished)) {
  if (opt_.data_loss < 0.0 || opt_.data_loss >= 1.0)
    throw std::invalid_argument("ReceiverSessionDriver: data_loss in [0,1)");
  if (cfg_.reliable_control) cfg_.retry.validate();
  if (!opt_.resume_decoded.empty() && opt_.resume_decoded.size() != num_tgs_)
    throw std::invalid_argument(
        "ReceiverSessionDriver: resume_decoded size mismatch");
  if (!opt_.resume_confirmed.empty() &&
      opt_.resume_confirmed.size() != num_tgs_)
    throw std::invalid_argument(
        "ReceiverSessionDriver: resume_confirmed size mismatch");
  if (opt_.impairment.enabled() || opt_.impairment.control_enabled()) {
    impairment_ = std::make_shared<net::Impairment>(opt_.impairment);
    socket_.set_impairment(impairment_);
  }

  decoders_.reserve(num_tgs_);
  for (std::uint32_t i = 0; i < num_tgs_; ++i)
    decoders_.emplace_back(i, code_, cfg_.packet_len);
  done_.assign(num_tgs_, false);
  prior_.assign(num_tgs_, false);
  confirmed_.assign(num_tgs_, false);
  // prior_ is the UNION of what this member decoded and what the sender
  // journal confirmed: the union protects against a lost receiver state
  // file (a confirmed TG still counts as delivered — its confirmation
  // proves a prior life ACKed it, which proves it decoded).
  for (std::size_t i = 0; i < opt_.resume_decoded.size(); ++i)
    if (opt_.resume_decoded[i]) prior_[i] = true;
  for (std::size_t i = 0; i < opt_.resume_confirmed.size(); ++i)
    if (opt_.resume_confirmed[i]) prior_[i] = confirmed_[i] = true;
  for (std::size_t i = 0; i < num_tgs_; ++i) {
    if (!prior_[i]) continue;
    done_[i] = true;  // decoded in a prior life counts toward completion
    ++done_count_;
  }
  nak_backoffs_.resize(num_tgs_);
  known_inc_ = static_cast<std::uint8_t>(
      std::max(cfg_.incarnation, opt_.resume_incarnation));
}

ReceiverSessionDriver::~ReceiverSessionDriver() {
  if (timer_armed_) reactor_.cancel_timer(wake_timer_);
  if (fd_registered_) reactor_.remove_fd(socket_.fd());
}

void ReceiverSessionDriver::start() {
  if (started_) return;
  started_ = true;
  last_rx_ = clk_.now();
  result_.end_reason = net::UdpNpEndReason::kMidSessionSilence;
  reactor_.add_fd(socket_.fd(), [this] { on_readable(); });
  fd_registered_ = true;
  reschedule(idle_deadline());
}

void ReceiverSessionDriver::stop() {
  if (finished_) return;
  auto notify = std::move(on_finished_);
  on_finished_ = nullptr;  // drain stop: the caller does its own bookkeeping
  finish(done_count_ == num_tgs_ ? net::UdpNpEndReason::kDrainTimeout
                                 : net::UdpNpEndReason::kMidSessionSilence);
  on_finished_ = std::move(notify);
}

double ReceiverSessionDriver::idle_deadline() const {
  const double budget =
      done_count_ == num_tgs_ ? cfg_.drain_timeout : opt_.idle_timeout;
  return last_rx_ + budget;
}

std::vector<bool> ReceiverSessionDriver::decoded_bitmap() const {
  return done_;
}

void ReceiverSessionDriver::reschedule(double next_due) {
  if (cfg_.reliable_control && nak_pending_)
    next_due = std::min(next_due, nak_retry_at_);
  // An armed-too-early timer merely wakes us spuriously (on_wake rechecks
  // and re-arms), so only replace it when it would fire too LATE.
  if (timer_armed_ && armed_at_ <= next_due) return;
  if (timer_armed_) reactor_.cancel_timer(wake_timer_);
  armed_at_ = next_due;
  wake_timer_ = reactor_.add_timer(next_due, [this] {
    timer_armed_ = false;
    on_wake();
  });
  timer_armed_ = true;
}

void ReceiverSessionDriver::send_feedback(std::uint32_t tg, std::size_t count,
                                          std::uint32_t seq) {
  fec::Packet fb;
  fb.header.type = fec::PacketType::kNak;
  fb.header.tg = tg;
  fb.header.count = static_cast<std::uint16_t>(count);
  fb.header.seq = seq;
  fb.header.incarnation = known_inc_;
  // The sender's liveness tracking needs to know who spoke: receive()
  // discards the source address, so the port rides in the header.
  if (cfg_.reliable_control) fb.header.index = socket_.port();
  socket_.send_to(sender_port_, fb);
}

void ReceiverSessionDriver::on_readable() {
  while (!finished_) {
    auto packet = socket_.receive(0.0);
    if (!packet) {
      if (!socket_.has_pending()) break;
      continue;
    }
    handle_packet(*packet);
  }
  if (!finished_) reschedule(idle_deadline());
}

void ReceiverSessionDriver::on_wake() {
  if (finished_) return;
  const double now = clk_.now();
  if (cfg_.reliable_control && nak_pending_ && now >= nak_retry_at_) {
    // The NAK (or its repair) may have been lost: retransmit under this
    // TG's backoff until served or the budget runs out.
    const std::size_t need = prior_[nak_tg_] ? 0 : decoders_[nak_tg_].needed();
    auto& bo = nak_backoffs_[nak_tg_];
    if (need == 0 || !bo || bo->exhausted()) {
      nak_pending_ = false;
    } else {
      ++result_.nak_retries;
      ++result_.naks_sent;
      send_feedback(nak_tg_, need, nak_round_);
      nak_retry_at_ = clk_.now() + cfg_.poll_window + bo->next();
    }
  }
  if (clk_.now() >= idle_deadline()) {
    finish(done_count_ == num_tgs_ ? net::UdpNpEndReason::kDrainTimeout
                                   : net::UdpNpEndReason::kMidSessionSilence);
    return;
  }
  reschedule(idle_deadline());
}

void ReceiverSessionDriver::accept_block_packet(const fec::Packet& packet) {
  const auto& hdr = packet.header;
  if (hdr.k != cfg_.k || hdr.n != cfg_.k + cfg_.h ||
      hdr.index >= cfg_.k + cfg_.h || packet.payload.size() != cfg_.packet_len) {
    ++result_.rejected;  // foreign block shape: cannot be ours
    return;
  }
  if (opt_.data_loss > 0.0 && opt_.rng.bernoulli(opt_.data_loss)) {
    ++result_.dropped;
    return;
  }
  ++result_.received;
  auto& dec = decoders_[hdr.tg];
  if (!dec.add(packet)) {
    ++result_.duplicates;
    return;
  }
  if (dec.decodable() && !done_[hdr.tg]) {
    const auto& data = dec.reconstruct();
    result_.decoded += dec.decoded_packets();
    done_[hdr.tg] = true;
    ++done_count_;
    // Eager end-to-end verification: the server discards decoded bytes
    // (holding 1000 sessions' payloads would defeat the point), so the
    // integrity check happens the moment a TG completes.
    if (opt_.expected && data != (*opt_.expected)[hdr.tg])
      ++payload_mismatches_;
  }
}

void ReceiverSessionDriver::handle_packet(const fec::Packet& packet) {
  const auto& hdr = packet.header;
  // Stale-incarnation filtering comes first: a dead sender's straggler
  // must neither end the session (its end marker), repair anything, nor
  // count as liveness for the idle clock.
  if (hdr.incarnation < known_inc_) {
    ++result_.stale_rejected;
    return;
  }
  known_inc_ = hdr.incarnation;
  last_rx_ = clk_.now();
  if (hdr.type == fec::PacketType::kPoll && hdr.tg == net::kUdpEndOfSession) {
    finish(net::UdpNpEndReason::kEndOfSession);
    return;
  }
  if (hdr.tg >= num_tgs_) return;  // foreign traffic

  switch (hdr.type) {
    case fec::PacketType::kData:
    case fec::PacketType::kParity:
      if (prior_[hdr.tg]) {
        // Exactly-once audit: a journal-confirmed TG must never be
        // re-multicast by the resumed sender.  A decoded-but-unconfirmed
        // TG legitimately is (the ACK never reached the journal) — that
        // is just a duplicate to suppress.
        if (confirmed_[hdr.tg])
          ++redelivered_prior_;
        else
          ++result_.duplicates;
        return;
      }
      // Repair traffic for the NAKed TG: the request was heard.
      if (nak_pending_ && hdr.tg == nak_tg_) nak_pending_ = false;
      accept_block_packet(packet);
      if (done_count_ >= cfg_.crash_after_tgs) {
        finish(net::UdpNpEndReason::kCrashed);
        return;
      }
      break;
    case fec::PacketType::kPoll: {
      const std::size_t l = prior_[hdr.tg] ? 0 : decoders_[hdr.tg].needed();
      if (l == 0) {
        if (cfg_.reliable_control) {
          // Reliable mode answers every POLL; silence is for the dead.
          send_feedback(hdr.tg, 0, hdr.seq);
          ++result_.acks_sent;
        }
        break;
      }
      send_feedback(hdr.tg, l, hdr.seq);
      ++result_.naks_sent;
      if (cfg_.reliable_control) {
        auto& bo = nak_backoffs_[hdr.tg];
        if (!bo)
          bo = std::make_unique<Backoff>(cfg_.retry,
                                         opt_.rng.split(0x7000 + hdr.tg));
        nak_pending_ = true;
        nak_tg_ = hdr.tg;
        nak_round_ = hdr.seq;
        nak_retry_at_ = clk_.now() + cfg_.poll_window +
                        (bo->exhausted() ? cfg_.poll_window : bo->next());
      }
      break;
    }
    case fec::PacketType::kNak:
      break;  // unicast topology: receivers do not overhear NAKs
  }
}

void ReceiverSessionDriver::finish(net::UdpNpEndReason reason) {
  if (finished_) return;
  result_.end_reason = reason;

  // Datagrams still held back by the reorder queue are "in flight" when
  // the session ends; flush them so a late shard can still complete a TG.
  if (impairment_) {
    for (const auto& bytes : impairment_->drain()) {
      try {
        const fec::Packet packet = fec::deserialize(bytes);
        if (packet.header.incarnation < known_inc_) {
          ++result_.stale_rejected;
          continue;
        }
        if ((packet.header.type == fec::PacketType::kData ||
             packet.header.type == fec::PacketType::kParity) &&
            packet.header.tg < num_tgs_) {
          if (prior_[packet.header.tg]) {
            if (confirmed_[packet.header.tg])
              ++redelivered_prior_;
            else
              ++result_.duplicates;
            continue;
          }
          accept_block_packet(packet);
        }
      } catch (const std::invalid_argument&) {
        // damaged in flight: loss
      }
    }
    result_.impairment = impairment_->stats();
  }

  // Unlike the blocking receiver, the driver does NOT materialise the
  // reconstructed groups in the result — at server scale that is the
  // whole payload of every session held live.  Integrity is audited
  // eagerly against Options::expected instead.
  result_.complete = done_count_ == num_tgs_;

  if (timer_armed_) {
    reactor_.cancel_timer(wake_timer_);
    timer_armed_ = false;
  }
  if (fd_registered_) {
    reactor_.remove_fd(socket_.fd());
    fd_registered_ = false;
  }
  finished_ = true;
  if (on_finished_) on_finished_();  // may reschedule our destruction; last
}

}  // namespace pbl::server
