#include "server/session_driver.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "protocol/nak_suppression.hpp"

namespace pbl::server {

using protocol::Backoff;
using protocol::Deadline;

// ---------------------------------------------------------------------------
// SenderSessionDriver
// ---------------------------------------------------------------------------

SenderSessionDriver::SenderSessionDriver(Reactor& reactor, net::UdpSocket socket,
                                         net::UdpGroup group,
                                         const net::UdpNpConfig& config,
                                         const std::vector<net::TgBytes>& groups,
                                         std::function<void()> on_finished)
    : reactor_(reactor), socket_(std::move(socket)), group_(std::move(group)),
      cfg_(config), groups_(groups), code_(config.k, config.k + config.h),
      clk_(config.clock ? *config.clock : protocol::steady_clock()),
      on_finished_(std::move(on_finished)) {
  if (config.k + config.h > 255)
    throw std::invalid_argument("SenderSessionDriver: k + h must be <= 255");
  if (group_.size() == 0)
    throw std::invalid_argument("SenderSessionDriver: empty group");
  if (cfg_.reliable_control) cfg_.retry.validate();
  if (!cfg_.resume_completed.empty() &&
      cfg_.resume_completed.size() != groups_.size())
    throw std::invalid_argument(
        "SenderSessionDriver: resume_completed size mismatch");
  if (!cfg_.resume_parities.empty() &&
      cfg_.resume_parities.size() != groups_.size())
    throw std::invalid_argument(
        "SenderSessionDriver: resume_parities size mismatch");
  for (const auto& tg : groups_)
    if (tg.size() != cfg_.k)
      throw std::invalid_argument("SenderSessionDriver: each TG needs k packets");
  std::size_t max_payload = cfg_.packet_len;
  for (const auto& g : groups_)
    if (!g.empty()) max_payload = std::max(max_payload, g[0].size());
  const std::size_t frames =
      cfg_.arena_frames > 0 ? cfg_.arena_frames
                            : std::max({cfg_.k, cfg_.h, std::size_t{1}});
  arena_ =
      std::make_unique<net::PacketArena>(fec::wire_size(max_payload), frames);
}

SenderSessionDriver::~SenderSessionDriver() {
  disarm_timer();
  disarm_flush_timer();
  if (fd_registered_) reactor_.remove_fd(socket_.fd());
}

void SenderSessionDriver::start() {
  if (started_) return;
  started_ = true;
  const auto& members = group_.members();
  evicted_.assign(members.size(), false);
  silent_.assign(members.size(), 0);
  delivered_.assign(members.size(), std::vector<bool>(groups_.size(), false));
  deficit_.assign(members.size(), 0);
  quarantined_.assign(members.size(), false);
  parity_high_.assign(groups_.size(), 0);
  for (std::size_t i = 0;
       i < cfg_.resume_parities.size() && i < groups_.size(); ++i)
    parity_high_[i] =
        std::min<std::size_t>(cfg_.resume_parities[i], cfg_.h);
  deadline_ = Deadline(clk_.now(), cfg_.reliable_control
                                       ? cfg_.retry.session_deadline
                                       : 0.0);
  pacer_ = net::Pacer(cfg_.overload.pace_rate, cfg_.overload.pace_burst,
                      clk_.now());
  expelled_.assign(members.size(), false);
  if (cfg_.guard.enabled) {
    auto gcfg = cfg_.guard;
    // The member identity rides in header.index only on the reliable
    // control plane; without it there is no claim to cross-check.
    gcfg.require_index_match = cfg_.reliable_control;
    guard_ = std::make_unique<net::PeerGuard>(gcfg, members, cfg_.k,
                                              groups_.size(), clk_.now());
  }
  if (cfg_.guard.auth)
    group_key_ = net::derive_group_key(cfg_.guard.auth_key);
  reactor_.add_fd(socket_.fd(), [this] { on_readable(); });
  fd_registered_ = true;
  tg_ = 0;
  begin_next_tg();
}

void SenderSessionDriver::stop() {
  if (finished_ || stopped_) return;
  stopped_ = true;
  disarm_timer();
  disarm_flush_timer();
  if (fd_registered_) {
    reactor_.remove_fd(socket_.fd());
    fd_registered_ = false;
  }
}

bool SenderSessionDriver::send_mc(fec::Packet packet) {
  if (stats_.crashed) return false;
  if (sends_ >= cfg_.crash_after_sends) {
    stats_.crashed = true;
    return false;
  }
  ++sends_;
  packet.header.incarnation = static_cast<std::uint8_t>(cfg_.incarnation);
  // Authenticated control plane: POLLs (including the end marker) carry
  // a group-keyed trailer so a hostile member cannot forge or replay
  // them at honest receivers.  One key for the whole group keeps the
  // fan-out bytes identical per member.
  if (cfg_.guard.auth && packet.header.type == fec::PacketType::kPoll)
    net::append_auth_trailer(packet, group_key_, ++ctl_seq_);
  // Best-effort control fan-out: a would-block tail is dropped rather
  // than parking the reactor in a blocking socket wait — control loss is
  // protocol-legal (re-POLL and NAK-retransmit machinery repairs it),
  // while a blocking retry under sustained pushback would starve every
  // other session on this thread.
  const auto bytes = fec::serialize(packet);
  std::vector<net::FrameRef> refs;
  refs.reserve(group_.members().size());
  for (const std::uint16_t port : group_.members())
    refs.push_back({port, bytes});
  if (socket_.send_batch(refs).status == net::SendStatus::kWouldBlock)
    ++stats_.would_block;
  return true;
}

bool SenderSessionDriver::send_to_targets(fec::Packet packet) {
  if (stats_.crashed) return false;
  if (sends_ >= cfg_.crash_after_sends) {
    stats_.crashed = true;
    return false;
  }
  ++sends_;
  packet.header.incarnation = static_cast<std::uint8_t>(cfg_.incarnation);
  if (cfg_.guard.auth && packet.header.type == fec::PacketType::kPoll)
    net::append_auth_trailer(packet, group_key_, ++ctl_seq_);
  const auto bytes = fec::serialize(packet);
  std::vector<net::FrameRef> refs;
  refs.reserve(cu_targets_.size());
  const auto& members = group_.members();
  for (const std::size_t m : cu_targets_) refs.push_back({members[m], bytes});
  if (socket_.send_batch(refs).status == net::SendStatus::kWouldBlock)
    ++stats_.would_block;
  return true;
}

void SenderSessionDriver::stage_frame(std::span<const std::uint8_t> frame) {
  if (burst_phase_ == BurstPhase::kCatchUpParity) {
    // Catch-up repair is unicast to the stragglers: the healthy group
    // already holds this TG and must not pay for the laggards' loss.
    const auto& members = group_.members();
    for (const std::size_t m : cu_targets_)
      burst_.push_back({members[m], frame});
    return;
  }
  for (const std::uint16_t port : group_.members())
    burst_.push_back({port, frame});
}

void SenderSessionDriver::start_burst(BurstPhase phase, std::size_t count) {
  burst_phase_ = phase;
  stage_count_ = count;
  stage_next_ = 0;
  burst_sent_ = 0;
  stall_since_ = -1.0;
  burst_.clear();
  arena_->release_all();
  pump_burst();
}

void SenderSessionDriver::pump_burst() {
  if (finished_ || stopped_ || burst_phase_ == BurstPhase::kNone) return;
  const auto& ov = cfg_.overload;
  for (;;) {
    const double now = clk_.now();
    bool arena_full = false;
    bool pacer_blocked = false;
    // Stage as many logical packets as the pacer and arena allow.  The
    // crash counter ticks per logical packet before its frames stage,
    // clamping the burst at the same wire position regardless of how
    // many arena generations or pacer deferrals the burst spans.
    while (stage_next_ < stage_count_) {
      if (stats_.crashed) break;
      if (sends_ >= cfg_.crash_after_sends) {
        stats_.crashed = true;
        break;
      }
      if (!pacer_.ready(now)) {
        pacer_blocked = true;
        break;
      }
      const auto frame = arena_->acquire();
      if (!frame) {
        arena_full = true;
        ++stats_.arena_deferrals;
        break;
      }
      ++sends_;
      pacer_.consume(now);
      const auto inc = static_cast<std::uint8_t>(cfg_.incarnation);
      std::size_t len = 0;
      if (burst_phase_ == BurstPhase::kData) {
        len = encoder_->write_data_frame(stage_next_, inc, frame->bytes);
        ++stats_.data_sent;
      } else {
        len = encoder_->write_parity_frame(parity_base_ + stage_next_, inc,
                                           frame->bytes);
        ++stats_.parity_sent;
      }
      stage_frame(frame->bytes.first(len));
      ++stage_next_;
    }

    // Flush everything staged but unsent.  send_batch's prefix contract
    // keeps the wire byte-identical however the burst is chopped.
    if (burst_sent_ < burst_.size()) {
      const auto r = socket_.send_batch(
          std::span<const net::FrameRef>(burst_).subspan(burst_sent_));
      burst_sent_ += r.sent;
      if (r.status == net::SendStatus::kWouldBlock) {
        ++stats_.would_block;
        // Partial progress restarts the stall clock: shedding is for a
        // socket that stopped draining, not one draining slowly.
        if (r.sent > 0 || stall_since_ < 0.0) stall_since_ = now;
        if (ov.stall_timeout > 0.0 &&
            now - stall_since_ >= ov.stall_timeout) {
          const bool parity_burst = burst_phase_ != BurstPhase::kData;
          if (ov.shed_policy == net::ShedPolicy::kDropNewestParity &&
              parity_burst) {
            // Shed the unsent tail of the repair burst: the next NAK
            // round re-requests whatever this drop cost.
            stats_.shed_frames += burst_.size() - burst_sent_;
            burst_sent_ = burst_.size();
            stage_count_ = stage_next_;
            stall_since_ = -1.0;
            continue;
          }
          if (ov.shed_policy == net::ShedPolicy::kRefuse) {
            stats_.shed_frames += burst_.size() - burst_sent_;
            stats_.report.overloaded = true;
            finish_session();
            return;
          }
          // kDefer (and data bursts under kDropNewestParity): originals
          // are never shed — keep waiting on the retry timer.
        }
        if (deadline_.expired(now)) {
          stats_.report.deadline_expired = true;
          finish_session();
          return;
        }
        arm_flush_timer(now + ov.retry_interval);
        return;
      }
      stall_since_ = -1.0;
    }

    // Everything staged so far is on the wire.
    if (stage_next_ >= stage_count_ || stats_.crashed) {
      on_burst_complete();
      return;
    }
    if (arena_full) {
      // The staged generation is fully flushed: recycle the arena and
      // keep staging — a tiny arena costs extra kernel batches, never
      // different bytes.
      burst_.clear();
      burst_sent_ = 0;
      arena_->release_all();
      continue;
    }
    if (pacer_blocked) {
      if (deadline_.expired(now)) {
        stats_.report.deadline_expired = true;
        finish_session();
        return;
      }
      arm_flush_timer(pacer_.earliest(now));
      return;
    }
  }
}

void SenderSessionDriver::on_burst_complete() {
  const BurstPhase phase = burst_phase_;
  burst_phase_ = BurstPhase::kNone;
  burst_.clear();
  burst_sent_ = 0;
  stage_next_ = 0;
  stage_count_ = 0;
  stall_since_ = -1.0;
  arena_->release_all();
  disarm_flush_timer();
  if (stats_.crashed) {
    finish_session();
    return;
  }
  switch (phase) {
    case BurstPhase::kData:
      send_poll();
      break;
    case BurstPhase::kParity:
      ++round_;
      send_poll();
      break;
    case BurstPhase::kCatchUpParity:
      ++cu_round_;
      send_catch_up_poll();
      break;
    case BurstPhase::kNone:
      break;
  }
}

void SenderSessionDriver::arm_flush_timer(double when) {
  if (flush_timer_armed_) reactor_.cancel_timer(flush_timer_);
  flush_timer_ = reactor_.add_timer(when, [this] {
    flush_timer_armed_ = false;
    pump_burst();
  });
  flush_timer_armed_ = true;
}

void SenderSessionDriver::disarm_flush_timer() {
  if (!flush_timer_armed_) return;
  reactor_.cancel_timer(flush_timer_);
  flush_timer_armed_ = false;
}

std::size_t SenderSessionDriver::member_of(std::uint16_t port) const {
  const auto& members = group_.members();
  for (std::size_t m = 0; m < members.size(); ++m)
    if (members[m] == port) return m;
  return members.size();  // unknown port: foreign feedback
}

bool SenderSessionDriver::confirmed() const {
  // Quarantined members no longer gate the round: their missing TGs are
  // owed to them by the catch-up pass (or eviction), not by the group.
  // Expelled (banned) members forfeited their claim entirely.
  for (std::size_t m = 0; m < group_.members().size(); ++m)
    if (!evicted_[m] && !quarantined_[m] && !expelled_[m] && !acked_[m])
      return false;
  return true;
}

bool SenderSessionDriver::tg_fully_delivered() const {
  for (std::size_t m = 0; m < group_.members().size(); ++m)
    if (quarantined_[m] && !evicted_[m] && !expelled_[m] &&
        !delivered_[m][tg_])
      return false;
  return true;
}

void SenderSessionDriver::refresh_expulsions() {
  if (!guard_) return;
  // Expulsion is sticky: a ban ever pronounced exempts that member from
  // the group's completeness requirement for the rest of the session,
  // even if the ban itself later expires into readmission.  Without
  // this, one Byzantine peer would hold every round open (or force
  // eviction metrics that mask real failures).
  for (std::size_t m = 0; m < group_.members().size(); ++m)
    if (!expelled_[m] && guard_->ever_banned(m)) expelled_[m] = true;
}

void SenderSessionDriver::complete_current_tg() {
  if (cfg_.on_tg_completed) cfg_.on_tg_completed(tg_);
  ++tgs_completed_;
}

void SenderSessionDriver::update_quarantine() {
  const std::size_t need = cfg_.overload.quarantine_deficit;
  if (need == 0 || catchup_) return;
  const auto& members = group_.members();
  std::size_t live = 0;
  std::size_t acked = 0;
  for (std::size_t m = 0; m < members.size(); ++m) {
    if (evicted_[m] || quarantined_[m] || expelled_[m]) continue;
    ++live;
    if (acked_[m]) ++acked;
  }
  // Deficit accrues only against an acked quorum: when the whole group
  // is struggling the problem is the sender/network, not a member.
  if (live == 0 || acked >= live) return;
  if (static_cast<double>(acked) + 1e-9 <
      cfg_.overload.quarantine_quorum * static_cast<double>(live))
    return;
  for (std::size_t m = 0; m < members.size(); ++m) {
    if (evicted_[m] || quarantined_[m] || expelled_[m] || acked_[m]) continue;
    if (++deficit_[m] >= need) {
      quarantined_[m] = true;
      ++stats_.members_quarantined;
    }
  }
}

void SenderSessionDriver::arm_window_timer(double window) {
  window_timer_ = reactor_.add_timer(clk_.now() + window, [this] {
    timer_armed_ = false;
    on_window_expired();
  });
  timer_armed_ = true;
}

void SenderSessionDriver::disarm_timer() {
  if (!timer_armed_) return;
  reactor_.cancel_timer(window_timer_);
  timer_armed_ = false;
}

void SenderSessionDriver::begin_next_tg() {
  // Skip TGs confirmed complete in a prior life; they are never re-sent.
  while (tg_ < groups_.size() && tg_ < cfg_.resume_completed.size() &&
         cfg_.resume_completed[tg_]) {
    ++stats_.tgs_skipped;
    ++tg_;
  }
  if (tg_ >= groups_.size()) {
    maybe_start_catch_up();
    return;
  }
  if (stats_.crashed) {
    finish_session();
    return;
  }
  if (deadline_.expired(clk_.now())) {
    stats_.report.deadline_expired = true;
    finish_session();
    return;
  }

  encoder_.emplace(static_cast<std::uint32_t>(tg_), code_, groups_[tg_]);
  // Round state initialises BEFORE the data burst: the burst may now
  // complete asynchronously (pacer, arena or kernel-pushback deferrals),
  // and feedback racing in meanwhile must find per-member state sized.
  acked_.assign(group_.members().size(), false);
  heard_.assign(group_.members().size(), false);
  poll_backoff_.emplace(cfg_.retry, Rng(cfg_.seed).split(0x9100 + tg_));
  parities_used_ = parity_high_[tg_];
  window_pad_ = 0.0;
  round_ = 0;
  // Zero-copy burst: frames written in place into arena slabs, batched
  // to the kernel by the pump (see pump_burst for the crash-position
  // and byte-identity invariants).
  start_burst(BurstPhase::kData, cfg_.k);
}

void SenderSessionDriver::send_poll() {
  if (round_ >= cfg_.max_rounds) {
    // Round cap hit: abandon this TG (same silent fall-through as the
    // blocking sender's for-loop exhausting) and move on.
    ++tg_;
    begin_next_tg();
    return;
  }
  fec::Packet poll;
  poll.header.type = fec::PacketType::kPoll;
  poll.header.tg = static_cast<std::uint32_t>(tg_);
  poll.header.k = static_cast<std::uint16_t>(cfg_.k);
  poll.header.seq = ++round_id_;
  if (!send_mc(poll)) {
    finish_session();
    return;
  }
  ++stats_.polls_sent;

  l_ = 0;
  round_naks_ = 0;
  std::fill(heard_.begin(), heard_.end(), false);
  const double now = clk_.now();
  const double window =
      std::min(cfg_.poll_window + window_pad_, deadline_.remaining(now));
  arm_window_timer(window);
}

void SenderSessionDriver::on_readable() {
  while (!finished_ && !stopped_) {
    auto dg = socket_.receive_from(0.0);
    if (!dg) {
      if (!socket_.has_pending()) break;
      continue;
    }
    const fec::Packet* nak = &dg->packet;
    // Hostile-peer admission runs before ANY protocol state is touched:
    // unknown sources, shape-invalid frames, identity spoofs, bad tags,
    // replays and over-rate peers are counted and dropped here.
    if (guard_ &&
        guard_->check(dg->src_port, *nak, clk_.now()) !=
            net::PeerVerdict::kAccept) {
      stats_.guard = guard_->stats();
      continue;
    }
    if (nak->header.type != fec::PacketType::kNak ||
        nak->header.tg != static_cast<std::uint32_t>(tg_))
      continue;
    // Even with the guard off, feedback whose claimed identity
    // contradicts the kernel-reported source never reaches liveness
    // state (the header.index port-smuggling fix).  With the guard on
    // the same check already ran (and struck the peer) inside check().
    if (cfg_.reliable_control && !guard_ &&
        nak->header.index != dg->src_port) {
      ++stats_.feedback_addr_mismatch;
      continue;
    }
    std::size_t m = group_.members().size();
    if (cfg_.reliable_control) {
      m = member_of(nak->header.index);
      if (m < group_.members().size()) {
        heard_[m] = true;
        silent_[m] = 0;
        if (nak->header.count == 0) {
          ++stats_.acks_received;
          deficit_[m] = 0;  // a serviced member is no longer lagging
          if (!acked_[m]) {
            acked_[m] = true;
            delivered_[m][tg_] = true;
          }
        }
      }
    }
    if (nak->header.count > 0 && nak->header.seq == round_id_) {
      // A quarantined member's NAK is liveness, not demand: its missing
      // TGs are owed by the catch-up pass, where its NAKs count again.
      if (!catchup_ && m < group_.members().size() && quarantined_[m]) {
        ++stats_.naks_suppressed;
        continue;
      }
      // Per-round feedback budget (Section 3.3 implosion control): NAKs
      // past the budget are dropped this round; the next round's POLL
      // re-collects anyone still unserved.
      if (cfg_.overload.feedback_budget > 0 &&
          round_naks_ >= cfg_.overload.feedback_budget) {
        ++stats_.naks_suppressed;
        continue;
      }
      ++round_naks_;
      ++stats_.naks_received;
      l_ = std::max(l_, static_cast<std::size_t>(nak->header.count));
    }
  }
}

void SenderSessionDriver::on_window_expired() {
  if (finished_ || stopped_) return;
  // Pull in any feedback that raced the timer into the socket buffer.
  on_readable();
  if (catchup_)
    after_catch_up_window();
  else
    after_window();
}

void SenderSessionDriver::after_window() {
  refresh_expulsions();
  const auto next_tg = [&] {
    ++tg_;
    begin_next_tg();
  };
  // A confirmed round closes the TG, but its completion journals only
  // once every quarantined live member holds it too — a journaled TG is
  // never re-sent, so journaling early would silently strand the
  // stragglers' copies (exactly-once).  Catch-up journals the rest.
  const auto advance_confirmed = [&] {
    if (tg_fully_delivered()) complete_current_tg();
    next_tg();
  };

  if (!cfg_.reliable_control) {
    if (l_ == 0) {
      complete_current_tg();  // silence: all receivers reconstructed it
      next_tg();
      return;
    }
  } else {
    if (confirmed()) {
      advance_confirmed();  // every live non-quarantined member acked
      return;
    }
    if (deadline_.expired(clk_.now())) {
      stats_.report.deadline_expired = true;
      finish_session();
      return;
    }
    update_quarantine();
    if (confirmed()) {
      advance_confirmed();  // quarantining removed the last holdout
      return;
    }
    if (l_ == 0) {
      // A totally unanswered round: age every unconfirmed member and
      // re-POLL with a widened window — unless the budget is spent.
      // Expelled members are expected to be silent (their feedback is
      // dropped at the guard); aging them would turn every ban into a
      // spurious eviction and fail sessions the adversary cannot touch.
      for (std::size_t m = 0; m < group_.members().size(); ++m) {
        if (evicted_[m] || expelled_[m] || acked_[m] || heard_[m]) continue;
        if (++silent_[m] >= cfg_.retry.grace_rounds) {
          evicted_[m] = true;
          ++stats_.evictions;
        }
      }
      if (confirmed()) {
        advance_confirmed();
        return;
      }
      if (poll_backoff_->exhausted()) {
        ++stats_.tgs_unconfirmed;
        next_tg();
        return;
      }
      ++stats_.poll_retries;
      window_pad_ = poll_backoff_->next();
      ++round_;
      send_poll();
      return;
    }
    window_pad_ = 0.0;  // progress: the next round is a normal one
  }

  std::size_t l = std::min(l_, cfg_.h - parities_used_);
  if (l == 0) {
    ++stats_.tgs_exhausted;
    next_tg();
    return;
  }
  // Journal the new high-water BEFORE the parities leave: if the sender
  // dies in between, the next life merely skips indices that were never
  // sent (wasteful, never wrong) — the reverse order could re-send
  // indices receivers already hold.
  parities_used_ += l;
  parity_high_[tg_] = parities_used_;
  if (cfg_.on_parities_sent) cfg_.on_parities_sent(tg_, parities_used_);
  parity_base_ = parities_used_ - l;
  start_burst(BurstPhase::kParity, l);
}

// ---- slow-receiver catch-up (net/overload.hpp) ----------------------------
//
// After the main pass, each TG still owed to a live quarantined member is
// served again: a unicast POLL to the stragglers, then parity-only repair
// under the remaining per-TG budget, bounded by catch_up_rounds — the
// late-join idea applied to members who fell behind instead of arriving
// late.  A member still missing data when the budget ends is evicted, so
// the session's outcome never waits on a stuck receiver.

void SenderSessionDriver::maybe_start_catch_up() {
  if (!catchup_) {
    catchup_ = true;
    cu_tgs_.clear();
    for (std::size_t t = 0; t < groups_.size(); ++t) {
      if (t < cfg_.resume_completed.size() && cfg_.resume_completed[t])
        continue;
      for (std::size_t m = 0; m < group_.members().size(); ++m) {
        if (quarantined_[m] && !evicted_[m] && !expelled_[m] &&
            !delivered_[m][t]) {
          cu_tgs_.push_back(t);
          break;
        }
      }
    }
    cu_i_ = 0;
  }
  begin_catch_up_tg();
}

void SenderSessionDriver::begin_catch_up_tg() {
  if (stats_.crashed || cu_i_ >= cu_tgs_.size()) {
    finish_session();
    return;
  }
  if (deadline_.expired(clk_.now())) {
    stats_.report.deadline_expired = true;
    finish_session();
    return;
  }
  tg_ = cu_tgs_[cu_i_];
  encoder_.emplace(static_cast<std::uint32_t>(tg_), code_, groups_[tg_]);
  parities_used_ = parity_high_[tg_];
  acked_.assign(group_.members().size(), false);
  heard_.assign(group_.members().size(), false);
  cu_targets_.clear();
  for (std::size_t m = 0; m < group_.members().size(); ++m)
    if (quarantined_[m] && !evicted_[m] && !expelled_[m] &&
        !delivered_[m][tg_])
      cu_targets_.push_back(m);
  if (cu_targets_.empty()) {
    // Served (or evicted) since the work list was built: safe to journal.
    complete_current_tg();
    ++cu_i_;
    begin_catch_up_tg();
    return;
  }
  cu_round_ = 0;
  send_catch_up_poll();
}

void SenderSessionDriver::send_catch_up_poll() {
  fec::Packet poll;
  poll.header.type = fec::PacketType::kPoll;
  poll.header.tg = static_cast<std::uint32_t>(tg_);
  poll.header.k = static_cast<std::uint16_t>(cfg_.k);
  poll.header.seq = ++round_id_;
  if (!send_to_targets(poll)) {
    finish_session();
    return;
  }
  ++stats_.polls_sent;
  l_ = 0;
  round_naks_ = 0;
  std::fill(heard_.begin(), heard_.end(), false);
  arm_window_timer(std::min(cfg_.poll_window, deadline_.remaining(clk_.now())));
}

void SenderSessionDriver::after_catch_up_window() {
  refresh_expulsions();
  std::vector<std::size_t> remaining;
  for (const std::size_t m : cu_targets_)
    if (!evicted_[m] && !expelled_[m] && !delivered_[m][tg_])
      remaining.push_back(m);
  cu_targets_ = std::move(remaining);
  const auto close_tg = [&] {
    complete_current_tg();
    ++cu_i_;
    begin_catch_up_tg();
  };
  if (cu_targets_.empty()) {
    close_tg();
    return;
  }
  if (deadline_.expired(clk_.now())) {
    stats_.report.deadline_expired = true;
    finish_session();
    return;
  }
  const std::size_t budget_left = cfg_.h - parities_used_;
  if (cu_round_ >= cfg_.overload.catch_up_rounds || budget_left == 0) {
    // Budget spent: evict the stragglers via the liveness machinery so
    // the group outcome stops waiting on them, then close the TG.
    for (const std::size_t m : cu_targets_) {
      evicted_[m] = true;
      ++stats_.evictions;
    }
    cu_targets_.clear();
    close_tg();
    return;
  }
  // Serve at least one fresh parity per round even when the straggler's
  // NAK was lost — parity is the only repair currency here.
  std::size_t l = std::min(std::max<std::size_t>(l_, 1), budget_left);
  parities_used_ += l;
  parity_high_[tg_] = parities_used_;
  if (cfg_.on_parities_sent) cfg_.on_parities_sent(tg_, parities_used_);
  parity_base_ = parities_used_ - l;
  start_burst(BurstPhase::kCatchUpParity, l);
}

void SenderSessionDriver::finish_session() {
  if (finished_) return;
  refresh_expulsions();
  if (guard_) stats_.guard = guard_->stats();
  if (!stats_.crashed) {
    // A crashed sender never says goodbye — the receivers' phase-aware
    // idle clocks (or its own next incarnation) must end their runs.
    fec::Packet end;
    end.header.type = fec::PacketType::kPoll;
    end.header.tg = net::kUdpEndOfSession;
    send_mc(end);
  }
  if (!groups_.empty()) {
    stats_.tx_per_packet =
        static_cast<double>(stats_.data_sent + stats_.parity_sent) /
        (static_cast<double>(cfg_.k) * static_cast<double>(groups_.size()));
  }
  if (cfg_.reliable_control) {
    auto& rep = stats_.report;
    rep.delivered = delivered_;
    rep.evicted = evicted_;
    rep.evictions = stats_.evictions;
    rep.units_failed = stats_.tgs_exhausted + stats_.tgs_unconfirmed;
    rep.poll_retries = stats_.poll_retries;
    rep.shed_frames = stats_.shed_frames;
    rep.quarantined = stats_.members_quarantined;
    for (const bool e : expelled_) rep.expelled += e ? 1 : 0;
    // `complete` = every NON-expelled member delivered every unit, with
    // two exemptions: TGs a prior life confirmed (their rows are
    // vacuously incomplete this life), and members banished for hostile
    // behaviour (they forfeited the group's delivery obligation).
    rep.complete = !rep.deadline_expired && !rep.overloaded &&
                   rep.evictions == 0 && rep.units_failed == 0;
    if (rep.complete)
      for (std::size_t m = 0; m < rep.delivered.size(); ++m) {
        if (m < expelled_.size() && expelled_[m]) continue;
        const auto& row = rep.delivered[m];
        for (std::size_t i = 0; i < row.size(); ++i)
          if (!row[i] && !(i < cfg_.resume_completed.size() &&
                           cfg_.resume_completed[i]))
            rep.complete = false;
      }
  }
  disarm_timer();
  disarm_flush_timer();
  burst_phase_ = BurstPhase::kNone;
  if (fd_registered_) {
    reactor_.remove_fd(socket_.fd());
    fd_registered_ = false;
  }
  finished_ = true;
  if (on_finished_) on_finished_();  // may reschedule our destruction; last
}

// ---------------------------------------------------------------------------
// ReceiverSessionDriver
// ---------------------------------------------------------------------------

ReceiverSessionDriver::ReceiverSessionDriver(
    Reactor& reactor, net::UdpSocket socket, std::uint16_t sender_port,
    std::size_t num_tgs, const net::UdpNpConfig& config, Options options,
    std::function<void()> on_finished)
    : reactor_(reactor), socket_(std::move(socket)), sender_port_(sender_port),
      num_tgs_(num_tgs), cfg_(config), opt_(std::move(options)),
      code_(config.k, config.k + config.h),
      clk_(config.clock ? *config.clock : protocol::steady_clock()),
      on_finished_(std::move(on_finished)) {
  if (opt_.data_loss < 0.0 || opt_.data_loss >= 1.0)
    throw std::invalid_argument("ReceiverSessionDriver: data_loss in [0,1)");
  if (cfg_.reliable_control) cfg_.retry.validate();
  if (!opt_.resume_decoded.empty() && opt_.resume_decoded.size() != num_tgs_)
    throw std::invalid_argument(
        "ReceiverSessionDriver: resume_decoded size mismatch");
  if (!opt_.resume_confirmed.empty() &&
      opt_.resume_confirmed.size() != num_tgs_)
    throw std::invalid_argument(
        "ReceiverSessionDriver: resume_confirmed size mismatch");
  if (opt_.impairment.enabled() || opt_.impairment.control_enabled()) {
    impairment_ = std::make_shared<net::Impairment>(opt_.impairment);
    socket_.set_impairment(impairment_);
  }

  decoders_.reserve(num_tgs_);
  for (std::uint32_t i = 0; i < num_tgs_; ++i)
    decoders_.emplace_back(i, code_, cfg_.packet_len);
  done_.assign(num_tgs_, false);
  prior_.assign(num_tgs_, false);
  confirmed_.assign(num_tgs_, false);
  // prior_ is the UNION of what this member decoded and what the sender
  // journal confirmed: the union protects against a lost receiver state
  // file (a confirmed TG still counts as delivered — its confirmation
  // proves a prior life ACKed it, which proves it decoded).
  for (std::size_t i = 0; i < opt_.resume_decoded.size(); ++i)
    if (opt_.resume_decoded[i]) prior_[i] = true;
  for (std::size_t i = 0; i < opt_.resume_confirmed.size(); ++i)
    if (opt_.resume_confirmed[i]) prior_[i] = confirmed_[i] = true;
  for (std::size_t i = 0; i < num_tgs_; ++i) {
    if (!prior_[i]) continue;
    done_[i] = true;  // decoded in a prior life counts toward completion
    ++done_count_;
  }
  nak_backoffs_.resize(num_tgs_);
  supp_rng_ = opt_.rng.split(0x510F);
  known_inc_ = static_cast<std::uint8_t>(
      std::max(cfg_.incarnation, opt_.resume_incarnation));
  if (cfg_.guard.auth) {
    // Feedback we send is tagged under OUR member key (the sender
    // verifies it per-source); control we accept must carry the shared
    // group key (one tag per POLL preserves the multicast fan-out).
    member_key_ = net::derive_member_key(cfg_.guard.auth_key, socket_.port());
    group_key_ = net::derive_group_key(cfg_.guard.auth_key);
  }
}

ReceiverSessionDriver::~ReceiverSessionDriver() {
  if (timer_armed_) reactor_.cancel_timer(wake_timer_);
  if (fd_registered_) reactor_.remove_fd(socket_.fd());
}

void ReceiverSessionDriver::start() {
  if (started_) return;
  started_ = true;
  last_rx_ = clk_.now();
  result_.end_reason = net::UdpNpEndReason::kMidSessionSilence;
  reactor_.add_fd(socket_.fd(), [this] { on_readable(); });
  fd_registered_ = true;
  reschedule(idle_deadline());
}

void ReceiverSessionDriver::stop() {
  if (finished_) return;
  auto notify = std::move(on_finished_);
  on_finished_ = nullptr;  // drain stop: the caller does its own bookkeeping
  finish(done_count_ == num_tgs_ ? net::UdpNpEndReason::kDrainTimeout
                                 : net::UdpNpEndReason::kMidSessionSilence);
  on_finished_ = std::move(notify);
}

double ReceiverSessionDriver::idle_deadline() const {
  const double budget =
      done_count_ == num_tgs_ ? cfg_.drain_timeout : opt_.idle_timeout;
  return last_rx_ + budget;
}

std::vector<bool> ReceiverSessionDriver::decoded_bitmap() const {
  return done_;
}

void ReceiverSessionDriver::reschedule(double next_due) {
  if (cfg_.reliable_control && nak_pending_)
    next_due = std::min(next_due, nak_retry_at_);
  // An armed-too-early timer merely wakes us spuriously (on_wake rechecks
  // and re-arms), so only replace it when it would fire too LATE.
  if (timer_armed_ && armed_at_ <= next_due) return;
  if (timer_armed_) reactor_.cancel_timer(wake_timer_);
  armed_at_ = next_due;
  wake_timer_ = reactor_.add_timer(next_due, [this] {
    timer_armed_ = false;
    on_wake();
  });
  timer_armed_ = true;
}

void ReceiverSessionDriver::send_feedback(std::uint32_t tg, std::size_t count,
                                          std::uint32_t seq) {
  fec::Packet fb;
  fb.header.type = fec::PacketType::kNak;
  fb.header.tg = tg;
  fb.header.count = static_cast<std::uint16_t>(count);
  fb.header.seq = seq;
  fb.header.incarnation = known_inc_;
  // The port rides in the header for the sender's liveness tracking;
  // the kernel-reported source address must corroborate it (the guard —
  // and the always-on driver cross-check — reject mismatches).
  if (cfg_.reliable_control) fb.header.index = socket_.port();
  // Every send gets a FRESH feedback sequence, so honest retransmissions
  // of the same NAK pass the sender's replay window while a verbatim
  // capture-and-replay of old bytes does not.
  if (cfg_.guard.auth) net::append_auth_trailer(fb, member_key_, fbseq_++);
  socket_.send_to(sender_port_, fb);
}

void ReceiverSessionDriver::on_readable() {
  while (!finished_) {
    auto dg = socket_.receive_from(0.0);
    if (!dg) {
      if (!socket_.has_pending()) break;
      continue;
    }
    // Guarded receivers only listen to their sender: a peer injecting
    // frames directly at members (fake end markers, garbage repair) is
    // rejected on source address before any header field is believed.
    if (cfg_.guard.enabled && dg->src_port != sender_port_) {
      ++result_.foreign_rejected;
      continue;
    }
    handle_packet(dg->packet);
  }
  if (!finished_) reschedule(idle_deadline());
}

void ReceiverSessionDriver::on_wake() {
  if (finished_) return;
  const double now = clk_.now();
  if (cfg_.reliable_control && nak_pending_ && now >= nak_retry_at_) {
    // The NAK (or its repair) may have been lost: retransmit under this
    // TG's backoff until served or the budget runs out.
    const std::size_t need = prior_[nak_tg_] ? 0 : decoders_[nak_tg_].needed();
    auto& bo = nak_backoffs_[nak_tg_];
    if (need == 0 || !bo || bo->exhausted()) {
      nak_pending_ = false;
      nak_first_ = false;
    } else if (nak_first_) {
      // The suppression slot elapsed with no repair covering us: this IS
      // the first send of the NAK, not a retransmission.
      nak_first_ = false;
      ++result_.naks_sent;
      send_feedback(nak_tg_, need, nak_round_);
      nak_retry_at_ = clk_.now() + cfg_.poll_window + bo->next();
    } else {
      ++result_.nak_retries;
      ++result_.naks_sent;
      send_feedback(nak_tg_, need, nak_round_);
      nak_retry_at_ = clk_.now() + cfg_.poll_window + bo->next();
    }
  }
  if (clk_.now() >= idle_deadline()) {
    finish(done_count_ == num_tgs_ ? net::UdpNpEndReason::kDrainTimeout
                                   : net::UdpNpEndReason::kMidSessionSilence);
    return;
  }
  reschedule(idle_deadline());
}

void ReceiverSessionDriver::accept_block_packet(const fec::Packet& packet) {
  const auto& hdr = packet.header;
  if (hdr.k != cfg_.k || hdr.n != cfg_.k + cfg_.h ||
      hdr.index >= cfg_.k + cfg_.h || packet.payload.size() != cfg_.packet_len) {
    ++result_.rejected;  // foreign block shape: cannot be ours
    return;
  }
  if (opt_.data_loss > 0.0 && opt_.rng.bernoulli(opt_.data_loss)) {
    ++result_.dropped;
    return;
  }
  ++result_.received;
  auto& dec = decoders_[hdr.tg];
  if (!dec.add(packet)) {
    ++result_.duplicates;
    return;
  }
  if (dec.decodable() && !done_[hdr.tg]) {
    const auto& data = dec.reconstruct();
    result_.decoded += dec.decoded_packets();
    done_[hdr.tg] = true;
    ++done_count_;
    // Eager end-to-end verification: the server discards decoded bytes
    // (holding 1000 sessions' payloads would defeat the point), so the
    // integrity check happens the moment a TG completes.
    if (opt_.expected && data != (*opt_.expected)[hdr.tg])
      ++payload_mismatches_;
  }
}

void ReceiverSessionDriver::handle_packet(const fec::Packet& packet) {
  const auto& hdr = packet.header;
  // Authenticated control comes before EVERYTHING: an unverified POLL —
  // including a forged or replayed end marker — must not advance
  // known_inc_, refresh the idle clock, or end the session.  (DATA and
  // PARITY ride the zero-copy arena path untagged; their integrity is
  // covered end-to-end by the eager payload verification instead.)
  if (cfg_.guard.auth && hdr.type == fec::PacketType::kPoll &&
      !net::verify_auth_trailer(packet, group_key_)) {
    ++result_.auth_rejected;
    return;
  }
  // Stale-incarnation filtering comes next: a dead sender's straggler
  // must neither end the session (its end marker), repair anything, nor
  // count as liveness for the idle clock.
  if (hdr.incarnation < known_inc_) {
    ++result_.stale_rejected;
    return;
  }
  known_inc_ = hdr.incarnation;
  last_rx_ = clk_.now();
  if (hdr.type == fec::PacketType::kPoll && hdr.tg == net::kUdpEndOfSession) {
    finish(net::UdpNpEndReason::kEndOfSession);
    return;
  }
  if (hdr.tg >= num_tgs_) return;  // foreign traffic

  switch (hdr.type) {
    case fec::PacketType::kData:
    case fec::PacketType::kParity:
      if (prior_[hdr.tg]) {
        // Exactly-once audit: a journal-confirmed TG must never be
        // re-multicast by the resumed sender.  A decoded-but-unconfirmed
        // TG legitimately is (the ACK never reached the journal) — that
        // is just a duplicate to suppress.
        if (confirmed_[hdr.tg])
          ++redelivered_prior_;
        else
          ++result_.duplicates;
        return;
      }
      // Repair traffic for the NAKed TG: the request was heard.  A NAK
      // still sitting in its suppression slot is cancelled outright —
      // another member's request covered ours (Section 5.1 damping).
      if (nak_pending_ && hdr.tg == nak_tg_) {
        if (nak_first_) {
          ++result_.naks_suppressed;
          nak_first_ = false;
        }
        nak_pending_ = false;
      }
      accept_block_packet(packet);
      if (done_count_ >= cfg_.crash_after_tgs) {
        finish(net::UdpNpEndReason::kCrashed);
        return;
      }
      break;
    case fec::PacketType::kPoll: {
      const std::size_t l = prior_[hdr.tg] ? 0 : decoders_[hdr.tg].needed();
      if (l == 0) {
        if (cfg_.reliable_control) {
          // Reliable mode answers every POLL; silence is for the dead.
          send_feedback(hdr.tg, 0, hdr.seq);
          ++result_.acks_sent;
        }
        break;
      }
      if (cfg_.overload.nak_suppression && cfg_.reliable_control) {
        // Runtime slotting (Section 5.1): instead of answering the POLL
        // instantly, draw a seeded slot delay keyed to how much we need
        // — the needier answer sooner — and send only if no repair for
        // this TG lands first.  The trailing reschedule() in
        // on_readable folds nak_retry_at_ into the wake timer.
        auto& bo = nak_backoffs_[hdr.tg];
        if (!bo)
          bo = std::make_unique<Backoff>(cfg_.retry,
                                         opt_.rng.split(0x7000 + hdr.tg));
        const double slot =
            cfg_.overload.nak_slot > 0.0
                ? cfg_.overload.nak_slot
                : cfg_.poll_window / static_cast<double>(cfg_.k + 1);
        nak_pending_ = true;
        nak_first_ = true;
        nak_tg_ = hdr.tg;
        nak_round_ = hdr.seq;
        nak_retry_at_ =
            clk_.now() + protocol::nak_backoff(cfg_.k, l, slot, supp_rng_);
        break;
      }
      send_feedback(hdr.tg, l, hdr.seq);
      ++result_.naks_sent;
      if (cfg_.reliable_control) {
        auto& bo = nak_backoffs_[hdr.tg];
        if (!bo)
          bo = std::make_unique<Backoff>(cfg_.retry,
                                         opt_.rng.split(0x7000 + hdr.tg));
        nak_pending_ = true;
        nak_tg_ = hdr.tg;
        nak_round_ = hdr.seq;
        nak_retry_at_ = clk_.now() + cfg_.poll_window +
                        (bo->exhausted() ? cfg_.poll_window : bo->next());
      }
      break;
    }
    case fec::PacketType::kNak:
      break;  // unicast topology: receivers do not overhear NAKs
  }
}

void ReceiverSessionDriver::finish(net::UdpNpEndReason reason) {
  if (finished_) return;
  result_.end_reason = reason;

  // Datagrams still held back by the reorder queue are "in flight" when
  // the session ends; flush them so a late shard can still complete a TG.
  if (impairment_) {
    for (const auto& bytes : impairment_->drain()) {
      try {
        const fec::Packet packet = fec::deserialize(bytes);
        if (packet.header.incarnation < known_inc_) {
          ++result_.stale_rejected;
          continue;
        }
        if ((packet.header.type == fec::PacketType::kData ||
             packet.header.type == fec::PacketType::kParity) &&
            packet.header.tg < num_tgs_) {
          if (prior_[packet.header.tg]) {
            if (confirmed_[packet.header.tg])
              ++redelivered_prior_;
            else
              ++result_.duplicates;
            continue;
          }
          accept_block_packet(packet);
        }
      } catch (const std::invalid_argument&) {
        // damaged in flight: loss
      }
    }
    result_.impairment = impairment_->stats();
  }

  // Unlike the blocking receiver, the driver does NOT materialise the
  // reconstructed groups in the result — at server scale that is the
  // whole payload of every session held live.  Integrity is audited
  // eagerly against Options::expected instead.
  result_.complete = done_count_ == num_tgs_;

  if (timer_armed_) {
    reactor_.cancel_timer(wake_timer_);
    timer_armed_ = false;
  }
  if (fd_registered_) {
    reactor_.remove_fd(socket_.fd());
    fd_registered_ = false;
  }
  finished_ = true;
  if (on_finished_) on_finished_();  // may reschedule our destruction; last
}

}  // namespace pbl::server
