// Event-driven ports of the blocking UDP NP session endpoints
// (net/udp/udp_np.hpp), shaped for the reactor: where UdpNpSender owns a
// thread and blocks in socket waits, SenderSessionDriver owns nothing
// but its state machine — the reactor feeds it readability events and
// timer expiries, so thousands of concurrent sessions share one thread.
//
// The protocol logic is the SAME as the blocking pair, feature for
// feature: reliable-control ACK/liveness/eviction, seeded re-POLL and
// NAK-retransmit backoff, session deadlines, incarnation stamping and
// stale rejection, journal write-ahead hooks, parity high-water resume,
// crash fault injection.  Time comes exclusively from the injected
// clock in UdpNpConfig::clock, so the drivers can be unit-tested on a
// ManualClock by pumping events by hand.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "fec/fec_block.hpp"
#include "net/pacer.hpp"
#include "net/udp/packet_arena.hpp"
#include "net/udp/udp_np.hpp"
#include "server/reactor.hpp"

namespace pbl::server {

/// Non-blocking sender: drives one NP session (k data per TG, POLL/NAK
/// rounds, parity repair) from reactor callbacks.  `groups` must outlive
/// the driver — the server owns the payload so it can verify receivers
/// against it after the drivers are gone.
class SenderSessionDriver {
 public:
  SenderSessionDriver(Reactor& reactor, net::UdpSocket socket,
                      net::UdpGroup group, const net::UdpNpConfig& config,
                      const std::vector<net::TgBytes>& groups,
                      std::function<void()> on_finished);
  ~SenderSessionDriver();
  SenderSessionDriver(const SenderSessionDriver&) = delete;
  SenderSessionDriver& operator=(const SenderSessionDriver&) = delete;

  void start();
  /// Force-stop for drain: unregisters from the reactor immediately, no
  /// end-of-session marker (the journal is the handoff to the next
  /// life).  Does NOT invoke on_finished — the caller is the one
  /// stopping and does its own bookkeeping.
  void stop();

  bool finished() const noexcept { return finished_; }
  bool stopped() const noexcept { return stopped_; }
  const net::UdpNpSenderStats& stats() const noexcept { return stats_; }
  /// TGs confirmed complete this life (journal hook count).
  std::uint64_t tgs_completed() const noexcept { return tgs_completed_; }
  /// Index of the TG currently in repair (== num TGs when done).
  std::size_t current_tg() const noexcept { return tg_; }
  std::uint16_t port() const noexcept { return socket_.port(); }
  /// The session socket, exposed so overload tests and the server's
  /// fault plan can install send-errno injection on a live driver.
  net::UdpSocket& socket() noexcept { return socket_; }
  std::uint64_t injected_send_failures() const noexcept {
    return socket_.injected_send_failures();
  }
  std::uint64_t arena_canary_violations() const noexcept {
    return arena_->canary_violations();
  }
  /// Receive-path desync evidence (see UdpSocket::frame_resyncs).
  std::uint64_t frame_resyncs() const noexcept {
    return socket_.frame_resyncs();
  }
  std::uint64_t frames_skipped() const noexcept {
    return socket_.frames_skipped();
  }

 private:
  /// What the in-flight burst carries — determines the frame writer, the
  /// fan-out set, and what happens when the burst completes.
  enum class BurstPhase { kNone, kData, kParity, kCatchUpParity };

  void on_readable();
  void on_window_expired();
  void begin_next_tg();
  void send_poll();
  void after_window();  // the post-collect decision logic
  void finish_session();
  bool send_mc(fec::Packet packet);
  /// Best-effort unicast of a control packet to the catch-up targets.
  bool send_to_targets(fec::Packet packet);
  /// Fans a pre-framed DATA/PARITY frame out to the burst's destination
  /// set (the whole group, or cu_targets_ during catch-up).
  void stage_frame(std::span<const std::uint8_t> frame);
  /// Opens a resumable burst of `count` logical packets and pumps it.
  void start_burst(BurstPhase phase, std::size_t count);
  /// The burst engine: stages frames as the pacer and arena allow,
  /// flushes them with non-blocking send_batch, and on pushback or
  /// exhaustion defers itself on a reactor timer instead of blocking —
  /// the reactor thread is never parked in a socket wait.
  void pump_burst();
  void on_burst_complete();
  void arm_flush_timer(double when);
  void disarm_flush_timer();
  void arm_window_timer(double window);
  void disarm_timer();
  bool confirmed() const;
  /// True when every quarantined live member holds the current TG —
  /// only then may its completion be journaled (exactly-once).
  bool tg_fully_delivered() const;
  void complete_current_tg();
  /// Service-deficit accounting: once an acked quorum exists, laggards
  /// accrue deficit and cross into quarantine at the configured bound.
  void update_quarantine();
  void maybe_start_catch_up();
  void begin_catch_up_tg();
  void send_catch_up_poll();
  void after_catch_up_window();
  std::size_t member_of(std::uint16_t port) const;
  /// Marks members the guard has banned as expelled (sticky) — the round
  /// closer and the final report stop waiting for them.
  void refresh_expulsions();

  Reactor& reactor_;
  net::UdpSocket socket_;
  net::UdpGroup group_;
  net::UdpNpConfig cfg_;
  const std::vector<net::TgBytes>& groups_;
  fec::RseCode code_;
  const protocol::Clock& clk_;
  std::function<void()> on_finished_;

  net::UdpNpSenderStats stats_;
  std::uint64_t tgs_completed_ = 0;
  bool started_ = false;
  bool finished_ = false;
  bool stopped_ = false;
  bool fd_registered_ = false;

  // Session-wide state (mirrors UdpNpSender::transfer locals).
  std::uint32_t round_id_ = 0;
  std::size_t sends_ = 0;
  // Zero-copy burst path: DATA/PARITY frames are written in place into
  // arena slabs and batched per burst (see UdpNpSender::transfer).
  std::unique_ptr<net::PacketArena> arena_;
  std::vector<net::FrameRef> burst_;
  std::vector<bool> evicted_;
  std::vector<std::size_t> silent_;
  std::vector<std::vector<bool>> delivered_;
  protocol::Deadline deadline_;

  // Per-TG round state.
  std::size_t tg_ = 0;
  std::optional<fec::TgEncoder> encoder_;
  std::vector<bool> acked_;
  std::vector<bool> heard_;
  std::optional<protocol::Backoff> poll_backoff_;
  std::size_t parities_used_ = 0;
  double window_pad_ = 0.0;
  int round_ = 0;
  std::size_t l_ = 0;  ///< max NAK count collected this round
  Reactor::TimerId window_timer_ = 0;
  bool timer_armed_ = false;

  // Resumable burst engine (pump_burst).
  net::Pacer pacer_;
  BurstPhase burst_phase_ = BurstPhase::kNone;
  std::size_t stage_next_ = 0;    ///< next logical packet to stage
  std::size_t stage_count_ = 0;   ///< logical packets in this burst
  std::size_t burst_sent_ = 0;    ///< FrameRefs already on the wire
  std::size_t parity_base_ = 0;   ///< first parity index of this burst
  double stall_since_ = -1.0;     ///< when sustained pushback began
  Reactor::TimerId flush_timer_ = 0;
  bool flush_timer_armed_ = false;

  // Quarantine and parity-only catch-up (net/overload.hpp).
  std::vector<std::size_t> parity_high_;  ///< per-TG parity high-water
  std::vector<std::size_t> deficit_;      ///< rounds behind an acked quorum
  std::vector<bool> quarantined_;
  std::size_t round_naks_ = 0;  ///< NAKs admitted this round (budget)
  bool catchup_ = false;

  // Hostile-peer defense (net/peer_guard.hpp; null when guard off).
  std::unique_ptr<net::PeerGuard> guard_;
  std::vector<bool> expelled_;   ///< banned members, exempt from rounds
  std::uint32_t ctl_seq_ = 0;    ///< nonce for authenticated POLL frames
  std::uint64_t group_key_ = 0;  ///< sender->group control-frame key
  std::vector<std::size_t> cu_tgs_;      ///< TGs a straggler still lacks
  std::size_t cu_i_ = 0;
  std::size_t cu_round_ = 0;
  std::vector<std::size_t> cu_targets_;  ///< members served this catch-up TG
};

/// Non-blocking receiver endpoint: the counterpart of UdpNpReceiver,
/// with resume support for the server's restart path — a receiver that
/// "survived" a sender restart is reconstructed from its persisted
/// decoded bitmap.  TGs the sender's journal had confirmed complete are
/// never re-multicast, so DATA/PARITY arriving for one is counted as a
/// redelivery violation (exactly-once audit).  TGs this receiver decoded
/// but the sender never confirmed ARE legitimately re-sent by the next
/// life; those are suppressed as ordinary duplicates, not violations.
class ReceiverSessionDriver {
 public:
  struct Options {
    double idle_timeout = 10.0;     ///< mid-session silence budget [s]
    double data_loss = 0.0;         ///< injected DATA/PARITY drop prob
    Rng rng{1};                     ///< drives injected loss
    net::ImpairmentConfig impairment{};  ///< byte-level wire faults
    /// Resume: TGs decoded in a prior life (empty = fresh receiver).
    std::vector<bool> resume_decoded;
    /// Resume: TGs the SENDER's journal confirmed complete.  A strict
    /// subset of what every member decoded (confirmation implies an ACK
    /// implies a decode), and the only TGs whose reappearance is an
    /// exactly-once violation.
    std::vector<bool> resume_confirmed;
    /// Resume: highest sender incarnation heard in the prior life.
    std::uint32_t resume_incarnation = 0;
    /// When set, every decoded TG is compared against these bytes and
    /// mismatches counted (end-to-end integrity under impairment).
    const std::vector<net::TgBytes>* expected = nullptr;
  };

  ReceiverSessionDriver(Reactor& reactor, net::UdpSocket socket,
                        std::uint16_t sender_port, std::size_t num_tgs,
                        const net::UdpNpConfig& config, Options options,
                        std::function<void()> on_finished);
  ~ReceiverSessionDriver();
  ReceiverSessionDriver(const ReceiverSessionDriver&) = delete;
  ReceiverSessionDriver& operator=(const ReceiverSessionDriver&) = delete;

  void start();
  /// Force-stop for drain: finalizes the result with the current state
  /// (end reason kMidSessionSilence unless already complete) without
  /// invoking on_finished.
  void stop();

  bool finished() const noexcept { return finished_; }
  const net::UdpNpReceiverResult& result() const noexcept { return result_; }
  /// DATA/PARITY received for TGs the sender journal had confirmed —
  /// must stay 0 for a correct resume (confirmed TGs are never
  /// re-multicast).
  std::uint64_t redelivered_prior() const noexcept {
    return redelivered_prior_;
  }
  std::uint64_t payload_mismatches() const noexcept {
    return payload_mismatches_;
  }
  /// Decoded bitmap (prior + this life), for persistence across drains.
  std::vector<bool> decoded_bitmap() const;
  std::uint32_t incarnation_heard() const noexcept { return known_inc_; }
  std::size_t tgs_done() const noexcept { return done_count_; }
  std::uint16_t port() const noexcept { return socket_.port(); }
  /// Receive-path desync evidence (see UdpSocket::frame_resyncs).
  std::uint64_t frame_resyncs() const noexcept {
    return socket_.frame_resyncs();
  }
  std::uint64_t frames_skipped() const noexcept {
    return socket_.frames_skipped();
  }

 private:
  void on_readable();
  void on_wake();
  void handle_packet(const fec::Packet& packet);
  void accept_block_packet(const fec::Packet& packet);
  void send_feedback(std::uint32_t tg, std::size_t count, std::uint32_t seq);
  void finish(net::UdpNpEndReason reason);
  void reschedule(double next_due);
  double idle_deadline() const;

  Reactor& reactor_;
  net::UdpSocket socket_;
  std::uint16_t sender_port_;
  std::size_t num_tgs_;
  net::UdpNpConfig cfg_;
  Options opt_;
  fec::RseCode code_;
  const protocol::Clock& clk_;
  std::function<void()> on_finished_;
  std::shared_ptr<net::Impairment> impairment_;

  net::UdpNpReceiverResult result_;
  std::uint64_t redelivered_prior_ = 0;
  std::uint64_t payload_mismatches_ = 0;
  bool started_ = false;
  bool finished_ = false;
  bool fd_registered_ = false;

  std::vector<fec::TgDecoder> decoders_;
  std::vector<bool> done_;
  std::vector<bool> prior_;      ///< decoded before this life (resume)
  std::vector<bool> confirmed_;  ///< journal-confirmed before this life
  std::size_t done_count_ = 0;
  std::vector<std::unique_ptr<protocol::Backoff>> nak_backoffs_;
  bool nak_pending_ = false;
  /// Suppression mode: the pending NAK has never been sent — it sits in
  /// its slot delay and repair arriving first cancels it entirely.
  bool nak_first_ = false;
  Rng supp_rng_{1};  ///< seeds the suppression slot draws
  std::uint32_t nak_tg_ = 0;
  std::uint32_t nak_round_ = 0;
  double nak_retry_at_ = 0.0;
  std::uint8_t known_inc_ = 0;
  double last_rx_ = 0.0;
  // Hostile-peer defense (guard knobs; zero-cost when off).
  std::uint32_t fbseq_ = 0;      ///< monotone per-feedback anti-replay seq
  std::uint64_t member_key_ = 0; ///< tags this member's feedback
  std::uint64_t group_key_ = 0;  ///< verifies sender control frames
  Reactor::TimerId wake_timer_ = 0;
  bool timer_armed_ = false;
  double armed_at_ = 0.0;
};

}  // namespace pbl::server
