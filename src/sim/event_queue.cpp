#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace pbl::sim {

EventId EventQueue::schedule(double when, std::function<void()> fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{when, id, std::move(fn)});
  pending_ids_.insert(id);
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (pending_ids_.erase(id) == 0) return false;  // unknown or already fired
  cancelled_.insert(id);
  return true;
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
  cancelled_.clear();
  pending_ids_.clear();
}

void EventQueue::skip_cancelled() const {
  while (!heap_.empty() && cancelled_.count(heap_.top().id) != 0) {
    cancelled_.erase(heap_.top().id);
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  skip_cancelled();
  return heap_.empty();
}

double EventQueue::next_time() const {
  skip_cancelled();
  if (heap_.empty()) throw std::logic_error("EventQueue: empty");
  return heap_.top().when;
}

double EventQueue::run_next() {
  skip_cancelled();
  if (heap_.empty()) throw std::logic_error("EventQueue: empty");
  // Move the callback out before popping so re-entrant schedule() calls
  // from inside the callback are safe.
  Entry top = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  pending_ids_.erase(top.id);
  top.fn();
  return top.when;
}

}  // namespace pbl::sim
