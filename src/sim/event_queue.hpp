// Discrete-event scheduler: a time-ordered queue of callbacks with stable
// FIFO ordering among simultaneous events and lazy cancellation.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace pbl::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `when`; returns a handle usable with
  /// cancel().  Events at equal times fire in scheduling order.
  EventId schedule(double when, std::function<void()> fn);

  /// Cancels a pending event; cancelling an already-fired or unknown id is
  /// a no-op.  Returns true if the event was pending.
  bool cancel(EventId id);

  bool empty() const;
  std::size_t pending() const { return pending_ids_.size(); }

  /// Discards every pending event without running it.  Used by sessions
  /// whose deadline expired: the run is over, whatever was still
  /// scheduled (retries, NAK timers) must not fire.
  void clear();

  /// Time of the earliest pending event; requires !empty().
  double next_time() const;

  /// Pops and runs the earliest event; returns its time.  Requires !empty().
  double run_next();

 private:
  struct Entry {
    double when;
    EventId id;
    std::function<void()> fn;
    bool operator>(const Entry& o) const {
      return when > o.when || (when == o.when && id > o.id);
    }
  };
  /// Pops cancelled entries off the heap top.
  void skip_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  mutable std::unordered_set<EventId> cancelled_;
  std::unordered_set<EventId> pending_ids_;
  EventId next_id_ = 1;
};

}  // namespace pbl::sim
