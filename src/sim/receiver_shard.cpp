#include "sim/receiver_shard.hpp"

#include <bit>
#include <stdexcept>

namespace pbl::sim {

std::size_t BitVec::count() const noexcept {
  std::size_t n = 0;
  for (const std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

bool BitVec::any() const noexcept {
  for (const std::uint64_t w : words_)
    if (w) return true;
  return false;
}

BitVec& BitVec::operator|=(const BitVec& o) noexcept {
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= o.words_[w];
  return *this;
}

BitVec& BitVec::operator&=(const BitVec& o) noexcept {
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= o.words_[w];
  return *this;
}

BitVec& BitVec::andnot(const BitVec& o) noexcept {
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= ~o.words_[w];
  return *this;
}

ReceiverShard::ReceiverShard(std::size_t first_receiver, std::size_t receivers,
                             std::size_t planes, bool ones)
    : first_(first_receiver), receivers_(receivers) {
  planes_.reserve(planes);
  for (std::size_t i = 0; i < planes; ++i)
    planes_.emplace_back(receivers, ones);
}

std::size_t ReceiverShard::max_missing() const noexcept {
  if (receivers_ == 0 || planes_.empty()) return 0;
  std::size_t best = 0;
  std::uint8_t cnt[64];
  const std::size_t words = planes_[0].num_words();
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t live = planes_[0].live_mask(w);
    for (auto& c : cnt) c = 0;
    for (const auto& plane : planes_) {
      std::uint64_t miss = ~plane.word(w) & live;
      while (miss) {
        const unsigned bit = static_cast<unsigned>(std::countr_zero(miss));
        miss &= miss - 1;
        ++cnt[bit];
      }
    }
    std::uint64_t lanes = live;
    while (lanes) {
      const unsigned bit = static_cast<unsigned>(std::countr_zero(lanes));
      lanes &= lanes - 1;
      if (cnt[bit] > best) best = cnt[bit];
    }
  }
  return best;
}

ReceiverShard ReceiverShard::merge(const ReceiverShard& lo,
                                   const ReceiverShard& hi) {
  if (lo.num_planes() != hi.num_planes())
    throw std::invalid_argument("ReceiverShard::merge: plane count mismatch");
  if (hi.first_receiver() != lo.first_receiver() + lo.receivers())
    throw std::invalid_argument("ReceiverShard::merge: shards not adjacent");

  ReceiverShard out(lo.first_receiver(), lo.receivers() + hi.receivers(),
                    lo.num_planes());
  const std::size_t off = lo.receivers() % 64;
  const std::size_t base = lo.receivers() / 64;
  for (std::size_t i = 0; i < out.num_planes(); ++i) {
    BitVec& dst = out.plane(i);
    const BitVec& a = lo.plane(i);
    const BitVec& b = hi.plane(i);
    for (std::size_t w = 0; w < a.num_words(); ++w) dst.data()[w] = a.word(w);
    for (std::size_t w = 0; w < b.num_words(); ++w) {
      const std::uint64_t hw = b.word(w);
      dst.data()[base + w] |= off ? hw << off : hw;
      if (off != 0 && base + w + 1 < dst.num_words())
        dst.data()[base + w + 1] |= hw >> (64 - off);
    }
  }
  return out;
}

}  // namespace pbl::sim
