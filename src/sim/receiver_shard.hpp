// Packed-bitmap receiver state for population-scale simulation.
//
// The exact round simulators (protocol/rounds.cpp) keep one object (or one
// char) per receiver, which caps full-protocol runs near R ~ 10^3.  The
// batched engine (protocol/batch_rounds.hpp) instead keeps per-TG receiver
// state as bit-planes over a contiguous shard of the population: plane i,
// bit r answers "does receiver r hold original i" (or "is receiver r's
// deficit >= i", depending on the scheme).  All per-round aggregation —
// NAK counts, decode sets, pending originals — becomes word-wide AND/OR
// plus popcount, so a round costs O(R/64) words instead of O(R) objects.
//
// Invariant: bits past the shard size are zero in every plane, always.
// Every mutator re-establishes it, so popcount-based aggregation never
// counts ghost receivers in the partial last word.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pbl::sim {

/// Fixed-size packed bit vector with the zero-tail invariant.
class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t bits, bool ones = false)
      : bits_(bits), words_((bits + 63) / 64, 0) {
    if (ones) fill(true);
  }

  std::size_t bits() const noexcept { return bits_; }
  std::size_t num_words() const noexcept { return words_.size(); }
  std::uint64_t* data() noexcept { return words_.data(); }
  const std::uint64_t* data() const noexcept { return words_.data(); }
  std::uint64_t word(std::size_t w) const noexcept { return words_[w]; }

  /// All-ones for full words, the partial mask for the last word.
  std::uint64_t live_mask(std::size_t w) const noexcept {
    const std::size_t full = bits_ / 64;
    if (w < full) return ~std::uint64_t{0};
    const unsigned rem = static_cast<unsigned>(bits_ % 64);
    return rem == 0 ? 0 : (~std::uint64_t{0} >> (64 - rem));
  }

  void set(std::size_t i) noexcept { words_[i / 64] |= std::uint64_t{1} << (i % 64); }
  void reset(std::size_t i) noexcept { words_[i / 64] &= ~(std::uint64_t{1} << (i % 64)); }
  bool test(std::size_t i) const noexcept {
    return (words_[i / 64] >> (i % 64)) & 1;
  }

  void fill(bool value) noexcept {
    for (std::size_t w = 0; w < words_.size(); ++w)
      words_[w] = value ? live_mask(w) : 0;
  }

  std::size_t count() const noexcept;
  bool any() const noexcept;
  bool none() const noexcept { return !any(); }
  bool all() const noexcept { return count() == bits_; }

  BitVec& operator|=(const BitVec& o) noexcept;
  BitVec& operator&=(const BitVec& o) noexcept;
  /// this &= ~o (set difference).
  BitVec& andnot(const BitVec& o) noexcept;

  bool operator==(const BitVec& o) const noexcept {
    return bits_ == o.bits_ && words_ == o.words_;
  }

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Per-TG receiver state for a contiguous shard [first, first + receivers)
/// of the population, as `planes` bit-planes over the shard's receivers.
class ReceiverShard {
 public:
  ReceiverShard(std::size_t first_receiver, std::size_t receivers,
                std::size_t planes, bool ones = false);

  std::size_t first_receiver() const noexcept { return first_; }
  std::size_t receivers() const noexcept { return receivers_; }
  std::size_t num_planes() const noexcept { return planes_.size(); }

  BitVec& plane(std::size_t i) noexcept { return planes_[i]; }
  const BitVec& plane(std::size_t i) const noexcept { return planes_[i]; }

  /// Popcount NAK aggregation: receivers of this shard holding / missing
  /// a bit in plane i.
  std::size_t holders(std::size_t i) const noexcept {
    return planes_[i].count();
  }
  std::size_t missing(std::size_t i) const noexcept {
    return receivers_ - holders(i);
  }

  /// Max over this shard's receivers of the number of planes NOT holding
  /// them (the shard's worst per-receiver deficit when planes are
  /// originals).  Scalar-equivalent reference: tests/test_receiver_shard.
  std::size_t max_missing() const noexcept;

  void fill(bool value) noexcept {
    for (auto& p : planes_) p.fill(value);
  }

  /// Structural merge of two adjacent shards (hi.first_receiver() must be
  /// lo.first_receiver() + lo.receivers(); plane counts must match) into
  /// one shard covering both ranges.  Handles non-word-aligned splits.
  static ReceiverShard merge(const ReceiverShard& lo, const ReceiverShard& hi);

 private:
  std::size_t first_ = 0;
  std::size_t receivers_ = 0;
  std::vector<BitVec> planes_;
};

}  // namespace pbl::sim
