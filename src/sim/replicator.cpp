#include "sim/replicator.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <utility>

#include "util/thread_pool.hpp"

namespace pbl::sim {

unsigned resolve_threads(unsigned requested) noexcept {
  return requested == 0 ? util::ThreadPool::hardware_threads() : requested;
}

namespace detail {

namespace {

/// State shared by the caller and the pool tasks of one batch.  Held via
/// shared_ptr: a task that only gets scheduled after the batch already
/// drained (e.g. the pool was busy with other batches) still finds valid
/// state, sees the cursor exhausted, and returns without touching
/// anything else.  The caller never waits for such stragglers — it waits
/// for all INDICES to complete, and it can always drive that to
/// completion itself, so nested batches cannot deadlock even on a
/// single-worker pool.
struct Batch {
  Batch(std::uint64_t n_, std::function<void(std::uint64_t)> body_)
      : n(n_), body(std::move(body_)) {}

  const std::uint64_t n;
  const std::function<void(std::uint64_t)> body;  // owned copy: tasks may
                                                  // outlive the caller's frame
  std::atomic<std::uint64_t> cursor{0};  // next replication index to claim
  std::atomic<std::uint64_t> done{0};    // replications fully processed

  std::mutex mu;
  std::condition_variable cv;            // signalled when done reaches n

  // First (lowest-index) captured exception; `mu` guards both fields.
  std::uint64_t error_index = 0;
  std::exception_ptr error;

  void record_error(std::uint64_t i, std::exception_ptr e) {
    std::lock_guard<std::mutex> lock(mu);
    if (!error || i < error_index) {
      error = std::move(e);
      error_index = i;
    }
  }

  /// Claims and runs replications until the cursor is exhausted.  A
  /// thrown exception aborts only the current replication — remaining
  /// indices still run and `done` accounting stays exact, so the batch
  /// always drains no matter what the user code does.
  void work() {
    for (;;) {
      const std::uint64_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        record_error(i, std::current_exception());
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    }
  }
};

}  // namespace

void run_indexed(std::uint64_t n, unsigned threads,
                 const std::function<void(std::uint64_t)>& body) {
  if (n == 0) return;
  if (threads <= 1 || n == 1) {
    // Inline path: same index order, same RNG substreams, no pool.
    for (std::uint64_t i = 0; i < n; ++i) body(i);
    return;
  }

  // threads-1 pool tasks plus the calling thread.  The caller always
  // participates, so even a fully busy pool (or a nested call from
  // inside another batch) drains the batch by itself if it has to.
  auto batch = std::make_shared<Batch>(n, body);
  auto& pool = util::ThreadPool::global();
  for (unsigned w = 1; w < threads; ++w)
    pool.submit([batch] { batch->work(); });
  batch->work();

  {
    std::unique_lock<std::mutex> lock(batch->mu);
    batch->cv.wait(lock, [&batch] {
      return batch->done.load(std::memory_order_acquire) == batch->n;
    });
  }
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace detail

ReplicateReport run_replications(
    std::uint64_t n, std::uint64_t seed,
    const std::function<double(std::uint64_t, Rng&)>& fn,
    const ReplicateOptions& opts) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto samples = replicate_map<double>(n, seed, fn, opts);
  const auto t1 = std::chrono::steady_clock::now();

  ReplicateReport report;
  for (const double s : samples) report.stats.add(s);
  report.replications = n;
  report.threads = resolve_threads(opts.threads);
  report.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  report.reps_per_sec = report.wall_seconds > 0.0
                            ? static_cast<double>(n) / report.wall_seconds
                            : 0.0;
  return report;
}

}  // namespace pbl::sim
