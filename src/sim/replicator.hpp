// Deterministic parallel Monte-Carlo replication.
//
// run_replications(n, seed, fn) runs n independent replications of a
// stochastic experiment across the process-wide thread pool and merges
// their results into one RunningStats.  Three properties make the output
// bit-identical for every --threads value (including 1):
//
//   1. Replication i always draws from the same RNG substream,
//      replication_rng(seed, i) = Rng(seed).split(i) — derivation depends
//      only on (seed, i), never on which thread runs the replication.
//   2. Each replication writes its sample into slot i of a preallocated
//      results array.  Slots are disjoint, so the accumulator is
//      lock-free by construction: no thread ever touches another's slot.
//   3. The merge is a sequential fold over slots 0..n-1 after the last
//      replication finishes — the same order the single-threaded loop
//      would use — so floating-point rounding is reproduced exactly.
//
// Exceptions thrown by a replication are captured and rethrown on the
// calling thread after the batch drains; when several replications throw,
// the lowest replication index wins (again: deterministic, not
// completion-order).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace pbl::sim {

struct ReplicateOptions {
  /// Worker threads to use: 0 = all hardware threads, 1 = run inline on
  /// the calling thread (no pool involved).  Values beyond the hardware
  /// thread count are accepted; extra workers just share the cores.
  unsigned threads = 0;
};

/// Resolved thread count for an option value (0 -> hardware threads).
unsigned resolve_threads(unsigned requested) noexcept;

struct ReplicateReport {
  RunningStats stats;            ///< merged over all replications, in index order
  std::uint64_t replications = 0;
  unsigned threads = 1;          ///< resolved worker count actually used
  double wall_seconds = 0.0;
  double reps_per_sec = 0.0;
};

/// The RNG substream owned by replication `rep` of root seed `seed`.
inline Rng replication_rng(std::uint64_t seed, std::uint64_t rep) noexcept {
  return Rng(seed).split(rep);
}

/// Distinct deterministic root seed for subexperiment `index` of `seed`
/// (e.g. one grid point of a sweep).  Replications of that point then
/// draw from replication_rng(point_seed(seed, index), rep).
inline std::uint64_t point_seed(std::uint64_t seed,
                                std::uint64_t index) noexcept {
  std::uint64_t sm = seed ^ (0x632be59bd9b4e019ULL * (index + 1));
  return splitmix64(sm);
}

namespace detail {
/// Runs body(i) for every i in [0, n) using `threads` workers (the
/// calling thread participates; threads <= 1 runs sequentially inline).
/// Exceptions from body are rethrown here, lowest index first.
void run_indexed(std::uint64_t n, unsigned threads,
                 const std::function<void(std::uint64_t)>& body);
}  // namespace detail

/// Runs fn(i, rng) for i in [0, n) and returns the results as a vector
/// indexed by replication — the generic building block for experiments
/// whose replications produce more than one number.  T must be
/// default-constructible.
template <typename T, typename Fn>
std::vector<T> replicate_map(std::uint64_t n, std::uint64_t seed, Fn&& fn,
                             const ReplicateOptions& opts = {}) {
  std::vector<T> out(n);
  detail::run_indexed(n, resolve_threads(opts.threads),
                      [&](std::uint64_t i) {
                        Rng rng = replication_rng(seed, i);
                        out[i] = fn(i, rng);
                      });
  return out;
}

/// Runs n replications of fn (each returning one sample) and merges them
/// into a ReplicateReport.  See the file comment for the determinism
/// contract; wall_seconds / reps_per_sec are the only fields that vary
/// between runs.
ReplicateReport run_replications(
    std::uint64_t n, std::uint64_t seed,
    const std::function<double(std::uint64_t, Rng&)>& fn,
    const ReplicateOptions& opts = {});

}  // namespace pbl::sim
