#include "sim/simulator.hpp"

#include <stdexcept>

namespace pbl::sim {

EventId Simulator::schedule_in(double delay, std::function<void()> fn) {
  if (delay < 0.0) throw std::invalid_argument("Simulator: negative delay");
  return queue_.schedule(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_at(double when, std::function<void()> fn) {
  if (when < now_) throw std::invalid_argument("Simulator: time in the past");
  return queue_.schedule(when, std::move(fn));
}

std::uint64_t Simulator::run(double horizon) {
  stopped_ = false;
  std::uint64_t executed = 0;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= horizon) {
    now_ = queue_.next_time();
    queue_.run_next();
    ++executed;
  }
  return executed;
}

}  // namespace pbl::sim
