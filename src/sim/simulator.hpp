// Simulation driver: owns the clock and the event queue and runs events
// until quiescence, a time horizon, or an explicit stop.
#pragma once

#include <cstdint>
#include <limits>

#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace pbl::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}

  double now() const noexcept { return now_; }
  Rng& rng() noexcept { return rng_; }
  EventQueue& queue() noexcept { return queue_; }

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule_in(double delay, std::function<void()> fn);

  /// Schedules `fn` at absolute time `when` (when >= now()).
  EventId schedule_at(double when, std::function<void()> fn);

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the queue is empty or `horizon` is exceeded (events after
  /// the horizon stay queued).  Returns the number of events executed.
  std::uint64_t run(double horizon = std::numeric_limits<double>::infinity());

  /// Requests run() to return after the current event completes.
  void stop() noexcept { stopped_ = true; }

 private:
  double now_ = 0.0;
  bool stopped_ = false;
  EventQueue queue_;
  Rng rng_;
};

}  // namespace pbl::sim
