#include "tree/multicast_tree.hpp"

#include <stdexcept>

namespace pbl::tree {

MulticastTree MulticastTree::full_binary(unsigned height) {
  if (height > 25)
    throw std::invalid_argument("full_binary: height > 25 would not fit memory");
  // Heap layout: node i has children 2i+1, 2i+2; parent (i-1)/2.
  const std::size_t n = (std::size_t{1} << (height + 1)) - 1;
  std::vector<std::size_t> parent(n, 0);
  for (std::size_t i = 1; i < n; ++i) parent[i] = (i - 1) / 2;
  return MulticastTree(std::move(parent));
}

MulticastTree MulticastTree::full_mary(unsigned height, std::size_t fanout) {
  if (fanout < 2)
    throw std::invalid_argument("full_mary: need fanout >= 2");
  // Level-order (generalised heap) layout: the children of node i are
  // f*i + 1 ... f*i + f; the parent of node i is (i-1)/f.
  std::size_t nodes = 1, level = 1;
  for (unsigned d = 0; d < height; ++d) {
    level *= fanout;
    nodes += level;
    if (nodes > (std::size_t{1} << 26))
      throw std::invalid_argument("full_mary: tree would not fit memory");
  }
  std::vector<std::size_t> parent(nodes, 0);
  for (std::size_t i = 1; i < nodes; ++i) parent[i] = (i - 1) / fanout;
  return MulticastTree(std::move(parent));
}

}  // namespace pbl::tree
