#include "tree/multicast_tree.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pbl::tree {

MulticastTree::MulticastTree(std::vector<std::size_t> parent)
    : parent_(std::move(parent)) {
  const std::size_t n = parent_.size();
  if (n == 0) throw std::invalid_argument("MulticastTree: empty tree");
  if (parent_[0] != 0)
    throw std::invalid_argument("MulticastTree: node 0 must be the root");
  for (std::size_t i = 1; i < n; ++i)
    if (parent_[i] >= i)
      throw std::invalid_argument(
          "MulticastTree: parent[i] < i required (topological order)");

  // CSR children lists.
  std::vector<std::size_t> child_count(n, 0);
  for (std::size_t i = 1; i < n; ++i) ++child_count[parent_[i]];
  child_offset_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i)
    child_offset_[i + 1] = child_offset_[i] + child_count[i];
  child_list_.resize(n - 1);
  std::vector<std::size_t> cursor(child_offset_.begin(), child_offset_.end() - 1);
  for (std::size_t i = 1; i < n; ++i) child_list_[cursor[parent_[i]]++] = i;

  // Depth.
  depth_.assign(n, 0);
  for (std::size_t i = 1; i < n; ++i) depth_[i] = depth_[parent_[i]] + 1;
  height_ = *std::max_element(depth_.begin(), depth_.end());

  // Leaf ranges in reverse topological order (children before parents).
  leaf_begin_.assign(n, 0);
  leaf_end_.assign(n, 0);
  // First pass: assign leaf ids in DFS order.
  std::size_t next_leaf = 0;
  std::vector<std::size_t> stack{0};
  std::vector<std::size_t> dfs_order;
  dfs_order.reserve(n);
  while (!stack.empty()) {
    const std::size_t u = stack.back();
    stack.pop_back();
    dfs_order.push_back(u);
    const auto kids = children(u);
    // Push in reverse so leftmost child is visited first.
    for (std::size_t i = kids.size(); i-- > 0;) stack.push_back(kids[i]);
    if (kids.empty()) {
      leaf_begin_[u] = next_leaf;
      leaf_end_[u] = ++next_leaf;
    }
  }
  num_leaves_ = next_leaf;
  // Second pass: propagate ranges bottom-up (reverse DFS order works since
  // children appear after their parent in dfs_order; walk it backwards).
  for (std::size_t idx = dfs_order.size(); idx-- > 0;) {
    const std::size_t u = dfs_order[idx];
    const auto kids = children(u);
    if (kids.empty()) continue;
    leaf_begin_[u] = leaf_begin_[kids.front()];
    leaf_end_[u] = leaf_end_[kids.back()];
    for (const std::size_t c : kids) {
      leaf_begin_[u] = std::min(leaf_begin_[u], leaf_begin_[c]);
      leaf_end_[u] = std::max(leaf_end_[u], leaf_end_[c]);
    }
  }
}

std::span<const std::size_t> MulticastTree::children(std::size_t node) const {
  return {child_list_.data() + child_offset_[node],
          child_offset_[node + 1] - child_offset_[node]};
}

double MulticastTree::node_loss_for_leaf_loss(double p) const {
  if (p < 0.0 || p >= 1.0)
    throw std::invalid_argument("node_loss_for_leaf_loss: p in [0,1)");
  const double path_nodes = static_cast<double>(height_ + 1);
  return 1.0 - std::pow(1.0 - p, 1.0 / path_nodes);
}

void MulticastTree::multicast_once(double p_node, Rng& rng,
                                   std::span<const char> active,
                                   std::span<char> received) const {
  if (active.size() != num_leaves_ || received.size() != num_leaves_)
    throw std::invalid_argument("multicast_once: span sizes must equal #leaves");

  // Prefix sums of active receivers for O(1) subtree-activity queries.
  // (Rebuilt per transmission; the traversal below dominates.)
  std::vector<std::size_t> prefix(num_leaves_ + 1, 0);
  for (std::size_t i = 0; i < num_leaves_; ++i)
    prefix[i + 1] = prefix[i] + (active[i] ? 1 : 0);
  const auto active_in = [&](std::size_t node) {
    return prefix[leaf_end_[node]] - prefix[leaf_begin_[node]];
  };

  if (active_in(0) == 0) return;
  std::vector<std::size_t> stack{0};
  while (!stack.empty()) {
    const std::size_t u = stack.back();
    stack.pop_back();
    if (rng.bernoulli(p_node)) continue;  // dropped at u: subtree cut
    if (is_leaf(u)) {
      received[leaf_id(u)] = 1;
      continue;
    }
    for (const std::size_t c : children(u))
      if (active_in(c) > 0) stack.push_back(c);
  }
}

std::vector<char> MulticastTree::multicast_all(double p_node, Rng& rng) const {
  std::vector<char> active(num_leaves_, 1);
  std::vector<char> received(num_leaves_, 0);
  multicast_once(p_node, rng, active, received);
  return received;
}

}  // namespace pbl::tree
