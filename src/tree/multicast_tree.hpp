// Multicast tree with per-node loss (paper Section 4.1, "FBT shared loss").
//
// The source is the root and the receivers are the leaves.  For each
// multicast transmission, every node on the path root->leaf independently
// drops the packet with probability p_node; a drop at an interior node cuts
// the whole subtree, which is what makes losses spatially correlated
// ("shared") among downstream receivers.
//
// Leaves are numbered contiguously in DFS order so that every node owns a
// contiguous leaf range [leaf_begin, leaf_end); traversal prunes subtrees
// that contain no still-active receiver, keeping per-transmission cost
// proportional to the part of the tree that still matters.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace pbl::tree {

class MulticastTree {
 public:
  /// Builds a tree from a parent array: parent[0] == 0 designates the
  /// root; parent[i] < i for all i > 0 (topological node order).
  explicit MulticastTree(std::vector<std::size_t> parent);

  /// Full binary tree of the given height: height 0 is a single node that
  /// is both source and (one) receiver; height d has 2^d leaves.
  static MulticastTree full_binary(unsigned height);

  /// Full m-ary tree: every interior node has exactly `fanout` children;
  /// height 0 is a single node.  full_mary(d, 2) == full_binary(d).
  static MulticastTree full_mary(unsigned height, std::size_t fanout);

  /// Random tree with EXACTLY `leaves` receivers, built by recursively
  /// splitting the leaf range into 2..max_fanout random parts.  Shapes
  /// range from path-like (splits of size 1 recurse deep) to bushy;
  /// leaf depths are non-uniform, so per-receiver loss under a fixed
  /// per-node probability is heterogeneous — like a real multicast tree.
  static MulticastTree random_split(std::size_t leaves,
                                    std::size_t max_fanout, Rng& rng);

  std::size_t num_nodes() const noexcept { return parent_.size(); }
  std::size_t num_leaves() const noexcept { return num_leaves_; }
  std::size_t root() const noexcept { return 0; }

  std::span<const std::size_t> children(std::size_t node) const;
  bool is_leaf(std::size_t node) const { return children(node).empty(); }

  /// Leaf index (receiver id) of a leaf node.
  std::size_t leaf_id(std::size_t node) const { return leaf_begin_[node]; }

  /// Depth of node (root = 0).
  std::size_t depth(std::size_t node) const { return depth_[node]; }
  std::size_t height() const noexcept { return height_; }

  /// Per-node loss probability that yields end-to-end leaf loss `p` when
  /// every node on the root->leaf path (both endpoints included, i.e.
  /// height+1 nodes) drops independently:  p = 1 - (1-p_node)^(height+1).
  double node_loss_for_leaf_loss(double p) const;

  /// Simulates one multicast transmission.  `active[r]` says whether
  /// receiver r still cares about this packet; `received[r]` is set to
  /// true for every ACTIVE receiver that gets the packet (entries of
  /// inactive receivers are left untouched).  Subtrees without active
  /// receivers are not visited and not charged.
  void multicast_once(double p_node, Rng& rng, std::span<const char> active,
                      std::span<char> received) const;

  /// Convenience for tests: transmission with every receiver active.
  std::vector<char> multicast_all(double p_node, Rng& rng) const;

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> child_offset_;  // CSR layout into child_list_
  std::vector<std::size_t> child_list_;
  std::vector<std::size_t> leaf_begin_;    // leaf range [begin, end) per node
  std::vector<std::size_t> leaf_end_;
  std::vector<std::size_t> depth_;
  std::size_t num_leaves_ = 0;
  std::size_t height_ = 0;
};

}  // namespace pbl::tree
