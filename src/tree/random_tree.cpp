#include <stdexcept>

#include "tree/multicast_tree.hpp"

namespace pbl::tree {

MulticastTree MulticastTree::random_split(std::size_t leaves,
                                          std::size_t max_fanout, Rng& rng) {
  if (leaves == 0)
    throw std::invalid_argument("random_split: need at least one leaf");
  if (max_fanout < 2)
    throw std::invalid_argument("random_split: need max_fanout >= 2");

  // Preorder construction keeps parent[i] < i automatically.
  std::vector<std::size_t> parent{0};
  // Work stack of (node, leaves to place under it).
  std::vector<std::pair<std::size_t, std::size_t>> stack{{0, leaves}};
  while (!stack.empty()) {
    const auto [node, count] = stack.back();
    stack.pop_back();
    if (count == 1) continue;  // `node` is a leaf
    // Split `count` leaves into 2..min(max_fanout, count) nonempty parts.
    const std::size_t parts =
        2 + rng.below(std::min(max_fanout, count) - 1);
    // Random composition: draw parts-1 distinct cut points.
    std::vector<std::size_t> sizes(parts, 1);
    for (std::size_t extra = count - parts; extra > 0; --extra)
      ++sizes[rng.below(parts)];
    for (const std::size_t sz : sizes) {
      const std::size_t child = parent.size();
      parent.push_back(node);
      stack.emplace_back(child, sz);
    }
  }
  return MulticastTree(std::move(parent));
}

}  // namespace pbl::tree
