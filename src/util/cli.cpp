#include "util/cli.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace pbl {

Cli::Cli(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool Cli::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::optional<std::string> Cli::raw(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

void Cli::record(const std::string& name, const std::string& def) {
  defaults_seen_.emplace(name, def);
}

int Cli::get_int(const std::string& name, int def) {
  record(name, std::to_string(def));
  const auto v = raw(name);
  return v ? std::stoi(*v) : def;
}

std::int64_t Cli::get_int64(const std::string& name, std::int64_t def) {
  record(name, std::to_string(def));
  const auto v = raw(name);
  return v ? std::stoll(*v) : def;
}

double Cli::get_double(const std::string& name, double def) {
  record(name, std::to_string(def));
  const auto v = raw(name);
  return v ? std::stod(*v) : def;
}

std::string Cli::get_string(const std::string& name, std::string def) {
  record(name, def);
  const auto v = raw(name);
  return v ? *v : def;
}

bool Cli::get_bool(const std::string& name, bool def) {
  record(name, def ? "true" : "false");
  const auto v = raw(name);
  if (!v) return def;
  return *v == "true" || *v == "1" || *v == "yes";
}

std::vector<double> Cli::get_doubles(const std::string& name,
                                     std::vector<double> def) {
  {
    std::ostringstream os;
    for (std::size_t i = 0; i < def.size(); ++i)
      os << (i ? "," : "") << def[i];
    record(name, os.str());
  }
  const auto v = raw(name);
  if (!v) return def;
  std::vector<double> out;
  std::stringstream ss(*v);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stod(item));
  }
  return out;
}

std::string Cli::usage() const {
  std::ostringstream os;
  os << "usage: " << program_ << " [flags]\n";
  for (const auto& [name, def] : defaults_seen_)
    os << "  --" << name << " (default=" << def << ")\n";
  return os.str();
}

}  // namespace pbl
